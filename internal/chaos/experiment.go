package chaos

import (
	"context"
	"fmt"
	"time"

	"hrmsim/internal/obsv"
)

// ExperimentConfig wires one chaos experiment together.
type ExperimentConfig struct {
	// Name labels the experiment in the verdict.
	Name string
	// Addr is the kvserve protocol address (server probe + load target).
	Addr string
	// Steady, Chaos, Recovery are the wall-clock phase durations.
	Steady, Chaos, Recovery time.Duration
	// SampleEvery is the probe cadence (default 50ms); a sample is also
	// forced at every phase boundary.
	SampleEvery time.Duration
	// Injections is the fault-schedule length applied across the chaos
	// phase, evenly paced.
	Injections int
	// Injector applies the schedule; required when Injections > 0.
	Injector Injector
	// ProbeInjected issues a verification GET for each key-addressable
	// injection right after it lands, so corruption is read (and
	// witnessed) deterministically instead of depending on the Zipf
	// draw within a short window.
	ProbeInjected bool
	// SLOs are the objectives; required.
	SLOs []SLO
	// Generator drives the load; required (callers construct it so the
	// profile is explicit).
	Generator *Generator
	// Registry receives the chaos_* metrics and is read for the
	// kvload_* signals; must be the generator's registry.
	Registry *obsv.Registry
	// Seed is recorded in the verdict (the generator and injector carry
	// their own seeds; this is the experiment-level provenance field).
	Seed int64
}

func (cfg *ExperimentConfig) validate() error {
	if cfg.Name == "" {
		cfg.Name = "chaos"
	}
	if cfg.Addr == "" {
		return fmt.Errorf("chaos: experiment needs an address")
	}
	if cfg.Steady <= 0 || cfg.Chaos <= 0 || cfg.Recovery <= 0 {
		return fmt.Errorf("chaos: all three phase durations must be positive")
	}
	if cfg.SampleEvery <= 0 {
		cfg.SampleEvery = 50 * time.Millisecond
	}
	if cfg.Injections > 0 && cfg.Injector == nil {
		return fmt.Errorf("chaos: %d injections requested without an injector", cfg.Injections)
	}
	if len(cfg.SLOs) == 0 {
		return fmt.Errorf("chaos: experiment needs at least one SLO")
	}
	for _, s := range cfg.SLOs {
		if err := s.validate(); err != nil {
			return err
		}
	}
	if cfg.Generator == nil {
		return fmt.Errorf("chaos: experiment needs a load generator")
	}
	if cfg.Registry == nil {
		return fmt.Errorf("chaos: experiment needs a registry")
	}
	return nil
}

// sample is one probe observation: the client-side counters and latency
// histogram plus the server's own stats, taken together.
type sample struct {
	at     time.Time
	client obsv.Snapshot
	server ServerStats
}

// Experiment runs the steady → chaos → recovery lifecycle against a
// serving node and produces a Verdict.
type Experiment struct {
	cfg ExperimentConfig

	injections  *obsv.Counter
	probeReads  *obsv.Counter
	samplesC    *obsv.Counter
	sloEvals    *obsv.Counter
	sloFailures *obsv.Counter
	phaseGauge  *obsv.Gauge

	samples []sample
	// injectionsInPhase counts faults applied, for the phase report.
	applied int64
}

// NewExperiment validates the wiring.
func NewExperiment(cfg ExperimentConfig) (*Experiment, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	reg := cfg.Registry
	return &Experiment{
		cfg:         cfg,
		injections:  reg.Counter("chaos_injections_total"),
		probeReads:  reg.Counter("chaos_probe_reads_total"),
		samplesC:    reg.Counter("chaos_probe_samples_total"),
		sloEvals:    reg.Counter("chaos_slo_evaluations_total"),
		sloFailures: reg.Counter("chaos_slo_failures_total"),
		phaseGauge:  reg.Gauge("chaos_phase"),
	}, nil
}

// Run executes the experiment and returns its verdict. The generator is
// started and stopped by Run; ctx cancellation aborts the experiment with
// an error (a cancelled experiment has no meaningful verdict).
func (e *Experiment) Run(ctx context.Context) (*Verdict, error) {
	probe, err := dialClient(e.cfg.Addr, 5*time.Second)
	if err != nil {
		return nil, fmt.Errorf("chaos: dialing server probe: %w", err)
	}
	defer probe.close()

	genCtx, stopGen := context.WithCancel(ctx)
	genDone := make(chan struct{})
	go func() {
		defer close(genDone)
		e.cfg.Generator.Run(genCtx)
	}()
	defer func() {
		stopGen()
		<-genDone
	}()

	type boundary struct {
		start, end int // sample indices
		injections int64
		durationMs int64
	}
	phases := []struct {
		name string
		dur  time.Duration
	}{
		{PhaseSteady, e.cfg.Steady},
		{PhaseChaos, e.cfg.Chaos},
		{PhaseRecovery, e.cfg.Recovery},
	}
	bounds := make([]boundary, len(phases))

	if err := e.takeSample(probe); err != nil {
		return nil, err
	}
	for i, ph := range phases {
		e.phaseGauge.Set(float64(i))
		start := len(e.samples) - 1
		startInj := e.applied
		t0 := time.Now()
		var runErr error
		if ph.name == PhaseChaos && e.cfg.Injections > 0 {
			runErr = e.runChaosPhase(ctx, probe, ph.dur)
		} else {
			runErr = e.runQuietPhase(ctx, probe, ph.dur)
		}
		if runErr != nil {
			return nil, fmt.Errorf("chaos: %s phase: %w", ph.name, runErr)
		}
		if err := e.takeSample(probe); err != nil {
			return nil, err
		}
		bounds[i] = boundary{
			start:      start,
			end:        len(e.samples) - 1,
			injections: e.applied - startInj,
			durationMs: time.Since(t0).Milliseconds(),
		}
	}

	reports := make([]PhaseReport, len(phases))
	for i, ph := range phases {
		reports[i] = e.window(ph.name, e.samples[bounds[i].start], e.samples[bounds[i].end])
		reports[i].Injections = bounds[i].injections
		reports[i].DurationMs = bounds[i].durationMs
	}
	results, pass := evaluate(e.cfg.SLOs, reports)
	e.sloEvals.Add(int64(len(results)))
	for _, r := range results {
		if !r.Pass {
			e.sloFailures.Inc()
		}
	}
	return &Verdict{
		SchemaVersion: VerdictSchemaVersion,
		Experiment:    e.cfg.Name,
		Seed:          e.cfg.Seed,
		Phases:        reports,
		Results:       results,
		Pass:          pass,
		Samples:       len(e.samples),
	}, nil
}

// runQuietPhase waits out a phase, sampling on the cadence.
func (e *Experiment) runQuietPhase(ctx context.Context, probe *client, dur time.Duration) error {
	deadline := time.Now().Add(dur)
	for {
		wait := e.cfg.SampleEvery
		if rem := time.Until(deadline); rem <= 0 {
			return nil
		} else if rem < wait {
			wait = rem
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(wait):
		}
		if time.Now().After(deadline) {
			return nil
		}
		if err := e.takeSample(probe); err != nil {
			return err
		}
	}
}

// runChaosPhase paces the fault schedule evenly across the phase while
// keeping the sample cadence.
func (e *Experiment) runChaosPhase(ctx context.Context, probe *client, dur time.Duration) error {
	interval := dur / time.Duration(e.cfg.Injections)
	deadline := time.Now().Add(dur)
	nextSample := time.Now().Add(e.cfg.SampleEvery)
	for k := 0; k < e.cfg.Injections; k++ {
		key, err := e.cfg.Injector.Inject(k)
		if err == ErrScheduleExhausted {
			break
		}
		if err != nil {
			return fmt.Errorf("injection %d: %w", k, err)
		}
		e.applied++
		e.injections.Inc()
		if e.cfg.ProbeInjected && key >= 0 {
			e.probeReads.Inc()
			if err := e.cfg.Generator.ProbeGet(uint64(key)); err != nil {
				return fmt.Errorf("probe read after injection %d: %w", k, err)
			}
		}
		// Hold the pace until the next injection slot, sampling on
		// cadence as we go.
		slotEnd := time.Now().Add(interval)
		if slotEnd.After(deadline) {
			slotEnd = deadline
		}
		for time.Now().Before(slotEnd) {
			wait := time.Until(slotEnd)
			if s := time.Until(nextSample); s < wait {
				wait = s
			}
			if wait > 0 {
				select {
				case <-ctx.Done():
					return ctx.Err()
				case <-time.After(wait):
				}
			}
			if !time.Now().Before(nextSample) {
				if err := e.takeSample(probe); err != nil {
					return err
				}
				nextSample = time.Now().Add(e.cfg.SampleEvery)
			}
		}
	}
	// Schedule done (or exhausted): wait out the rest of the phase.
	if rem := time.Until(deadline); rem > 0 {
		return e.runQuietPhase(ctx, probe, rem)
	}
	return nil
}

// takeSample captures one probe observation.
func (e *Experiment) takeSample(probe *client) error {
	st, err := fetchStats(probe)
	if err != nil {
		return fmt.Errorf("chaos: server probe: %w", err)
	}
	e.samples = append(e.samples, sample{
		at:     time.Now(),
		client: e.cfg.Registry.Snapshot(),
		server: st,
	})
	e.samplesC.Inc()
	return nil
}

// window derives the PhaseReport for the span between two samples.
func (e *Experiment) window(phase string, start, end sample) PhaseReport {
	cd := func(name string) int64 {
		return end.client.Counters[name] - start.client.Counters[name]
	}
	p := PhaseReport{
		Phase:          phase,
		StartVirtualMs: start.server.VNowMs,
		EndVirtualMs:   end.server.VNowMs,
		Ops:            cd("kvload_ops_total"),
		Gets:           cd("kvload_gets_total"),
		Sets:           cd("kvload_sets_total"),
		Errors:         cd("kvload_errors_total"),
		Timeouts:       cd("kvload_timeouts_total"),
		WrongValues:    cd("kvload_wrong_values_total"),
		StaleValues:    cd("kvload_stale_values_total"),
		Corrected:      end.server.Corrected - start.server.Corrected,
		Uncorrectable:  end.server.Uncorrectable - start.server.Uncorrectable,
		Recovered:      end.server.Recovered - start.server.Recovered,
		Retired:        end.server.Retired - start.server.Retired,
		Signals:        map[string]float64{},
	}
	// Recovery signals are always measurable (a zero delta is a real
	// observation).
	p.Signals[SignalRecoveries] = float64(p.Recovered)
	p.Signals[SignalRetiredPages] = float64(p.Retired)
	if p.Ops > 0 {
		p.Signals[SignalErrorRate] = float64(p.Errors) / float64(p.Ops)
		p.Signals[SignalTimeoutRate] = float64(p.Timeouts) / float64(p.Ops)
	}
	if p.Gets > 0 {
		p.Signals[SignalWrongValueRate] = float64(p.WrongValues) / float64(p.Gets)
	}
	hs, he := start.client.Histograms["kvload_op_latency_us"], end.client.Histograms["kvload_op_latency_us"]
	if v, ok := Percentile(hs, he, 0.50); ok {
		p.Signals[SignalP50LatencyUs] = v
	}
	if v, ok := Percentile(hs, he, 0.99); ok {
		p.Signals[SignalP99LatencyUs] = v
	}
	return p
}
