package stats

import (
	"math"
	"testing"
)

func TestWilsonHalfWidthErrors(t *testing.T) {
	if _, err := WilsonHalfWidth(0, 0, 0.90); err == nil {
		t.Error("zero trials accepted")
	}
	if _, err := WilsonHalfWidth(0, -3, 0.90); err == nil {
		t.Error("negative trials accepted")
	}
	if _, err := WilsonHalfWidth(-1, 10, 0.90); err == nil {
		t.Error("negative successes accepted")
	}
	if _, err := WilsonHalfWidth(11, 10, 0.90); err == nil {
		t.Error("successes above trials accepted")
	}
}

// TestWilsonHalfWidthAgreesWithInterval: away from the [0,1] clamp the
// half-width must equal half of WilsonInterval's Hi−Lo spread.
func TestWilsonHalfWidthAgreesWithInterval(t *testing.T) {
	half, err := WilsonHalfWidth(40, 100, 0.90)
	if err != nil {
		t.Fatal(err)
	}
	p, err := WilsonInterval(40, 100, 0.90)
	if err != nil {
		t.Fatal(err)
	}
	if got := (p.Hi - p.Lo) / 2; math.Abs(half-got) > 1e-12 {
		t.Errorf("half-width %v, interval spread/2 %v", half, got)
	}
}

// TestWilsonHalfWidthExtremesSymmetric: zero successes and all
// successes are the same distance from certainty, so their unclamped
// half-widths must match exactly.
func TestWilsonHalfWidthExtremesSymmetric(t *testing.T) {
	for _, n := range []int{1, 8, 30, 200} {
		zero, err := WilsonHalfWidth(0, n, 0.90)
		if err != nil {
			t.Fatal(err)
		}
		all, err := WilsonHalfWidth(n, n, 0.90)
		if err != nil {
			t.Fatal(err)
		}
		if zero != all {
			t.Errorf("n=%d: half-width at 0 successes %v != at all successes %v", n, zero, all)
		}
		if !(zero > 0 && zero < 1) {
			t.Errorf("n=%d: half-width %v outside (0,1)", n, zero)
		}
	}
}

// TestWilsonHalfWidthMonotoneNarrowing: at a held proportion, more
// trials always tighten the interval.
func TestWilsonHalfWidthMonotoneNarrowing(t *testing.T) {
	for _, frac := range []float64{0, 0.1, 0.5, 1} {
		prev := math.Inf(1)
		for n := 10; n <= 10000; n *= 10 {
			s := int(frac * float64(n))
			half, err := WilsonHalfWidth(s, n, 0.90)
			if err != nil {
				t.Fatal(err)
			}
			if half >= prev {
				t.Errorf("frac=%g n=%d: half-width %v did not narrow from %v", frac, n, half, prev)
			}
			prev = half
		}
	}
}

func TestSequentialStoppingValidate(t *testing.T) {
	good := SequentialStopping{TargetHalfWidth: 0.02, Level: 0.90, MinTrials: 30, MaxTrials: 400}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []SequentialStopping{
		{TargetHalfWidth: 0, Level: 0.90, MinTrials: 30, MaxTrials: 400},
		{TargetHalfWidth: 1, Level: 0.90, MinTrials: 30, MaxTrials: 400},
		{TargetHalfWidth: 0.02, Level: 0, MinTrials: 30, MaxTrials: 400},
		{TargetHalfWidth: 0.02, Level: 1.5, MinTrials: 30, MaxTrials: 400},
		{TargetHalfWidth: 0.02, Level: 0.90, MinTrials: 0, MaxTrials: 400},
		{TargetHalfWidth: 0.02, Level: 0.90, MinTrials: 30, MaxTrials: 29},
	}
	for i, r := range bad {
		if err := r.Validate(); err == nil {
			t.Errorf("rule %d (%+v) validated", i, r)
		}
	}
}

// TestStoppingTargetWiderThanPrior: a target the very first evaluation
// already satisfies stops immediately at MinTrials — the rule never
// stops before its first boundary, however loose the target.
func TestStoppingTargetWiderThanPrior(t *testing.T) {
	r := SequentialStopping{TargetHalfWidth: 0.9, Level: 0.90, MinTrials: 5, MaxTrials: 400}
	if b := r.FirstBoundary(); b != 5 {
		t.Fatalf("FirstBoundary = %d, want 5", b)
	}
	stop, half, err := r.ShouldStop(2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !stop {
		t.Errorf("target 0.9 did not stop at the first boundary (half-width %v)", half)
	}
}

// TestStoppingZeroAndAllSuccesses: the boundary walk under a constant
// extreme proportion stops at the first boundary whose half-width
// reaches the target, and zero/all successes stop at the same boundary.
func TestStoppingZeroAndAllSuccesses(t *testing.T) {
	r := SequentialStopping{TargetHalfWidth: 0.03, Level: 0.90, MinTrials: 8, MaxTrials: 100000}
	walk := func(all bool) int {
		for k := r.FirstBoundary(); ; k = r.NextBoundary(k) {
			s := 0
			if all {
				s = k
			}
			stop, _, err := r.ShouldStop(s, k)
			if err != nil {
				t.Fatal(err)
			}
			if stop {
				return k
			}
			if k >= r.MaxTrials {
				t.Fatal("never stopped within budget")
			}
		}
	}
	zeroAt, allAt := walk(false), walk(true)
	if zeroAt != allAt {
		t.Errorf("zero-success stop at %d, all-success stop at %d", zeroAt, allAt)
	}
	if zeroAt <= r.MinTrials {
		t.Errorf("0.03 target reached suspiciously early (boundary %d)", zeroAt)
	}
}

// TestStoppingHalfWidthMonotoneAlongSchedule: under a constant observed
// proportion the verdict half-width narrows strictly boundary to
// boundary, so every adaptive campaign under a stable estimate
// converges on its target.
func TestStoppingHalfWidthMonotoneAlongSchedule(t *testing.T) {
	r := SequentialStopping{TargetHalfWidth: 0.001, Level: 0.90, MinTrials: 10, MaxTrials: 5000}
	prev := math.Inf(1)
	for k := r.FirstBoundary(); ; k = r.NextBoundary(k) {
		_, half, err := r.ShouldStop(k/4, k)
		if err != nil {
			t.Fatal(err)
		}
		if half >= prev {
			t.Errorf("boundary %d: half-width %v did not narrow from %v", k, half, prev)
		}
		prev = half
		if k >= r.MaxTrials {
			break
		}
	}
}

func TestBoundarySchedule(t *testing.T) {
	r := SequentialStopping{TargetHalfWidth: 0.02, Level: 0.90, MinTrials: 30, MaxTrials: 400}
	if b := r.FirstBoundary(); b != 30 {
		t.Errorf("FirstBoundary = %d, want 30", b)
	}
	// MinTrials above MaxTrials clamps (the planner normalizes configs
	// this way when the campaign budget is tiny).
	clamped := SequentialStopping{TargetHalfWidth: 0.02, Level: 0.90, MinTrials: 500, MaxTrials: 400}
	if b := clamped.FirstBoundary(); b != 400 {
		t.Errorf("clamped FirstBoundary = %d, want 400", b)
	}
	// The schedule grows strictly, respects the minimum stride, and caps
	// at MaxTrials.
	prev := r.FirstBoundary()
	for {
		next := r.NextBoundary(prev)
		if next <= prev {
			t.Fatalf("NextBoundary(%d) = %d did not grow", prev, next)
		}
		if step := next - prev; next < r.MaxTrials && step < 8 {
			t.Errorf("step %d→%d below the minimum stride", prev, next)
		}
		if next > r.MaxTrials {
			t.Fatalf("NextBoundary(%d) = %d beyond MaxTrials", prev, next)
		}
		if next == r.MaxTrials {
			break
		}
		prev = next
	}
}

func TestShouldStopZeroCompleted(t *testing.T) {
	r := SequentialStopping{TargetHalfWidth: 0.02, Level: 0.90, MinTrials: 30, MaxTrials: 400}
	stop, half, err := r.ShouldStop(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if stop || half != 1 {
		t.Errorf("ShouldStop(0,0) = (%v, %v), want (false, 1)", stop, half)
	}
}

// FuzzWilsonHalfWidth: any in-range observation yields a half-width in
// (0, 1) that a larger same-proportion sample never widens.
func FuzzWilsonHalfWidth(f *testing.F) {
	f.Add(0, 30)
	f.Add(30, 30)
	f.Add(7, 100)
	f.Add(1, 1)
	f.Fuzz(func(t *testing.T, successes, trials int) {
		if trials <= 0 || trials > 1<<20 || successes < 0 || successes > trials {
			return
		}
		half, err := WilsonHalfWidth(successes, trials, 0.90)
		if err != nil {
			t.Fatal(err)
		}
		if !(half > 0 && half < 1) || math.IsNaN(half) {
			t.Fatalf("WilsonHalfWidth(%d, %d) = %v outside (0,1)", successes, trials, half)
		}
		wider, err := WilsonHalfWidth(successes*2, trials*2, 0.90)
		if err != nil {
			t.Fatal(err)
		}
		if wider > half+1e-12 {
			t.Fatalf("doubling the sample widened the interval: %v → %v", half, wider)
		}
	})
}
