package simmem

import (
	"math/rand"
	"sync"
	"testing"
)

// TestGateSerializesOpsAndInjection shares one address space between
// "request" goroutines and an "injector" goroutine, each wrapping whole
// operations in the gate — the live-server usage pattern. Under -race this
// pins the seam: no access path races with injection as long as both sides
// hold the gate per operation.
func TestGateSerializesOpsAndInjection(t *testing.T) {
	as, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	r, err := as.AddRegion(RegionSpec{Name: "heap", Kind: RegionHeap, Size: 4096})
	if err != nil {
		t.Fatal(err)
	}
	r.SetUsed(4096)
	base := r.Base()

	var wg sync.WaitGroup
	const workers, opsPer = 4, 200
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < opsPer; i++ {
				err := as.Exclusive(func() error {
					addr := base + Addr((w*opsPer+i)%4096&^7)
					if err := as.StoreU64(addr, uint64(i)); err != nil {
						return err
					}
					_, err := as.LoadU64(addr)
					return err
				})
				if err != nil {
					t.Errorf("worker %d op %d: %v", w, i, err)
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(1))
		for i := 0; i < 100; i++ {
			_ = as.Exclusive(func() error {
				addr, ok := as.SampleAddr(rng, nil)
				if !ok {
					return nil
				}
				return as.FlipBit(addr, rng.Intn(8))
			})
		}
	}()
	wg.Wait()

	// The gate serializes counter mutation, so the totals must be exact:
	// one store and one load per op.
	as.Acquire()
	c := as.Counters()
	as.Release()
	if c.Loads != workers*opsPer || c.Stores != workers*opsPer {
		t.Errorf("counters = %+v, want %d loads and stores", c, workers*opsPer)
	}
}
