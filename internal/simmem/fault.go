package simmem

import (
	"errors"
	"fmt"
)

// FaultKind classifies memory faults raised by the simulated address space.
type FaultKind int

// Fault kinds. A fault corresponds to behaviour that would terminate a real
// process (segmentation fault, machine-check exception) or to a simulator
// usage error surfaced the same way.
const (
	// FaultUnmapped is an access to an address in no region (the
	// simulated equivalent of a segmentation fault).
	FaultUnmapped FaultKind = iota + 1
	// FaultOutOfRange is an access that starts inside a region but runs
	// past its end.
	FaultOutOfRange
	// FaultReadOnly is a store to a read-only region.
	FaultReadOnly
	// FaultMachineCheck is an uncorrectable memory error detected by the
	// region's ECC codec with no (or failed) software recovery.
	FaultMachineCheck
)

// String returns the fault kind name.
func (k FaultKind) String() string {
	switch k {
	case FaultUnmapped:
		return "unmapped"
	case FaultOutOfRange:
		return "out-of-range"
	case FaultReadOnly:
		return "read-only"
	case FaultMachineCheck:
		return "machine-check"
	default:
		return fmt.Sprintf("fault(%d)", int(k))
	}
}

// Fault is the error type for all simulated memory faults. The
// characterization engine treats any Fault reaching the workload driver as
// a crash outcome.
type Fault struct {
	Kind FaultKind
	Addr Addr
}

// Error implements the error interface.
func (f *Fault) Error() string {
	return fmt.Sprintf("memory fault: %s at %#x", f.Kind, uint64(f.Addr))
}

// AsFault unwraps err as a *Fault if it is (or wraps) one.
func AsFault(err error) (*Fault, bool) {
	var f *Fault
	if errors.As(err, &f) {
		return f, true
	}
	return nil, false
}

// IsFault reports whether err is (or wraps) a memory fault.
func IsFault(err error) bool {
	_, ok := AsFault(err)
	return ok
}
