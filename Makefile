# Developer entry points. CI runs the same commands (.github/workflows/ci.yml).

GO ?= go

.PHONY: verify test build fmt vet race bench

# Tier-1 verify (ROADMAP.md): the gate every change must pass.
verify: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Extended gate: formatting, vet, race detector on the
# concurrency-sensitive packages.
fmt:
	@test -z "$$(gofmt -l .)" || { gofmt -l .; exit 1; }

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./internal/obsv ./internal/core

# Capture the root benchmark suite as BENCH_<date>.json for
# perf-trajectory diffing (BENCHTIME=5x make bench for a longer run).
bench:
	./scripts/bench.sh
