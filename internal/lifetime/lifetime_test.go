package lifetime

import (
	"testing"
	"time"

	"hrmsim/internal/apps"
	"hrmsim/internal/apps/websearch"
	"hrmsim/internal/design"
	"hrmsim/internal/ecc"
	"hrmsim/internal/faults"
	"hrmsim/internal/recovery"
)

// wsBuilder returns a small WebSearch configured for lifetime runs.
func wsBuilder(t *testing.T, protect bool) apps.Builder {
	t.Helper()
	cfg := websearch.DefaultConfig(5)
	cfg.Docs, cfg.Vocab, cfg.MinTerms, cfg.MaxTerms = 256, 128, 4, 12
	cfg.Queries, cfg.CacheSlots = 60, 32
	cfg.RequestCost = 10 * time.Second
	if protect {
		cfg.PrivateCodec = ecc.NewSECDED()
		cfg.HeapCodec = ecc.NewSECDED()
		cfg.StackCodec = ecc.NewSECDED()
	}
	b, err := websearch.NewBuilder(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// day keeps test runtimes manageable while still injecting plenty of
// errors at amplified rates.
const day = 24 * time.Hour

func TestSimulateNoErrorsFullyAvailable(t *testing.T) {
	res, err := Simulate(Config{
		Builder: wsBuilder(t, false),
		Rates:   faults.RateModel{ErrorsPerMonth: 0, SoftFraction: 1, LessTestedMultiplier: 1},
		Horizon: day,
		Seed:    1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Crashes != 0 || res.Downtime != 0 {
		t.Errorf("crashes/downtime without errors: %+v", res)
	}
	if res.Availability != 1 {
		t.Errorf("availability = %g, want 1", res.Availability)
	}
	if res.Incorrect != 0 {
		t.Errorf("incorrect responses without errors: %d", res.Incorrect)
	}
	if res.Requests < 8000 { // 86400s / 10s per request
		t.Errorf("requests = %d, expected about 8640", res.Requests)
	}
}

func TestSimulateHardErrorsCrashAndRecover(t *testing.T) {
	// A very aggressive hard-error rate on an unprotected server: the
	// stack and index eventually take stuck faults and the server
	// crash-loops but keeps recovering.
	res, err := Simulate(Config{
		Builder: wsBuilder(t, false),
		Rates: faults.RateModel{
			ErrorsPerMonth: 300000, SoftFraction: 0, LessTestedMultiplier: 1,
		},
		Horizon:      day,
		RecoveryTime: 10 * time.Minute,
		Seed:         2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.ErrorsInjected < 5000 {
		t.Errorf("errors injected = %d, expected about 10000", res.ErrorsInjected)
	}
	if res.Crashes == 0 {
		t.Error("no crashes under an extreme hard-error rate")
	}
	if res.Availability >= 1 {
		t.Error("availability unchanged despite crashes")
	}
	wantAvail := 1 - float64(res.Crashes)*(10*time.Minute).Minutes()/day.Minutes()
	if diff := res.Availability - wantAvail; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("availability accounting: got %g, want %g", res.Availability, wantAvail)
	}
	if res.Reboots != res.Crashes {
		t.Error("reboots != crashes")
	}
}

func TestSimulateECCWithScrubbingIsClean(t *testing.T) {
	// At error rates amplified to match the scaled-down memory,
	// independent single-bit soft errors accumulate in the read-only
	// index (nothing ever overwrites them) until two share a codeword
	// and defeat SEC-DED. A periodic scrubber removes them first:
	// SEC-DED + scrubbing should ride out a soft-error storm cleanly.
	rates := faults.RateModel{ErrorsPerMonth: 150000, SoftFraction: 1, LessTestedMultiplier: 1}
	unprot, err := Simulate(Config{
		Builder: wsBuilder(t, false), Rates: rates, Horizon: day, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	var scrubbed *recovery.PeriodicScrubber
	prot, err := Simulate(Config{
		Builder: wsBuilder(t, true), Rates: rates, Horizon: day, Seed: 3,
		Attach: func(app apps.App) error {
			s, err := recovery.NewPeriodicScrubber(time.Minute, app.Space().Regions()...)
			if err != nil {
				return err
			}
			scrubbed = s
			app.Space().AddAccessObserver(s)
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if prot.Crashes != 0 || prot.Incorrect != 0 {
		t.Errorf("SEC-DED+scrub server not clean: %d crashes, %d incorrect", prot.Crashes, prot.Incorrect)
	}
	if scrubbed == nil || scrubbed.Passes == 0 || scrubbed.Corrected == 0 {
		t.Errorf("scrubber idle: %+v", scrubbed)
	}
	if unprot.Crashes == 0 && unprot.Incorrect == 0 {
		t.Error("unprotected server unaffected; the comparison is vacuous")
	}
}

func TestSimulateECCWithoutScrubbingAccumulates(t *testing.T) {
	// The same storm without scrubbing: errors pile up in the never-
	// overwritten index until SEC-DED words go uncorrectable. This is
	// the scrubbing ablation — protection alone is not enough at high
	// rates.
	rates := faults.RateModel{ErrorsPerMonth: 150000, SoftFraction: 1, LessTestedMultiplier: 1}
	prot, err := Simulate(Config{
		Builder: wsBuilder(t, true), Rates: rates, Horizon: day, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if prot.Crashes == 0 {
		t.Error("expected uncorrectable accumulation without scrubbing")
	}
}

func TestSimulateMatchesAnalyticModelShape(t *testing.T) {
	// The simulated availability should land in the same regime as the
	// design package's analytic estimate for an unprotected server: at
	// high hard-error rates both degrade; at zero errors both are 1.
	rates := faults.RateModel{ErrorsPerMonth: 600000, SoftFraction: 0, LessTestedMultiplier: 1}
	res, err := Simulate(Config{
		Builder: wsBuilder(t, false), Rates: rates, Horizon: day, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Analytic: crashes = dailyErrors x P(crash per error). We don't
	// know P here exactly, but availability must be strictly below the
	// zero-error case and above zero.
	if res.Availability <= 0 || res.Availability >= 1 {
		t.Errorf("availability = %g, want in (0,1)", res.Availability)
	}
	if got := design.AvailabilityFor(float64(res.Crashes)*30, 10*time.Minute); got <= 0 {
		// Sanity-check the analytic helper accepts the simulated rate
		// (30x to scale a day to a month).
		t.Errorf("analytic availability = %g", got)
	}
}

func TestSimulateParRRecoversInsteadOfCrashing(t *testing.T) {
	// Parity + Par+R on the backed read-only index: detected errors are
	// recovered from the backing store, so soft errors in the private
	// region cause neither crashes nor wrong answers.
	cfg := websearch.DefaultConfig(6)
	cfg.Docs, cfg.Vocab, cfg.MinTerms, cfg.MaxTerms = 256, 128, 4, 12
	cfg.Queries, cfg.CacheSlots = 60, 32
	cfg.RequestCost = 10 * time.Second
	cfg.PrivateCodec = ecc.NewParity()
	cfg.PrivateMC = &recovery.ParR{}
	b, err := websearch.NewBuilder(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rates := faults.RateModel{ErrorsPerMonth: 150000, SoftFraction: 1, LessTestedMultiplier: 1}
	res, err := Simulate(Config{
		Builder: b,
		Rates:   rates,
		Horizon: day,
		Seed:    7,
	})
	if err != nil {
		t.Fatal(err)
	}
	handler := cfg.PrivateMC.(*recovery.ParR)
	if handler.Recoveries == 0 {
		t.Error("Par+R never recovered anything")
	}
	// The unprotected heap (result cache) still causes the residual
	// crashes/incorrect of the Detect&Recover design point; the
	// protected index must do markedly better than no protection.
	cfg2 := cfg
	cfg2.PrivateCodec = nil
	cfg2.PrivateMC = nil
	b2, err := websearch.NewBuilder(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	base, err := Simulate(Config{Builder: b2, Rates: rates, Horizon: day, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if res.Incorrect >= base.Incorrect && res.Crashes >= base.Crashes &&
		(res.Incorrect+res.Crashes) >= (base.Incorrect+base.Crashes) {
		t.Errorf("Par+R no better than unprotected: %d/%d vs %d/%d (crashes/incorrect)",
			res.Crashes, res.Incorrect, base.Crashes, base.Incorrect)
	}
	if res.ErrorsInjected == 0 {
		t.Error("no errors injected")
	}
}

func TestSimulateValidation(t *testing.T) {
	if _, err := Simulate(Config{}); err == nil {
		t.Error("missing builder accepted")
	}
	if _, err := Simulate(Config{Builder: wsBuilder(t, false), Horizon: -time.Hour}); err == nil {
		t.Error("negative horizon accepted")
	}
}

func TestSimulateAttachHookRuns(t *testing.T) {
	attached := 0
	_, err := Simulate(Config{
		Builder: wsBuilder(t, false),
		Rates:   faults.RateModel{ErrorsPerMonth: 0, SoftFraction: 1, LessTestedMultiplier: 1},
		Horizon: time.Hour,
		Seed:    8,
		Attach: func(app apps.App) error {
			attached++
			if app.Space() == nil {
				t.Error("nil space in attach")
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if attached == 0 {
		t.Error("attach hook never ran")
	}
}

func TestHardFaultsPersistAcrossReboot(t *testing.T) {
	// Inject hard errors at an extreme rate; after the first crash the
	// reboot must re-apply recorded stuck bits. We verify indirectly:
	// with persistence, the crash count under a burst of early hard
	// errors stays elevated (the fault that crashed the server is still
	// there after reboot and crashes it again until the workload stops
	// touching it... for the read-only index it will keep crashing).
	res, err := Simulate(Config{
		Builder: wsBuilder(t, false),
		Rates: faults.RateModel{
			ErrorsPerMonth: 3000000, SoftFraction: 0, LessTestedMultiplier: 1,
		},
		Horizon:      6 * time.Hour,
		RecoveryTime: 10 * time.Minute,
		Seed:         9,
		MaxErrors:    200,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Crashes < 2 {
		t.Errorf("crashes = %d, expected a crash loop from persistent faults", res.Crashes)
	}
}
