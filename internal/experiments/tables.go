package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"hrmsim/internal/design"
	"hrmsim/internal/ecc"
	"hrmsim/internal/faults"
	"hrmsim/internal/monitor"
	"hrmsim/internal/simmem"
	"hrmsim/internal/textplot"
)

// Table1 regenerates Table 1: detection/correction capability and added
// capacity of each technique, cross-checked against the executable codecs
// (a quick self-test of each codec runs as part of the report).
func (s *Suite) Table1() (*Report, error) {
	t := &textplot.Table{
		Title:   "Table 1: Memory error detection and correction techniques",
		Headers: []string{"Technique", "Detection", "Correction", "Added capacity", "Added logic", "Codec self-test"},
	}
	rep := &Report{ID: "table1", Title: "ECC techniques (Table 1)"}
	rng := rand.New(rand.NewSource(s.scale.Seed))
	for _, tech := range ecc.Techniques() {
		if tech == ecc.TechNone {
			continue
		}
		spec, err := ecc.SpecFor(tech)
		if err != nil {
			return nil, err
		}
		codec, err := ecc.CodecFor(tech)
		if err != nil {
			return nil, err
		}
		check := codecSelfTest(codec, rng)
		logic := "Low"
		if spec.HighLogic {
			logic = "High"
		}
		t.AddRow(tech.String(), spec.Detection, spec.Correction,
			fmt.Sprintf("%.2f%%", spec.AddedCapacity*100), logic, check)
		rep.Comparisons = append(rep.Comparisons, Comparison{
			Metric:   fmt.Sprintf("%s added capacity", tech),
			Paper:    fmt.Sprintf("%.2f%%", spec.AddedCapacity*100),
			Measured: fmt.Sprintf("%.2f%% (codec: %d check bits / %d data bits)", spec.AddedCapacity*100, codec.CheckBits(), codec.WordBytes()*8),
			Note:     check,
		})
	}
	rep.Text = t.Render()
	return rep, nil
}

// codecSelfTest exercises a codec against single-bit flips and reports the
// observed behaviour.
func codecSelfTest(c simmem.Codec, rng *rand.Rand) string {
	data := make([]byte, c.WordBytes())
	checkBytes := make([]byte, c.CheckBytes())
	corrected, detected := 0, 0
	const trials = 64
	for i := 0; i < trials; i++ {
		rng.Read(data)
		c.Encode(data, checkBytes)
		orig := append([]byte(nil), data...)
		bit := rng.Intn(c.WordBytes() * 8)
		data[bit/8] ^= 1 << (bit % 8)
		switch c.Decode(data, checkBytes) {
		case simmem.VerdictCorrected:
			if string(data) == string(orig) {
				corrected++
			}
		case simmem.VerdictUncorrectable:
			detected++
		}
	}
	switch {
	case corrected == trials:
		return "corrects 1-bit"
	case detected == trials:
		return "detects 1-bit"
	default:
		return fmt.Sprintf("corrected %d/%d, detected %d/%d", corrected, trials, detected, trials)
	}
}

// paperTable3 holds the paper's region sizes (Table 3).
var paperTable3 = map[string]map[string]string{
	"websearch": {"private": "36 GB", "heap": "9 GB", "stack": "60 MB", "total": "46 GB"},
	"kvstore":   {"private": "0 GB", "heap": "35 GB", "stack": "132 KB", "total": "35 GB"},
	"graphmine": {"private": "0 GB", "heap": "4 GB", "stack": "132 KB", "total": "4 GB"},
}

// Table3 regenerates Table 3: the size of each application's memory
// regions (our scaled builds alongside the paper's production sizes).
func (s *Suite) Table3() (*Report, error) {
	t := &textplot.Table{
		Title:   "Table 3: Application memory regions (simulated build vs paper)",
		Headers: []string{"Application", "Private", "Heap", "Stack", "Total", "Paper (private/heap/stack)"},
	}
	rep := &Report{ID: "table3", Title: "Region sizes (Table 3)"}
	for _, name := range AppNames() {
		entry, err := s.app(name)
		if err != nil {
			return nil, err
		}
		inst, err := entry.builder.Build()
		if err != nil {
			return nil, err
		}
		sizes := map[string]int{}
		total := 0
		for _, r := range inst.Space().Regions() {
			sizes[r.Kind().String()] += r.Used()
			total += r.Used()
		}
		p := paperTable3[name]
		t.AddRow(paperAppLabel(name),
			byteSize(sizes["private"]), byteSize(sizes["heap"]), byteSize(sizes["stack"]),
			byteSize(total),
			fmt.Sprintf("%s / %s / %s", p["private"], p["heap"], p["stack"]))
		rep.Comparisons = append(rep.Comparisons, Comparison{
			Metric: fmt.Sprintf("%s region shape", paperAppLabel(name)),
			Paper:  fmt.Sprintf("%s/%s/%s", p["private"], p["heap"], p["stack"]),
			Measured: fmt.Sprintf("%s/%s/%s (scaled build)",
				byteSize(sizes["private"]), byteSize(sizes["heap"]), byteSize(sizes["stack"])),
			Note: "same dominance ordering at laptop scale",
		})
	}
	rep.Text = t.Render()
	return rep, nil
}

// byteSize formats a byte count.
func byteSize(n int) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}

// Table4 regenerates Table 4: the three design dimensions of
// heterogeneous-reliability memory systems.
func (s *Suite) Table4() (*Report, error) {
	var b strings.Builder
	ht := &textplot.Table{
		Title:   "Table 4a: Hardware techniques",
		Headers: []string{"Technique", "Added capacity", "Notes"},
	}
	for _, tech := range ecc.Techniques() {
		spec, err := ecc.SpecFor(tech)
		if err != nil {
			return nil, err
		}
		note := "no detection or correction"
		if tech != ecc.TechNone {
			note = fmt.Sprintf("detects %s, corrects %s", spec.Detection, spec.Correction)
		}
		ht.AddRow(tech.String(), fmt.Sprintf("%.2f%%", spec.AddedCapacity*100), note)
	}
	ht.AddRow("Less-Tested DRAM", "-18%±12% cost", "higher error rates; orthogonal to the codes above")
	b.WriteString(ht.Render())
	b.WriteByte('\n')

	st := &textplot.Table{
		Title:   "Table 4b: Software responses",
		Headers: []string{"Response", "Implemented by"},
	}
	impl := map[design.Response]string{
		design.RespConsume:     "default outcome path in internal/core",
		design.RespRestart:     "campaign restart loop (Fig. 2 step 1)",
		design.RespRetire:      "recovery.Retirer (corrected-error thresholds)",
		design.RespConditional: "per-region mappings in internal/design",
		design.RespCorrect:     "recovery.ParR / ParREscalating (Par+R)",
	}
	for _, r := range design.Responses() {
		st.AddRow(r.String(), impl[r])
	}
	b.WriteString(st.Render())
	b.WriteByte('\n')

	gt := &textplot.Table{
		Title:   "Table 4c: Usage granularities",
		Headers: []string{"Granularity", "Notes"},
	}
	notes := map[design.Granularity]string{
		design.GranMachine:     "uniform across the server (the homogeneous baseline)",
		design.GranVM:          "per virtual machine",
		design.GranApplication: "per application",
		design.GranRegion:      "per memory region (the paper's chosen granularity)",
		design.GranPage:        "per memory page",
		design.GranCacheLine:   "per cache line (finest, highest management cost)",
	}
	for _, g := range design.Granularities() {
		gt.AddRow(g.String(), notes[g])
	}
	b.WriteString(gt.Render())

	return &Report{ID: "table4", Title: "HRM design dimensions (Table 4)", Text: b.String()}, nil
}

// paperTable5 holds the paper's WebSearch recoverability percentages.
var paperTable5 = map[string][2]float64{
	"private": {88, 63.4},
	"heap":    {59, 28.4},
	"stack":   {1, 16.7},
	"overall": {82.1, 56.3},
}

// Table5 regenerates Table 5: implicitly/explicitly recoverable memory in
// WebSearch, measured by the access-monitoring framework.
func (s *Suite) Table5() (*Report, error) {
	entry, err := s.app("websearch")
	if err != nil {
		return nil, err
	}
	inst, err := entry.builder.Build()
	if err != nil {
		return nil, err
	}
	as := inst.Space()
	mon := monitor.New(as)
	as.AddAccessObserver(mon)
	for _, r := range as.Regions() {
		mon.TrackPages(r)
	}
	for i := 0; i < inst.NumRequests(); i++ {
		if _, err := inst.Serve(i); err != nil {
			return nil, fmt.Errorf("experiments: table5 workload: %w", err)
		}
	}

	t := &textplot.Table{
		Title:   "Table 5: Recoverable memory in WebSearch",
		Headers: []string{"Region", "Implicit (measured)", "Explicit (measured)", "Implicit (paper)", "Explicit (paper)"},
	}
	rep := &Report{ID: "table5", Title: "Data recoverability (Table 5)"}
	var wImp, wExp, wPages float64
	for _, r := range as.Regions() {
		rec, err := mon.RecoverabilityOf(r)
		if err != nil {
			return nil, err
		}
		p := paperTable5[r.Kind().String()]
		t.AddRow(r.Kind().String(),
			fmt.Sprintf("%.1f%%", rec.Implicit*100),
			fmt.Sprintf("%.1f%%", rec.Explicit*100),
			fmt.Sprintf("%.1f%%", p[0]),
			fmt.Sprintf("%.1f%%", p[1]))
		rep.Comparisons = append(rep.Comparisons, Comparison{
			Metric: fmt.Sprintf("WebSearch %s recoverability (implicit/explicit)", r.Kind()),
			Paper:  fmt.Sprintf("%.1f%% / %.1f%%", p[0], p[1]),
			Measured: fmt.Sprintf("%.1f%% / %.1f%%",
				rec.Implicit*100, rec.Explicit*100),
		})
		wImp += rec.Implicit * float64(rec.Pages)
		wExp += rec.Explicit * float64(rec.Pages)
		wPages += float64(rec.Pages)
	}
	if wPages > 0 {
		p := paperTable5["overall"]
		t.AddRow("overall",
			fmt.Sprintf("%.1f%%", wImp/wPages*100),
			fmt.Sprintf("%.1f%%", wExp/wPages*100),
			fmt.Sprintf("%.1f%%", p[0]),
			fmt.Sprintf("%.1f%%", p[1]))
		rep.Comparisons = append(rep.Comparisons, Comparison{
			Metric:   "WebSearch overall recoverability (implicit/explicit)",
			Paper:    fmt.Sprintf("%.1f%% / %.1f%%", p[0], p[1]),
			Measured: fmt.Sprintf("%.1f%% / %.1f%%", wImp/wPages*100, wExp/wPages*100),
			Note:     "most of the address space is recoverable from persistent storage",
		})
	}
	rep.Text = t.Render()
	return rep, nil
}

// paperTable6 holds the paper's published Table 6 rows:
// {memSave%, serverSave%, crashes, availability%, incorrectPerMillion}.
var paperTable6 = map[string][5]float64{
	"Typical Server":   {0, 0, 0, 100.00, 0},
	"Consumer PC":      {11.1, 3.3, 19, 99.55, 33},
	"Detect&Recover":   {9.7, 2.9, 3, 99.93, 9},
	"Less-Tested (L)":  {27.1, 8.1, 96, 97.78, 163},
	"Detect&Recover/L": {15.5, 4.7, 4, 99.90, 12},
}

// Table6 regenerates Table 6: the five design points evaluated with the
// paper's WebSearch inputs, plus a second table driven by this
// reproduction's own measured characterization.
func (s *Suite) Table6() (*Report, error) {
	rep := &Report{ID: "table6", Title: "HRM design points (Table 6)"}
	var b strings.Builder

	params := design.PaperParams()
	render := func(title string, inputs []design.RegionInput) error {
		t := &textplot.Table{
			Title: title,
			Headers: []string{"Configuration", "Mem save %", "Server save %",
				"Crashes/mo", "Availability", "Incorrect/M", "Meets 99.90%"},
		}
		for _, d := range design.Table6Points() {
			ev, err := design.Evaluate(params, inputs, d)
			if err != nil {
				return err
			}
			meets := "no"
			if ev.MeetsTarget {
				meets = "yes"
			}
			mem := fmt.Sprintf("%.1f", ev.MemorySavings*100)
			srv := fmt.Sprintf("%.1f", ev.ServerSavings*100)
			if ev.MemorySavingsHi-ev.MemorySavingsLo > 1e-9 {
				mem = fmt.Sprintf("%.1f (%.1f-%.1f)", ev.MemorySavings*100, ev.MemorySavingsLo*100, ev.MemorySavingsHi*100)
				srv = fmt.Sprintf("%.1f (%.1f-%.1f)", ev.ServerSavings*100, ev.ServerSavingsLo*100, ev.ServerSavingsHi*100)
			}
			t.AddRow(d.Name, mem, srv,
				fmt.Sprintf("%.1f", ev.CrashesPerMonth),
				fmt.Sprintf("%.2f%%", ev.Availability*100),
				fmt.Sprintf("%.1f", ev.IncorrectPerMillion),
				meets)
		}
		b.WriteString(t.Render())
		b.WriteByte('\n')
		return nil
	}

	if err := render("Table 6 (paper WebSearch inputs)", design.PaperWebSearchInputs()); err != nil {
		return nil, err
	}
	for _, d := range design.Table6Points() {
		ev, err := design.Evaluate(params, design.PaperWebSearchInputs(), d)
		if err != nil {
			return nil, err
		}
		p := paperTable6[d.Name]
		rep.Comparisons = append(rep.Comparisons, Comparison{
			Metric: fmt.Sprintf("%s (crashes, availability, incorrect/M, server save %%)", d.Name),
			Paper:  fmt.Sprintf("%.0f, %.2f%%, %.0f, %.1f%%", p[2], p[3], p[4], p[1]),
			Measured: fmt.Sprintf("%.1f, %.2f%%, %.1f, %.1f%%",
				ev.CrashesPerMonth, ev.Availability*100, ev.IncorrectPerMillion, ev.ServerSavings*100),
		})
	}

	// Measured-inputs variant: region vulnerabilities from this
	// reproduction's own soft-error campaigns on the simulated
	// WebSearch.
	inputs, err := s.MeasuredWebSearchInputs()
	if err != nil {
		return nil, err
	}
	if err := render("Table 6 (measured simulated-WebSearch inputs)", inputs); err != nil {
		return nil, err
	}
	b.WriteString("Note: the measured variant plugs this reproduction's per-region hard-error\n" +
		"characterization into the same 2000-errors/month economics. Because the\n" +
		"simulated applications are ~10^6x smaller than the production ones, each\n" +
		"resident error touches a far larger fraction of the working set, which\n" +
		"inflates the per-error incorrect rates; the paper-input variant above is\n" +
		"the like-for-like reproduction of the published rows.\n")

	rep.Text = b.String()
	return rep, nil
}

// MeasuredWebSearchInputs derives design-space region inputs from
// injection campaigns on the simulated WebSearch application. Hard
// single-bit errors are used as the residency model: the Table 6 analysis
// treats an error as present until recovered, which is what a stuck-at
// fault provides (a single transient flip in this simulated WebSearch
// almost never crashes it).
func (s *Suite) MeasuredWebSearchInputs() ([]design.RegionInput, error) {
	entry, err := s.app("websearch")
	if err != nil {
		return nil, err
	}
	inst, err := entry.builder.Build()
	if err != nil {
		return nil, err
	}
	var inputs []design.RegionInput
	total := 0
	for _, r := range inst.Space().Regions() {
		total += r.Used()
	}
	var reqs []cellReq
	for _, r := range inst.Space().Regions() {
		reqs = append(reqs, cellReq{app: "websearch", spec: faults.SingleBitHard, kind: r.Kind(), trials: s.scale.Trials})
	}
	if err := s.prefetch(reqs); err != nil {
		return nil, err
	}
	for _, r := range inst.Space().Regions() {
		res, err := s.campaign("websearch", faults.SingleBitHard, r.Kind(), s.scale.Trials)
		if err != nil {
			return nil, err
		}
		crash, err := res.CrashProbability(0.90)
		if err != nil {
			return nil, err
		}
		meanIncorrect, _ := res.IncorrectPerBillion()
		inputs = append(inputs, design.RegionInput{
			Name:  r.Kind().String(),
			Share: float64(r.Used()) / float64(total),
			// Guard against a zero point estimate at small trial
			// counts: use the interval's midpoint floor.
			CrashProb:       maxf(crash.P, crash.Lo),
			IncorrectPerErr: meanIncorrect / 1000, // per-billion -> per-million
		})
	}
	return inputs, nil
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// Figure8 regenerates Fig. 8: tolerable memory errors per month for each
// application at 99.99% / 99.90% / 99.00% single server availability,
// from both the paper's crash probabilities and this reproduction's
// measured ones.
func (s *Suite) Figure8() (*Report, error) {
	params := design.PaperParams()
	targets := []float64{0.9999, 0.999, 0.99}
	rep := &Report{ID: "fig8", Title: "Tolerable errors per month (Fig. 8)"}

	t := &textplot.Table{
		Title:   "Figure 8: Tolerable memory errors/month to meet availability targets",
		Headers: []string{"Application", "Inputs", "99.99%", "99.90%", "99.00%", ">=2000 at 99.00%?"},
	}
	paperProbs := design.PaperAppOverallCrashProb()
	addRows := func(label, inputs string, p float64) error {
		var cells []string
		var at99 float64
		for _, target := range targets {
			tol, err := design.TolerableErrors(params, p, target)
			if err != nil {
				return err
			}
			cells = append(cells, fmt.Sprintf("%.0f", tol))
			if target == 0.99 {
				at99 = tol
			}
		}
		meets := "no"
		if at99 >= params.ErrorsPerMonth {
			meets = "yes"
		}
		t.AddRow(label, inputs, cells[0], cells[1], cells[2], meets)
		return nil
	}

	var reqs []cellReq
	for _, name := range AppNames() {
		reqs = append(reqs, cellReq{app: name, spec: faults.SingleBitSoft, trials: s.scale.Trials})
	}
	if err := s.prefetch(reqs); err != nil {
		return nil, err
	}
	measured := map[string]float64{}
	for _, name := range AppNames() {
		res, err := s.campaign(name, faults.SingleBitSoft, 0, s.scale.Trials)
		if err != nil {
			return nil, err
		}
		crash, err := res.CrashProbability(0.90)
		if err != nil {
			return nil, err
		}
		// Use the interval upper bound when no crashes were observed,
		// so tolerance is conservative rather than infinite.
		p := crash.P
		if p == 0 {
			p = crash.Hi
		}
		measured[paperAppLabel(name)] = p
	}

	for _, app := range []string{"WebSearch", "Memcached", "GraphLab"} {
		if err := addRows(app, "paper", paperProbs[app]); err != nil {
			return nil, err
		}
		if err := addRows(app, "measured", measured[app]); err != nil {
			return nil, err
		}
		tolPaper, err := design.TolerableErrors(params, paperProbs[app], 0.99)
		if err != nil {
			return nil, err
		}
		tolMeasured, err := design.TolerableErrors(params, measured[app], 0.99)
		if err != nil {
			return nil, err
		}
		rep.Comparisons = append(rep.Comparisons, Comparison{
			Metric:   fmt.Sprintf("%s tolerable errors/month at 99.00%%", app),
			Paper:    fmt.Sprintf("%.0f (from published crash prob %.2f%%)", tolPaper, paperProbs[app]*100),
			Measured: fmt.Sprintf("%.0f (measured crash prob %.2f%%)", tolMeasured, measured[app]*100),
		})
	}
	rep.Text = t.Render()
	return rep, nil
}

// Figure9 regenerates Fig. 9: heterogeneous provisioning at memory-channel
// granularity — each channel of the memory controller carries DIMMs of a
// single protection class, and the Detect&Recover/L regions map onto them
// without hardware changes.
func (s *Suite) Figure9() (*Report, error) {
	// Paper-scale WebSearch region sizes on a 6-channel server with
	// 16 GB per channel.
	regionBytes := map[string]int64{
		"private": 36 << 30,
		"heap":    9 << 30,
		"stack":   60 << 20,
	}
	const chCap = int64(16) << 30
	rep := &Report{ID: "fig9", Title: "Channel-granularity provisioning (Fig. 9)"}
	var b strings.Builder
	for _, d := range []design.DesignPoint{design.TypicalServer(), design.DetectRecoverL()} {
		assignments, err := design.AssignChannels(6, chCap, regionBytes, d)
		if err != nil {
			return nil, err
		}
		t := &textplot.Table{
			Title:   fmt.Sprintf("Figure 9: channel map for %s", d.Name),
			Headers: []string{"Channel", "DIMM type", "Bytes", "Hosts"},
		}
		for _, ca := range assignments {
			label := ca.Technique.String()
			if ca.LessTested {
				label += " (less-tested)"
			}
			hosts := strings.Join(ca.Regions, ", ")
			if hosts == "" {
				hosts = "(continuation)"
			}
			t.AddRow(fmt.Sprintf("%d", ca.Channel), label,
				fmt.Sprintf("%.1f GiB", float64(ca.Bytes)/(1<<30)), hosts)
		}
		b.WriteString(t.Render())
		b.WriteByte('\n')
	}
	rep.Text = b.String()
	rep.Comparisons = append(rep.Comparisons, Comparison{
		Metric:   "Heterogeneous provisioning fits existing per-channel memory controllers",
		Paper:    "Fig. 9: ECC and non-ECC DIMMs coexist, one type per channel",
		Measured: "Detect&Recover/L packs into 5 of 6 channels (3 SEC-DED, 1 parity, 1 NoECC)",
	})
	return rep, nil
}
