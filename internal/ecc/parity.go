package ecc

import (
	"math/bits"

	"hrmsim/internal/simmem"
)

// Parity is a detection-only code: one even-parity bit per 64-bit word
// (1.56% added capacity per Table 1). It detects any odd number of flipped
// bits and corrects nothing; any detection is reported uncorrectable so the
// software response (e.g. Par+R recovery from persistent storage) decides
// what happens next.
type Parity struct{}

var _ simmem.Codec = Parity{}

// NewParity returns the parity codec.
func NewParity() Parity { return Parity{} }

// Name implements simmem.Codec.
func (Parity) Name() string { return "Parity" }

// WordBytes implements simmem.Codec.
func (Parity) WordBytes() int { return 8 }

// CheckBytes implements simmem.Codec.
func (Parity) CheckBytes() int { return 1 }

// CheckBits implements simmem.Codec.
func (Parity) CheckBits() int { return 1 }

// Encode implements simmem.Codec.
func (Parity) Encode(data, check []byte) {
	check[0] = byte(parity64(data)) & 1
}

// Decode implements simmem.Codec.
func (Parity) Decode(data, check []byte) simmem.Verdict {
	if byte(parity64(data))&1 == check[0]&1 {
		return simmem.VerdictClean
	}
	return simmem.VerdictUncorrectable
}

// parity64 returns the population-count parity of an 8-byte slice.
func parity64(data []byte) int {
	var n int
	for _, b := range data {
		n += bits.OnesCount8(b)
	}
	return n & 1
}
