package chaos

import (
	"context"
	"net"
	"testing"
	"time"

	"hrmsim/internal/kvnode"
	"hrmsim/internal/obsv"
)

// e2eSeed keeps the node population, load mix, and injection schedule
// identical across the runs being compared.
const e2eSeed = 42

// runE2E hosts a kvnode in-process and runs the full steady → chaos →
// recovery experiment against it over real TCP.
func runE2E(t *testing.T, ecc, recoverMode string, expectRecovery bool) *Verdict {
	t.Helper()
	reg := obsv.NewRegistry()
	srv, err := kvnode.New(kvnode.Config{
		Keys:     128,
		ECC:      ecc,
		Seed:     e2eSeed,
		Recover:  recoverMode,
		Registry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srvCtx, stopSrv := context.WithCancel(context.Background())
	srvDone := make(chan error, 1)
	go func() { srvDone <- srv.Serve(srvCtx, ln) }()
	defer func() {
		stopSrv()
		if err := <-srvDone; err != nil {
			t.Errorf("serve: %v", err)
		}
	}()

	// ReadFraction 1 keeps the run deterministic two ways: the oracle
	// version ceiling never moves, and (for Par+R) restored words are
	// never stale.
	gen, err := NewGenerator(GenConfig{
		Addr:         ln.Addr().String(),
		Conns:        4,
		Keys:         128,
		ValueSize:    64,
		ReadFraction: 1,
		ZipfS:        1.1,
		Seed:         e2eSeed,
		OpTimeout:    5 * time.Second,
		Registry:     reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	inj, err := NewLocalInjector(srv, "hot", nil, e2eSeed)
	if err != nil {
		t.Fatal(err)
	}
	exp, err := NewExperiment(ExperimentConfig{
		Name:        "e2e-" + ecc,
		Addr:        ln.Addr().String(),
		Steady:      150 * time.Millisecond,
		Chaos:       300 * time.Millisecond,
		Recovery:    150 * time.Millisecond,
		SampleEvery: 50 * time.Millisecond,
		Injections:  8,
		Injector:    inj,
		// The verification read right after each flip is what makes the
		// verdict deterministic: corruption is always witnessed.
		ProbeInjected: true,
		SLOs:          DefaultSLOs(1e6, 1e6, expectRecovery),
		Generator:     gen,
		Registry:      reg,
		Seed:          e2eSeed,
	})
	if err != nil {
		t.Fatal(err)
	}
	v, err := exp.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func phaseReport(t *testing.T, v *Verdict, phase string) PhaseReport {
	t.Helper()
	for _, p := range v.Phases {
		if p.Phase == phase {
			return p
		}
	}
	t.Fatalf("verdict has no %s phase: %+v", phase, v.Phases)
	return PhaseReport{}
}

func findResult(v *Verdict, name, phase string) (SLOResult, bool) {
	for _, r := range v.Results {
		if r.Name == name && r.Phase == phase {
			return r, true
		}
	}
	return SLOResult{}, false
}

// TestE2EUnprotectedVsSECDED is the discriminating experiment the harness
// exists for: the same seed, load profile, and injection schedule driven
// against an unprotected node and a SEC-DED node. The unprotected node
// must fail the no-wrong-values objective during chaos; SEC-DED must
// correct every fault and pass everything.
func TestE2EUnprotectedVsSECDED(t *testing.T) {
	none := runE2E(t, "none", "", false)
	secded := runE2E(t, "secded", "", false)

	if none.Pass {
		t.Error("unprotected node passed under injection; wrong values went unwitnessed")
	}
	r, ok := findResult(none, "no-wrong-values", PhaseChaos)
	if !ok {
		t.Fatalf("no-wrong-values/chaos result missing: %+v", none.Results)
	}
	if r.Pass {
		t.Error("no-wrong-values passed on the unprotected node during chaos")
	}
	if p := phaseReport(t, none, PhaseChaos); p.WrongValues == 0 || p.Injections == 0 {
		t.Errorf("unprotected chaos window: %d wrong values over %d injections; want both > 0",
			p.WrongValues, p.Injections)
	}
	// Before injection starts, the unprotected node is healthy.
	if r, ok := findResult(none, "no-wrong-values", PhaseSteady); !ok || !r.Pass {
		t.Errorf("unprotected steady phase should pass no-wrong-values: %+v", r)
	}

	if !secded.Pass {
		t.Errorf("SEC-DED node failed: %+v", secded.Failed())
	}
	p := phaseReport(t, secded, PhaseChaos)
	if p.Corrected == 0 {
		t.Error("SEC-DED chaos window shows no corrections; injections not exercised")
	}
	if p.WrongValues != 0 || p.Uncorrectable != 0 {
		t.Errorf("SEC-DED chaos window: %d wrong values, %d uncorrectable; want 0",
			p.WrongValues, p.Uncorrectable)
	}
	// Same schedule on both sides.
	if a, b := phaseReport(t, none, PhaseChaos).Injections, p.Injections; a != b {
		t.Errorf("schedules diverged: %d vs %d injections", a, b)
	}
}

// TestE2EParRRecoversUnderLoad runs parity detection with Par+R word
// restore: faults are detected at read time and repaired online while
// traffic continues, so the run passes including the recovery-active
// objective, with repairs landing in the chaos window.
func TestE2EParRRecoversUnderLoad(t *testing.T) {
	v := runE2E(t, "parity", "parr", true)
	if !v.Pass {
		t.Fatalf("parity+parr run failed: %+v", v.Failed())
	}
	p := phaseReport(t, v, PhaseChaos)
	if p.Recovered == 0 {
		t.Error("no online repairs recorded in the chaos window")
	}
	if r, ok := findResult(v, "recovery-active", PhaseChaos); !ok || !r.Pass {
		t.Errorf("recovery-active/chaos: %+v, ok=%v", r, ok)
	}
	if p.WrongValues != 0 {
		t.Errorf("%d wrong values served despite Par+R restore", p.WrongValues)
	}
}
