// Control-plane tests: the coordinator's heartbeat-tailed fleet view,
// the status HTTP server, the `hrmsim status` rendering, and the
// straggler liveness classification.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"hrmsim"
)

// TestCoordinatorControlPlaneEndToEnd pins the PR's acceptance
// criterion: a sharded campaign's live fleet view — delivered through
// the FleetSink, served at /statusz, and re-read from the shard
// directory by `hrmsim status` after the run — reports exactly the
// trial counts of the final merged Characterization.
func TestCoordinatorControlPlaneEndToEnd(t *testing.T) {
	cfg := testCoordinatorConfig(t)
	cfg.Shards = 4
	var fleetPtr atomic.Pointer[hrmsim.FleetStatus]
	cfg.FleetSink = func(fs *hrmsim.FleetStatus) { fleetPtr.Store(fs) }
	cfg.Launch = inProcessLauncher(t, cfg, nil)
	out, err := runCoordinator(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Failed) != 0 || out.Info.Missing != 0 {
		t.Fatalf("unhealthy run: failed=%v info=%+v", out.Failed, out.Info)
	}
	merged := out.Result

	// The final sink delivery reflects the settled campaign.
	fleet := fleetPtr.Load()
	if fleet == nil {
		t.Fatal("coordinator never delivered a fleet status")
	}
	if fleet.Running != 0 || fleet.Done != cfg.Trials || fleet.Total != cfg.Trials {
		t.Errorf("final fleet = running %d, %d/%d done", fleet.Running, fleet.Done, fleet.Total)
	}
	if fleet.Completed != merged.Completed || fleet.Aborted != merged.Aborted {
		t.Errorf("fleet completed/aborted = %d/%d, merged %d/%d",
			fleet.Completed, fleet.Aborted, merged.Completed, merged.Aborted)
	}
	// Outcome taxonomy equality in both directions (the merged map also
	// carries explicit zeros; the heartbeat counts only observed labels).
	for o, n := range fleet.Outcomes {
		if merged.Outcomes[o] != n {
			t.Errorf("fleet outcome %s = %d, merged %d", o, n, merged.Outcomes[o])
		}
	}
	for o, n := range merged.Outcomes {
		if n != 0 && fleet.Outcomes[o] != n {
			t.Errorf("merged outcome %s = %d missing from fleet view", o, n)
		}
	}

	// The status server serves the same aggregate at /statusz.
	shutdown, addr, err := startStatusServer("127.0.0.1:0", fleetPtr.Load, cfg.Metrics)
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()
	get := func(path string) (int, []byte) {
		t.Helper()
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer func() { _ = resp.Body.Close() }()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return resp.StatusCode, body
	}
	code, body := get("/statusz")
	if code != http.StatusOK {
		t.Fatalf("/statusz = %d: %s", code, body)
	}
	var env struct {
		SchemaVersion int             `json:"schema_version"`
		Command       string          `json:"command"`
		Result        fleetStatusJSON `json:"result"`
	}
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatalf("decoding /statusz: %v", err)
	}
	if env.SchemaVersion != schemaVersion || env.Command != "status" {
		t.Errorf("/statusz envelope = %+v", env)
	}
	if env.Result.Done != cfg.Trials || env.Result.Completed != merged.Completed ||
		env.Result.Aborted != merged.Aborted || env.Result.Running != 0 {
		t.Errorf("/statusz result = %+v, want the merged counts", env.Result)
	}
	if len(env.Result.Shards) != cfg.Shards {
		t.Errorf("/statusz has %d shards, want %d", len(env.Result.Shards), cfg.Shards)
	}
	for o, n := range env.Result.Outcomes {
		if merged.Outcomes[o] != n {
			t.Errorf("/statusz outcome %s = %d, merged %d", o, n, merged.Outcomes[o])
		}
	}

	// /metrics merges the fleet heartbeat snapshots with the
	// coordinator's own registry into one exposition.
	code, body = get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d", code)
	}
	for _, want := range []string{
		fmt.Sprintf("campaign_trials_total %d", merged.Completed),
		fmt.Sprintf("campaign_shards_total %d", cfg.Shards),
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}
	code, body = get("/healthz")
	if code != http.StatusOK || !strings.Contains(string(body), "ok") {
		t.Errorf("/healthz = %d %q", code, body)
	}

	// `hrmsim status` re-reads the same numbers from the shard
	// directory after the run (the records are the final heartbeats).
	after, err := hrmsim.LoadFleetStatus(cfg.Dir)
	if err != nil {
		t.Fatal(err)
	}
	view := renderFleetStatus(after, time.Now())
	for _, want := range []string{
		fmt.Sprintf("%d/%d trials (100%%)", cfg.Trials, cfg.Trials),
		fmt.Sprintf("%d completed, %d aborted", merged.Completed, merged.Aborted),
		fmt.Sprintf("%d/%d shard(s) reporting, 0 running", cfg.Shards, cfg.Shards),
	} {
		if !strings.Contains(view, want) {
			t.Errorf("status view missing %q:\n%s", want, view)
		}
	}
	for o, n := range after.Outcomes {
		if !strings.Contains(view, fmt.Sprintf("%s=%d", o, n)) {
			t.Errorf("status view missing outcome %s=%d:\n%s", o, n, view)
		}
	}
}

// TestStatuszBeforeFirstHeartbeat: the server answers 503, not a
// panic or an empty 200, while no shard has reported.
func TestStatuszBeforeFirstHeartbeat(t *testing.T) {
	cfg := testCoordinatorConfig(t)
	shutdown, addr, err := startStatusServer("127.0.0.1:0",
		func() *hrmsim.FleetStatus { return nil }, cfg.Metrics)
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()
	resp, err := http.Get("http://" + addr + "/statusz")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("/statusz before heartbeat = %d, want 503", resp.StatusCode)
	}
	// /metrics still serves the coordinator's own registry.
	mresp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = mresp.Body.Close() }()
	if mresp.StatusCode != http.StatusOK {
		t.Errorf("/metrics before heartbeat = %d, want 200", mresp.StatusCode)
	}
}

// TestShardLiveness covers the straggler classification: heartbeat age
// is primary, journal mtime the fallback, and a worker with neither
// artifact is diagnosed explicitly instead of warned on a stale floor.
func TestShardLiveness(t *testing.T) {
	dir := t.TempDir()
	now := time.Now()
	floor := now.Add(-time.Minute)
	journal := filepath.Join(dir, "shard.jsonl")

	// Heartbeat present: it sets last and the detail names its age.
	hb := now.Add(-10 * time.Second)
	last, detail := shardLiveness(now, floor, hb, true, journal)
	if !last.Equal(hb) {
		t.Errorf("heartbeat case last = %v, want %v", last, hb)
	}
	if !strings.Contains(detail, "last heartbeat 10s ago") {
		t.Errorf("heartbeat detail = %q", detail)
	}
	// A heartbeat older than the floor must not move last backwards.
	last, _ = shardLiveness(now, floor, now.Add(-2*time.Minute), true, journal)
	if !last.Equal(floor) {
		t.Errorf("stale heartbeat moved last to %v, want floor %v", last, floor)
	}

	// No heartbeat, no journal: the explicit not-started diagnosis.
	last, detail = shardLiveness(now, floor, time.Time{}, false, journal)
	if !last.Equal(floor) {
		t.Errorf("missing-journal last = %v, want floor", last)
	}
	if !strings.Contains(detail, "has not finished a single trial") {
		t.Errorf("missing-journal detail = %q", detail)
	}

	// No heartbeat, journal present: mtime is the fallback signal.
	if err := os.WriteFile(journal, []byte("{}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	last, detail = shardLiveness(now, floor, time.Time{}, false, journal)
	if !last.After(floor) {
		t.Errorf("journal fallback did not advance last: %v", last)
	}
	if !strings.Contains(detail, "no heartbeat; journal") || !strings.Contains(detail, "unchanged for") {
		t.Errorf("journal detail = %q", detail)
	}
}

// TestFleetProgressLine: the aggregate progress line carries the fleet
// counts, rate, and ETA while running, and plain counts once settled.
func TestFleetProgressLine(t *testing.T) {
	fs := &hrmsim.FleetStatus{
		Trials:       400,
		Done:         100,
		Running:      3,
		TrialsPerSec: 50,
		ETA:          6 * time.Second,
	}
	line := fleetProgressLine(fs)
	for _, want := range []string{"100/400 trials (25%)", "3 shard(s) running", "50.0 trials/s", "ETA 6s"} {
		if !strings.Contains(line, want) {
			t.Errorf("progress line missing %q: %q", want, line)
		}
	}
	fs.Done, fs.Running, fs.TrialsPerSec, fs.ETA = 400, 0, 0, 0
	line = fleetProgressLine(fs)
	if !strings.Contains(line, "400/400 trials (100%)") || strings.Contains(line, "ETA") {
		t.Errorf("settled progress line = %q", line)
	}
}

// TestCmdStatusValidation covers the subcommand's flag contract.
func TestCmdStatusValidation(t *testing.T) {
	if err := cmdStatus(nil); err == nil || !strings.Contains(err.Error(), "directory is required") {
		t.Errorf("no-dir err = %v", err)
	}
	if err := cmdStatus([]string{"-watch", "-json", t.TempDir()}); err == nil ||
		!strings.Contains(err.Error(), "-watch renders text") {
		t.Errorf("watch+json err = %v", err)
	}
	// A directory without status records surfaces ErrNoStatus.
	if err := cmdStatus([]string{t.TempDir()}); err == nil ||
		!strings.Contains(err.Error(), "no shard status records") {
		t.Errorf("empty-dir err = %v", err)
	}
}
