package hrmsim

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// TestCharacterizeJournalResumeEquivalence exercises the facade end of
// the resume path: a characterization interrupted partway through,
// journaling to a file, then resumed from that file, must report the
// same aggregates and outcome counts as an uninterrupted run.
func TestCharacterizeJournalResumeEquivalence(t *testing.T) {
	base := CharacterizeConfig{
		App:    AppKVStore,
		Error:  SoftSingleBit,
		Size:   SizeSmall,
		Trials: 40,
		Seed:   9,
	}
	want, err := Characterize(base)
	if err != nil {
		t.Fatal(err)
	}

	journal := filepath.Join(t.TempDir(), "trials.jsonl")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	interruptedCfg := base
	interruptedCfg.JournalPath = journal
	interruptedCfg.Context = ctx
	interruptedCfg.Progress = func(p ProgressInfo) {
		if p.Done == 12 {
			cancel()
		}
	}
	partial, err := Characterize(interruptedCfg)
	if err != nil {
		t.Fatal(err)
	}
	if !partial.Interrupted {
		t.Fatal("interrupted run did not report Interrupted")
	}
	if partial.Completed >= base.Trials {
		t.Fatalf("interrupt raced: all %d trials completed", base.Trials)
	}

	resumeCfg := base
	resumeCfg.ResumePath = journal
	got, err := Characterize(resumeCfg)
	if err != nil {
		t.Fatal(err)
	}
	if got.Interrupted {
		t.Error("resumed run reported Interrupted")
	}
	if got.Resumed != partial.Completed {
		t.Errorf("Resumed = %d, want the %d journaled trials", got.Resumed, partial.Completed)
	}
	if got.Completed != base.Trials {
		t.Errorf("Completed = %d, want %d", got.Completed, base.Trials)
	}

	// The resumed characterization differs from the baseline only in the
	// resume bookkeeping.
	wantCmp, gotCmp := *want, *got
	gotCmp.Resumed = wantCmp.Resumed
	if !reflect.DeepEqual(wantCmp, gotCmp) {
		t.Errorf("resumed characterization diverged:\nbase:    %+v\nresumed: %+v", wantCmp, gotCmp)
	}
}

// TestCharacterizeJournalAndResumeSameFile: pointing -journal and
// -resume at the same file (the CLI's documented workflow) fills in only
// the missing trials and leaves a complete journal behind.
func TestCharacterizeJournalAndResumeSameFile(t *testing.T) {
	base := CharacterizeConfig{
		App:    AppKVStore,
		Error:  SoftSingleBit,
		Size:   SizeSmall,
		Trials: 20,
		Seed:   5,
	}
	journal := filepath.Join(t.TempDir(), "trials.jsonl")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfg := base
	cfg.JournalPath = journal
	cfg.Context = ctx
	cfg.Progress = func(p ProgressInfo) {
		if p.Done == 5 {
			cancel()
		}
	}
	if _, err := Characterize(cfg); err != nil {
		t.Fatal(err)
	}

	cfg = base
	cfg.JournalPath = journal
	cfg.ResumePath = journal
	got, err := Characterize(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got.Completed != base.Trials {
		t.Errorf("Completed = %d, want %d", got.Completed, base.Trials)
	}
	if got.Resumed == 0 {
		t.Error("second run resumed nothing")
	}

	// The journal now holds every trial: a third run is pure replay.
	cfg = base
	cfg.ResumePath = journal
	replay, err := Characterize(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if replay.Resumed != base.Trials || replay.Completed != base.Trials {
		t.Errorf("replay resumed %d / completed %d, want all %d",
			replay.Resumed, replay.Completed, base.Trials)
	}
	if !reflect.DeepEqual(got.Outcomes, replay.Outcomes) {
		t.Errorf("replay outcomes %v diverged from %v", replay.Outcomes, got.Outcomes)
	}
}

// TestCharacterizeResumeRejectsMismatchedJournal: resuming from a
// journal written for a different campaign identity is an error, not a
// silent merge of unrelated trials.
func TestCharacterizeResumeRejectsMismatchedJournal(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "trials.jsonl")
	cfg := CharacterizeConfig{
		App:         AppKVStore,
		Error:       SoftSingleBit,
		Size:        SizeSmall,
		Trials:      5,
		Seed:        3,
		JournalPath: journal,
	}
	if _, err := Characterize(cfg); err != nil {
		t.Fatal(err)
	}
	other := cfg
	other.JournalPath = ""
	other.ResumePath = journal
	other.Seed = 4
	if _, err := Characterize(other); err == nil {
		t.Fatal("resume accepted a journal with a different seed")
	} else if !strings.Contains(err.Error(), "seed") {
		t.Errorf("error %v does not name the mismatch", err)
	}

	if _, err := Characterize(CharacterizeConfig{
		App: AppKVStore, Size: SizeSmall, Trials: 5,
		ResumePath: filepath.Join(t.TempDir(), "missing.jsonl"),
	}); !os.IsNotExist(errUnwrapAll(err)) {
		t.Errorf("missing resume file error = %v", err)
	}
}

// errUnwrapAll unwraps to the innermost error for os.IsNotExist.
func errUnwrapAll(err error) error {
	type unwrapper interface{ Unwrap() error }
	for err != nil {
		u, ok := err.(unwrapper)
		if !ok {
			return err
		}
		err = u.Unwrap()
	}
	return err
}
