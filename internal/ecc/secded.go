package ecc

import (
	"math/bits"

	"hrmsim/internal/simmem"
)

// SECDED is an extended Hamming (72,64) code: 8 check bits per 64 data
// bits (12.5% added capacity per Table 1), correcting any single-bit error
// and detecting any double-bit error per word. This is the protection of
// the paper's "Typical Server" baseline.
//
// Codeword layout: Hamming positions 1..71, with check bits at the seven
// power-of-two positions and data bits filling the rest; one overall
// parity bit extends the code from SEC to SEC-DED. The check byte stores
// Hamming checks in bits 0..6 and the overall parity in bit 7.
type SECDED struct{}

var _ simmem.Codec = SECDED{}

// NewSECDED returns the SEC-DED codec.
func NewSECDED() SECDED { return SECDED{} }

// secdedPos[k] is the Hamming codeword position of data bit k: the k-th
// position in 1..71 that is not a power of two.
var secdedPos [64]int

// secdedDataIdx maps a Hamming position back to its data bit index, or -1.
var secdedDataIdx [72]int

// secdedTab[i][v] folds data byte i with value v into the codeword in one
// lookup: bits 0..6 accumulate the XOR of the Hamming positions of v's
// set bits, bit 7 accumulates v's parity. XORing the eight lookups yields
// the seven Hamming checks and the overall data parity of a whole word —
// the encode hot path runs eight table loads instead of 64 bit probes.
var secdedTab [8][256]byte

func init() {
	for i := range secdedDataIdx {
		secdedDataIdx[i] = -1
	}
	k := 0
	for p := 1; p <= 71; p++ {
		if p&(p-1) == 0 { // power of two: check-bit position
			continue
		}
		secdedPos[k] = p
		secdedDataIdx[p] = k
		k++
	}
	if k != 64 {
		panic("ecc: SEC-DED position table construction failed")
	}
	for i := 0; i < 8; i++ {
		for v := 0; v < 256; v++ {
			var e byte
			for j := 0; j < 8; j++ {
				if v>>j&1 == 1 {
					e ^= byte(secdedPos[8*i+j])
				}
			}
			secdedTab[i][v] = e | byte(bits.OnesCount8(byte(v))&1)<<7
		}
	}
}

// Name implements simmem.Codec.
func (SECDED) Name() string { return "SEC-DED" }

// WordBytes implements simmem.Codec.
func (SECDED) WordBytes() int { return 8 }

// CheckBytes implements simmem.Codec.
func (SECDED) CheckBytes() int { return 1 }

// CheckBits implements simmem.Codec.
func (SECDED) CheckBits() int { return 8 }

// dataBit returns data bit k (0..63) of an 8-byte word.
func dataBit(data []byte, k int) byte {
	return (data[k>>3] >> (k & 7)) & 1
}

// flipDataBit flips data bit k of an 8-byte word.
func flipDataBit(data []byte, k int) {
	data[k>>3] ^= 1 << (k & 7)
}

// secdedFold XORs the eight per-byte table entries: bits 0..6 are the
// Hamming checks, bit 7 the overall data parity.
func secdedFold(data []byte) byte {
	_ = data[7]
	return secdedTab[0][data[0]] ^ secdedTab[1][data[1]] ^
		secdedTab[2][data[2]] ^ secdedTab[3][data[3]] ^
		secdedTab[4][data[4]] ^ secdedTab[5][data[5]] ^
		secdedTab[6][data[6]] ^ secdedTab[7][data[7]]
}

// hammingChecks computes the seven Hamming check bits over the data bits.
func hammingChecks(data []byte) byte {
	return secdedFold(data) & 0x7f
}

// Encode implements simmem.Codec.
func (SECDED) Encode(data, check []byte) {
	f := secdedFold(data)
	c := f & 0x7f
	// Overall parity covers all 71 codeword bits: 64 data + 7 checks.
	p := f>>7 ^ byte(bits.OnesCount8(c)&1)
	check[0] = c | p<<7
}

// Decode implements simmem.Codec.
func (SECDED) Decode(data, check []byte) simmem.Verdict {
	storedC := check[0] & 0x7f
	storedP := check[0] >> 7
	f := secdedFold(data)
	calcC := f & 0x7f
	syndrome := int(storedC ^ calcC)
	calcP := f>>7 ^ byte(bits.OnesCount8(storedC)&1)
	parityErr := calcP != storedP

	switch {
	case syndrome == 0 && !parityErr:
		return simmem.VerdictClean
	case syndrome == 0 && parityErr:
		// The overall parity bit itself flipped.
		check[0] ^= 0x80
		return simmem.VerdictCorrected
	case parityErr:
		// Odd number of errors; assume one and locate it by syndrome.
		if syndrome&(syndrome-1) == 0 {
			// Power-of-two syndrome: a check bit flipped.
			check[0] ^= byte(syndrome)
			return simmem.VerdictCorrected
		}
		if syndrome <= 71 && secdedDataIdx[syndrome] >= 0 {
			flipDataBit(data, secdedDataIdx[syndrome])
			return simmem.VerdictCorrected
		}
		// Syndrome points outside the codeword: at least three errors.
		return simmem.VerdictUncorrectable
	default:
		// Nonzero syndrome with even parity: double-bit error.
		return simmem.VerdictUncorrectable
	}
}
