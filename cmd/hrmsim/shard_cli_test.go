package main

import (
	"encoding/json"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"hrmsim/internal/core"
)

// TestShardMergeCLIRoundTrip drives the full CLI workflow: N
// `characterize -shard i/N -journal` worker runs, then `merge -json`,
// and checks the merged result matches the single-process `-json` run
// field for field (modulo parallelism) plus the envelope's shard/merged
// sections.
func TestShardMergeCLIRoundTrip(t *testing.T) {
	dir := t.TempDir()
	base := []string{"-app", "kvstore", "-size", "small", "-trials", "24", "-seed", "6"}

	single := captureStdout(t, func() error {
		return run(append([]string{"characterize"}, append(base, "-json")...))
	})
	wantRes := decodeEnvelope(t, single, "characterize")

	for _, shard := range []string{"0/2", "1/2"} {
		i := int(shard[0] - '0')
		journal := filepath.Join(dir, core.ShardJournalName(i, 2))
		out := captureStdout(t, func() error {
			return run(append([]string{"characterize"}, append(base,
				"-shard", shard, "-journal", journal, "-json")...))
		})
		var env map[string]any
		if err := json.Unmarshal([]byte(out), &env); err != nil {
			t.Fatal(err)
		}
		sh, ok := env["shard"].(map[string]any)
		if !ok {
			t.Fatalf("shard %s: envelope has no shard section: %v", shard, env["shard"])
		}
		if sh["index"] != float64(i) || sh["count"] != float64(2) {
			t.Errorf("shard %s: envelope shard = %v", shard, sh)
		}
		// -shard with -journal derives the manifest path automatically.
		if _, err := core.ReadManifest(core.ManifestPathFor(journal)); err != nil {
			t.Errorf("shard %s wrote no readable manifest: %v", shard, err)
		}
	}

	merged := captureStdout(t, func() error {
		return run([]string{"merge", "-dir", dir, "-json"})
	})
	gotRes := decodeEnvelope(t, merged, "merge")
	gotRes["parallelism"] = wantRes["parallelism"] // run-shape bookkeeping, documented to differ
	if !reflect.DeepEqual(wantRes, gotRes) {
		t.Errorf("merged result != single-process result\nsingle: %v\nmerged: %v", wantRes, gotRes)
	}

	var env map[string]any
	if err := json.Unmarshal([]byte(merged), &env); err != nil {
		t.Fatal(err)
	}
	m, ok := env["merged"].(map[string]any)
	if !ok {
		t.Fatalf("merge envelope has no merged section: %v", env["merged"])
	}
	if m["records"] != float64(24) {
		t.Errorf("merged.records = %v, want 24", m["records"])
	}
	if shards, ok := m["shards"].([]any); !ok || len(shards) != 2 {
		t.Errorf("merged.shards = %v, want 2 entries", m["shards"])
	}
	if _, ok := m["config_hash"].(string); !ok {
		t.Errorf("merged.config_hash missing: %v", m["config_hash"])
	}
}

// TestMergeRejectsMismatchedShards: shards from two different campaigns
// (different seeds) in one directory must fail the merge.
func TestMergeRejectsMismatchedShards(t *testing.T) {
	dir := t.TempDir()
	for i, seed := range []string{"1", "2"} {
		journal := filepath.Join(dir, core.ShardJournalName(i, 2))
		_ = captureStdout(t, func() error {
			return run([]string{"characterize", "-app", "kvstore", "-size", "small",
				"-trials", "10", "-seed", seed,
				"-shard", []string{"0/2", "1/2"}[i], "-journal", journal})
		})
	}
	err := run([]string{"merge", "-dir", dir})
	if err == nil || !strings.Contains(err.Error(), "different campaign") {
		t.Fatalf("merge of mismatched shards: got %v, want different-campaign error", err)
	}
}

// TestShardFlagValidation: malformed or misplaced sharding flags fail
// fast with flag-level errors.
func TestShardFlagValidation(t *testing.T) {
	cases := [][]string{
		{"characterize", "-app", "kvstore", "-shard", "2/2"},                                       // index out of range
		{"characterize", "-app", "kvstore", "-shard", "banana"},                                    // not i/N
		{"characterize", "-app", "kvstore", "-shards", "2"},                                        // -shards without -coordinator
		{"characterize", "-app", "kvstore", "-coordinator"},                                        // -coordinator without -shards
		{"characterize", "-app", "kvstore", "-coordinator", "-shards", "2", "-shard", "0/2"},       // both modes
		{"characterize", "-app", "kvstore", "-coordinator", "-shards", "2", "-journal", "x.jsonl"}, // coordinator owns journals
		{"characterize", "-app", "kvstore", "-manifest", "m.json"},                                 // manifest without journal
		{"merge"}, // no directory
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("run(%v): want error", args)
		}
	}
}
