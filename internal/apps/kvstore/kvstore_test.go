package kvstore

import (
	"bytes"
	"testing"

	"hrmsim/internal/apps"
	"hrmsim/internal/ecc"
	"hrmsim/internal/simmem"
	"hrmsim/internal/trace"
)

func smallConfig(seed int64) Config {
	cfg := DefaultConfig(seed)
	cfg.Keys = 256
	cfg.Ops = 500
	return cfg
}

func build(t *testing.T, cfg Config) *App {
	t.Helper()
	b, err := NewBuilder(cfg)
	if err != nil {
		t.Fatal(err)
	}
	app, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return app.(*App)
}

func golden(t *testing.T, app apps.App) []uint64 {
	t.Helper()
	out := make([]uint64, app.NumRequests())
	for i := range out {
		resp, err := app.Serve(i)
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		out[i] = resp.Digest
	}
	return out
}

func TestGoldenDeterministic(t *testing.T) {
	cfg := smallConfig(1)
	g1 := golden(t, build(t, cfg))
	g2 := golden(t, build(t, cfg))
	for i := range g1 {
		if g1[i] != g2[i] {
			t.Fatalf("request %d differs", i)
		}
	}
}

func TestGetReturnsStoredValues(t *testing.T) {
	app := build(t, smallConfig(2))
	// Pre-populated at version 0.
	version, val, err := app.Get(5)
	if err != nil {
		t.Fatal(err)
	}
	if version != 0 {
		t.Errorf("version = %d, want 0", version)
	}
	if !bytes.Equal(val, trace.ValueFor(5, 0, app.cfg.ValueSize)) {
		t.Error("pre-populated value wrong")
	}
	if _, _, err := app.Get(uint64(app.cfg.Keys + 100)); err == nil {
		t.Error("missing key returned a value")
	}
}

func TestWorkloadUpdatesVersions(t *testing.T) {
	app := build(t, smallConfig(3))
	golden(t, app)
	// After the workload, every key's stored value must match its final
	// version's derived bytes.
	finals := map[uint64]uint32{}
	for _, op := range app.Ops() {
		if !op.Read {
			finals[op.Key] = op.Version
		}
	}
	for key, v := range finals {
		version, val, err := app.Get(key)
		if err != nil {
			t.Fatalf("Get(%d): %v", key, err)
		}
		if version != v {
			t.Fatalf("key %d version = %d, want %d", key, version, v)
		}
		if !bytes.Equal(val, trace.ValueFor(key, v, app.cfg.ValueSize)) {
			t.Fatalf("key %d value mismatch", key)
		}
	}
}

func TestRegionShape(t *testing.T) {
	app := build(t, smallConfig(4))
	as := app.Space()
	heap := as.RegionByKind(simmem.RegionHeap)
	stack := as.RegionByKind(simmem.RegionStack)
	if heap == nil || stack == nil {
		t.Fatal("missing region")
	}
	if as.RegionByKind(simmem.RegionPrivate) != nil {
		t.Error("kvstore should have no private region (Table 3)")
	}
	if heap.Used() == 0 {
		t.Error("heap used not set by arena")
	}
}

func TestCorruptedNextPointerCrashes(t *testing.T) {
	app := build(t, smallConfig(5))
	as := app.Space()
	// Find the entry for key 0 via the bucket array and corrupt its
	// next pointer's high bits so the chain walk leaves the region.
	slot := app.buckets + simmem.Addr(hashKey(0, app.cfg.Buckets)*8)
	head, err := as.LoadU64(slot)
	if err != nil {
		t.Fatal(err)
	}
	if head == 0 {
		t.Fatal("bucket empty after pre-population")
	}
	// Give the head entry a wild next pointer.
	if err := as.StoreU64(simmem.Addr(head)+16, 0x3333333333); err != nil {
		t.Fatal(err)
	}
	// A GET for a key hashing to this bucket but not the head entry
	// must walk into the wild pointer and fault.
	var crashed bool
	for k := uint64(0); k < uint64(app.cfg.Keys); k++ {
		if hashKey(k, app.cfg.Buckets) != hashKey(0, app.cfg.Buckets) || k == 0 {
			continue
		}
		_, _, err := app.Get(k)
		if err != nil {
			if !apps.IsCrash(err) && !simmem.IsFault(err) {
				t.Fatalf("unexpected error type: %v", err)
			}
			crashed = true
		}
		break
	}
	if !crashed {
		// All other keys hash elsewhere; corrupt the head key instead
		// so key 0's lookup walks past it into the wild pointer.
		if err := as.StoreU64(simmem.Addr(head), ^uint64(0)); err != nil {
			t.Fatal(err)
		}
		_, _, err = app.Get(0)
		if err == nil {
			t.Fatal("lookup through wild pointer succeeded")
		}
	}
}

func TestCorruptedValueIncorrectResponse(t *testing.T) {
	cfg := smallConfig(6)
	ref := golden(t, build(t, cfg))

	app := build(t, cfg)
	as := app.Space()
	// Flip a value bit in every pre-populated entry.
	for k := 0; k < cfg.Keys; k++ {
		slot := app.buckets + simmem.Addr(hashKey(uint64(k), app.cfg.Buckets)*8)
		cur, err := as.LoadU64(slot)
		if err != nil {
			t.Fatal(err)
		}
		for cur != 0 {
			ekey, err := as.LoadU64(simmem.Addr(cur))
			if err != nil {
				t.Fatal(err)
			}
			if ekey == uint64(k) {
				if err := as.FlipBit(simmem.Addr(cur)+entryHeaderBytes+1, 3); err != nil {
					t.Fatal(err)
				}
				break
			}
			cur, err = as.LoadU64(simmem.Addr(cur) + 16)
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	wrong, crashes := 0, 0
	for i := 0; i < app.NumRequests(); i++ {
		resp, err := app.Serve(i)
		if err != nil {
			crashes++
			continue
		}
		if resp.Digest != ref[i] {
			wrong++
		}
	}
	if crashes != 0 {
		t.Errorf("value-bit corruption caused %d crashes", crashes)
	}
	if wrong == 0 {
		t.Error("value-bit corruption never produced an incorrect response")
	}
	// SETs overwrite values, so late GETs of hot keys are often masked.
	if wrong == app.NumRequests() {
		t.Error("every request incorrect: overwrite masking absent")
	}
}

func TestProtectedHeapMasksFlips(t *testing.T) {
	cfg := smallConfig(7)
	ref := golden(t, build(t, cfg))

	cfg.HeapCodec = ecc.NewSECDED()
	app := build(t, cfg)
	as := app.Space()
	heap := as.RegionByKind(simmem.RegionHeap)
	for off := 0; off < heap.Used(); off += 512 {
		if err := as.FlipBit(heap.Base()+simmem.Addr(off), 5); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < app.NumRequests(); i++ {
		resp, err := app.Serve(i)
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if resp.Digest != ref[i] {
			t.Fatalf("request %d incorrect despite SEC-DED", i)
		}
	}
}

func TestBuilderValidation(t *testing.T) {
	cfg := smallConfig(8)
	cfg.ValueSize = 0
	if _, err := NewBuilder(cfg); err == nil {
		t.Error("zero value size accepted")
	}
	cfg = smallConfig(9)
	cfg.Keys = 1
	if _, err := NewBuilder(cfg); err == nil {
		t.Error("single key accepted")
	}
}

func TestServeOutOfRangeAndMetadata(t *testing.T) {
	cfg := smallConfig(10)
	b, err := NewBuilder(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if b.AppName() != "kvstore" || b.Config().Keys != cfg.Keys {
		t.Error("builder metadata wrong")
	}
	app, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if app.Name() != "kvstore" {
		t.Error("app name wrong")
	}
	if _, err := app.Serve(-1); err == nil {
		t.Error("negative request accepted")
	}
	if _, err := app.Serve(app.NumRequests()); err == nil {
		t.Error("out-of-range request accepted")
	}
}
