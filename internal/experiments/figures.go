package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"hrmsim/internal/core"
	"hrmsim/internal/faults"
	"hrmsim/internal/monitor"
	"hrmsim/internal/simmem"
	"hrmsim/internal/stats"
	"hrmsim/internal/textplot"
)

// cell names one campaign bar of a vulnerability figure.
type cell struct {
	label string
	res   *core.CampaignResult
}

// renderVulnerability renders a set of campaign cells as the paper's
// two-panel layout: (a) crash probability with 90% CI, (b) incorrect
// results per billion queries on a log scale with max-trial error bars.
func renderVulnerability(title string, cells []cell) (string, error) {
	var crashBars, incBars []textplot.Bar
	for _, c := range cells {
		p, err := c.res.CrashProbability(0.90)
		if err != nil {
			return "", err
		}
		crashBars = append(crashBars, textplot.Bar{
			Label: c.label,
			Value: p.P * 100,
			Note:  fmt.Sprintf("[%.1f%%, %.1f%%] (%d/%d)", p.Lo*100, p.Hi*100, p.Successes, p.Trials),
		})
		mean, max := c.res.IncorrectPerBillion()
		incBars = append(incBars, textplot.Bar{
			Label: c.label,
			Value: mean,
			Note:  fmt.Sprintf("max/trial %.3g", max),
		})
	}
	var b strings.Builder
	b.WriteString(textplot.BarChart(title+" (a) probability of crash [%]", crashBars, 40, false))
	b.WriteByte('\n')
	b.WriteString(textplot.BarChart(title+" (b) incorrect per billion queries [log]", incBars, 40, true))
	return b.String(), nil
}

// Figure3 regenerates Fig. 3: inter-application vulnerability to
// single-bit soft and hard errors.
func (s *Suite) Figure3() (*Report, error) {
	rep := &Report{ID: "fig3", Title: "Inter-application vulnerability (Fig. 3)"}
	var reqs []cellReq
	for _, spec := range []faults.Spec{faults.SingleBitSoft, faults.SingleBitHard} {
		for _, name := range AppNames() {
			reqs = append(reqs, cellReq{app: name, spec: spec, trials: s.scale.Trials})
		}
	}
	if err := s.prefetch(reqs); err != nil {
		return nil, err
	}
	var cells []cell
	for _, spec := range []faults.Spec{faults.SingleBitSoft, faults.SingleBitHard} {
		for _, name := range AppNames() {
			res, err := s.campaign(name, spec, 0, s.scale.Trials)
			if err != nil {
				return nil, err
			}
			cells = append(cells, cell{
				label: fmt.Sprintf("%-9s %s", paperAppLabel(name), spec.Class),
				res:   res,
			})
		}
	}
	text, err := renderVulnerability("Figure 3:", cells)
	if err != nil {
		return nil, err
	}
	rep.Text = text

	// Finding 1: significant variance across applications.
	probs := map[string]float64{}
	for _, name := range AppNames() {
		res, err := s.campaign(name, faults.SingleBitSoft, 0, s.scale.Trials)
		if err != nil {
			return nil, err
		}
		p, err := res.CrashProbability(0.90)
		if err != nil {
			return nil, err
		}
		probs[paperAppLabel(name)] = p.P
	}
	rep.Comparisons = append(rep.Comparisons, Comparison{
		Metric: "Finding 1: error tolerance varies across applications",
		Paper:  "up to 6 orders of magnitude spread; WebSearch most tolerant",
		Measured: fmt.Sprintf("soft-error crash probs: WebSearch %.1f%%, Memcached %.1f%%, GraphLab %.1f%%",
			probs["WebSearch"]*100, probs["Memcached"]*100, probs["GraphLab"]*100),
	})
	return rep, nil
}

// Figure4 regenerates Fig. 4: per-region vulnerability for every
// application, soft and hard single-bit errors.
func (s *Suite) Figure4() (*Report, error) {
	rep := &Report{ID: "fig4", Title: "Per-region vulnerability (Fig. 4)"}
	var reqs []cellReq
	for _, spec := range []faults.Spec{faults.SingleBitSoft, faults.SingleBitHard} {
		for _, name := range AppNames() {
			kinds, err := s.regionsOf(name)
			if err != nil {
				return nil, err
			}
			for _, k := range kinds {
				reqs = append(reqs, cellReq{app: name, spec: spec, kind: k, trials: s.scale.Trials})
			}
		}
	}
	if err := s.prefetch(reqs); err != nil {
		return nil, err
	}
	var cells []cell
	for _, spec := range []faults.Spec{faults.SingleBitSoft, faults.SingleBitHard} {
		for _, name := range AppNames() {
			kinds, err := s.regionsOf(name)
			if err != nil {
				return nil, err
			}
			for _, k := range kinds {
				res, err := s.campaign(name, spec, k, s.scale.Trials)
				if err != nil {
					return nil, err
				}
				cells = append(cells, cell{
					label: fmt.Sprintf("%-9s %-7s %s", paperAppLabel(name), k, spec.Class),
					res:   res,
				})
			}
		}
	}
	text, err := renderVulnerability("Figure 4:", cells)
	if err != nil {
		return nil, err
	}
	rep.Text = text

	// Finding 2: variance within an application. The paper's
	// stack-crashes-most contrast is a hard-error effect (soft errors in
	// the stack are masked by the next frame's writes).
	get := func(k simmem.RegionKind) (float64, error) {
		res, err := s.campaign("websearch", faults.SingleBitHard, k, s.scale.Trials)
		if err != nil {
			return 0, err
		}
		p, err := res.CrashProbability(0.90)
		if err != nil {
			return 0, err
		}
		return p.P, nil
	}
	pPriv, err := get(simmem.RegionPrivate)
	if err != nil {
		return nil, err
	}
	pHeap, err := get(simmem.RegionHeap)
	if err != nil {
		return nil, err
	}
	pStack, err := get(simmem.RegionStack)
	if err != nil {
		return nil, err
	}
	rep.Comparisons = append(rep.Comparisons, Comparison{
		Metric: "Finding 2/4: stack region crashes more than private/heap (hard errors)",
		Paper:  "WebSearch hard errors: heap/private crash far less than stack",
		Measured: fmt.Sprintf("WebSearch hard: private %.1f%%, heap %.1f%%, stack %.1f%%",
			pPriv*100, pHeap*100, pStack*100),
	})
	return rep, nil
}

// Figure5a regenerates Fig. 5a: the distribution of time from injection
// to effect, separating quick-to-crash (exponential) from periodically
// incorrect (uniform) behaviour. Crash timing comes from stack-region
// hard-error trials (our simulated WebSearch, like the real one, almost
// never crashes on a single soft error — see EXPERIMENTS.md); incorrect
// timing comes from whole-address-space trials.
func (s *Suite) Figure5a() (*Report, error) {
	crashRes, err := s.campaign("websearch", faults.SingleBitHard, simmem.RegionStack, s.scale.Fig5aTrials)
	if err != nil {
		return nil, err
	}
	res, err := s.campaign("websearch", faults.SingleBitHard, 0, s.scale.Fig5aTrials)
	if err != nil {
		return nil, err
	}
	crashTimes := append(crashRes.TimesToEffect(core.OutcomeCrash),
		res.TimesToEffect(core.OutcomeCrash)...)
	// Incorrect outcomes recur as the corrupted data is re-consumed, so
	// every occurrence is a sample (the paper's "periodically
	// incorrect" behaviour), not just the first.
	incTimes := res.AllIncorrectTimes()
	rep := &Report{ID: "fig5a", Title: "Temporal variation in vulnerability (Fig. 5a)"}

	// The observation horizon is the whole post-injection run, which is
	// what the uniform ("periodically incorrect") alternative spans.
	horizon := float64(len(res.Golden)) * s.wsConfig().RequestCost.Minutes()

	var b strings.Builder
	renderDist := func(name string, xs []float64) error {
		if len(xs) < 5 {
			fmt.Fprintf(&b, "%s: only %d samples (increase trials)\n", name, len(xs))
			return nil
		}
		h, err := stats.NewHistogram(0, horizon, 8)
		if err != nil {
			return err
		}
		for _, x := range xs {
			h.Add(x)
		}
		centers := make([]float64, len(h.Counts))
		for i := range centers {
			centers[i] = h.BinCenter(i)
		}
		fit, err := stats.PreferredFit(xs, horizon)
		if err != nil {
			return err
		}
		fmt.Fprintf(&b, "%s (n=%d, best fit: %s, KS=%.3f)\n", name, len(xs), fit.Kind, fit.KS)
		b.WriteString(textplot.HistogramPlot("  minutes after injection", centers, h.Counts, 32))
		b.WriteByte('\n')
		return nil
	}
	if err := renderDist("Crash outcomes", crashTimes); err != nil {
		return nil, err
	}
	if err := renderDist("Incorrect outcomes", incTimes); err != nil {
		return nil, err
	}
	rep.Text = b.String()

	if len(crashTimes) >= 5 && len(incTimes) >= 5 {
		cFit, err := stats.PreferredFit(crashTimes, horizon)
		if err != nil {
			return nil, err
		}
		iFit, err := stats.PreferredFit(incTimes, horizon)
		if err != nil {
			return nil, err
		}
		rep.Comparisons = append(rep.Comparisons, Comparison{
			Metric:   "Finding 3: quick-to-crash vs periodically incorrect",
			Paper:    "crashes exponentially distributed (early); incorrect uniform over time",
			Measured: fmt.Sprintf("crash times best fit %s; incorrect times best fit %s", cFit.Kind, iFit.Kind),
		})
	}
	return rep, nil
}

// Figure5b regenerates Fig. 5b: safe-ratio distributions per WebSearch
// memory region, measured with the watchpoint monitor.
func (s *Suite) Figure5b() (*Report, error) {
	entry, err := s.app("websearch")
	if err != nil {
		return nil, err
	}
	inst, err := entry.builder.Build()
	if err != nil {
		return nil, err
	}
	as := inst.Space()
	mon := monitor.New(as)
	as.AddAccessObserver(mon)
	rng := rand.New(rand.NewSource(s.scale.Seed))
	// Sample addresses roughly proportionally to region size (as the
	// paper does), but with a floor per region so the tiny stack still
	// produces a distribution.
	total := 0
	for _, r := range as.Regions() {
		total += r.Used()
	}
	installed := 0
	for _, r := range as.Regions() {
		kind := r.Kind()
		n := s.scale.Watchpoints * r.Used() / total
		if floor := s.scale.Watchpoints / 8; n < floor {
			n = floor
		}
		installed += mon.WatchSample(as, rng, n,
			func(rr *simmem.Region) bool { return rr.Kind() == kind })
	}
	if installed == 0 {
		return nil, fmt.Errorf("experiments: no watchpoints installed")
	}
	for i := 0; i < inst.NumRequests(); i++ {
		if _, err := inst.Serve(i); err != nil {
			return nil, fmt.Errorf("experiments: fig5b workload: %w", err)
		}
	}

	rep := &Report{ID: "fig5b", Title: "Safe-ratio distributions (Fig. 5b)"}
	var labels []string
	var profiles [][]float64
	var means []float64
	var summary []string
	for _, kind := range []simmem.RegionKind{simmem.RegionPrivate, simmem.RegionHeap, simmem.RegionStack} {
		ratios := mon.SafeRatios(kind)
		if len(ratios) == 0 {
			summary = append(summary, fmt.Sprintf("%s: no accessed watchpoints", kind))
			continue
		}
		k, err := stats.NewKDE(ratios, 0.08)
		if err != nil {
			return nil, err
		}
		sum, err := stats.Summarize(ratios)
		if err != nil {
			return nil, err
		}
		labels = append(labels, kind.String())
		profiles = append(profiles, k.Profile(0, 1, 48))
		means = append(means, sum.Mean)
		summary = append(summary, fmt.Sprintf("%s: n=%d mean=%.2f", kind, sum.N, sum.Mean))
	}
	var b strings.Builder
	b.WriteString(textplot.ViolinPlot("Figure 5b: Safe ratio density by region (0=read-dominated, 1=write-dominated)",
		labels, profiles, means, 0, 1))
	b.WriteByte('\n')
	b.WriteString(strings.Join(summary, "; "))
	b.WriteByte('\n')
	rep.Text = b.String()

	// Finding 4: the compiler-managed stack masks by overwrite far more
	// than the programmer-managed read-mostly regions.
	meanOf := func(kind simmem.RegionKind) float64 {
		sum, err := stats.Summarize(mon.SafeRatios(kind))
		if err != nil {
			return 0
		}
		return sum.Mean
	}
	rep.Comparisons = append(rep.Comparisons, Comparison{
		Metric: "Finding 4: stack safe ratio exceeds private/heap",
		Paper:  "stack near 1 (frequent overwrite); private/heap low (read-mostly index)",
		Measured: fmt.Sprintf("mean safe ratios: private %.2f, heap %.2f, stack %.2f",
			meanOf(simmem.RegionPrivate), meanOf(simmem.RegionHeap), meanOf(simmem.RegionStack)),
	})
	return rep, nil
}

// Figure6 regenerates Fig. 6: WebSearch vulnerability by error severity
// (single-bit soft, single-bit hard, two-bit hard) per region.
func (s *Suite) Figure6() (*Report, error) {
	rep := &Report{ID: "fig6", Title: "Vulnerability by error type (Fig. 6)"}
	specs := []faults.Spec{faults.SingleBitSoft, faults.SingleBitHard, faults.DoubleBitHard}
	kinds, err := s.regionsOf("websearch")
	if err != nil {
		return nil, err
	}
	var reqs []cellReq
	for _, spec := range specs {
		for _, k := range kinds {
			reqs = append(reqs, cellReq{app: "websearch", spec: spec, kind: k, trials: s.scale.Trials})
		}
	}
	if err := s.prefetch(reqs); err != nil {
		return nil, err
	}
	var cells []cell
	for _, spec := range specs {
		for _, k := range kinds {
			res, err := s.campaign("websearch", spec, k, s.scale.Trials)
			if err != nil {
				return nil, err
			}
			cells = append(cells, cell{
				label: fmt.Sprintf("%-7s %-16s", k, spec),
				res:   res,
			})
		}
	}
	text, err := renderVulnerability("Figure 6: WebSearch", cells)
	if err != nil {
		return nil, err
	}
	rep.Text = text

	// Finding 5: severity mainly raises the incorrect rate.
	rateOf := func(spec faults.Spec) (float64, error) {
		var inc, req float64
		for _, k := range kinds {
			res, err := s.campaign("websearch", spec, k, s.scale.Trials)
			if err != nil {
				return 0, err
			}
			for _, tr := range res.Trials {
				inc += float64(tr.Incorrect)
				req += float64(tr.Requests)
			}
		}
		if req == 0 {
			return 0, nil
		}
		return inc / req * 1e9, nil
	}
	soft, err := rateOf(faults.SingleBitSoft)
	if err != nil {
		return nil, err
	}
	hard1, err := rateOf(faults.SingleBitHard)
	if err != nil {
		return nil, err
	}
	hard2, err := rateOf(faults.DoubleBitHard)
	if err != nil {
		return nil, err
	}
	rep.Comparisons = append(rep.Comparisons, Comparison{
		Metric: "Finding 5: severity mainly decreases correctness",
		Paper:  "incorrect rate rises orders of magnitude from soft to hard; crash prob similar",
		Measured: fmt.Sprintf("incorrect/billion: soft %.3g, 1-bit hard %.3g, 2-bit hard %.3g",
			soft, hard1, hard2),
	})
	return rep, nil
}
