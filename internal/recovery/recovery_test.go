package recovery

import (
	"testing"
	"time"

	"hrmsim/internal/ecc"
	"hrmsim/internal/simmem"
)

// newParityAS maps one parity-protected backed heap region.
func newParityAS(t *testing.T, mc simmem.MCHandler) (*simmem.AddressSpace, *simmem.Region) {
	t.Helper()
	as, err := simmem.New(simmem.Config{PageSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	r, err := as.AddRegion(simmem.RegionSpec{
		Name: "data", Kind: simmem.RegionHeap, Size: 1024,
		Backed: true, Codec: ecc.NewParity(), MC: mc,
	})
	if err != nil {
		t.Fatal(err)
	}
	return as, r
}

func TestParRRecoversSoftError(t *testing.T) {
	h := &ParR{}
	as, r := newParityAS(t, h)
	addr := r.Base() + 64
	if err := as.StoreU64(addr, 777); err != nil {
		t.Fatal(err)
	}
	if err := r.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if err := as.FlipBit(addr, 4); err != nil {
		t.Fatal(err)
	}
	v, err := as.LoadU64(addr)
	if err != nil {
		t.Fatalf("load with Par+R: %v", err)
	}
	if v != 777 {
		t.Errorf("recovered value = %d, want 777", v)
	}
	if h.Recoveries != 1 || h.Failures != 0 {
		t.Errorf("recoveries/failures = %d/%d", h.Recoveries, h.Failures)
	}
}

func TestParRRecoversStaleCheckpoint(t *testing.T) {
	// Data written after the checkpoint recovers to the checkpointed
	// value: a stale-but-served response, not a crash.
	h := &ParR{}
	as, r := newParityAS(t, h)
	addr := r.Base() + 8
	if err := as.StoreU64(addr, 1); err != nil {
		t.Fatal(err)
	}
	if err := r.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if err := as.StoreU64(addr, 2); err != nil { // newer than checkpoint
		t.Fatal(err)
	}
	if err := as.FlipBit(addr, 0); err != nil {
		t.Fatal(err)
	}
	v, err := as.LoadU64(addr)
	if err != nil {
		t.Fatal(err)
	}
	if v != 1 {
		t.Errorf("recovered value = %d, want stale checkpoint value 1", v)
	}
}

func TestParRWordRestoreCannotFixHardFault(t *testing.T) {
	h := &ParR{} // word-granularity restore
	as, r := newParityAS(t, h)
	addr := r.Base() + 16
	if err := as.StoreU64(addr, 3); err != nil {
		t.Fatal(err)
	}
	if err := r.FlushAll(); err != nil {
		t.Fatal(err)
	}
	// Stick a bit at the wrong value: restoring the word rewrites the
	// data but the cell still senses wrong, so the retry fails.
	var raw [1]byte
	if err := as.ReadRaw(addr, raw[:]); err != nil {
		t.Fatal(err)
	}
	stuck := int(raw[0]&1) ^ 1
	if err := as.StickBit(addr, 0, stuck); err != nil {
		t.Fatal(err)
	}
	if _, err := as.LoadU64(addr); !simmem.IsFault(err) {
		t.Fatalf("expected machine-check fault, got %v", err)
	}

	// Whole-page Par+R replaces the frame, clearing the stuck bit.
	h2 := &ParR{WholePage: true}
	r.SetMCHandler(h2)
	v, err := as.LoadU64(addr)
	if err != nil {
		t.Fatalf("whole-page recovery failed: %v", err)
	}
	if v != 3 {
		t.Errorf("value = %d, want 3", v)
	}
	if h2.Recoveries != 1 {
		t.Errorf("recoveries = %d, want 1", h2.Recoveries)
	}
}

func TestParREscalating(t *testing.T) {
	h := NewParREscalating()
	as, r := newParityAS(t, h)
	addr := r.Base() + 32
	if err := as.StoreU64(addr, 9); err != nil {
		t.Fatal(err)
	}
	if err := r.FlushAll(); err != nil {
		t.Fatal(err)
	}
	var raw [1]byte
	if err := as.ReadRaw(addr, raw[:]); err != nil {
		t.Fatal(err)
	}
	if err := as.StickBit(addr, 2, int(raw[0]>>2&1)^1); err != nil {
		t.Fatal(err)
	}
	// First load: word restore happens, retry still fails on the stuck
	// bit... but the handler only gets one call per load. The first
	// load therefore faults; the second load escalates to a frame
	// replacement and succeeds.
	_, err := as.LoadU64(addr)
	if err == nil {
		t.Fatal("first load should fault (word restore cannot clear stuck bit)")
	}
	v, err := as.LoadU64(addr)
	if err != nil {
		t.Fatalf("second load should escalate and recover: %v", err)
	}
	if v != 9 {
		t.Errorf("value = %d, want 9", v)
	}
	if h.Escalations != 1 || h.Recoveries() != 1 {
		t.Errorf("escalations/recoveries = %d/%d, want 1/1", h.Escalations, h.Recoveries())
	}
}

func TestParRFailsWithoutBacking(t *testing.T) {
	h := &ParR{}
	as, err := simmem.New(simmem.Config{PageSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	r, err := as.AddRegion(simmem.RegionSpec{
		Name: "nb", Kind: simmem.RegionHeap, Size: 512, Codec: ecc.NewParity(), MC: h,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := as.StoreU64(r.Base(), 5); err != nil {
		t.Fatal(err)
	}
	if err := as.FlipBit(r.Base(), 1); err != nil {
		t.Fatal(err)
	}
	if _, err := as.LoadU64(r.Base()); !simmem.IsFault(err) {
		t.Fatalf("expected fault, got %v", err)
	}
	if h.Failures != 1 {
		t.Errorf("failures = %d, want 1", h.Failures)
	}
}

func TestRetirerReplacesHotPages(t *testing.T) {
	ret := &Retirer{Threshold: 3}
	as, err := simmem.New(simmem.Config{PageSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	r, err := as.AddRegion(simmem.RegionSpec{
		Name: "d", Kind: simmem.RegionHeap, Size: 512, Backed: true, Codec: ecc.NewSECDED(),
	})
	if err != nil {
		t.Fatal(err)
	}
	as.AddECCObserver(ret)
	addr := r.Base() + 8
	if err := as.StoreU64(addr, 42); err != nil {
		t.Fatal(err)
	}
	if err := r.FlushAll(); err != nil {
		t.Fatal(err)
	}
	// A stuck bit forces a correction on every load; the third load
	// crosses the threshold and the page is retired (frame replaced,
	// stuck bit cleared).
	var raw [1]byte
	if err := as.ReadRaw(addr, raw[:]); err != nil {
		t.Fatal(err)
	}
	if err := as.StickBit(addr, 0, int(raw[0]&1)^1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if v, err := as.LoadU64(addr); err != nil || v != 42 {
			t.Fatalf("load %d: %d, %v", i, v, err)
		}
	}
	if ret.Retired != 1 {
		t.Fatalf("retired = %d, want 1", ret.Retired)
	}
	// After retirement the error is gone: loads are clean.
	before := as.Counters().Corrected
	if v, err := as.LoadU64(addr); err != nil || v != 42 {
		t.Fatalf("post-retirement load: %d, %v", v, err)
	}
	if as.Counters().Corrected != before {
		t.Error("corrections continued after retirement")
	}
}

func TestRetirerZeroThresholdInactive(t *testing.T) {
	ret := &Retirer{}
	ret.ObserveECC(simmem.ECCEvent{Kind: simmem.ECCCorrected})
	if ret.Retired != 0 {
		t.Error("zero-threshold retirer acted")
	}
}

func TestCheckpointer(t *testing.T) {
	as, r := newParityAS(t, nil)
	cp, err := NewCheckpointer(r, 5*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	as.AddAccessObserver(cp)

	addr := r.Base()
	if err := as.StoreU64(addr, 10); err != nil { // t=0: within interval
		t.Fatal(err)
	}
	as.Clock().Set(2 * time.Minute)
	if err := as.StoreU64(addr, 20); err != nil { // within interval: no flush
		t.Fatal(err)
	}
	if cp.Flushes != 0 {
		t.Fatalf("flushes = %d before the interval elapsed", cp.Flushes)
	}
	as.Clock().Set(6 * time.Minute)
	if err := as.StoreU64(addr, 30); err != nil { // crosses interval: flush
		t.Fatal(err)
	}
	if cp.Flushes != 1 {
		t.Fatalf("flushes = %d, want 1", cp.Flushes)
	}
	b, err := r.BackingBytes(addr, 8)
	if err != nil {
		t.Fatal(err)
	}
	if b[0] != 30 {
		t.Errorf("backing byte = %d, want 30 (flushed after final store)", b[0])
	}
}

func TestCheckpointerValidation(t *testing.T) {
	as, err := simmem.New(simmem.Config{PageSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	r, err := as.AddRegion(simmem.RegionSpec{Name: "x", Kind: simmem.RegionHeap, Size: 256})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewCheckpointer(r, time.Minute); err == nil {
		t.Error("unbacked region accepted")
	}
	_, r2 := newParityAS(t, nil)
	if _, err := NewCheckpointer(r2, 0); err == nil {
		t.Error("zero interval accepted")
	}
}

func TestScrubRegion(t *testing.T) {
	as, err := simmem.New(simmem.Config{PageSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	r, err := as.AddRegion(simmem.RegionSpec{
		Name: "s", Kind: simmem.RegionHeap, Size: 512, Codec: ecc.NewSECDED(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := as.StoreU64(r.Base()+8, 1); err != nil {
		t.Fatal(err)
	}
	if err := as.FlipBit(r.Base()+8, 3); err != nil { // correctable
		t.Fatal(err)
	}
	if err := as.FlipBit(r.Base()+24, 0); err != nil { // double-bit: uncorrectable
		t.Fatal(err)
	}
	if err := as.FlipBit(r.Base()+24, 1); err != nil {
		t.Fatal(err)
	}
	rep, err := ScrubRegion(r)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Corrected != 1 || rep.Uncorrectable != 1 {
		t.Fatalf("report = %+v, want 1 corrected, 1 uncorrectable", rep)
	}
	// The scrub wrote back the correction: a second pass is clean.
	rep, err = ScrubRegion(r)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Corrected != 0 || rep.Uncorrectable != 1 {
		t.Fatalf("second pass = %+v, want 0 corrected, 1 uncorrectable", rep)
	}
}

func TestMemtestRegion(t *testing.T) {
	as, err := simmem.New(simmem.Config{PageSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	r, err := as.AddRegion(simmem.RegionSpec{
		Name: "m", Kind: simmem.RegionPrivate, Size: 512, Backed: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := as.StoreU64(r.Base(), 0xABCD); err != nil {
		t.Fatal(err)
	}
	if err := r.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if err := as.FlipBit(r.Base()+1, 6); err != nil {
		t.Fatal(err)
	}
	rep, err := MemtestRegion(as, r, false)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Mismatched != 1 || rep.Repaired != 0 {
		t.Fatalf("detect-only report = %+v", rep)
	}
	rep, err = MemtestRegion(as, r, true)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Repaired != 1 {
		t.Fatalf("repair report = %+v", rep)
	}
	if v, _ := as.LoadU64(r.Base()); v != 0xABCD {
		t.Errorf("value after repair = %#x", v)
	}
	// Unbacked regions are rejected.
	r2, err := as.AddRegion(simmem.RegionSpec{Name: "nb", Kind: simmem.RegionHeap, Size: 256})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := MemtestRegion(as, r2, true); err == nil {
		t.Error("unbacked region accepted")
	}
}

func TestPeriodicScrubberValidation(t *testing.T) {
	as, r := newParityAS(t, nil)
	_ = as
	if _, err := NewPeriodicScrubber(0, r); err == nil {
		t.Error("zero interval accepted")
	}
	if _, err := NewPeriodicScrubber(time.Minute); err == nil {
		t.Error("no regions accepted")
	}
}

func TestPeriodicScrubberCorrectsOnInterval(t *testing.T) {
	as, err := simmem.New(simmem.Config{PageSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	r, err := as.AddRegion(simmem.RegionSpec{
		Name: "d", Kind: simmem.RegionHeap, Size: 512, Codec: ecc.NewSECDED(),
	})
	if err != nil {
		t.Fatal(err)
	}
	sc, err := NewPeriodicScrubber(5*time.Minute, r)
	if err != nil {
		t.Fatal(err)
	}
	as.AddAccessObserver(sc)

	// Corrupt a word the application never touches.
	if err := as.StoreU64(r.Base()+64, 9); err != nil {
		t.Fatal(err)
	}
	if err := as.FlipBit(r.Base()+64, 2); err != nil {
		t.Fatal(err)
	}
	// Activity within the interval: no scrub yet.
	as.Clock().Set(time.Minute)
	if err := as.StoreU8(r.Base(), 1); err != nil {
		t.Fatal(err)
	}
	if sc.Passes != 0 {
		t.Fatalf("scrubbed early: %d passes", sc.Passes)
	}
	// Crossing the interval triggers a pass that repairs the word.
	as.Clock().Set(6 * time.Minute)
	if err := as.StoreU8(r.Base(), 2); err != nil {
		t.Fatal(err)
	}
	if sc.Passes != 1 || sc.Corrected != 1 {
		t.Fatalf("passes=%d corrected=%d, want 1/1", sc.Passes, sc.Corrected)
	}
	// The write-back means a second pass finds nothing.
	as.Clock().Set(12 * time.Minute)
	if err := as.StoreU8(r.Base(), 3); err != nil {
		t.Fatal(err)
	}
	if sc.Corrected != 1 {
		t.Fatalf("corrected=%d after clean pass, want 1", sc.Corrected)
	}
}

func TestPeriodicScrubberRetireThreshold(t *testing.T) {
	as, err := simmem.New(simmem.Config{PageSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	r, err := as.AddRegion(simmem.RegionSpec{
		Name: "d", Kind: simmem.RegionHeap, Size: 512, Backed: true, Codec: ecc.NewSECDED(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := as.StoreU64(r.Base()+8, 42); err != nil {
		t.Fatal(err)
	}
	if err := r.FlushAll(); err != nil {
		t.Fatal(err)
	}
	sc, err := NewPeriodicScrubber(time.Minute, r)
	if err != nil {
		t.Fatal(err)
	}
	sc.RetireThreshold = 2
	as.AddAccessObserver(sc)

	// Stick a bit: every scrub pass corrects it again until the page's
	// corrected count reaches the threshold and the frame is replaced.
	var raw [1]byte
	if err := as.ReadRaw(r.Base()+8, raw[:]); err != nil {
		t.Fatal(err)
	}
	if err := as.StickBit(r.Base()+8, 0, int(raw[0]&1)^1); err != nil {
		t.Fatal(err)
	}
	for m := 2; m <= 8 && sc.Retired == 0; m += 2 {
		as.Clock().Set(time.Duration(m) * time.Minute)
		if err := as.StoreU8(r.Base()+128, byte(m)); err != nil {
			t.Fatal(err)
		}
	}
	if sc.Retired != 1 {
		t.Fatalf("retired=%d, want 1", sc.Retired)
	}
	// After retirement the stuck bit is gone and the data restored.
	if v, err := as.LoadU64(r.Base() + 8); err != nil || v != 42 {
		t.Fatalf("after retirement: %d, %v", v, err)
	}
}

func TestParREscalatingUnbackedCrashes(t *testing.T) {
	h := NewParREscalating()
	as, err := simmem.New(simmem.Config{PageSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	r, err := as.AddRegion(simmem.RegionSpec{
		Name: "nb", Kind: simmem.RegionHeap, Size: 512, Codec: ecc.NewParity(), MC: h,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := as.StoreU64(r.Base(), 1); err != nil {
		t.Fatal(err)
	}
	if err := as.FlipBit(r.Base(), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := as.LoadU64(r.Base()); !simmem.IsFault(err) {
		t.Fatalf("expected fault without backing, got %v", err)
	}
}

func TestScrubRegionUnprotectedNoop(t *testing.T) {
	as, err := simmem.New(simmem.Config{PageSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	r, err := as.AddRegion(simmem.RegionSpec{Name: "u", Kind: simmem.RegionHeap, Size: 512})
	if err != nil {
		t.Fatal(err)
	}
	if err := as.FlipBit(r.Base(), 0); err != nil {
		t.Fatal(err)
	}
	rep, err := ScrubRegion(r)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Corrected != 0 || rep.Uncorrectable != 0 {
		t.Errorf("unprotected scrub reported %+v", rep)
	}
}
