// Package websearch implements the index-serving node of an interactive
// web search engine on simulated memory — the WebSearch workload of the
// paper's case study (Section V-A).
//
// Like the production system it models, the node keeps a large read-only
// index as an in-memory cache of data that also lives in persistent
// storage (the private region, mmap-like, file-backed), serves each query
// by walking posting lists and ranking candidates, and returns the top
// four documents. Dynamic state — document snippets and a query result
// cache — lives in the heap region; per-query locals (the query terms,
// posting cursors, and the running top-4) live in stack frames that are
// pushed, written, and popped per request.
//
// Memory layout (all offsets region-relative):
//
//	private: [term table: numTerms × {postingStart u32, postingCount u32}]
//	         [postings:   numPostings × {docID u32, weight f32}]
//	         [doc table:  numDocs × {popularity f32}]
//	heap:    [snippets:   numDocs × snippetLen bytes]
//	         [result cache: slots × {tag u64, 4 × {docID u32, score f32}}]
//	stack:   per-query frame {terms, posting cursor/end, top-4 ids/scores}
package websearch

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"hrmsim/internal/apps"
	"hrmsim/internal/simmem"
	"hrmsim/internal/trace"
)

// Config parameterizes a WebSearch build. Sizes are scaled-down but keep
// the paper's Table 3 shape: the private index dominates, the heap is a
// few times smaller, the stack is tiny.
type Config struct {
	// Seed drives all synthetic data generation.
	Seed int64
	// Docs is the corpus size.
	Docs int
	// Vocab is the vocabulary size.
	Vocab int
	// MinTerms and MaxTerms bound distinct terms per document.
	MinTerms, MaxTerms int
	// Queries is the client workload length.
	Queries int
	// QuerySeed, when nonzero, draws the query trace from its own
	// generator, so servers built with different Seed (distinct index
	// shards) can serve an identical query stream — the setup of the
	// multi-server aggregation experiment.
	QuerySeed int64
	// MaxQueryTerms bounds terms per query.
	MaxQueryTerms int
	// CacheSlots sizes the direct-mapped heap result cache.
	CacheSlots int
	// SnippetLen is the per-document snippet size in heap.
	SnippetLen int
	// RequestCost advances the virtual clock per query.
	RequestCost time.Duration
	// OpBudget caps simulated memory operations per query (watchdog).
	OpBudget int
	// StackSize, HeapSize, PageSize optionally override region sizing.
	StackSize, HeapSize int
	PageSize            int
	// CacheLines, when nonzero, enables the write-back CPU cache model
	// in front of memory (the paper notes caches delay error visibility;
	// the default off matches its conservative methodology).
	CacheLines int
	// PrivateCodec etc. optionally protect regions (HRM experiments).
	PrivateCodec, HeapCodec, StackCodec simmem.Codec
	// PrivateMC etc. install software responses for uncorrectable errors.
	PrivateMC, HeapMC, StackMC simmem.MCHandler
}

// DefaultConfig returns a laptop-scale configuration (~1.4 MiB private
// index, ~0.35 MiB heap, 64 KiB stack — the paper's 36 GB / 9 GB / 60 MB
// shape at 1/25000 scale).
func DefaultConfig(seed int64) Config {
	return Config{
		Seed:          seed,
		Docs:          4096,
		Vocab:         2048,
		MinTerms:      8,
		MaxTerms:      56,
		Queries:       400,
		MaxQueryTerms: 4,
		CacheSlots:    1024,
		SnippetLen:    48,
		RequestCost:   10 * time.Millisecond,
		OpBudget:      200000,
	}
}

const (
	termEntryBytes  = 8
	postingBytes    = 8
	docEntryBytes   = 4
	topK            = 4
	cacheEntryBytes = 8 + topK*8 // tag + 4 × (docID, score)
)

// Builder pre-generates the corpus and query trace once; Build serializes
// them into a fresh address space per trial.
type Builder struct {
	cfg     Config
	corpus  *trace.Corpus
	queries []trace.Query
}

var _ apps.Builder = (*Builder)(nil)

// NewBuilder generates the synthetic dataset for the given configuration.
func NewBuilder(cfg Config) (*Builder, error) {
	if cfg.Docs <= 0 || cfg.Queries <= 0 {
		return nil, fmt.Errorf("websearch: docs (%d) and queries (%d) must be positive", cfg.Docs, cfg.Queries)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	corpus, err := trace.GenCorpus(rng, cfg.Docs, cfg.Vocab, cfg.MinTerms, cfg.MaxTerms)
	if err != nil {
		return nil, fmt.Errorf("websearch: generating corpus: %w", err)
	}
	qrng := rng
	if cfg.QuerySeed != 0 {
		qrng = rand.New(rand.NewSource(cfg.QuerySeed))
	}
	queries, err := trace.GenQueries(qrng, corpus, cfg.Queries, cfg.MaxQueryTerms)
	if err != nil {
		return nil, fmt.Errorf("websearch: generating queries: %w", err)
	}
	return &Builder{cfg: cfg, corpus: corpus, queries: queries}, nil
}

// AppName implements apps.Builder.
func (b *Builder) AppName() string { return "websearch" }

// Config returns the builder's configuration.
func (b *Builder) Config() Config { return b.cfg }

// App is one WebSearch instance.
type App struct {
	cfg     Config
	as      *simmem.AddressSpace
	private *simmem.Region
	heap    *simmem.Region
	stack   *simmem.Stack
	queries []trace.Query

	// Two access streams, one accessor each: the query loop touches its
	// stack frame and an index/heap address on every iteration, so a
	// single region cache would thrash on the alternation. Each stream
	// stays within one region for long runs, so each accessor's
	// one-entry cache hits almost always.
	frameAcc *simmem.Accessor
	dataAcc  *simmem.Accessor

	// Region-relative layout offsets (host-side metadata, analogous to
	// the program's immutable globals).
	numTerms    int
	numDocs     int
	postingsOff int
	docTableOff int
	privateUsed int
	snippetsOff int
	cacheOff    int

	// Snapshot state (apps.SnapshotApp): the memory capture plus the
	// only host-side mutable state, the stack depth. The layout offsets
	// above are immutable after Build.
	snapMem *simmem.Snapshot
	snapSP  int
}

var _ apps.App = (*App)(nil)
var _ apps.SnapshotApp = (*App)(nil)

// Build implements apps.Builder.
func (b *Builder) Build() (apps.App, error) {
	cfg := b.cfg
	// Serialize the inverted index.
	numTerms := cfg.Vocab
	postings := make(map[int][]trace.Document, numTerms) // term -> docs
	totalPostings := 0
	for _, d := range b.corpus.Docs {
		for _, t := range d.Terms {
			postings[int(t)] = append(postings[int(t)], d)
			totalPostings++
		}
	}
	termTableBytes := numTerms * termEntryBytes
	postingsBytes := totalPostings * postingBytes
	docTableBytes := cfg.Docs * docEntryBytes
	privateUsed := termTableBytes + postingsBytes + docTableBytes

	snippetsBytes := cfg.Docs * cfg.SnippetLen
	cacheBytes := cfg.CacheSlots * cacheEntryBytes
	heapUsed := snippetsBytes + cacheBytes
	heapSize := cfg.HeapSize
	if heapSize == 0 {
		heapSize = heapUsed + 4096
	}
	stackSize := cfg.StackSize
	if stackSize == 0 {
		stackSize = 64 << 10
	}

	as, err := simmem.New(simmem.Config{PageSize: cfg.PageSize})
	if err != nil {
		return nil, fmt.Errorf("websearch: creating address space: %w", err)
	}
	if cfg.CacheLines > 0 {
		if err := as.EnableCache(cfg.CacheLines); err != nil {
			return nil, err
		}
	}
	private, err := as.AddRegion(simmem.RegionSpec{
		Name: "private", Kind: simmem.RegionPrivate, Size: privateUsed + 4096,
		ReadOnly: true, Backed: true, Codec: cfg.PrivateCodec, MC: cfg.PrivateMC,
	})
	if err != nil {
		return nil, fmt.Errorf("websearch: mapping private region: %w", err)
	}
	heap, err := as.AddRegion(simmem.RegionSpec{
		Name: "heap", Kind: simmem.RegionHeap, Size: heapSize,
		Codec: cfg.HeapCodec, MC: cfg.HeapMC,
	})
	if err != nil {
		return nil, fmt.Errorf("websearch: mapping heap region: %w", err)
	}
	stackRegion, err := as.AddRegion(simmem.RegionSpec{
		Name: "stack", Kind: simmem.RegionStack, Size: stackSize,
		Codec: cfg.StackCodec, MC: cfg.StackMC,
	})
	if err != nil {
		return nil, fmt.Errorf("websearch: mapping stack region: %w", err)
	}

	// The request handler's frame is the stack's resident working set;
	// marking it used lets injection sample live stack bytes before the
	// first request runs (the paper samples the live process stack).
	stackRegion.SetUsed(frameBytes)

	app := &App{
		cfg:         cfg,
		as:          as,
		private:     private,
		heap:        heap,
		stack:       simmem.NewStack(stackRegion),
		queries:     b.queries,
		numTerms:    numTerms,
		numDocs:     cfg.Docs,
		postingsOff: termTableBytes,
		docTableOff: termTableBytes + postingsBytes,
		privateUsed: privateUsed,
		snippetsOff: 0,
		cacheOff:    snippetsBytes,
	}
	app.frameAcc = as.NewAccessor()
	app.dataAcc = as.NewAccessor()

	// Write the index via WriteRaw (the region is a read-only mapping;
	// this models the initial page-in from the index files on disk).
	buf := make([]byte, privateUsed)
	cursor := 0 // posting write cursor, relative to postingsOff
	for t := 0; t < numTerms; t++ {
		entry := t * termEntryBytes
		start := app.postingsOff + cursor
		docs := postings[t]
		putU32(buf[entry:], uint32(start))
		putU32(buf[entry+4:], uint32(len(docs)))
		for _, d := range docs {
			off := app.postingsOff + cursor
			putU32(buf[off:], d.ID)
			// Per-posting relevance weight derived from the doc's
			// popularity and term rank.
			w := float32(d.Popularity) * (1 + 1/float32(t+1))
			putU32(buf[off+4:], f32bits(w))
			cursor += postingBytes
		}
	}
	for i, d := range b.corpus.Docs {
		putU32(buf[app.docTableOff+i*docEntryBytes:], f32bits(float32(d.Popularity)))
	}
	if err := as.WriteRaw(private.Base(), buf); err != nil {
		return nil, fmt.Errorf("websearch: writing index: %w", err)
	}
	private.SetUsed(privateUsed)
	if err := private.FlushAll(); err != nil {
		return nil, fmt.Errorf("websearch: flushing index backing: %w", err)
	}

	// Populate the heap: snippets derived deterministically per doc;
	// the result cache starts zeroed (tag 0 is "empty" — query hashes
	// are forced nonzero).
	snip := make([]byte, heapUsed)
	for i := range b.corpus.Docs {
		copy(snip[i*cfg.SnippetLen:(i+1)*cfg.SnippetLen], trace.ValueFor(uint64(i), 7, cfg.SnippetLen))
	}
	if err := as.WriteRaw(heap.Base(), snip); err != nil {
		return nil, fmt.Errorf("websearch: writing heap: %w", err)
	}
	heap.SetUsed(heapUsed)
	return app, nil
}

// BuildSnapshot implements apps.SnapshotBuilder.
func (b *Builder) BuildSnapshot() (apps.SnapshotApp, error) {
	app, err := b.Build()
	if err != nil {
		return nil, err
	}
	return app.(*App), nil
}

var _ apps.SnapshotBuilder = (*Builder)(nil)

// Snapshot implements apps.SnapshotApp.
func (a *App) Snapshot() error {
	a.snapMem = a.as.Snapshot()
	a.snapSP = a.stack.Depth()
	return nil
}

// Reset implements apps.SnapshotApp.
func (a *App) Reset() (int, error) {
	if a.snapMem == nil {
		return 0, fmt.Errorf("websearch: Reset before Snapshot")
	}
	n, err := a.snapMem.Restore()
	if err != nil {
		return 0, fmt.Errorf("websearch: %w", err)
	}
	if err := a.stack.Rewind(a.snapSP); err != nil {
		return 0, err
	}
	return n, nil
}

// Name implements apps.App.
func (a *App) Name() string { return "websearch" }

// Space implements apps.App.
func (a *App) Space() *simmem.AddressSpace { return a.as }

// NumRequests implements apps.App.
func (a *App) NumRequests() int { return len(a.queries) }

// Stack-frame layout (byte offsets within the frame).
const (
	frTerms     = 0        // 4 × u64 term IDs
	frCursor    = 32       // u64 posting byte cursor (region-relative)
	frEnd       = 40       // u64 posting end offset
	frTopIDs    = 48       // 4 × u64 doc IDs
	frTopScores = 80       // 4 × f64 scores
	frameBytes  = 112 + 16 // small slack, mirroring alignment padding
)

// queryHash returns a nonzero tag for the result cache.
func queryHash(q trace.Query) uint64 {
	d := apps.NewDigest()
	for _, t := range q.Terms {
		d.AddU32(t)
	}
	h := d.Sum()
	if h == 0 {
		h = 1
	}
	return h
}

// Serve implements apps.App. It executes the full index-search request
// path against simulated memory.
func (a *App) Serve(i int) (resp apps.Response, err error) {
	if i < 0 || i >= len(a.queries) {
		return apps.Response{}, fmt.Errorf("websearch: request %d out of range", i)
	}
	a.as.Clock().Advance(a.cfg.RequestCost)
	q := a.queries[i]
	budget := apps.NewBudget(a.cfg.OpBudget)

	frame, err := a.stack.Push(frameBytes)
	if err != nil {
		return apps.Response{}, fmt.Errorf("websearch: pushing frame: %w", err)
	}
	defer func() {
		// Popping our own frame cannot fail unless the app is buggy.
		if perr := a.stack.Pop(frame); perr != nil && err == nil {
			err = perr
		}
	}()

	resp, _, err = a.serveQuery(frame, q, budget)
	return resp, err
}

// DocScore is one ranked document of a query response.
type DocScore struct {
	// ID is the document identifier (unique within this server's
	// shard).
	ID uint32
	// Score is the final relevance score (relevance + popularity).
	Score float32
}

// ServeWithResults executes request i like Serve but also returns the
// ranked top documents, for multi-server result aggregation experiments.
func (a *App) ServeWithResults(i int) (resp apps.Response, results []DocScore, err error) {
	if i < 0 || i >= len(a.queries) {
		return apps.Response{}, nil, fmt.Errorf("websearch: request %d out of range", i)
	}
	a.as.Clock().Advance(a.cfg.RequestCost)
	q := a.queries[i]
	budget := apps.NewBudget(a.cfg.OpBudget)
	frame, err := a.stack.Push(frameBytes)
	if err != nil {
		return apps.Response{}, nil, fmt.Errorf("websearch: pushing frame: %w", err)
	}
	defer func() {
		if perr := a.stack.Pop(frame); perr != nil && err == nil {
			err = perr
		}
	}()
	return a.serveQuery(frame, q, budget)
}

// serveQuery is the request body; errors propagate as crash-worthy.
func (a *App) serveQuery(frame simmem.Frame, q trace.Query, budget *apps.Budget) (apps.Response, []DocScore, error) {
	fb := frame.Base

	// Write locals: query terms and an empty top-4.
	for j := 0; j < topK; j++ {
		term := uint64(0)
		if j < len(q.Terms) {
			term = uint64(q.Terms[j])
		}
		if err := a.frameAcc.StoreU64(fb+simmem.Addr(frTerms+8*j), term); err != nil {
			return apps.Response{}, nil, err
		}
		if err := a.frameAcc.StoreU64(fb+simmem.Addr(frTopIDs+8*j), noDoc); err != nil {
			return apps.Response{}, nil, err
		}
		if err := a.frameAcc.StoreF64(fb+simmem.Addr(frTopScores+8*j), -1e300); err != nil {
			return apps.Response{}, nil, err
		}
	}

	// Probe the result cache.
	tag := queryHash(q)
	slot := int(tag % uint64(a.cfg.CacheSlots))
	slotAddr := a.heap.Base() + simmem.Addr(a.cacheOff+slot*cacheEntryBytes)
	storedTag, err := a.dataAcc.LoadU64(slotAddr)
	if err != nil {
		return apps.Response{}, nil, err
	}
	if storedTag == tag {
		return a.respondFromCache(slotAddr, budget)
	}

	// Score postings term-at-a-time, keeping the top-4 in the frame.
	nTerms := len(q.Terms)
	if nTerms > topK {
		nTerms = topK
	}
	for j := 0; j < nTerms; j++ {
		// Read the term back from the stack local (round-tripping
		// locals through memory is what exposes the stack region).
		term, err := a.frameAcc.LoadU64(fb + simmem.Addr(frTerms+8*j))
		if err != nil {
			return apps.Response{}, nil, err
		}
		if term >= uint64(a.numTerms) {
			return apps.Response{}, nil, apps.Assertf("term %d out of range", term)
		}
		entryAddr := a.private.Base() + simmem.Addr(int(term)*termEntryBytes)
		start, err := a.dataAcc.LoadU32(entryAddr)
		if err != nil {
			return apps.Response{}, nil, err
		}
		count, err := a.dataAcc.LoadU32(entryAddr + 4)
		if err != nil {
			return apps.Response{}, nil, err
		}
		// Initialize the posting cursor locals. Note: no bounds check
		// on start/count — like the native code, a corrupted term
		// entry walks wherever it points, and the region guard gap or
		// the op budget catches it.
		if err := a.frameAcc.StoreU64(fb+simmem.Addr(frCursor), uint64(start)); err != nil {
			return apps.Response{}, nil, err
		}
		if err := a.frameAcc.StoreU64(fb+simmem.Addr(frEnd), uint64(start)+uint64(count)*postingBytes); err != nil {
			return apps.Response{}, nil, err
		}
		for {
			if err := budget.Spend(1); err != nil {
				return apps.Response{}, nil, err
			}
			cursor, err := a.frameAcc.LoadU64(fb + simmem.Addr(frCursor))
			if err != nil {
				return apps.Response{}, nil, err
			}
			end, err := a.frameAcc.LoadU64(fb + simmem.Addr(frEnd))
			if err != nil {
				return apps.Response{}, nil, err
			}
			if cursor >= end {
				break
			}
			pAddr := a.private.Base() + simmem.Addr(cursor)
			docID, err := a.dataAcc.LoadU32(pAddr)
			if err != nil {
				return apps.Response{}, nil, err
			}
			wbits, err := a.dataAcc.LoadU32(pAddr + 4)
			if err != nil {
				return apps.Response{}, nil, err
			}
			score := float64(f32from(wbits))
			if err := a.insertTop(fb, uint64(docID), score, budget); err != nil {
				return apps.Response{}, nil, err
			}
			if err := a.frameAcc.StoreU64(fb+simmem.Addr(frCursor), cursor+postingBytes); err != nil {
				return apps.Response{}, nil, err
			}
		}
	}

	// Assemble the response: re-rank the top-4 with popularity, read
	// snippets, fill the cache.
	d := apps.NewDigest()
	var results []DocScore
	var cacheBuf [cacheEntryBytes]byte
	putU64(cacheBuf[0:], tag)
	for j := 0; j < topK; j++ {
		id, err := a.frameAcc.LoadU64(fb + simmem.Addr(frTopIDs+8*j))
		if err != nil {
			return apps.Response{}, nil, err
		}
		base, err := a.frameAcc.LoadF64(fb + simmem.Addr(frTopScores+8*j))
		if err != nil {
			return apps.Response{}, nil, err
		}
		if id == noDoc {
			putU32(cacheBuf[8+8*j:], 0xffffffff)
			putU32(cacheBuf[12+8*j:], 0)
			d.AddU64(noDoc)
			continue
		}
		popAddr := a.private.Base() + simmem.Addr(a.docTableOff+int(id)*docEntryBytes)
		popBits, err := a.dataAcc.LoadU32(popAddr)
		if err != nil {
			return apps.Response{}, nil, err
		}
		final := base + float64(f32from(popBits))
		snippet := make([]byte, a.cfg.SnippetLen)
		snipAddr := a.heap.Base() + simmem.Addr(a.snippetsOff+int(id)*a.cfg.SnippetLen)
		if err := a.dataAcc.Load(snipAddr, snippet); err != nil {
			return apps.Response{}, nil, err
		}
		d.AddU64(id)
		d.AddU32(quantize(final))
		d.AddBytes(snippet)
		putU32(cacheBuf[8+8*j:], uint32(id))
		putU32(cacheBuf[12+8*j:], f32bits(float32(final)))
		results = append(results, DocScore{ID: uint32(id), Score: float32(final)})
	}
	if err := a.dataAcc.Store(slotAddr, cacheBuf[:]); err != nil {
		return apps.Response{}, nil, err
	}
	return d.Response(), results, nil
}

// respondFromCache serves a query straight from the heap result cache.
func (a *App) respondFromCache(slotAddr simmem.Addr, budget *apps.Budget) (apps.Response, []DocScore, error) {
	d := apps.NewDigest()
	var results []DocScore
	for j := 0; j < topK; j++ {
		if err := budget.Spend(1); err != nil {
			return apps.Response{}, nil, err
		}
		id, err := a.dataAcc.LoadU32(slotAddr + simmem.Addr(8+8*j))
		if err != nil {
			return apps.Response{}, nil, err
		}
		scoreBits, err := a.dataAcc.LoadU32(slotAddr + simmem.Addr(12+8*j))
		if err != nil {
			return apps.Response{}, nil, err
		}
		if id == 0xffffffff {
			d.AddU64(noDoc)
			continue
		}
		// Cached responses still fetch the snippet (the cache stores
		// ids and scores only).
		if uint64(id) >= uint64(a.numDocs) {
			return apps.Response{}, nil, apps.Assertf("cached doc %d out of range", id)
		}
		snippet := make([]byte, a.cfg.SnippetLen)
		snipAddr := a.heap.Base() + simmem.Addr(a.snippetsOff+int(id)*a.cfg.SnippetLen)
		if err := a.dataAcc.Load(snipAddr, snippet); err != nil {
			return apps.Response{}, nil, err
		}
		d.AddU64(uint64(id))
		d.AddU32(quantize(float64(f32from(scoreBits))))
		d.AddBytes(snippet)
		results = append(results, DocScore{ID: id, Score: f32from(scoreBits)})
	}
	return d.Response(), results, nil
}

// noDoc marks an empty top-4 slot.
const noDoc = ^uint64(0)

// insertTop maintains the descending top-4 (ids and scores) in the frame.
func (a *App) insertTop(fb simmem.Addr, id uint64, score float64, budget *apps.Budget) error {
	for j := 0; j < topK; j++ {
		if err := budget.Spend(1); err != nil {
			return err
		}
		cur, err := a.frameAcc.LoadF64(fb + simmem.Addr(frTopScores+8*j))
		if err != nil {
			return err
		}
		curID, err := a.frameAcc.LoadU64(fb + simmem.Addr(frTopIDs+8*j))
		if err != nil {
			return err
		}
		if curID == id {
			// Already ranked (multi-term hit): keep the higher score.
			if score > cur {
				return a.frameAcc.StoreF64(fb+simmem.Addr(frTopScores+8*j), score)
			}
			return nil
		}
		if score > cur {
			// Shift the tail down and insert.
			for k := topK - 1; k > j; k-- {
				pid, err := a.frameAcc.LoadU64(fb + simmem.Addr(frTopIDs+8*(k-1)))
				if err != nil {
					return err
				}
				ps, err := a.frameAcc.LoadF64(fb + simmem.Addr(frTopScores+8*(k-1)))
				if err != nil {
					return err
				}
				if err := a.frameAcc.StoreU64(fb+simmem.Addr(frTopIDs+8*k), pid); err != nil {
					return err
				}
				if err := a.frameAcc.StoreF64(fb+simmem.Addr(frTopScores+8*k), ps); err != nil {
					return err
				}
			}
			if err := a.frameAcc.StoreU64(fb+simmem.Addr(frTopIDs+8*j), id); err != nil {
				return err
			}
			return a.frameAcc.StoreF64(fb+simmem.Addr(frTopScores+8*j), score)
		}
	}
	return nil
}

// quantize rounds a score for digesting, so sub-ULP float noise does not
// count as an incorrect result.
func quantize(s float64) uint32 {
	return uint32(int32(s * 1024))
}

// Little-endian helpers over plain byte slices (host-side serialization).

func putU32(b []byte, v uint32) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
}

func putU64(b []byte, v uint64) {
	putU32(b, uint32(v))
	putU32(b[4:], uint32(v>>32))
}

func f32bits(f float32) uint32 { return math.Float32bits(f) }
func f32from(u uint32) float32 { return math.Float32frombits(u) }
