package ecc

import (
	"hrmsim/internal/simmem"
)

// Chipkill is a single-symbol-correcting Reed–Solomon (18,16) code over
// GF(2^8): a 128-bit word is split into sixteen 8-bit symbols (one per
// DRAM chip in the modelled rank) and two check symbols are added — 12.5%
// overhead, matching Table 1. Any error pattern confined to one symbol
// (i.e. one chip), up to all eight of its bits, is corrected; errors
// spanning two symbols are detected when the syndromes are inconsistent.
//
// Real chipkill (b-adjacent) codes achieve guaranteed double-symbol
// detection at the same overhead by using 4-bit symbols over wider words;
// this distance-3 construction matches their cost and correction
// capability, and detects most — not all — double-symbol patterns. The
// design-space cost model uses the Table 1 figures either way.
type Chipkill struct{}

var _ simmem.Codec = Chipkill{}

// NewChipkill returns the chipkill codec.
func NewChipkill() Chipkill { return Chipkill{} }

const ckSymbols = 18 // 16 data + 2 check

// Name implements simmem.Codec.
func (Chipkill) Name() string { return "Chipkill" }

// WordBytes implements simmem.Codec.
func (Chipkill) WordBytes() int { return 16 }

// CheckBytes implements simmem.Codec.
func (Chipkill) CheckBytes() int { return 2 }

// CheckBits implements simmem.Codec.
func (Chipkill) CheckBits() int { return 16 }

// Encode implements simmem.Codec. Data symbol j is codeword coefficient
// j+2; check symbols are coefficients 0 and 1, chosen so the codeword has
// roots at α^0 and α^1.
func (Chipkill) Encode(data, check []byte) {
	var a, b byte // a = Σ d_j, b = Σ d_j·α^j over data positions
	for j, d := range data {
		if d == 0 {
			continue
		}
		a ^= d
		b ^= gf256.mul(d, gf256.alphaPow(j+2))
	}
	// Solve c0 + c1 = a, c0 + c1·α = b.
	alpha := gf256.alphaPow(1)
	c1 := gf256.div(a^b, 1^alpha)
	c0 := a ^ c1
	check[0] = c0
	check[1] = c1
}

// Decode implements simmem.Codec.
func (Chipkill) Decode(data, check []byte) simmem.Verdict {
	var s0, s1 byte
	sym := func(i int) byte {
		if i < 2 {
			return check[i]
		}
		return data[i-2]
	}
	for i := 0; i < ckSymbols; i++ {
		v := sym(i)
		if v == 0 {
			continue
		}
		s0 ^= v
		s1 ^= gf256.mul(v, gf256.alphaPow(i))
	}
	if s0 == 0 && s1 == 0 {
		return simmem.VerdictClean
	}
	if s0 == 0 || s1 == 0 {
		// A single symbol error always yields two nonzero syndromes;
		// this pattern spans multiple symbols.
		return simmem.VerdictUncorrectable
	}
	p := gf256.logOf(s1) - gf256.logOf(s0)
	if p < 0 {
		p += gf256.n
	}
	if p >= ckSymbols {
		return simmem.VerdictUncorrectable
	}
	if p < 2 {
		check[p] ^= s0
	} else {
		data[p-2] ^= s0
	}
	return simmem.VerdictCorrected
}

// RAIM approximates the module-level redundancy of IBM's RAIM with a
// Reed–Solomon (20,16) code over GF(2^8): four check symbols per sixteen
// data symbols, correcting up to two full symbols per 128-bit word via
// Peterson–Gorenstein–Zierler decoding. The paper's Table 1 accounts RAIM
// cost at the memory-module level (40.6% added capacity); the design-space
// cost model uses that figure while this codec supplies the executable
// behaviour.
type RAIM struct{}

var _ simmem.Codec = RAIM{}

// NewRAIM returns the RAIM codec.
func NewRAIM() RAIM { return RAIM{} }

const (
	raimSymbols = 20
	raimChecks  = 4
)

// raimGen holds the generator polynomial coefficients of
// g(x) = Π_{i=0..3} (x − α^i), lowest degree first, excluding the leading
// 1 (g has degree 4).
var raimGen [raimChecks]byte

func init() {
	// Multiply out the generator.
	g := []byte{1} // constant 1
	for i := 0; i < raimChecks; i++ {
		root := gf256.alphaPow(i)
		next := make([]byte, len(g)+1)
		for j, c := range g {
			next[j+1] ^= c
			next[j] ^= gf256.mul(c, root)
		}
		g = next
	}
	// g now has degree raimChecks with leading coefficient 1.
	if len(g) != raimChecks+1 || g[raimChecks] != 1 {
		panic("ecc: RAIM generator construction failed")
	}
	copy(raimGen[:], g[:raimChecks])
}

// Name implements simmem.Codec.
func (RAIM) Name() string { return "RAIM" }

// WordBytes implements simmem.Codec.
func (RAIM) WordBytes() int { return 16 }

// CheckBytes implements simmem.Codec.
func (RAIM) CheckBytes() int { return 4 }

// CheckBits implements simmem.Codec.
func (RAIM) CheckBits() int { return 32 }

// Encode implements simmem.Codec: systematic encoding by polynomial
// division; data symbol j is coefficient j+4, checks are coefficients 0..3.
func (RAIM) Encode(data, check []byte) {
	// Compute d(x)·x^4 mod g(x) by synthetic long division from the top
	// coefficient down.
	var rem [raimChecks]byte
	for j := len(data) - 1; j >= 0; j-- {
		// Bring in the next coefficient: factor = top of remainder + d_j.
		factor := data[j] ^ rem[raimChecks-1]
		// Shift remainder up by one.
		copy(rem[1:], rem[:raimChecks-1])
		rem[0] = 0
		if factor != 0 {
			for k := 0; k < raimChecks; k++ {
				rem[k] ^= gf256.mul(factor, raimGen[k])
			}
		}
	}
	copy(check, rem[:])
}

// Decode implements simmem.Codec.
func (RAIM) Decode(data, check []byte) simmem.Verdict {
	var s [raimChecks]byte
	sym := func(i int) byte {
		if i < raimChecks {
			return check[i]
		}
		return data[i-raimChecks]
	}
	allZero := true
	for j := 0; j < raimChecks; j++ {
		for i := 0; i < raimSymbols; i++ {
			v := sym(i)
			if v != 0 {
				s[j] ^= gf256.mul(v, gf256.alphaPow(i*j))
			}
		}
		if s[j] != 0 {
			allZero = false
		}
	}
	if allZero {
		return simmem.VerdictClean
	}

	fix := func(pos int, val byte) {
		if pos < raimChecks {
			check[pos] ^= val
		} else {
			data[pos-raimChecks] ^= val
		}
	}

	// Try a single-symbol error: S_j = e·α^(p·j) must be geometric.
	if s[0] != 0 && s[1] != 0 {
		p := gf256.logOf(s[1]) - gf256.logOf(s[0])
		if p < 0 {
			p += gf256.n
		}
		x := gf256.alphaPow(p)
		if p < raimSymbols &&
			s[2] == gf256.mul(s[1], x) && s[3] == gf256.mul(s[2], x) {
			fix(p, s[0])
			return simmem.VerdictCorrected
		}
	}

	// Try a double-symbol error (PGZ for t=2): solve
	//   | S0 S1 | |σ2|   |S2|
	//   | S1 S2 | |σ1| = |S3|
	det := gf256.mul(s[0], s[2]) ^ gf256.mul(s[1], s[1])
	if det == 0 {
		return simmem.VerdictUncorrectable
	}
	sigma2 := gf256.div(gf256.mul(s[2], s[2])^gf256.mul(s[1], s[3]), det)
	sigma1 := gf256.div(gf256.mul(s[0], s[3])^gf256.mul(s[1], s[2]), det)
	var roots []int
	for p := 0; p < raimSymbols; p++ {
		x := gf256.alphaPow(p)
		v := gf256.mul(x, x) ^ gf256.mul(sigma1, x) ^ sigma2
		if v == 0 {
			roots = append(roots, p)
			if len(roots) > 2 {
				break
			}
		}
	}
	if len(roots) != 2 {
		return simmem.VerdictUncorrectable
	}
	x1 := gf256.alphaPow(roots[0])
	x2 := gf256.alphaPow(roots[1])
	// S0 = e1 + e2, S1 = e1·X1 + e2·X2.
	e1 := gf256.div(s[1]^gf256.mul(s[0], x2), x1^x2)
	e2 := s[0] ^ e1
	fix(roots[0], e1)
	fix(roots[1], e2)
	// Verify all four syndromes vanish after correction.
	for j := 0; j < raimChecks; j++ {
		var v byte
		for i := 0; i < raimSymbols; i++ {
			sv := sym(i)
			if sv != 0 {
				v ^= gf256.mul(sv, gf256.alphaPow(i*j))
			}
		}
		if v != 0 {
			// Roll back the miscorrection.
			fix(roots[0], e1)
			fix(roots[1], e2)
			return simmem.VerdictUncorrectable
		}
	}
	return simmem.VerdictCorrected
}
