// Package faults models when memory errors occur and what kind they are:
// the error-model axis of the paper's evaluation (Section VI-A). Rates are
// expressed per server per month, following the field data the paper
// builds on (Schroeder et al., 2000 errors/server/month), and arrivals are
// drawn from a Poisson process on the simulation's virtual clock.
//
// Less-tested DRAM — the cost lever of the paper's "L" design points — is
// modelled as a multiplier on the arrival rate, since skipping vendor
// test-and-burn-in raises the population of weak cells without changing
// the failure physics.
package faults

import (
	"fmt"
	"math/rand"
	"time"

	"hrmsim/internal/dram"
)

// Month is the accounting period used for error rates and availability.
const Month = 30 * 24 * time.Hour

// Class distinguishes the two main memory error types (Section II-A).
type Class int

// Error classes.
const (
	// Soft errors are transient random flips; an overwrite clears them.
	Soft Class = iota + 1
	// Hard errors are recurring: the affected cells keep failing until
	// the page is retired (modelled as stuck-at bits).
	Hard
)

// String returns the class name.
func (c Class) String() string {
	switch c {
	case Soft:
		return "soft"
	case Hard:
		return "hard"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// Spec describes one error to inject.
type Spec struct {
	// Class is soft or hard.
	Class Class
	// Bits is how many distinct bits of the target byte flip (the
	// paper's multi-bit errors repeat the single-bit flip with
	// different bit indices — Section IV-A).
	Bits int
	// Domain, when non-nil, makes this a correlated fault: instead of a
	// single byte, a sample of addresses across the whole failed
	// structure (row/column/bank/chip/DIMM) is corrupted.
	Domain *dram.FaultDomain
}

// Validate checks the spec.
func (s Spec) Validate() error {
	if s.Class != Soft && s.Class != Hard {
		return fmt.Errorf("faults: invalid class %d", int(s.Class))
	}
	if s.Bits < 1 || s.Bits > 8 {
		return fmt.Errorf("faults: bits per byte must be in [1,8], got %d", s.Bits)
	}
	return nil
}

// String renders the spec the way the paper's figures label error types
// (e.g. "single-bit soft", "2-bit hard").
func (s Spec) String() string {
	var n string
	switch s.Bits {
	case 1:
		n = "single-bit"
	case 2:
		n = "2-bit"
	default:
		n = fmt.Sprintf("%d-bit", s.Bits)
	}
	out := n + " " + s.Class.String()
	if s.Domain != nil {
		out += " (" + s.Domain.Kind.String() + ")"
	}
	return out
}

// The three error types of the paper's WebSearch severity analysis
// (Fig. 6).
var (
	// SingleBitSoft is a transient single-bit flip.
	SingleBitSoft = Spec{Class: Soft, Bits: 1}
	// SingleBitHard is a recurring single-bit fault.
	SingleBitHard = Spec{Class: Hard, Bits: 1}
	// DoubleBitHard is a recurring two-bit fault in one byte.
	DoubleBitHard = Spec{Class: Hard, Bits: 2}
)

// RateModel parameterizes the error arrival process for one server.
type RateModel struct {
	// ErrorsPerMonth is the base rate of memory error occurrences per
	// server per month on normally tested DRAM.
	ErrorsPerMonth float64
	// SoftFraction is the share of arrivals that are soft (transient).
	SoftFraction float64
	// MultiBitFraction is the share of hard arrivals affecting two bits
	// instead of one.
	MultiBitFraction float64
	// LessTestedMultiplier scales the rate for less-tested DRAM
	// (1 = fully tested). The paper's Table 6 explores a cost-vs-rate
	// band for this class of device.
	LessTestedMultiplier float64
}

// DefaultRates returns the paper's Table 6 error model: 2000 errors per
// server per month (from field studies), treated as soft for the
// availability analysis, on fully tested DRAM.
func DefaultRates() RateModel {
	return RateModel{
		ErrorsPerMonth:       2000,
		SoftFraction:         1.0,
		MultiBitFraction:     0,
		LessTestedMultiplier: 1,
	}
}

// Validate checks the model.
func (m RateModel) Validate() error {
	switch {
	case m.ErrorsPerMonth < 0:
		return fmt.Errorf("faults: negative error rate %g", m.ErrorsPerMonth)
	case m.SoftFraction < 0 || m.SoftFraction > 1:
		return fmt.Errorf("faults: soft fraction %g outside [0,1]", m.SoftFraction)
	case m.MultiBitFraction < 0 || m.MultiBitFraction > 1:
		return fmt.Errorf("faults: multi-bit fraction %g outside [0,1]", m.MultiBitFraction)
	case m.LessTestedMultiplier <= 0:
		return fmt.Errorf("faults: less-tested multiplier must be positive, got %g", m.LessTestedMultiplier)
	}
	return nil
}

// EffectiveRate returns the errors-per-month rate including the
// less-tested multiplier.
func (m RateModel) EffectiveRate() float64 {
	return m.ErrorsPerMonth * m.LessTestedMultiplier
}

// Arrival is one scheduled error occurrence.
type Arrival struct {
	At   time.Duration
	Spec Spec
}

// SampleSpec draws an error type according to the model's mix.
func (m RateModel) SampleSpec(rng *rand.Rand) Spec {
	if rng.Float64() < m.SoftFraction {
		return SingleBitSoft
	}
	if rng.Float64() < m.MultiBitFraction {
		return DoubleBitHard
	}
	return SingleBitHard
}

// Arrivals draws a Poisson arrival sequence over the horizon. The result
// is sorted by time.
func (m RateModel) Arrivals(rng *rand.Rand, horizon time.Duration) ([]Arrival, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if horizon <= 0 {
		return nil, fmt.Errorf("faults: horizon must be positive, got %v", horizon)
	}
	rate := m.EffectiveRate() // per Month
	if rate == 0 {
		return nil, nil
	}
	var out []Arrival
	t := time.Duration(0)
	for {
		// Exponential inter-arrival with mean Month/rate.
		dt := time.Duration(rng.ExpFloat64() / rate * float64(Month))
		if dt <= 0 {
			dt = 1
		}
		t += dt
		if t >= horizon {
			return out, nil
		}
		out = append(out, Arrival{At: t, Spec: m.SampleSpec(rng)})
	}
}

// ExpectedCount returns the expected number of arrivals over a horizon.
func (m RateModel) ExpectedCount(horizon time.Duration) float64 {
	return m.EffectiveRate() * float64(horizon) / float64(Month)
}
