package simmem

import "time"

// AccessKind distinguishes loads from stores.
type AccessKind int

// Access kinds.
const (
	// Load is a read access.
	Load AccessKind = iota + 1
	// Store is a write access.
	Store
)

// String returns "load" or "store".
func (k AccessKind) String() string {
	if k == Load {
		return "load"
	}
	return "store"
}

// AccessEvent describes one application memory access. Observers receive
// one event per Load/Store call (not per byte), mirroring the paper's
// watchpoint-based monitoring (Algorithm 1(b)).
type AccessEvent struct {
	Addr   Addr
	Len    int
	Kind   AccessKind
	Time   time.Duration
	Region *Region
}

// AccessObserver receives application access events. The monitor package
// implements this to compute safe ratios and write-interval statistics.
type AccessObserver interface {
	ObserveAccess(ev AccessEvent)
}

// ECCEventKind classifies protection-code outcomes worth reporting.
type ECCEventKind int

// ECC event kinds.
const (
	// ECCCorrected is a corrected error on a load.
	ECCCorrected ECCEventKind = iota + 1
	// ECCUncorrectable is a detected-but-uncorrectable error on a load
	// (before any software response runs).
	ECCUncorrectable
	// ECCRecovered is an uncorrectable error repaired by the region's
	// MCHandler (software response): the post-recovery retry decoded
	// cleanly. It always follows an ECCUncorrectable event for the same
	// word. Observers that only care about hardware corrections (e.g.
	// page retirement) ignore it.
	ECCRecovered
)

// ECCEvent describes a detection/correction event in a protected region.
type ECCEvent struct {
	Kind   ECCEventKind
	Addr   Addr // first byte of the affected codeword
	Time   time.Duration
	Region *Region
}

// ECCObserver receives ECC events; the recovery package uses corrected-
// error streams to drive page-retirement thresholds.
type ECCObserver interface {
	ObserveECC(ev ECCEvent)
}
