package simmem

import (
	"errors"
	"testing"
)

// replicaCodec is a test-only correcting codec: the check storage holds a
// full copy of the 8-byte word plus a parity byte over the data. Decode
// trusts whichever side's parity is consistent.
type replicaCodec struct{}

func (replicaCodec) Name() string    { return "test-replica" }
func (replicaCodec) WordBytes() int  { return 8 }
func (replicaCodec) CheckBytes() int { return 9 }
func (replicaCodec) CheckBits() int  { return 72 }

func xorAll(b []byte) byte {
	var x byte
	for _, v := range b {
		x ^= v
	}
	return x
}

func (replicaCodec) Encode(data, check []byte) {
	copy(check[:8], data)
	check[8] = xorAll(data)
}

func (replicaCodec) Decode(data, check []byte) Verdict {
	dataOK := xorAll(data) == check[8]
	copyOK := xorAll(check[:8]) == check[8]
	same := true
	for i := 0; i < 8; i++ {
		if data[i] != check[i] {
			same = false
			break
		}
	}
	switch {
	case dataOK && same:
		return VerdictClean
	case dataOK: // copy corrupted; repair it
		copy(check[:8], data)
		return VerdictCorrected
	case copyOK: // data corrupted; repair from copy
		copy(data, check[:8])
		return VerdictCorrected
	default:
		return VerdictUncorrectable
	}
}

// parityOnlyCodec detects any odd number of flipped bits per word but
// cannot correct (like the paper's Parity row in Table 1).
type parityOnlyCodec struct{}

func (parityOnlyCodec) Name() string    { return "test-parity" }
func (parityOnlyCodec) WordBytes() int  { return 8 }
func (parityOnlyCodec) CheckBytes() int { return 1 }
func (parityOnlyCodec) CheckBits() int  { return 1 }

func (parityOnlyCodec) Encode(data, check []byte) {
	var bits int
	for _, b := range data {
		for ; b != 0; b &= b - 1 {
			bits++
		}
	}
	check[0] = byte(bits & 1)
}

func (parityOnlyCodec) Decode(data, check []byte) Verdict {
	var scratch [1]byte
	parityOnlyCodec{}.Encode(data, scratch[:])
	if scratch[0]&1 == check[0]&1 {
		return VerdictClean
	}
	return VerdictUncorrectable
}

func newProtectedAS(t *testing.T, codec Codec, mc MCHandler) (*AddressSpace, *Region) {
	t.Helper()
	as, err := New(Config{PageSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	r, err := as.AddRegion(RegionSpec{
		Name: "prot", Kind: RegionHeap, Size: 1024, Backed: true, Codec: codec, MC: mc,
	})
	if err != nil {
		t.Fatal(err)
	}
	return as, r
}

func TestProtectedRoundtrip(t *testing.T) {
	as, r := newProtectedAS(t, replicaCodec{}, nil)
	addr := r.Base() + 16
	if err := as.StoreU64(addr, 12345); err != nil {
		t.Fatal(err)
	}
	if v, err := as.LoadU64(addr); err != nil || v != 12345 {
		t.Fatalf("roundtrip = %d, %v", v, err)
	}
	if c := as.Counters(); c.Corrected != 0 || c.Uncorrectable != 0 {
		t.Errorf("spurious ECC events: %+v", c)
	}
}

func TestProtectedCorrection(t *testing.T) {
	as, r := newProtectedAS(t, replicaCodec{}, nil)
	addr := r.Base() + 32
	if err := as.StoreU64(addr, 0xABCDEF); err != nil {
		t.Fatal(err)
	}
	if err := as.FlipBit(addr, 3); err != nil {
		t.Fatal(err)
	}
	v, err := as.LoadU64(addr)
	if err != nil {
		t.Fatalf("Load after single flip: %v", err)
	}
	if v != 0xABCDEF {
		t.Errorf("corrected value = %#x, want 0xABCDEF", v)
	}
	c := as.Counters()
	if c.Corrected != 1 {
		t.Errorf("Corrected = %d, want 1", c.Corrected)
	}
	if r.CorrectedOnPage(r.PageIndex(addr)) != 1 {
		t.Error("page corrected counter not incremented")
	}
	// Without scrubbing, the stored error persists and is corrected
	// again on the next load.
	if _, err := as.LoadU64(addr); err != nil {
		t.Fatal(err)
	}
	if c := as.Counters(); c.Corrected != 2 {
		t.Errorf("Corrected after second load = %d, want 2", c.Corrected)
	}
}

func TestScrubOnCorrect(t *testing.T) {
	as, err := New(Config{PageSize: 256, ScrubOnCorrect: true})
	if err != nil {
		t.Fatal(err)
	}
	r, err := as.AddRegion(RegionSpec{Name: "p", Kind: RegionHeap, Size: 512, Codec: replicaCodec{}})
	if err != nil {
		t.Fatal(err)
	}
	addr := r.Base()
	if err := as.StoreU64(addr, 7); err != nil {
		t.Fatal(err)
	}
	if err := as.FlipBit(addr, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := as.LoadU64(addr); err != nil {
		t.Fatal(err)
	}
	// Scrubbing wrote the corrected word back; the second load is clean.
	if _, err := as.LoadU64(addr); err != nil {
		t.Fatal(err)
	}
	if c := as.Counters(); c.Corrected != 1 {
		t.Errorf("Corrected = %d, want 1 (scrubbed after first)", c.Corrected)
	}
}

func TestUncorrectableCrashesWithoutHandler(t *testing.T) {
	as, r := newProtectedAS(t, parityOnlyCodec{}, nil)
	addr := r.Base() + 8
	if err := as.StoreU64(addr, 99); err != nil {
		t.Fatal(err)
	}
	if err := as.FlipBit(addr, 5); err != nil {
		t.Fatal(err)
	}
	_, err := as.LoadU64(addr)
	f, ok := AsFault(err)
	if !ok || f.Kind != FaultMachineCheck {
		t.Fatalf("err = %v, want machine-check fault", err)
	}
	if c := as.Counters(); c.Uncorrectable != 1 {
		t.Errorf("Uncorrectable = %d, want 1", c.Uncorrectable)
	}
}

func TestUncorrectableRecoveredByHandler(t *testing.T) {
	var handled int
	handler := MCHandlerFunc(func(as *AddressSpace, ev MCEvent) MCAction {
		handled++
		if err := ev.Region.RestoreWord(ev.Addr); err != nil {
			return MCCrash
		}
		return MCRecovered
	})
	as, r := newProtectedAS(t, parityOnlyCodec{}, handler)
	addr := r.Base() + 8
	if err := as.StoreU64(addr, 4242); err != nil {
		t.Fatal(err)
	}
	if err := r.FlushAll(); err != nil { // checkpoint the clean copy
		t.Fatal(err)
	}
	if err := as.FlipBit(addr, 5); err != nil {
		t.Fatal(err)
	}
	v, err := as.LoadU64(addr)
	if err != nil {
		t.Fatalf("Load with recovery handler: %v", err)
	}
	if v != 4242 {
		t.Errorf("recovered value = %d, want 4242", v)
	}
	if handled != 1 {
		t.Errorf("handler calls = %d, want 1", handled)
	}
	if c := as.Counters(); c.Recovered != 1 {
		t.Errorf("Recovered = %d, want 1", c.Recovered)
	}
}

func TestUncorrectableHandlerFailsToRepair(t *testing.T) {
	// A handler that claims recovery but repairs nothing: the retried
	// decode still fails and the load faults.
	handler := MCHandlerFunc(func(as *AddressSpace, ev MCEvent) MCAction {
		return MCRecovered
	})
	as, r := newProtectedAS(t, parityOnlyCodec{}, handler)
	addr := r.Base()
	if err := as.StoreU64(addr, 1); err != nil {
		t.Fatal(err)
	}
	if err := as.FlipBit(addr, 0); err != nil {
		t.Fatal(err)
	}
	_, err := as.LoadU64(addr)
	f, ok := AsFault(err)
	if !ok || f.Kind != FaultMachineCheck {
		t.Fatalf("err = %v, want machine-check fault", err)
	}
}

func TestCheckBitCorruption(t *testing.T) {
	as, r := newProtectedAS(t, replicaCodec{}, nil)
	addr := r.Base() + 64
	if err := as.StoreU64(addr, 0x1111); err != nil {
		t.Fatal(err)
	}
	// Corrupt the stored copy (check bytes): data still decodes, the
	// codec repairs its replica, and the value is unchanged.
	if err := as.FlipCheckBit(addr, 2); err != nil {
		t.Fatal(err)
	}
	v, err := as.LoadU64(addr)
	if err != nil || v != 0x1111 {
		t.Fatalf("load after check corruption = %#x, %v", v, err)
	}
	if c := as.Counters(); c.Corrected != 1 {
		t.Errorf("Corrected = %d, want 1", c.Corrected)
	}

	if err := as.FlipCheckBit(addr, 100); err == nil {
		t.Error("out-of-range check bit accepted")
	}
	// Unprotected regions have no check storage.
	plain := newTestAS(t)
	if err := plain.FlipCheckBit(plain.RegionByName("heap").Base(), 0); err == nil {
		t.Error("FlipCheckBit on unprotected region accepted")
	}
}

func TestPartialStoreReadModifyWrite(t *testing.T) {
	as, r := newProtectedAS(t, replicaCodec{}, nil)
	addr := r.Base() + 16
	if err := as.StoreU64(addr, 0xFFFFFFFFFFFFFFFF); err != nil {
		t.Fatal(err)
	}
	// Corrupt a byte the partial store will NOT touch; the RMW decode
	// must correct it rather than folding it into a new codeword.
	if err := as.FlipBit(addr+7, 2); err != nil {
		t.Fatal(err)
	}
	if err := as.StoreU8(addr, 0x00); err != nil {
		t.Fatal(err)
	}
	v, err := as.LoadU64(addr)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0xFFFFFFFFFFFFFF00 {
		t.Errorf("after RMW = %#x, want 0xFFFFFFFFFFFFFF00", v)
	}
	if c := as.Counters(); c.Corrected != 1 {
		t.Errorf("Corrected = %d, want 1 (RMW decode)", c.Corrected)
	}
}

func TestPartialStoreUncorrectableFaults(t *testing.T) {
	as, r := newProtectedAS(t, parityOnlyCodec{}, nil)
	addr := r.Base() + 16
	if err := as.StoreU64(addr, 0); err != nil {
		t.Fatal(err)
	}
	if err := as.FlipBit(addr+7, 0); err != nil {
		t.Fatal(err)
	}
	err := as.StoreU8(addr, 1)
	f, ok := AsFault(err)
	if !ok || f.Kind != FaultMachineCheck {
		t.Fatalf("partial store over uncorrectable error: %v, want machine check", err)
	}
	// A full-word store overwrites the error without decoding: masked.
	if err := as.StoreU64(addr, 5); err != nil {
		t.Fatalf("full-word store: %v", err)
	}
	if v, err := as.LoadU64(addr); err != nil || v != 5 {
		t.Errorf("after overwrite = %d, %v", v, err)
	}
}

func TestECCObserverSeesEvents(t *testing.T) {
	as, r := newProtectedAS(t, replicaCodec{}, nil)
	var events []ECCEvent
	as.AddECCObserver(eccFunc(func(ev ECCEvent) { events = append(events, ev) }))
	addr := r.Base()
	if err := as.StoreU64(addr, 3); err != nil {
		t.Fatal(err)
	}
	if err := as.FlipBit(addr, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := as.LoadU64(addr); err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 || events[0].Kind != ECCCorrected || events[0].Addr != addr {
		t.Errorf("events = %+v", events)
	}
}

type eccFunc func(ECCEvent)

func (f eccFunc) ObserveECC(ev ECCEvent) { f(ev) }

func TestWriteRawReencodesCheckStorage(t *testing.T) {
	as, r := newProtectedAS(t, replicaCodec{}, nil)
	addr := r.Base() + 24
	// Unaligned raw write into a protected region must leave valid
	// codewords behind.
	if err := as.WriteRaw(addr+3, []byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 10)
	if err := as.Load(addr+3, buf); err != nil {
		t.Fatalf("load after WriteRaw: %v", err)
	}
	for i, b := range buf {
		if b != byte(i+1) {
			t.Fatalf("byte %d = %d, want %d", i, b, i+1)
		}
	}
	if c := as.Counters(); c.Corrected != 0 || c.Uncorrectable != 0 {
		t.Errorf("WriteRaw left inconsistent codewords: %+v", c)
	}
}

func TestReplaceFrameReencodesProtectedPages(t *testing.T) {
	as, r := newProtectedAS(t, parityOnlyCodec{}, nil)
	addr := r.Base() + 8
	if err := as.StoreU64(addr, 123); err != nil {
		t.Fatal(err)
	}
	if err := r.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if err := as.FlipBit(addr, 0); err != nil {
		t.Fatal(err)
	}
	if err := r.ReplaceFrame(r.PageIndex(addr)); err != nil {
		t.Fatal(err)
	}
	v, err := as.LoadU64(addr)
	if err != nil {
		t.Fatalf("load after frame replace: %v", err)
	}
	if v != 123 {
		t.Errorf("restored value = %d, want 123", v)
	}
}

func TestAddRegionCodecValidation(t *testing.T) {
	as, err := New(Config{PageSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	_, err = as.AddRegion(RegionSpec{Name: "bad", Size: 256, Codec: oddWordCodec{}})
	if err == nil {
		t.Error("codec with word size not dividing page size accepted")
	}
}

type oddWordCodec struct{ replicaCodec }

func (oddWordCodec) WordBytes() int { return 24 } // does not divide 256

func TestErrOutOfMemorySentinel(t *testing.T) {
	if !errors.Is(ErrOutOfMemory, ErrOutOfMemory) {
		t.Error("sentinel identity broken")
	}
}
