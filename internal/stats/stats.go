// Package stats provides the small statistical toolkit used by the
// characterization experiments: binomial confidence intervals, summary
// statistics, histograms, empirical CDFs, kernel density estimates, and
// goodness-of-fit diagnostics for exponential and uniform distributions.
//
// The paper reports crash probabilities with 90% confidence intervals
// (Figs. 3a, 4a, 6a), fits time-to-outcome distributions (Fig. 5a), and
// draws safe-ratio densities (Fig. 5b); this package implements exactly the
// machinery those reproductions need, on top of the standard library only.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrNoData is returned by estimators that require at least one sample.
var ErrNoData = errors.New("stats: no data")

// Proportion is an estimated probability with a confidence interval,
// typically a crash probability out of a number of injection trials.
type Proportion struct {
	Successes int     // number of trials with the outcome of interest
	Trials    int     // total number of trials
	P         float64 // point estimate Successes/Trials
	Lo, Hi    float64 // confidence interval bounds
	Level     float64 // confidence level, e.g. 0.90
}

// String renders the proportion as a percentage with its interval.
func (p Proportion) String() string {
	return fmt.Sprintf("%.2f%% [%.2f%%, %.2f%%] (%d/%d)",
		p.P*100, p.Lo*100, p.Hi*100, p.Successes, p.Trials)
}

// zForLevel returns the two-sided standard-normal quantile for a confidence
// level. Common levels are tabulated; others fall back to a numerical
// inverse via bisection on the normal CDF.
func zForLevel(level float64) float64 {
	switch level {
	case 0.90:
		return 1.6448536269514722
	case 0.95:
		return 1.959963984540054
	case 0.99:
		return 2.5758293035489004
	}
	// Invert Phi((1+level)/2) by bisection; the CDF is monotone.
	target := (1 + level) / 2
	lo, hi := 0.0, 10.0
	for i := 0; i < 100; i++ {
		mid := (lo + hi) / 2
		if normCDF(mid) < target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// normCDF is the standard normal cumulative distribution function.
func normCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

// WilsonInterval computes the Wilson score interval for a binomial
// proportion. It behaves sensibly at the extremes (0 or all successes),
// unlike the normal approximation, which matters because many injection
// campaigns observe zero crashes in a region.
func WilsonInterval(successes, trials int, level float64) (Proportion, error) {
	if trials <= 0 {
		return Proportion{}, fmt.Errorf("stats: trials must be positive, got %d", trials)
	}
	if successes < 0 || successes > trials {
		return Proportion{}, fmt.Errorf("stats: successes %d out of range [0,%d]", successes, trials)
	}
	z := zForLevel(level)
	n := float64(trials)
	p := float64(successes) / n
	denom := 1 + z*z/n
	center := (p + z*z/(2*n)) / denom
	half := z / denom * math.Sqrt(p*(1-p)/n+z*z/(4*n*n))
	lo := center - half
	hi := center + half
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return Proportion{
		Successes: successes,
		Trials:    trials,
		P:         p,
		Lo:        lo,
		Hi:        hi,
		Level:     level,
	}, nil
}

// Summary holds the standard moments and order statistics of a sample.
// The JSON field names are part of the `hrmsim -json` result schema
// (OBSERVABILITY.md) — change them only with a schema_version bump.
type Summary struct {
	N      int     `json:"n"`
	Mean   float64 `json:"mean"`
	Std    float64 `json:"std"` // sample standard deviation (n-1 denominator)
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
	Median float64 `json:"median"`
}

// Summarize computes a Summary of xs. It returns ErrNoData for an empty
// sample.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, ErrNoData
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	if len(xs) > 1 {
		var ss float64
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Std = math.Sqrt(ss / float64(len(xs)-1))
	}
	s.Median = Percentile(xs, 50)
	return s, nil
}

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation between closest ranks. It returns NaN for an empty sample.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Histogram is a fixed-bin histogram over [Min, Max).
type Histogram struct {
	Min, Max float64
	Counts   []int
	Total    int
	Overflow int // samples outside [Min, Max)
}

// NewHistogram creates a histogram with the given bounds and bin count.
func NewHistogram(min, max float64, bins int) (*Histogram, error) {
	if bins <= 0 {
		return nil, fmt.Errorf("stats: bins must be positive, got %d", bins)
	}
	if !(min < max) {
		return nil, fmt.Errorf("stats: invalid histogram range [%g, %g)", min, max)
	}
	return &Histogram{Min: min, Max: max, Counts: make([]int, bins)}, nil
}

// Add records one sample.
func (h *Histogram) Add(x float64) {
	h.Total++
	if x < h.Min || x >= h.Max {
		h.Overflow++
		return
	}
	i := int((x - h.Min) / (h.Max - h.Min) * float64(len(h.Counts)))
	if i >= len(h.Counts) { // guard float rounding at the top edge
		i = len(h.Counts) - 1
	}
	h.Counts[i]++
}

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Max - h.Min) / float64(len(h.Counts))
	return h.Min + (float64(i)+0.5)*w
}

// Fractions returns each bin's share of all in-range samples. The slice is
// all zeros when the histogram is empty.
func (h *Histogram) Fractions() []float64 {
	fr := make([]float64, len(h.Counts))
	in := h.Total - h.Overflow
	if in == 0 {
		return fr
	}
	for i, c := range h.Counts {
		fr[i] = float64(c) / float64(in)
	}
	return fr
}

// ECDF is an empirical cumulative distribution function.
type ECDF struct {
	xs []float64 // sorted
}

// NewECDF builds an ECDF from a sample (which it copies and sorts).
func NewECDF(xs []float64) (*ECDF, error) {
	if len(xs) == 0 {
		return nil, ErrNoData
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return &ECDF{xs: sorted}, nil
}

// At returns the fraction of the sample that is <= x.
func (e *ECDF) At(x float64) float64 {
	// sort.SearchFloat64s returns the first index with xs[i] >= x; we want
	// count of xs[i] <= x, so search for the first index > x.
	i := sort.Search(len(e.xs), func(i int) bool { return e.xs[i] > x })
	return float64(i) / float64(len(e.xs))
}

// N returns the sample size.
func (e *ECDF) N() int { return len(e.xs) }

// Quantile returns the q-th quantile (0..1) of the sample.
func (e *ECDF) Quantile(q float64) float64 {
	return Percentile(e.xs, q*100)
}
