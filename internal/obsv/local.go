// Per-worker metric shards. Even single-atomic-op metrics contend when
// eight campaign workers hammer the same cache lines millions of times
// a second, so hot loops keep a plain, unsynchronized LocalHistogram
// (and plain int64 counters of their own) and fold into the shared
// registry at trial boundaries. Folding follows the MergeSnapshots
// aggregation policy: counters sum, histogram buckets add bucket-wise,
// gauges take the last written value.

package obsv

import "sort"

// LocalHistogram is a single-goroutine shard of a Histogram. Observe is
// plain arithmetic — no atomics, no cache-line traffic — and FoldInto
// publishes the accumulated samples into the parent with one atomic op
// per non-empty bucket. Samples are invisible to registry snapshots
// until folded.
type LocalHistogram struct {
	h      *Histogram
	counts []int64
	count  int64
	sum    float64
}

// NewLocal returns an empty local shard of the histogram.
func (h *Histogram) NewLocal() *LocalHistogram {
	return &LocalHistogram{h: h, counts: make([]int64, len(h.counts))}
}

// Observe records one sample locally.
func (l *LocalHistogram) Observe(x float64) {
	l.counts[sort.SearchFloat64s(l.h.bounds, x)]++
	l.count++
	l.sum += x
}

// FoldInto adds the local samples into the parent histogram and resets
// the shard. Folding an empty shard is free.
func (l *LocalHistogram) FoldInto() {
	if l.count == 0 {
		return
	}
	for i, n := range l.counts {
		if n != 0 {
			l.h.counts[i].Add(n)
			l.counts[i] = 0
		}
	}
	l.h.count.Add(l.count)
	l.h.addSum(l.sum)
	l.count = 0
	l.sum = 0
}
