// Package textplot renders the reproduction's tables and figures as
// aligned text for terminal output: tables (Tables 1, 3, 5, 6), log-scale
// bar charts (Figs. 3, 4, 6, 8), histograms (Fig. 5a), and density
// "violin" strips (Fig. 5b).
package textplot

import (
	"fmt"
	"math"
	"strings"
)

// Table is a titled text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends one row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Render returns the table with aligned columns.
func (t *Table) Render() string {
	cols := len(t.Headers)
	for _, r := range t.Rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	widths := make([]int, cols)
	measure := func(cells []string) {
		for i, c := range cells {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	measure(t.Headers)
	for _, r := range t.Rows {
		measure(r)
	}

	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i := 0; i < cols; i++ {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
			if i < cols-1 {
				b.WriteString("  ")
			}
		}
		b.WriteByte('\n')
	}
	if len(t.Headers) > 0 {
		writeRow(t.Headers)
		var sep []string
		for i := 0; i < cols; i++ {
			sep = append(sep, strings.Repeat("-", widths[i]))
		}
		writeRow(sep)
	}
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}

// Bar is one labeled value of a bar chart.
type Bar struct {
	Label string
	Value float64
	// Note is appended after the value (e.g. a confidence interval).
	Note string
}

// BarChart renders horizontal bars, optionally on a log10 scale (the
// paper's incorrect-rate figures span six orders of magnitude).
func BarChart(title string, bars []Bar, width int, logScale bool) string {
	if width <= 0 {
		width = 40
	}
	maxV := 0.0
	minPos := math.Inf(1)
	for _, b := range bars {
		if b.Value > maxV {
			maxV = b.Value
		}
		if b.Value > 0 && b.Value < minPos {
			minPos = b.Value
		}
	}
	labelW := 0
	for _, b := range bars {
		if len(b.Label) > labelW {
			labelW = len(b.Label)
		}
	}
	scale := func(v float64) int {
		if v <= 0 || maxV <= 0 {
			return 0
		}
		if !logScale {
			return int(math.Round(v / maxV * float64(width)))
		}
		lo := math.Log10(minPos) - 0.5
		hi := math.Log10(maxV)
		if hi <= lo {
			return width
		}
		return int(math.Round((math.Log10(v) - lo) / (hi - lo) * float64(width)))
	}

	var b strings.Builder
	if title != "" {
		b.WriteString(title)
		b.WriteByte('\n')
	}
	for _, bar := range bars {
		n := scale(bar.Value)
		if n > width {
			n = width
		}
		fmt.Fprintf(&b, "%-*s |%-*s %s", labelW, bar.Label, width, strings.Repeat("#", n), formatValue(bar.Value))
		if bar.Note != "" {
			b.WriteString("  ")
			b.WriteString(bar.Note)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// formatValue picks a compact representation.
func formatValue(v float64) string {
	switch {
	case v == 0:
		return "0"
	case math.Abs(v) >= 1e6 || math.Abs(v) < 1e-3:
		return fmt.Sprintf("%.3g", v)
	case math.Abs(v) >= 100:
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.3g", v)
	}
}

// HistogramPlot renders counts per bin as a vertical profile of '#'
// columns laid out horizontally (one row per bin), labeling bin centers.
func HistogramPlot(title string, centers []float64, counts []int, width int) string {
	if width <= 0 {
		width = 40
	}
	maxC := 0
	for _, c := range counts {
		if c > maxC {
			maxC = c
		}
	}
	var b strings.Builder
	if title != "" {
		b.WriteString(title)
		b.WriteByte('\n')
	}
	for i, c := range counts {
		n := 0
		if maxC > 0 {
			n = int(math.Round(float64(c) / float64(maxC) * float64(width)))
		}
		fmt.Fprintf(&b, "%8.1f |%-*s %d\n", centers[i], width, strings.Repeat("#", n), c)
	}
	return b.String()
}

// violinGlyphs maps density (0..1) to characters.
var violinGlyphs = []byte(" .:-=+*#%@")

// ViolinStrip renders one normalized density profile (values in [0,1],
// low to high along the axis) as a single character strip.
func ViolinStrip(profile []float64) string {
	out := make([]byte, len(profile))
	for i, v := range profile {
		if v < 0 {
			v = 0
		}
		if v > 1 {
			v = 1
		}
		idx := int(v * float64(len(violinGlyphs)-1))
		out[i] = violinGlyphs[idx]
	}
	return string(out)
}

// ViolinPlot renders labeled density strips over [lo, hi] with an axis
// line, plus each distribution's mean marker ("^") — the Fig. 5b layout.
func ViolinPlot(title string, labels []string, profiles [][]float64, means []float64, lo, hi float64) string {
	labelW := 0
	for _, l := range labels {
		if len(l) > labelW {
			labelW = len(l)
		}
	}
	var b strings.Builder
	if title != "" {
		b.WriteString(title)
		b.WriteByte('\n')
	}
	for i, l := range labels {
		fmt.Fprintf(&b, "%-*s |%s|\n", labelW, l, ViolinStrip(profiles[i]))
		if means != nil && i < len(means) && len(profiles[i]) > 1 {
			pos := int((means[i] - lo) / (hi - lo) * float64(len(profiles[i])-1))
			if pos < 0 {
				pos = 0
			}
			if pos >= len(profiles[i]) {
				pos = len(profiles[i]) - 1
			}
			fmt.Fprintf(&b, "%-*s |%s^ mean=%.2f\n", labelW, "", strings.Repeat(" ", pos), means[i])
		}
	}
	fmt.Fprintf(&b, "%-*s  %-*.2f%*.2f\n", labelW, "", 10, lo, 10, hi)
	return b.String()
}
