// Command hrmsim is the CLI for the heterogeneous-reliability memory
// reproduction: run error-injection characterization campaigns, profile
// application memory access behaviour, evaluate the HRM design space, and
// regenerate every table and figure of the paper.
//
// Usage:
//
//	hrmsim characterize -app websearch -error hard-1bit -region stack -trials 400
//	hrmsim characterize -app websearch -trials 2000 -target-ci 0.02
//	hrmsim characterize -app kvstore -trials 1000000 -shard 3/8 -journal shards/shard-0003-of-0008.jsonl
//	hrmsim characterize -app kvstore -trials 1000000 -coordinator -shards 8 -status-addr :8080
//	hrmsim merge -dir shards/
//	hrmsim status shards/ -watch
//	hrmsim profile -app websearch -watchpoints 600
//	hrmsim designspace
//	hrmsim plan -target 0.999
//	hrmsim tolerable
//	hrmsim lifetime -protection secded+scrub -errors 200000 -hours 24
//	hrmsim tables [-t fig3] [-trials 400] [-target-ci 0.06]
//
// Campaigns run either a fixed trial count (-trials) or, with
// -target-ci, an adaptive plan: stop as soon as the 90% Wilson CI
// half-width on the crash probability reaches the target, with -trials
// as the hard budget and -min-trials/-max-trials as guard rails. The
// plan is deterministic and resumable exactly like a fixed campaign,
// but incompatible with -shard/-coordinator (it needs the whole trial
// index space). Under tables, -target-ci applies per campaign cell and
// the cells share the worker pool widest-CI-first.
//
// characterize runs a campaign whole, as one shard of a multi-process
// campaign (-shard i/N, emitting a journal plus a shard manifest, and
// with -status a heartbeat record for the control plane), or as a
// coordinator (-coordinator -shards N) that spawns one worker process
// per shard, supervises them (straggler warnings by heartbeat age with
// a journal-mtime fallback, crash respawn with -resume), aggregates the
// heartbeats into a live fleet view (-status-addr serves it at /statusz
// with merged /metrics, /healthz, and pprof), and auto-merges the
// shards on completion. merge folds a directory of shard
// journal/manifest pairs into a result bit-identical to the
// single-process run; status renders the fleet view of a live or
// finished campaign directory from any shell (-watch to follow).
// SHARDING.md is the operator contract.
//
// Every subcommand accepts -json, which replaces the rendered text on
// stdout with one machine-readable JSON document under the versioned
// schema documented in OBSERVABILITY.md. The campaign-backed subcommands
// (characterize, tables) also accept -progress, which reports live trial
// completion on stderr.
package main
