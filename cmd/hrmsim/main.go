package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"syscall"
	"time"

	"hrmsim"
	"hrmsim/internal/core"
	"hrmsim/internal/evtrace"
	"hrmsim/internal/obsv"
	"hrmsim/internal/textplot"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "hrmsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		usage()
		return fmt.Errorf("a subcommand is required")
	}
	switch args[0] {
	case "characterize":
		return cmdCharacterize(args[1:])
	case "merge":
		return cmdMerge(args[1:])
	case "status":
		return cmdStatus(args[1:])
	case "profile":
		return cmdProfile(args[1:])
	case "designspace":
		return cmdDesignSpace(args[1:])
	case "plan":
		return cmdPlan(args[1:])
	case "tolerable":
		return cmdTolerable(args[1:])
	case "lifetime":
		return cmdLifetime(args[1:])
	case "chaos":
		return cmdChaos(args[1:])
	case "tables":
		return cmdTables(args[1:])
	case "traceview":
		return cmdTraceview(args[1:])
	case "help", "-h", "--help":
		usage()
		return nil
	default:
		usage()
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `hrmsim — application memory error vulnerability & heterogeneous-reliability memory (DSN'14 reproduction)

Subcommands:
  characterize  run an error-injection campaign against an application
                (whole, one shard of it, or as a multi-process coordinator)
  merge         merge a directory of shard journals into one campaign result
  status        render the live (or final) fleet view from a campaign
                directory's shard heartbeat records
  profile       measure safe ratios and data recoverability
  designspace   evaluate the paper's five design points (Table 6)
  plan          search for the cheapest design meeting an availability target
  tolerable     tolerable error rates per availability target (Fig. 8)
  lifetime      simulate continuous operation under an error arrival process
  chaos         run a live-traffic chaos experiment against a kvserve node
                (steady → chaos → recovery, SLO probes, Pass/Fail verdict)
  tables        regenerate the paper's tables and figures
  traceview     inspect a JSONL event trace (per-trial timelines + stats)

Common flags:
  -json         emit one machine-readable JSON document (schema: OBSERVABILITY.md)
  -progress     report live trial completion on stderr (characterize, tables)

Run 'hrmsim <subcommand> -h' for flags.`)
}

// progressFunc returns a core campaign Progress hook that rewrites one
// stderr status line — done/total plus the live wall-clock trial rate
// and projected time remaining — throttled to 5% steps so heavy
// campaigns are not slowed by terminal writes. Core serializes the
// calls. The Total (and hence the ETA) is planner-aware: under an
// adaptive plan it is the planner's current trial budget — the next CI
// evaluation boundary — so the line carries an "adaptive" marker while
// the plan is still open-ended and the budget can grow.
func progressFunc(label string) func(hrmsim.ProgressInfo) {
	last := -1
	return func(p hrmsim.ProgressInfo) {
		step := p.Total / 20
		if step == 0 {
			step = 1
		}
		if p.Done != p.Total && p.Done/step == last {
			return
		}
		last = p.Done / step
		marker := ""
		if p.Adaptive {
			marker = " (adaptive)"
		}
		fmt.Fprintf(os.Stderr, "\r%s: %d/%d trials (%d%%) | %.1f trials/s | ETA %s%s",
			label, p.Done, p.Total, 100*p.Done/p.Total,
			p.TrialsPerSec, p.ETA.Round(time.Second), marker)
		if p.Done == p.Total && !p.Adaptive {
			fmt.Fprintln(os.Stderr)
		}
	}
}

// sizeFlag parses a workload size.
func sizeFlag(s string) (hrmsim.WorkloadSize, error) {
	switch s {
	case "small":
		return hrmsim.SizeSmall, nil
	case "medium":
		return hrmsim.SizeMedium, nil
	case "large":
		return hrmsim.SizeLarge, nil
	default:
		return 0, fmt.Errorf("unknown size %q (small|medium|large)", s)
	}
}

func cmdCharacterize(args []string) error {
	fs := flag.NewFlagSet("characterize", flag.ContinueOnError)
	app := fs.String("app", "websearch", "application: websearch|kvstore|graphmine")
	errType := fs.String("error", "soft-1bit", "error type: soft-1bit|hard-1bit|hard-2bit")
	region := fs.String("region", "", "region: private|heap|stack (empty = all)")
	trials := fs.Int("trials", 400, "injection trials (with -target-ci: the hard trial budget)")
	targetCI := fs.Float64("target-ci", 0, "adaptive stopping: end the campaign once the 90% Wilson CI half-width of the crash probability is at most this (e.g. 0.02 for ±2 points; 0 = run exactly -trials); deterministic and resumable like fixed campaigns, but incompatible with -shard/-coordinator")
	minTrials := fs.Int("min-trials", 0, "adaptive stopping: never stop before this many trials (requires -target-ci; 0 = the default 30)")
	maxTrials := fs.Int("max-trials", 0, "adaptive stopping: trial budget cap (requires -target-ci; 0 = -trials)")
	seed := fs.Int64("seed", 1, "random seed")
	size := fs.String("size", "medium", "workload size: small|medium|large")
	parallelism := fs.Int("parallelism", 0, "concurrent trial workers (0 = GOMAXPROCS); results are identical at any value")
	jsonOut := fs.Bool("json", false, "emit the result as JSON (schema: OBSERVABILITY.md)")
	progress := fs.Bool("progress", false, "report live trial completion on stderr")
	traceFile := fs.String("trace", "", "write the per-trial event trace to this file (schema: OBSERVABILITY.md)")
	traceFormat := fs.String("trace-format", "jsonl", "event trace format: jsonl|chrome (chrome loads in ui.perfetto.dev)")
	journalPath := fs.String("journal", "", "append one flushed JSONL record per finished trial to this file, so an interrupted campaign can be resumed with -resume (schema: OBSERVABILITY.md)")
	resumePath := fs.String("resume", "", "skip trials already recorded in this journal (typically the same file as -journal); the merged result is bit-identical to an uninterrupted run")
	trialTimeout := fs.Duration("trial-timeout", 0, "abort any trial exceeding this wall-clock deadline, recording it as aborted (0 = none)")
	trialOpBudget := fs.Int64("trial-op-budget", 0, "abort any trial exceeding this many simulated memory operations after injection (0 = none)")
	shardFlag := fs.String("shard", "", "run only shard i of N of the campaign's trials, given as \"i/N\" (i in [0,N)); the journal stays merge-compatible with the sibling shards (SHARDING.md)")
	manifestPath := fs.String("manifest", "", "write the shard manifest (campaign identity + config hash + trial range) to this file after the run; requires -journal (default with -shard: derived from the journal path)")
	coordinator := fs.Bool("coordinator", false, "coordinator mode: spawn -shards local worker processes, supervise them (straggler warnings, crashed-shard respawn with -resume), and merge their journals (SHARDING.md)")
	shardCount := fs.Int("shards", 0, "number of shard worker processes to spawn (coordinator mode)")
	shardDir := fs.String("shard-dir", "", "directory for shard journals and manifests (coordinator mode; default: a fresh temporary directory, removed on success)")
	stragglerAfter := fs.Duration("straggler-after", 30*time.Second, "warn when a running shard's heartbeat (or, lacking one, its journal) has not advanced for this long (coordinator mode; 0 = off)")
	shardRespawns := fs.Int("shard-respawns", 2, "respawn a crashed shard, resuming its journal, at most this many times (coordinator mode)")
	statusPath := fs.String("status", "", "write a shard status/heartbeat record (JSON, atomically replaced) to this file: an initial record, throttled per-trial refreshes, and a final record (schema: OBSERVABILITY.md; view with `hrmsim status`)")
	statusInterval := fs.Duration("status-interval", 0, "minimum interval between heartbeat refreshes (0 = the 1s default)")
	statusAddr := fs.String("status-addr", "", "serve the live fleet view on this HTTP address: /statusz, merged /metrics, /healthz, /debug/pprof (coordinator mode)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	sz, err := sizeFlag(*size)
	if err != nil {
		return err
	}
	if *targetCI == 0 && (*minTrials != 0 || *maxTrials != 0) {
		return fmt.Errorf("-min-trials and -max-trials are adaptive guard rails and require -target-ci")
	}
	if *coordinator {
		if *shardFlag != "" {
			return fmt.Errorf("-coordinator and -shard are mutually exclusive (the coordinator assigns shards itself)")
		}
		if *targetCI != 0 {
			return fmt.Errorf("-target-ci cannot be combined with -coordinator: an adaptive plan needs the whole trial index space, but coordinator workers each own a shard of it — run adaptive campaigns as one process (see SHARDING.md)")
		}
		if *journalPath != "" || *resumePath != "" || *traceFile != "" || *statusPath != "" {
			return fmt.Errorf("-coordinator manages its own shard journals and status records; -journal, -resume, -trace, and -status apply to single-process runs")
		}
		if *shardCount < 1 {
			return fmt.Errorf("-coordinator requires -shards N with N >= 1")
		}
		return runCoordinatorCmd(coordinatorConfig{
			App:            *app,
			Error:          *errType,
			Region:         *region,
			Trials:         *trials,
			Seed:           *seed,
			Size:           *size,
			Parallelism:    *parallelism,
			TrialTimeout:   *trialTimeout,
			TrialOpBudget:  *trialOpBudget,
			Shards:         *shardCount,
			Dir:            *shardDir,
			StragglerAfter: *stragglerAfter,
			MaxRespawns:    *shardRespawns,
			StatusAddr:     *statusAddr,
		}, *jsonOut, *progress)
	}
	if *shardCount != 0 || *shardDir != "" {
		return fmt.Errorf("-shards and -shard-dir require -coordinator (use -shard i/N to run one shard directly)")
	}
	if *statusAddr != "" {
		return fmt.Errorf("-status-addr requires -coordinator (use -status to heartbeat a single-process or shard run)")
	}
	// SIGINT/SIGTERM cancel the campaign context: in-flight trials are
	// drained and the partial result (marked interrupted) still comes
	// out, journaled if -journal was given.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	cfg := hrmsim.CharacterizeConfig{
		App:           hrmsim.App(*app),
		Error:         hrmsim.ErrorType(*errType),
		Region:        hrmsim.Region(*region),
		Trials:        *trials,
		TargetCI:      *targetCI,
		MinTrials:     *minTrials,
		MaxTrials:     *maxTrials,
		Seed:          *seed,
		Size:          sz,
		Parallelism:   *parallelism,
		Context:       ctx,
		TrialTimeout:  *trialTimeout,
		TrialOpBudget: *trialOpBudget,
		JournalPath:   *journalPath,
		ResumePath:    *resumePath,
	}
	if *shardFlag != "" {
		if *targetCI != 0 {
			return fmt.Errorf("-target-ci cannot be combined with -shard: an adaptive plan needs the whole trial index space — run adaptive campaigns unsharded (see SHARDING.md)")
		}
		spec, err := core.ParseShardSpec(*shardFlag)
		if err != nil {
			return err
		}
		cfg.ShardIndex, cfg.ShardCount = spec.Index, spec.Count
		// A shard's artifact pair is journal + manifest; derive the
		// manifest path so `-shard i/N -journal f.jsonl` alone emits both.
		if *manifestPath == "" && *journalPath != "" {
			*manifestPath = core.ManifestPathFor(*journalPath)
		}
	}
	cfg.ManifestPath = *manifestPath
	cfg.StatusPath = *statusPath
	cfg.StatusInterval = *statusInterval
	if *progress {
		cfg.Progress = progressFunc("characterize")
	}
	var reg *obsv.Registry
	// The manifest and the status records embed metrics snapshots, so
	// runs writing either are instrumented even without -json.
	if *jsonOut || cfg.ManifestPath != "" || cfg.StatusPath != "" {
		reg = obsv.NewRegistry()
		cfg.Metrics = reg
	}
	// Tracing: -trace streams every trial's events to a file; -json
	// additionally arms the flight recorder, whose crash/incorrect
	// dumps ride along in the result envelope's "trace" field.
	var sinks []evtrace.Sink
	var recorder *evtrace.Recorder
	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			return fmt.Errorf("creating trace file: %w", err)
		}
		switch *traceFormat {
		case "jsonl":
			sinks = append(sinks, evtrace.NewJSONLWriter(f))
		case "chrome":
			sinks = append(sinks, evtrace.NewChromeWriter(f))
		default:
			_ = f.Close()
			return fmt.Errorf("unknown trace format %q (jsonl|chrome)", *traceFormat)
		}
	}
	if *jsonOut {
		recorder = evtrace.NewRecorder(0, 0)
		sinks = append(sinks, recorder)
	}
	if len(sinks) > 0 {
		cfg.Tracer = evtrace.New(evtrace.Options{Metrics: reg}, sinks...)
	}
	c, err := hrmsim.Characterize(cfg)
	if cerr := cfg.Tracer.Close(); cerr != nil && err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	if c.Interrupted {
		hint := ""
		if *journalPath != "" {
			hint = fmt.Sprintf("; resume with -resume %s", *journalPath)
		}
		fmt.Fprintf(os.Stderr, "characterize: interrupted — %d/%d trials have results%s\n",
			c.Completed+c.Aborted+c.Resumed, c.Trials, hint)
	}
	if *jsonOut {
		snap := reg.Snapshot()
		return emitJSON("characterize", c.Interrupted, toCharacterizeJSON(c), &snap, toTraceJSON(recorder), withShard(c.Shard))
	}
	printCharacterization(c)
	return nil
}

// printCharacterization renders a campaign result as text — shared by
// characterize (whole or one shard), merge, and coordinator runs.
func printCharacterization(c *hrmsim.Characterization) {
	regionLabel := string(c.Region)
	if regionLabel == "" {
		regionLabel = "all regions"
	}
	fmt.Printf("Characterization: %s, %s errors, %s, %d trials\n",
		c.App, c.Error, regionLabel, c.Trials)
	if c.Shard != nil {
		fmt.Printf("  shard %d/%d: trials [%d,%d) — merge with the sibling shards for campaign statistics\n",
			c.Shard.Index, c.Shard.Count, c.Shard.TrialLo, c.Shard.TrialHi)
	}
	if c.TargetCI > 0 {
		saved := ""
		if c.TrialsSaved > 0 {
			saved = fmt.Sprintf(" — %d of the %d-trial budget saved", c.TrialsSaved, c.Trials)
		}
		fmt.Printf("  adaptive plan: target CI half-width %.3g, stopped at %d trials%s\n",
			c.TargetCI, c.Planned, saved)
	}
	fmt.Println()
	fmt.Printf("  crash probability:     %.2f%%  (90%% CI [%.2f%%, %.2f%%])\n",
		c.CrashProbability*100, c.CrashCILow*100, c.CrashCIHigh*100)
	fmt.Printf("  tolerated (masked):    %.2f%%\n", c.ToleratedProbability*100)
	fmt.Printf("  incorrect per billion: %.3g  (worst trial %.3g)\n\n",
		c.IncorrectPerBillion, c.MaxIncorrectPerBillion)

	var keys []string
	for k := range c.Outcomes {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var bars []textplot.Bar
	for _, k := range keys {
		bars = append(bars, textplot.Bar{Label: k, Value: float64(c.Outcomes[k])})
	}
	fmt.Println(textplot.BarChart("Outcome taxonomy (trials)", bars, 40, false))
}

// cmdMerge merges a directory of shard journals (written by
// `characterize -shard i/N` workers) into one campaign result,
// bit-identical to the single-process run (see SHARDING.md).
func cmdMerge(args []string) error {
	fs := flag.NewFlagSet("merge", flag.ContinueOnError)
	dir := fs.String("dir", "", "shard directory holding the *.manifest.json + journal pairs (may also be given as the positional argument)")
	jsonOut := fs.Bool("json", false, "emit the result as JSON (schema: OBSERVABILITY.md)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dir == "" && fs.NArg() == 1 {
		*dir = fs.Arg(0)
	}
	if *dir == "" {
		return fmt.Errorf("merge: a shard directory is required (-dir or positional)")
	}
	var reg *obsv.Registry
	mcfg := hrmsim.MergeConfig{Dir: *dir}
	if *jsonOut {
		reg = obsv.NewRegistry()
		mcfg.Metrics = reg
	}
	c, info, err := hrmsim.MergeShards(mcfg)
	if err != nil {
		return err
	}
	if c.Interrupted {
		fmt.Fprintf(os.Stderr, "merge: campaign incomplete — %d of %d trials have no record in any shard (respawn or resume the missing shards and re-merge)\n",
			info.Missing, c.Trials)
	}
	if *jsonOut {
		snap := reg.Snapshot()
		return emitJSON("merge", c.Interrupted, toCharacterizeJSON(c), &snap, nil, withMerged(info))
	}
	fmt.Printf("Merged %d shards (config %.12s…): %d trial records", len(info.Shards), info.ConfigHash, info.Records)
	if info.Duplicates > 0 {
		fmt.Printf(", %d duplicates dropped (keep-first)", info.Duplicates)
	}
	if info.Missing > 0 {
		fmt.Printf(", %d missing", info.Missing)
	}
	fmt.Print("\n\n")
	printCharacterization(c)
	return nil
}

func cmdProfile(args []string) error {
	fs := flag.NewFlagSet("profile", flag.ContinueOnError)
	app := fs.String("app", "websearch", "application: websearch|kvstore|graphmine")
	watch := fs.Int("watchpoints", 600, "sampled addresses")
	seed := fs.Int64("seed", 1, "random seed")
	size := fs.String("size", "medium", "workload size: small|medium|large")
	jsonOut := fs.Bool("json", false, "emit the result as JSON (schema: OBSERVABILITY.md)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	sz, err := sizeFlag(*size)
	if err != nil {
		return err
	}
	rep, err := hrmsim.AccessProfile(hrmsim.AccessProfileConfig{
		App:         hrmsim.App(*app),
		Watchpoints: *watch,
		Seed:        *seed,
		Size:        sz,
	})
	if err != nil {
		return err
	}
	if *jsonOut {
		return emitJSON("profile", false, toProfileJSON(rep), nil, nil)
	}
	fmt.Printf("Access profile: %s (%.1f virtual minutes observed)\n\n", rep.App, rep.WindowMinutes)
	t := &textplot.Table{
		Headers: []string{"Region", "Used", "Watchpoints", "Mean safe ratio", "Implicit rec.", "Explicit rec."},
	}
	for _, r := range rep.Regions {
		t.AddRow(r.Region,
			fmt.Sprintf("%d B", r.UsedBytes),
			fmt.Sprintf("%d", r.Watchpoints),
			fmt.Sprintf("%.2f", r.MeanSafeRatio),
			fmt.Sprintf("%.0f%%", r.ImplicitRecoverable*100),
			fmt.Sprintf("%.0f%%", r.ExplicitRecoverable*100))
	}
	fmt.Println(t.Render())
	return nil
}

func cmdDesignSpace(args []string) error {
	fs := flag.NewFlagSet("designspace", flag.ContinueOnError)
	jsonOut := fs.Bool("json", false, "emit the result as JSON (schema: OBSERVABILITY.md)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rows, err := hrmsim.EvaluateTable6(hrmsim.PaperWebSearchVulnerability())
	if err != nil {
		return err
	}
	if *jsonOut {
		out := designspaceJSON{Rows: []designRowJSON{}}
		for _, r := range rows {
			out.Rows = append(out.Rows, toDesignRowJSON(r))
		}
		return emitJSON("designspace", false, out, nil, nil)
	}
	fmt.Println(renderDesignRows("Table 6 design points (paper WebSearch inputs)", rows))
	return nil
}

// renderDesignRows renders design evaluations as a table.
func renderDesignRows(title string, rows []hrmsim.DesignRow) string {
	t := &textplot.Table{
		Title: title,
		Headers: []string{"Configuration", "Mem save %", "Server save %",
			"Crashes/mo", "Availability", "Incorrect/M", "Meets 99.90%"},
	}
	for _, r := range rows {
		meets := "no"
		if r.MeetsTarget {
			meets = "yes"
		}
		mem := fmt.Sprintf("%.1f", r.MemorySavings*100)
		srv := fmt.Sprintf("%.1f", r.ServerSavings*100)
		if r.MemorySavingsHi-r.MemorySavingsLo > 1e-9 {
			mem = fmt.Sprintf("%.1f (%.1f-%.1f)", r.MemorySavings*100, r.MemorySavingsLo*100, r.MemorySavingsHi*100)
			srv = fmt.Sprintf("%.1f (%.1f-%.1f)", r.ServerSavings*100, r.ServerSavingsLo*100, r.ServerSavingsHi*100)
		}
		t.AddRow(r.Name, mem, srv,
			fmt.Sprintf("%.1f", r.CrashesPerMonth),
			fmt.Sprintf("%.2f%%", r.Availability*100),
			fmt.Sprintf("%.1f", r.IncorrectPerMillion),
			meets)
	}
	return t.Render()
}

func cmdPlan(args []string) error {
	fs := flag.NewFlagSet("plan", flag.ContinueOnError)
	target := fs.Float64("target", 0.999, "single server availability target")
	errors := fs.Float64("errors", 2000, "memory errors per server per month")
	jsonOut := fs.Bool("json", false, "emit the result as JSON (schema: OBSERVABILITY.md)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	res, err := hrmsim.Plan(hrmsim.PlanConfig{
		Vulnerabilities:    hrmsim.PaperWebSearchVulnerability(),
		TargetAvailability: *target,
		ErrorsPerMonth:     *errors,
	})
	if err != nil {
		return err
	}
	if *jsonOut {
		return emitJSON("plan", false, planJSON{
			TargetAvailability: *target,
			ErrorsPerMonth:     *errors,
			Considered:         res.Considered,
			Feasible:           res.Feasible,
			Best:               toDesignRowJSON(res.Best),
			BestMapping:        res.BestMapping,
		}, nil, nil)
	}
	fmt.Printf("Design-space search: %d points considered, %d feasible at %.3f%% availability\n\n",
		res.Considered, res.Feasible, *target*100)
	fmt.Printf("Cheapest feasible design (server cost saving %.1f%%, availability %.3f%%, %.1f incorrect/M):\n",
		res.Best.ServerSavings*100, res.Best.Availability*100, res.Best.IncorrectPerMillion)
	var regions []string
	for r := range res.BestMapping {
		regions = append(regions, r)
	}
	sort.Strings(regions)
	for _, r := range regions {
		fmt.Printf("  %-8s -> %s\n", r, res.BestMapping[r])
	}
	return nil
}

func cmdTolerable(args []string) error {
	fs := flag.NewFlagSet("tolerable", flag.ContinueOnError)
	jsonOut := fs.Bool("json", false, "emit the result as JSON (schema: OBSERVABILITY.md)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	probs := hrmsim.PaperCrashProbabilities()
	targets := []float64{0.9999, 0.999, 0.99}
	out := tolerableJSON{Rows: []tolerableRowJSON{}}
	t := &textplot.Table{
		Title:   "Tolerable memory errors/month per availability target (Fig. 8)",
		Headers: []string{"Application", "Crash prob/error", "99.99%", "99.90%", "99.00%"},
	}
	for _, app := range []string{"WebSearch", "Memcached", "GraphLab"} {
		row := []string{app, fmt.Sprintf("%.2f%%", probs[app]*100)}
		jr := tolerableRowJSON{
			Application:      app,
			CrashProbability: probs[app],
			Targets:          []tolerableCellJSON{},
		}
		for _, target := range targets {
			tol, err := hrmsim.Tolerable(probs[app], target)
			if err != nil {
				return err
			}
			row = append(row, fmt.Sprintf("%.0f", tol))
			jr.Targets = append(jr.Targets, tolerableCellJSON{
				AvailabilityTarget:      target,
				TolerableErrorsPerMonth: tol,
			})
		}
		t.AddRow(row...)
		out.Rows = append(out.Rows, jr)
	}
	if *jsonOut {
		return emitJSON("tolerable", false, out, nil, nil)
	}
	fmt.Println(t.Render())
	return nil
}

func cmdTables(args []string) error {
	fs := flag.NewFlagSet("tables", flag.ContinueOnError)
	id := fs.String("t", "", "experiment ID (empty = all): "+
		fmt.Sprint(hrmsim.ExperimentIDs())+" and extensions "+fmt.Sprint(hrmsim.ExtensionIDs()))
	trials := fs.Int("trials", 400, "injection trials per campaign cell (with -target-ci: each cell's hard budget)")
	targetCI := fs.Float64("target-ci", 0, "stop each campaign cell once the 90% CI half-width on its crash probability reaches this target (0 = fixed -trials per cell); cells share the worker pool widest-CI-first")
	seed := fs.Int64("seed", 1, "random seed")
	ext := fs.Bool("ext", false, "also run the extension experiments")
	jsonOut := fs.Bool("json", false, "emit the results as JSON (schema: OBSERVABILITY.md)")
	progress := fs.Bool("progress", false, "report live trial completion on stderr")
	if err := fs.Parse(args); err != nil {
		return err
	}
	lcfg := hrmsim.LabConfig{Trials: *trials, TargetCI: *targetCI, Seed: *seed}
	if *progress {
		lcfg.Progress = progressFunc("tables")
	}
	lab, err := hrmsim.NewLab(lcfg)
	if err != nil {
		return err
	}
	ids := hrmsim.ExperimentIDs()
	if *ext {
		ids = append(ids, hrmsim.ExtensionIDs()...)
	}
	if *id != "" {
		ids = []string{*id}
	}
	out := tablesJSON{Experiments: []experimentJSON{}}
	for _, x := range ids {
		rep, err := lab.Run(x)
		if err != nil {
			return err
		}
		if *jsonOut {
			out.Experiments = append(out.Experiments, toExperimentJSON(rep))
			continue
		}
		fmt.Printf("==== %s: %s ====\n\n%s\n", rep.ID, rep.Title, rep.Text)
		if len(rep.Comparisons) > 0 {
			fmt.Println("Paper vs measured:")
			for _, c := range rep.Comparisons {
				fmt.Printf("  - %s\n      paper:    %s\n      measured: %s\n", c.Metric, c.Paper, c.Measured)
				if c.Note != "" {
					fmt.Printf("      note:     %s\n", c.Note)
				}
			}
			fmt.Println()
		}
	}
	if *jsonOut {
		return emitJSON("tables", false, out, nil, nil)
	}
	return nil
}

func cmdLifetime(args []string) error {
	fs := flag.NewFlagSet("lifetime", flag.ContinueOnError)
	protection := fs.String("protection", "none", "protection preset: none|parity+r|secded|secded+scrub")
	errors := fs.Float64("errors", 150000, "memory errors per month (amplified for the scaled memory)")
	soft := fs.Float64("soft", 1.0, "fraction of errors that are transient")
	hours := fs.Int("hours", 24, "simulated hours of operation")
	recovery := fs.Int("recovery", 10, "minutes of downtime per crash")
	seed := fs.Int64("seed", 1, "random seed")
	jsonOut := fs.Bool("json", false, "emit the result as JSON (schema: OBSERVABILITY.md)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	res, err := hrmsim.SimulateLifetime(hrmsim.LifetimeConfig{
		Protection:      hrmsim.Protection(*protection),
		ErrorsPerMonth:  *errors,
		SoftFraction:    *soft,
		Hours:           *hours,
		RecoveryMinutes: *recovery,
		Seed:            *seed,
	})
	if err != nil {
		return err
	}
	if *jsonOut {
		return emitJSON("lifetime", false, lifetimeJSON{
			Protection:          *protection,
			ErrorsPerMonth:      *errors,
			Hours:               *hours,
			ErrorsInjected:      res.ErrorsInjected,
			Crashes:             res.Crashes,
			DowntimeMinutes:     res.DowntimeMinutes,
			Availability:        res.Availability,
			Requests:            res.Requests,
			Incorrect:           res.Incorrect,
			IncorrectPerMillion: res.IncorrectPerMillion,
			ScrubPasses:         res.ScrubPasses,
			ScrubCorrected:      res.ScrubCorrected,
		}, nil, nil)
	}
	fmt.Printf("Lifetime simulation: websearch, %s protection, %.0f errors/month, %dh\n\n",
		*protection, *errors, *hours)
	fmt.Printf("  errors injected:       %d\n", res.ErrorsInjected)
	fmt.Printf("  crashes (reboots):     %d\n", res.Crashes)
	fmt.Printf("  downtime:              %.0f min\n", res.DowntimeMinutes)
	fmt.Printf("  availability:          %.3f%%\n", res.Availability*100)
	fmt.Printf("  requests served:       %d\n", res.Requests)
	fmt.Printf("  incorrect responses:   %d (%.1f per million)\n", res.Incorrect, res.IncorrectPerMillion)
	if res.ScrubPasses > 0 {
		fmt.Printf("  scrub passes:          %d (%d errors corrected by patrol scrub)\n",
			res.ScrubPasses, res.ScrubCorrected)
	}
	return nil
}
