// Package core is the characterization engine — the paper's primary
// contribution (Sections III and IV). It runs controlled error-injection
// campaigns over applications built on simulated memory, classifies every
// trial into the Fig. 1 outcome taxonomy, and aggregates crash
// probabilities (with 90% confidence intervals), incorrect-result rates
// per billion queries, and time-to-outcome distributions.
//
// Campaign execution is a two-tier supervision hierarchy:
//
//   - The in-process trial supervisor (supervisor.go, driven by Run)
//     dispatches the trials a TrialPlanner (planner.go) releases to a
//     worker pool, bounds each trial with wall-clock and
//     virtual-operation watchdogs, retries transient worker failures,
//     checkpoints every finished trial to an append-only journal
//     (journal.go), and fills resumed trials from a prior journal
//     instead of re-running them. FixedPlanner releases the classic
//     0..Trials-1 sequence; AdaptivePlanner implements CI-targeted
//     sequential stopping (stats.SequentialStopping): it evaluates the
//     Wilson half-width on the crash probability at deterministic
//     boundaries and ends the campaign at the target, journaling every
//     verdict so a resumed plan replays bit-identically.
//
//   - The process-level coordinator (cmd/hrmsim) spawns N worker
//     processes, each running one shard of the trial index space, and
//     watches the workers themselves: straggler detection by heartbeat
//     age (journal mtime as the fallback), crashed-shard respawn with
//     resume. The shard partitioning, manifest, and merge primitives it
//     builds on live here (shard.go): ShardSpec splits [0, Trials) into
//     contiguous ranges, ShardManifest ties a shard journal to its
//     campaign via a config hash, and MergeShards folds a directory of
//     shard journals back into one record set. Each worker also
//     maintains an atomically-replaced status record (status.go:
//     ShardStatus, written via the supervisor's StatusSink hook off the
//     hot path) that carries live progress, outcome counts, and a
//     metrics snapshot — the heartbeat the control plane aggregates.
//
// Because trial i's generator derives only from (seed, i), every cut of
// the index space — parallel workers, interrupt/resume, shards across
// processes — reproduces the single-process result bit-identically; see
// SHARDING.md at the repository root for the operator-facing contract.
// Adaptive plans keep that determinism (stopping boundaries depend only
// on trial outcomes, never on arrival order) but need the whole index
// space, so they are rejected in worker-shard mode.
package core
