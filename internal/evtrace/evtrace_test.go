package evtrace

import (
	"bytes"
	"encoding/json"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"hrmsim/internal/obsv"
)

// collector is a Sink that records delivery order for tests.
type collector struct {
	order  []int
	events map[int][]Event
	closed bool
}

func newCollector() *collector { return &collector{events: map[int][]Event{}} }

func (c *collector) WriteTrial(trial int, events []Event) error {
	c.order = append(c.order, trial)
	c.events[trial] = append([]Event(nil), events...)
	return nil
}

func (c *collector) Close() error { c.closed = true; return nil }

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	tt := tr.Trial(0)
	if tt != nil {
		t.Fatalf("nil tracer returned non-nil TrialTracer")
	}
	tt.Emit(Event{Kind: KindInject})
	if tt.DroppedCount() != 0 {
		t.Errorf("nil DroppedCount = %d", tt.DroppedCount())
	}
	tt.Finish()
	if err := tr.Err(); err != nil {
		t.Errorf("nil Err = %v", err)
	}
	if err := tr.Close(); err != nil {
		t.Errorf("nil Close = %v", err)
	}
}

func TestBulkCapDropsAndCounts(t *testing.T) {
	reg := obsv.NewRegistry()
	sink := newCollector()
	tr := New(Options{PerTrialCap: 3, Metrics: reg}, sink)
	tt := tr.Trial(0)
	tt.Emit(Event{Kind: KindTrialStart})
	tt.Emit(Event{Kind: KindInject})
	for i := 0; i < 10; i++ {
		tt.Emit(Event{Kind: KindAccessFaulty, VTNanos: int64(i)})
	}
	// Structural events are exempt from the cap even once it is hit.
	tt.Emit(Event{Kind: KindOutcome, Outcome: "crash"})
	tt.Emit(Event{Kind: KindTrialEnd, Dropped: tt.DroppedCount()})
	if got := tt.DroppedCount(); got != 7 {
		t.Errorf("DroppedCount = %d, want 7", got)
	}
	tt.Finish()
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	evs := sink.events[0]
	if len(evs) != 7 { // start + inject + 3 bulk + outcome + end
		t.Fatalf("recorded %d events, want 7: %+v", len(evs), evs)
	}
	for i, ev := range evs {
		if ev.Trial != 0 || ev.Seq != i {
			t.Errorf("event %d stamped trial=%d seq=%d", i, ev.Trial, ev.Seq)
		}
	}
	if evs[len(evs)-1].Dropped != 7 {
		t.Errorf("trial_end dropped = %d", evs[len(evs)-1].Dropped)
	}
	snap := reg.Snapshot()
	if got := snap.Counters["evtrace_events_total"]; got != 7 {
		t.Errorf("evtrace_events_total = %d", got)
	}
	if got := snap.Counters["evtrace_events_dropped_total"]; got != 7 {
		t.Errorf("evtrace_events_dropped_total = %d", got)
	}
}

func TestDeliveryIsAscendingDespiteFinishOrder(t *testing.T) {
	sink := newCollector()
	tr := New(Options{}, sink)
	tts := make([]*TrialTracer, 5)
	for i := range tts {
		tts[i] = tr.Trial(i)
		tts[i].Emit(Event{Kind: KindTrialStart, VTNanos: int64(i)})
	}
	// Finish out of order: 3, 1, 4, 0, 2.
	for _, i := range []int{3, 1, 4, 0, 2} {
		tts[i].Finish()
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if want := []int{0, 1, 2, 3, 4}; !reflect.DeepEqual(sink.order, want) {
		t.Errorf("delivery order %v, want %v", sink.order, want)
	}
	if !sink.closed {
		t.Error("sink not closed")
	}
}

func TestCloseFlushesGappedTrials(t *testing.T) {
	sink := newCollector()
	tr := New(Options{}, sink)
	// Trials 2 and 4 finish, trial 0 never does (aborted campaign).
	for _, i := range []int{4, 2} {
		tt := tr.Trial(i)
		tt.Emit(Event{Kind: KindTrialStart})
		tt.Finish()
	}
	if len(sink.order) != 0 {
		t.Fatalf("delivered %v before Close", sink.order)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if want := []int{2, 4}; !reflect.DeepEqual(sink.order, want) {
		t.Errorf("flush order %v, want %v", sink.order, want)
	}
}

// emitTrial records a small, fully populated trial.
func emitTrial(tr *Tracer, id int, outcome string) {
	tt := tr.Trial(id)
	tt.Emit(Event{Kind: KindTrialStart, VTNanos: 0, WallUnixNanos: 12345})
	tt.Emit(Event{Kind: KindInject, VTNanos: 1000, Addr: 0x40, Region: "heap",
		RegionKind: "heap", Error: "single-bit soft", Bits: []int{3}})
	tt.Emit(Event{Kind: KindAccessFaulty, VTNanos: 2000, Addr: 0x40,
		Access: "load", Len: 8})
	if outcome == "crash" {
		tt.Emit(Event{Kind: KindCrash, VTNanos: 2500, Detail: "assertion"})
	}
	tt.Emit(Event{Kind: KindOutcome, VTNanos: 3000, Outcome: outcome, Region: "heap"})
	tt.Emit(Event{Kind: KindTrialEnd, VTNanos: 3000, WallUnixNanos: 67890})
	tt.Finish()
}

func TestJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	tr := New(Options{}, NewJSONLWriter(&buf))
	emitTrial(tr, 0, "crash")
	emitTrial(tr, 1, "masked-by-overwrite")
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 1+6+5 {
		t.Fatalf("stream has %d lines", len(lines))
	}
	hdr, events, err := ReadJSONL(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if hdr.SchemaVersion != SchemaVersion || hdr.Stream != Stream {
		t.Errorf("header = %+v", hdr)
	}
	if len(events) != 11 {
		t.Fatalf("read %d events", len(events))
	}
	inj := events[1]
	if inj.Kind != KindInject || inj.Addr != 0x40 || inj.Error != "single-bit soft" ||
		!reflect.DeepEqual(inj.Bits, []int{3}) {
		t.Errorf("inject event round trip lost fields: %+v", inj)
	}
	if events[0].WallUnixNanos != 12345 {
		t.Errorf("wall clock lost: %+v", events[0])
	}
	// Trials in ascending order.
	for i := 1; i < len(events); i++ {
		if events[i].Trial < events[i-1].Trial {
			t.Fatalf("trials out of order at %d: %+v", i, events)
		}
	}
}

func TestReadJSONLRejectsForeignStreams(t *testing.T) {
	if _, _, err := ReadJSONL(strings.NewReader(`{"stream":"other","schema_version":1}`)); err == nil {
		t.Error("foreign stream accepted")
	}
	newer := fmt.Sprintf(`{"stream":%q,"schema_version":%d}`, Stream, SchemaVersion+1)
	if _, _, err := ReadJSONL(strings.NewReader(newer)); err == nil {
		t.Error("newer schema accepted")
	}
	if _, _, err := ReadJSONL(strings.NewReader("")); err == nil {
		t.Error("empty stream accepted")
	}
}

func TestRecorderKeepsOnlyFailures(t *testing.T) {
	rec := NewRecorder(4, 2)
	tr := New(Options{}, rec)
	emitTrial(tr, 0, "masked-by-overwrite")
	emitTrial(tr, 1, "crash")
	emitTrial(tr, 2, "incorrect-response")
	emitTrial(tr, 3, "crash") // beyond maxDumps=2
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	dumps := rec.Dumps()
	if len(dumps) != 2 {
		t.Fatalf("got %d dumps", len(dumps))
	}
	if dumps[0].Trial != 1 || dumps[0].Outcome != "crash" {
		t.Errorf("dump 0 = %+v", dumps[0])
	}
	if dumps[1].Trial != 2 || dumps[1].Outcome != "incorrect-response" {
		t.Errorf("dump 1 = %+v", dumps[1])
	}
	if rec.Skipped() != 1 {
		t.Errorf("skipped = %d", rec.Skipped())
	}
	// Trial 1 recorded 6 events; lastN=4 keeps the tail.
	d := dumps[0]
	if d.Truncated != 2 || len(d.Events) != 4 {
		t.Fatalf("dump truncation: truncated=%d events=%d", d.Truncated, len(d.Events))
	}
	if d.Events[len(d.Events)-1].Kind != KindTrialEnd {
		t.Errorf("dump tail does not end with trial_end: %+v", d.Events)
	}
}

func TestChromeWriterShape(t *testing.T) {
	var buf bytes.Buffer
	tr := New(Options{}, NewChromeWriter(&buf))
	emitTrial(tr, 0, "crash")
	emitTrial(tr, 1, "masked-by-overwrite")
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	// The acceptance shape: a JSON array of objects, each with name, ph,
	// ts, pid, and tid.
	var objs []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &objs); err != nil {
		t.Fatalf("not a JSON array: %v", err)
	}
	if len(objs) == 0 {
		t.Fatal("empty trace")
	}
	phs := map[string]int{}
	for i, o := range objs {
		for _, key := range []string{"name", "ph", "ts", "pid", "tid"} {
			if _, ok := o[key]; !ok {
				t.Fatalf("object %d missing %q: %v", i, key, o)
			}
		}
		phs[o["ph"].(string)]++
	}
	if phs["M"] < 3 { // process_name + one thread_name per trial
		t.Errorf("metadata events = %d", phs["M"])
	}
	if phs["X"] != 2 {
		t.Errorf("slices = %d, want one per trial", phs["X"])
	}
	if phs["i"] == 0 {
		t.Error("no instant events")
	}

	out := buf.String()
	if !strings.Contains(out, `"cname": "terrible"`) {
		t.Error("crash slice not colored terrible")
	}
	if !strings.Contains(out, `"cname": "good"`) {
		t.Error("masked slice not colored good")
	}
	if !strings.Contains(out, "access_faulty:load") {
		t.Error("access instant not named by access type")
	}
}

func TestChromeColor(t *testing.T) {
	for outcome, want := range map[string]string{
		"crash":               "terrible",
		"incorrect-response":  "bad",
		"masked-by-overwrite": "good",
		"masked-by-logic":     "good",
		"masked-latent":       "grey",
		"":                    "grey",
	} {
		if got := chromeColor(outcome); got != want {
			t.Errorf("chromeColor(%q) = %q, want %q", outcome, got, want)
		}
	}
}

func TestFormatEvent(t *testing.T) {
	line := FormatEvent(Event{
		Kind: KindInject, VTNanos: 2_500_000_000, Addr: 0x80,
		Region: "heap", Error: "single-bit soft", Bits: []int{5},
	}, 500_000_000)
	for _, want := range []string{"+    2.000s", "inject", "addr=0x80",
		"region=heap", `error="single-bit soft"`, "bits=[5]"} {
		if !strings.Contains(line, want) {
			t.Errorf("FormatEvent missing %q in %q", want, line)
		}
	}
}

// TestLateDuplicateTrialDropped: when a watchdog abandons a hung trial
// and emits its own abort stream for the same trial id, the abandoned
// goroutine's eventual Finish (or a Finish after Close) must not deliver
// the trial a second time — first finisher wins.
func TestLateDuplicateTrialDropped(t *testing.T) {
	sink := newCollector()
	tr := New(Options{}, sink)

	// The supervisor's abort stream finishes first.
	abortTT := tr.Trial(0)
	abortTT.Emit(Event{Kind: KindAbort, Reason: "deadline", Detail: "trial exceeded the 1s wall-clock deadline"})
	abortTT.Emit(Event{Kind: KindTrialEnd})
	abortTT.Finish()

	// The abandoned worker's stream for the same trial arrives later.
	lateTT := tr.Trial(0)
	lateTT.Emit(Event{Kind: KindTrialStart})
	lateTT.Emit(Event{Kind: KindOutcome, Outcome: "crash"})
	lateTT.Finish()

	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if want := []int{0}; !reflect.DeepEqual(sink.order, want) {
		t.Fatalf("delivery order %v, want exactly one delivery of trial 0", sink.order)
	}
	evs := sink.events[0]
	if len(evs) != 2 || evs[0].Kind != KindAbort {
		t.Fatalf("delivered the wrong stream: %+v", evs)
	}
	if evs[0].Reason != "deadline" {
		t.Errorf("abort reason %q, want deadline", evs[0].Reason)
	}

	// A Finish after Close is likewise dropped, not delivered or panicking.
	postTT := tr.Trial(1)
	postTT.Emit(Event{Kind: KindTrialStart})
	postTT.Finish()
	if len(sink.order) != 1 {
		t.Errorf("post-Close Finish delivered: %v", sink.order)
	}
}

// TestAbortKindRegistered pins the abort event kind in the schema.
func TestAbortKindRegistered(t *testing.T) {
	found := false
	for _, k := range Kinds() {
		if k == KindAbort {
			found = true
		}
	}
	if !found {
		t.Fatalf("Kinds() = %v lacks %q", Kinds(), KindAbort)
	}
	b, err := json.Marshal(Event{Kind: KindAbort, Reason: "op_budget", Stack: "frame"})
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"reason":"op_budget"`, `"stack":"frame"`} {
		if !strings.Contains(string(b), key) {
			t.Errorf("serialized abort event %s lacks %s", b, key)
		}
	}
}
