// Package inject implements the paper's memory error emulation framework
// (Section IV-A, Algorithm 1(a)): selecting a valid byte-aligned
// application address, flipping one or more bits for soft errors, or
// installing stuck-at faults for hard errors (our stuck-bit model is
// strictly stronger than the paper's 30 ms reapplication loop — the error
// reasserts on every sense). Correlated multi-address faults expand a DRAM
// fault domain (failed row/column/bank/chip) onto the application's
// regions.
package inject

import (
	"fmt"
	"math/rand"

	"hrmsim/internal/dram"
	"hrmsim/internal/faults"
	"hrmsim/internal/simmem"
)

// Injection records what was injected, for classification and debugging.
type Injection struct {
	// Spec is the error type injected.
	Spec faults.Spec
	// Targets are the corrupted byte addresses (one for ordinary
	// errors; many for correlated domain faults).
	Targets []Target
	// Region is the region containing the (first) target.
	Region *simmem.Region
}

// Target is one corrupted byte.
type Target struct {
	Addr simmem.Addr
	// Bits are the flipped (or stuck) bit indices within the byte.
	Bits []int
}

// At injects an error of the given spec at a specific byte address. Bits
// are chosen uniformly without replacement, per Algorithm 1(a) (multi-bit
// errors repeat the flip with different bit indices). Soft errors XOR the
// stored bits; hard errors stick the bits at their flipped values.
func At(as *simmem.AddressSpace, rng *rand.Rand, addr simmem.Addr, spec faults.Spec) (Injection, error) {
	if err := spec.Validate(); err != nil {
		return Injection{}, err
	}
	var region *simmem.Region
	for _, r := range as.Regions() {
		if r.Contains(addr) {
			region = r
			break
		}
	}
	if region == nil {
		return Injection{}, &simmem.Fault{Kind: simmem.FaultUnmapped, Addr: addr}
	}
	target, err := corruptByte(as, rng, addr, spec)
	if err != nil {
		return Injection{}, err
	}
	return Injection{Spec: spec, Targets: []Target{target}, Region: region}, nil
}

// corruptByte flips/sticks spec.Bits distinct bits of the byte at addr.
func corruptByte(as *simmem.AddressSpace, rng *rand.Rand, addr simmem.Addr, spec faults.Spec) (Target, error) {
	bits := rng.Perm(8)[:spec.Bits]
	var orig [1]byte
	if err := as.ReadRaw(addr, orig[:]); err != nil {
		return Target{}, err
	}
	for _, b := range bits {
		switch spec.Class {
		case faults.Soft:
			if err := as.FlipBit(addr, b); err != nil {
				return Target{}, err
			}
		case faults.Hard:
			// Stick the cell at the erroneous (flipped) value.
			flipped := int(orig[0]>>b&1) ^ 1
			if err := as.StickBit(addr, b, flipped); err != nil {
				return Target{}, err
			}
		}
	}
	return Target{Addr: addr, Bits: bits}, nil
}

// Random injects an error of the given spec at a uniformly random used
// byte of the regions accepted by filter (all regions when nil) — the
// getMappedAddr() of Algorithm 1(a).
func Random(as *simmem.AddressSpace, rng *rand.Rand, spec faults.Spec, filter func(*simmem.Region) bool) (Injection, error) {
	addr, ok := as.SampleAddr(rng, filter)
	if !ok {
		return Injection{}, fmt.Errorf("inject: no used bytes match the region filter")
	}
	return At(as, rng, addr, spec)
}

// KindFilter returns a region filter accepting one region kind.
func KindFilter(kind simmem.RegionKind) func(*simmem.Region) bool {
	return func(r *simmem.Region) bool { return r.Kind() == kind }
}

// PhysLayout maps a DRAM geometry's flat physical offsets onto the used
// bytes of an address space's regions, in mapping order — the glue that
// lets device-level fault domains corrupt application data.
type PhysLayout struct {
	as   *simmem.AddressSpace
	geom dram.Geometry
}

// NewPhysLayout builds the mapping. The regions' combined used bytes must
// fit in the geometry's capacity.
func NewPhysLayout(as *simmem.AddressSpace, geom dram.Geometry) (*PhysLayout, error) {
	if err := geom.Validate(); err != nil {
		return nil, err
	}
	total := int64(0)
	for _, r := range as.Regions() {
		total += int64(r.Used())
	}
	if total > geom.Capacity() {
		return nil, fmt.Errorf("inject: regions use %d bytes but geometry capacity is %d",
			total, geom.Capacity())
	}
	return &PhysLayout{as: as, geom: geom}, nil
}

// AddrForOffset maps a physical byte offset to a simulated address, or
// false if that physical byte holds no application data.
func (p *PhysLayout) AddrForOffset(off int64) (simmem.Addr, bool) {
	for _, r := range p.as.Regions() {
		if off < int64(r.Used()) {
			return r.Base() + simmem.Addr(off), true
		}
		off -= int64(r.Used())
	}
	return 0, false
}

// Domain injects a correlated hardware fault: it samples up to maxBytes
// byte positions of the failed structure, maps them through the physical
// layout, and corrupts every one that holds application data (hard errors
// stick, matching real device-structure failures). It returns the
// injection with all affected targets; Targets may be empty if the failed
// structure held no application data.
func Domain(p *PhysLayout, rng *rand.Rand, d dram.FaultDomain, spec faults.Spec, maxBytes int) (Injection, error) {
	if err := spec.Validate(); err != nil {
		return Injection{}, err
	}
	if maxBytes <= 0 {
		return Injection{}, fmt.Errorf("inject: maxBytes must be positive, got %d", maxBytes)
	}
	offs, err := p.geom.SampleOffsets(d, rng, maxBytes)
	if err != nil {
		return Injection{}, err
	}
	inj := Injection{Spec: spec}
	inj.Spec.Domain = &d
	for _, off := range offs {
		addr, ok := p.AddrForOffset(off)
		if !ok {
			continue
		}
		t, err := corruptByte(p.as, rng, addr, spec)
		if err != nil {
			return Injection{}, err
		}
		inj.Targets = append(inj.Targets, t)
		if inj.Region == nil {
			for _, r := range p.as.Regions() {
				if r.Contains(addr) {
					inj.Region = r
					break
				}
			}
		}
	}
	return inj, nil
}
