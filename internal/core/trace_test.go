package core

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"hrmsim/internal/evtrace"
	"hrmsim/internal/faults"
	"hrmsim/internal/simmem"
)

// runTraced runs a small websearch campaign with a JSONL tracer and
// returns the results plus the raw stream.
func runTraced(t *testing.T, seed int64, parallelism int, sinks ...evtrace.Sink) *CampaignResult {
	t.Helper()
	tracer := evtrace.New(evtrace.Options{}, sinks...)
	res, err := Run(CampaignConfig{
		Builder:     wsBuilder(t, seed),
		Spec:        faults.SingleBitSoft,
		Trials:      30,
		Seed:        21,
		Parallelism: parallelism,
		Tracer:      tracer,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := tracer.Close(); err != nil {
		t.Fatal(err)
	}
	return res
}

func TestTracerDoesNotChangeResults(t *testing.T) {
	plain, err := Run(CampaignConfig{
		Builder:     wsBuilder(t, 14),
		Spec:        faults.SingleBitSoft,
		Trials:      30,
		Seed:        21,
		Parallelism: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	traced := runTraced(t, 14, 4, evtrace.NewJSONLWriter(&bytes.Buffer{}))
	for i := range plain.Trials {
		a, b := plain.Trials[i], traced.Trials[i]
		if a.Outcome != b.Outcome || a.Region != b.Region ||
			a.Incorrect != b.Incorrect || a.EndedAt != b.EndedAt ||
			a.EffectAt != b.EffectAt || a.Requests != b.Requests {
			t.Fatalf("trial %d differs with tracing:\n%+v\n%+v", i, a, b)
		}
	}
}

// stripWallFields removes every "wall_"-prefixed field from a JSONL trace
// stream, the documented way to compare streams for determinism.
func stripWallFields(t *testing.T, stream []byte) string {
	t.Helper()
	var out []string
	for _, line := range strings.Split(strings.TrimRight(string(stream), "\n"), "\n") {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("bad JSONL line %q: %v", line, err)
		}
		for k := range m {
			if strings.HasPrefix(k, "wall_") {
				delete(m, k)
			}
		}
		b, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, string(b))
	}
	return strings.Join(out, "\n")
}

func TestTraceJSONLDeterministic(t *testing.T) {
	stream := func(parallelism int) []byte {
		var buf bytes.Buffer
		runTraced(t, 14, parallelism, evtrace.NewJSONLWriter(&buf))
		return buf.Bytes()
	}
	serial := stripWallFields(t, stream(1))
	again := stripWallFields(t, stream(1))
	parallel := stripWallFields(t, stream(4))
	if serial != again {
		t.Error("two serial runs differ after stripping wall_ fields")
	}
	if serial != parallel {
		t.Error("parallelism 1 vs 4 streams differ after stripping wall_ fields")
	}
	// And the wall-clock fields are confined to trial_start/trial_end.
	_, events, err := evtrace.ReadJSONL(bytes.NewReader(stream(2)))
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range events {
		wallKind := ev.Kind == evtrace.KindTrialStart || ev.Kind == evtrace.KindTrialEnd
		if !wallKind && ev.WallUnixNanos != 0 {
			t.Fatalf("wall clock leaked into %s event: %+v", ev.Kind, ev)
		}
		if wallKind && ev.WallUnixNanos == 0 {
			t.Fatalf("%s event missing wall clock: %+v", ev.Kind, ev)
		}
	}
}

func TestTraceStreamMatchesResults(t *testing.T) {
	var buf bytes.Buffer
	res := runTraced(t, 14, 4, evtrace.NewJSONLWriter(&buf))
	_, events, err := evtrace.ReadJSONL(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	outcomes := map[int]string{}
	starts, injects := 0, 0
	for _, ev := range events {
		switch ev.Kind {
		case evtrace.KindTrialStart:
			starts++
		case evtrace.KindInject:
			injects++
			if ev.Error != faults.SingleBitSoft.String() || len(ev.Bits) == 0 {
				t.Fatalf("inject event incomplete: %+v", ev)
			}
		case evtrace.KindOutcome:
			outcomes[ev.Trial] = ev.Outcome
		}
	}
	if starts != len(res.Trials) || injects < len(res.Trials) {
		t.Fatalf("starts=%d injects=%d for %d trials", starts, injects, len(res.Trials))
	}
	for i, tr := range res.Trials {
		if outcomes[i] != tr.Outcome.String() {
			t.Errorf("trial %d traced outcome %q, result %q", i, outcomes[i], tr.Outcome)
		}
	}
}

func TestTraceFlightRecorderDumps(t *testing.T) {
	rec := evtrace.NewRecorder(0, 0)
	res := runTraced(t, 14, 4, rec)
	want := res.Count(OutcomeCrash) + res.Count(OutcomeIncorrect)
	if want == 0 {
		t.Skip("campaign produced no crash/incorrect trials; adjust seed")
	}
	dumps := rec.Dumps()
	if len(dumps)+rec.Skipped() != want {
		t.Fatalf("%d dumps + %d skipped for %d failing trials", len(dumps), rec.Skipped(), want)
	}
	for _, d := range dumps {
		tr := res.Trials[d.Trial]
		if d.Outcome != tr.Outcome.String() {
			t.Errorf("dump trial %d outcome %q, result %q", d.Trial, d.Outcome, tr.Outcome)
		}
		if len(d.Events) == 0 {
			t.Errorf("dump trial %d has no events", d.Trial)
		}
		if last := d.Events[len(d.Events)-1]; last.Kind != evtrace.KindTrialEnd {
			t.Errorf("dump trial %d does not end with trial_end: %+v", d.Trial, last)
		}
	}
}

func TestNilTracerNoAllocsOnAccess(t *testing.T) {
	// The campaign's untraced hot path: a Load through the observer fan-out
	// with the classification accessTracker registered and no tracer. It
	// must not allocate — tracing must cost nothing when off.
	as, err := simmem.New(simmem.Config{})
	if err != nil {
		t.Fatal(err)
	}
	r, err := as.AddRegion(simmem.RegionSpec{Name: "heap", Kind: simmem.RegionHeap, Size: 4096})
	if err != nil {
		t.Fatal(err)
	}
	as.AddAccessObserver(newAccessTracker([]simmem.Addr{r.Base() + 128}))
	buf := make([]byte, 8)
	allocs := testing.AllocsPerRun(1000, func() {
		if err := as.Load(r.Base()+64, buf); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("untraced Load allocates %.1f times per op, want 0", allocs)
	}
}
