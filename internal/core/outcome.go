package core

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"hrmsim/internal/simmem"
)

// Outcome is a leaf of the paper's Fig. 1 memory error outcome taxonomy.
// The taxonomy is mutually exclusive and exhaustive.
type Outcome int

// Outcomes.
const (
	// OutcomeMaskedOverwrite: the first consumption of the erroneous
	// location was a write, so the error vanished without effect
	// (outcome 1).
	OutcomeMaskedOverwrite Outcome = iota + 1
	// OutcomeMaskedLogic: the error was read by the application but the
	// output still matched (outcome 2.1).
	OutcomeMaskedLogic
	// OutcomeIncorrect: the run completed but at least one response
	// differed from the golden output (outcome 2.2).
	OutcomeIncorrect
	// OutcomeCrash: the application or system crashed — a memory fault,
	// an aborted invariant, a hung request, or an uncorrectable machine
	// check (outcome 2.3).
	OutcomeCrash
	// OutcomeMaskedLatent: the erroneous location was never referenced
	// again during the run. The paper folds this into "masked" (no
	// change in application behaviour); it is kept distinct here for
	// analysis.
	OutcomeMaskedLatent
)

// Outcomes lists every taxonomy leaf in declaration order.
func Outcomes() []Outcome {
	return []Outcome{OutcomeMaskedOverwrite, OutcomeMaskedLogic,
		OutcomeIncorrect, OutcomeCrash, OutcomeMaskedLatent}
}

// String returns the outcome label.
func (o Outcome) String() string {
	switch o {
	case OutcomeMaskedOverwrite:
		return "masked-by-overwrite"
	case OutcomeMaskedLogic:
		return "masked-by-logic"
	case OutcomeIncorrect:
		return "incorrect-response"
	case OutcomeCrash:
		return "crash"
	case OutcomeMaskedLatent:
		return "masked-latent"
	default:
		return fmt.Sprintf("outcome(%d)", int(o))
	}
}

// MetricName returns the outcome label with dashes replaced by
// underscores, the form used in obsv metric names (OBSERVABILITY.md),
// e.g. campaign_outcome_masked_by_overwrite.
func (o Outcome) MetricName() string {
	return strings.ReplaceAll(o.String(), "-", "_")
}

// Tolerated reports whether the outcome leaves the application externally
// correct (the paper's definition of tolerance: outcomes 1 and 2.1).
func (o Outcome) Tolerated() bool {
	switch o {
	case OutcomeMaskedOverwrite, OutcomeMaskedLogic, OutcomeMaskedLatent:
		return true
	default:
		return false
	}
}

// firstAccessKind distinguishes how injected bytes were first touched.
type firstAccessKind int

const (
	firstNone firstAccessKind = iota
	firstLoad
	firstStore
)

// accessTracker watches the injected byte addresses and records the first
// post-injection access kind, which separates masked-by-overwrite from
// masked-by-logic. It observes every access of the trial, so the miss
// path must be O(1): the handful of injected addresses are kept as a
// sorted slice bounded by [min, max], and the overwhelming majority of
// accesses are rejected by the two bound comparisons alone.
type accessTracker struct {
	targets  []simmem.Addr // sorted ascending
	min, max simmem.Addr   // inclusive bounds of targets; min > max when empty
	first    firstAccessKind
}

var _ simmem.AccessObserver = (*accessTracker)(nil)

func newAccessTracker(addrs []simmem.Addr) *accessTracker {
	t := &accessTracker{
		targets: append([]simmem.Addr(nil), addrs...),
		min:     1,
		max:     0,
	}
	sort.Slice(t.targets, func(i, j int) bool { return t.targets[i] < t.targets[j] })
	if n := len(t.targets); n > 0 {
		t.min = t.targets[0]
		t.max = t.targets[n-1]
	}
	return t
}

// ObserveAccess implements simmem.AccessObserver.
func (t *accessTracker) ObserveAccess(ev simmem.AccessEvent) {
	if t.first != firstNone {
		return
	}
	end := ev.Addr + simmem.Addr(ev.Len)
	if end <= t.min || ev.Addr > t.max {
		return
	}
	// First target >= ev.Addr; a hit iff it falls before the access end.
	i := sort.Search(len(t.targets), func(i int) bool { return t.targets[i] >= ev.Addr })
	if i < len(t.targets) && t.targets[i] < end {
		if ev.Kind == simmem.Store {
			t.first = firstStore
		} else {
			t.first = firstLoad
		}
	}
}

// classify maps a finished trial's observations onto the taxonomy.
func classify(crashed bool, incorrect int, first firstAccessKind) Outcome {
	switch {
	case crashed:
		return OutcomeCrash
	case incorrect > 0:
		return OutcomeIncorrect
	case first == firstStore:
		return OutcomeMaskedOverwrite
	case first == firstLoad:
		return OutcomeMaskedLogic
	default:
		return OutcomeMaskedLatent
	}
}

// Disposition records how the supervisor disposed of a trial: ran to
// classification, or was given up on. It is orthogonal to the Fig. 1
// taxonomy — Outcome is only meaningful for completed trials, and
// aborted trials never enter the outcome counts, so the watchdog and
// retry machinery cannot perturb the paper's statistics.
type Disposition int

const (
	// DispositionCompleted: the trial ran to outcome classification.
	// The zero value, so results from before dispositions existed stay
	// valid.
	DispositionCompleted Disposition = iota
	// DispositionAborted: the supervisor gave the trial up — watchdog
	// deadline, virtual-operation budget, or exhausted retries — and it
	// carries an AbortReason instead of an Outcome.
	DispositionAborted
)

// String returns the disposition label used in journals and JSON.
func (d Disposition) String() string {
	switch d {
	case DispositionCompleted:
		return "completed"
	case DispositionAborted:
		return "aborted"
	default:
		return fmt.Sprintf("disposition(%d)", int(d))
	}
}

// Abort reason labels, used as the {reason} metric label, the journal
// abort_reason field, and the trace event reason field.
const (
	// AbortReasonDeadline: the trial exceeded CampaignConfig.TrialTimeout
	// of host wall-clock time.
	AbortReasonDeadline = "deadline"
	// AbortReasonOpBudget: the trial exceeded
	// CampaignConfig.TrialOpBudget simulated memory operations after
	// injection.
	AbortReasonOpBudget = "op_budget"
	// AbortReasonWorkerError: trial infrastructure (build, warmup,
	// snapshot restore, injection) kept failing after the retry budget.
	AbortReasonWorkerError = "worker_error"
)

// TrialResult records one injection experiment (one pass around the
// paper's Fig. 2 loop).
type TrialResult struct {
	// Index is the trial's position in the campaign, which also selects
	// its deterministic seed.
	Index int
	// Disposition tells whether the trial completed (and the fields
	// below are meaningful) or was aborted (and only the Abort* fields
	// are set).
	Disposition Disposition
	// AbortReason is the machine-readable reason label of an aborted
	// trial: AbortReasonDeadline, AbortReasonOpBudget, or
	// AbortReasonWorkerError.
	AbortReason string
	// AbortDetail is the free-form abort description.
	AbortDetail string
	// Outcome is the Fig. 1 classification.
	Outcome Outcome
	// Region names the region injected into.
	Region string
	// Kind is the region's Table 2 classification.
	Kind simmem.RegionKind
	// InjectedAt is the virtual time of injection.
	InjectedAt time.Duration
	// EffectAt is the virtual time of the first crash or incorrect
	// response (zero for masked outcomes) — the Fig. 5a measurement.
	EffectAt time.Duration
	// Incorrect counts incorrect responses in the trial.
	Incorrect int
	// IncorrectAt holds the virtual times of incorrect responses
	// (capped at maxIncorrectTimes per trial) — the "periodically
	// incorrect" samples of Fig. 5a.
	IncorrectAt []time.Duration
	// Requests counts responses served before the trial ended.
	Requests int
	// EndedAt is the virtual time the trial stopped: the crash instant
	// for crashed trials, or the end of the workload otherwise. With
	// InjectedAt it gives each trial's observation horizon (Fig. 5a).
	EndedAt time.Duration
	// CrashReason holds the crash error text, if any.
	CrashReason string
	// CrashStack holds the sanitized goroutine stack when the crash came
	// from a recovered panic in application code (see sanitizeStack):
	// the panicking call chain with goroutine ids, argument values, and
	// frame offsets stripped, so it is deterministic across lifecycles,
	// parallelism, and resume.
	CrashStack string
}

// TimeToEffect returns the injection-to-effect latency for crash or
// incorrect outcomes.
func (t TrialResult) TimeToEffect() (time.Duration, bool) {
	if t.Outcome != OutcomeCrash && t.Outcome != OutcomeIncorrect {
		return 0, false
	}
	return t.EffectAt - t.InjectedAt, true
}
