// Package trace generates the synthetic workloads that stand in for the
// paper's proprietary inputs: a document corpus and query stream for the
// web search application (the paper used a production index and a 200,000
// query trace), a skewed read/write key–value request mix (the paper used
// a 30 GB Twitter dataset with 90% reads), and a power-law follower graph
// for the graph-mining workload (the paper used an 11M-user Twitter
// follow graph).
//
// All generators are deterministic given a seed.
package trace

import (
	"fmt"
	"math/rand"
)

// Corpus is a synthetic document collection for the search workload.
type Corpus struct {
	// Docs holds every document.
	Docs []Document
	// VocabSize is the number of distinct terms (term IDs are
	// 0..VocabSize-1, with lower IDs more frequent).
	VocabSize int
}

// Document is one synthetic document.
type Document struct {
	// ID is the document identifier.
	ID uint32
	// Terms are the distinct term IDs the document contains.
	Terms []uint32
	// Popularity is a static quality score used in ranking, in (0, 1].
	Popularity float64
}

// GenCorpus builds a corpus of n documents over a Zipf-distributed
// vocabulary of vocab terms; each document contains between minTerms and
// maxTerms distinct terms.
func GenCorpus(rng *rand.Rand, n, vocab, minTerms, maxTerms int) (*Corpus, error) {
	switch {
	case n <= 0 || vocab <= 1:
		return nil, fmt.Errorf("trace: need positive docs (%d) and vocab > 1 (%d)", n, vocab)
	case minTerms <= 0 || maxTerms < minTerms:
		return nil, fmt.Errorf("trace: invalid term range [%d,%d]", minTerms, maxTerms)
	case maxTerms > vocab:
		return nil, fmt.Errorf("trace: maxTerms %d exceeds vocabulary %d", maxTerms, vocab)
	}
	z := rand.NewZipf(rng, 1.2, 1, uint64(vocab-1))
	c := &Corpus{Docs: make([]Document, n), VocabSize: vocab}
	for i := range c.Docs {
		k := minTerms + rng.Intn(maxTerms-minTerms+1)
		seen := make(map[uint32]bool, k)
		terms := make([]uint32, 0, k)
		for len(terms) < k {
			t := uint32(z.Uint64())
			if !seen[t] {
				seen[t] = true
				terms = append(terms, t)
			}
		}
		c.Docs[i] = Document{
			ID:         uint32(i),
			Terms:      terms,
			Popularity: 0.05 + 0.95*rng.Float64(),
		}
	}
	return c, nil
}

// Query is one search request.
type Query struct {
	Terms []uint32
}

// GenQueries draws n queries of 1..maxTerms Zipf-distributed terms over
// the corpus vocabulary, mimicking a production query trace's skew.
func GenQueries(rng *rand.Rand, c *Corpus, n, maxTerms int) ([]Query, error) {
	if n <= 0 || maxTerms <= 0 {
		return nil, fmt.Errorf("trace: need positive query count (%d) and terms (%d)", n, maxTerms)
	}
	z := rand.NewZipf(rng, 1.2, 1, uint64(c.VocabSize-1))
	out := make([]Query, n)
	for i := range out {
		k := 1 + rng.Intn(maxTerms)
		terms := make([]uint32, k)
		for j := range terms {
			terms[j] = uint32(z.Uint64())
		}
		out[i] = Query{Terms: terms}
	}
	return out, nil
}

// KVOp is one key–value store request.
type KVOp struct {
	// Key is the request key.
	Key uint64
	// Read is true for GET, false for SET.
	Read bool
	// Version increments per SET of a key, letting the verifier compute
	// the expected value of any key at any point deterministically.
	Version uint32
}

// GenKVOps draws n operations over numKeys Zipf-distributed keys with the
// given read fraction (the paper's Memcached workload uses 90% reads /
// 10% writes). Version numbers count the SETs to each key so far.
func GenKVOps(rng *rand.Rand, numKeys, n int, readFraction float64) ([]KVOp, error) {
	switch {
	case numKeys <= 1 || n <= 0:
		return nil, fmt.Errorf("trace: need keys > 1 (%d) and positive ops (%d)", numKeys, n)
	case readFraction < 0 || readFraction > 1:
		return nil, fmt.Errorf("trace: read fraction %g outside [0,1]", readFraction)
	}
	z := rand.NewZipf(rng, 1.1, 1, uint64(numKeys-1))
	versions := make(map[uint64]uint32, numKeys)
	out := make([]KVOp, n)
	for i := range out {
		key := z.Uint64()
		read := rng.Float64() < readFraction
		if !read {
			versions[key]++
		}
		out[i] = KVOp{Key: key, Read: read, Version: versions[key]}
	}
	return out, nil
}

// ValueFor deterministically derives the value bytes for a key at a given
// version, so expected outputs need no stored oracle.
func ValueFor(key uint64, version uint32, size int) []byte {
	out := make([]byte, size)
	x := key*0x9E3779B97F4A7C15 + uint64(version)*0xBF58476D1CE4E5B9 + 0x94D049BB133111EB
	for i := range out {
		// xorshift-style mixing.
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		out[i] = byte(x)
	}
	return out
}

// Graph is a directed follower graph in adjacency-list form: Out[u] lists
// the users that u follows.
type Graph struct {
	N   int
	Out [][]int32
}

// GenGraph builds an n-node graph with roughly avgDeg out-edges per node.
// Edge targets are Zipf-distributed toward low node IDs, giving the heavy-
// tailed in-degree (influencer) structure of a social follow graph.
func GenGraph(rng *rand.Rand, n, avgDeg int) (*Graph, error) {
	if n <= 1 || avgDeg <= 0 {
		return nil, fmt.Errorf("trace: need nodes > 1 (%d) and positive degree (%d)", n, avgDeg)
	}
	z := rand.NewZipf(rng, 1.3, 4, uint64(n-1))
	g := &Graph{N: n, Out: make([][]int32, n)}
	for u := 0; u < n; u++ {
		deg := 1 + rng.Intn(2*avgDeg)
		seen := make(map[int32]bool, deg)
		edges := make([]int32, 0, deg)
		for attempts := 0; len(edges) < deg && attempts < 4*deg+16; attempts++ {
			v := int32(z.Uint64())
			if int(v) == u || seen[v] {
				continue
			}
			seen[v] = true
			edges = append(edges, v)
		}
		g.Out[u] = edges
	}
	return g, nil
}

// EdgeCount returns the total number of edges.
func (g *Graph) EdgeCount() int {
	total := 0
	for _, e := range g.Out {
		total += len(e)
	}
	return total
}

// InDegrees computes the in-degree of every node.
func (g *Graph) InDegrees() []int {
	in := make([]int, g.N)
	for _, edges := range g.Out {
		for _, v := range edges {
			in[v]++
		}
	}
	return in
}
