package simmem

// Verdict is the result of decoding one protected memory word.
type Verdict int

// Decode verdicts, ordered by severity.
const (
	// VerdictClean means the word decoded with no error detected.
	VerdictClean Verdict = iota
	// VerdictCorrected means an error was detected and corrected in
	// place; the returned data is believed clean.
	VerdictCorrected
	// VerdictUncorrectable means an error was detected but could not be
	// corrected; the hardware would raise a machine-check exception.
	VerdictUncorrectable
)

// String returns the verdict name.
func (v Verdict) String() string {
	switch v {
	case VerdictClean:
		return "clean"
	case VerdictCorrected:
		return "corrected"
	case VerdictUncorrectable:
		return "uncorrectable"
	default:
		return "unknown"
	}
}

// Codec is an executable memory-protection code applied per codeword, the
// hook through which the ecc package plugs hardware reliability techniques
// (Table 1 of the paper) into the simulated memory. The address space
// maintains CheckBytes of check storage for every WordBytes of data in a
// protected region; stores re-encode, loads decode and may correct the
// data slice in place.
//
// Implementations must be deterministic and must not retain the slices
// passed to Encode/Decode.
//
// Taint-clearing contract (what the clean-page fast path relies on; see
// DESIGN.md and internal/ecc's contract test):
//
//  1. Decode(data, Encode(data)) returns VerdictClean for every data
//     pattern — re-encoding a word re-establishes cleanliness.
//  2. A VerdictClean decode leaves both data and check unmodified.
//  3. A VerdictCorrected decode leaves data and check in a state that
//     re-decodes VerdictClean (corrected write-backs produce clean
//     storage).
//
// Under these rules an untainted page — one whose every word was last
// written through Encode (or verified by a scrub) and which has no
// stuck-at state — can be read as a plain byte copy with no decode,
// producing bit-identical data, counters, and events to the full path.
type Codec interface {
	// Name identifies the technique (e.g. "SEC-DED").
	Name() string
	// WordBytes is the number of data bytes per codeword (e.g. 8 for
	// SEC-DED(72,64), 16 for a chipkill-style symbol code).
	WordBytes() int
	// CheckBytes is the number of check-storage bytes per codeword.
	CheckBytes() int
	// CheckBits is the number of meaningful redundancy bits per
	// codeword (used for added-capacity cost accounting; may be less
	// than 8*CheckBytes when the storage is byte-padded).
	CheckBits() int
	// Encode computes check bytes for data. len(data) == WordBytes and
	// len(check) == CheckBytes.
	Encode(data, check []byte)
	// Decode verifies data against check, correcting data (and check)
	// in place when the code permits, and reports what the hardware
	// observed. Detection-only codes (parity) return
	// VerdictUncorrectable on any detected error.
	Decode(data, check []byte) Verdict
}

// MCEvent describes an uncorrectable error encountered on a load from a
// protected region.
type MCEvent struct {
	// Addr is the first byte of the affected codeword.
	Addr Addr
	// Region is the region containing the word.
	Region *Region
}

// MCAction is a software response decision for an uncorrectable error.
type MCAction int

// Machine-check actions a handler may take.
const (
	// MCCrash propagates the machine check to the application as a
	// fault (the default when no handler is installed).
	MCCrash MCAction = iota
	// MCRecovered means the handler repaired the word (e.g. reloaded a
	// clean copy from backing storage); the load is retried once.
	MCRecovered
)

// MCHandler is the software-response hook for uncorrectable errors —
// page retirement, Par+R recovery from persistent storage, and restart
// policies are implemented behind this interface in the recovery package.
type MCHandler interface {
	HandleMC(as *AddressSpace, ev MCEvent) MCAction
}

// MCHandlerFunc adapts a function to the MCHandler interface.
type MCHandlerFunc func(as *AddressSpace, ev MCEvent) MCAction

// HandleMC calls f.
func (f MCHandlerFunc) HandleMC(as *AddressSpace, ev MCEvent) MCAction {
	return f(as, ev)
}
