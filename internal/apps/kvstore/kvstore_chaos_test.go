package kvstore

import (
	"bytes"
	"testing"

	"hrmsim/internal/trace"
)

func buildApp(t *testing.T, cfg Config) *App {
	t.Helper()
	b, err := NewBuilder(cfg)
	if err != nil {
		t.Fatal(err)
	}
	app, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return app.(*App)
}

func TestValueAddrResolvesEveryKey(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.Keys = 64
	cfg.Ops = 1
	app := buildApp(t, cfg)
	for k := uint64(0); k < 64; k++ {
		addr, err := app.ValueAddr(k)
		if err != nil {
			t.Fatalf("key %d: %v", k, err)
		}
		raw := make([]byte, cfg.ValueSize)
		if err := app.Space().ReadRaw(addr, raw); err != nil {
			t.Fatalf("key %d: reading value: %v", k, err)
		}
		if want := trace.ValueFor(k, 0, cfg.ValueSize); !bytes.Equal(raw, want) {
			t.Errorf("key %d: value bytes at %#x do not match ValueFor", k, uint64(addr))
		}
	}
	if _, err := app.ValueAddr(1 << 40); err == nil {
		t.Error("absent key resolved")
	}
}

func TestHeapBackedCheckpointsPopulatedStore(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.Keys = 32
	cfg.Ops = 1
	cfg.HeapBacked = true
	app := buildApp(t, cfg)
	heap := app.Space().RegionByName("heap")
	if !heap.Backed() {
		t.Fatal("heap not backed")
	}
	// Corrupt a value byte, then restore the word from backing: the
	// pre-populated contents must come back, proving the build-time
	// checkpoint captured the warm store.
	addr, err := app.ValueAddr(7)
	if err != nil {
		t.Fatal(err)
	}
	if err := app.Space().FlipBit(addr, 3); err != nil {
		t.Fatal(err)
	}
	if err := heap.RestoreWord(addr); err != nil {
		t.Fatal(err)
	}
	version, val, err := app.Get(7)
	if err != nil {
		t.Fatal(err)
	}
	if version != 0 || !bytes.Equal(val, trace.ValueFor(7, 0, cfg.ValueSize)) {
		t.Errorf("restored value wrong: version=%d", version)
	}
}

func TestUnbackedHeapByDefault(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.Keys = 8
	cfg.Ops = 1
	app := buildApp(t, cfg)
	if app.Space().RegionByName("heap").Backed() {
		t.Error("heap backed without HeapBacked")
	}
}
