package simmem

import (
	"bytes"
	"math/rand"
	"testing"
)

// newCachedAS builds an address space with the cache model enabled.
func newCachedAS(t *testing.T, lines int) (*AddressSpace, *Region) {
	t.Helper()
	as, err := New(Config{PageSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	r, err := as.AddRegion(RegionSpec{Name: "heap", Kind: RegionHeap, Size: 8192})
	if err != nil {
		t.Fatal(err)
	}
	if err := as.EnableCache(lines); err != nil {
		t.Fatal(err)
	}
	return as, r
}

func TestEnableCacheValidation(t *testing.T) {
	as, err := New(Config{PageSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	if err := as.EnableCache(0); err == nil {
		t.Error("zero lines accepted")
	}
	small, err := New(Config{PageSize: 32})
	if err != nil {
		t.Fatal(err)
	}
	if err := small.EnableCache(4); err == nil {
		t.Error("page size below a cache line accepted")
	}
}

func TestCachedRoundtrip(t *testing.T) {
	as, r := newCachedAS(t, 8)
	data := make([]byte, 300) // spans several lines
	for i := range data {
		data[i] = byte(i)
	}
	if err := as.Store(r.Base()+10, data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := as.Load(r.Base()+10, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("cached roundtrip mismatch")
	}
	hits, misses, _ := as.CacheStats()
	if hits == 0 || misses == 0 {
		t.Errorf("stats: hits=%d misses=%d", hits, misses)
	}
}

func TestCacheMasksMemoryCorruption(t *testing.T) {
	// The paper's conservatism note: a cached line keeps serving clean
	// data after the memory under it is corrupted.
	as, r := newCachedAS(t, 8)
	addr := r.Base()
	if err := as.StoreU64(addr, 0x1111); err != nil { // line now cached+dirty
		t.Fatal(err)
	}
	if err := as.FlipBit(addr, 0); err != nil { // corrupt memory below
		t.Fatal(err)
	}
	v, err := as.LoadU64(addr)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0x1111 {
		t.Errorf("cached load = %#x, corruption not masked", v)
	}
	// After a flush the dirty write-back overwrites the error entirely.
	if err := as.FlushCache(); err != nil {
		t.Fatal(err)
	}
	v, err = as.LoadU64(addr)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0x1111 {
		t.Errorf("post-flush load = %#x, write-back did not mask", v)
	}
}

func TestCacheCleanLineEvictionExposesCorruption(t *testing.T) {
	as, r := newCachedAS(t, 1) // single line: every new line evicts
	addr := r.Base()
	if err := as.StoreU8(addr, 0); err != nil {
		t.Fatal(err)
	}
	if err := as.FlushCache(); err != nil { // line written back, clean
		t.Fatal(err)
	}
	if err := as.FlipBit(addr, 3); err != nil {
		t.Fatal(err)
	}
	// Touch a different line to claim the slot, then reload: the refill
	// senses the corrupted memory.
	if _, err := as.LoadU8(addr + 512); err != nil {
		t.Fatal(err)
	}
	v, err := as.LoadU8(addr)
	if err != nil {
		t.Fatal(err)
	}
	if v != 8 {
		t.Errorf("refill = %#x, want corruption visible", v)
	}
}

func TestCacheWithECCDecodesOnFill(t *testing.T) {
	as, err := New(Config{PageSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	r, err := as.AddRegion(RegionSpec{
		Name: "p", Kind: RegionHeap, Size: 4096, Codec: replicaCodec{},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := as.EnableCache(4); err != nil {
		t.Fatal(err)
	}
	addr := r.Base()
	if err := as.StoreU64(addr, 77); err != nil {
		t.Fatal(err)
	}
	if err := as.FlushCache(); err != nil {
		t.Fatal(err)
	}
	if err := as.FlipBit(addr, 1); err != nil {
		t.Fatal(err)
	}
	v, err := as.LoadU64(addr)
	if err != nil {
		t.Fatal(err)
	}
	if v != 77 {
		t.Errorf("value = %d, want ECC-corrected 77", v)
	}
	if as.Counters().Corrected == 0 {
		t.Error("fill did not decode")
	}
	// The whole line decodes once on fill; subsequent loads hit the
	// cache without re-correcting.
	before := as.Counters().Corrected
	if _, err := as.LoadU64(addr); err != nil {
		t.Fatal(err)
	}
	if as.Counters().Corrected != before {
		t.Error("cache hit re-decoded")
	}
}

func TestCacheUncorrectableFillFaults(t *testing.T) {
	as, err := New(Config{PageSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	r, err := as.AddRegion(RegionSpec{
		Name: "p", Kind: RegionHeap, Size: 4096, Codec: parityOnlyCodec{},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := as.EnableCache(4); err != nil {
		t.Fatal(err)
	}
	addr := r.Base()
	if err := as.StoreU64(addr, 1); err != nil {
		t.Fatal(err)
	}
	if err := as.FlushCache(); err != nil {
		t.Fatal(err)
	}
	if err := as.FlipBit(addr, 0); err != nil {
		t.Fatal(err)
	}
	_, err = as.LoadU64(addr)
	f, ok := AsFault(err)
	if !ok || f.Kind != FaultMachineCheck {
		t.Fatalf("fill over uncorrectable error: %v", err)
	}
}

func TestCachedShadowModelProperty(t *testing.T) {
	// The cached memory must be indistinguishable from flat memory for
	// any access sequence without injected errors.
	as, r := newCachedAS(t, 4) // tiny cache: constant eviction traffic
	shadow := make([]byte, r.Size())
	rng := rand.New(rand.NewSource(123))
	for i := 0; i < 8000; i++ {
		off := rng.Intn(r.Size() - 80)
		n := rng.Intn(80) + 1
		addr := r.Base() + Addr(off)
		if rng.Intn(2) == 0 {
			data := make([]byte, n)
			rng.Read(data)
			if err := as.Store(addr, data); err != nil {
				t.Fatalf("store %d: %v", i, err)
			}
			copy(shadow[off:], data)
		} else {
			got := make([]byte, n)
			if err := as.Load(addr, got); err != nil {
				t.Fatalf("load %d: %v", i, err)
			}
			if !bytes.Equal(got, shadow[off:off+n]) {
				t.Fatalf("divergence at op %d", i)
			}
		}
	}
	_, _, wb := as.CacheStats()
	if wb == 0 {
		t.Error("no write-backs despite tiny cache")
	}
}

func TestCacheDisabledStats(t *testing.T) {
	as, err := New(Config{PageSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	h, m, w := as.CacheStats()
	if h != 0 || m != 0 || w != 0 {
		t.Error("nonzero stats with cache disabled")
	}
	if err := as.FlushCache(); err != nil {
		t.Errorf("FlushCache on disabled cache: %v", err)
	}
}
