package chaos

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"hrmsim/internal/obsv"
)

// GenConfig configures the load generator.
type GenConfig struct {
	// Addr is the kvserve protocol address.
	Addr string
	// Conns is the number of concurrent client connections.
	Conns int
	// QPS is the aggregate target rate across all connections; 0 runs
	// closed-loop (each connection issues its next op immediately).
	QPS float64
	// Keys is the working-set size; must match the server's -keys so the
	// wrong-value oracle covers the whole keyspace.
	Keys int
	// ValueSize must match the server's value size (the oracle
	// recomputes expected bytes from key and version).
	ValueSize int
	// ReadFraction is the GET share of the op mix (default 0.9).
	ReadFraction float64
	// ZipfS is the Zipf skew exponent (> 1; default 1.1), matching the
	// skew the campaign traces use.
	ZipfS float64
	// Seed derives every per-connection RNG; same seed, same op
	// sequence per connection.
	Seed int64
	// OpTimeout bounds one round trip (default 2s); an op past the
	// deadline counts as a timeout and the connection is re-dialed.
	OpTimeout time.Duration
	// Registry receives the kvload_* metrics (required).
	Registry *obsv.Registry
}

func (cfg *GenConfig) fill() error {
	if cfg.Addr == "" {
		return fmt.Errorf("chaos: generator needs an address")
	}
	if cfg.Conns <= 0 {
		cfg.Conns = 4
	}
	if cfg.Keys <= 1 {
		return fmt.Errorf("chaos: generator needs a working set (Keys > 1)")
	}
	if cfg.ValueSize <= 0 {
		cfg.ValueSize = 64
	}
	if cfg.ReadFraction == 0 {
		cfg.ReadFraction = 0.9
	}
	if cfg.ReadFraction < 0 || cfg.ReadFraction > 1 {
		return fmt.Errorf("chaos: read fraction %v outside [0,1]", cfg.ReadFraction)
	}
	if cfg.ZipfS == 0 {
		cfg.ZipfS = 1.1
	}
	if cfg.ZipfS <= 1 {
		return fmt.Errorf("chaos: zipf exponent must be > 1, got %v", cfg.ZipfS)
	}
	if cfg.OpTimeout <= 0 {
		cfg.OpTimeout = 2 * time.Second
	}
	if cfg.Registry == nil {
		return fmt.Errorf("chaos: generator needs a registry")
	}
	return nil
}

// Generator drives concurrent Zipfian GET/SET traffic at a kvserve node
// and verifies every GET against the deterministic value oracle — the
// client-side shadow store that makes silent data corruption visible as a
// wrong-value count instead of a passed-through lie.
type Generator struct {
	cfg GenConfig
	ct  counters

	// versions[k] is the highest version this generator has assigned to
	// key k (the server pre-populates version 0). Bumped before the SET
	// is sent, so a returned version above the ceiling is impossible in
	// a healthy system.
	versions []atomic.Int64

	// open backs the kvload_conns_open gauge (gauges have no atomic
	// increment, so the source of truth lives here).
	open atomic.Int64

	// probe is a lazily-dialed dedicated connection for ProbeGet, so
	// verification reads never queue behind worker traffic.
	probeMu sync.Mutex
	probe   *client
}

// NewGenerator validates the config and prepares a generator; no
// connections are dialed until Run.
func NewGenerator(cfg GenConfig) (*Generator, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	return &Generator{
		cfg:      cfg,
		ct:       newCounters(cfg.Registry),
		versions: make([]atomic.Int64, cfg.Keys),
	}, nil
}

// Run drives traffic until ctx is cancelled. Each connection runs on its
// own goroutine with an independent seeded RNG; Run returns once every
// worker has disconnected.
func (g *Generator) Run(ctx context.Context) {
	interval := time.Duration(0)
	if g.cfg.QPS > 0 {
		// Per-connection pacing interval for the aggregate target.
		interval = time.Duration(float64(g.cfg.Conns) / g.cfg.QPS * float64(time.Second))
	}
	var wg sync.WaitGroup
	for i := 0; i < g.cfg.Conns; i++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			g.runWorker(ctx, worker, interval)
		}(i)
	}
	wg.Wait()
	g.probeMu.Lock()
	if g.probe != nil {
		g.probe.close()
		g.probe = nil
	}
	g.probeMu.Unlock()
}

func (g *Generator) runWorker(ctx context.Context, worker int, interval time.Duration) {
	rng := rand.New(rand.NewSource(g.cfg.Seed + int64(worker)*7919))
	zipf := rand.NewZipf(rng, g.cfg.ZipfS, 1, uint64(g.cfg.Keys-1))

	var c *client
	defer func() {
		if c != nil {
			c.close()
			g.ct.connsOpen.Set(float64(g.open.Add(-1)))
		}
	}()
	next := time.Now()
	for ctx.Err() == nil {
		if c == nil {
			var err error
			c, err = dialClient(g.cfg.Addr, g.cfg.OpTimeout)
			if err != nil {
				g.ct.errors.Inc()
				select {
				case <-ctx.Done():
					return
				case <-time.After(20 * time.Millisecond):
				}
				continue
			}
			g.ct.connsOpen.Set(float64(g.open.Add(1)))
		}
		if interval > 0 {
			now := time.Now()
			if wait := next.Sub(now); wait > 0 {
				select {
				case <-ctx.Done():
					return
				case <-time.After(wait):
				}
			} else if wait < -interval {
				next = now // fell behind a full slot: don't burst to catch up
			}
			next = next.Add(interval)
		}
		key := zipf.Uint64()
		if rng.Float64() < g.cfg.ReadFraction {
			g.doGet(c, key)
		} else {
			g.doSet(c, key)
		}
		if c.conn == nil { // closed by an op failure
			c = nil
		}
	}
}

// doGet issues one verified GET; on transport failure the client is
// marked dead for the caller to re-dial.
func (g *Generator) doGet(c *client, key uint64) {
	g.ct.ops.Inc()
	g.ct.gets.Inc()
	start := time.Now()
	resp, err := c.roundTrip(fmt.Sprintf("get %d", key))
	if err != nil {
		g.opFailed(c, err)
		return
	}
	g.ct.latUs.Observe(float64(time.Since(start)) / float64(time.Microsecond))
	g.ct.classifyGet(key, g.versions[key].Load(), g.cfg.ValueSize, resp)
}

func (g *Generator) doSet(c *client, key uint64) {
	g.ct.ops.Inc()
	g.ct.sets.Inc()
	ver := g.versions[key].Add(1)
	start := time.Now()
	resp, err := c.roundTrip(fmt.Sprintf("set %d %d", key, ver))
	if err != nil {
		g.opFailed(c, err)
		return
	}
	g.ct.latUs.Observe(float64(time.Since(start)) / float64(time.Microsecond))
	if resp != "STORED" {
		g.ct.errors.Inc()
	}
}

// opFailed records a transport-level failure and retires the connection
// (the worker loop re-dials, counting the reconnect).
func (g *Generator) opFailed(c *client, err error) {
	g.ct.errors.Inc()
	if isTimeout(err) {
		g.ct.timeouts.Inc()
	}
	c.close()
	c.conn = nil
	g.ct.connsOpen.Set(float64(g.open.Add(-1)))
	g.ct.reconnects.Inc()
}

// ProbeGet issues one verified GET on the dedicated probe connection,
// counted through the same kvload_* counters as worker traffic. The chaos
// experiment calls this for each injected key, guaranteeing corrupted
// data is read (and therefore witnessed) even if the Zipf draw would have
// skipped the key in a short window.
func (g *Generator) ProbeGet(key uint64) error {
	if key >= uint64(len(g.versions)) {
		return fmt.Errorf("chaos: probe key %d outside working set", key)
	}
	g.probeMu.Lock()
	defer g.probeMu.Unlock()
	if g.probe == nil {
		p, err := dialClient(g.cfg.Addr, g.cfg.OpTimeout)
		if err != nil {
			g.ct.errors.Inc()
			return err
		}
		g.probe = p
	}
	g.ct.ops.Inc()
	g.ct.gets.Inc()
	start := time.Now()
	resp, err := g.probe.roundTrip(fmt.Sprintf("get %d", key))
	if err != nil {
		g.ct.errors.Inc()
		if isTimeout(err) {
			g.ct.timeouts.Inc()
		}
		g.probe.close()
		g.probe = nil
		return err
	}
	g.ct.latUs.Observe(float64(time.Since(start)) / float64(time.Microsecond))
	g.ct.classifyGet(key, g.versions[key].Load(), g.cfg.ValueSize, resp)
	return nil
}
