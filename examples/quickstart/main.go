// Quickstart: inject 200 single-bit soft errors into the in-memory
// key–value store and classify every outcome with the paper's taxonomy.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"hrmsim"
)

func main() {
	c, err := hrmsim.Characterize(hrmsim.CharacterizeConfig{
		App:    hrmsim.AppKVStore,
		Error:  hrmsim.SoftSingleBit,
		Trials: 200,
		Size:   hrmsim.SizeSmall,
		Seed:   42,
		// Progress is called after every completed trial; printing to
		// stderr keeps stdout clean for the report below.
		Progress: func(p hrmsim.ProgressInfo) {
			if p.Done%50 == 0 || p.Done == p.Total {
				fmt.Fprintf(os.Stderr, "trial %d/%d (%.0f trials/s, ETA %s)\n",
					p.Done, p.Total, p.TrialsPerSec, p.ETA.Round(time.Second))
			}
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Injected %d %s errors into %s:\n\n", c.Trials, c.Error, c.App)
	fmt.Printf("  crash probability:     %5.2f%%  (90%% CI [%.2f%%, %.2f%%])\n",
		c.CrashProbability*100, c.CrashCILow*100, c.CrashCIHigh*100)
	fmt.Printf("  tolerated (masked):    %5.2f%%\n", c.ToleratedProbability*100)
	fmt.Printf("  incorrect per billion: %.3g\n\n", c.IncorrectPerBillion)
	fmt.Println("  Outcome taxonomy (Fig. 1 of the paper):")
	for _, k := range []string{"masked-by-overwrite", "masked-by-logic", "masked-latent",
		"incorrect-response", "crash"} {
		fmt.Printf("    %-20s %d\n", k, c.Outcomes[k])
	}
}
