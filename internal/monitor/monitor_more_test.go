package monitor

import (
	"testing"
	"time"

	"hrmsim/internal/simmem"
)

func TestAllStatsIncludesUnaccessed(t *testing.T) {
	e := newEnv(t)
	e.mon.Watch(e.heap.Base(), simmem.RegionHeap)
	e.mon.Watch(e.heap.Base()+1, simmem.RegionHeap)
	all := e.mon.AllStats()
	if len(all) != 2 {
		t.Fatalf("AllStats len = %d", len(all))
	}
	for _, s := range all {
		if s.HasAccess {
			t.Error("unaccessed watchpoint reports access")
		}
	}
}

func TestRegionSafeSummaryEmpty(t *testing.T) {
	e := newEnv(t)
	if _, err := e.mon.RegionSafeSummary(simmem.RegionStack); err == nil {
		t.Error("summary of empty region sample should error")
	}
}

func TestMixedReadWriteRatioHalf(t *testing.T) {
	e := newEnv(t)
	a := e.heap.Base() + 16
	e.mon.Watch(a, simmem.RegionHeap)
	// Alternate store/load at equal intervals: safe and unsafe
	// durations accumulate equally.
	at := time.Minute
	for i := 0; i < 10; i++ {
		e.store(t, a, byte(i), at)
		at += time.Minute
		e.load(t, a, at)
		at += time.Minute
	}
	s, err := e.mon.Stats(a)
	if err != nil {
		t.Fatal(err)
	}
	// First store has no prior reference; after that, 10 unsafe and 9
	// safe one-minute intervals.
	if s.UnsafeDur != 10*time.Minute || s.SafeDur != 9*time.Minute {
		t.Errorf("safe/unsafe = %v/%v", s.SafeDur, s.UnsafeDur)
	}
}
