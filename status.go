package hrmsim

import (
	"errors"
	"fmt"
	"time"

	"hrmsim/internal/core"
	"hrmsim/internal/obsv"
)

// ErrNoStatus reports a campaign directory with no shard status records
// — either the campaign runs without a status sink, or no shard has
// heartbeat yet. Pollers (the coordinator's tick loop) treat it as "not
// yet", not as a failure.
var ErrNoStatus = errors.New("hrmsim: no shard status records (*.status.json)")

// ShardStatusInfo is one shard's latest heartbeat, in facade types (see
// core.ShardStatus for the on-disk record it mirrors).
type ShardStatusInfo struct {
	// Index / Count are the shard coordinates; TrialLo/TrialHi is the
	// owned half-open trial index range.
	Index, Count     int
	TrialLo, TrialHi int
	// Done counts trials with a result so far out of Total (the range
	// size); Completed/Aborted/Resumed break Done down by disposition.
	Done, Total                 int
	Completed, Aborted, Resumed int
	// Outcomes counts completed trials per Fig. 1 taxonomy label.
	Outcomes map[string]int
	// TrialsPerSec, ETA, and Elapsed mirror the shard's own progress
	// accounting at heartbeat time.
	TrialsPerSec float64
	ETA          time.Duration
	Elapsed      time.Duration
	// Adaptive marks a shard running under an adaptive trial planner;
	// the remaining planner fields are zero otherwise. CIHalfWidth is
	// the latest Wilson CI half-width verdict on the crash probability,
	// Planned the planner's current trial budget, PlanFinal whether the
	// stopping rule has fired, and TrialsSaved the requested-minus-
	// planned count once the plan is final.
	Adaptive    bool
	CIHalfWidth float64
	Planned     int
	PlanFinal   bool
	TrialsSaved int
	// Running is false only on a shard's final record; Interrupted marks
	// a cancelled shard.
	Running     bool
	Interrupted bool
	// UpdatedAt is the host wall-clock instant of the heartbeat; its age
	// is the liveness signal straggler detection keys on.
	UpdatedAt time.Time
}

// Age returns how old the shard's heartbeat is at the given instant.
func (s ShardStatusInfo) Age(now time.Time) time.Duration {
	return now.Sub(s.UpdatedAt)
}

// FleetStatus is the cross-shard aggregate of a campaign directory's
// heartbeats: the live (or final) fleet-wide view the coordinator serves
// at /statusz and `hrmsim status` renders. All counts are sums over the
// shards that have reported; Trials is the whole campaign's size, so
// Done < Trials either because work remains or because some shard has
// not heartbeat yet.
type FleetStatus struct {
	// ConfigHash and the campaign identity every shard agreed on.
	ConfigHash string
	App        App
	Error      ErrorType
	Region     Region
	Trials     int
	Seed       int64
	// Shards holds each shard's latest heartbeat, ascending by index.
	Shards []ShardStatusInfo
	// Done/Total and the disposition counts are sums over Shards (Total
	// can be less than Trials while shards are still registering).
	Done, Total                 int
	Completed, Aborted, Resumed int
	// Outcomes sums the per-shard Fig. 1 taxonomy counts.
	Outcomes map[string]int
	// TrialsPerSec sums the running shards' rates; ETA projects the
	// whole campaign's remaining trials at that rate (zero when nothing
	// is running).
	TrialsPerSec float64
	ETA          time.Duration
	// Adaptive reports that any shard runs under an adaptive trial
	// planner (in practice at most one: adaptive campaigns are
	// unsharded). CIHalfWidth is the widest reported CI half-width,
	// Planned sums the adaptive shards' current trial budgets, and
	// TrialsSaved sums the trials their stopping rules saved.
	Adaptive    bool
	CIHalfWidth float64
	Planned     int
	TrialsSaved int
	// Running counts shards whose latest record is live; Interrupted
	// counts shards whose final record reports cancellation.
	Running     int
	Interrupted int
	// Metrics is the obsv.MergeSnapshots aggregate of every shard's
	// heartbeat snapshot — the same merge rule `hrmsim merge` applies to
	// manifests, so live and post-hoc metrics agree. Nil when no shard
	// reported metrics.
	Metrics *obsv.Snapshot
}

// LoadFleetStatus reads every shard status record in dir and aggregates
// it into the fleet view. It validates that all records belong to one
// campaign (config hash equality, like MergeShards) and returns
// ErrNoStatus when the directory holds none. The directory may be live
// (shards still writing; each read is atomic per record) or dead (final
// Running=false records) — the same view works for both.
func LoadFleetStatus(dir string) (*FleetStatus, error) {
	records, err := core.LoadStatusDir(dir)
	if err != nil {
		return nil, fmt.Errorf("hrmsim: %w", err)
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("%w in %s", ErrNoStatus, dir)
	}
	ref := records[0]
	fs := &FleetStatus{
		ConfigHash: ref.ConfigHash,
		App:        App(ref.Campaign.App),
		Error:      ErrorType(ref.Campaign.Error),
		Region:     Region(ref.Campaign.Region),
		Trials:     ref.Campaign.Trials,
		Seed:       ref.Campaign.Seed,
		Outcomes:   make(map[string]int),
	}
	var snaps []obsv.Snapshot
	for _, st := range records {
		if st.ConfigHash != ref.ConfigHash {
			detail := ref.Campaign.Matches(st.Campaign)
			if detail == nil {
				detail = fmt.Errorf("config hashes differ (%s vs %s)", ref.ConfigHash, st.ConfigHash)
			}
			return nil, fmt.Errorf("hrmsim: shard %d/%d status belongs to a different campaign than shard %d/%d: %w",
				st.ShardIndex, st.ShardCount, ref.ShardIndex, ref.ShardCount, detail)
		}
		info := ShardStatusInfo{
			Index:        st.ShardIndex,
			Count:        st.ShardCount,
			TrialLo:      st.TrialLo,
			TrialHi:      st.TrialHi,
			Done:         st.Done,
			Total:        st.Total,
			Completed:    st.Completed,
			Aborted:      st.Aborted,
			Resumed:      st.Resumed,
			Outcomes:     st.Outcomes,
			TrialsPerSec: st.TrialsPerSec,
			ETA:          time.Duration(st.EtaSeconds * float64(time.Second)),
			Elapsed:      time.Duration(st.ElapsedSeconds * float64(time.Second)),
			Adaptive:     st.Adaptive,
			CIHalfWidth:  st.CIHalfWidth,
			Planned:      st.PlannedTrials,
			PlanFinal:    st.PlanFinal,
			TrialsSaved:  st.TrialsSaved,
			Running:      st.Running,
			Interrupted:  st.Interrupted,
			UpdatedAt:    time.Unix(0, st.WallUnixNanos),
		}
		fs.Shards = append(fs.Shards, info)
		if st.Adaptive {
			fs.Adaptive = true
			if st.CIHalfWidth > fs.CIHalfWidth {
				fs.CIHalfWidth = st.CIHalfWidth
			}
			fs.Planned += st.PlannedTrials
			fs.TrialsSaved += st.TrialsSaved
		}
		fs.Done += st.Done
		fs.Total += st.Total
		fs.Completed += st.Completed
		fs.Aborted += st.Aborted
		fs.Resumed += st.Resumed
		for o, n := range st.Outcomes {
			fs.Outcomes[o] += n
		}
		if st.Running {
			fs.Running++
			fs.TrialsPerSec += st.TrialsPerSec
		}
		if st.Interrupted {
			fs.Interrupted++
		}
		if st.Metrics != nil {
			snaps = append(snaps, *st.Metrics)
		}
	}
	if rem := fs.Trials - fs.Done; rem > 0 && fs.TrialsPerSec > 0 {
		fs.ETA = time.Duration(float64(rem) / fs.TrialsPerSec * float64(time.Second))
	}
	if len(snaps) > 0 {
		merged := obsv.MergeSnapshots(snaps...)
		fs.Metrics = &merged
	}
	return fs, nil
}
