package obsv

import (
	"math/rand"
	"reflect"
	"testing"
)

// mergeTestSnapshot builds a snapshot through a real registry so the
// merge tests exercise the same shapes production snapshots have.
func mergeTestSnapshot(counters map[string]int64, gauges map[string]float64, hist map[string][]float64) Snapshot {
	r := NewRegistry()
	for name, v := range counters {
		r.Counter(name).Add(v)
	}
	for name, v := range gauges {
		r.Gauge(name).Set(v)
	}
	for name, samples := range hist {
		h := r.Histogram(name, []float64{1, 10, 100})
		for _, x := range samples {
			h.Observe(x)
		}
	}
	return r.Snapshot()
}

func TestMergeSnapshotsCounters(t *testing.T) {
	a := mergeTestSnapshot(map[string]int64{"x_total": 3, "y_total": 1}, nil, nil)
	b := mergeTestSnapshot(map[string]int64{"x_total": 4, "z_total": 7}, nil, nil)
	got := MergeSnapshots(a, b)
	want := map[string]int64{"x_total": 7, "y_total": 1, "z_total": 7}
	if !reflect.DeepEqual(got.Counters, want) {
		t.Errorf("merged counters = %v, want %v", got.Counters, want)
	}
}

func TestMergeSnapshotsGaugesMax(t *testing.T) {
	a := mergeTestSnapshot(nil, map[string]float64{"level": 2.5, "only_a": -1}, nil)
	b := mergeTestSnapshot(nil, map[string]float64{"level": 1.25, "only_b": 0}, nil)
	got := MergeSnapshots(a, b)
	want := map[string]float64{"level": 2.5, "only_a": -1, "only_b": 0}
	if !reflect.DeepEqual(got.Gauges, want) {
		t.Errorf("merged gauges = %v, want %v", got.Gauges, want)
	}
	// Max must be symmetric: the same result regardless of argument order.
	if rev := MergeSnapshots(b, a); !reflect.DeepEqual(rev.Gauges, got.Gauges) {
		t.Errorf("gauge merge order-dependent: %v vs %v", rev.Gauges, got.Gauges)
	}
}

func TestMergeSnapshotsHistograms(t *testing.T) {
	a := mergeTestSnapshot(nil, nil, map[string][]float64{"lat_ms": {0.5, 5, 500}})
	b := mergeTestSnapshot(nil, nil, map[string][]float64{"lat_ms": {2, 50}})
	got := MergeSnapshots(a, b).Histograms["lat_ms"]
	want := HistogramSnapshot{
		Bounds: []float64{1, 10, 100},
		Counts: []int64{1, 2, 1, 1},
		Count:  5,
		Sum:    557.5,
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("merged histogram = %+v, want %+v", got, want)
	}
}

func TestMergeSnapshotsMismatchedBoundsFoldIntoInf(t *testing.T) {
	ra, rb := NewRegistry(), NewRegistry()
	ha := ra.Histogram("h", []float64{1, 2})
	hb := rb.Histogram("h", []float64{10})
	ha.Observe(0.5)
	ha.Observe(1.5)
	hb.Observe(3)
	hb.Observe(30)
	got := MergeSnapshots(ra.Snapshot(), rb.Snapshot()).Histograms["h"]
	// First-seen layout ({1,2}) wins; b's total count folds into +Inf.
	want := HistogramSnapshot{
		Bounds: []float64{1, 2},
		Counts: []int64{1, 1, 2},
		Count:  4,
		Sum:    35,
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("mismatched-bounds merge = %+v, want %+v", got, want)
	}
}

func TestMergeSnapshotsDoesNotMutateInputs(t *testing.T) {
	a := mergeTestSnapshot(map[string]int64{"x": 1}, map[string]float64{"g": 1}, map[string][]float64{"h": {5}})
	b := mergeTestSnapshot(map[string]int64{"x": 2}, map[string]float64{"g": 2}, map[string][]float64{"h": {50}})
	aCopy := mergeTestSnapshot(map[string]int64{"x": 1}, map[string]float64{"g": 1}, map[string][]float64{"h": {5}})
	bCopy := mergeTestSnapshot(map[string]int64{"x": 2}, map[string]float64{"g": 2}, map[string][]float64{"h": {50}})
	merged := MergeSnapshots(a, b)
	if !reflect.DeepEqual(a, aCopy) || !reflect.DeepEqual(b, bCopy) {
		t.Fatal("MergeSnapshots mutated an input snapshot")
	}
	// Mutating the merged result must not reach back into the inputs.
	merged.Histograms["h"].Counts[0] = 999
	if !reflect.DeepEqual(a, aCopy) || !reflect.DeepEqual(b, bCopy) {
		t.Fatal("merged histogram aliases an input's Counts slice")
	}
}

func TestMergeSnapshotsEmpty(t *testing.T) {
	got := MergeSnapshots()
	if got.Counters != nil || got.Gauges != nil || got.Histograms != nil {
		t.Errorf("empty merge allocated maps: %+v", got)
	}
	one := mergeTestSnapshot(map[string]int64{"x": 1}, nil, nil)
	if merged := MergeSnapshots(one); !reflect.DeepEqual(merged, one) {
		t.Errorf("single-snapshot merge = %+v, want %+v", merged, one)
	}
}

// randomSnapshot builds a pseudo-random snapshot over a shared metric
// namespace so merges genuinely overlap.
func randomSnapshot(rng *rand.Rand) Snapshot {
	r := NewRegistry()
	names := []string{"a_total", "b_total", "c_total"}
	for _, n := range names {
		if rng.Intn(2) == 0 {
			r.Counter(n).Add(int64(rng.Intn(100)))
		}
	}
	for _, n := range []string{"g1", "g2"} {
		if rng.Intn(2) == 0 {
			r.Gauge(n).Set(float64(rng.Intn(400)) * 0.25)
		}
	}
	// Samples are multiples of 0.25 so histogram sums are exact in
	// float64 and associativity can be checked with strict equality
	// (float addition is only associative when no rounding occurs).
	for _, n := range []string{"h1", "h2"} {
		if rng.Intn(2) == 0 {
			h := r.Histogram(n, []float64{1, 10, 100})
			for k := rng.Intn(5); k > 0; k-- {
				h.Observe(float64(rng.Intn(800)) * 0.25)
			}
		}
	}
	return r.Snapshot()
}

func TestMergeSnapshotsAssociativeAndOrderIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		snaps := make([]Snapshot, 4)
		for i := range snaps {
			snaps[i] = randomSnapshot(rng)
		}
		want := MergeSnapshots(snaps...)

		// Associativity: ((a⊕b)⊕c)⊕d == a⊕(b⊕(c⊕d)) == (a⊕b)⊕(c⊕d).
		left := MergeSnapshots(MergeSnapshots(MergeSnapshots(snaps[0], snaps[1]), snaps[2]), snaps[3])
		right := MergeSnapshots(snaps[0], MergeSnapshots(snaps[1], MergeSnapshots(snaps[2], snaps[3])))
		pairs := MergeSnapshots(MergeSnapshots(snaps[0], snaps[1]), MergeSnapshots(snaps[2], snaps[3]))
		for i, got := range []Snapshot{left, right, pairs} {
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d: grouping %d differs:\ngot  %+v\nwant %+v", trial, i, got, want)
			}
		}

		// Order independence: every permutation of 4 snapshots merges equal.
		perm := rng.Perm(len(snaps))
		shuffled := make([]Snapshot, len(snaps))
		for i, p := range perm {
			shuffled[i] = snaps[p]
		}
		if got := MergeSnapshots(shuffled...); !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: permutation %v differs:\ngot  %+v\nwant %+v", trial, perm, got, want)
		}
	}
}
