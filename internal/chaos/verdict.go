package chaos

import (
	"fmt"
	"sort"
	"strings"
)

// VerdictSchemaVersion identifies the JSON layout of Verdict. Bump on any
// breaking change to the serialized shape.
const VerdictSchemaVersion = 1

// PhaseReport is the measured window for one lifecycle phase: client-side
// traffic deltas, server-side protection deltas, and the derived signal
// values the SLOs are evaluated against.
type PhaseReport struct {
	Phase      string `json:"phase"`
	DurationMs int64  `json:"duration_ms"` // wall-clock phase length
	// Virtual-clock positions of the phase boundaries (server vnow).
	StartVirtualMs int64 `json:"start_virtual_ms"`
	EndVirtualMs   int64 `json:"end_virtual_ms"`

	// Client-side deltas (from the kvload_* counters).
	Ops         int64 `json:"ops"`
	Gets        int64 `json:"gets"`
	Sets        int64 `json:"sets"`
	Errors      int64 `json:"errors"`
	Timeouts    int64 `json:"timeouts"`
	WrongValues int64 `json:"wrong_values"`
	StaleValues int64 `json:"stale_values"`

	// Fault-schedule and server-side deltas.
	Injections    int64 `json:"injections"`
	Corrected     int64 `json:"corrected"`
	Uncorrectable int64 `json:"uncorrectable"`
	Recovered     int64 `json:"recovered"`
	Retired       int64 `json:"retired"`

	// Signals holds every signal measurable in this window (finite values
	// only; an unmeasurable signal is absent and explained in the SLO
	// result that needed it).
	Signals map[string]float64 `json:"signals"`
}

// SLOResult is the outcome of evaluating one SLO in one phase.
type SLOResult struct {
	Name       string     `json:"name"`
	Signal     string     `json:"signal"`
	Phase      string     `json:"phase"`
	Comparison Comparison `json:"comparison"`
	Threshold  float64    `json:"threshold"`
	// Observed is nil when the signal was not measurable in the window
	// (no traffic, or a percentile beyond the histogram bounds); Reason
	// then says why, and the result is a failure.
	Observed *float64 `json:"observed,omitempty"`
	Pass     bool     `json:"pass"`
	Reason   string   `json:"reason,omitempty"`
}

// Verdict is the full experiment outcome: the per-phase measurement
// windows, the per-SLO-per-phase grid, and the overall pass flag (true
// only when every evaluated cell passed).
type Verdict struct {
	SchemaVersion int           `json:"schema_version"`
	Experiment    string        `json:"experiment"`
	Seed          int64         `json:"seed"`
	Phases        []PhaseReport `json:"phases"`
	Results       []SLOResult   `json:"results"`
	Pass          bool          `json:"pass"`
	// Samples is the number of probe samples taken across the run.
	Samples int `json:"samples"`
}

// Failed returns the failing results, in evaluation order.
func (v *Verdict) Failed() []SLOResult {
	var out []SLOResult
	for _, r := range v.Results {
		if !r.Pass {
			out = append(out, r)
		}
	}
	return out
}

// evaluate builds the SLO grid from the per-phase windows. Evaluation
// order is deterministic: SLO declaration order, then phase order.
func evaluate(slos []SLO, phases []PhaseReport) ([]SLOResult, bool) {
	byName := make(map[string]PhaseReport, len(phases))
	order := make([]string, 0, len(phases))
	for _, p := range phases {
		byName[p.Phase] = p
		order = append(order, p.Phase)
	}
	pass := true
	var results []SLOResult
	for _, s := range slos {
		for _, phase := range order {
			if !s.appliesTo(phase) {
				continue
			}
			results = append(results, evalOne(s, byName[phase]))
			if !results[len(results)-1].Pass {
				pass = false
			}
		}
	}
	return results, pass
}

func evalOne(s SLO, p PhaseReport) SLOResult {
	r := SLOResult{
		Name: s.Name, Signal: s.Signal, Phase: p.Phase,
		Comparison: s.Comparison, Threshold: s.Threshold,
	}
	obs, ok := p.Signals[s.Signal]
	if !ok {
		r.Pass = false
		r.Reason = missingReason(s.Signal, p)
		return r
	}
	v := obs
	r.Observed = &v
	switch s.Comparison {
	case Max:
		r.Pass = obs <= s.Threshold
	case Min:
		r.Pass = obs >= s.Threshold
	}
	if !r.Pass {
		r.Reason = fmt.Sprintf("observed %s violates %s %s",
			formatSignal(s.Signal, obs), string(s.Comparison), formatSignal(s.Signal, s.Threshold))
	}
	return r
}

// missingReason explains why a signal was absent from a phase window.
func missingReason(signal string, p PhaseReport) string {
	switch signal {
	case SignalErrorRate, SignalTimeoutRate:
		if p.Ops == 0 {
			return "no traffic in window"
		}
	case SignalWrongValueRate:
		if p.Gets == 0 {
			return "no reads in window"
		}
	case SignalP50LatencyUs, SignalP99LatencyUs:
		if p.Ops == 0 {
			return "no traffic in window"
		}
		return "percentile beyond histogram bounds"
	}
	return "signal not measured in window"
}

func formatSignal(signal string, v float64) string {
	switch signal {
	case SignalErrorRate, SignalWrongValueRate, SignalTimeoutRate:
		return fmt.Sprintf("%.4f", v)
	default:
		return fmt.Sprintf("%.1f", v)
	}
}

// Render formats the verdict as the litmus-style result table printed by
// `hrmsim chaos` (the JSON envelope carries the same data structurally).
func (v *Verdict) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "chaos experiment %q (seed %d)\n\n", v.Experiment, v.Seed)

	fmt.Fprintf(&b, "%-10s %9s %8s %8s %8s %8s %7s %6s %6s\n",
		"PHASE", "OPS", "ERRORS", "WRONG", "INJECT", "CORR", "RECOV", "RETIRE", "P99us")
	for _, p := range v.Phases {
		p99 := "-"
		if x, ok := p.Signals[SignalP99LatencyUs]; ok {
			p99 = fmt.Sprintf("%.0f", x)
		}
		fmt.Fprintf(&b, "%-10s %9d %8d %8d %8d %8d %7d %6d %6s\n",
			p.Phase, p.Ops, p.Errors, p.WrongValues, p.Injections,
			p.Corrected, p.Recovered, p.Retired, p99)
	}
	b.WriteString("\n")

	fmt.Fprintf(&b, "%-18s %-18s %-10s %12s %12s  %s\n",
		"SLO", "SIGNAL", "PHASE", "OBSERVED", "THRESHOLD", "VERDICT")
	for _, r := range v.Results {
		obs := "-"
		if r.Observed != nil {
			obs = formatSignal(r.Signal, *r.Observed)
		}
		verdict := "PASS"
		if !r.Pass {
			verdict = "FAIL"
			if r.Observed == nil {
				verdict = "FAIL (" + r.Reason + ")"
			}
		}
		bound := string(r.Comparison) + " " + formatSignal(r.Signal, r.Threshold)
		fmt.Fprintf(&b, "%-18s %-18s %-10s %12s %12s  %s\n",
			r.Name, r.Signal, r.Phase, obs, bound, verdict)
	}

	failed := len(v.Failed())
	if v.Pass {
		fmt.Fprintf(&b, "\nverdict: PASS (%d/%d objectives met)\n", len(v.Results), len(v.Results))
	} else {
		fmt.Fprintf(&b, "\nverdict: FAIL (%d/%d objectives violated)\n", failed, len(v.Results))
	}
	return b.String()
}

// sortedSignalNames returns the signal keys of a window in stable order
// (used by tests asserting the serialized shape).
func sortedSignalNames(p PhaseReport) []string {
	out := make([]string, 0, len(p.Signals))
	for k := range p.Signals {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
