package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hrmsim/internal/evtrace"
)

func TestCharacterizeTraceJSONL(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	err := run([]string{"characterize", "-app", "kvstore", "-size", "small",
		"-trials", "20", "-trace", path})
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	hdr, events, err := evtrace.ReadJSONL(f)
	if err != nil {
		t.Fatal(err)
	}
	if hdr.SchemaVersion != evtrace.SchemaVersion {
		t.Errorf("schema version = %d", hdr.SchemaVersion)
	}
	starts := 0
	for _, ev := range events {
		if ev.Kind == evtrace.KindTrialStart {
			starts++
		}
	}
	if starts != 20 {
		t.Errorf("traced %d trial_start events, want 20", starts)
	}

	// traceview renders it without error.
	out := captureStdout(t, func() error {
		return run([]string{"traceview", "-max-timelines", "2", path})
	})
	for _, want := range []string{"Events by kind", "trial_start", "trial 0"} {
		if !strings.Contains(out, want) {
			t.Errorf("traceview output missing %q:\n%s", want, out)
		}
	}
	if err := run([]string{"traceview", filepath.Join(t.TempDir(), "nope.jsonl")}); err == nil {
		t.Error("traceview accepted a missing file")
	}
}

func TestCharacterizeTraceChromeShape(t *testing.T) {
	// The acceptance contract: -trace-format chrome produces a JSON array
	// of trace-event objects, each with name, ph, ts, pid, and tid.
	path := filepath.Join(t.TempDir(), "out.json")
	err := run([]string{"characterize", "-app", "kvstore", "-size", "small",
		"-trials", "20", "-trace", path, "-trace-format", "chrome"})
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var objs []map[string]any
	if err := json.Unmarshal(b, &objs); err != nil {
		t.Fatalf("chrome trace is not a JSON array: %v", err)
	}
	if len(objs) == 0 {
		t.Fatal("chrome trace is empty")
	}
	slices := 0
	for i, o := range objs {
		for _, key := range []string{"name", "ph", "ts", "pid", "tid"} {
			if _, ok := o[key]; !ok {
				t.Fatalf("trace object %d missing %q: %v", i, key, o)
			}
		}
		if o["ph"] == "X" {
			slices++
		}
	}
	if slices != 20 {
		t.Errorf("chrome trace has %d slices, want one per trial", slices)
	}

	if err := run([]string{"characterize", "-app", "kvstore", "-size", "small",
		"-trials", "1", "-trace", filepath.Join(t.TempDir(), "x"),
		"-trace-format", "protobuf"}); err == nil {
		t.Error("unknown trace format accepted")
	}
}

func TestCharacterizeJSONCarriesFlightRecorderAndTraceMetrics(t *testing.T) {
	out := captureStdout(t, func() error {
		return run([]string{"characterize", "-app", "kvstore", "-size", "small",
			"-trials", "40", "-json"})
	})
	res := decodeEnvelope(t, out, "characterize")
	var env struct {
		Metrics struct {
			Counters map[string]int64 `json:"counters"`
		} `json:"metrics"`
		Trace *struct {
			SchemaVersion int            `json:"schema_version"`
			Dumps         []evtrace.Dump `json:"flight_recorder_dumps"`
		} `json:"trace"`
	}
	if err := json.Unmarshal([]byte(out), &env); err != nil {
		t.Fatal(err)
	}
	if env.Metrics.Counters["evtrace_events_total"] == 0 {
		t.Error("evtrace_events_total missing from -json metrics")
	}

	outcomes := res["outcomes"].(map[string]any)
	failures := 0
	for _, k := range []string{"crash", "incorrect-response"} {
		if n, ok := outcomes[k].(float64); ok {
			failures += int(n)
		}
	}
	if failures == 0 {
		t.Skip("no crash/incorrect trials at this seed; flight recorder has nothing to dump")
	}
	if env.Trace == nil {
		t.Fatalf("%d failing trials but envelope has no trace section", failures)
	}
	if env.Trace.SchemaVersion != evtrace.SchemaVersion {
		t.Errorf("trace schema_version = %d", env.Trace.SchemaVersion)
	}
	if len(env.Trace.Dumps) == 0 {
		t.Fatal("flight_recorder_dumps is empty")
	}
	for _, d := range env.Trace.Dumps {
		if d.Outcome != "crash" && d.Outcome != "incorrect-response" {
			t.Errorf("dump for non-failing outcome %q", d.Outcome)
		}
		if len(d.Events) == 0 {
			t.Errorf("trial %d dump has no events", d.Trial)
		}
	}
}
