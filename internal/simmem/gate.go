package simmem

// Exclusion gate: the synchronization seam for sharing one AddressSpace
// between a live server and a concurrent fault injector.
//
// An AddressSpace is single-goroutine by design — characterization
// campaigns build one per worker and never contend. A live-traffic
// deployment (cmd/kvserve serving per-connection goroutines while a chaos
// injector corrupts memory) breaks that assumption, so the space carries a
// mutex that callers use to serialize *whole logical operations*: one
// protocol request, one injection, one scrub pass. Holding the gate for
// the full operation — not per Load/Store — guarantees an injection lands
// between operations, never mid-access, so every access still sees a
// consistent decode/taint state and the fault model stays identical to the
// campaign engine's (where injections happen between Serve calls).
//
// The gate is opt-in: code that owns its AddressSpace exclusively (the
// entire campaign path) never locks it and pays nothing.

// Acquire takes the operation gate. Callers sharing the space across
// goroutines must hold it for the duration of every logical operation that
// touches memory, the clock, counters, or regions.
func (as *AddressSpace) Acquire() { as.gate.Lock() }

// Release drops the operation gate.
func (as *AddressSpace) Release() { as.gate.Unlock() }

// Exclusive runs fn while holding the operation gate: the unit of
// serialization for concurrent servers and injectors.
func (as *AddressSpace) Exclusive(fn func() error) error {
	as.gate.Lock()
	defer as.gate.Unlock()
	return fn()
}
