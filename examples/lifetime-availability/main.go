// lifetime-availability runs the web search node continuously for a
// simulated day under a memory-error storm, once for each protection
// preset, and compares crashes, availability, and response correctness —
// the Table 6 trade-off measured by direct simulation instead of the
// analytic model.
//
//	go run ./examples/lifetime-availability
package main

import (
	"fmt"
	"log"

	"hrmsim"
)

func main() {
	const errorsPerMonth = 150000 // amplified to match the scaled-down memory
	fmt.Printf("One simulated day at %d errors/month (soft), per protection preset:\n\n", errorsPerMonth)
	fmt.Printf("%-14s %8s %8s %14s %12s %12s\n",
		"protection", "errors", "crashes", "availability", "incorrect", "scrub fixes")
	for _, p := range hrmsim.Protections() {
		res, err := hrmsim.SimulateLifetime(hrmsim.LifetimeConfig{
			Protection:     p,
			ErrorsPerMonth: errorsPerMonth,
			Hours:          24,
			Seed:           7,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s %8d %8d %13.3f%% %12d %12d\n",
			p, res.ErrorsInjected, res.Crashes, res.Availability*100,
			res.Incorrect, res.ScrubCorrected)
	}
	fmt.Println("\nHow to read this: unprotected memory both crashes and serves wrong")
	fmt.Println("answers. Par+R on the index (1.56% overhead) recovers most crashes —")
	fmt.Println("but the longer uptime lets errors in the unprotected heap accumulate,")
	fmt.Println("so wrong answers rise: availability and correctness are separate")
	fmt.Println("budgets, each needing the right technique per region. SEC-DED alone")
	fmt.Println("never answers wrong but still crash-loops as single-bit errors pile")
	fmt.Println("into uncorrectable pairs in read-mostly data; adding patrol scrubbing")
	fmt.Println("rides the storm out almost untouched. Protection must match how each")
	fmt.Println("region's data is used — the paper's core argument.")
}
