package simmem

import (
	"errors"
	"fmt"
)

// ErrOutOfMemory is returned when a region cannot satisfy an allocation.
var ErrOutOfMemory = errors.New("simmem: region out of memory")

const allocAlign = 16

// Arena is a simple allocator over a region: bump allocation with
// exact-size free lists, 16-byte alignment. It is how the heap-using
// applications (key–value store, graph mining) obtain simulated memory for
// their dynamic data structures.
//
// The arena's bookkeeping lives in host memory, not in the simulated
// region: an injected error can corrupt application data but not the
// allocator itself — matching the paper's setup, where the OS allocator
// metadata is outside the studied application regions.
type Arena struct {
	r     *Region
	next  int
	free  map[int][]Addr
	sizes map[Addr]int
}

// NewArena creates an allocator over r.
func NewArena(r *Region) *Arena {
	return &Arena{
		r:     r,
		free:  make(map[int][]Addr),
		sizes: make(map[Addr]int),
	}
}

// Region returns the region the arena allocates from.
func (a *Arena) Region() *Region { return a.r }

// Alloc reserves size bytes and returns the address of the block. The
// block's previous contents are not cleared: like malloc, freshly allocated
// memory may hold stale (or corrupted) bytes until the application writes
// them.
func (a *Arena) Alloc(size int) (Addr, error) {
	if size <= 0 {
		return 0, fmt.Errorf("simmem: allocation size must be positive, got %d", size)
	}
	rounded := (size + allocAlign - 1) / allocAlign * allocAlign
	if list := a.free[rounded]; len(list) > 0 {
		addr := list[len(list)-1]
		a.free[rounded] = list[:len(list)-1]
		a.sizes[addr] = rounded
		return addr, nil
	}
	if a.next+rounded > a.r.size {
		return 0, fmt.Errorf("%w: region %q (%d of %d bytes used, need %d)",
			ErrOutOfMemory, a.r.name, a.next, a.r.size, rounded)
	}
	addr := a.r.base + Addr(a.next)
	a.next += rounded
	a.sizes[addr] = rounded
	if a.next > a.r.used {
		a.r.SetUsed(a.next)
	}
	return addr, nil
}

// Free returns a block to the arena. Freeing an address that was not
// returned by Alloc (or freeing twice) is an error.
func (a *Arena) Free(addr Addr) error {
	size, ok := a.sizes[addr]
	if !ok {
		return fmt.Errorf("simmem: free of unallocated address %#x", uint64(addr))
	}
	delete(a.sizes, addr)
	a.free[size] = append(a.free[size], addr)
	return nil
}

// ArenaMark is a captured allocator state (Arena.Mark / Arena.Rewind).
type ArenaMark struct {
	next  int
	free  map[int][]Addr
	sizes map[Addr]int
}

// Mark captures the allocator's current state so a later Rewind can
// discard allocations and frees made since — the allocator half of the
// snapshot/restore trial lifecycle (host-side bookkeeping lives outside
// the simulated region, so simmem.Snapshot cannot capture it).
func (a *Arena) Mark() *ArenaMark {
	m := &ArenaMark{
		next:  a.next,
		free:  make(map[int][]Addr, len(a.free)),
		sizes: make(map[Addr]int, len(a.sizes)),
	}
	for sz, list := range a.free {
		m.free[sz] = append([]Addr(nil), list...)
	}
	for addr, sz := range a.sizes {
		m.sizes[addr] = sz
	}
	return m
}

// Rewind restores the state captured by Mark. The mark stays valid for
// further rewinds.
func (a *Arena) Rewind(m *ArenaMark) {
	a.next = m.next
	a.free = make(map[int][]Addr, len(m.free))
	for sz, list := range m.free {
		a.free[sz] = append([]Addr(nil), list...)
	}
	a.sizes = make(map[Addr]int, len(m.sizes))
	for addr, sz := range m.sizes {
		a.sizes[addr] = sz
	}
}

// Live returns the number of live allocations.
func (a *Arena) Live() int { return len(a.sizes) }

// Bytes returns the high-water mark of bytes ever allocated.
func (a *Arena) Bytes() int { return a.next }

// Stack manages a region as an upward-growing call stack of frames. Applications push a frame per request handler, write their
// "local variables" into it, and pop it on return — which is what gives the
// stack region its high overwrite-masking potential in the paper's
// characterization (Finding 4).
type Stack struct {
	r  *Region
	sp int
}

// NewStack creates a stack over r.
func NewStack(r *Region) *Stack {
	return &Stack{r: r}
}

// Region returns the underlying region.
func (s *Stack) Region() *Region { return s.r }

// Frame is one pushed stack frame.
type Frame struct {
	Base Addr
	Size int
}

// Push reserves a frame of size bytes (16-byte aligned). Like a real call
// stack, the frame's memory retains whatever bytes the previous occupant
// (or an injected error) left there until the function writes its locals.
func (s *Stack) Push(size int) (Frame, error) {
	if size <= 0 {
		return Frame{}, fmt.Errorf("simmem: frame size must be positive, got %d", size)
	}
	rounded := (size + allocAlign - 1) / allocAlign * allocAlign
	if s.sp+rounded > s.r.size {
		return Frame{}, fmt.Errorf("%w: stack %q overflow (sp %d, frame %d, size %d)",
			ErrOutOfMemory, s.r.name, s.sp, rounded, s.r.size)
	}
	f := Frame{Base: s.r.base + Addr(s.sp), Size: rounded}
	s.sp += rounded
	if s.sp > s.r.used {
		s.r.SetUsed(s.sp)
	}
	return f, nil
}

// Pop releases the most recently pushed frame, which must be f.
func (s *Stack) Pop(f Frame) error {
	base := int(f.Base - s.r.base)
	if base+f.Size != s.sp {
		return fmt.Errorf("simmem: pop of non-top frame at %#x (size %d, sp %d)",
			uint64(f.Base), f.Size, s.sp)
	}
	s.sp = base
	return nil
}

// Depth returns the current stack pointer offset.
func (s *Stack) Depth() int { return s.sp }

// Rewind forces the stack pointer back to an absolute depth previously
// observed via Depth, discarding any frames pushed since — the stack
// half of the snapshot/restore trial lifecycle.
func (s *Stack) Rewind(depth int) error {
	if depth < 0 || depth > s.r.size {
		return fmt.Errorf("simmem: rewind depth %d outside [0,%d]", depth, s.r.size)
	}
	s.sp = depth
	return nil
}
