// Micro-benchmarks for the clean-page fast path, per codec: loads from
// untainted pages (bulk copy), loads from tainted pages (the reference
// per-word decode path), and partial-word stores (which skip the RMW
// decode when the page is clean).
package simmem_test

import (
	"testing"

	"hrmsim/internal/ecc"
	"hrmsim/internal/simmem"
)

const benchSpan = 64 // bytes per operation

// newBenchSpace maps one protected (or unprotected) region and fills it
// with data through the encode path.
func newBenchSpace(b *testing.B, codec simmem.Codec) (*simmem.AddressSpace, *simmem.Region) {
	b.Helper()
	as, err := simmem.New(simmem.Config{PageSize: 4096})
	if err != nil {
		b.Fatal(err)
	}
	r, err := as.AddRegion(simmem.RegionSpec{
		Name: "bench", Kind: simmem.RegionHeap, Size: 1 << 16, Codec: codec,
	})
	if err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, 256)
	for i := range buf {
		buf[i] = byte(i)
	}
	for off := 0; off < r.Size(); off += len(buf) {
		if err := as.Store(r.Base()+simmem.Addr(off), buf); err != nil {
			b.Fatal(err)
		}
	}
	return as, r
}

// taintAll marks every granule of every page tainted without changing
// any sensed byte: bit 0 of each granule's first byte is stuck at the
// value it already stores, so tainted-path benchmarks still decode
// clean on every codec while the whole space runs the slow path.
func taintAll(b *testing.B, as *simmem.AddressSpace, r *simmem.Region, codec simmem.Codec) {
	b.Helper()
	g := 64
	if codec != nil {
		g = codec.WordBytes()
	}
	var v [1]byte
	for off := 0; off < r.Size(); off += g {
		addr := r.Base() + simmem.Addr(off)
		if err := as.ReadRaw(addr, v[:]); err != nil {
			b.Fatal(err)
		}
		if err := as.StickBit(addr, 0, int(v[0]&1)); err != nil {
			b.Fatal(err)
		}
	}
	if got := as.TaintedPages(); got != r.PageCount() {
		b.Fatalf("tainted %d of %d pages", got, r.PageCount())
	}
}

func benchLoad(b *testing.B, codec simmem.Codec, tainted bool) {
	as, r := newBenchSpace(b, codec)
	if tainted {
		taintAll(b, as, r, codec)
	}
	buf := make([]byte, benchSpan)
	span := r.Size() - benchSpan
	b.SetBytes(benchSpan)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		addr := r.Base() + simmem.Addr(i*benchSpan%span)
		if err := as.Load(addr, buf); err != nil {
			b.Fatal(err)
		}
	}
	if tainted == (as.FastPathLoads() > 0) {
		b.Fatalf("fast-path loads = %d with tainted=%v", as.FastPathLoads(), tainted)
	}
}

func benchCodecs() []struct {
	name  string
	codec simmem.Codec
} {
	return []struct {
		name  string
		codec simmem.Codec
	}{
		{"noecc", nil},
		{"parity", ecc.NewParity()},
		{"secded", ecc.NewSECDED()},
		{"dected", ecc.NewDECTED()},
		{"chipkill", ecc.NewChipkill()},
		{"mirror", ecc.NewMirror()},
	}
}

func BenchmarkLoadClean(b *testing.B) {
	for _, tc := range benchCodecs() {
		b.Run(tc.name, func(b *testing.B) { benchLoad(b, tc.codec, false) })
	}
}

func BenchmarkLoadTainted(b *testing.B) {
	for _, tc := range benchCodecs() {
		b.Run(tc.name, func(b *testing.B) { benchLoad(b, tc.codec, true) })
	}
}

// BenchmarkStorePartial writes 4 bytes at an unaligned offset, the case
// where protected stores must read-modify-write the covering codeword.
func BenchmarkStorePartial(b *testing.B) {
	for _, tc := range benchCodecs() {
		for _, state := range []struct {
			name    string
			tainted bool
		}{{"clean", false}, {"tainted", true}} {
			b.Run(tc.name+"/"+state.name, func(b *testing.B) {
				as, r := newBenchSpace(b, tc.codec)
				if state.tainted {
					taintAll(b, as, r, tc.codec)
				}
				data := []byte{1, 2, 3, 4}
				span := r.Size() - 8
				b.SetBytes(int64(len(data)))
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					addr := r.Base() + simmem.Addr(i*8%span) + 3
					if err := as.Store(addr, data); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
