package main

import (
	"bufio"
	"encoding/hex"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"hrmsim/internal/trace"
)

func newTestServer(t *testing.T, eccName string) *server {
	t.Helper()
	srv, err := newServer(64, eccName, 1)
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

func TestDispatchGetSet(t *testing.T) {
	srv := newTestServer(t, "none")

	resp := srv.dispatch("get 5")
	if !strings.HasPrefix(resp, "VALUE 0 ") {
		t.Fatalf("get: %q", resp)
	}
	wantVal := hex.EncodeToString(trace.ValueFor(5, 0, 64))
	if !strings.HasSuffix(resp, wantVal) {
		t.Errorf("get returned wrong bytes: %q", resp)
	}

	if resp := srv.dispatch("set 5 3"); resp != "STORED" {
		t.Fatalf("set: %q", resp)
	}
	resp = srv.dispatch("get 5")
	if !strings.HasPrefix(resp, "VALUE 3 ") {
		t.Errorf("get after set: %q", resp)
	}

	if resp := srv.dispatch("get 9999"); resp != "MISS" {
		t.Errorf("missing key: %q", resp)
	}
}

func TestDispatchInjectAndStats(t *testing.T) {
	srv := newTestServer(t, "none")
	resp := srv.dispatch("inject soft")
	if !strings.HasPrefix(resp, "INJECTED ") {
		t.Fatalf("inject: %q", resp)
	}
	resp = srv.dispatch("stats")
	if !strings.Contains(resp, "injected=1") {
		t.Errorf("stats: %q", resp)
	}
}

func TestDispatchClientErrors(t *testing.T) {
	srv := newTestServer(t, "none")
	for _, cmd := range []string{
		"get", "get abc", "set 1", "set a b", "inject", "inject gamma", "frobnicate",
	} {
		if resp := srv.dispatch(cmd); !strings.HasPrefix(resp, "CLIENT_ERROR") {
			t.Errorf("%q: %q", cmd, resp)
		}
	}
}

func TestECCServerCorrectsInjectedErrors(t *testing.T) {
	srv := newTestServer(t, "secded")
	before := srv.dispatch("get 7")
	// Inject a burst of soft errors; SEC-DED should keep every value
	// intact.
	for i := 0; i < 50; i++ {
		if resp := srv.dispatch("inject soft"); !strings.HasPrefix(resp, "INJECTED") {
			t.Fatalf("inject %d: %q", i, resp)
		}
	}
	after := srv.dispatch("get 7")
	if before != after {
		t.Errorf("value changed despite SEC-DED:\n%q\n%q", before, after)
	}
	stats := srv.dispatch("stats")
	if !strings.Contains(stats, "injected=50") {
		t.Errorf("stats: %q", stats)
	}
}

func TestNewServerValidation(t *testing.T) {
	if _, err := newServer(64, "rot13", 1); err == nil {
		t.Error("unknown ecc accepted")
	}
	for _, name := range []string{"none", "parity", "secded", "chipkill"} {
		if _, err := newServer(16, name, 1); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

// TestMetricsSidecarEndpoints starts the observability mux on a real
// loopback listener — exactly what `-metrics-addr 127.0.0.1:0` does — and
// exercises /healthz and /metrics in both exposition formats.
func TestMetricsSidecarEndpoints(t *testing.T) {
	srv := newTestServer(t, "none")
	// Generate some traffic so the metrics are non-trivial.
	srv.dispatch("get 1")
	srv.dispatch("set 1 2")
	srv.dispatch("get 9999")
	srv.dispatch("inject soft")
	srv.dispatch("bogus")

	ts := httptest.NewServer(metricsMux(srv.metrics))
	defer ts.Close()

	get := func(path string) (string, string) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer func() { _ = resp.Body.Close() }()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body), resp.Header.Get("Content-Type")
	}

	if body, _ := get("/healthz"); strings.TrimSpace(body) != "ok" {
		t.Errorf("/healthz = %q", body)
	}

	text, ctype := get("/metrics")
	if !strings.Contains(ctype, "text/plain") {
		t.Errorf("/metrics content type = %q", ctype)
	}
	for _, want := range []string{
		"kvserve_ops_total 3",
		"kvserve_gets_total 2",
		"kvserve_sets_total 1",
		"kvserve_hits_total 1",
		"kvserve_misses_total 1",
		"kvserve_injections_total 1",
		"kvserve_client_errors_total 1",
		`kvserve_op_wall_us_bucket{le="+Inf"} 5`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q:\n%s", want, text)
		}
	}

	jsonBody, ctype := get("/metrics?format=json")
	if !strings.Contains(ctype, "application/json") {
		t.Errorf("/metrics?format=json content type = %q", ctype)
	}
	var snap struct {
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.Unmarshal([]byte(jsonBody), &snap); err != nil {
		t.Fatalf("/metrics?format=json: %v\n%s", err, jsonBody)
	}
	if snap.Counters["kvserve_ops_total"] != 3 {
		t.Errorf("kvserve_ops_total = %d, want 3", snap.Counters["kvserve_ops_total"])
	}
}

func TestHandleOverConnection(t *testing.T) {
	srv := newTestServer(t, "none")
	client, server := net.Pipe()
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.handle(server)
	}()

	w := bufio.NewWriter(client)
	r := bufio.NewScanner(client)
	send := func(cmd string) string {
		t.Helper()
		if _, err := w.WriteString(cmd + "\n"); err != nil {
			t.Fatal(err)
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		if !r.Scan() {
			t.Fatalf("no response to %q: %v", cmd, r.Err())
		}
		return r.Text()
	}

	if resp := send("get 1"); !strings.HasPrefix(resp, "VALUE ") {
		t.Errorf("get over pipe: %q", resp)
	}
	if resp := send("set 1 9"); resp != "STORED" {
		t.Errorf("set over pipe: %q", resp)
	}
	if _, err := w.WriteString("quit\n"); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	<-done
	_ = client.Close()
}
