#!/bin/sh
# Capture the benchmark suites (root bench_test.go plus the simmem
# memory-path micro-benchmarks) as a dated JSON file, so performance
# trajectories can be diffed across commits:
#
#   scripts/bench.sh              # writes BENCH_YYYY-MM-DD.json
#   BENCHTIME=5x scripts/bench.sh # faster capture for smoke runs
#   OUT=custom.json scripts/bench.sh
#
# The output is `go test -json` event stream: one JSON object per line,
# with benchmark results in the Output fields of hrmsim's package events
# (jq '.Output | select(. != null)' extracts them).
set -eu
cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-1x}"
OUT="${OUT:-BENCH_$(date +%Y-%m-%d).json}"

echo "benchmarking (benchtime $BENCHTIME) -> $OUT" >&2
go test -json -run '^$' -bench . -benchmem -benchtime "$BENCHTIME" . ./internal/simmem >"$OUT"
echo "wrote $OUT" >&2
