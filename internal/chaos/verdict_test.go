package chaos

import (
	"encoding/hex"
	"encoding/json"
	"strings"
	"testing"

	"hrmsim/internal/obsv"
	"hrmsim/internal/trace"
)

// hexValue encodes the oracle value for (key, version) the way the
// protocol carries it.
func hexValue(key uint64, ver uint32, size int) string {
	return hex.EncodeToString(trace.ValueFor(key, ver, size))
}

func TestSLOValidate(t *testing.T) {
	bad := []SLO{
		{Name: "", Signal: SignalErrorRate, Comparison: Max},
		{Name: "x", Signal: "made_up", Comparison: Max},
		{Name: "x", Signal: SignalErrorRate, Comparison: "between"},
		{Name: "x", Signal: SignalErrorRate, Comparison: Max, Phases: []string{"warmup"}},
	}
	for i, s := range bad {
		if err := s.validate(); err == nil {
			t.Errorf("case %d: invalid SLO accepted: %+v", i, s)
		}
	}
	good := SLO{Name: "x", Signal: SignalRecoveries, Comparison: Min, Threshold: 1,
		Phases: []string{PhaseChaos}}
	if err := good.validate(); err != nil {
		t.Errorf("valid SLO rejected: %v", err)
	}
}

// phaseWith builds a minimal report with the given signals present.
func phaseWith(name string, ops, gets int64, signals map[string]float64) PhaseReport {
	return PhaseReport{Phase: name, Ops: ops, Gets: gets, Signals: signals}
}

func TestEvaluateBoundaries(t *testing.T) {
	cases := []struct {
		name     string
		slo      SLO
		observed float64
		want     bool
	}{
		{"max-at-threshold", SLO{Name: "s", Signal: SignalErrorRate, Comparison: Max, Threshold: 0.1}, 0.1, true},
		{"max-below", SLO{Name: "s", Signal: SignalErrorRate, Comparison: Max, Threshold: 0.1}, 0.0999, true},
		{"max-above", SLO{Name: "s", Signal: SignalErrorRate, Comparison: Max, Threshold: 0.1}, 0.1001, false},
		{"max-zero-at-zero", SLO{Name: "s", Signal: SignalWrongValueRate, Comparison: Max, Threshold: 0}, 0, true},
		{"max-zero-above", SLO{Name: "s", Signal: SignalWrongValueRate, Comparison: Max, Threshold: 0}, 1e-9, false},
		{"min-at-threshold", SLO{Name: "s", Signal: SignalRecoveries, Comparison: Min, Threshold: 3}, 3, true},
		{"min-above", SLO{Name: "s", Signal: SignalRecoveries, Comparison: Min, Threshold: 3}, 4, true},
		{"min-below", SLO{Name: "s", Signal: SignalRecoveries, Comparison: Min, Threshold: 3}, 2, false},
	}
	for _, tc := range cases {
		p := phaseWith(PhaseSteady, 100, 90, map[string]float64{tc.slo.Signal: tc.observed})
		results, pass := evaluate([]SLO{tc.slo}, []PhaseReport{p})
		if len(results) != 1 {
			t.Fatalf("%s: %d results", tc.name, len(results))
		}
		r := results[0]
		if r.Pass != tc.want || pass != tc.want {
			t.Errorf("%s: pass = %v, want %v", tc.name, r.Pass, tc.want)
		}
		if r.Observed == nil || *r.Observed != tc.observed {
			t.Errorf("%s: observed = %v", tc.name, r.Observed)
		}
		if !r.Pass && r.Reason == "" {
			t.Errorf("%s: failing result has no reason", tc.name)
		}
	}
}

func TestEvaluateMissingData(t *testing.T) {
	cases := []struct {
		name       string
		slo        SLO
		phase      PhaseReport
		wantReason string
	}{
		{
			"zero-traffic-error-rate",
			SLO{Name: "s", Signal: SignalErrorRate, Comparison: Max, Threshold: 0},
			phaseWith(PhaseSteady, 0, 0, map[string]float64{}),
			"no traffic in window",
		},
		{
			"zero-reads-wrong-value",
			SLO{Name: "s", Signal: SignalWrongValueRate, Comparison: Max, Threshold: 0},
			phaseWith(PhaseSteady, 10, 0, map[string]float64{}),
			"no reads in window",
		},
		{
			"zero-traffic-latency",
			SLO{Name: "s", Signal: SignalP99LatencyUs, Comparison: Max, Threshold: 100},
			phaseWith(PhaseSteady, 0, 0, map[string]float64{}),
			"no traffic in window",
		},
		{
			"latency-beyond-bounds",
			SLO{Name: "s", Signal: SignalP99LatencyUs, Comparison: Max, Threshold: 100},
			phaseWith(PhaseSteady, 10, 10, map[string]float64{}),
			"percentile beyond histogram bounds",
		},
	}
	for _, tc := range cases {
		results, pass := evaluate([]SLO{tc.slo}, []PhaseReport{tc.phase})
		if pass {
			t.Errorf("%s: unmeasurable window passed", tc.name)
		}
		r := results[0]
		if r.Pass || r.Observed != nil {
			t.Errorf("%s: result = %+v, want fail with nil observed", tc.name, r)
		}
		if r.Reason != tc.wantReason {
			t.Errorf("%s: reason = %q, want %q", tc.name, r.Reason, tc.wantReason)
		}
	}
}

func TestEvaluatePhaseScoping(t *testing.T) {
	slo := SLO{Name: "r", Signal: SignalRecoveries, Comparison: Min, Threshold: 1,
		Phases: []string{PhaseChaos}}
	phases := []PhaseReport{
		phaseWith(PhaseSteady, 10, 10, map[string]float64{SignalRecoveries: 0}),
		phaseWith(PhaseChaos, 10, 10, map[string]float64{SignalRecoveries: 2}),
		phaseWith(PhaseRecovery, 10, 10, map[string]float64{SignalRecoveries: 0}),
	}
	results, pass := evaluate([]SLO{slo}, phases)
	if len(results) != 1 || results[0].Phase != PhaseChaos {
		t.Fatalf("scoped SLO evaluated in %d phases: %+v", len(results), results)
	}
	if !pass {
		t.Error("scoped SLO should pass on the chaos window alone")
	}
}

func TestPercentile(t *testing.T) {
	reg := obsv.NewRegistry()
	h := reg.Histogram("t", []float64{10, 100, 1000})
	start := reg.Snapshot().Histograms["t"]
	for i := 0; i < 90; i++ {
		h.Observe(5) // bucket (0,10]
	}
	for i := 0; i < 10; i++ {
		h.Observe(50) // bucket (10,100]
	}
	end := reg.Snapshot().Histograms["t"]

	if p, ok := Percentile(start, end, 0.50); !ok || p <= 0 || p > 10 {
		t.Errorf("p50 = %v,%v; want within (0,10]", p, ok)
	}
	if p, ok := Percentile(start, end, 0.99); !ok || p <= 10 || p > 100 {
		t.Errorf("p99 = %v,%v; want within (10,100]", p, ok)
	}
	// From-zero start snapshot.
	if p, ok := Percentile(obsv.HistogramSnapshot{}, end, 0.50); !ok || p > 10 {
		t.Errorf("from-zero p50 = %v,%v", p, ok)
	}
	// Empty window.
	if _, ok := Percentile(end, end, 0.99); ok {
		t.Error("empty window produced a percentile")
	}
	// Overflow bucket: all new samples beyond the last bound.
	h.Observe(5000)
	end2 := reg.Snapshot().Histograms["t"]
	if _, ok := Percentile(end, end2, 0.99); ok {
		t.Error("overflow-bucket quantile reported as measurable")
	}
}

func TestParseStats(t *testing.T) {
	st, err := parseStats("STATS ops=12 injected=3 faults=4 corrected=5 uncorrectable=6 recovered=7 retired=8 vnow_ms=90 conns=2")
	if err != nil {
		t.Fatal(err)
	}
	if st.Ops != 12 || st.Injected != 3 || st.Corrected != 5 || st.Recovered != 7 ||
		st.Retired != 8 || st.VNowMs != 90 || st.Conns != 2 {
		t.Errorf("parsed: %+v", st)
	}
	for _, bad := range []string{"", "ERROR", "STATS ops", "STATS ops=x"} {
		if _, err := parseStats(bad); err == nil {
			t.Errorf("%q parsed", bad)
		}
	}
}

func TestClassifyGet(t *testing.T) {
	reg := obsv.NewRegistry()
	ct := newCounters(reg)
	const key, size = 5, 64
	okResp := "VALUE 0 " + hexValue(key, 0, size)

	ct.classifyGet(key, 0, size, okResp)
	ct.classifyGet(key, 0, size, "MISS")                              // lost entry
	ct.classifyGet(key, 0, size, "VALUE 9 "+hexValue(key, 9, size))   // version never written
	ct.classifyGet(key, 0, size, "VALUE 0 "+hexValue(key+1, 0, size)) // wrong bytes
	ct.classifyGet(key, 3, size, okResp)                              // valid but stale
	ct.classifyGet(key, 0, size, "SERVER_ERROR uncorrectable")

	snap := reg.Snapshot()
	if got := snap.Counters["kvload_wrong_values_total"]; got != 3 {
		t.Errorf("wrong = %d, want 3", got)
	}
	if got := snap.Counters["kvload_stale_values_total"]; got != 1 {
		t.Errorf("stale = %d, want 1", got)
	}
	if got := snap.Counters["kvload_errors_total"]; got != 1 {
		t.Errorf("errors = %d, want 1", got)
	}
}

func TestVerdictRenderAndJSON(t *testing.T) {
	obs := 0.5
	v := &Verdict{
		SchemaVersion: VerdictSchemaVersion,
		Experiment:    "unit",
		Seed:          7,
		Phases: []PhaseReport{
			phaseWith(PhaseSteady, 10, 9, map[string]float64{SignalErrorRate: 0}),
			phaseWith(PhaseChaos, 10, 9, map[string]float64{SignalErrorRate: 0.5}),
			phaseWith(PhaseRecovery, 0, 0, map[string]float64{}),
		},
		Results: []SLOResult{
			{Name: "er", Signal: SignalErrorRate, Phase: PhaseSteady, Comparison: Max, Observed: new(float64), Pass: true},
			{Name: "er", Signal: SignalErrorRate, Phase: PhaseChaos, Comparison: Max, Observed: &obs, Pass: false,
				Reason: "observed 0.5000 violates max 0.0000"},
			{Name: "er", Signal: SignalErrorRate, Phase: PhaseRecovery, Comparison: Max, Pass: false,
				Reason: "no traffic in window"},
		},
		Pass:    false,
		Samples: 12,
	}
	out := v.Render()
	for _, want := range []string{"steady", "chaos", "recovery", "PASS", "FAIL",
		"no traffic in window", "verdict: FAIL (2/3 objectives violated)"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}

	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(b, &decoded); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"schema_version", "experiment", "seed", "phases", "results", "pass", "samples"} {
		if _, ok := decoded[key]; !ok {
			t.Errorf("verdict JSON missing %q", key)
		}
	}
	if decoded["schema_version"] != float64(1) {
		t.Errorf("schema_version = %v", decoded["schema_version"])
	}
	// A result with no observation must omit the field rather than
	// encode a meaningless zero.
	results := decoded["results"].([]any)
	last := results[2].(map[string]any)
	if _, present := last["observed"]; present {
		t.Error("unmeasured result encoded an observed value")
	}
}
