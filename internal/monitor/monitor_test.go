package monitor

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"hrmsim/internal/simmem"
)

// env is a small simulated setup for monitor tests.
type env struct {
	as   *simmem.AddressSpace
	mon  *Monitor
	heap *simmem.Region
	priv *simmem.Region
}

func newEnv(t *testing.T) *env {
	t.Helper()
	as, err := simmem.New(simmem.Config{PageSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	priv, err := as.AddRegion(simmem.RegionSpec{
		Name: "private", Kind: simmem.RegionPrivate, Size: 4096, Backed: true, ReadOnly: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	heap, err := as.AddRegion(simmem.RegionSpec{
		Name: "heap", Kind: simmem.RegionHeap, Size: 4096,
	})
	if err != nil {
		t.Fatal(err)
	}
	mon := New(as)
	as.AddAccessObserver(mon)
	return &env{as: as, mon: mon, heap: heap, priv: priv}
}

func (e *env) store(t *testing.T, addr simmem.Addr, v byte, at time.Duration) {
	t.Helper()
	e.as.Clock().Set(at)
	if err := e.as.StoreU8(addr, v); err != nil {
		t.Fatal(err)
	}
}

func (e *env) load(t *testing.T, addr simmem.Addr, at time.Duration) {
	t.Helper()
	e.as.Clock().Set(at)
	if _, err := e.as.LoadU8(addr); err != nil {
		t.Fatal(err)
	}
}

func TestSafeUnsafeDurations(t *testing.T) {
	e := newEnv(t)
	a := e.heap.Base() + 100
	e.mon.Watch(a, simmem.RegionHeap)

	// t=1m store; t=3m load (unsafe += 2m); t=4m store (safe += 1m);
	// t=10m load (unsafe += 6m).
	e.store(t, a, 1, 1*time.Minute)
	e.load(t, a, 3*time.Minute)
	e.store(t, a, 2, 4*time.Minute)
	e.load(t, a, 10*time.Minute)

	s, err := e.mon.Stats(a)
	if err != nil {
		t.Fatal(err)
	}
	if s.SafeDur != 1*time.Minute {
		t.Errorf("safe = %v, want 1m", s.SafeDur)
	}
	if s.UnsafeDur != 8*time.Minute {
		t.Errorf("unsafe = %v, want 8m", s.UnsafeDur)
	}
	want := float64(1) / 9
	if math.Abs(s.SafeRatio-want) > 1e-12 {
		t.Errorf("safe ratio = %g, want %g", s.SafeRatio, want)
	}
	if s.Loads != 2 || s.Stores != 2 {
		t.Errorf("loads/stores = %d/%d, want 2/2", s.Loads, s.Stores)
	}
	if !s.HasAccess {
		t.Error("HasAccess = false")
	}
}

func TestWriteOnlyAddressIsFullySafe(t *testing.T) {
	e := newEnv(t)
	a := e.heap.Base()
	e.mon.Watch(a, simmem.RegionHeap)
	e.store(t, a, 1, 1*time.Minute)
	e.store(t, a, 2, 2*time.Minute)
	e.store(t, a, 3, 5*time.Minute)
	s, err := e.mon.Stats(a)
	if err != nil {
		t.Fatal(err)
	}
	if s.SafeRatio != 1 {
		t.Errorf("safe ratio = %g, want 1", s.SafeRatio)
	}
}

func TestReadOnlyAddressIsFullyUnsafe(t *testing.T) {
	e := newEnv(t)
	a := e.priv.Base()
	if err := e.as.WriteRaw(a, []byte{7}); err != nil {
		t.Fatal(err)
	}
	e.mon.Watch(a, simmem.RegionPrivate)
	e.load(t, a, 1*time.Minute)
	e.load(t, a, 2*time.Minute)
	s, err := e.mon.Stats(a)
	if err != nil {
		t.Fatal(err)
	}
	if s.SafeRatio != 0 || !s.HasAccess {
		t.Errorf("safe ratio = %g (HasAccess=%v), want 0 with access", s.SafeRatio, s.HasAccess)
	}
}

func TestSingleReferenceHasNoRatio(t *testing.T) {
	e := newEnv(t)
	a := e.heap.Base() + 8
	e.mon.Watch(a, simmem.RegionHeap)
	e.store(t, a, 1, time.Minute)
	s, err := e.mon.Stats(a)
	if err != nil {
		t.Fatal(err)
	}
	if s.HasAccess {
		t.Error("single reference should not produce a ratio")
	}
	if len(e.mon.SafeRatios(simmem.RegionHeap)) != 0 {
		t.Error("SafeRatios included an address without intervals")
	}
}

func TestRangeAccessTouchesWatchpoint(t *testing.T) {
	e := newEnv(t)
	a := e.heap.Base() + 250 // near a page boundary (page size 256)
	e.mon.Watch(a, simmem.RegionHeap)

	// A 16-byte store crossing the boundary covers the watchpoint.
	e.as.Clock().Set(time.Minute)
	if err := e.as.Store(e.heap.Base()+248, make([]byte, 16)); err != nil {
		t.Fatal(err)
	}
	e.as.Clock().Set(2 * time.Minute)
	buf := make([]byte, 16)
	if err := e.as.Load(e.heap.Base()+248, buf); err != nil {
		t.Fatal(err)
	}
	s, err := e.mon.Stats(a)
	if err != nil {
		t.Fatal(err)
	}
	if s.Stores != 1 || s.Loads != 1 {
		t.Errorf("stores/loads = %d/%d, want 1/1", s.Stores, s.Loads)
	}
	if s.UnsafeDur != time.Minute {
		t.Errorf("unsafe = %v, want 1m", s.UnsafeDur)
	}
}

func TestAccessesNotCoveringWatchpointIgnored(t *testing.T) {
	e := newEnv(t)
	a := e.heap.Base() + 100
	e.mon.Watch(a, simmem.RegionHeap)
	e.store(t, a+1, 1, time.Minute) // adjacent, not covering
	e.load(t, a+1, 2*time.Minute)
	s, err := e.mon.Stats(a)
	if err != nil {
		t.Fatal(err)
	}
	if s.Loads != 0 || s.Stores != 0 {
		t.Errorf("adjacent accesses counted: %+v", s)
	}
}

func TestWatchDuplicateAndUnknownStats(t *testing.T) {
	e := newEnv(t)
	a := e.heap.Base()
	e.mon.Watch(a, simmem.RegionHeap)
	e.mon.Watch(a, simmem.RegionHeap) // duplicate: no-op
	if e.mon.WatchedCount() != 1 {
		t.Errorf("WatchedCount = %d, want 1", e.mon.WatchedCount())
	}
	if _, err := e.mon.Stats(a + 1); err == nil {
		t.Error("Stats of unwatched address succeeded")
	}
}

func TestWatchSampleProportional(t *testing.T) {
	e := newEnv(t)
	e.priv.SetUsed(3000)
	e.heap.SetUsed(1000)
	rng := rand.New(rand.NewSource(1))

	n := e.mon.WatchSample(e.as, rng, 400, nil)
	if n != 400 {
		t.Fatalf("installed %d watchpoints, want 400", n)
	}
	var priv, heap int
	for _, s := range e.mon.AllStats() {
		switch s.Kind {
		case simmem.RegionPrivate:
			priv++
		case simmem.RegionHeap:
			heap++
		}
	}
	ratio := float64(priv) / float64(heap)
	if ratio < 2.0 || ratio > 4.5 {
		t.Errorf("sampling ratio = %.2f, want about 3", ratio)
	}
}

func TestWatchSampleNoUsedBytes(t *testing.T) {
	e := newEnv(t)
	rng := rand.New(rand.NewSource(2))
	if n := e.mon.WatchSample(e.as, rng, 10, nil); n != 0 {
		t.Errorf("installed %d watchpoints with no used bytes", n)
	}
}

func TestRecoverabilityImplicit(t *testing.T) {
	e := newEnv(t)
	// Private region: read-only, backed — fully implicitly recoverable.
	e.priv.SetUsed(1024) // 4 pages
	e.mon.TrackPages(e.priv)
	e.as.Clock().Set(time.Hour)
	rec, err := e.mon.RecoverabilityOf(e.priv)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Implicit != 1 || rec.Either != 1 {
		t.Errorf("implicit = %g, either = %g, want 1,1", rec.Implicit, rec.Either)
	}
	if rec.Pages != 4 {
		t.Errorf("pages = %d, want 4", rec.Pages)
	}
}

func TestRecoverabilityExplicitByWriteInterval(t *testing.T) {
	e := newEnv(t)
	e.heap.SetUsed(512) // 2 pages of 256
	e.mon.TrackPages(e.heap)

	// Page 0: written every minute for an hour — too hot for explicit
	// recovery. Page 1: written twice in an hour — cold enough.
	for i := 0; i < 60; i++ {
		e.store(t, e.heap.Base(), byte(i), time.Duration(i+1)*time.Minute)
	}
	e.store(t, e.heap.Base()+256, 1, 30*time.Minute)
	e.as.Clock().Set(time.Hour)
	e.store(t, e.heap.Base()+256, 2, time.Hour)

	rec, err := e.mon.RecoverabilityOf(e.heap)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Explicit != 0.5 {
		t.Errorf("explicit = %g, want 0.5", rec.Explicit)
	}
	if rec.Implicit != 0 {
		t.Errorf("implicit = %g, want 0 (no backing)", rec.Implicit)
	}
	if rec.Either != 0.5 {
		t.Errorf("either = %g, want 0.5", rec.Either)
	}
	// Page write counts are queryable.
	if w, err := e.mon.PageWrites(e.heap, 0); err != nil || w != 60 {
		t.Errorf("PageWrites(0) = %d, %v; want 60", w, err)
	}
	if _, err := e.mon.PageWrites(e.heap, 99); err == nil {
		t.Error("out-of-range page accepted")
	}
	if _, err := e.mon.PageWrites(e.priv, 0); err == nil {
		t.Error("untracked region accepted")
	}
}

func TestRecoverabilityBackedWrittenPage(t *testing.T) {
	// A backed but writable region: untouched pages are implicit,
	// written pages are not.
	as, err := simmem.New(simmem.Config{PageSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	r, err := as.AddRegion(simmem.RegionSpec{
		Name: "data", Kind: simmem.RegionPrivate, Size: 1024, Backed: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	mon := New(as)
	as.AddAccessObserver(mon)
	mon.TrackPages(r)
	r.SetUsed(512) // 2 pages

	as.Clock().Set(time.Minute)
	if err := as.StoreU8(r.Base(), 1); err != nil { // dirty page 0
		t.Fatal(err)
	}
	as.Clock().Set(time.Hour)
	rec, err := mon.RecoverabilityOf(r)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Implicit != 0.5 {
		t.Errorf("implicit = %g, want 0.5", rec.Implicit)
	}
	// Page 0 written once in an hour: interval 1h >= 5m, so explicit.
	if rec.Explicit != 1 {
		t.Errorf("explicit = %g, want 1", rec.Explicit)
	}
	if rec.Either != 1 {
		t.Errorf("either = %g, want 1", rec.Either)
	}
}

func TestRecoverabilityErrorsAndEmpty(t *testing.T) {
	e := newEnv(t)
	if _, err := e.mon.RecoverabilityOf(e.heap); err == nil {
		t.Error("untracked region accepted")
	}
	e.mon.TrackPages(e.heap)
	e.mon.TrackPages(e.heap) // double-track is a no-op
	rec, err := e.mon.RecoverabilityOf(e.heap)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Pages != 0 {
		t.Errorf("pages = %d for unused region, want 0", rec.Pages)
	}
}

func TestRegionSafeSummaryAndWindow(t *testing.T) {
	e := newEnv(t)
	a1 := e.heap.Base()
	a2 := e.heap.Base() + 64
	e.mon.Watch(a1, simmem.RegionHeap)
	e.mon.Watch(a2, simmem.RegionHeap)

	// The virtual clock is monotone, so timestamps must not go backwards.
	e.store(t, a1, 1, time.Minute)
	e.store(t, a2, 1, time.Minute)
	e.store(t, a1, 2, 2*time.Minute) // a1 ratio 1
	e.load(t, a2, 2*time.Minute)     // a2 ratio 0

	sum, err := e.mon.RegionSafeSummary(simmem.RegionHeap)
	if err != nil {
		t.Fatal(err)
	}
	if sum.N != 2 || sum.Mean != 0.5 {
		t.Errorf("summary = %+v, want N=2 Mean=0.5", sum)
	}
	if e.mon.Window() != 2*time.Minute {
		t.Errorf("Window = %v, want 2m", e.mon.Window())
	}
}
