// Command benchgate compares a custom benchmark metric between a
// committed baseline capture and a fresh run, and fails when the
// current numbers regress beyond a threshold — the regression ratchet
// scripts/bench_compare.sh wires into CI.
//
// By default it ratchets campaign throughput (the trials/s metric
// BenchmarkCampaignLifecycle reports), where higher is better. Pass
// -metric/-direction to ratchet a different reported metric, e.g. the
// adaptive planner's statistical efficiency (the trials-to-target-ci
// metric BenchmarkAdaptiveCampaign reports), where lower is better.
//
// Both inputs are `go test -json` event streams (what scripts/bench.sh
// writes as the dated BENCH_*.json files). Hand-written summary
// documents (pretty-printed JSON, no go-test events) parse to zero
// benchmarks and are rejected as baselines, so the ratchet can only be
// anchored to a real capture.
//
//	benchgate -baseline BENCH_2026-08-06-fastpath.json -current /tmp/now.json
//	benchgate ... -threshold 0.5   # tolerate up to a 50% drop
//	benchgate ... -bench BenchmarkCampaignLifecycle/fresh
//	benchgate ... -bench BenchmarkAdaptiveCampaign \
//	              -metric trials-to-target-ci -direction lower
//	benchgate ... -bench BenchmarkSECDEDGap \
//	              -metric secded_vs_noecc_ratio -direction lower -max 1.15
//
// Exit status: 0 when every benchmark common to both captures is
// within threshold, 1 on any regression or unusable input.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// metricRe builds the extractor for a custom benchmark metric on a
// result line, e.g. "... 22.49 trials/s ..." for metric "trials/s".
func metricRe(metric string) *regexp.Regexp {
	return regexp.MustCompile(`([0-9]+(?:\.[0-9]+)?(?:[eE][+-]?[0-9]+)?)\s+` + regexp.QuoteMeta(metric) + `(?:\s|$)`)
}

// event is the subset of a `go test -json` stream record the gate
// reads. The benchmark name line and its numbers arrive as separate
// consecutive Output events, but both carry the Test field, so keying
// on Test sidesteps the join entirely.
type event struct {
	Action string `json:"Action"`
	Test   string `json:"Test"`
	Output string `json:"Output"`
}

// parseBenchFile extracts benchmark → metric value from a go test
// -json stream. Non-JSONL files (or streams without benchmark output)
// yield an empty map, never an error: the caller decides whether empty
// is fatal. A benchmark reported more than once keeps the last value.
func parseBenchFile(path string, re *regexp.Regexp) (map[string]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer func() { _ = f.Close() }()
	out := make(map[string]float64)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Bytes()
		var ev event
		if err := json.Unmarshal(line, &ev); err != nil {
			continue // not a go-test event stream line (e.g. a hand-written summary doc)
		}
		if ev.Action != "output" || ev.Test == "" {
			continue
		}
		m := re.FindStringSubmatch(ev.Output)
		if m == nil {
			continue
		}
		v, err := strconv.ParseFloat(m[1], 64)
		if err != nil {
			continue
		}
		out[ev.Test] = v
	}
	return out, sc.Err()
}

// regression is one benchmark whose current metric moved in the bad
// direction beyond the threshold.
type regression struct {
	Name              string
	Baseline, Current float64
	Drop              float64 // fractional regression, e.g. 0.25 = 25% worse
}

// compare evaluates every benchmark present in both captures whose
// name starts with prefix. lowerBetter selects the regression sense:
// false means a drop in the metric regresses (throughput), true means
// a rise does (cost metrics like trials-to-target-ci). It returns the
// regressions and the names compared (sorted), so the caller can
// render a full table.
func compare(baseline, current map[string]float64, prefix string, threshold float64, lowerBetter bool) (regs []regression, compared []string) {
	for name, base := range baseline {
		if !strings.HasPrefix(name, prefix) || base <= 0 {
			continue
		}
		cur, ok := current[name]
		if !ok {
			continue
		}
		compared = append(compared, name)
		drop := 1 - cur/base
		if lowerBetter {
			drop = cur/base - 1
		}
		if drop > threshold {
			regs = append(regs, regression{Name: name, Baseline: base, Current: cur, Drop: drop})
		}
	}
	sort.Strings(compared)
	sort.Slice(regs, func(i, j int) bool { return regs[i].Name < regs[j].Name })
	return regs, compared
}

func run() error {
	baselinePath := flag.String("baseline", "", "committed go test -json capture to ratchet against (required)")
	currentPath := flag.String("current", "", "fresh go test -json capture to check (required)")
	threshold := flag.Float64("threshold", 0.10, "maximum tolerated fractional regression (0.10 = 10%)")
	prefix := flag.String("bench", "BenchmarkCampaignLifecycle", "benchmark name prefix to compare")
	metric := flag.String("metric", "trials/s", "custom benchmark metric to compare")
	direction := flag.String("direction", "higher", "which way is better for the metric: higher (throughput) or lower (cost, e.g. trials-to-target-ci)")
	maxVal := flag.Float64("max", 0, "absolute cap on the current metric value (0 = no cap): fails when any matching benchmark exceeds it regardless of the baseline, for fixed targets like secded_vs_noecc_ratio <= 1.15")
	flag.Parse()
	if *baselinePath == "" || *currentPath == "" {
		return fmt.Errorf("both -baseline and -current are required")
	}
	var lowerBetter bool
	switch *direction {
	case "higher":
	case "lower":
		lowerBetter = true
	default:
		return fmt.Errorf("-direction must be higher or lower, got %q", *direction)
	}
	re := metricRe(*metric)
	baseline, err := parseBenchFile(*baselinePath, re)
	if err != nil {
		return fmt.Errorf("reading baseline: %w", err)
	}
	current, err := parseBenchFile(*currentPath, re)
	if err != nil {
		return fmt.Errorf("reading current capture: %w", err)
	}
	if len(baseline) == 0 {
		return fmt.Errorf("baseline %s holds no %s benchmark events (hand-written summary? pick a scripts/bench.sh capture)", *baselinePath, *metric)
	}
	if len(current) == 0 {
		return fmt.Errorf("current capture %s holds no %s benchmark events", *currentPath, *metric)
	}
	regs, compared := compare(baseline, current, *prefix, *threshold, lowerBetter)
	if len(compared) == 0 {
		return fmt.Errorf("no %s* benchmarks common to both captures", *prefix)
	}
	for _, name := range compared {
		delta := 100 * (current[name]/baseline[name] - 1)
		fmt.Printf("%-50s %10.1f -> %10.1f %s  (%+.1f%%)\n",
			name, baseline[name], current[name], *metric, delta)
	}
	if len(regs) > 0 {
		fmt.Printf("\nbenchgate: %d benchmark(s) regressed more than %.0f%% vs %s:\n",
			len(regs), *threshold*100, *baselinePath)
		for _, r := range regs {
			fmt.Printf("  %s: %.1f -> %.1f %s (%.1f%% worse)\n", r.Name, r.Baseline, r.Current, *metric, r.Drop*100)
		}
		return fmt.Errorf("%s regression beyond %.0f%%", *metric, *threshold*100)
	}
	// The absolute cap is independent of the ratchet: it binds every
	// matching benchmark in the current capture, baseline or not.
	if *maxVal > 0 {
		var over []string
		for name, v := range current {
			if strings.HasPrefix(name, *prefix) && v > *maxVal {
				over = append(over, fmt.Sprintf("  %s: %.3f %s > cap %.3f", name, v, *metric, *maxVal))
			}
		}
		if len(over) > 0 {
			sort.Strings(over)
			fmt.Printf("\nbenchgate: %d benchmark(s) over the absolute %s cap:\n%s\n",
				len(over), *metric, strings.Join(over, "\n"))
			return fmt.Errorf("%s exceeds the absolute cap %.3f", *metric, *maxVal)
		}
	}
	fmt.Printf("\nbenchgate: %d benchmark(s) within %.0f%% of %s\n", len(compared), *threshold*100, *baselinePath)
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(1)
	}
}
