package main

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// captureStdout runs fn with os.Stdout redirected and returns what it
// printed.
func captureStdout(t *testing.T, fn func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	defer func() { os.Stdout = old }()
	done := make(chan string)
	go func() {
		var buf bytes.Buffer
		_, _ = io.Copy(&buf, r)
		done <- buf.String()
	}()
	ferr := fn()
	_ = w.Close()
	out := <-done
	if ferr != nil {
		t.Fatalf("command failed: %v (output %q)", ferr, out)
	}
	return out
}

// decodeEnvelope parses one -json document and checks the envelope
// contract: schema_version 1, tool hrmsim, the expected command, and a
// result object.
func decodeEnvelope(t *testing.T, out, command string) map[string]any {
	t.Helper()
	var env map[string]any
	if err := json.Unmarshal([]byte(out), &env); err != nil {
		t.Fatalf("-json output is not valid JSON: %v\n%s", err, out)
	}
	if v, ok := env["schema_version"].(float64); !ok || v != float64(schemaVersion) {
		t.Errorf("schema_version = %v", env["schema_version"])
	}
	if env["tool"] != "hrmsim" {
		t.Errorf("tool = %v", env["tool"])
	}
	if env["command"] != command {
		t.Errorf("command = %v, want %s", env["command"], command)
	}
	res, ok := env["result"].(map[string]any)
	if !ok {
		t.Fatalf("result is not an object: %v", env["result"])
	}
	return res
}

func TestCharacterizeJSONRoundTrip(t *testing.T) {
	out := captureStdout(t, func() error {
		return run([]string{"characterize", "-app", "kvstore", "-size", "small",
			"-trials", "20", "-json"})
	})
	res := decodeEnvelope(t, out, "characterize")
	for _, key := range []string{"app", "error", "region", "trials",
		"crash_probability", "crash_ci_low", "crash_ci_high",
		"tolerated_probability", "incorrect_per_billion",
		"max_incorrect_per_billion", "outcomes", "crash_minutes",
		"incorrect_minutes", "all_incorrect_minutes"} {
		if _, ok := res[key]; !ok {
			t.Errorf("result missing documented key %q", key)
		}
	}
	if res["app"] != "kvstore" || res["trials"] != float64(20) {
		t.Errorf("result identity fields: app=%v trials=%v", res["app"], res["trials"])
	}
	outcomes, ok := res["outcomes"].(map[string]any)
	if !ok {
		t.Fatalf("outcomes: %v", res["outcomes"])
	}
	var total float64
	for _, n := range outcomes {
		total += n.(float64)
	}
	if total != 20 {
		t.Errorf("outcomes sum to %g, want 20", total)
	}

	// The instrumented campaign metrics ride along in the envelope.
	var env struct {
		Metrics struct {
			Counters   map[string]int64          `json:"counters"`
			Histograms map[string]map[string]any `json:"histograms"`
		} `json:"metrics"`
	}
	if err := json.Unmarshal([]byte(out), &env); err != nil {
		t.Fatal(err)
	}
	if env.Metrics.Counters["campaign_trials_total"] != 20 {
		t.Errorf("campaign_trials_total = %d", env.Metrics.Counters["campaign_trials_total"])
	}
	if _, ok := env.Metrics.Histograms["campaign_trial_wall_ms"]; !ok {
		t.Error("campaign_trial_wall_ms histogram missing from metrics")
	}
}

func TestAllSubcommandsEmitValidJSON(t *testing.T) {
	cases := map[string][]string{
		"profile":     {"profile", "-app", "kvstore", "-size", "small", "-watchpoints", "60", "-json"},
		"designspace": {"designspace", "-json"},
		"plan":        {"plan", "-target", "0.999", "-json"},
		"tolerable":   {"tolerable", "-json"},
		"lifetime":    {"lifetime", "-hours", "1", "-errors", "50000", "-json"},
		"tables":      {"tables", "-t", "table1", "-trials", "10", "-json"},
	}
	for command, args := range cases {
		out := captureStdout(t, func() error { return run(args) })
		res := decodeEnvelope(t, out, command)
		if len(res) == 0 {
			t.Errorf("%s: empty result", command)
		}
	}
}

func TestCharacterizeProgressGoesToStderr(t *testing.T) {
	oldErr := os.Stderr
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stderr = w
	done := make(chan string)
	go func() {
		var buf bytes.Buffer
		_, _ = io.Copy(&buf, r)
		done <- buf.String()
	}()
	out := captureStdout(t, func() error {
		return run([]string{"characterize", "-app", "kvstore", "-size", "small",
			"-trials", "20", "-json", "-progress"})
	})
	_ = w.Close()
	os.Stderr = oldErr
	errOut := <-done

	if !strings.Contains(errOut, "characterize: 20/20 trials (100%)") {
		t.Errorf("progress line missing from stderr: %q", errOut)
	}
	// stdout stays pure JSON even with -progress.
	decodeEnvelope(t, out, "characterize")
}

func TestRunDispatch(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("no subcommand accepted")
	}
	if err := run([]string{"frobnicate"}); err == nil {
		t.Error("unknown subcommand accepted")
	}
	if err := run([]string{"help"}); err != nil {
		t.Errorf("help: %v", err)
	}
}

func TestCmdCharacterizeSmall(t *testing.T) {
	err := run([]string{"characterize", "-app", "kvstore", "-size", "small", "-trials", "20"})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCmdCharacterizeBadFlags(t *testing.T) {
	if err := run([]string{"characterize", "-size", "jumbo"}); err == nil {
		t.Error("bad size accepted")
	}
	if err := run([]string{"characterize", "-app", "nope", "-trials", "1"}); err == nil {
		t.Error("bad app accepted")
	}
}

func TestCmdProfileSmall(t *testing.T) {
	err := run([]string{"profile", "-app", "kvstore", "-size", "small", "-watchpoints", "60"})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCmdDesignSpaceAndPlanAndTolerable(t *testing.T) {
	if err := run([]string{"designspace"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"plan", "-target", "0.999"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"tolerable"}); err != nil {
		t.Fatal(err)
	}
}

func TestCmdTablesSingle(t *testing.T) {
	if err := run([]string{"tables", "-t", "table1", "-trials", "10"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"tables", "-t", "fig99", "-trials", "10"}); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestCmdLifetimeShort(t *testing.T) {
	if err := run([]string{"lifetime", "-hours", "1", "-errors", "50000"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"lifetime", "-protection", "asbestos"}); err == nil {
		t.Error("bad protection accepted")
	}
}

// TestCmdCharacterizeJournalResume: the -journal / -resume flags write a
// trial journal and replay it, with the resumed trial count surfaced in
// the -json result.
func TestCmdCharacterizeJournalResume(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "trials.jsonl")
	args := []string{"characterize", "-app", "kvstore", "-size", "small",
		"-trials", "15", "-seed", "7", "-json"}

	out := captureStdout(t, func() error {
		return run(append(args, "-journal", journal))
	})
	base := decodeEnvelope(t, out, "characterize")
	if base["completed_trials"] != float64(15) {
		t.Fatalf("completed_trials = %v", base["completed_trials"])
	}
	if _, err := os.Stat(journal); err != nil {
		t.Fatalf("journal not written: %v", err)
	}

	out = captureStdout(t, func() error {
		return run(append(args, "-resume", journal))
	})
	res := decodeEnvelope(t, out, "characterize")
	if res["resumed_trials"] != float64(15) {
		t.Errorf("resumed_trials = %v, want 15", res["resumed_trials"])
	}
	for _, key := range []string{"crash_probability", "tolerated_probability", "outcomes"} {
		if !reflect.DeepEqual(res[key], base[key]) {
			t.Errorf("resumed %s = %v, baseline %v", key, res[key], base[key])
		}
	}

	// A mismatched campaign identity is rejected.
	if err := run([]string{"characterize", "-app", "kvstore", "-size", "small",
		"-trials", "15", "-seed", "8", "-resume", journal, "-json"}); err == nil {
		t.Error("resume with a different seed accepted")
	}
}

// TestCmdCharacterizeWatchdogFlags: the watchdog flags parse and a
// generous budget leaves results untouched.
func TestCmdCharacterizeWatchdogFlags(t *testing.T) {
	out := captureStdout(t, func() error {
		return run([]string{"characterize", "-app", "kvstore", "-size", "small",
			"-trials", "10", "-trial-timeout", "1m", "-trial-op-budget", "1000000000", "-json"})
	})
	res := decodeEnvelope(t, out, "characterize")
	if res["completed_trials"] != float64(10) {
		t.Errorf("completed_trials = %v, want 10", res["completed_trials"])
	}
	if _, ok := res["aborted_trials"]; ok {
		t.Errorf("aborted_trials = %v, want omitted (zero)", res["aborted_trials"])
	}
}
