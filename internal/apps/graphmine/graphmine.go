// Package graphmine implements a GraphLab-style graph-mining framework on
// simulated memory — the third workload of the paper's case study. Like
// GraphLab it separates the engine (CSR traversal, double-buffered
// scores, chunked scheduling) from the vertex program: TunkRank (the
// paper's Twitter-influence workload) and PageRank are provided.
//
// The whole dataset lives in the heap region as a compressed sparse row
// (CSR) structure over in-edges plus per-node out-degrees and two score
// buffers (current and next iteration). Each request processes one chunk
// of nodes for one iteration; the final request ranks the 100 most
// influential users, which is the output the paper compares against the
// golden run.
//
// TunkRank update: influence(u) = Σ over followers v of u of
// (1 + p·influence(v)) / outdeg(v).
//
// Heap layout (region-relative):
//
//	[offsets:  (N+1) × u32]  CSR row starts into the followers array
//	[followers: E × u32]     follower node IDs (in-edges)
//	[outdeg:   N × u32]
//	[scoreA:   N × f64]
//	[scoreB:   N × f64]
package graphmine

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"hrmsim/internal/apps"
	"hrmsim/internal/simmem"
	"hrmsim/internal/trace"
)

// Algorithm selects the vertex program the framework runs — like
// GraphLab, the engine (CSR traversal, double-buffered scores, chunked
// scheduling) is independent of the update rule.
type Algorithm int

// Vertex programs.
const (
	// TunkRank computes Twitter influence:
	//   I(u) = Σ_{v follows u} (1 + p·I(v)) / outdeg(v).
	TunkRank Algorithm = iota
	// PageRank computes the classic damped random-surfer rank:
	//   R(u) = (1−d)/N + d · Σ_{v→u} R(v) / outdeg(v).
	PageRank
)

// String returns the algorithm name.
func (a Algorithm) String() string {
	switch a {
	case TunkRank:
		return "tunkrank"
	case PageRank:
		return "pagerank"
	default:
		return fmt.Sprintf("algorithm(%d)", int(a))
	}
}

// Config parameterizes a graphmine build.
type Config struct {
	// Seed drives graph generation.
	Seed int64
	// Nodes is the user count.
	Nodes int
	// AvgDeg is the mean out-degree.
	AvgDeg int
	// Algorithm is the vertex program (default TunkRank, the paper's
	// workload).
	Algorithm Algorithm
	// Iterations is the number of TunkRank sweeps.
	Iterations int
	// ChunkNodes is the number of nodes one request processes.
	ChunkNodes int
	// Damping is the retweet probability p in the TunkRank update.
	Damping float64
	// TopK is the influencer list length compared as output (the paper
	// uses 100).
	TopK int
	// RequestCost advances the virtual clock per request.
	RequestCost time.Duration
	// OpBudget caps simulated memory operations per request.
	OpBudget int
	// StackSize and PageSize optionally override region sizing.
	StackSize int
	PageSize  int
	// CacheLines, when nonzero, enables the write-back CPU cache model
	// in front of memory (the paper notes caches delay error visibility;
	// the default off matches its conservative methodology).
	CacheLines int
	// HeapCodec / StackCodec optionally protect regions.
	HeapCodec, StackCodec simmem.Codec
	// HeapMC / StackMC install software responses.
	HeapMC, StackMC simmem.MCHandler
}

// DefaultConfig returns a laptop-scale configuration.
func DefaultConfig(seed int64) Config {
	return Config{
		Seed:        seed,
		Nodes:       2048,
		AvgDeg:      8,
		Iterations:  4,
		ChunkNodes:  512,
		Damping:     0.5,
		TopK:        100,
		RequestCost: 50 * time.Millisecond,
		OpBudget:    2_000_000,
	}
}

// Builder pre-generates the graph; Build serializes it per trial.
type Builder struct {
	cfg       Config
	followers [][]int32 // in-adjacency: followers[u] lists v that follow u
	outdeg    []uint32
	edges     int
}

var _ apps.Builder = (*Builder)(nil)

// NewBuilder generates the synthetic follower graph.
func NewBuilder(cfg Config) (*Builder, error) {
	switch {
	case cfg.Nodes <= 1, cfg.AvgDeg <= 0:
		return nil, fmt.Errorf("graphmine: need nodes > 1 (%d) and degree > 0 (%d)", cfg.Nodes, cfg.AvgDeg)
	case cfg.Iterations <= 0, cfg.ChunkNodes <= 0:
		return nil, fmt.Errorf("graphmine: need positive iterations (%d) and chunk (%d)", cfg.Iterations, cfg.ChunkNodes)
	case cfg.TopK <= 0 || cfg.TopK > cfg.Nodes:
		return nil, fmt.Errorf("graphmine: topK %d outside [1,%d]", cfg.TopK, cfg.Nodes)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	g, err := trace.GenGraph(rng, cfg.Nodes, cfg.AvgDeg)
	if err != nil {
		return nil, fmt.Errorf("graphmine: generating graph: %w", err)
	}
	b := &Builder{
		cfg:       cfg,
		followers: make([][]int32, cfg.Nodes),
		outdeg:    make([]uint32, cfg.Nodes),
	}
	for u, out := range g.Out {
		b.outdeg[u] = uint32(len(out))
		for _, v := range out {
			b.followers[v] = append(b.followers[v], int32(u))
			b.edges++
		}
	}
	return b, nil
}

// AppName implements apps.Builder.
func (b *Builder) AppName() string { return "graphmine" }

// Config returns the builder's configuration.
func (b *Builder) Config() Config { return b.cfg }

// App is one graphmine instance.
type App struct {
	cfg    Config
	as     *simmem.AddressSpace
	heap   *simmem.Region
	stack  *simmem.Stack
	chunks int // chunks per iteration

	// Two access streams, one accessor each: the edge loop alternates
	// between the stack-frame accumulator and heap graph data on every
	// edge, so a single one-entry region cache would thrash on the
	// alternation (see simmem.Accessor).
	frameAcc *simmem.Accessor
	dataAcc  *simmem.Accessor

	// Layout offsets (region-relative).
	offsetsOff   int
	followersOff int
	outdegOff    int
	scoreAOff    int
	scoreBOff    int

	// Snapshot state (apps.SnapshotApp): memory capture plus stack
	// depth — the layout offsets above are immutable after Build.
	snapMem *simmem.Snapshot
	snapSP  int
}

var _ apps.App = (*App)(nil)
var _ apps.SnapshotApp = (*App)(nil)

// BuildSnapshot implements apps.SnapshotBuilder.
func (b *Builder) BuildSnapshot() (apps.SnapshotApp, error) {
	app, err := b.Build()
	if err != nil {
		return nil, err
	}
	return app.(*App), nil
}

var _ apps.SnapshotBuilder = (*Builder)(nil)

// Snapshot implements apps.SnapshotApp.
func (a *App) Snapshot() error {
	a.snapMem = a.as.Snapshot()
	a.snapSP = a.stack.Depth()
	return nil
}

// Reset implements apps.SnapshotApp.
func (a *App) Reset() (int, error) {
	if a.snapMem == nil {
		return 0, fmt.Errorf("graphmine: Reset before Snapshot")
	}
	n, err := a.snapMem.Restore()
	if err != nil {
		return 0, fmt.Errorf("graphmine: %w", err)
	}
	if err := a.stack.Rewind(a.snapSP); err != nil {
		return 0, err
	}
	return n, nil
}

// Build implements apps.Builder.
func (b *Builder) Build() (apps.App, error) {
	cfg := b.cfg
	n := cfg.Nodes
	offsetsBytes := (n + 1) * 4
	followersBytes := b.edges * 4
	outdegBytes := n * 4
	scoresBytes := n * 8
	used := offsetsBytes + followersBytes + outdegBytes + 2*scoresBytes

	as, err := simmem.New(simmem.Config{PageSize: cfg.PageSize})
	if err != nil {
		return nil, fmt.Errorf("graphmine: creating address space: %w", err)
	}
	if cfg.CacheLines > 0 {
		if err := as.EnableCache(cfg.CacheLines); err != nil {
			return nil, err
		}
	}
	heap, err := as.AddRegion(simmem.RegionSpec{
		Name: "heap", Kind: simmem.RegionHeap, Size: used + 4096,
		Codec: cfg.HeapCodec, MC: cfg.HeapMC,
	})
	if err != nil {
		return nil, fmt.Errorf("graphmine: mapping heap: %w", err)
	}
	stackSize := cfg.StackSize
	if stackSize == 0 {
		stackSize = 16 << 10
	}
	stackRegion, err := as.AddRegion(simmem.RegionSpec{
		Name: "stack", Kind: simmem.RegionStack, Size: stackSize,
		Codec: cfg.StackCodec, MC: cfg.StackMC,
	})
	if err != nil {
		return nil, fmt.Errorf("graphmine: mapping stack: %w", err)
	}

	// Mark the request handler's frame bytes as live stack (see the
	// equivalent note in websearch).
	stackRegion.SetUsed(frameBytes)

	app := &App{
		cfg:          cfg,
		as:           as,
		heap:         heap,
		stack:        simmem.NewStack(stackRegion),
		chunks:       (n + cfg.ChunkNodes - 1) / cfg.ChunkNodes,
		offsetsOff:   0,
		followersOff: offsetsBytes,
		outdegOff:    offsetsBytes + followersBytes,
		scoreAOff:    offsetsBytes + followersBytes + outdegBytes,
		scoreBOff:    offsetsBytes + followersBytes + outdegBytes + scoresBytes,
	}
	app.frameAcc = as.NewAccessor()
	app.dataAcc = as.NewAccessor()

	buf := make([]byte, used)
	cursor := 0
	for u := 0; u <= n; u++ {
		putU32(buf[u*4:], uint32(app.followersOff+cursor*4))
		if u < n {
			cursor += len(b.followers[u])
		}
	}
	w := app.followersOff
	for u := 0; u < n; u++ {
		for _, v := range b.followers[u] {
			putU32(buf[w:], uint32(v))
			w += 4
		}
	}
	initScore := 1.0 // TunkRank starts every user at unit influence
	if cfg.Algorithm == PageRank {
		initScore = 1.0 / float64(n)
	}
	for u := 0; u < n; u++ {
		putU32(buf[app.outdegOff+u*4:], b.outdeg[u])
		putU64(buf[app.scoreAOff+u*8:], f64bits(initScore))
		putU64(buf[app.scoreBOff+u*8:], f64bits(0))
	}
	if err := as.WriteRaw(heap.Base(), buf); err != nil {
		return nil, fmt.Errorf("graphmine: writing graph: %w", err)
	}
	heap.SetUsed(used)
	return app, nil
}

// Name implements apps.App.
func (a *App) Name() string { return "graphmine" }

// Space implements apps.App.
func (a *App) Space() *simmem.AddressSpace { return a.as }

// NumRequests implements apps.App: one request per (iteration, chunk),
// plus the final top-K ranking request.
func (a *App) NumRequests() int { return a.cfg.Iterations*a.chunks + 1 }

// Stack-frame layout.
const (
	frNode     = 0  // u64 current node
	frEdge     = 8  // u64 current follower-array byte offset
	frEdgeEnd  = 16 // u64 end offset
	frAcc      = 24 // f64 influence accumulator
	frameBytes = 48
)

// Serve implements apps.App.
func (a *App) Serve(i int) (resp apps.Response, err error) {
	if i < 0 || i >= a.NumRequests() {
		return apps.Response{}, fmt.Errorf("graphmine: request %d out of range", i)
	}
	a.as.Clock().Advance(a.cfg.RequestCost)
	budget := apps.NewBudget(a.cfg.OpBudget)
	if i == a.NumRequests()-1 {
		return a.rankTop(budget)
	}

	iter := i / a.chunks
	chunk := i % a.chunks
	// Even iterations read A and write B; odd iterations the reverse.
	srcOff, dstOff := a.scoreAOff, a.scoreBOff
	if iter%2 == 1 {
		srcOff, dstOff = a.scoreBOff, a.scoreAOff
	}

	frame, err := a.stack.Push(frameBytes)
	if err != nil {
		return apps.Response{}, fmt.Errorf("graphmine: pushing frame: %w", err)
	}
	defer func() {
		if perr := a.stack.Pop(frame); perr != nil && err == nil {
			err = perr
		}
	}()

	fb := frame.Base
	first := chunk * a.cfg.ChunkNodes
	last := first + a.cfg.ChunkNodes
	if last > a.cfg.Nodes {
		last = a.cfg.Nodes
	}
	for u := first; u < last; u++ {
		if err := a.frameAcc.StoreU64(fb+frNode, uint64(u)); err != nil {
			return apps.Response{}, err
		}
		// Row bounds from the CSR offsets array.
		rowStart, err := a.dataAcc.LoadU32(a.heap.Base() + simmem.Addr(a.offsetsOff+u*4))
		if err != nil {
			return apps.Response{}, err
		}
		rowEnd, err := a.dataAcc.LoadU32(a.heap.Base() + simmem.Addr(a.offsetsOff+(u+1)*4))
		if err != nil {
			return apps.Response{}, err
		}
		if err := a.frameAcc.StoreU64(fb+frEdge, uint64(rowStart)); err != nil {
			return apps.Response{}, err
		}
		if err := a.frameAcc.StoreU64(fb+frEdgeEnd, uint64(rowEnd)); err != nil {
			return apps.Response{}, err
		}
		if err := a.frameAcc.StoreF64(fb+frAcc, 0); err != nil {
			return apps.Response{}, err
		}
		for {
			if err := budget.Spend(1); err != nil {
				return apps.Response{}, err
			}
			e, err := a.frameAcc.LoadU64(fb + frEdge)
			if err != nil {
				return apps.Response{}, err
			}
			eEnd, err := a.frameAcc.LoadU64(fb + frEdgeEnd)
			if err != nil {
				return apps.Response{}, err
			}
			if e >= eEnd {
				break
			}
			v, err := a.dataAcc.LoadU32(a.heap.Base() + simmem.Addr(e))
			if err != nil {
				return apps.Response{}, err
			}
			// Follower influence and out-degree; a corrupted follower
			// ID indexes wherever it points (wrong data or a fault).
			inf, err := a.dataAcc.LoadF64(a.heap.Base() + simmem.Addr(srcOff+int(v)*8))
			if err != nil {
				return apps.Response{}, err
			}
			deg, err := a.dataAcc.LoadU32(a.heap.Base() + simmem.Addr(a.outdegOff+int(v)*4))
			if err != nil {
				return apps.Response{}, err
			}
			acc, err := a.frameAcc.LoadF64(fb + frAcc)
			if err != nil {
				return apps.Response{}, err
			}
			contrib := 0.0
			if deg != 0 {
				switch a.cfg.Algorithm {
				case PageRank:
					contrib = inf / float64(deg)
				default: // TunkRank
					contrib = (1 + a.cfg.Damping*inf) / float64(deg)
				}
			}
			if err := a.frameAcc.StoreF64(fb+frAcc, acc+contrib); err != nil {
				return apps.Response{}, err
			}
			if err := a.frameAcc.StoreU64(fb+frEdge, e+4); err != nil {
				return apps.Response{}, err
			}
		}
		acc, err := a.frameAcc.LoadF64(fb + frAcc)
		if err != nil {
			return apps.Response{}, err
		}
		node, err := a.frameAcc.LoadU64(fb + frNode)
		if err != nil {
			return apps.Response{}, err
		}
		if node >= uint64(a.cfg.Nodes) {
			return apps.Response{}, apps.Assertf("node %d out of range", node)
		}
		score := acc
		if a.cfg.Algorithm == PageRank {
			score = (1-a.cfg.Damping)/float64(a.cfg.Nodes) + a.cfg.Damping*acc
		}
		if err := a.dataAcc.StoreF64(a.heap.Base()+simmem.Addr(dstOff+int(node)*8), score); err != nil {
			return apps.Response{}, err
		}
	}
	// Intermediate requests have no client-visible output.
	return apps.Response{}, nil
}

// rankTop produces the final top-K influencer list.
func (a *App) rankTop(budget *apps.Budget) (apps.Response, error) {
	srcOff := a.scoreAOff
	if a.cfg.Iterations%2 == 1 {
		srcOff = a.scoreBOff
	}
	type scored struct {
		node  int
		score float64
	}
	all := make([]scored, a.cfg.Nodes)
	for u := 0; u < a.cfg.Nodes; u++ {
		if err := budget.Spend(1); err != nil {
			return apps.Response{}, err
		}
		s, err := a.dataAcc.LoadF64(a.heap.Base() + simmem.Addr(srcOff+u*8))
		if err != nil {
			return apps.Response{}, err
		}
		all[u] = scored{node: u, score: s}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].score != all[j].score {
			return all[i].score > all[j].score
		}
		return all[i].node < all[j].node
	})
	d := apps.NewDigest()
	for k := 0; k < a.cfg.TopK; k++ {
		d.AddU64(uint64(all[k].node))
		d.AddU32(quantize(all[k].score))
	}
	return d.Response(), nil
}

// quantize rounds a score for digesting so sub-ULP float noise does not
// count as incorrect output.
func quantize(s float64) uint32 {
	return uint32(int32(s * 1024))
}

func putU32(b []byte, v uint32) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
}

func putU64(b []byte, v uint64) {
	putU32(b, uint32(v))
	putU32(b[4:], uint32(v>>32))
}

func f64bits(f float64) uint64 { return math.Float64bits(f) }
