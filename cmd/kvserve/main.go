// Command kvserve runs the simulated in-memory key–value store behind a
// tiny memcached-like TCP text protocol, with memory errors arriving on a
// virtual clock — a live demonstration of what a given error rate does to
// an unprotected (or protected) cache node.
//
// Protocol (one command per line):
//
//	get <key>            -> VALUE <version> <hex bytes> | MISS | SERVER_ERROR ...
//	set <key> <version>  -> STORED | SERVER_ERROR ...
//	inject <soft|hard>   -> INJECTED <region> (one random error now)
//	stats                -> counters (ops, errors injected, faults)
//	quit                 -> closes the connection
//
// Flags select the protection technique, so the same session can be run
// with -ecc secded to watch the errors disappear.
package main

import (
	"bufio"
	"encoding/hex"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net"
	"strconv"
	"strings"
	"time"

	"hrmsim/internal/apps/kvstore"
	"hrmsim/internal/ecc"
	"hrmsim/internal/faults"
	"hrmsim/internal/inject"
	"hrmsim/internal/simmem"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:11222", "listen address")
	keys := flag.Int("keys", 1024, "pre-populated key count")
	eccName := flag.String("ecc", "none", "heap protection: none|parity|secded|chipkill")
	seed := flag.Int64("seed", 1, "random seed")
	once := flag.Bool("once", false, "serve a single connection then exit (for scripted demos)")
	flag.Parse()

	srv, err := newServer(*keys, *eccName, *seed)
	if err != nil {
		log.Fatalf("kvserve: %v", err)
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("kvserve: %v", err)
	}
	defer func() { _ = ln.Close() }()
	log.Printf("kvserve: listening on %s (heap protection: %s, %d keys)", ln.Addr(), *eccName, *keys)

	for {
		conn, err := ln.Accept()
		if err != nil {
			log.Printf("kvserve: accept: %v", err)
			return
		}
		srv.handle(conn) // single-threaded: one simulated memory, one server loop
		if *once {
			return
		}
	}
}

// server wraps one kvstore instance.
type server struct {
	app      *kvstore.App
	rng      *rand.Rand
	ops      uint64
	injected uint64
	faults   uint64
}

func newServer(keys int, eccName string, seed int64) (*server, error) {
	var codec simmem.Codec
	switch eccName {
	case "none":
	case "parity":
		codec = ecc.NewParity()
	case "secded":
		codec = ecc.NewSECDED()
	case "chipkill":
		codec = ecc.NewChipkill()
	default:
		return nil, fmt.Errorf("unknown ecc %q", eccName)
	}
	cfg := kvstore.DefaultConfig(seed)
	cfg.Keys = keys
	cfg.Ops = 1 // the recorded workload is unused; the network drives requests
	cfg.HeapCodec = codec
	cfg.RequestCost = time.Millisecond
	b, err := kvstore.NewBuilder(cfg)
	if err != nil {
		return nil, err
	}
	app, err := b.Build()
	if err != nil {
		return nil, err
	}
	return &server{app: app.(*kvstore.App), rng: rand.New(rand.NewSource(seed))}, nil
}

// handle serves one connection.
func (s *server) handle(conn net.Conn) {
	defer func() { _ = conn.Close() }()
	sc := bufio.NewScanner(conn)
	w := bufio.NewWriter(conn)
	defer func() { _ = w.Flush() }()
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if line == "quit" {
			return
		}
		resp := s.dispatch(line)
		fmt.Fprintln(w, resp)
		if err := w.Flush(); err != nil {
			return
		}
	}
}

// dispatch executes one protocol command.
func (s *server) dispatch(line string) string {
	parts := strings.Fields(line)
	s.app.Space().Clock().Advance(time.Millisecond)
	switch parts[0] {
	case "get":
		if len(parts) != 2 {
			return "CLIENT_ERROR usage: get <key>"
		}
		key, err := strconv.ParseUint(parts[1], 10, 64)
		if err != nil {
			return "CLIENT_ERROR bad key"
		}
		s.ops++
		version, val, err := s.app.Get(key)
		if err != nil {
			if simmem.IsFault(err) {
				s.faults++
				return "SERVER_ERROR memory fault: " + err.Error()
			}
			return "MISS"
		}
		return fmt.Sprintf("VALUE %d %s", version, hex.EncodeToString(val))
	case "set":
		if len(parts) != 3 {
			return "CLIENT_ERROR usage: set <key> <version>"
		}
		key, err1 := strconv.ParseUint(parts[1], 10, 64)
		version, err2 := strconv.ParseUint(parts[2], 10, 32)
		if err1 != nil || err2 != nil {
			return "CLIENT_ERROR bad arguments"
		}
		s.ops++
		if err := s.app.Set(key, uint32(version)); err != nil {
			if simmem.IsFault(err) {
				s.faults++
			}
			return "SERVER_ERROR " + err.Error()
		}
		return "STORED"
	case "inject":
		if len(parts) != 2 {
			return "CLIENT_ERROR usage: inject <soft|hard>"
		}
		spec := faults.SingleBitSoft
		if parts[1] == "hard" {
			spec = faults.SingleBitHard
		} else if parts[1] != "soft" {
			return "CLIENT_ERROR unknown error class"
		}
		inj, err := inject.Random(s.app.Space(), s.rng, spec, nil)
		if err != nil {
			return "SERVER_ERROR " + err.Error()
		}
		s.injected++
		return fmt.Sprintf("INJECTED %s @%#x bit %d",
			inj.Region.Name(), uint64(inj.Targets[0].Addr), inj.Targets[0].Bits[0])
	case "stats":
		c := s.app.Space().Counters()
		return fmt.Sprintf("STATS ops=%d injected=%d faults=%d corrected=%d uncorrectable=%d",
			s.ops, s.injected, s.faults, c.Corrected, c.Uncorrectable)
	default:
		return "CLIENT_ERROR unknown command"
	}
}
