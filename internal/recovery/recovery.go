// Package recovery implements the software-response axis of the paper's
// design space (Table 4): parity-detect + recover-from-disk (the Par+R
// technique of the Detect&Recover design points), OS page retirement
// driven by corrected-error thresholds, periodic checkpointing of
// explicitly-recoverable data (the five-minute flush rule), and
// memtest-style software scrubbing.
//
// These responses plug into simulated memory through two hooks: the
// simmem.MCHandler interface (invoked on uncorrectable errors, before the
// fault would reach the application) and the simmem.ECCObserver interface
// (fed corrected-error events).
package recovery

import (
	"fmt"
	"time"

	"hrmsim/internal/simmem"
)

// Stats is a point-in-time summary of a recovery handler's activity,
// reported uniformly so a live server (internal/kvnode) or a chaos probe
// (internal/chaos) can publish any handler's counters without knowing its
// concrete type.
type Stats struct {
	// Recoveries counts successful data repairs (word or page restores).
	Recoveries int
	// Failures counts repairs that could not be performed.
	Failures int
	// Escalations counts word→page escalations (ParREscalating).
	Escalations int
	// Retired counts page-frame retirements.
	Retired int
}

// Reporter is implemented by recovery handlers that can summarize their
// activity.
type Reporter interface {
	RecoveryStats() Stats
}

// ParR is the paper's "Par+R" software correction: when the hardware
// detects an error it cannot correct (parity can only detect), reload a
// clean copy of the affected data from persistent storage. Regions must be
// Backed; data written since the last checkpoint recovers to its
// checkpointed value (which can surface as a stale — incorrect — response
// rather than a crash, exactly the trade the paper accepts for
// explicitly-recoverable data).
type ParR struct {
	// WholePage replaces the whole page frame instead of one word —
	// needed to clear stuck-at (hard) faults, at the cost of restoring
	// more stale data.
	WholePage bool
	// Recoveries counts successful recoveries.
	Recoveries int
	// Failures counts recoveries that could not be performed.
	Failures int
}

var _ simmem.MCHandler = (*ParR)(nil)

// HandleMC implements simmem.MCHandler.
func (p *ParR) HandleMC(as *simmem.AddressSpace, ev simmem.MCEvent) simmem.MCAction {
	if !ev.Region.Backed() {
		p.Failures++
		return simmem.MCCrash
	}
	var err error
	if p.WholePage {
		err = ev.Region.ReplaceFrame(ev.Region.PageIndex(ev.Addr))
	} else {
		err = ev.Region.RestoreWord(ev.Addr)
	}
	if err != nil {
		p.Failures++
		return simmem.MCCrash
	}
	p.Recoveries++
	return simmem.MCRecovered
}

// ResetTrial implements simmem.TrialResetter: recovery counters restart
// at zero so a handler retained across snapshot-lifecycle trials reports
// per-trial counts, like one freshly constructed at build time.
func (p *ParR) ResetTrial() {
	p.Recoveries = 0
	p.Failures = 0
}

// RecoveryStats implements Reporter.
func (p *ParR) RecoveryStats() Stats {
	return Stats{Recoveries: p.Recoveries, Failures: p.Failures}
}

// ParREscalating first tries a word restore (cheap, fixes soft errors);
// if the same word faults again — the signature of a stuck-at hard fault —
// it escalates to replacing the page frame, which models page retirement
// onto a fresh frame.
type ParREscalating struct {
	inner     ParR
	seenWords map[simmem.Addr]bool
	// Escalations counts page-frame replacements.
	Escalations int
}

// NewParREscalating returns an escalating Par+R handler.
func NewParREscalating() *ParREscalating {
	return &ParREscalating{seenWords: make(map[simmem.Addr]bool)}
}

var _ simmem.MCHandler = (*ParREscalating)(nil)

// HandleMC implements simmem.MCHandler.
func (p *ParREscalating) HandleMC(as *simmem.AddressSpace, ev simmem.MCEvent) simmem.MCAction {
	if !ev.Region.Backed() {
		return simmem.MCCrash
	}
	if p.seenWords[ev.Addr] {
		if err := ev.Region.ReplaceFrame(ev.Region.PageIndex(ev.Addr)); err != nil {
			return simmem.MCCrash
		}
		p.Escalations++
		return simmem.MCRecovered
	}
	p.seenWords[ev.Addr] = true
	if err := ev.Region.RestoreWord(ev.Addr); err != nil {
		return simmem.MCCrash
	}
	p.inner.Recoveries++
	return simmem.MCRecovered
}

// Recoveries returns the count of word-level recoveries.
func (p *ParREscalating) Recoveries() int { return p.inner.Recoveries }

// ResetTrial implements simmem.TrialResetter: the seen-word memory that
// drives escalation (and the counters) belongs to one trial's fault
// history, so a restore clears it.
func (p *ParREscalating) ResetTrial() {
	clear(p.seenWords)
	p.Escalations = 0
	p.inner.ResetTrial()
}

// RecoveryStats implements Reporter. Escalated page replacements count as
// recoveries too: the data was repaired, just at page granularity.
func (p *ParREscalating) RecoveryStats() Stats {
	return Stats{
		Recoveries:  p.inner.Recoveries + p.Escalations,
		Failures:    p.inner.Failures,
		Escalations: p.Escalations,
	}
}

// Retirer implements OS page retirement (Section II-A): when a page
// accumulates Threshold corrected errors, its frame is replaced — backed
// regions reload from persistent storage, others lose the page's contents
// (as retirement after copying would, modulo the copy).
type Retirer struct {
	// Threshold is the corrected-error count that triggers retirement.
	Threshold uint64
	// Retired counts retirement events.
	Retired int
}

var _ simmem.ECCObserver = (*Retirer)(nil)

// ObserveECC implements simmem.ECCObserver.
func (r *Retirer) ObserveECC(ev simmem.ECCEvent) {
	if ev.Kind != simmem.ECCCorrected || r.Threshold == 0 {
		return
	}
	page := ev.Region.PageIndex(ev.Addr)
	if ev.Region.CorrectedOnPage(page) >= r.Threshold {
		// Replacing the frame resets the page's corrected counter.
		if err := ev.Region.ReplaceFrame(page); err == nil {
			r.Retired++
		}
	}
}

// ResetTrial implements simmem.TrialResetter.
func (r *Retirer) ResetTrial() { r.Retired = 0 }

// RecoveryStats implements Reporter.
func (r *Retirer) RecoveryStats() Stats { return Stats{Retired: r.Retired} }

// Checkpointer periodically flushes a backed region's dirty contents to
// persistent storage, implementing the paper's assumption that Par+R data
// "is copied to a backup on disk every five minutes". Register it as an
// access observer; it piggybacks on application activity to notice the
// virtual clock passing each interval.
type Checkpointer struct {
	region   *simmem.Region
	interval time.Duration
	last     time.Duration
	// Flushes counts completed checkpoints.
	Flushes int
}

// NewCheckpointer creates a checkpointer for a backed region. The paper's
// Table 6 flush threshold is five minutes.
func NewCheckpointer(r *simmem.Region, interval time.Duration) (*Checkpointer, error) {
	if !r.Backed() {
		return nil, fmt.Errorf("recovery: region %q has no backing store to checkpoint to", r.Name())
	}
	if interval <= 0 {
		return nil, fmt.Errorf("recovery: checkpoint interval must be positive, got %v", interval)
	}
	return &Checkpointer{region: r, interval: interval}, nil
}

var _ simmem.AccessObserver = (*Checkpointer)(nil)

// ObserveAccess implements simmem.AccessObserver.
func (c *Checkpointer) ObserveAccess(ev simmem.AccessEvent) {
	if ev.Time-c.last < c.interval {
		return
	}
	if err := c.region.FlushAll(); err == nil {
		c.Flushes++
	}
	c.last = ev.Time
}

// ResetTrial implements simmem.TrialResetter: the flush schedule and
// counter restart from zero, as if the checkpointer were freshly
// installed — its next observed access re-arms the periodic flush.
func (c *Checkpointer) ResetTrial() {
	c.last = 0
	c.Flushes = 0
}

// PeriodicScrubber runs a full write-back scrub pass over its regions
// every interval of virtual time, piggybacking on application activity
// like the Checkpointer. Scrubbing is what keeps independent single-bit
// errors from accumulating into uncorrectable multi-bit words — the
// lifetime simulations show ECC without scrubbing crash-looping at high
// error rates.
type PeriodicScrubber struct {
	regions  []*simmem.Region
	interval time.Duration
	last     time.Duration
	// RetireThreshold, when nonzero, retires (replaces the frame of)
	// any backed page whose corrected-error count reaches it after a
	// scrub pass — patrol scrubbing with predictive-failure-analysis
	// retirement, which is what clears stuck-at cells.
	RetireThreshold uint64
	// Passes counts completed scrub sweeps; Corrected and
	// Uncorrectable accumulate over all passes; Retired counts frame
	// replacements.
	Passes        int
	Corrected     int
	Uncorrectable int
	Retired       int
}

// NewPeriodicScrubber creates a scrubber over the given regions.
func NewPeriodicScrubber(interval time.Duration, regions ...*simmem.Region) (*PeriodicScrubber, error) {
	if interval <= 0 {
		return nil, fmt.Errorf("recovery: scrub interval must be positive, got %v", interval)
	}
	if len(regions) == 0 {
		return nil, fmt.Errorf("recovery: scrubber needs at least one region")
	}
	return &PeriodicScrubber{regions: regions, interval: interval}, nil
}

var _ simmem.AccessObserver = (*PeriodicScrubber)(nil)

// ObserveAccess implements simmem.AccessObserver.
func (s *PeriodicScrubber) ObserveAccess(ev simmem.AccessEvent) {
	if ev.Time-s.last < s.interval {
		return
	}
	s.last = ev.Time
	for _, r := range s.regions {
		rep, err := ScrubRegion(r)
		if err != nil {
			continue
		}
		s.Corrected += rep.Corrected
		s.Uncorrectable += rep.Uncorrectable
		if s.RetireThreshold > 0 && r.Backed() {
			for p := 0; p < r.PageCount(); p++ {
				if r.CorrectedOnPage(p) >= s.RetireThreshold {
					if err := r.ReplaceFrame(p); err == nil {
						s.Retired++
					}
				}
			}
		}
	}
	s.Passes++
}

// RecoveryStats implements Reporter: corrected words written back count
// as recoveries, frame replacements as retirements.
func (s *PeriodicScrubber) RecoveryStats() Stats {
	return Stats{Recoveries: s.Corrected, Retired: s.Retired}
}

// ResetTrial implements simmem.TrialResetter: the scrub schedule and all
// pass counters restart from zero.
func (s *PeriodicScrubber) ResetTrial() {
	s.last = 0
	s.Passes = 0
	s.Corrected = 0
	s.Uncorrectable = 0
	s.Retired = 0
}

// ScrubReport summarizes one scrub pass.
type ScrubReport struct {
	Corrected     int
	Uncorrectable int
	Mismatched    int // memtest mode: bytes differing from the backing copy
	Repaired      int // memtest mode: bytes restored from the backing copy
}

// ScrubRegion performs one full scrub pass over a protected region,
// demand-correcting every codeword (with write-back) and counting
// uncorrectable words without crashing anything — what a background
// scrubber or patrol read does.
func ScrubRegion(r *simmem.Region) (ScrubReport, error) {
	var rep ScrubReport
	for p := 0; p < r.PageCount(); p++ {
		c, u, err := r.ScrubPage(p, true)
		if err != nil {
			return ScrubReport{}, err
		}
		rep.Corrected += c
		rep.Uncorrectable += u
	}
	return rep, nil
}

// MemtestRegion implements the paper's §VI-C suggestion for memory without
// any detection capability: periodically compare read-only backed data
// against its persistent copy and repair divergence — software-only error
// detection and correction for NoECC regions.
func MemtestRegion(as *simmem.AddressSpace, r *simmem.Region, repair bool) (ScrubReport, error) {
	if !r.Backed() {
		return ScrubReport{}, fmt.Errorf("recovery: memtest needs a backed region, %q is not", r.Name())
	}
	var rep ScrubReport
	ps := as.PageSize()
	buf := make([]byte, ps)
	for p := 0; p < r.PageCount(); p++ {
		addr := r.PageAddr(p)
		if err := as.ReadRaw(addr, buf); err != nil {
			return ScrubReport{}, err
		}
		clean, err := r.BackingBytes(addr, ps)
		if err != nil {
			return ScrubReport{}, err
		}
		dirty := false
		for i := range buf {
			if buf[i] != clean[i] {
				rep.Mismatched++
				dirty = true
			}
		}
		if dirty && repair {
			if err := r.ReplaceFrame(p); err != nil {
				return ScrubReport{}, err
			}
			rep.Repaired++
		}
	}
	return rep, nil
}
