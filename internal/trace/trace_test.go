package trace

import (
	"bytes"
	"math/rand"
	"sort"
	"testing"
)

func TestGenCorpus(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c, err := GenCorpus(rng, 500, 1000, 3, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Docs) != 500 || c.VocabSize != 1000 {
		t.Fatalf("corpus shape: %d docs, vocab %d", len(c.Docs), c.VocabSize)
	}
	for i, d := range c.Docs {
		if d.ID != uint32(i) {
			t.Fatalf("doc %d has ID %d", i, d.ID)
		}
		if len(d.Terms) < 3 || len(d.Terms) > 20 {
			t.Fatalf("doc %d has %d terms", i, len(d.Terms))
		}
		seen := map[uint32]bool{}
		for _, term := range d.Terms {
			if term >= 1000 {
				t.Fatalf("doc %d term %d outside vocabulary", i, term)
			}
			if seen[term] {
				t.Fatalf("doc %d has duplicate term %d", i, term)
			}
			seen[term] = true
		}
		if d.Popularity <= 0 || d.Popularity > 1 {
			t.Fatalf("doc %d popularity %g outside (0,1]", i, d.Popularity)
		}
	}
}

func TestGenCorpusSkew(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	c, err := GenCorpus(rng, 2000, 500, 5, 15)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 500)
	for _, d := range c.Docs {
		for _, term := range d.Terms {
			counts[term]++
		}
	}
	// Zipf skew: the most common tenth of terms should dominate.
	sorted := append([]int(nil), counts...)
	sort.Sort(sort.Reverse(sort.IntSlice(sorted)))
	top, total := 0, 0
	for i, n := range sorted {
		total += n
		if i < 50 {
			top += n
		}
	}
	if float64(top)/float64(total) < 0.5 {
		t.Errorf("top-10%% terms carry only %.1f%% of occurrences, expected Zipf skew",
			100*float64(top)/float64(total))
	}
}

func TestGenCorpusValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cases := []struct{ n, vocab, min, max int }{
		{0, 10, 1, 2}, {10, 1, 1, 2}, {10, 10, 0, 2}, {10, 10, 5, 2}, {10, 10, 1, 11},
	}
	for i, c := range cases {
		if _, err := GenCorpus(rng, c.n, c.vocab, c.min, c.max); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestGenQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	c, err := GenCorpus(rng, 100, 200, 3, 10)
	if err != nil {
		t.Fatal(err)
	}
	qs, err := GenQueries(rng, c, 300, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 300 {
		t.Fatalf("got %d queries", len(qs))
	}
	for _, q := range qs {
		if len(q.Terms) < 1 || len(q.Terms) > 4 {
			t.Fatalf("query with %d terms", len(q.Terms))
		}
		for _, term := range q.Terms {
			if term >= 200 {
				t.Fatalf("query term %d outside vocabulary", term)
			}
		}
	}
	if _, err := GenQueries(rng, c, 0, 4); err == nil {
		t.Error("zero queries accepted")
	}
	if _, err := GenQueries(rng, c, 5, 0); err == nil {
		t.Error("zero max terms accepted")
	}
}

func TestGenKVOps(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ops, err := GenKVOps(rng, 1000, 10000, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) != 10000 {
		t.Fatalf("got %d ops", len(ops))
	}
	reads := 0
	versions := map[uint64]uint32{}
	for i, op := range ops {
		if op.Key >= 1000 {
			t.Fatalf("op %d key %d out of range", i, op.Key)
		}
		if op.Read {
			reads++
			if op.Version != versions[op.Key] {
				t.Fatalf("op %d read version %d, want %d", i, op.Version, versions[op.Key])
			}
		} else {
			versions[op.Key]++
			if op.Version != versions[op.Key] {
				t.Fatalf("op %d write version %d, want %d", i, op.Version, versions[op.Key])
			}
		}
	}
	frac := float64(reads) / float64(len(ops))
	if frac < 0.87 || frac > 0.93 {
		t.Errorf("read fraction = %.3f, want about 0.9", frac)
	}
}

func TestGenKVOpsValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	if _, err := GenKVOps(rng, 1, 10, 0.5); err == nil {
		t.Error("single key accepted")
	}
	if _, err := GenKVOps(rng, 10, 0, 0.5); err == nil {
		t.Error("zero ops accepted")
	}
	if _, err := GenKVOps(rng, 10, 10, 1.5); err == nil {
		t.Error("bad read fraction accepted")
	}
}

func TestValueForDeterministicAndDistinct(t *testing.T) {
	a := ValueFor(42, 1, 64)
	b := ValueFor(42, 1, 64)
	if !bytes.Equal(a, b) {
		t.Error("ValueFor not deterministic")
	}
	if bytes.Equal(a, ValueFor(42, 2, 64)) {
		t.Error("versions collide")
	}
	if bytes.Equal(a, ValueFor(43, 1, 64)) {
		t.Error("keys collide")
	}
	if len(ValueFor(1, 0, 17)) != 17 {
		t.Error("wrong value size")
	}
	// Values should not be trivially zero.
	var zeros int
	for _, x := range a {
		if x == 0 {
			zeros++
		}
	}
	if zeros > 16 {
		t.Errorf("value suspiciously sparse: %d/64 zero bytes", zeros)
	}
}

func TestGenGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g, err := GenGraph(rng, 2000, 8)
	if err != nil {
		t.Fatal(err)
	}
	if g.N != 2000 || len(g.Out) != 2000 {
		t.Fatalf("graph shape: N=%d", g.N)
	}
	for u, edges := range g.Out {
		seen := map[int32]bool{}
		for _, v := range edges {
			if int(v) == u {
				t.Fatalf("self loop at %d", u)
			}
			if v < 0 || int(v) >= g.N {
				t.Fatalf("edge target %d out of range", v)
			}
			if seen[v] {
				t.Fatalf("duplicate edge %d->%d", u, v)
			}
			seen[v] = true
		}
	}
	if g.EdgeCount() < 2000 {
		t.Errorf("suspiciously few edges: %d", g.EdgeCount())
	}

	// Heavy-tailed in-degree: the max in-degree should far exceed the mean.
	in := g.InDegrees()
	maxIn, sum := 0, 0
	for _, d := range in {
		sum += d
		if d > maxIn {
			maxIn = d
		}
	}
	mean := float64(sum) / float64(len(in))
	if float64(maxIn) < 5*mean {
		t.Errorf("max in-degree %d vs mean %.1f: no influencer skew", maxIn, mean)
	}
}

func TestGenGraphValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	if _, err := GenGraph(rng, 1, 4); err == nil {
		t.Error("single node accepted")
	}
	if _, err := GenGraph(rng, 10, 0); err == nil {
		t.Error("zero degree accepted")
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	c1, err := GenCorpus(rand.New(rand.NewSource(9)), 50, 100, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := GenCorpus(rand.New(rand.NewSource(9)), 50, 100, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range c1.Docs {
		if c1.Docs[i].Popularity != c2.Docs[i].Popularity ||
			len(c1.Docs[i].Terms) != len(c2.Docs[i].Terms) {
			t.Fatal("corpus generation not deterministic")
		}
	}
}
