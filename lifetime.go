package hrmsim

import (
	"fmt"
	"time"

	"hrmsim/internal/apps"
	"hrmsim/internal/apps/websearch"
	"hrmsim/internal/ecc"
	"hrmsim/internal/faults"
	"hrmsim/internal/lifetime"
	"hrmsim/internal/recovery"
)

// Protection names a preset hardware/software reliability configuration
// for lifetime simulation.
type Protection string

// Protection presets.
const (
	// ProtectNone: no detection or correction anywhere (Consumer PC).
	ProtectNone Protection = "none"
	// ProtectParR is the paper's Detect&Recover mapping: parity with
	// Par+R software recovery on the backed read-only index, nothing on
	// the heap and stack. (Parity without a recovery path would turn
	// tolerable errors into machine-check crashes — detection is only
	// worth paying for where software can act on it.)
	ProtectParR Protection = "parity+r"
	// ProtectSECDED: SEC-DED everywhere, no scrubbing (Typical Server
	// without patrol scrub).
	ProtectSECDED Protection = "secded"
	// ProtectSECDEDScrub: SEC-DED everywhere plus a 5-minute patrol
	// scrubber with retirement (a production Typical Server).
	ProtectSECDEDScrub Protection = "secded+scrub"
)

// Protections lists the presets.
func Protections() []Protection {
	return []Protection{ProtectNone, ProtectParR, ProtectSECDED, ProtectSECDEDScrub}
}

// LifetimeConfig configures a continuous-operation simulation.
type LifetimeConfig struct {
	// App selects the workload. Only AppWebSearch is supported: the
	// simulation loops the workload, which requires idempotent request
	// handling (the key–value store mutates state across passes).
	App App
	// Protection is the reliability preset (default ProtectNone).
	Protection Protection
	// ErrorsPerMonth is the arrival rate (default 2000). Remember the
	// simulated applications are ~10^6x smaller than production ones,
	// so observable effects need amplified rates.
	ErrorsPerMonth float64
	// SoftFraction is the share of transient errors (default 1.0).
	SoftFraction float64
	// Hours is the simulated operation period (default 24).
	Hours int
	// RecoveryMinutes is the downtime per crash (default 10).
	RecoveryMinutes int
	// Size selects the workload scale (default SizeSmall — lifetime
	// runs serve tens of thousands of requests).
	Size WorkloadSize
	// Seed drives arrivals and placement (default 1).
	Seed int64
}

// LifetimeResult summarizes a simulated lifetime.
type LifetimeResult struct {
	ErrorsInjected      int
	Crashes             int
	DowntimeMinutes     float64
	Availability        float64
	Requests, Incorrect int
	IncorrectPerMillion float64
	// ScrubPasses and ScrubCorrected report patrol-scrub activity (for
	// the scrubbing presets).
	ScrubPasses, ScrubCorrected int
}

// SimulateLifetime runs the application continuously under a memory error
// arrival process, counting crashes (each costing a recovery reboot, with
// hard faults persisting across reboots), downtime, and incorrect
// responses — the direct-simulation counterpart of the Table 6 analytic
// model.
func SimulateLifetime(cfg LifetimeConfig) (*LifetimeResult, error) {
	if cfg.App == "" {
		cfg.App = AppWebSearch
	}
	if cfg.App != AppWebSearch {
		return nil, fmt.Errorf("hrmsim: lifetime simulation supports only %q (the workload must be idempotent across passes)", AppWebSearch)
	}
	if cfg.Protection == "" {
		cfg.Protection = ProtectNone
	}
	if cfg.ErrorsPerMonth == 0 {
		cfg.ErrorsPerMonth = 2000
	}
	if cfg.SoftFraction == 0 {
		cfg.SoftFraction = 1
	}
	if cfg.Hours == 0 {
		cfg.Hours = 24
	}
	if cfg.RecoveryMinutes == 0 {
		cfg.RecoveryMinutes = 10
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}

	wcfg := websearch.DefaultConfig(cfg.Seed)
	switch cfg.Size {
	case SizeSmall:
		wcfg.Docs, wcfg.Vocab, wcfg.MinTerms, wcfg.MaxTerms = 256, 128, 4, 12
		wcfg.Queries, wcfg.CacheSlots = 60, 32
	case SizeMedium:
		wcfg.Docs, wcfg.Vocab, wcfg.MinTerms, wcfg.MaxTerms = 1024, 512, 6, 24
		wcfg.Queries, wcfg.CacheSlots = 120, 256
	default:
		return nil, fmt.Errorf("hrmsim: lifetime simulation supports SizeSmall or SizeMedium")
	}
	wcfg.RequestCost = 10 * time.Second

	var scrubbers []*recovery.PeriodicScrubber
	var attach func(app apps.App) error
	switch cfg.Protection {
	case ProtectNone:
	case ProtectParR:
		wcfg.PrivateCodec = ecc.NewParity()
		wcfg.PrivateMC = &recovery.ParR{}
	case ProtectSECDED, ProtectSECDEDScrub:
		wcfg.PrivateCodec = ecc.NewSECDED()
		wcfg.HeapCodec = ecc.NewSECDED()
		wcfg.StackCodec = ecc.NewSECDED()
		if cfg.Protection == ProtectSECDEDScrub {
			attach = func(app apps.App) error {
				sc, err := recovery.NewPeriodicScrubber(5*time.Minute, app.Space().Regions()...)
				if err != nil {
					return err
				}
				sc.RetireThreshold = 4
				scrubbers = append(scrubbers, sc)
				app.Space().AddAccessObserver(sc)
				return nil
			}
		}
	default:
		return nil, fmt.Errorf("hrmsim: unknown protection %q (known: %v)", cfg.Protection, Protections())
	}

	b, err := websearch.NewBuilder(wcfg)
	if err != nil {
		return nil, err
	}
	res, err := lifetime.Simulate(lifetime.Config{
		Builder: b,
		Rates: faults.RateModel{
			ErrorsPerMonth:       cfg.ErrorsPerMonth,
			SoftFraction:         cfg.SoftFraction,
			LessTestedMultiplier: 1,
		},
		Horizon:      time.Duration(cfg.Hours) * time.Hour,
		RecoveryTime: time.Duration(cfg.RecoveryMinutes) * time.Minute,
		Seed:         cfg.Seed,
		Attach:       attach,
	})
	if err != nil {
		return nil, err
	}
	out := &LifetimeResult{
		ErrorsInjected:      res.ErrorsInjected,
		Crashes:             res.Crashes,
		DowntimeMinutes:     res.Downtime.Minutes(),
		Availability:        res.Availability,
		Requests:            res.Requests,
		Incorrect:           res.Incorrect,
		IncorrectPerMillion: res.IncorrectPerMillion,
	}
	for _, sc := range scrubbers {
		out.ScrubPasses += sc.Passes
		out.ScrubCorrected += sc.Corrected
	}
	return out, nil
}
