package core

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"hrmsim/internal/faults"
	"hrmsim/internal/simmem"
)

// TestShardRangeTiling: the N shard ranges tile [0, trials) exactly, in
// index order, for a spread of trial counts and shard counts — including
// more shards than trials (some ranges empty).
func TestShardRangeTiling(t *testing.T) {
	for _, trials := range []int{0, 1, 2, 3, 7, 10, 100, 101} {
		for _, count := range []int{1, 2, 3, 4, 7, 16} {
			next := 0
			for i := 0; i < count; i++ {
				lo, hi := (ShardSpec{Index: i, Count: count}).Range(trials)
				if lo != next {
					t.Fatalf("trials=%d count=%d: shard %d starts at %d, want %d", trials, count, i, lo, next)
				}
				if hi < lo {
					t.Fatalf("trials=%d count=%d: shard %d has negative range [%d,%d)", trials, count, i, lo, hi)
				}
				next = hi
			}
			if next != trials {
				t.Fatalf("trials=%d count=%d: shards cover [0,%d), want [0,%d)", trials, count, next, trials)
			}
		}
	}
}

func TestParseShardSpec(t *testing.T) {
	s, err := ParseShardSpec("3/8")
	if err != nil {
		t.Fatal(err)
	}
	if s.Index != 3 || s.Count != 8 {
		t.Fatalf("ParseShardSpec(3/8) = %+v", s)
	}
	if s.String() != "3/8" {
		t.Fatalf("String() = %q, want 3/8", s.String())
	}
	for _, bad := range []string{"", "3", "3/", "/8", "8/8", "-1/4", "0/0", "x/y"} {
		if _, err := ParseShardSpec(bad); err == nil {
			t.Errorf("ParseShardSpec(%q): want error", bad)
		}
	}
}

// TestConfigHash: equal campaign identities hash equal regardless of the
// stamped stream/version fields; any identity field difference changes
// the hash.
func TestConfigHash(t *testing.T) {
	base := testJournalMeta()
	stamped := base
	stamped.SchemaVersion = JournalSchemaVersion
	stamped.Stream = JournalStream
	if ConfigHash(base) != ConfigHash(stamped) {
		t.Error("hash depends on unset stream/version fields")
	}
	vary := []JournalMeta{base, base, base, base, base}
	vary[0].App = "kvstore"
	vary[1].Trials = base.Trials + 1
	vary[2].Seed = base.Seed + 1
	vary[3].Region = "stack"
	vary[4].Size = base.Size + 1
	for i, m := range vary {
		if ConfigHash(m) == ConfigHash(base) {
			t.Errorf("variant %d hashes equal to base", i)
		}
	}
}

// writeShard writes one shard journal + manifest pair into dir and
// returns the loaded Shard-equivalent paths.
func writeShard(t *testing.T, dir string, meta JournalMeta, spec ShardSpec, trials []TrialResult) {
	t.Helper()
	jname := ShardJournalName(spec.Index, spec.Count)
	j, _, err := OpenJournal(filepath.Join(dir, jname), meta)
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range trials {
		if err := j.Append(tr); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	res := &CampaignResult{Requested: meta.Trials, counts: make(map[Outcome]int)}
	for _, tr := range trials {
		res.Trials = append(res.Trials, tr)
		if tr.Disposition == DispositionCompleted {
			res.counts[tr.Outcome]++
		}
	}
	man := NewShardManifest(meta, spec, jname, res)
	if err := WriteManifest(filepath.Join(dir, ShardManifestName(spec.Index, spec.Count)), man); err != nil {
		t.Fatal(err)
	}
}

func TestManifestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	meta := testJournalMeta()
	spec := ShardSpec{Index: 1, Count: 4}
	res := &CampaignResult{Requested: meta.Trials, counts: make(map[Outcome]int)}
	man := NewShardManifest(meta, spec, "shard-0001-of-0004.jsonl", res)
	path := filepath.Join(dir, ShardManifestName(1, 4))
	if err := WriteManifest(path, man); err != nil {
		t.Fatal(err)
	}
	got, err := ReadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, man) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, man)
	}
	lo, hi := spec.Range(meta.Trials)
	if got.TrialLo != lo || got.TrialHi != hi {
		t.Fatalf("manifest range [%d,%d), want [%d,%d)", got.TrialLo, got.TrialHi, lo, hi)
	}
}

// TestManifestRejectsTampering: a manifest whose campaign identity was
// edited after writing no longer matches its recorded config hash.
func TestManifestRejectsTampering(t *testing.T) {
	dir := t.TempDir()
	meta := testJournalMeta()
	man := NewShardManifest(meta, ShardSpec{Index: 0, Count: 1}, "j.jsonl",
		&CampaignResult{Requested: meta.Trials, counts: make(map[Outcome]int)})
	path := filepath.Join(dir, "shard-0000-of-0001.manifest.json")
	if err := WriteManifest(path, man); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	edited := strings.Replace(string(b), `"seed": 42`, `"seed": 43`, 1)
	if edited == string(b) {
		t.Fatal("test setup: seed field not found in manifest")
	}
	if err := os.WriteFile(path, []byte(edited), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadManifest(path); err == nil || !strings.Contains(err.Error(), "config hash") {
		t.Fatalf("tampered manifest: got %v, want config-hash error", err)
	}
}

func TestManifestPathFor(t *testing.T) {
	if got := ManifestPathFor("dir/shard-0000-of-0002.jsonl"); got != "dir/shard-0000-of-0002.manifest.json" {
		t.Fatalf("ManifestPathFor = %q", got)
	}
	if got := ManifestPathFor("journal"); got != "journal.manifest.json" {
		t.Fatalf("ManifestPathFor (no suffix) = %q", got)
	}
}

// shardTrials fabricates deterministic completed results for the given
// indices. The results must round-trip the journal, so they carry a
// valid region kind.
func shardTrials(idxs ...int) []TrialResult {
	var out []TrialResult
	for _, i := range idxs {
		out = append(out, TrialResult{
			Index: i, Outcome: OutcomeMaskedOverwrite,
			Region: "heap", Kind: simmem.RegionHeap, Requests: 10 + i,
		})
	}
	return out
}

// TestMergeShardsKeepFirst: a trial index recorded by two shards keeps
// the earlier (lower-index) shard's record; the duplicate is counted.
func TestMergeShardsKeepFirst(t *testing.T) {
	dir := t.TempDir()
	meta := testJournalMeta() // 10 trials
	writeShard(t, dir, meta, ShardSpec{Index: 0, Count: 2}, []TrialResult{
		{Index: 0, Outcome: OutcomeMaskedOverwrite, Region: "heap", Kind: simmem.RegionHeap, Requests: 100},
		{Index: 4, Outcome: OutcomeCrash, Region: "heap", Kind: simmem.RegionHeap, Requests: 1},
	})
	writeShard(t, dir, meta, ShardSpec{Index: 1, Count: 2}, []TrialResult{
		// Duplicate of shard 0's record for index 4, then a fresh one.
		{Index: 4, Outcome: OutcomeMaskedLogic, Region: "heap", Kind: simmem.RegionHeap, Requests: 999},
		{Index: 5, Outcome: OutcomeIncorrect, Region: "heap", Kind: simmem.RegionHeap, Requests: 7},
	})
	shards, err := LoadShardDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	merged, trials, stats, err := MergeShards(shards)
	if err != nil {
		t.Fatal(err)
	}
	if err := merged.Matches(meta); err != nil {
		t.Fatal(err)
	}
	if stats.Shards != 2 || stats.Records != 3 || stats.Duplicates != 1 || stats.Missing != 7 {
		t.Fatalf("stats = %+v", stats)
	}
	if trials[4].Outcome != OutcomeCrash || trials[4].Requests != 1 {
		t.Fatalf("keep-first violated: trial 4 = %+v", trials[4])
	}
}

// TestMergeShardsEmptyShard: a shard with a valid journal header and no
// records (more shards than work, or cancelled before its first trial)
// merges cleanly.
func TestMergeShardsEmptyShard(t *testing.T) {
	dir := t.TempDir()
	meta := testJournalMeta()
	writeShard(t, dir, meta, ShardSpec{Index: 0, Count: 2}, shardTrials(0, 1, 2, 3, 4))
	writeShard(t, dir, meta, ShardSpec{Index: 1, Count: 2}, nil)
	shards, err := LoadShardDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	_, trials, stats, err := MergeShards(shards)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Records != 5 || stats.Missing != 5 || len(trials) != 5 {
		t.Fatalf("stats = %+v, len(trials) = %d", stats, len(trials))
	}
}

// TestMergeShardsAbortedOnly: a shard whose every trial aborted still
// contributes its records; the rebuilt result counts no outcomes for it.
func TestMergeShardsAbortedOnly(t *testing.T) {
	dir := t.TempDir()
	meta := testJournalMeta()
	writeShard(t, dir, meta, ShardSpec{Index: 0, Count: 2}, shardTrials(0, 1, 2, 3, 4))
	writeShard(t, dir, meta, ShardSpec{Index: 1, Count: 2}, []TrialResult{
		{Index: 5, Disposition: DispositionAborted, AbortReason: AbortReasonDeadline},
		{Index: 6, Disposition: DispositionAborted, AbortReason: AbortReasonOpBudget},
	})
	shards, err := LoadShardDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	_, trials, stats, err := MergeShards(shards)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Records != 7 {
		t.Fatalf("records = %d, want 7", stats.Records)
	}
	res := ResultFromTrials(meta.App, faults.SingleBitSoft, meta.Trials, trials)
	if res.Completed() != 5 || res.AbortedCount() != 2 || !res.Interrupted {
		t.Fatalf("completed=%d aborted=%d interrupted=%v", res.Completed(), res.AbortedCount(), res.Interrupted)
	}
}

// TestMergeShardsConfigMismatch: shards from different campaigns are
// rejected before any journal is read, naming the differing field.
func TestMergeShardsConfigMismatch(t *testing.T) {
	dir := t.TempDir()
	meta := testJournalMeta()
	other := meta
	other.Seed = meta.Seed + 1
	writeShard(t, dir, meta, ShardSpec{Index: 0, Count: 2}, shardTrials(0))
	writeShard(t, dir, other, ShardSpec{Index: 1, Count: 2}, shardTrials(5))
	shards, err := LoadShardDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	_, _, _, err = MergeShards(shards)
	if err == nil || !strings.Contains(err.Error(), "different campaign") {
		t.Fatalf("got %v, want different-campaign error", err)
	}
	if !strings.Contains(err.Error(), "seed") {
		t.Errorf("error does not name the differing field: %v", err)
	}
}

// TestMergeShardsJournalManifestMismatch: a journal swapped in from a
// different campaign is caught even when its manifest is internally
// consistent.
func TestMergeShardsJournalManifestMismatch(t *testing.T) {
	dir := t.TempDir()
	meta := testJournalMeta()
	writeShard(t, dir, meta, ShardSpec{Index: 0, Count: 1}, shardTrials(0))
	// Overwrite the journal with one from a different campaign.
	other := meta
	other.Seed = meta.Seed + 7
	jpath := filepath.Join(dir, ShardJournalName(0, 1))
	if err := os.Remove(jpath); err != nil {
		t.Fatal(err)
	}
	j, _, err := OpenJournal(jpath, other)
	if err != nil {
		t.Fatal(err)
	}
	j.Close()
	shards, err := LoadShardDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	_, _, _, err = MergeShards(shards)
	if err == nil || !strings.Contains(err.Error(), "does not match its manifest") {
		t.Fatalf("got %v, want journal/manifest mismatch error", err)
	}
}

// TestLoadShardDirEmpty: a directory without manifests is an explicit
// error, not an empty merge.
func TestLoadShardDirEmpty(t *testing.T) {
	if _, err := LoadShardDir(t.TempDir()); err == nil {
		t.Fatal("want error for empty shard directory")
	}
}

// TestCampaignShardUnionEqualsWhole: running a campaign as N in-process
// shards and unioning the trial results reproduces the unsharded run
// bit-identically — the engine-level half of the merge-equivalence
// guarantee.
func TestCampaignShardUnionEqualsWhole(t *testing.T) {
	base := CampaignConfig{
		Builder: kvBuilder(t, 3),
		Spec:    faults.SingleBitSoft,
		Trials:  30,
		Seed:    11,
	}
	whole, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	for _, count := range []int{1, 2, 3, 4} {
		union := make(map[int]TrialResult)
		for i := 0; i < count; i++ {
			cfg := base
			cfg.Builder = kvBuilder(t, 3)
			cfg.Shard = &ShardSpec{Index: i, Count: count}
			res, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			lo, hi := cfg.Shard.Range(base.Trials)
			if len(res.Trials) != hi-lo {
				t.Fatalf("count=%d shard=%d: %d trials, want %d", count, i, len(res.Trials), hi-lo)
			}
			for _, tr := range res.Trials {
				if tr.Index < lo || tr.Index >= hi {
					t.Fatalf("count=%d shard=%d: trial %d outside [%d,%d)", count, i, tr.Index, lo, hi)
				}
				union[tr.Index] = tr
			}
		}
		if len(union) != base.Trials {
			t.Fatalf("count=%d: union has %d trials, want %d", count, len(union), base.Trials)
		}
		for _, tr := range whole.Trials {
			if !reflect.DeepEqual(union[tr.Index], tr) {
				t.Fatalf("count=%d: trial %d differs:\n shard: %+v\n whole: %+v",
					count, tr.Index, union[tr.Index], tr)
			}
		}
	}
}

// TestCampaignShardResumeFiltersForeignRecords: resume records outside
// the shard's range (a sibling's journal fed back in) are ignored.
func TestCampaignShardResumeFiltersForeignRecords(t *testing.T) {
	cfg := CampaignConfig{
		Builder: kvBuilder(t, 3),
		Spec:    faults.SingleBitSoft,
		Trials:  20,
		Seed:    5,
		Shard:   &ShardSpec{Index: 1, Count: 2}, // owns [10,20)
		Resume: map[int]TrialResult{
			2:  {Outcome: OutcomeCrash},           // foreign: shard 0's index
			12: {Outcome: OutcomeMaskedOverwrite}, // owned: must be skipped, not re-run
		},
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Resumed != 1 {
		t.Fatalf("resumed = %d, want 1 (foreign record filtered)", res.Resumed)
	}
	for _, tr := range res.Trials {
		if tr.Index == 2 {
			t.Fatal("foreign resume record leaked into the shard result")
		}
		if tr.Index == 12 && tr.Outcome != OutcomeMaskedOverwrite {
			t.Fatal("owned resume record was re-run instead of skipped")
		}
	}
}

// TestCampaignShardInvalid: an invalid shard spec fails loudly at
// campaign start.
func TestCampaignShardInvalid(t *testing.T) {
	_, err := Run(CampaignConfig{
		Builder: kvBuilder(t, 3),
		Spec:    faults.SingleBitSoft,
		Trials:  10,
		Seed:    1,
		Shard:   &ShardSpec{Index: 4, Count: 4},
	})
	if err == nil {
		t.Fatal("want error for out-of-range shard index")
	}
}
