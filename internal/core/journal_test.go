package core

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"hrmsim/internal/simmem"
)

func testJournalMeta() JournalMeta {
	return JournalMeta{
		App:    "websearch",
		Error:  "single-bit soft",
		Trials: 10,
		Seed:   42,
		Size:   256,
	}
}

// testJournalTrials is a representative set of results: a crash with a
// stack, an incorrect response with effect times, a masked trial, and an
// aborted one.
func testJournalTrials() []TrialResult {
	return []TrialResult{
		{
			Index: 0, Outcome: OutcomeCrash, Region: "heap", Kind: simmem.RegionHeap,
			InjectedAt: 3 * time.Minute, EffectAt: 5 * time.Minute,
			Requests: 17, EndedAt: 5 * time.Minute,
			CrashReason: "memory fault",
			CrashStack:  "hrmsim/internal/apps/websearch.(*App).Serve\n\tsearch.go:210",
		},
		{
			Index: 1, Outcome: OutcomeIncorrect, Region: "index", Kind: simmem.RegionPrivate,
			InjectedAt: time.Minute, EffectAt: 2 * time.Minute,
			Incorrect: 3, IncorrectAt: []time.Duration{2 * time.Minute, 4 * time.Minute, 9 * time.Minute},
			Requests: 40, EndedAt: 10 * time.Minute,
		},
		{
			Index: 2, Outcome: OutcomeMaskedLatent, Region: "stack", Kind: simmem.RegionStack,
			InjectedAt: 30 * time.Second, Requests: 40, EndedAt: 10 * time.Minute,
		},
		{
			Index: 3, Disposition: DispositionAborted,
			AbortReason: AbortReasonDeadline, AbortDetail: "trial exceeded the 1s wall-clock deadline",
		},
	}
}

// TestJournalRoundTrip: writing results and reading them back is
// bit-identical, including crash stacks, incorrect-response times, and
// aborted dispositions.
func TestJournalRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	j, err := NewJournal(&buf, testJournalMeta())
	if err != nil {
		t.Fatal(err)
	}
	trials := testJournalTrials()
	for _, tr := range trials {
		if err := j.Append(tr); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	meta, recs, err := ReadJournal(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if err := meta.Matches(testJournalMeta()); err != nil {
		t.Errorf("read-back meta does not match: %v", err)
	}
	if meta.SchemaVersion != JournalSchemaVersion || meta.Stream != JournalStream {
		t.Errorf("header stamped %d/%q, want %d/%q",
			meta.SchemaVersion, meta.Stream, JournalSchemaVersion, JournalStream)
	}
	if len(recs) != len(trials) {
		t.Fatalf("read %d records, wrote %d", len(recs), len(trials))
	}
	for _, want := range trials {
		got, ok := recs[want.Index]
		if !ok {
			t.Errorf("trial %d missing", want.Index)
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("trial %d round-trip diverged:\ngot:  %+v\nwant: %+v", want.Index, got, want)
		}
	}
}

// TestJournalTruncationTolerance: for EVERY prefix of a valid journal,
// the reader either fails cleanly (header incomplete) or returns a
// subset of the original records with unchanged values — a torn tail
// never corrupts or invents a trial.
func TestJournalTruncationTolerance(t *testing.T) {
	var buf bytes.Buffer
	j, err := NewJournal(&buf, testJournalMeta())
	if err != nil {
		t.Fatal(err)
	}
	trials := testJournalTrials()
	want := make(map[int]TrialResult, len(trials))
	for _, tr := range trials {
		want[tr.Index] = tr
		if err := j.Append(tr); err != nil {
			t.Fatal(err)
		}
	}
	full := buf.Bytes()
	headerLen := bytes.IndexByte(full, '\n') + 1

	for cut := 0; cut <= len(full); cut++ {
		meta, recs, err := ReadJournal(bytes.NewReader(full[:cut]))
		if err != nil {
			// Only a cut inside the header line may fail (identity
			// cannot be established without it).
			if cut >= headerLen {
				t.Errorf("cut %d: unexpected error %v", cut, err)
			}
			continue
		}
		// A successful read — possible from headerLen-1 on (the cut that
		// drops only the header's newline still parses) — must return
		// the true identity and a faithful subset of the records.
		if err := meta.Matches(testJournalMeta()); err != nil {
			t.Errorf("cut %d: meta diverged: %v", cut, err)
		}
		for idx, got := range recs {
			orig, ok := want[idx]
			if !ok {
				t.Errorf("cut %d: invented trial %d", cut, idx)
				continue
			}
			if !reflect.DeepEqual(got, orig) {
				t.Errorf("cut %d: trial %d corrupted by truncation", cut, idx)
			}
		}
	}
}

// TestJournalCorruptLinesSkipped: garbage lines, records for other
// campaigns' indices, and unknown outcome names are skipped without
// aborting the read.
func TestJournalCorruptLinesSkipped(t *testing.T) {
	var buf bytes.Buffer
	j, err := NewJournal(&buf, testJournalMeta())
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(testJournalTrials()[2]); err != nil {
		t.Fatal(err)
	}
	buf.WriteString("{\"trial\": not json\n")                          // torn line
	buf.WriteString("\n")                                              // blank
	buf.WriteString(`{"trial":99,"disposition":"completed"}` + "\n")   // out of range
	buf.WriteString(`{"trial":-1,"disposition":"aborted"}` + "\n")     // negative
	buf.WriteString(`{"trial":5,"disposition":"completed"}` + "\n")    // missing result
	buf.WriteString(`{"trial":6,"disposition":"vanished"}` + "\n")     // unknown disposition
	buf.WriteString(`{"trial":7,"disposition":"completed","result":` + // unknown outcome
		`{"outcome":"exploded","region":"heap","region_kind":"heap","requests":1,"ended_at_ns":1}}` + "\n")

	_, recs, err := ReadJournal(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("read %d records, want only the 1 valid one: %v", len(recs), recs)
	}
	if _, ok := recs[2]; !ok {
		t.Error("the valid record (trial 2) was dropped")
	}
}

// TestJournalDuplicateKeepsFirst: duplicate records for one trial keep
// the first occurrence, so a resume-after-kill (which may have re-run
// and re-journaled a trial) never double-counts or rewrites history.
func TestJournalDuplicateKeepsFirst(t *testing.T) {
	var buf bytes.Buffer
	j, err := NewJournal(&buf, testJournalMeta())
	if err != nil {
		t.Fatal(err)
	}
	first := TrialResult{Index: 4, Outcome: OutcomeMaskedOverwrite, Region: "heap",
		Kind: simmem.RegionHeap, Requests: 10, EndedAt: time.Minute}
	second := first
	second.Outcome = OutcomeCrash
	second.CrashReason = "duplicate"
	for _, tr := range []TrialResult{first, second} {
		if err := j.Append(tr); err != nil {
			t.Fatal(err)
		}
	}
	_, recs, err := ReadJournal(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("read %d records, want 1", len(recs))
	}
	if !reflect.DeepEqual(recs[4], first) {
		t.Errorf("duplicate resolution kept the later record: %+v", recs[4])
	}
}

// TestOpenJournalResumesAfterKill: a journal file whose writer was
// killed mid-record (torn trailing line) reopens cleanly, repairs the
// tail, and appends records that read back alongside the survivors.
func TestOpenJournalResumesAfterKill(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trials.jsonl")
	j, existed, err := OpenJournal(path, testJournalMeta())
	if err != nil {
		t.Fatal(err)
	}
	if existed {
		t.Fatal("fresh journal reported prior records")
	}
	trials := testJournalTrials()
	for _, tr := range trials[:2] {
		if err := j.Append(tr); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a kill mid-write: truncate the file partway through the
	// last record.
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, b[:len(b)-7], 0o644); err != nil {
		t.Fatal(err)
	}

	j, existed, err = OpenJournal(path, testJournalMeta())
	if err != nil {
		t.Fatal(err)
	}
	if !existed {
		t.Fatal("reopened journal reported no prior records")
	}
	for _, tr := range trials[2:] {
		if err := j.Append(tr); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	_, recs, err := ReadJournal(f)
	if err != nil {
		t.Fatal(err)
	}
	// Trial 0 survived, trial 1 was torn (lost), trials 2 and 3 were
	// appended after the reopen.
	for _, idx := range []int{0, 2, 3} {
		got, ok := recs[idx]
		if !ok {
			t.Errorf("trial %d missing after reopen", idx)
			continue
		}
		if !reflect.DeepEqual(got, trials[idx]) {
			t.Errorf("trial %d diverged after reopen", idx)
		}
	}
	if _, ok := recs[1]; ok {
		t.Error("the torn trial-1 record should have been dropped")
	}
}

// TestOpenJournalRejectsDifferentCampaign: a journal from a different
// campaign identity cannot be appended to.
func TestOpenJournalRejectsDifferentCampaign(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trials.jsonl")
	j, _, err := OpenJournal(path, testJournalMeta())
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	other := testJournalMeta()
	other.Seed = 43
	if _, _, err := OpenJournal(path, other); err == nil {
		t.Fatal("OpenJournal accepted a journal with a different seed")
	} else if !strings.Contains(err.Error(), "different campaign") {
		t.Errorf("error %v does not identify the campaign mismatch", err)
	}
}

// TestReadJournalRejectsBadHeaders: foreign streams and future schema
// versions are refused outright — resume identity must be established.
func TestReadJournalRejectsBadHeaders(t *testing.T) {
	cases := map[string]string{
		"empty":          "",
		"not json":       "hello\n",
		"foreign stream": `{"stream":"other-stream","schema_version":1,"trials":10}` + "\n",
		"future schema":  `{"stream":"hrmsim-trial-journal","schema_version":99,"trials":10}` + "\n",
	}
	for name, in := range cases {
		if _, _, err := ReadJournal(strings.NewReader(in)); err == nil {
			t.Errorf("%s: ReadJournal succeeded, want error", name)
		}
	}
}

// FuzzJournalReader: no input may panic the reader, and every record it
// does return must be in range with a valid disposition.
func FuzzJournalReader(f *testing.F) {
	var buf bytes.Buffer
	j, err := NewJournal(&buf, testJournalMeta())
	if err != nil {
		f.Fatal(err)
	}
	for _, tr := range testJournalTrials() {
		if err := j.Append(tr); err != nil {
			f.Fatal(err)
		}
	}
	full := buf.Bytes()
	f.Add(full)
	f.Add(full[:len(full)-9])
	f.Add([]byte(`{"stream":"hrmsim-trial-journal","schema_version":1,"trials":3}` + "\n" +
		`{"trial":1,"disposition":"aborted","abort_reason":"deadline"}` + "\n"))
	f.Add([]byte("{}\n{}\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		meta, recs, err := ReadJournal(bytes.NewReader(data))
		if err != nil {
			return
		}
		for idx, tr := range recs {
			if idx < 0 || idx >= meta.Trials {
				t.Fatalf("record index %d outside [0,%d)", idx, meta.Trials)
			}
			if tr.Index != idx {
				t.Fatalf("record keyed %d has Index %d", idx, tr.Index)
			}
			switch tr.Disposition {
			case DispositionCompleted, DispositionAborted:
			default:
				t.Fatalf("record %d has disposition %v", idx, tr.Disposition)
			}
		}
	})
}

// TestJournalRecordShape pins the on-disk field names — the journal is a
// versioned contract, so renames must bump JournalSchemaVersion.
func TestJournalRecordShape(t *testing.T) {
	var buf bytes.Buffer
	j, err := NewJournal(&buf, testJournalMeta())
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(testJournalTrials()[0]); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want header + record", len(lines))
	}
	var header map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &header); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"schema_version", "stream", "app", "error", "trials", "seed"} {
		if _, ok := header[key]; !ok {
			t.Errorf("header lacks %q: %s", key, lines[0])
		}
	}
	var rec map[string]any
	if err := json.Unmarshal([]byte(lines[1]), &rec); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"trial", "disposition", "result"} {
		if _, ok := rec[key]; !ok {
			t.Errorf("record lacks %q: %s", key, lines[1])
		}
	}
	res, ok := rec["result"].(map[string]any)
	if !ok {
		t.Fatalf("record result is %T", rec["result"])
	}
	for _, key := range []string{"outcome", "region", "region_kind", "injected_at_ns", "requests", "ended_at_ns", "crash_reason", "crash_stack"} {
		if _, ok := res[key]; !ok {
			t.Errorf("result lacks %q: %s", key, lines[1])
		}
	}
}
