package stats

import (
	"math"
)

// FitKind names a candidate distribution family for time-to-outcome data.
type FitKind int

// Distribution families used by the Fig. 5a analysis: the paper observes
// that crashes arrive roughly exponentially ("quick-to-crash") while
// incorrect results arrive roughly uniformly over the run ("periodically
// incorrect").
const (
	FitExponential FitKind = iota + 1
	FitUniform
)

// String returns the family name.
func (k FitKind) String() string {
	switch k {
	case FitExponential:
		return "exponential"
	case FitUniform:
		return "uniform"
	default:
		return "unknown"
	}
}

// Fit is the result of fitting one family to a sample.
type Fit struct {
	Kind FitKind
	// Rate is the MLE rate parameter for the exponential family
	// (1/mean); Hi is the upper bound for the uniform family.
	Rate float64
	Hi   float64
	// KS is the Kolmogorov–Smirnov statistic: the maximum absolute
	// difference between the sample ECDF and the fitted CDF. Smaller is
	// a better fit.
	KS float64
}

// FitExponentialMLE fits an exponential distribution to xs by maximum
// likelihood and reports the KS distance.
func FitExponentialMLE(xs []float64) (Fit, error) {
	s, err := Summarize(xs)
	if err != nil {
		return Fit{}, err
	}
	rate := 0.0
	if s.Mean > 0 {
		rate = 1 / s.Mean
	}
	e, err := NewECDF(xs)
	if err != nil {
		return Fit{}, err
	}
	cdf := func(x float64) float64 {
		if x < 0 {
			return 0
		}
		return 1 - math.Exp(-rate*x)
	}
	return Fit{Kind: FitExponential, Rate: rate, KS: ksDistance(e, cdf)}, nil
}

// FitUniformRange fits a Uniform(0, hi) distribution to xs, taking hi as
// the known observation horizon (for Fig. 5a this is the run length), and
// reports the KS distance.
func FitUniformRange(xs []float64, hi float64) (Fit, error) {
	e, err := NewECDF(xs)
	if err != nil {
		return Fit{}, err
	}
	if hi <= 0 {
		hi = e.Quantile(1)
	}
	cdf := func(x float64) float64 {
		switch {
		case x <= 0:
			return 0
		case x >= hi:
			return 1
		default:
			return x / hi
		}
	}
	return Fit{Kind: FitUniform, Hi: hi, KS: ksDistance(e, cdf)}, nil
}

// ksDistance computes the Kolmogorov–Smirnov statistic between the sample
// ECDF and a model CDF, evaluating at each sample point (where the ECDF
// jumps, both one-sided limits are considered).
func ksDistance(e *ECDF, cdf func(float64) float64) float64 {
	n := float64(len(e.xs))
	var d float64
	for i, x := range e.xs {
		f := cdf(x)
		hi := math.Abs(float64(i+1)/n - f)
		lo := math.Abs(float64(i)/n - f)
		if hi > d {
			d = hi
		}
		if lo > d {
			d = lo
		}
	}
	return d
}

// PreferredFit fits both families over horizon hi and returns the one with
// the smaller KS distance. It implements the Fig. 5a classification of
// "quick-to-crash" (exponential) versus "periodically incorrect" (uniform)
// outcome timing.
func PreferredFit(xs []float64, hi float64) (Fit, error) {
	fe, err := FitExponentialMLE(xs)
	if err != nil {
		return Fit{}, err
	}
	fu, err := FitUniformRange(xs, hi)
	if err != nil {
		return Fit{}, err
	}
	if fe.KS <= fu.KS {
		return fe, nil
	}
	return fu, nil
}

// KDE is a one-dimensional Gaussian kernel density estimate, used to draw
// the safe-ratio "violin" distributions of Fig. 5b.
type KDE struct {
	xs        []float64
	bandwidth float64
}

// NewKDE builds a KDE over xs using Silverman's rule-of-thumb bandwidth
// when bw <= 0.
func NewKDE(xs []float64, bw float64) (*KDE, error) {
	if len(xs) == 0 {
		return nil, ErrNoData
	}
	if bw <= 0 {
		s, err := Summarize(xs)
		if err != nil {
			return nil, err
		}
		sigma := s.Std
		if sigma == 0 {
			sigma = 1e-3 // degenerate sample: draw a narrow spike
		}
		bw = 1.06 * sigma * math.Pow(float64(len(xs)), -0.2)
	}
	return &KDE{xs: append([]float64(nil), xs...), bandwidth: bw}, nil
}

// Bandwidth returns the kernel bandwidth in use.
func (k *KDE) Bandwidth() float64 { return k.bandwidth }

// At evaluates the density estimate at x.
func (k *KDE) At(x float64) float64 {
	const invSqrt2Pi = 0.3989422804014327
	var sum float64
	for _, xi := range k.xs {
		u := (x - xi) / k.bandwidth
		sum += invSqrt2Pi * math.Exp(-0.5*u*u)
	}
	return sum / (float64(len(k.xs)) * k.bandwidth)
}

// Profile evaluates the density at n evenly spaced points across [lo, hi]
// and returns the values normalized so the maximum is 1 (convenient for
// rendering violins of differing scales side by side).
func (k *KDE) Profile(lo, hi float64, n int) []float64 {
	if n <= 0 {
		return nil
	}
	vals := make([]float64, n)
	maxV := 0.0
	for i := 0; i < n; i++ {
		x := lo
		if n > 1 {
			x = lo + (hi-lo)*float64(i)/float64(n-1)
		}
		vals[i] = k.At(x)
		if vals[i] > maxV {
			maxV = vals[i]
		}
	}
	if maxV > 0 {
		for i := range vals {
			vals[i] /= maxV
		}
	}
	return vals
}
