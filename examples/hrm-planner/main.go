// hrm-planner evaluates the paper's five Table 6 design points and then
// searches the full heterogeneous-reliability design space for the
// cheapest configuration meeting an availability target — the Fig. 7
// methodology as a program.
//
//	go run ./examples/hrm-planner
package main

import (
	"fmt"
	"log"
	"sort"

	"hrmsim"
)

func main() {
	vulns := hrmsim.PaperWebSearchVulnerability()

	fmt.Println("== The paper's five design points (Table 6) ==")
	rows, err := hrmsim.EvaluateTable6(vulns)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-18s %12s %11s %13s %12s  %s\n",
		"configuration", "server save", "crashes/mo", "availability", "incorrect/M", "meets 99.90%")
	for _, r := range rows {
		meets := "no"
		if r.MeetsTarget {
			meets = "yes"
		}
		fmt.Printf("%-18s %11.1f%% %11.1f %12.2f%% %12.1f  %s\n",
			r.Name, r.ServerSavings*100, r.CrashesPerMonth, r.Availability*100,
			r.IncorrectPerMillion, meets)
	}

	for _, target := range []float64{0.999, 0.9999} {
		fmt.Printf("\n== Cheapest design meeting %.2f%% availability ==\n", target*100)
		res, err := hrmsim.Plan(hrmsim.PlanConfig{
			Vulnerabilities:    vulns,
			TargetAvailability: target,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("searched %d designs, %d feasible; best saves %.1f%% of server cost at %.3f%% availability\n",
			res.Considered, res.Feasible, res.Best.ServerSavings*100, res.Best.Availability*100)
		var regions []string
		for r := range res.BestMapping {
			regions = append(regions, r)
		}
		sort.Strings(regions)
		for _, r := range regions {
			fmt.Printf("  %-8s -> %s\n", r, res.BestMapping[r])
		}
	}
}
