package core

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"hrmsim/internal/faults"
	"hrmsim/internal/obsv"
)

func TestShardStatusNames(t *testing.T) {
	if got, want := ShardStatusName(3, 8), "shard-0003-of-0008.status.json"; got != want {
		t.Errorf("ShardStatusName = %q, want %q", got, want)
	}
	if got, want := StatusPathFor("/x/shard-0003-of-0008.jsonl"), "/x/shard-0003-of-0008.status.json"; got != want {
		t.Errorf("StatusPathFor = %q, want %q", got, want)
	}
	if got, want := StatusPathFor("plain"), "plain.status.json"; got != want {
		t.Errorf("StatusPathFor without .jsonl = %q, want %q", got, want)
	}
}

func TestWriteReadStatusRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, ShardStatusName(1, 2))
	reg := obsv.NewRegistry()
	reg.Counter("campaign_trials_total").Add(5)
	snap := reg.Snapshot()
	st := ShardStatus{
		ConfigHash:     "abc",
		Campaign:       JournalMeta{App: "kvstore", Error: "soft-1bit", Trials: 10, Seed: 3},
		ShardIndex:     1,
		ShardCount:     2,
		TrialLo:        5,
		TrialHi:        10,
		Done:           5,
		Total:          5,
		Completed:      4,
		Aborted:        1,
		Outcomes:       map[string]int{"crash": 1, "masked-by-overwrite": 3},
		TrialsPerSec:   2.5,
		EtaSeconds:     0,
		ElapsedSeconds: 2,
		Running:        false,
		WallUnixNanos:  12345,
		Metrics:        &snap,
	}
	if err := WriteStatus(path, st); err != nil {
		t.Fatal(err)
	}
	// Atomic write leaves no temp debris behind.
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Errorf("temp file survived the rename: %v", err)
	}
	got, err := ReadStatus(path)
	if err != nil {
		t.Fatal(err)
	}
	st.SchemaVersion = StatusSchemaVersion
	st.Stream = StatusStream
	if !reflect.DeepEqual(got, st) {
		t.Errorf("round-trip:\ngot  %+v\nwant %+v", got, st)
	}
}

func TestReadStatusRejectsForeignAndMalformed(t *testing.T) {
	dir := t.TempDir()
	write := func(name, body string) string {
		t.Helper()
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	cases := []struct {
		name, body, wantErr string
	}{
		{"wrong-stream.status.json", `{"stream":"other","schema_version":1,"shard_index":0,"shard_count":1}`, "not a shard status"},
		{"wrong-version.status.json", `{"stream":"hrmsim-shard-status","schema_version":99,"shard_index":0,"shard_count":1}`, "schema version"},
		{"bad-coords.status.json", `{"stream":"hrmsim-shard-status","schema_version":1,"shard_index":4,"shard_count":2}`, "shard index"},
		{"torn.status.json", `{"stream":"hrmsim-shard-sta`, "parsing"},
	}
	for _, c := range cases {
		if _, err := ReadStatus(write(c.name, c.body)); err == nil || !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("%s: err = %v, want containing %q", c.name, err, c.wantErr)
		}
	}
}

func TestLoadStatusDir(t *testing.T) {
	dir := t.TempDir()
	// Empty directory: no error, no records (pre-first-heartbeat state).
	got, err := LoadStatusDir(dir)
	if err != nil || len(got) != 0 {
		t.Fatalf("empty dir: %v, %v", got, err)
	}
	for _, idx := range []int{2, 0, 1} {
		st := ShardStatus{ShardIndex: idx, ShardCount: 3, Done: idx}
		if err := WriteStatus(filepath.Join(dir, ShardStatusName(idx, 3)), st); err != nil {
			t.Fatal(err)
		}
	}
	// Unrelated files are skipped.
	if err := os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err = LoadStatusDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("loaded %d records, want 3", len(got))
	}
	for i, st := range got {
		if st.ShardIndex != i {
			t.Errorf("record %d has shard index %d (want sorted)", i, st.ShardIndex)
		}
	}
}

func TestSupervisorEmitsStatus(t *testing.T) {
	reg := obsv.NewRegistry()
	var got []ShardStatus
	res, err := Run(CampaignConfig{
		Builder:     kvBuilder(t, 5),
		Spec:        faults.SingleBitSoft,
		Trials:      20,
		Seed:        11,
		Parallelism: 2,
		Metrics:     reg,
		StatusSink:  func(st ShardStatus) { got = append(got, st) },
		// A huge interval: only the initial and final records are
		// guaranteed, which is exactly what this test pins.
		StatusInterval: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) < 2 {
		t.Fatalf("got %d status records, want >= 2 (initial + final)", len(got))
	}
	first, last := got[0], got[len(got)-1]
	if !first.Running || first.Done != 0 || first.Total != 20 {
		t.Errorf("initial record = %+v, want running with 0/20 done", first)
	}
	if first.ShardCount != 1 || first.TrialLo != 0 || first.TrialHi != 20 {
		t.Errorf("initial record coords = %+v, want unsharded full range", first)
	}
	if last.Running {
		t.Error("final record still has Running=true")
	}
	if last.Done != 20 || last.Completed != res.Completed() || last.Aborted != res.AbortedCount() {
		t.Errorf("final record = %+v, want done=20 completed=%d aborted=%d",
			last, res.Completed(), res.AbortedCount())
	}
	// Outcome taxonomy counts must agree with the campaign result.
	for _, o := range Outcomes() {
		if last.Outcomes[o.String()] != res.Count(o) {
			t.Errorf("final outcome %s = %d, want %d", o, last.Outcomes[o.String()], res.Count(o))
		}
	}
	// Done is monotone across heartbeats.
	for i := 1; i < len(got); i++ {
		if got[i].Done < got[i-1].Done {
			t.Errorf("Done regressed: %d then %d", got[i-1].Done, got[i].Done)
		}
	}
	// The heartbeat carries the live registry snapshot.
	if last.Metrics == nil {
		t.Fatal("final record has no metrics snapshot")
	}
	if n := last.Metrics.Counters["campaign_trials_total"]; n != int64(res.Completed()) {
		t.Errorf("snapshot campaign_trials_total = %d, want %d", n, res.Completed())
	}
}

func TestSupervisorStatusShardedAndResumed(t *testing.T) {
	spec := ShardSpec{Index: 1, Count: 2}
	resume := map[int]TrialResult{
		// Trial 10 falls inside shard 1's range [10, 20) of 20 trials.
		10: {Disposition: DispositionCompleted, Outcome: OutcomeMaskedLatent},
		// Trial 0 belongs to shard 0 and must be ignored.
		0: {Disposition: DispositionCompleted, Outcome: OutcomeCrash},
	}
	var got []ShardStatus
	res, err := Run(CampaignConfig{
		Builder:        kvBuilder(t, 5),
		Spec:           faults.SingleBitSoft,
		Trials:         20,
		Seed:           11,
		Shard:          &spec,
		Resume:         resume,
		StatusSink:     func(st ShardStatus) { got = append(got, st) },
		StatusInterval: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	first, last := got[0], got[len(got)-1]
	if first.ShardIndex != 1 || first.ShardCount != 2 || first.TrialLo != 10 || first.TrialHi != 20 {
		t.Errorf("initial coords = %+v, want shard 1/2 range [10,20)", first)
	}
	if first.Done != 1 || first.Resumed != 1 || first.Outcomes["masked-latent"] != 1 {
		t.Errorf("initial record = %+v, want one resumed masked-latent trial", first)
	}
	if last.Done != 10 || last.Total != 10 || last.Completed != res.Completed() {
		t.Errorf("final record = %+v, want 10/10 done, completed=%d", last, res.Completed())
	}
	if last.Outcomes["crash"] != res.Count(OutcomeCrash) {
		t.Errorf("final crash count = %d, want %d", last.Outcomes["crash"], res.Count(OutcomeCrash))
	}
}
