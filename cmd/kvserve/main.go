// Command kvserve runs the simulated in-memory key–value store behind a
// tiny memcached-like TCP text protocol, with memory errors arriving on a
// virtual clock — a live demonstration of what a given error rate does to
// an unprotected (or protected) cache node. The server itself lives in
// internal/kvnode (see its package comment for the protocol and the
// concurrency model); this command adds flags, signal handling, and the
// HTTP observability sidecar.
//
// Connections are served concurrently: per-connection goroutines
// interleave at command granularity on the shared simulated memory
// (serialized by its exclusion gate), which is what lets a chaos
// experiment (`hrmsim chaos`, internal/chaos) inject faults into the live
// server while hundreds of clients are talking to it.
//
// Flags select the protection technique and software recovery response, so
// the same session can be run with -ecc secded to watch the errors
// disappear, or -ecc parity -recover parr to watch Par+R repair them from
// the backing copy.
//
// With -metrics-addr, an HTTP observability sidecar serves /metrics (the
// obsv snapshot, plain text or ?format=json — see OBSERVABILITY.md for
// every metric name), /healthz, and the standard net/http/pprof handlers
// under /debug/pprof/. The process shuts down gracefully on SIGINT or
// SIGTERM: the TCP listener closes, in-flight connections drain (bounded
// by -drain-timeout), and the sidecar stops.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"hrmsim/internal/kvnode"
	"hrmsim/internal/obsv"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:11222", "listen address")
	keys := flag.Int("keys", 1024, "pre-populated key count")
	eccName := flag.String("ecc", "none", "heap protection: none|parity|secded|chipkill")
	seed := flag.Int64("seed", 1, "random seed")
	recoverMode := flag.String("recover", "",
		"software recovery on the heap: parr|parr-page|parr-escalate|retire (empty = none)")
	retireThreshold := flag.Uint64("retire-threshold", 2,
		"corrected errors per page before -recover retire replaces the frame")
	checkpoint := flag.Duration("checkpoint", 0,
		"virtual-time interval between heap checkpoints (0 = build-time checkpoint only; needs -recover)")
	maxLine := flag.Int("max-line", kvnode.DefaultMaxLine, "protocol line length bound in bytes")
	drainTimeout := flag.Duration("drain-timeout", 5*time.Second,
		"graceful-shutdown wait for in-flight connections")
	once := flag.Bool("once", false, "serve a single connection then exit (for scripted demos)")
	metricsAddr := flag.String("metrics-addr", "",
		"serve /metrics, /healthz, and /debug/pprof on this HTTP address (empty = disabled)")
	flag.Parse()

	srv, err := kvnode.New(kvnode.Config{
		Keys:            *keys,
		ECC:             *eccName,
		Seed:            *seed,
		Recover:         *recoverMode,
		RetireThreshold: *retireThreshold,
		CheckpointEvery: *checkpoint,
		MaxLine:         *maxLine,
		DrainTimeout:    *drainTimeout,
	})
	if err != nil {
		log.Fatalf("kvserve: %v", err)
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("kvserve: %v", err)
	}
	log.Printf("kvserve: listening on %s (heap protection: %s, recovery: %s, %d keys)",
		ln.Addr(), *eccName, orNone(*recoverMode), *keys)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var metrics *http.Server
	if *metricsAddr != "" {
		mln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			log.Fatalf("kvserve: metrics listener: %v", err)
		}
		// The sidecar is long-lived and unauthenticated, so a slow or
		// stalled client must not be able to pin a connection (and its
		// goroutine) forever. No WriteTimeout: pprof profile captures
		// legitimately stream for tens of seconds.
		metrics = &http.Server{
			Handler:           metricsMux(srv.Registry()),
			ReadHeaderTimeout: 5 * time.Second,
			ReadTimeout:       10 * time.Second,
			IdleTimeout:       120 * time.Second,
		}
		go func() {
			if err := metrics.Serve(mln); err != nil && err != http.ErrServerClosed {
				log.Printf("kvserve: metrics: %v", err)
			}
		}()
		log.Printf("kvserve: metrics on http://%s/metrics", mln.Addr())
	}

	if *once {
		conn, err := ln.Accept()
		if err != nil {
			log.Fatalf("kvserve: accept: %v", err)
		}
		srv.Handle(conn)
		_ = ln.Close()
	} else if err := srv.Serve(ctx, ln); err != nil {
		log.Printf("kvserve: %v", err)
	}
	log.Printf("kvserve: shutting down")
	if metrics != nil {
		sctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
		defer cancel()
		_ = metrics.Shutdown(sctx)
	}
}

func orNone(s string) string {
	if s == "" {
		return "none"
	}
	return s
}

// metricsMux builds the observability sidecar: the obsv snapshot, a
// liveness probe, and the standard pprof profiling handlers.
func metricsMux(reg *obsv.Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", obsv.Handler(reg))
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
