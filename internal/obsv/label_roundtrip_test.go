package obsv

import (
	"bufio"
	"bytes"
	"encoding/json"
	"reflect"
	"strconv"
	"strings"
	"testing"
)

// Label values arrive from the outside world (abort reasons carry error
// text, shard labels carry paths) and may contain quotes, braces, spaces,
// or backslashes. LabeledName %q-quotes the value, so the resulting
// metric name must survive both encoders losslessly.
var hostileLabelValues = []string{
	`plain`,
	`has space`,
	`quo"te`,
	`brace{y}`,
	`back\slash`,
	`all{of="it"} \ done`,
	`trailing\`,
	"tab\tand\nnewline",
}

func TestLabeledNameTextExpositionRoundTrip(t *testing.T) {
	r := NewRegistry()
	wantCounters := make(map[string]int64)
	for i, v := range hostileLabelValues {
		name := LabeledName("campaign_trials_aborted_total", "reason", v)
		r.Counter(name).Add(int64(i + 1))
		wantCounters[name] = int64(i + 1)
	}
	var buf bytes.Buffer
	if err := r.Snapshot().WriteText(&buf); err != nil {
		t.Fatal(err)
	}

	// The exposition contract: one metric per line, the value after the
	// final space. %q escapes embedded newlines/tabs, so a hostile label
	// can never split or spoof a line.
	got := make(map[string]int64)
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		line := sc.Text()
		i := strings.LastIndex(line, " ")
		if i < 0 {
			t.Fatalf("malformed exposition line %q", line)
		}
		name, valText := line[:i], line[i+1:]
		val, err := strconv.ParseInt(valText, 10, 64)
		if err != nil {
			t.Fatalf("line %q: value %q: %v", line, valText, err)
		}
		got[name] = val
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, wantCounters) {
		t.Errorf("text round-trip:\ngot  %v\nwant %v", got, wantCounters)
	}
	// Each parsed name must decode back to its original label value.
	for _, v := range hostileLabelValues {
		name := LabeledName("campaign_trials_aborted_total", "reason", v)
		const prefix = `campaign_trials_aborted_total{reason=`
		if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, "}") {
			t.Fatalf("unexpected LabeledName shape %q", name)
		}
		decoded, err := strconv.Unquote(name[len(prefix) : len(name)-1])
		if err != nil {
			t.Fatalf("label for %q does not unquote: %v", v, err)
		}
		if decoded != v {
			t.Errorf("label round-trip: got %q, want %q", decoded, v)
		}
	}
}

func TestLabeledNameJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	for i, v := range hostileLabelValues {
		r.Counter(LabeledName("campaign_trials_aborted_total", "reason", v)).Add(int64(i + 1))
		r.Gauge(LabeledName("level", "shard", v)).Set(float64(i) + 0.5)
		r.Histogram(LabeledName("lat_ms", "op", v), []float64{1, 10}).Observe(float64(i))
	}
	want := r.Snapshot()

	// The -json envelope embeds the snapshot via encoding/json exactly as
	// MarshalJSONIndent does; unmarshalling must reproduce it bit-for-bit.
	b, err := want.MarshalJSONIndent()
	if err != nil {
		t.Fatal(err)
	}
	var got Snapshot
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatalf("unmarshal: %v\njson: %s", err, b)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("JSON round-trip:\ngot  %+v\nwant %+v", got, want)
	}

	// Hostile names must also survive a merge unchanged.
	if merged := MergeSnapshots(got); !reflect.DeepEqual(merged, want) {
		t.Errorf("merge of round-tripped snapshot differs:\ngot  %+v\nwant %+v", merged, want)
	}
}
