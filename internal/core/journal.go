// The trial journal: an append-only, schema-versioned JSONL record of
// every finished trial, flushed per record so a killed or interrupted
// campaign loses at most the trial being written. Because trial i's
// generator depends only on (Seed, i), replaying a journal through
// CampaignConfig.Resume and running the remaining indices is
// bit-identical to an uninterrupted run — the journal is the campaign
// engine's own "explicit recoverability" checkpoint.
//
// Format: one JSON header line (JournalMeta: stream id, schema version,
// and the campaign identity used to reject resuming a different
// campaign), then one JSON record per trial. The reader is deliberately
// tolerant of the failure modes of an interrupted writer: a torn or
// corrupted trailing line is skipped, and duplicate records for one
// trial keep the first occurrence, so a resume never double-counts.

package core

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"hrmsim/internal/simmem"
)

// JournalSchemaVersion identifies the journal record schema. Renaming or
// removing a field, or changing a field's meaning or unit, bumps this
// number; additions do not.
const JournalSchemaVersion = 1

// JournalStream is the stream identifier in every journal header.
const JournalStream = "hrmsim-trial-journal"

// JournalMeta is the journal's header line: the schema version plus the
// campaign identity, so a resume against the wrong campaign (different
// seed, size, or error type — whose trial results would be garbage) is
// rejected instead of silently merged.
type JournalMeta struct {
	SchemaVersion int    `json:"schema_version"`
	Stream        string `json:"stream"`
	// App, Error, Region, Trials, Seed, Size, and Warmup identify the
	// campaign. Two journals with equal identity describe the same
	// deterministic trial sequence.
	App    string `json:"app"`
	Error  string `json:"error"`
	Region string `json:"region,omitempty"`
	Trials int    `json:"trials"`
	Seed   int64  `json:"seed"`
	Size   int64  `json:"size,omitempty"`
	Warmup int    `json:"warmup,omitempty"`
	// TargetCI / CILevel / MinTrials / MaxTrials pin an adaptive
	// campaign's stopping rule: two adaptive runs only describe the
	// same trial sequence if they would also stop at the same boundary.
	// All zero (and omitted from JSON) for fixed campaigns, so the
	// fixed-campaign identity — and ConfigHash — is unchanged from
	// schema version 1 readers' and writers' point of view.
	TargetCI  float64 `json:"target_ci,omitempty"`
	CILevel   float64 `json:"ci_level,omitempty"`
	MinTrials int     `json:"min_trials,omitempty"`
	MaxTrials int     `json:"max_trials,omitempty"`
}

// Matches reports (as an error) any identity difference between the
// journal's campaign and the one about to run.
func (m JournalMeta) Matches(other JournalMeta) error {
	switch {
	case m.App != other.App:
		return fmt.Errorf("journal is for app %q, campaign is %q", m.App, other.App)
	case m.Error != other.Error:
		return fmt.Errorf("journal injected %q, campaign injects %q", m.Error, other.Error)
	case m.Region != other.Region:
		return fmt.Errorf("journal region filter %q, campaign %q", m.Region, other.Region)
	case m.Trials != other.Trials:
		return fmt.Errorf("journal has %d trials, campaign has %d", m.Trials, other.Trials)
	case m.Seed != other.Seed:
		return fmt.Errorf("journal seed %d, campaign seed %d", m.Seed, other.Seed)
	case m.Size != other.Size:
		return fmt.Errorf("journal size %d, campaign size %d", m.Size, other.Size)
	case m.Warmup != other.Warmup:
		return fmt.Errorf("journal warmup %d, campaign warmup %d", m.Warmup, other.Warmup)
	case m.TargetCI != other.TargetCI:
		return fmt.Errorf("journal target CI %g, campaign target CI %g", m.TargetCI, other.TargetCI)
	case m.CILevel != other.CILevel:
		return fmt.Errorf("journal CI level %g, campaign CI level %g", m.CILevel, other.CILevel)
	case m.MinTrials != other.MinTrials:
		return fmt.Errorf("journal min trials %d, campaign min trials %d", m.MinTrials, other.MinTrials)
	case m.MaxTrials != other.MaxTrials:
		return fmt.Errorf("journal max trials %d, campaign max trials %d", m.MaxTrials, other.MaxTrials)
	}
	return nil
}

// journalRecord is one journal line. Aborted trials carry the abort
// fields and no result; completed trials carry the full result with
// virtual times as integer nanoseconds, so a read-back is bit-identical
// to the in-memory TrialResult.
type journalRecord struct {
	Trial       int               `json:"trial"`
	Disposition string            `json:"disposition"`
	AbortReason string            `json:"abort_reason,omitempty"`
	AbortDetail string            `json:"abort_detail,omitempty"`
	Result      *journalTrialJSON `json:"result,omitempty"`
	// Planner carries an adaptive planner's stop/continue verdict
	// instead of a trial result. Decision records use the sentinel
	// Trial index −1 (plannerDecisionTrial), which every schema-1
	// reader already drops from the trial map — the decision stream
	// rides along without a schema bump and without perturbing resume.
	Planner *plannerDecisionJSON `json:"planner,omitempty"`
}

// plannerDecisionTrial is the sentinel trial index of a planner
// decision record (outside [0, Trials), so trial readers skip it).
const plannerDecisionTrial = -1

// plannerDecisionName is the disposition tag of a decision record.
const plannerDecisionName = "planner-decision"

// plannerDecisionJSON mirrors PlannerDecision (see planner.go) on the
// journal wire.
type plannerDecisionJSON struct {
	Boundary     int     `json:"boundary"`
	Completed    int     `json:"completed"`
	Crashes      int     `json:"crashes"`
	HalfWidth    float64 `json:"half_width"`
	Target       float64 `json:"target"`
	Stop         bool    `json:"stop,omitempty"`
	Exhausted    bool    `json:"exhausted,omitempty"`
	NextBoundary int     `json:"next_boundary,omitempty"`
	Replayed     bool    `json:"replayed,omitempty"`
}

type journalTrialJSON struct {
	Outcome       string  `json:"outcome"`
	Region        string  `json:"region"`
	RegionKind    string  `json:"region_kind"`
	InjectedAtNs  int64   `json:"injected_at_ns"`
	EffectAtNs    int64   `json:"effect_at_ns,omitempty"`
	Incorrect     int     `json:"incorrect,omitempty"`
	IncorrectAtNs []int64 `json:"incorrect_at_ns,omitempty"`
	Requests      int     `json:"requests"`
	EndedAtNs     int64   `json:"ended_at_ns"`
	CrashReason   string  `json:"crash_reason,omitempty"`
	CrashStack    string  `json:"crash_stack,omitempty"`
}

func toJournalRecord(tr TrialResult) journalRecord {
	rec := journalRecord{
		Trial:       tr.Index,
		Disposition: tr.Disposition.String(),
		AbortReason: tr.AbortReason,
		AbortDetail: tr.AbortDetail,
	}
	if tr.Disposition != DispositionCompleted {
		return rec
	}
	j := &journalTrialJSON{
		Outcome:      tr.Outcome.String(),
		Region:       tr.Region,
		RegionKind:   tr.Kind.String(),
		InjectedAtNs: int64(tr.InjectedAt),
		EffectAtNs:   int64(tr.EffectAt),
		Incorrect:    tr.Incorrect,
		Requests:     tr.Requests,
		EndedAtNs:    int64(tr.EndedAt),
		CrashReason:  tr.CrashReason,
		CrashStack:   tr.CrashStack,
	}
	for _, at := range tr.IncorrectAt {
		j.IncorrectAtNs = append(j.IncorrectAtNs, int64(at))
	}
	rec.Result = j
	return rec
}

// recordToTrial validates and converts one parsed journal line. A record
// that does not decode to a well-formed trial (unknown disposition or
// outcome, missing result) is treated like a corrupted line.
func recordToTrial(rec journalRecord) (TrialResult, bool) {
	switch rec.Disposition {
	case DispositionAborted.String():
		return TrialResult{
			Index:       rec.Trial,
			Disposition: DispositionAborted,
			AbortReason: rec.AbortReason,
			AbortDetail: rec.AbortDetail,
		}, true
	case DispositionCompleted.String():
		if rec.Result == nil {
			return TrialResult{}, false
		}
		o, ok := outcomeFromName(rec.Result.Outcome)
		if !ok {
			return TrialResult{}, false
		}
		k, ok := regionKindFromName(rec.Result.RegionKind)
		if !ok {
			return TrialResult{}, false
		}
		tr := TrialResult{
			Index:       rec.Trial,
			Outcome:     o,
			Region:      rec.Result.Region,
			Kind:        k,
			InjectedAt:  time.Duration(rec.Result.InjectedAtNs),
			EffectAt:    time.Duration(rec.Result.EffectAtNs),
			Incorrect:   rec.Result.Incorrect,
			Requests:    rec.Result.Requests,
			EndedAt:     time.Duration(rec.Result.EndedAtNs),
			CrashReason: rec.Result.CrashReason,
			CrashStack:  rec.Result.CrashStack,
		}
		for _, ns := range rec.Result.IncorrectAtNs {
			tr.IncorrectAt = append(tr.IncorrectAt, time.Duration(ns))
		}
		return tr, true
	}
	return TrialResult{}, false
}

// Journal appends trial records to a stream, flushing after every record
// so an interrupted campaign loses at most the line being written.
// Append is safe for concurrent use by the campaign's workers. Write
// errors are sticky: the first one is kept and returned by every later
// Append, Err, and Close, so the campaign itself keeps running.
type Journal struct {
	mu     sync.Mutex
	w      io.Writer
	bw     *bufio.Writer
	err    error
	closed bool
}

// NewJournal wraps w as a fresh journal, writing the header line
// immediately (the stream id and schema version are stamped on).
func NewJournal(w io.Writer, meta JournalMeta) (*Journal, error) {
	meta.SchemaVersion = JournalSchemaVersion
	meta.Stream = JournalStream
	j := &Journal{w: w, bw: bufio.NewWriter(w)}
	b, err := json.Marshal(meta)
	if err != nil {
		return nil, fmt.Errorf("core: encoding journal header: %w", err)
	}
	j.bw.Write(b)
	j.bw.WriteByte('\n')
	if err := j.bw.Flush(); err != nil {
		return nil, fmt.Errorf("core: writing journal header: %w", err)
	}
	return j, nil
}

// OpenJournal opens path for journaling, creating it (with a header) if
// missing or empty. If the file already holds a journal, its header must
// match meta's campaign identity; the file is then repaired for
// appending — a torn trailing line from a killed writer is terminated so
// the next record starts clean (the tolerant reader skips the torn
// line). The second return reports whether prior records existed.
func OpenJournal(path string, meta JournalMeta) (*Journal, bool, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, false, fmt.Errorf("core: opening journal: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, false, fmt.Errorf("core: opening journal: %w", err)
	}
	if st.Size() == 0 {
		j, err := NewJournal(f, meta)
		if err != nil {
			f.Close()
			return nil, false, err
		}
		return j, false, nil
	}

	existing, _, err := ReadJournal(f)
	if err != nil {
		f.Close()
		return nil, false, fmt.Errorf("core: journal %s: %w", path, err)
	}
	if err := existing.Matches(meta); err != nil {
		f.Close()
		return nil, false, fmt.Errorf("core: journal %s belongs to a different campaign: %w", path, err)
	}
	// Terminate a torn trailing line before appending.
	last := make([]byte, 1)
	if _, err := f.ReadAt(last, st.Size()-1); err != nil {
		f.Close()
		return nil, false, fmt.Errorf("core: journal %s: %w", path, err)
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, false, fmt.Errorf("core: journal %s: %w", path, err)
	}
	j := &Journal{w: f, bw: bufio.NewWriter(f)}
	if last[0] != '\n' {
		j.bw.WriteByte('\n')
		if err := j.bw.Flush(); err != nil {
			f.Close()
			return nil, false, fmt.Errorf("core: journal %s: %w", path, err)
		}
	}
	return j, true, nil
}

// Append writes one trial record and flushes it.
func (j *Journal) Append(tr TrialResult) error {
	return j.appendRecord(toJournalRecord(tr))
}

// AppendDecision writes one planner decision record and flushes it.
// Decision records document the adaptive stop/continue stream (under
// the sentinel trial index −1) so a resumed campaign's replay is
// auditable against the original run; trial readers skip them.
func (j *Journal) AppendDecision(d PlannerDecision) error {
	return j.appendRecord(journalRecord{
		Trial:       plannerDecisionTrial,
		Disposition: plannerDecisionName,
		Planner: &plannerDecisionJSON{
			Boundary:     d.Boundary,
			Completed:    d.Completed,
			Crashes:      d.Crashes,
			HalfWidth:    d.HalfWidth,
			Target:       d.Target,
			Stop:         d.Stop,
			Exhausted:    d.Exhausted,
			NextBoundary: d.NextBoundary,
			Replayed:     d.Replayed,
		},
	})
}

func (j *Journal) appendRecord(rec journalRecord) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return j.err
	}
	if j.closed {
		j.err = fmt.Errorf("core: append to closed journal")
		return j.err
	}
	b, err := json.Marshal(rec)
	if err != nil {
		j.err = fmt.Errorf("core: encoding journal record: %w", err)
		return j.err
	}
	j.bw.Write(b)
	j.bw.WriteByte('\n')
	if err := j.bw.Flush(); err != nil {
		j.err = fmt.Errorf("core: writing journal record: %w", err)
	}
	return j.err
}

// Err returns the sticky write error, if any.
func (j *Journal) Err() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Close flushes and, when the underlying writer is a closer (a file),
// closes it. It returns the sticky error.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return j.err
	}
	j.closed = true
	if err := j.bw.Flush(); err != nil && j.err == nil {
		j.err = fmt.Errorf("core: flushing journal: %w", err)
	}
	if c, ok := j.w.(io.Closer); ok {
		if err := c.Close(); err != nil && j.err == nil {
			j.err = fmt.Errorf("core: closing journal: %w", err)
		}
	}
	return j.err
}

// journalMaxLine bounds one journal line (a record with a full
// 256-sample incorrect-time list and a crash stack fits well within it).
const journalMaxLine = 4 << 20

// ReadJournal parses a trial journal for resuming. The header must be
// intact (a journal whose identity cannot be established is useless for
// resume), but the records are read tolerantly: lines that do not parse
// or validate — the torn tail of a killed writer — are skipped, reading
// continues, and duplicate records for one trial keep the first, so a
// resume never double-counts a trial. Records whose index falls outside
// [0, meta.Trials) are likewise dropped.
func ReadJournal(r io.Reader) (JournalMeta, map[int]TrialResult, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), journalMaxLine)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return JournalMeta{}, nil, fmt.Errorf("reading journal header: %w", err)
		}
		return JournalMeta{}, nil, fmt.Errorf("journal is empty")
	}
	var meta JournalMeta
	if err := json.Unmarshal(sc.Bytes(), &meta); err != nil {
		return JournalMeta{}, nil, fmt.Errorf("parsing journal header: %w", err)
	}
	if meta.Stream != JournalStream {
		return JournalMeta{}, nil, fmt.Errorf("not a trial journal (stream %q)", meta.Stream)
	}
	if meta.SchemaVersion != JournalSchemaVersion {
		return JournalMeta{}, nil, fmt.Errorf("unsupported journal schema version %d (want %d)",
			meta.SchemaVersion, JournalSchemaVersion)
	}
	out := make(map[int]TrialResult)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec journalRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			continue
		}
		if rec.Trial < 0 || rec.Trial >= meta.Trials {
			continue
		}
		if _, dup := out[rec.Trial]; dup {
			continue
		}
		tr, ok := recordToTrial(rec)
		if !ok {
			continue
		}
		out[rec.Trial] = tr
	}
	// A scanner error here (an over-long torn tail) is tolerated the
	// same way a corrupted line is: keep what parsed.
	return meta, out, nil
}

// ReadJournalDecisions parses the planner decision stream of a journal
// (records under the sentinel trial index −1), in append order, with
// the same tolerance as ReadJournal: unparseable lines are skipped. A
// fixed campaign's journal yields none.
func ReadJournalDecisions(r io.Reader) ([]PlannerDecision, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), journalMaxLine)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, fmt.Errorf("reading journal header: %w", err)
		}
		return nil, fmt.Errorf("journal is empty")
	}
	var out []PlannerDecision
	for sc.Scan() {
		var rec journalRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			continue
		}
		if rec.Trial != plannerDecisionTrial || rec.Planner == nil {
			continue
		}
		out = append(out, PlannerDecision{
			Boundary:     rec.Planner.Boundary,
			Completed:    rec.Planner.Completed,
			Crashes:      rec.Planner.Crashes,
			HalfWidth:    rec.Planner.HalfWidth,
			Target:       rec.Planner.Target,
			Stop:         rec.Planner.Stop,
			Exhausted:    rec.Planner.Exhausted,
			NextBoundary: rec.Planner.NextBoundary,
			Replayed:     rec.Planner.Replayed,
		})
	}
	return out, nil
}

// outcomeFromName is the inverse of Outcome.String for journal decoding.
func outcomeFromName(s string) (Outcome, bool) {
	for _, o := range Outcomes() {
		if o.String() == s {
			return o, true
		}
	}
	return 0, false
}

// regionKindFromName is the inverse of simmem.RegionKind.String.
func regionKindFromName(s string) (simmem.RegionKind, bool) {
	for _, k := range []simmem.RegionKind{
		simmem.RegionPrivate, simmem.RegionHeap, simmem.RegionStack, simmem.RegionOther,
	} {
		if k.String() == s {
			return k, true
		}
	}
	return 0, false
}
