package hrmsim

import (
	"errors"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"hrmsim/internal/core"
	"hrmsim/internal/obsv"
)

// TestFleetStatusMatchesMergedCharacterization pins the acceptance
// criterion of the control plane: after a sharded campaign, the fleet
// aggregate read from the shard directory's status records reports
// exactly the trial counts of the merged Characterization.
func TestFleetStatusMatchesMergedCharacterization(t *testing.T) {
	dir := t.TempDir()
	const shards = 3
	base := CharacterizeConfig{
		App:    AppKVStore,
		Error:  SoftSingleBit,
		Size:   SizeSmall,
		Trials: 30,
		Seed:   13,
	}
	for i := 0; i < shards; i++ {
		cfg := base
		cfg.ShardIndex, cfg.ShardCount = i, shards
		cfg.JournalPath = filepath.Join(dir, core.ShardJournalName(i, shards))
		cfg.ManifestPath = filepath.Join(dir, core.ShardManifestName(i, shards))
		cfg.StatusPath = filepath.Join(dir, core.ShardStatusName(i, shards))
		cfg.Metrics = obsv.NewRegistry()
		if _, err := Characterize(cfg); err != nil {
			t.Fatal(err)
		}
	}
	merged, info, err := MergeShards(MergeConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	fs, err := LoadFleetStatus(dir)
	if err != nil {
		t.Fatal(err)
	}

	if fs.App != base.App || fs.Error != base.Error || fs.Trials != base.Trials || fs.Seed != base.Seed {
		t.Errorf("fleet identity = %+v, want the campaign's", fs)
	}
	if fs.ConfigHash != info.ConfigHash {
		t.Errorf("fleet config hash %s != merge's %s", fs.ConfigHash, info.ConfigHash)
	}
	if fs.Done != base.Trials || fs.Total != base.Trials {
		t.Errorf("fleet done/total = %d/%d, want %d/%d", fs.Done, fs.Total, base.Trials, base.Trials)
	}
	if fs.Completed != merged.Completed || fs.Aborted != merged.Aborted {
		t.Errorf("fleet completed/aborted = %d/%d, want %d/%d",
			fs.Completed, fs.Aborted, merged.Completed, merged.Aborted)
	}
	// The aggregate outcome taxonomy must match the merged science
	// exactly (the merged map also carries explicit zeros).
	for o, n := range merged.Outcomes {
		if fs.Outcomes[o] != n {
			t.Errorf("fleet outcome %s = %d, want %d", o, fs.Outcomes[o], n)
		}
	}
	for o, n := range fs.Outcomes {
		if merged.Outcomes[o] != n {
			t.Errorf("fleet reports outcome %s=%d the merge does not", o, n)
		}
	}
	if fs.Running != 0 || fs.Interrupted != 0 {
		t.Errorf("finished fleet reports running=%d interrupted=%d", fs.Running, fs.Interrupted)
	}
	if len(fs.Shards) != shards {
		t.Fatalf("fleet has %d shards, want %d", len(fs.Shards), shards)
	}
	for i, sh := range fs.Shards {
		if sh.Index != i || sh.Count != shards {
			t.Errorf("shard %d coords = %d/%d", i, sh.Index, sh.Count)
		}
		if sh.Done != sh.Total || sh.Running {
			t.Errorf("shard %d not finished: %+v", i, sh)
		}
		if sh.UpdatedAt.IsZero() || time.Since(sh.UpdatedAt) > time.Hour {
			t.Errorf("shard %d heartbeat timestamp %v implausible", i, sh.UpdatedAt)
		}
	}
	// The fleet metrics aggregate uses the same merge rule as the
	// post-hoc manifest merge, so the deterministic counters agree.
	if fs.Metrics == nil || info.Metrics == nil {
		t.Fatal("missing metrics aggregate (status or merge)")
	}
	if got, want := fs.Metrics.Counters["campaign_trials_total"], int64(merged.Completed); got != want {
		t.Errorf("fleet campaign_trials_total = %d, want %d", got, want)
	}
	if !reflect.DeepEqual(fs.Metrics.Counters["campaign_outcome_crash"], info.Metrics.Counters["campaign_outcome_crash"]) {
		t.Errorf("fleet vs merge crash counters: %v vs %v",
			fs.Metrics.Counters["campaign_outcome_crash"], info.Metrics.Counters["campaign_outcome_crash"])
	}
}

func TestLoadFleetStatusErrNoStatus(t *testing.T) {
	_, err := LoadFleetStatus(t.TempDir())
	if !errors.Is(err, ErrNoStatus) {
		t.Errorf("empty dir err = %v, want ErrNoStatus", err)
	}
}

func TestLoadFleetStatusRejectsMixedCampaigns(t *testing.T) {
	dir := t.TempDir()
	write := func(idx int, seed int64) {
		t.Helper()
		meta := core.JournalMeta{App: "kvstore", Error: "soft-1bit", Trials: 10, Seed: seed}
		st := core.ShardStatus{
			ConfigHash: core.ConfigHash(meta),
			Campaign:   meta,
			ShardIndex: idx,
			ShardCount: 2,
		}
		if err := core.WriteStatus(filepath.Join(dir, core.ShardStatusName(idx, 2)), st); err != nil {
			t.Fatal(err)
		}
	}
	write(0, 1)
	write(1, 2) // different seed → different campaign
	_, err := LoadFleetStatus(dir)
	if err == nil || !strings.Contains(err.Error(), "different campaign") {
		t.Errorf("mixed-campaign err = %v", err)
	}
}
