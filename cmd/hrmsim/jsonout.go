// JSON output mode: every subcommand can emit its result as a single
// machine-readable JSON document on stdout instead of rendered text. The
// envelope and every field below are a stable, versioned contract
// documented in OBSERVABILITY.md — bump schemaVersion on any breaking
// change (renamed/removed field or changed meaning; additions are
// backward compatible and do not bump).
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"hrmsim"
	"hrmsim/internal/evtrace"
	"hrmsim/internal/obsv"
	"hrmsim/internal/stats"
)

// schemaVersion identifies the JSON result schema emitted by -json.
const schemaVersion = 1

// envelope wraps every -json result.
type envelope struct {
	SchemaVersion int    `json:"schema_version"`
	Tool          string `json:"tool"`
	Command       string `json:"command"`
	// Interrupted is set when the command was cancelled (SIGINT/SIGTERM)
	// and the result below is partial — for characterize, the aggregates
	// over the trials that finished before the interrupt.
	Interrupted bool `json:"interrupted,omitempty"`
	Result      any  `json:"result"`
	// Metrics holds the obsv snapshot of instrumented commands
	// (characterize), mirroring what kvserve serves at /metrics.
	Metrics *obsv.Snapshot `json:"metrics,omitempty"`
	// Trace holds the flight-recorder dumps of traced commands
	// (characterize): the event tails of every trial that ended in
	// crash or incorrect-response (schema: OBSERVABILITY.md, "Event
	// tracing").
	Trace *traceJSON `json:"trace,omitempty"`
	// Shard identifies which slice of a sharded campaign this result
	// covers (characterize -shard; see SHARDING.md).
	Shard *shardJSON `json:"shard,omitempty"`
	// Merged describes the shard set a merged result was assembled from
	// (merge, characterize -coordinator; see SHARDING.md).
	Merged *mergedJSON `json:"merged,omitempty"`
}

// shardJSON is the envelope's shard-coordinates section.
type shardJSON struct {
	Index   int `json:"index"`
	Count   int `json:"count"`
	TrialLo int `json:"trial_lo"`
	TrialHi int `json:"trial_hi"`
}

// mergedJSON is the envelope's merge-provenance section.
type mergedJSON struct {
	ConfigHash string           `json:"config_hash"`
	Shards     []mergeShardJSON `json:"shards"`
	Records    int              `json:"records"`
	Duplicates int              `json:"duplicates,omitempty"`
	Missing    int              `json:"missing,omitempty"`
}

// mergeShardJSON summarizes one input shard of a merge.
type mergeShardJSON struct {
	Index       int    `json:"index"`
	Count       int    `json:"count"`
	TrialLo     int    `json:"trial_lo"`
	TrialHi     int    `json:"trial_hi"`
	Journal     string `json:"journal"`
	Completed   int    `json:"completed"`
	Aborted     int    `json:"aborted,omitempty"`
	Interrupted bool   `json:"interrupted,omitempty"`
}

// envelopeOption customizes optional envelope sections.
type envelopeOption func(*envelope)

// withShard attaches the shard-coordinates section (nil = no-op).
func withShard(s *hrmsim.ShardInfo) envelopeOption {
	return func(e *envelope) {
		if s == nil {
			return
		}
		e.Shard = &shardJSON{Index: s.Index, Count: s.Count, TrialLo: s.TrialLo, TrialHi: s.TrialHi}
	}
}

// withMerged attaches the merge-provenance section (nil = no-op).
func withMerged(info *hrmsim.MergeInfo) envelopeOption {
	return func(e *envelope) {
		if info == nil {
			return
		}
		m := &mergedJSON{
			ConfigHash: info.ConfigHash,
			Shards:     []mergeShardJSON{},
			Records:    info.Records,
			Duplicates: info.Duplicates,
			Missing:    info.Missing,
		}
		for _, s := range info.Shards {
			m.Shards = append(m.Shards, mergeShardJSON{
				Index:       s.Index,
				Count:       s.Count,
				TrialLo:     s.TrialLo,
				TrialHi:     s.TrialHi,
				Journal:     s.Journal,
				Completed:   s.Completed,
				Aborted:     s.Aborted,
				Interrupted: s.Interrupted,
			})
		}
		e.Merged = m
	}
}

// fleetStatusJSON is the `status -json` (and coordinator /statusz)
// result: the cross-shard aggregate of a campaign directory's
// heartbeat records plus every shard's latest record.
type fleetStatusJSON struct {
	ConfigHash string `json:"config_hash"`
	App        string `json:"app"`
	Error      string `json:"error"`
	Region     string `json:"region"` // "" = all regions
	Trials     int    `json:"trials"`
	Seed       int64  `json:"seed"`
	// Done/Total and the disposition counts are sums over the shards
	// that have reported (Total < Trials while shards are registering).
	Done      int `json:"done"`
	Total     int `json:"total"`
	Completed int `json:"completed"`
	Aborted   int `json:"aborted,omitempty"`
	Resumed   int `json:"resumed,omitempty"`
	// Outcomes sums the per-shard Fig. 1 taxonomy counts so far.
	Outcomes     map[string]int `json:"outcomes"`
	TrialsPerSec float64        `json:"trials_per_sec,omitempty"`
	EtaSeconds   float64        `json:"eta_seconds,omitempty"`
	// Adaptive planner telemetry (absent for fixed-plan campaigns):
	// the widest reported CI half-width, the summed current trial
	// budget, and the trials the stopping rules saved so far.
	Adaptive      bool    `json:"adaptive,omitempty"`
	CIHalfWidth   float64 `json:"ci_half_width,omitempty"`
	PlannedTrials int     `json:"planned_trials,omitempty"`
	TrialsSaved   int     `json:"trials_saved,omitempty"`
	// Running / Interrupted count shards in each state.
	Running     int               `json:"running"`
	Interrupted int               `json:"interrupted,omitempty"`
	Shards      []shardStatusJSON `json:"shards"`
}

// shardStatusJSON is one shard's latest heartbeat in the fleet view.
type shardStatusJSON struct {
	Index          int            `json:"index"`
	Count          int            `json:"count"`
	TrialLo        int            `json:"trial_lo"`
	TrialHi        int            `json:"trial_hi"`
	Done           int            `json:"done"`
	Total          int            `json:"total"`
	Completed      int            `json:"completed"`
	Aborted        int            `json:"aborted,omitempty"`
	Resumed        int            `json:"resumed,omitempty"`
	Outcomes       map[string]int `json:"outcomes"`
	TrialsPerSec   float64        `json:"trials_per_sec,omitempty"`
	EtaSeconds     float64        `json:"eta_seconds,omitempty"`
	ElapsedSeconds float64        `json:"elapsed_seconds,omitempty"`
	// Adaptive planner telemetry, mirroring the shard's heartbeat
	// record (absent for fixed-plan shards).
	Adaptive      bool    `json:"adaptive,omitempty"`
	CIHalfWidth   float64 `json:"ci_half_width,omitempty"`
	PlannedTrials int     `json:"planned_trials,omitempty"`
	PlanFinal     bool    `json:"plan_final,omitempty"`
	TrialsSaved   int     `json:"trials_saved,omitempty"`
	Running       bool    `json:"running"`
	Interrupted   bool    `json:"interrupted,omitempty"`
	// UpdatedUnixNs is the heartbeat instant; AgeSeconds its age at
	// render time — the liveness signal straggler detection keys on.
	UpdatedUnixNs int64   `json:"updated_unix_ns"`
	AgeSeconds    float64 `json:"age_seconds"`
}

func toFleetJSON(fs *hrmsim.FleetStatus, now time.Time) fleetStatusJSON {
	out := fleetStatusJSON{
		ConfigHash:    fs.ConfigHash,
		App:           string(fs.App),
		Error:         string(fs.Error),
		Region:        string(fs.Region),
		Trials:        fs.Trials,
		Seed:          fs.Seed,
		Done:          fs.Done,
		Total:         fs.Total,
		Completed:     fs.Completed,
		Aborted:       fs.Aborted,
		Resumed:       fs.Resumed,
		Outcomes:      fs.Outcomes,
		TrialsPerSec:  fs.TrialsPerSec,
		EtaSeconds:    fs.ETA.Seconds(),
		Adaptive:      fs.Adaptive,
		CIHalfWidth:   fs.CIHalfWidth,
		PlannedTrials: fs.Planned,
		TrialsSaved:   fs.TrialsSaved,
		Running:       fs.Running,
		Interrupted:   fs.Interrupted,
		Shards:        []shardStatusJSON{},
	}
	if out.Outcomes == nil {
		out.Outcomes = map[string]int{}
	}
	for _, sh := range fs.Shards {
		out.Shards = append(out.Shards, shardStatusJSON{
			Index:          sh.Index,
			Count:          sh.Count,
			TrialLo:        sh.TrialLo,
			TrialHi:        sh.TrialHi,
			Done:           sh.Done,
			Total:          sh.Total,
			Completed:      sh.Completed,
			Aborted:        sh.Aborted,
			Resumed:        sh.Resumed,
			Outcomes:       sh.Outcomes,
			TrialsPerSec:   sh.TrialsPerSec,
			EtaSeconds:     sh.ETA.Seconds(),
			ElapsedSeconds: sh.Elapsed.Seconds(),
			Adaptive:       sh.Adaptive,
			CIHalfWidth:    sh.CIHalfWidth,
			PlannedTrials:  sh.Planned,
			PlanFinal:      sh.PlanFinal,
			TrialsSaved:    sh.TrialsSaved,
			Running:        sh.Running,
			Interrupted:    sh.Interrupted,
			UpdatedUnixNs:  sh.UpdatedAt.UnixNano(),
			AgeSeconds:     sh.Age(now).Seconds(),
		})
	}
	return out
}

// traceJSON is the envelope's event-tracing section.
type traceJSON struct {
	// SchemaVersion is the evtrace event schema version.
	SchemaVersion int `json:"schema_version"`
	// FlightRecorderDumps holds the last events of each crash or
	// incorrect-response trial, in trial order.
	FlightRecorderDumps []evtrace.Dump `json:"flight_recorder_dumps"`
	// DumpsSkipped counts qualifying trials beyond the dump budget.
	DumpsSkipped int `json:"dumps_skipped,omitempty"`
}

// toTraceJSON converts a flight recorder's retained dumps (nil recorder
// or no dumps → nil, omitting the envelope field).
func toTraceJSON(rec *evtrace.Recorder) *traceJSON {
	if rec == nil {
		return nil
	}
	dumps := rec.Dumps()
	if len(dumps) == 0 && rec.Skipped() == 0 {
		return nil
	}
	return &traceJSON{
		SchemaVersion:       evtrace.SchemaVersion,
		FlightRecorderDumps: dumps,
		DumpsSkipped:        rec.Skipped(),
	}
}

// emitJSON writes one indented envelope to stdout.
func emitJSON(command string, interrupted bool, result any, metrics *obsv.Snapshot, trace *traceJSON, opts ...envelopeOption) error {
	env := envelope{
		SchemaVersion: schemaVersion,
		Tool:          "hrmsim",
		Command:       command,
		Interrupted:   interrupted,
		Result:        result,
		Metrics:       metrics,
		Trace:         trace,
	}
	for _, opt := range opts {
		opt(&env)
	}
	b, err := json.MarshalIndent(env, "", "  ")
	if err != nil {
		return fmt.Errorf("encoding %s result: %w", command, err)
	}
	_, err = fmt.Fprintln(os.Stdout, string(b))
	return err
}

// characterizeJSON is the `characterize -json` result.
type characterizeJSON struct {
	App                    string         `json:"app"`
	Error                  string         `json:"error"`
	Region                 string         `json:"region"` // "" = all regions
	Trials                 int            `json:"trials"`
	Parallelism            int            `json:"parallelism"`
	CrashProbability       float64        `json:"crash_probability"`
	CrashCILow             float64        `json:"crash_ci_low"`
	CrashCIHigh            float64        `json:"crash_ci_high"`
	ToleratedProbability   float64        `json:"tolerated_probability"`
	IncorrectPerBillion    float64        `json:"incorrect_per_billion"`
	MaxIncorrectPerBillion float64        `json:"max_incorrect_per_billion"`
	Outcomes               map[string]int `json:"outcomes"`
	// Adaptive-plan fields, present only when the campaign ran with
	// -target-ci: the requested CI half-width target, the trial count
	// the stopping rule settled on, and the budget trials it saved.
	TargetCI                float64        `json:"target_ci,omitempty"`
	PlannedTrials           int            `json:"planned_trials,omitempty"`
	TrialsSaved             int            `json:"trials_saved,omitempty"`
	Interrupted             bool           `json:"interrupted,omitempty"`
	CompletedTrials         int            `json:"completed_trials"`
	AbortedTrials           int            `json:"aborted_trials,omitempty"`
	ResumedTrials           int            `json:"resumed_trials,omitempty"`
	CrashMinutes            []float64      `json:"crash_minutes"`
	IncorrectMinutes        []float64      `json:"incorrect_minutes"`
	AllIncorrectMinutes     []float64      `json:"all_incorrect_minutes"`
	CrashMinutesSummary     *stats.Summary `json:"crash_minutes_summary,omitempty"`
	IncorrectMinutesSummary *stats.Summary `json:"incorrect_minutes_summary,omitempty"`
}

// summarize returns a Summary pointer, or nil for an empty sample.
func summarize(xs []float64) *stats.Summary {
	s, err := stats.Summarize(xs)
	if err != nil {
		return nil
	}
	return &s
}

// nonNil returns xs, or an empty (non-null in JSON) slice.
func nonNil(xs []float64) []float64 {
	if xs == nil {
		return []float64{}
	}
	return xs
}

func toCharacterizeJSON(c *hrmsim.Characterization) characterizeJSON {
	out := characterizeJSON{
		App:                     string(c.App),
		Error:                   string(c.Error),
		Region:                  string(c.Region),
		Trials:                  c.Trials,
		Parallelism:             c.Parallelism,
		CrashProbability:        c.CrashProbability,
		CrashCILow:              c.CrashCILow,
		CrashCIHigh:             c.CrashCIHigh,
		ToleratedProbability:    c.ToleratedProbability,
		IncorrectPerBillion:     c.IncorrectPerBillion,
		MaxIncorrectPerBillion:  c.MaxIncorrectPerBillion,
		Outcomes:                c.Outcomes,
		Interrupted:             c.Interrupted,
		CompletedTrials:         c.Completed,
		AbortedTrials:           c.Aborted,
		ResumedTrials:           c.Resumed,
		CrashMinutes:            nonNil(c.CrashMinutes),
		IncorrectMinutes:        nonNil(c.IncorrectMinutes),
		AllIncorrectMinutes:     nonNil(c.AllIncorrectMinutes),
		CrashMinutesSummary:     summarize(c.CrashMinutes),
		IncorrectMinutesSummary: summarize(c.IncorrectMinutes),
	}
	if c.TargetCI > 0 {
		out.TargetCI = c.TargetCI
		out.PlannedTrials = c.Planned
		out.TrialsSaved = c.TrialsSaved
	}
	return out
}

// profileJSON is the `profile -json` result.
type profileJSON struct {
	App           string              `json:"app"`
	WindowMinutes float64             `json:"window_minutes"`
	Regions       []regionProfileJSON `json:"regions"`
}

type regionProfileJSON struct {
	Region              string    `json:"region"`
	UsedBytes           int       `json:"used_bytes"`
	Watchpoints         int       `json:"watchpoints"`
	MeanSafeRatio       float64   `json:"mean_safe_ratio"`
	SafeRatios          []float64 `json:"safe_ratios"`
	ImplicitRecoverable float64   `json:"implicit_recoverable"`
	ExplicitRecoverable float64   `json:"explicit_recoverable"`
}

func toProfileJSON(rep *hrmsim.AccessProfileReport) profileJSON {
	out := profileJSON{
		App:           string(rep.App),
		WindowMinutes: rep.WindowMinutes,
		Regions:       []regionProfileJSON{},
	}
	for _, r := range rep.Regions {
		out.Regions = append(out.Regions, regionProfileJSON{
			Region:              r.Region,
			UsedBytes:           r.UsedBytes,
			Watchpoints:         r.Watchpoints,
			MeanSafeRatio:       r.MeanSafeRatio,
			SafeRatios:          nonNil(r.SafeRatios),
			ImplicitRecoverable: r.ImplicitRecoverable,
			ExplicitRecoverable: r.ExplicitRecoverable,
		})
	}
	return out
}

// designRowJSON is one design point in `designspace -json` / `plan -json`.
type designRowJSON struct {
	Name                string  `json:"name"`
	MemorySavings       float64 `json:"memory_savings"`
	MemorySavingsLo     float64 `json:"memory_savings_lo"`
	MemorySavingsHi     float64 `json:"memory_savings_hi"`
	ServerSavings       float64 `json:"server_savings"`
	ServerSavingsLo     float64 `json:"server_savings_lo"`
	ServerSavingsHi     float64 `json:"server_savings_hi"`
	CrashesPerMonth     float64 `json:"crashes_per_month"`
	Availability        float64 `json:"availability"`
	IncorrectPerMillion float64 `json:"incorrect_per_million"`
	MeetsTarget         bool    `json:"meets_target"`
}

func toDesignRowJSON(r hrmsim.DesignRow) designRowJSON {
	return designRowJSON{
		Name:                r.Name,
		MemorySavings:       r.MemorySavings,
		MemorySavingsLo:     r.MemorySavingsLo,
		MemorySavingsHi:     r.MemorySavingsHi,
		ServerSavings:       r.ServerSavings,
		ServerSavingsLo:     r.ServerSavingsLo,
		ServerSavingsHi:     r.ServerSavingsHi,
		CrashesPerMonth:     r.CrashesPerMonth,
		Availability:        r.Availability,
		IncorrectPerMillion: r.IncorrectPerMillion,
		MeetsTarget:         r.MeetsTarget,
	}
}

// designspaceJSON is the `designspace -json` result.
type designspaceJSON struct {
	Rows []designRowJSON `json:"rows"`
}

// planJSON is the `plan -json` result.
type planJSON struct {
	TargetAvailability float64           `json:"target_availability"`
	ErrorsPerMonth     float64           `json:"errors_per_month"`
	Considered         int               `json:"considered"`
	Feasible           int               `json:"feasible"`
	Best               designRowJSON     `json:"best"`
	BestMapping        map[string]string `json:"best_mapping"`
}

// tolerableJSON is the `tolerable -json` result.
type tolerableJSON struct {
	Rows []tolerableRowJSON `json:"rows"`
}

type tolerableRowJSON struct {
	Application      string              `json:"application"`
	CrashProbability float64             `json:"crash_probability"`
	Targets          []tolerableCellJSON `json:"targets"`
}

type tolerableCellJSON struct {
	AvailabilityTarget      float64 `json:"availability_target"`
	TolerableErrorsPerMonth float64 `json:"tolerable_errors_per_month"`
}

// lifetimeJSON is the `lifetime -json` result.
type lifetimeJSON struct {
	Protection          string  `json:"protection"`
	ErrorsPerMonth      float64 `json:"errors_per_month"`
	Hours               int     `json:"hours"`
	ErrorsInjected      int     `json:"errors_injected"`
	Crashes             int     `json:"crashes"`
	DowntimeMinutes     float64 `json:"downtime_minutes"`
	Availability        float64 `json:"availability"`
	Requests            int     `json:"requests"`
	Incorrect           int     `json:"incorrect"`
	IncorrectPerMillion float64 `json:"incorrect_per_million"`
	ScrubPasses         int     `json:"scrub_passes"`
	ScrubCorrected      int     `json:"scrub_corrected"`
}

// tablesJSON is the `tables -json` result.
type tablesJSON struct {
	Experiments []experimentJSON `json:"experiments"`
}

type experimentJSON struct {
	ID          string           `json:"id"`
	Title       string           `json:"title"`
	Text        string           `json:"text"`
	Comparisons []comparisonJSON `json:"comparisons"`
}

type comparisonJSON struct {
	Metric   string `json:"metric"`
	Paper    string `json:"paper"`
	Measured string `json:"measured"`
	Note     string `json:"note,omitempty"`
}

func toExperimentJSON(rep *hrmsim.ExperimentReport) experimentJSON {
	out := experimentJSON{
		ID:          rep.ID,
		Title:       rep.Title,
		Text:        rep.Text,
		Comparisons: []comparisonJSON{},
	}
	for _, c := range rep.Comparisons {
		out.Comparisons = append(out.Comparisons, comparisonJSON{
			Metric: c.Metric, Paper: c.Paper, Measured: c.Measured, Note: c.Note,
		})
	}
	return out
}
