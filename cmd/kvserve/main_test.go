package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"hrmsim/internal/kvnode"
)

// The protocol itself is tested in internal/kvnode; here we cover the
// pieces this command adds on top — the observability sidecar.

// TestMetricsSidecarEndpoints starts the observability mux on a real
// loopback listener — exactly what `-metrics-addr 127.0.0.1:0` does — and
// exercises /healthz and /metrics in both exposition formats.
func TestMetricsSidecarEndpoints(t *testing.T) {
	srv, err := kvnode.New(kvnode.Config{Keys: 64, ECC: "none", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Generate some traffic so the metrics are non-trivial.
	srv.Dispatch("get 1")
	srv.Dispatch("set 1 2")
	srv.Dispatch("get 9999")
	srv.Dispatch("inject soft")
	srv.Dispatch("bogus")

	ts := httptest.NewServer(metricsMux(srv.Registry()))
	defer ts.Close()

	get := func(path string) (string, string) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer func() { _ = resp.Body.Close() }()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body), resp.Header.Get("Content-Type")
	}

	if body, _ := get("/healthz"); strings.TrimSpace(body) != "ok" {
		t.Errorf("/healthz = %q", body)
	}

	text, ctype := get("/metrics")
	if !strings.Contains(ctype, "text/plain") {
		t.Errorf("/metrics content type = %q", ctype)
	}
	for _, want := range []string{
		"kvserve_ops_total 3",
		"kvserve_gets_total 2",
		"kvserve_sets_total 1",
		"kvserve_hits_total 1",
		"kvserve_misses_total 1",
		"kvserve_injections_total 1",
		"kvserve_client_errors_total 1",
		`kvserve_op_wall_us_bucket{le="+Inf"} 5`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q:\n%s", want, text)
		}
	}

	jsonBody, ctype := get("/metrics?format=json")
	if !strings.Contains(ctype, "application/json") {
		t.Errorf("/metrics?format=json content type = %q", ctype)
	}
	var snap struct {
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.Unmarshal([]byte(jsonBody), &snap); err != nil {
		t.Fatalf("/metrics?format=json: %v\n%s", err, jsonBody)
	}
	if snap.Counters["kvserve_ops_total"] != 3 {
		t.Errorf("kvserve_ops_total = %d, want 3", snap.Counters["kvserve_ops_total"])
	}
}
