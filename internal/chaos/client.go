package chaos

import (
	"bufio"
	"encoding/hex"
	"fmt"
	"net"
	"strconv"
	"strings"
	"time"

	"hrmsim/internal/obsv"
	"hrmsim/internal/trace"
)

// client is one kvserve protocol connection with per-op deadlines.
type client struct {
	conn    net.Conn
	sc      *bufio.Scanner
	w       *bufio.Writer
	timeout time.Duration
}

func dialClient(addr string, timeout time.Duration) (*client, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 4096), 1<<20)
	return &client{conn: conn, sc: sc, w: bufio.NewWriter(conn), timeout: timeout}, nil
}

// roundTrip sends one command line and reads one response line, bounded by
// the client's op timeout.
func (c *client) roundTrip(cmd string) (string, error) {
	if err := c.conn.SetDeadline(time.Now().Add(c.timeout)); err != nil {
		return "", err
	}
	if _, err := c.w.WriteString(cmd + "\n"); err != nil {
		return "", err
	}
	if err := c.w.Flush(); err != nil {
		return "", err
	}
	if !c.sc.Scan() {
		if err := c.sc.Err(); err != nil {
			return "", err
		}
		return "", fmt.Errorf("connection closed by server")
	}
	return c.sc.Text(), nil
}

func (c *client) close() { _ = c.conn.Close() }

// isTimeout reports whether err is a network deadline expiry.
func isTimeout(err error) bool {
	ne, ok := err.(net.Error)
	return ok && ne.Timeout()
}

// ServerStats is the parsed `stats` protocol response — the server-side
// half of a probe sample.
type ServerStats struct {
	Ops, Injected, Faults               int64
	Corrected, Uncorrectable, Recovered int64
	Retired                             int64
	VNowMs                              int64
	Conns                               int64
}

// fetchStats issues a `stats` command and parses the k=v response.
func fetchStats(c *client) (ServerStats, error) {
	resp, err := c.roundTrip("stats")
	if err != nil {
		return ServerStats{}, err
	}
	return parseStats(resp)
}

func parseStats(resp string) (ServerStats, error) {
	fields := strings.Fields(resp)
	if len(fields) == 0 || fields[0] != "STATS" {
		return ServerStats{}, fmt.Errorf("chaos: unexpected stats response %q", resp)
	}
	var st ServerStats
	for _, f := range fields[1:] {
		k, v, ok := strings.Cut(f, "=")
		if !ok {
			return ServerStats{}, fmt.Errorf("chaos: malformed stats field %q", f)
		}
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return ServerStats{}, fmt.Errorf("chaos: stats field %q: %v", f, err)
		}
		switch k {
		case "ops":
			st.Ops = n
		case "injected":
			st.Injected = n
		case "faults":
			st.Faults = n
		case "corrected":
			st.Corrected = n
		case "uncorrectable":
			st.Uncorrectable = n
		case "recovered":
			st.Recovered = n
		case "retired":
			st.Retired = n
		case "vnow_ms":
			st.VNowMs = n
		case "conns":
			st.Conns = n
		}
	}
	return st, nil
}

// counters bundles the kvload_* metric handles shared by every generator
// worker and the experiment's probe reads.
type counters struct {
	ops, gets, sets  *obsv.Counter
	errors, timeouts *obsv.Counter
	wrong, stale     *obsv.Counter
	reconnects       *obsv.Counter
	latUs            *obsv.Histogram
	connsOpen        *obsv.Gauge
}

func newCounters(reg *obsv.Registry) counters {
	return counters{
		ops:        reg.Counter("kvload_ops_total"),
		gets:       reg.Counter("kvload_gets_total"),
		sets:       reg.Counter("kvload_sets_total"),
		errors:     reg.Counter("kvload_errors_total"),
		timeouts:   reg.Counter("kvload_timeouts_total"),
		wrong:      reg.Counter("kvload_wrong_values_total"),
		stale:      reg.Counter("kvload_stale_values_total"),
		reconnects: reg.Counter("kvload_reconnects_total"),
		// 1µs … ~1s in quarter-decade steps.
		latUs:     reg.Histogram("kvload_op_latency_us", obsv.ExpBuckets(1, 4, 11)),
		connsOpen: reg.Gauge("kvload_conns_open"),
	}
}

// classifyGet checks a GET response against the deterministic value oracle
// (trace.ValueFor) and the shadow version ceiling, and bumps the wrong- or
// stale-value counters accordingly. maxVersion is the highest version the
// generator has assigned to the key (0 = only the pre-populated value).
func (ct *counters) classifyGet(key uint64, maxVersion int64, valueSize int, resp string) {
	switch {
	case resp == "MISS":
		// Every key in the working set was pre-populated; a MISS means
		// the chain walk was corrupted into losing the entry.
		ct.wrong.Inc()
	case strings.HasPrefix(resp, "VALUE "):
		parts := strings.Fields(resp)
		if len(parts) != 3 {
			ct.wrong.Inc()
			return
		}
		ver, err := strconv.ParseUint(parts[1], 10, 32)
		if err != nil || int64(ver) > maxVersion {
			// A version never written is corruption, not staleness.
			ct.wrong.Inc()
			return
		}
		want := trace.ValueFor(key, uint32(ver), valueSize)
		got, err := hex.DecodeString(parts[2])
		if err != nil || !bytesEqual(got, want) {
			ct.wrong.Inc()
			return
		}
		if int64(ver) < maxVersion {
			ct.stale.Inc()
		}
	default:
		// SERVER_ERROR or garbage: the serving path itself failed.
		ct.errors.Inc()
	}
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
