package simmem

import "time"

// Clock is the virtual time source for a simulation. All timestamps in the
// framework (access monitoring, checkpoint intervals, time-to-crash
// measurements) are measured on this clock, which only moves when the
// workload driver advances it. This makes every experiment deterministic
// and lets a simulated multi-hour run finish in milliseconds.
//
// The zero value is a clock at time zero, ready to use.
type Clock struct {
	now time.Duration
}

// Now returns the current virtual time as an offset from the start of the
// simulation.
func (c *Clock) Now() time.Duration { return c.now }

// Advance moves the clock forward by d. Negative durations are ignored so
// time is monotone.
func (c *Clock) Advance(d time.Duration) {
	if d > 0 {
		c.now += d
	}
}

// Set jumps the clock to an absolute virtual time, if it is later than the
// current time.
func (c *Clock) Set(t time.Duration) {
	if t > c.now {
		c.now = t
	}
}
