package simmem

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"time"
)

// newTestAS builds an address space with one unprotected region of each
// application kind.
func newTestAS(t *testing.T) *AddressSpace {
	t.Helper()
	as, err := New(Config{PageSize: 256})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	specs := []RegionSpec{
		{Name: "private", Kind: RegionPrivate, Size: 4096, Backed: true},
		{Name: "heap", Kind: RegionHeap, Size: 4096},
		{Name: "stack", Kind: RegionStack, Size: 1024},
	}
	for _, s := range specs {
		if _, err := as.AddRegion(s); err != nil {
			t.Fatalf("AddRegion(%q): %v", s.Name, err)
		}
	}
	return as
}

func TestNewConfigValidation(t *testing.T) {
	if _, err := New(Config{PageSize: 100}); err == nil {
		t.Error("expected error for non-power-of-two page size")
	}
	if _, err := New(Config{PageSize: 8}); err == nil {
		t.Error("expected error for tiny page size")
	}
	as, err := New(Config{})
	if err != nil {
		t.Fatalf("New with defaults: %v", err)
	}
	if as.PageSize() != 4096 {
		t.Errorf("default page size = %d, want 4096", as.PageSize())
	}
	if as.Clock() == nil {
		t.Error("default clock is nil")
	}
}

func TestAddRegionValidation(t *testing.T) {
	as := newTestAS(t)
	if _, err := as.AddRegion(RegionSpec{Name: "bad", Size: 0}); err == nil {
		t.Error("expected error for zero size")
	}
	if _, err := as.AddRegion(RegionSpec{Name: "heap", Size: 64}); err == nil {
		t.Error("expected error for duplicate name")
	}
}

func TestRegionLayoutHasGuardGaps(t *testing.T) {
	as := newTestAS(t)
	rs := as.Regions()
	if len(rs) != 3 {
		t.Fatalf("got %d regions, want 3", len(rs))
	}
	for i := 1; i < len(rs); i++ {
		gap := rs[i].Base() - (rs[i-1].Base() + Addr(rs[i-1].Size()))
		if gap < regionGap {
			t.Errorf("gap between %q and %q is %d, want >= %d",
				rs[i-1].Name(), rs[i].Name(), gap, regionGap)
		}
	}
	// The guard gap between regions must be unmapped.
	probe := rs[0].Base() + Addr(rs[0].Size()) + 10
	err := as.Load(probe, make([]byte, 1))
	f, ok := AsFault(err)
	if !ok || f.Kind != FaultUnmapped {
		t.Errorf("load in guard gap: err = %v, want unmapped fault", err)
	}
}

func TestRegionLookups(t *testing.T) {
	as := newTestAS(t)
	if r := as.RegionByKind(RegionHeap); r == nil || r.Name() != "heap" {
		t.Errorf("RegionByKind(heap) = %v", r)
	}
	if r := as.RegionByName("stack"); r == nil || r.Kind() != RegionStack {
		t.Errorf("RegionByName(stack) = %v", r)
	}
	if as.RegionByName("nope") != nil || as.RegionByKind(RegionOther) != nil {
		t.Error("lookup of absent region should return nil")
	}
}

func TestLoadStoreRoundtripAcrossPages(t *testing.T) {
	as := newTestAS(t)
	heap := as.RegionByName("heap")
	// Write a buffer spanning a page boundary (page size 256).
	addr := heap.Base() + 200
	data := make([]byte, 150)
	for i := range data {
		data[i] = byte(i * 7)
	}
	if err := as.Store(addr, data); err != nil {
		t.Fatalf("Store: %v", err)
	}
	got := make([]byte, len(data))
	if err := as.Load(addr, got); err != nil {
		t.Fatalf("Load: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Error("roundtrip mismatch across page boundary")
	}
	c := as.Counters()
	if c.Loads != 1 || c.Stores != 1 {
		t.Errorf("counters = %+v, want 1 load, 1 store", c)
	}
}

func TestFaults(t *testing.T) {
	as := newTestAS(t)
	heap := as.RegionByName("heap")

	tests := []struct {
		name string
		err  error
		want FaultKind
	}{
		{"unmapped low", as.Load(0x10, make([]byte, 1)), FaultUnmapped},
		{"unmapped high", as.Load(1<<40, make([]byte, 1)), FaultUnmapped},
		{"out of range", as.Load(heap.Base()+Addr(heap.Size())-2, make([]byte, 8)), FaultOutOfRange},
		{"read-only", as.Store(as.RegionByName("private").Base(), []byte{1}), FaultReadOnly},
	}
	// The private region in newTestAS is not read-only; map one that is.
	as2 := newTestAS(t)
	ro, err := as2.AddRegion(RegionSpec{Name: "ro", Kind: RegionPrivate, Size: 256, ReadOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	tests[3].err = as2.Store(ro.Base(), []byte{1})

	for _, tt := range tests {
		f, ok := AsFault(tt.err)
		if !ok {
			t.Errorf("%s: err = %v, want a fault", tt.name, tt.err)
			continue
		}
		if f.Kind != tt.want {
			t.Errorf("%s: fault kind = %v, want %v", tt.name, f.Kind, tt.want)
		}
		if f.Error() == "" {
			t.Errorf("%s: empty fault message", tt.name)
		}
	}
	if IsFault(errors.New("plain")) {
		t.Error("IsFault(plain error) = true")
	}
}

func TestTypedAccessors(t *testing.T) {
	as := newTestAS(t)
	base := as.RegionByName("heap").Base()

	if err := as.StoreU64(base, 0x1122334455667788); err != nil {
		t.Fatal(err)
	}
	if v, err := as.LoadU64(base); err != nil || v != 0x1122334455667788 {
		t.Errorf("LoadU64 = %#x, %v", v, err)
	}
	if err := as.StoreU32(base+8, 0xdeadbeef); err != nil {
		t.Fatal(err)
	}
	if v, err := as.LoadU32(base + 8); err != nil || v != 0xdeadbeef {
		t.Errorf("LoadU32 = %#x, %v", v, err)
	}
	if err := as.StoreU16(base+12, 0xcafe); err != nil {
		t.Fatal(err)
	}
	if v, err := as.LoadU16(base + 12); err != nil || v != 0xcafe {
		t.Errorf("LoadU16 = %#x, %v", v, err)
	}
	if err := as.StoreU8(base+14, 0x5a); err != nil {
		t.Fatal(err)
	}
	if v, err := as.LoadU8(base + 14); err != nil || v != 0x5a {
		t.Errorf("LoadU8 = %#x, %v", v, err)
	}
	if err := as.StoreF64(base+16, 3.14159); err != nil {
		t.Fatal(err)
	}
	if v, err := as.LoadF64(base + 16); err != nil || v != 3.14159 {
		t.Errorf("LoadF64 = %v, %v", v, err)
	}
	if err := as.StoreF32(base+24, 2.5); err != nil {
		t.Fatal(err)
	}
	if v, err := as.LoadF32(base + 24); err != nil || v != 2.5 {
		t.Errorf("LoadF32 = %v, %v", v, err)
	}
	// Little-endian layout check.
	if b, err := as.LoadU8(base); err != nil || b != 0x88 {
		t.Errorf("first byte of u64 = %#x, want 0x88 (little endian)", b)
	}
	// Typed accessors on unmapped addresses propagate faults.
	if _, err := as.LoadU64(0x10); !IsFault(err) {
		t.Errorf("LoadU64 unmapped: %v", err)
	}
}

func TestFlipBitVisibleAndMaskedByOverwrite(t *testing.T) {
	as := newTestAS(t)
	addr := as.RegionByName("heap").Base() + 100
	if err := as.StoreU8(addr, 0b0000_0001); err != nil {
		t.Fatal(err)
	}
	if err := as.FlipBit(addr, 3); err != nil {
		t.Fatal(err)
	}
	if v, err := as.LoadU8(addr); err != nil || v != 0b0000_1001 {
		t.Errorf("after flip: %#b, %v", v, err)
	}
	// Overwrite masks the soft error.
	if err := as.StoreU8(addr, 0x42); err != nil {
		t.Fatal(err)
	}
	if v, err := as.LoadU8(addr); err != nil || v != 0x42 {
		t.Errorf("after overwrite: %#x, %v", v, err)
	}
	if err := as.FlipBit(addr, 8); err == nil {
		t.Error("expected error for bit index 8")
	}
	if err := as.FlipBit(0x10, 0); !IsFault(err) {
		t.Errorf("flip at unmapped: %v", err)
	}
}

func TestStickBitSurvivesOverwriteUntilFrameReplace(t *testing.T) {
	as := newTestAS(t)
	heap := as.RegionByName("heap")
	addr := heap.Base() + 10

	if err := as.StickBit(addr, 0, 1); err != nil {
		t.Fatal(err)
	}
	if err := as.StoreU8(addr, 0x00); err != nil {
		t.Fatal(err)
	}
	if v, _ := as.LoadU8(addr); v != 0x01 {
		t.Errorf("stuck-at-1 not sensed: %#x", v)
	}
	// Flip the same bit to stuck-at-0.
	if err := as.StickBit(addr, 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := as.StoreU8(addr, 0xFF); err != nil {
		t.Fatal(err)
	}
	if v, _ := as.LoadU8(addr); v != 0xFE {
		t.Errorf("stuck-at-0 not sensed: %#x", v)
	}
	// Page retirement replaces the frame and clears the fault.
	if err := heap.ReplaceFrame(heap.PageIndex(addr)); err != nil {
		t.Fatal(err)
	}
	if err := as.StoreU8(addr, 0xFF); err != nil {
		t.Fatal(err)
	}
	if v, _ := as.LoadU8(addr); v != 0xFF {
		t.Errorf("stuck bit survived frame replacement: %#x", v)
	}
	if heap.Replacements(heap.PageIndex(addr)) != 1 {
		t.Error("replacement count not recorded")
	}

	if err := as.StickBit(addr, 9, 1); err == nil {
		t.Error("expected error for bit index 9")
	}
	if err := as.StickBit(addr, 0, 2); err == nil {
		t.Error("expected error for stuck value 2")
	}
	if err := heap.ReplaceFrame(-1); err == nil {
		t.Error("expected error for negative page index")
	}
}

func TestReadWriteRaw(t *testing.T) {
	as := newTestAS(t)
	as2, err := New(Config{PageSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	ro, err := as2.AddRegion(RegionSpec{Name: "ro", Kind: RegionPrivate, Size: 512, ReadOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	// WriteRaw bypasses read-only protection (used at setup time).
	if err := as2.WriteRaw(ro.Base(), []byte{1, 2, 3}); err != nil {
		t.Fatalf("WriteRaw to read-only region: %v", err)
	}
	got := make([]byte, 3)
	if err := as2.Load(ro.Base(), got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Errorf("read-only region contents = %v", got)
	}

	// ReadRaw sees stored bytes, not sensed bytes.
	heap := as.RegionByName("heap")
	addr := heap.Base()
	if err := as.StoreU8(addr, 0x00); err != nil {
		t.Fatal(err)
	}
	if err := as.StickBit(addr, 7, 1); err != nil {
		t.Fatal(err)
	}
	raw := make([]byte, 1)
	if err := as.ReadRaw(addr, raw); err != nil {
		t.Fatal(err)
	}
	if raw[0] != 0x00 {
		t.Errorf("ReadRaw sensed stuck bit: %#x", raw[0])
	}
	if v, _ := as.LoadU8(addr); v != 0x80 {
		t.Errorf("Load did not sense stuck bit: %#x", v)
	}
}

func TestObserversAndClock(t *testing.T) {
	as := newTestAS(t)
	var events []AccessEvent
	as.AddAccessObserver(accessFunc(func(ev AccessEvent) { events = append(events, ev) }))

	heap := as.RegionByName("heap")
	as.Clock().Advance(5 * time.Millisecond)
	if err := as.StoreU8(heap.Base(), 1); err != nil {
		t.Fatal(err)
	}
	as.Clock().Advance(5 * time.Millisecond)
	if _, err := as.LoadU8(heap.Base()); err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 {
		t.Fatalf("got %d events, want 2", len(events))
	}
	if events[0].Kind != Store || events[0].Time != 5*time.Millisecond {
		t.Errorf("event 0 = %+v", events[0])
	}
	if events[1].Kind != Load || events[1].Time != 10*time.Millisecond {
		t.Errorf("event 1 = %+v", events[1])
	}
	if events[0].Region != heap || events[0].Len != 1 {
		t.Errorf("event 0 region/len = %v/%d", events[0].Region.Name(), events[0].Len)
	}
	// Faulting accesses emit no events.
	_ = as.Load(0x10, make([]byte, 1))
	if len(events) != 2 {
		t.Error("faulting access emitted an event")
	}
}

type accessFunc func(AccessEvent)

func (f accessFunc) ObserveAccess(ev AccessEvent) { f(ev) }

func TestClock(t *testing.T) {
	var c Clock
	c.Advance(10)
	c.Advance(-5) // ignored
	if c.Now() != 10 {
		t.Errorf("Now = %d, want 10", c.Now())
	}
	c.Set(5) // ignored, earlier
	c.Set(20)
	if c.Now() != 20 {
		t.Errorf("Now = %d, want 20", c.Now())
	}
}

func TestArena(t *testing.T) {
	as := newTestAS(t)
	heap := as.RegionByName("heap")
	a := NewArena(heap)

	p1, err := a.Alloc(10)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := a.Alloc(10)
	if err != nil {
		t.Fatal(err)
	}
	if p1 == p2 {
		t.Error("overlapping allocations")
	}
	if uint64(p2-p1)%allocAlign != 0 {
		t.Error("allocation not aligned")
	}
	if a.Live() != 2 {
		t.Errorf("Live = %d, want 2", a.Live())
	}
	if heap.Used() < 20 {
		t.Errorf("Used = %d, want >= 20", heap.Used())
	}

	if err := a.Free(p1); err != nil {
		t.Fatal(err)
	}
	if err := a.Free(p1); err == nil {
		t.Error("double free not rejected")
	}
	p3, err := a.Alloc(10)
	if err != nil {
		t.Fatal(err)
	}
	if p3 != p1 {
		t.Errorf("freed block not reused: got %#x, want %#x", uint64(p3), uint64(p1))
	}
	if _, err := a.Alloc(0); err == nil {
		t.Error("zero-size alloc not rejected")
	}
	if _, err := a.Alloc(heap.Size() * 2); !errors.Is(err, ErrOutOfMemory) {
		t.Errorf("oversized alloc: %v", err)
	}
}

func TestArenaExhaustion(t *testing.T) {
	as := newTestAS(t)
	a := NewArena(as.RegionByName("stack")) // 1024 bytes
	var got []Addr
	for {
		p, err := a.Alloc(64)
		if err != nil {
			if !errors.Is(err, ErrOutOfMemory) {
				t.Fatalf("unexpected error: %v", err)
			}
			break
		}
		got = append(got, p)
	}
	if len(got) != 1024/64 {
		t.Errorf("allocated %d blocks, want %d", len(got), 1024/64)
	}
}

func TestStack(t *testing.T) {
	as := newTestAS(t)
	s := NewStack(as.RegionByName("stack"))

	f1, err := s.Push(100)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := s.Push(50)
	if err != nil {
		t.Fatal(err)
	}
	if f2.Base <= f1.Base {
		t.Error("stack did not grow")
	}
	if err := s.Pop(f1); err == nil {
		t.Error("pop of non-top frame not rejected")
	}
	if err := s.Pop(f2); err != nil {
		t.Fatal(err)
	}
	if err := s.Pop(f1); err != nil {
		t.Fatal(err)
	}
	if s.Depth() != 0 {
		t.Errorf("Depth = %d, want 0", s.Depth())
	}
	// Used reflects the high-water mark even after popping.
	if u := s.Region().Used(); u < 150 {
		t.Errorf("Used = %d, want >= 150", u)
	}
	if _, err := s.Push(0); err == nil {
		t.Error("zero-size frame not rejected")
	}
	if _, err := s.Push(4096); !errors.Is(err, ErrOutOfMemory) {
		t.Errorf("overflow: %v", err)
	}
}

func TestSampleAddr(t *testing.T) {
	as := newTestAS(t)
	rng := rand.New(rand.NewSource(1))

	// No used bytes anywhere: sampling fails.
	if _, ok := as.SampleAddr(rng, nil); ok {
		t.Error("sampling succeeded with no used bytes")
	}

	as.RegionByName("private").SetUsed(3000)
	as.RegionByName("heap").SetUsed(1000)

	counts := map[string]int{}
	for i := 0; i < 4000; i++ {
		addr, ok := as.SampleAddr(rng, nil)
		if !ok {
			t.Fatal("sampling failed")
		}
		r := as.findRegion(addr)
		if r == nil {
			t.Fatalf("sampled unmapped address %#x", uint64(addr))
		}
		if int(addr-r.Base()) >= r.Used() {
			t.Fatalf("sampled beyond used bytes in %q", r.Name())
		}
		counts[r.Name()]++
	}
	if counts["stack"] != 0 {
		t.Error("sampled stack region with zero used bytes")
	}
	// private:heap should be roughly 3:1.
	ratio := float64(counts["private"]) / float64(counts["heap"])
	if ratio < 2.2 || ratio > 4.0 {
		t.Errorf("sampling ratio = %.2f, want about 3", ratio)
	}

	// Filtered sampling.
	for i := 0; i < 100; i++ {
		addr, ok := as.SampleAddr(rng, func(r *Region) bool { return r.Kind() == RegionHeap })
		if !ok {
			t.Fatal("filtered sampling failed")
		}
		if !as.RegionByName("heap").Contains(addr) {
			t.Fatalf("filtered sample outside heap: %#x", uint64(addr))
		}
	}
}

func TestSetUsedClamps(t *testing.T) {
	as := newTestAS(t)
	r := as.RegionByName("heap")
	r.SetUsed(-5)
	if r.Used() != 0 {
		t.Error("negative used not clamped")
	}
	r.SetUsed(1 << 30)
	if r.Used() != r.Size() {
		t.Error("oversized used not clamped")
	}
}

func TestBackingFlushAndRestore(t *testing.T) {
	as := newTestAS(t)
	priv := as.RegionByName("private")
	addr := priv.Base() + 100

	if err := as.Store(addr, []byte{9, 8, 7}); err != nil {
		t.Fatal(err)
	}
	// Before any flush the backing store is stale (zeros).
	b, err := priv.BackingBytes(addr, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b, []byte{0, 0, 0}) {
		t.Errorf("backing before flush = %v", b)
	}
	if err := priv.FlushAll(); err != nil {
		t.Fatal(err)
	}
	b, err = priv.BackingBytes(addr, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b, []byte{9, 8, 7}) {
		t.Errorf("backing after flush = %v", b)
	}

	// Corrupt memory, then restore the clean copy from backing.
	if err := as.FlipBit(addr, 0); err != nil {
		t.Fatal(err)
	}
	if err := priv.RestoreWord(addr); err != nil {
		t.Fatal(err)
	}
	if v, _ := as.LoadU8(addr); v != 9 {
		t.Errorf("after restore = %d, want 9", v)
	}

	// Regions without backing reject these operations.
	heap := as.RegionByName("heap")
	if err := heap.FlushAll(); err == nil {
		t.Error("FlushAll without backing not rejected")
	}
	if err := heap.RestoreWord(heap.Base()); err == nil {
		t.Error("RestoreWord without backing not rejected")
	}
	if _, err := heap.BackingBytes(heap.Base(), 1); err == nil {
		t.Error("BackingBytes without backing not rejected")
	}
}

func TestReplaceFrameRestoresFromBacking(t *testing.T) {
	as := newTestAS(t)
	priv := as.RegionByName("private")
	addr := priv.Base() + 5
	if err := as.Store(addr, []byte{42}); err != nil {
		t.Fatal(err)
	}
	if err := priv.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if err := as.StickBit(addr, 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := priv.ReplaceFrame(priv.PageIndex(addr)); err != nil {
		t.Fatal(err)
	}
	if v, _ := as.LoadU8(addr); v != 42 {
		t.Errorf("after retire+restore = %d, want 42", v)
	}
}

func TestRegionKindString(t *testing.T) {
	tests := []struct {
		k    RegionKind
		want string
	}{
		{RegionPrivate, "private"},
		{RegionHeap, "heap"},
		{RegionStack, "stack"},
		{RegionOther, "other"},
	}
	for _, tt := range tests {
		if got := tt.k.String(); got != tt.want {
			t.Errorf("%d.String() = %q, want %q", int(tt.k), got, tt.want)
		}
	}
	if AccessKind(Load).String() != "load" || AccessKind(Store).String() != "store" {
		t.Error("AccessKind strings wrong")
	}
	if VerdictClean.String() != "clean" || VerdictCorrected.String() != "corrected" ||
		VerdictUncorrectable.String() != "uncorrectable" {
		t.Error("Verdict strings wrong")
	}
}

// TestShadowModelProperty runs a random sequence of stores and loads
// against both the simulator and a plain byte-slice shadow model; with no
// injected errors they must always agree.
func TestShadowModelProperty(t *testing.T) {
	as := newTestAS(t)
	heap := as.RegionByName("heap")
	shadow := make([]byte, heap.Size())
	rng := rand.New(rand.NewSource(99))

	for i := 0; i < 5000; i++ {
		off := rng.Intn(heap.Size() - 64)
		n := rng.Intn(64) + 1
		addr := heap.Base() + Addr(off)
		if rng.Intn(2) == 0 {
			data := make([]byte, n)
			rng.Read(data)
			if err := as.Store(addr, data); err != nil {
				t.Fatalf("store %d: %v", i, err)
			}
			copy(shadow[off:], data)
		} else {
			got := make([]byte, n)
			if err := as.Load(addr, got); err != nil {
				t.Fatalf("load %d: %v", i, err)
			}
			if !bytes.Equal(got, shadow[off:off+n]) {
				t.Fatalf("divergence at op %d, offset %d", i, off)
			}
		}
	}
}
