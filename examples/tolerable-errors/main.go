// tolerable-errors reproduces the Fig. 8 analysis end to end: it first
// measures each application's overall crash probability per error with an
// injection campaign, then converts the availability targets into the
// maximum tolerable memory error rates — and checks which applications
// could run at 99.00% on a server seeing 2000 errors/month with no ECC at
// all.
//
//	go run ./examples/tolerable-errors
package main

import (
	"fmt"
	"log"

	"hrmsim"
)

func main() {
	targets := []float64{0.9999, 0.999, 0.99}
	fmt.Printf("%-10s %12s  %8s %8s %8s  %s\n",
		"app", "crash prob", "99.99%", "99.90%", "99.00%", "OK at 2000/mo, 99.00%?")
	for _, app := range hrmsim.Apps() {
		// Hard single-bit errors model an error resident until
		// recovery, matching the Fig. 8 availability analysis. Trials is
		// a budget, not a fixed count: with TargetCI set, the adaptive
		// planner stops each campaign as soon as the 90% Wilson CI
		// half-width on the crash probability narrows to 5 points, so
		// tolerant applications finish in a fraction of the budget.
		c, err := hrmsim.Characterize(hrmsim.CharacterizeConfig{
			App:      app,
			Error:    hrmsim.HardSingleBit,
			Trials:   200,
			TargetCI: 0.05,
			Size:     hrmsim.SizeSmall,
		})
		if err != nil {
			log.Fatal(err)
		}
		if c.TrialsSaved > 0 {
			fmt.Printf("# %s: stopped at %d trials (%d of the %d-trial budget saved)\n",
				app, c.Planned, c.TrialsSaved, c.Trials)
		}
		p := c.CrashProbability
		if p == 0 {
			// Zero observed crashes: be conservative and use the upper
			// bound of the 90% confidence interval.
			p = c.CrashCIHigh
		}
		row := fmt.Sprintf("%-10s %11.2f%% ", app, p*100)
		var at99 float64
		for _, target := range targets {
			tol, err := hrmsim.Tolerable(p, target)
			if err != nil {
				log.Fatal(err)
			}
			row += fmt.Sprintf(" %8.0f", tol)
			if target == 0.99 {
				at99 = tol
			}
		}
		verdict := "no"
		if at99 >= 2000 {
			verdict = "yes"
		}
		fmt.Printf("%s  %s\n", row, verdict)
	}
	fmt.Println("\nThe paper's observation holds: there is an order-of-magnitude spread")
	fmt.Println("in tolerable error rates across data-intensive applications, so a")
	fmt.Println("one-size-fits-all memory reliability choice wastes money on some of")
	fmt.Println("them and under-protects others.")
}
