package obsv

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	const workers, perWorker = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("ops_total")
			for i := 0; i < perWorker; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("ops_total").Value(); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("level")
	if g.Value() != 0 {
		t.Errorf("zero value = %g", g.Value())
	}
	g.Set(3.25)
	if g.Value() != 3.25 {
		t.Errorf("value = %g", g.Value())
	}
	if r.Gauge("level") != g {
		t.Error("second lookup returned a different gauge")
	}
}

func TestHistogramBucketEdges(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{1, 10, 100})
	// A sample exactly on a bound belongs to that bound's bucket (le
	// semantics); above the last bound it overflows into +Inf.
	for _, x := range []float64{0.5, 1, 1.0000001, 10, 99.9, 100, 100.1, 1e9} {
		h.Observe(x)
	}
	snap := r.Snapshot().Histograms["lat"]
	want := []int64{2, 2, 2, 2} // (-inf,1] (1,10] (10,100] (100,+inf)
	for i, c := range snap.Counts {
		if c != want[i] {
			t.Errorf("bucket %d = %d, want %d (all: %v)", i, c, want[i], snap.Counts)
		}
	}
	if snap.Count != 8 {
		t.Errorf("count = %d", snap.Count)
	}
	wantSum := 0.5 + 1 + 1.0000001 + 10 + 99.9 + 100 + 100.1 + 1e9
	if math.Abs(snap.Sum-wantSum) > 1e-6 {
		t.Errorf("sum = %g, want %g", snap.Sum, wantSum)
	}
	if m := snap.Mean(); math.Abs(m-wantSum/8) > 1e-6 {
		t.Errorf("mean = %g", m)
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("x", ExpBuckets(1, 2, 10))
	const workers, perWorker = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				h.Observe(float64(w%4) + 1)
			}
		}(w)
	}
	wg.Wait()
	if h.Count() != workers*perWorker {
		t.Errorf("count = %d, want %d", h.Count(), workers*perWorker)
	}
	// Sum is an exact atomic accumulation of integer-valued samples.
	wantSum := float64(perWorker * 2 * (1 + 2 + 3 + 4))
	if h.Sum() != wantSum {
		t.Errorf("sum = %g, want %g", h.Sum(), wantSum)
	}
}

func TestBucketHelpers(t *testing.T) {
	lin := LinearBuckets(10, 5, 3)
	if lin[0] != 10 || lin[1] != 15 || lin[2] != 20 {
		t.Errorf("linear = %v", lin)
	}
	exp := ExpBuckets(1, 4, 3)
	if exp[0] != 1 || exp[1] != 4 || exp[2] != 16 {
		t.Errorf("exp = %v", exp)
	}
}

// fillRegistry populates a registry in the given insertion order, with
// values derived from the metric name only.
func fillRegistry(names []string) *Registry {
	r := NewRegistry()
	for _, n := range names {
		r.Counter("c_" + n).Add(int64(len(n)))
		r.Gauge("g_" + n).Set(float64(len(n)) / 2)
		h := r.Histogram("h_"+n, []float64{1, 2})
		h.Observe(float64(len(n)))
	}
	return r
}

func TestSnapshotDeterministicEncoding(t *testing.T) {
	a := fillRegistry([]string{"alpha", "beta", "gamma"})
	b := fillRegistry([]string{"gamma", "alpha", "beta"})
	var ta, tb bytes.Buffer
	if err := a.Snapshot().WriteText(&ta); err != nil {
		t.Fatal(err)
	}
	if err := b.Snapshot().WriteText(&tb); err != nil {
		t.Fatal(err)
	}
	if ta.String() != tb.String() {
		t.Errorf("text encodings differ:\n%s\n--\n%s", ta.String(), tb.String())
	}
	ja, err := a.Snapshot().MarshalJSONIndent()
	if err != nil {
		t.Fatal(err)
	}
	jb, err := b.Snapshot().MarshalJSONIndent()
	if err != nil {
		t.Fatal(err)
	}
	if string(ja) != string(jb) {
		t.Errorf("JSON encodings differ:\n%s\n--\n%s", ja, jb)
	}
}

func TestTextFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("reqs_total").Add(7)
	r.Gauge("temp").Set(1.5)
	h := r.Histogram("lat_ms", []float64{1, 10})
	h.Observe(0.5)
	h.Observe(5)
	h.Observe(50)
	var buf bytes.Buffer
	if err := r.Snapshot().WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	want := `reqs_total 7
temp 1.5
lat_ms_bucket{le="1"} 1
lat_ms_bucket{le="10"} 2
lat_ms_bucket{le="+Inf"} 3
lat_ms_sum 55.5
lat_ms_count 3
`
	if buf.String() != want {
		t.Errorf("text encoding:\n%s\nwant:\n%s", buf.String(), want)
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total").Add(3)
	r.Histogram("h", []float64{2}).Observe(1)
	b, err := r.Snapshot().MarshalJSONIndent()
	if err != nil {
		t.Fatal(err)
	}
	var got Snapshot
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatal(err)
	}
	if got.Counters["a_total"] != 3 {
		t.Errorf("counter lost: %+v", got)
	}
	h := got.Histograms["h"]
	if len(h.Bounds) != 1 || len(h.Counts) != 2 || h.Counts[0] != 1 || h.Count != 1 {
		t.Errorf("histogram lost: %+v", h)
	}
}

func TestHTTPHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("hits_total").Inc()
	h := Handler(r)

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if !strings.Contains(rec.Body.String(), "hits_total 1") {
		t.Errorf("text body: %q", rec.Body.String())
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics?format=json", nil))
	var snap Snapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatalf("json body %q: %v", rec.Body.String(), err)
	}
	if snap.Counters["hits_total"] != 1 {
		t.Errorf("json snapshot: %+v", snap)
	}

	rec = httptest.NewRecorder()
	req := httptest.NewRequest("GET", "/metrics", nil)
	req.Header.Set("Accept", "application/json")
	h.ServeHTTP(rec, req)
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("Accept negotiation content-type = %q", ct)
	}
}
