// traceview: offline inspector for JSONL event traces written by
// `characterize -trace <file>` (schema: OBSERVABILITY.md, "Event
// tracing"). Renders per-trial timelines, an events-by-kind summary,
// and the injection-to-first-consumption latency distribution.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"hrmsim/internal/evtrace"
	"hrmsim/internal/textplot"
)

func cmdTraceview(args []string) error {
	fs := flag.NewFlagSet("traceview", flag.ContinueOnError)
	trial := fs.Int("trial", -1, "show only this trial's timeline (-1 = summary + first timelines)")
	maxTimelines := fs.Int("max-timelines", 8, "maximum per-trial timelines to print")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: hrmsim traceview [-trial N] [-max-timelines N] <trace.jsonl>")
	}
	path := fs.Arg(0)

	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	hdr, events, err := evtrace.ReadJSONL(f)
	if err != nil {
		return fmt.Errorf("reading %s: %w", path, err)
	}

	byTrial := map[int][]evtrace.Event{}
	for _, ev := range events {
		byTrial[ev.Trial] = append(byTrial[ev.Trial], ev)
	}
	trials := make([]int, 0, len(byTrial))
	for id := range byTrial {
		trials = append(trials, id)
	}
	sort.Ints(trials)

	fmt.Printf("%s  schema v%d\n", path, hdr.SchemaVersion)
	fmt.Printf("%d events across %d trials\n\n", len(events), len(trials))

	if *trial >= 0 {
		evs, ok := byTrial[*trial]
		if !ok {
			return fmt.Errorf("trial %d not present in %s", *trial, path)
		}
		printTimeline(*trial, evs)
		return nil
	}

	// Events by kind, in schema order.
	counts := map[evtrace.Kind]int{}
	for _, ev := range events {
		counts[ev.Kind]++
	}
	var bars []textplot.Bar
	for _, k := range evtrace.Kinds() {
		if counts[k] > 0 {
			bars = append(bars, textplot.Bar{Label: string(k), Value: float64(counts[k])})
		}
	}
	fmt.Println(textplot.BarChart("Events by kind", bars, 40, false))

	// Outcomes across trials.
	outcomes := map[string]int{}
	for _, id := range trials {
		for _, ev := range byTrial[id] {
			if ev.Kind == evtrace.KindOutcome {
				outcomes[ev.Outcome]++
			}
		}
	}
	if len(outcomes) > 0 {
		names := make([]string, 0, len(outcomes))
		for o := range outcomes {
			names = append(names, o)
		}
		sort.Strings(names)
		var obars []textplot.Bar
		for _, o := range names {
			obars = append(obars, textplot.Bar{Label: o, Value: float64(outcomes[o])})
		}
		fmt.Println(textplot.BarChart("Trial outcomes", obars, 40, false))
	}

	// Injection-to-first-consumption latency: virtual time from the first
	// inject event to the first access touching a faulty word (or its ECC
	// consequence), per trial that consumed the error.
	var latencies []float64 // minutes
	for _, id := range trials {
		var injVT int64 = -1
		for _, ev := range byTrial[id] {
			switch ev.Kind {
			case evtrace.KindInject:
				if injVT < 0 {
					injVT = ev.VTNanos
				}
			case evtrace.KindAccessFaulty, evtrace.KindECCCorrected, evtrace.KindECCUncorrectable:
				if injVT >= 0 {
					latencies = append(latencies, float64(ev.VTNanos-injVT)/60e9)
					injVT = -2 // stop scanning this trial
				}
			}
			if injVT == -2 {
				break
			}
		}
	}
	if len(latencies) > 0 {
		centers, histCounts := binLatencies(latencies, 10)
		fmt.Println(textplot.HistogramPlot(
			fmt.Sprintf("Injection-to-first-consumption latency (virtual minutes, %d trials)", len(latencies)),
			centers, histCounts, 40))
	} else {
		fmt.Println("No injected error was consumed in any traced trial.")
	}

	// Per-trial timelines (bounded; -trial selects a single one).
	n := 0
	for _, id := range trials {
		if n >= *maxTimelines {
			fmt.Printf("... %d more trials (use -trial N or -max-timelines)\n", len(trials)-n)
			break
		}
		fmt.Println()
		printTimeline(id, byTrial[id])
		n++
	}
	return nil
}

// printTimeline renders one trial's events relative to its trial_start
// virtual time.
func printTimeline(id int, evs []evtrace.Event) {
	var origin int64
	outcome := ""
	for _, ev := range evs {
		if ev.Kind == evtrace.KindTrialStart {
			origin = ev.VTNanos
		}
		if ev.Kind == evtrace.KindOutcome {
			outcome = ev.Outcome
		}
	}
	fmt.Printf("trial %d  (%d events, outcome: %s)\n", id, len(evs), outcome)
	for _, ev := range evs {
		fmt.Println("  " + evtrace.FormatEvent(ev, origin))
	}
}

// binLatencies builds a fixed-width histogram over [min, max].
func binLatencies(xs []float64, bins int) (centers []float64, counts []int) {
	lo, hi := xs[0], xs[0]
	for _, x := range xs {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	if hi == lo {
		hi = lo + 1
	}
	w := (hi - lo) / float64(bins)
	counts = make([]int, bins)
	for i := 0; i < bins; i++ {
		centers = append(centers, lo+(float64(i)+0.5)*w)
	}
	for _, x := range xs {
		i := int((x - lo) / w)
		if i >= bins {
			i = bins - 1
		}
		counts[i]++
	}
	return centers, counts
}
