// Command kvload is a standalone load generator for kvserve: it drives
// hundreds of concurrent connections of Zipfian GET/SET traffic at a
// target rate, measures per-op latency, and — because every value in the
// store is deterministically derived from (key, version) — verifies every
// GET against the expected bytes, so silent memory corruption on the
// server shows up as a wrong-value count in the report instead of
// passing through unnoticed.
//
// The chaos harness (`hrmsim chaos`, internal/chaos) embeds the same
// generator; this command exists to drive an external kvserve by hand:
//
//	kvserve -addr 127.0.0.1:11222 -ecc none &
//	kvload  -addr 127.0.0.1:11222 -conns 100 -duration 10s
//
// With -json the report is a schema-versioned envelope (tool "kvload")
// carrying the kvload_* metrics snapshot; see OBSERVABILITY.md.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"hrmsim/internal/chaos"
	"hrmsim/internal/obsv"
)

// schemaVersion identifies the kvload -json report layout.
const schemaVersion = 1

// reportJSON is the -json result payload.
type reportJSON struct {
	Addr            string  `json:"addr"`
	Conns           int     `json:"conns"`
	DurationSeconds float64 `json:"duration_seconds"`
	Ops             int64   `json:"ops"`
	OpsPerSec       float64 `json:"ops_per_sec"`
	Gets            int64   `json:"gets"`
	Sets            int64   `json:"sets"`
	Errors          int64   `json:"errors"`
	Timeouts        int64   `json:"timeouts"`
	WrongValues     int64   `json:"wrong_values"`
	StaleValues     int64   `json:"stale_values"`
	Reconnects      int64   `json:"reconnects"`
	// Latency percentiles are null when no op completed (or the
	// quantile fell beyond the histogram bounds).
	P50LatencyUs  *float64 `json:"p50_latency_us"`
	P99LatencyUs  *float64 `json:"p99_latency_us"`
	MeanLatencyUs float64  `json:"mean_latency_us"`
}

// envelope mirrors the hrmsim -json envelope shape for a different tool.
type envelope struct {
	SchemaVersion int            `json:"schema_version"`
	Tool          string         `json:"tool"`
	Command       string         `json:"command"`
	Result        reportJSON     `json:"result"`
	Metrics       *obsv.Snapshot `json:"metrics,omitempty"`
}

func main() {
	addr := flag.String("addr", "127.0.0.1:11222", "kvserve protocol address")
	conns := flag.Int("conns", 100, "concurrent connections")
	qps := flag.Float64("qps", 0, "aggregate target ops/s (0 = closed loop)")
	duration := flag.Duration("duration", 10*time.Second, "how long to drive traffic")
	keys := flag.Int("keys", 1024, "working-set size (must match the server's -keys)")
	valueSize := flag.Int("value-size", 64, "value size in bytes (must match the server)")
	readFraction := flag.Float64("read-fraction", 0.9, "GET share of the op mix")
	zipfS := flag.Float64("zipf-s", 1.1, "Zipf key-popularity exponent (> 1)")
	seed := flag.Int64("seed", 1, "per-connection RNG seed base")
	opTimeout := flag.Duration("op-timeout", 2*time.Second, "per-op round-trip deadline")
	jsonOut := flag.Bool("json", false, "emit the report as a JSON envelope")
	flag.Parse()

	reg := obsv.NewRegistry()
	gen, err := chaos.NewGenerator(chaos.GenConfig{
		Addr:         *addr,
		Conns:        *conns,
		QPS:          *qps,
		Keys:         *keys,
		ValueSize:    *valueSize,
		ReadFraction: *readFraction,
		ZipfS:        *zipfS,
		Seed:         *seed,
		OpTimeout:    *opTimeout,
		Registry:     reg,
	})
	if err != nil {
		log.Fatalf("kvload: %v", err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	runCtx, cancel := context.WithTimeout(ctx, *duration)
	defer cancel()

	start := time.Now()
	gen.Run(runCtx)
	elapsed := time.Since(start)

	snap := reg.Snapshot()
	rep := buildReport(*addr, *conns, elapsed, snap)
	if *jsonOut {
		env := envelope{
			SchemaVersion: schemaVersion,
			Tool:          "kvload",
			Command:       "run",
			Result:        rep,
			Metrics:       &snap,
		}
		b, err := json.MarshalIndent(env, "", "  ")
		if err != nil {
			log.Fatalf("kvload: %v", err)
		}
		fmt.Println(string(b))
		return
	}
	printReport(rep)
}

func buildReport(addr string, conns int, elapsed time.Duration, snap obsv.Snapshot) reportJSON {
	c := func(name string) int64 { return snap.Counters[name] }
	rep := reportJSON{
		Addr:            addr,
		Conns:           conns,
		DurationSeconds: elapsed.Seconds(),
		Ops:             c("kvload_ops_total"),
		Gets:            c("kvload_gets_total"),
		Sets:            c("kvload_sets_total"),
		Errors:          c("kvload_errors_total"),
		Timeouts:        c("kvload_timeouts_total"),
		WrongValues:     c("kvload_wrong_values_total"),
		StaleValues:     c("kvload_stale_values_total"),
		Reconnects:      c("kvload_reconnects_total"),
	}
	if elapsed > 0 {
		rep.OpsPerSec = float64(rep.Ops) / elapsed.Seconds()
	}
	h := snap.Histograms["kvload_op_latency_us"]
	rep.MeanLatencyUs = h.Mean()
	if v, ok := chaos.Percentile(obsv.HistogramSnapshot{}, h, 0.50); ok {
		rep.P50LatencyUs = &v
	}
	if v, ok := chaos.Percentile(obsv.HistogramSnapshot{}, h, 0.99); ok {
		rep.P99LatencyUs = &v
	}
	return rep
}

func printReport(r reportJSON) {
	fmt.Printf("kvload: %s — %d conns, %.1fs\n", r.Addr, r.Conns, r.DurationSeconds)
	fmt.Printf("  ops        %10d (%.0f/s; %d get, %d set)\n", r.Ops, r.OpsPerSec, r.Gets, r.Sets)
	fmt.Printf("  errors     %10d (%d timeouts, %d reconnects)\n", r.Errors, r.Timeouts, r.Reconnects)
	fmt.Printf("  integrity  %10d wrong values, %d stale reads\n", r.WrongValues, r.StaleValues)
	p50, p99 := "-", "-"
	if r.P50LatencyUs != nil {
		p50 = fmt.Sprintf("%.0fµs", *r.P50LatencyUs)
	}
	if r.P99LatencyUs != nil {
		p99 = fmt.Sprintf("%.0fµs", *r.P99LatencyUs)
	}
	fmt.Printf("  latency    p50 %s, p99 %s, mean %.0fµs\n", p50, p99, r.MeanLatencyUs)
}
