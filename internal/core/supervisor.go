package core

import (
	"context"
	"fmt"
	"sync"
	"time"

	"hrmsim/internal/apps"
	"hrmsim/internal/evtrace"
	"hrmsim/internal/simmem"
)

// supervisor drives one campaign's worker pool with the resilience
// machinery around it: context cancellation with in-flight draining,
// the per-trial watchdogs (wall-clock deadline and virtual-operation
// budget), bounded retry of transient infrastructure failures, journal
// appends, and resume skipping. The Fig. 2 trial loop itself lives in
// campaign.go (runTrial / injectAndServe); the supervisor only decides
// which trials run, for how long, and what happens when they don't
// finish.
type supervisor struct {
	cfg            CampaignConfig
	golden         []uint64
	par            int
	sb             apps.SnapshotBuilder
	useSnapshot    bool
	maxRetries     int
	backoff        time.Duration
	statusInterval time.Duration
	m              *campaignMetrics

	// plannerMu serializes all TrialPlanner calls (the planner needs no
	// locking of its own); resultEv wakes the dispatch loop out of
	// PlanWait after a result has been fed back. Lock order: plannerMu
	// before progressMu, never the reverse.
	plannerMu sync.Mutex
	planner   TrialPlanner
	resultEv  chan struct{}
	adaptive  bool // planner is not the fixed plan: surface CI/budget fields

	// progressMu serializes the progress/status accounting below; the
	// Progress and StatusSink hooks are both called under it.
	progressMu sync.Mutex
	start      time.Time
	total      int
	done       int
	virtSum    time.Duration
	lo, hi     int
	completed  int
	aborted    int
	resumed    int
	counts     map[Outcome]int
	lastStatus time.Time
	planned    int     // planner's current campaign-level trial budget
	planFinal  bool    // the budget is the plan's last word
	halfWidth  float64 // latest CI half-width verdict (adaptive only)
}

// run executes the campaign: pre-merges resumed results, dispatches the
// planner's indices to par workers, and stops dispatching (draining
// in-flight trials) when ctx is cancelled or the planner's stopping
// rule fires.
func (s *supervisor) run(ctx context.Context) (*CampaignResult, error) {
	cfg := s.cfg
	results := make([]TrialResult, cfg.Trials)
	have := make([]bool, cfg.Trials)

	// An unsharded campaign owns every index; a shard owns only its
	// contiguous slice, and resume records outside it are ignored (they
	// belong to sibling shards).
	lo, hi := 0, cfg.Trials
	if cfg.Shard != nil {
		lo, hi = cfg.Shard.Range(cfg.Trials)
	}
	resumed := 0
	s.counts = make(map[Outcome]int)
	var resumedInRange map[int]TrialResult
	for i, tr := range cfg.Resume {
		if i < lo || i >= hi {
			continue
		}
		tr.Index = i
		results[i] = tr
		have[i] = true
		resumed++
		if resumedInRange == nil {
			resumedInRange = make(map[int]TrialResult)
		}
		resumedInRange[i] = tr
		s.m.recordResumeSkip()
		// Resumed trials count toward the shard's dispositions so the
		// status record's totals always describe the whole range.
		if tr.Disposition == DispositionCompleted {
			s.completed++
			s.counts[tr.Outcome]++
		} else {
			s.aborted++
		}
	}

	// The planner decides which indices run and when the campaign
	// stops; the default fixed plan is bit-identical to the classic
	// "every owned index, ascending" engine. Resumed results replay
	// through the planner so an adaptive plan continues exactly where
	// the interrupted run stopped.
	planner := cfg.Planner
	if planner == nil {
		planner = NewFixedPlanner()
	}
	if err := planner.Start(lo, hi, cfg.Trials, resumedInRange); err != nil {
		return nil, err
	}
	_, fixed := planner.(*FixedPlanner)
	s.planner = planner
	s.adaptive = !fixed
	s.resultEv = make(chan struct{}, 1)
	s.halfWidth = 1

	s.start = time.Now()
	s.lo, s.hi = lo, hi
	s.done = resumed
	s.resumed = resumed
	total, final := planner.Budget()
	s.notePlan(planner.TakeDecisions(), total, final)

	// Announce the shard before the first trial finishes: observers learn
	// the shard exists (and how much is resumed) even if trials are slow.
	if cfg.StatusSink != nil {
		s.progressMu.Lock()
		s.emitStatusLocked(true, false)
		s.progressMu.Unlock()
	}

	idxCh := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < s.par; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Each worker keeps one snapshot-capable instance alive
			// across all the trials it drains; the build + warmup cost
			// is paid once per worker instead of once per trial. Its
			// metrics shard folds into the shared registry at trial
			// boundaries and — via this defer, which runs before
			// wg.Done — unconditionally on exit, so registry reads
			// after Wait see exact totals.
			wm := s.m.newWorker()
			defer func() { wm.fold() }()
			var sess *snapshotSession
			for i := range idxCh {
				start := time.Now()
				var tr TrialResult
				tr, sess, wm = s.runOne(sess, wm, i)
				results[i] = tr
				have[i] = true
				s.journalTrial(tr)
				s.observePlanner(tr)
				s.finished(tr, time.Since(start), wm)
			}
		}()
	}
	interrupted := false
dispatch:
	for {
		s.plannerMu.Lock()
		i, state := planner.Next()
		s.plannerMu.Unlock()
		switch state {
		case PlanDone:
			break dispatch
		case PlanWait:
			// The planner is holding at an evaluation boundary; an
			// in-flight trial's Observe will either advance it or stop
			// the campaign, and signals resultEv either way.
			select {
			case <-s.resultEv:
			case <-ctx.Done():
				interrupted = true
				break dispatch
			}
		default:
			select {
			case idxCh <- i:
			case <-ctx.Done():
				interrupted = true
				break dispatch
			}
		}
	}
	close(idxCh)
	wg.Wait()
	if !interrupted && ctx.Err() != nil {
		// Cancellation landed after the last dispatch; the result is
		// complete but the caller's intent to stop is still recorded.
		interrupted = true
	}

	// The final status record: Running=false marks the shard done (or
	// interrupted), so a dead campaign directory still renders.
	if cfg.StatusSink != nil {
		s.progressMu.Lock()
		s.emitStatusLocked(false, interrupted)
		s.progressMu.Unlock()
	}

	s.plannerMu.Lock()
	finalTotal, finalDone := planner.Budget()
	s.plannerMu.Unlock()
	planned, planFinal := cfg.Trials, true
	if lo == 0 && hi == cfg.Trials {
		// Unsharded: the planner's budget is the campaign's. A shard's
		// budget is only its slice, and shards run fixed plans anyway.
		planned, planFinal = finalTotal, finalDone
	}
	res := &CampaignResult{
		App:         cfg.Builder.AppName(),
		Spec:        cfg.Spec,
		Golden:      s.golden,
		Requested:   cfg.Trials,
		Planned:     planned,
		PlanFinal:   planFinal,
		Resumed:     resumed,
		Interrupted: interrupted,
		counts:      make(map[Outcome]int),
	}
	for i := 0; i < cfg.Trials; i++ {
		if !have[i] {
			continue
		}
		res.Trials = append(res.Trials, results[i])
		if results[i].Disposition == DispositionCompleted {
			res.counts[results[i].Outcome]++
		}
	}
	return res, nil
}

// runOne runs trial i with bounded retry of infrastructure failures.
// It never returns an error: a trial that keeps failing is recorded as
// aborted (AbortReasonWorkerError) and the campaign moves on.
func (s *supervisor) runOne(sess *snapshotSession, wm *workerMetrics, i int) (TrialResult, *snapshotSession, *workerMetrics) {
	backoff := s.backoff
	for attempt := 0; ; attempt++ {
		var tr TrialResult
		var err error
		tr, err, sess, wm = s.attempt(sess, wm, i)
		if err == nil {
			tr.Index = i
			return tr, sess, wm
		}
		if attempt >= s.maxRetries {
			detail := fmt.Sprintf("%v (after %d attempts)", err, attempt+1)
			s.m.recordAbort(AbortReasonWorkerError)
			traceAbort(s.cfg.Tracer, i, AbortReasonWorkerError, detail)
			return TrialResult{
				Index:       i,
				Disposition: DispositionAborted,
				AbortReason: AbortReasonWorkerError,
				AbortDetail: detail,
			}, sess, wm
		}
		// Transient failure (a build or restore hiccup): rebuild the
		// worker's instance from scratch and try the same trial again.
		// The per-trial rng depends only on (Seed, i), so a retried
		// trial is bit-identical to a first-try success.
		s.m.recordRetry()
		sess = nil
		time.Sleep(backoff)
		backoff *= 2
	}
}

// attempt runs one attempt of trial i, under the wall-clock watchdog
// when configured. On deadline the trial goroutine is abandoned (it
// holds only its own app instance) and the worker's session AND metrics
// shard are both discarded, since the wedged goroutine may still be
// mutating them.
func (s *supervisor) attempt(sess *snapshotSession, wm *workerMetrics, i int) (TrialResult, error, *snapshotSession, *workerMetrics) {
	if s.cfg.TrialTimeout <= 0 {
		tr, err, out := s.execute(sess, wm, i)
		return tr, err, out, wm
	}
	// Publish the shard before handing it to a goroutine we may abandon:
	// if the deadline fires, the worker switches to a fresh shard, and
	// only the abandoned trial's partial counts are dropped with it (by
	// design — an aborted trial never enters the outcome statistics).
	wm.fold()
	type trialDone struct {
		tr   TrialResult
		err  error
		sess *snapshotSession
	}
	ch := make(chan trialDone, 1)
	go func() {
		tr, err, out := s.execute(sess, wm, i)
		ch <- trialDone{tr, err, out}
	}()
	timer := time.NewTimer(s.cfg.TrialTimeout)
	defer timer.Stop()
	select {
	case d := <-ch:
		return d.tr, d.err, d.sess, wm
	case <-timer.C:
		detail := fmt.Sprintf("trial exceeded the %v wall-clock deadline", s.cfg.TrialTimeout)
		s.m.recordAbort(AbortReasonDeadline)
		traceAbort(s.cfg.Tracer, i, AbortReasonDeadline, detail)
		return TrialResult{
			Index:       i,
			Disposition: DispositionAborted,
			AbortReason: AbortReasonDeadline,
			AbortDetail: detail,
		}, nil, nil, s.m.newWorker()
	}
}

// execute runs one attempt of trial i on the chosen lifecycle and
// converts the op-budget watchdog's abort panic into an aborted result.
func (s *supervisor) execute(sess *snapshotSession, wm *workerMetrics, i int) (tr TrialResult, err error, out *snapshotSession) {
	defer func() {
		if r := recover(); r != nil {
			ab, ok := r.(*trialAbort)
			if !ok {
				panic(r)
			}
			// The app unwound mid-request; snapshot restore rolls any
			// partial mutation back before the next trial, so the
			// session stays usable.
			tr = TrialResult{
				Index:       i,
				Disposition: DispositionAborted,
				AbortReason: ab.reason,
				AbortDetail: ab.detail,
			}
			err = nil
			out = sess
			s.m.recordAbort(ab.reason)
			ab.finishTrace()
		}
	}()
	if s.useSnapshot {
		if sess == nil {
			sess, err = newSnapshotSession(s.sb, s.golden, s.cfg.Warmup)
			if err != nil {
				return TrialResult{}, err, nil
			}
		}
		tr, err = sess.runTrial(s.cfg, s.golden, wm, i)
		return tr, err, sess
	}
	tr, err = runTrial(s.cfg, s.golden, wm, i)
	return tr, err, nil
}

// journalTrial appends one finished trial to the journal, if any.
// Journal write errors must not corrupt the campaign's science, so they
// are sticky on the Journal and surfaced by its Close/Err — the trials
// keep running.
func (s *supervisor) journalTrial(tr TrialResult) {
	if s.cfg.Journal == nil {
		return
	}
	if err := s.cfg.Journal.Append(tr); err == nil {
		s.m.recordJournal()
	}
}

// observePlanner feeds one finished trial back to the planner, records
// any stop/continue verdicts it produced, and wakes the dispatch loop
// (which may be parked in PlanWait at an evaluation boundary).
func (s *supervisor) observePlanner(tr TrialResult) {
	s.plannerMu.Lock()
	s.planner.Observe(tr)
	decs := s.planner.TakeDecisions()
	total, final := s.planner.Budget()
	s.plannerMu.Unlock()
	s.notePlan(decs, total, final)
	select {
	case s.resultEv <- struct{}{}:
	default: // a wakeup is already pending; Next() re-reads planner state
	}
}

// notePlan journals and meters drained planner decisions and refreshes
// the budget-derived progress state. decs must already be drained (the
// caller holds no planner lock here).
func (s *supervisor) notePlan(decs []PlannerDecision, total int, final bool) {
	for _, d := range decs {
		if s.cfg.Journal != nil {
			if err := s.cfg.Journal.AppendDecision(d); err == nil {
				s.m.recordJournal()
			}
		}
		s.m.recordDecision(d, s.cfg.Trials)
	}
	s.progressMu.Lock()
	s.total = total
	s.planFinal = final
	s.planned = s.cfg.Trials
	if s.lo == 0 && s.hi == s.cfg.Trials {
		s.planned = total
	}
	if n := len(decs); n > 0 {
		s.halfWidth = decs[n-1].HalfWidth
	}
	s.progressMu.Unlock()
}

// finished records metrics, progress, and heartbeat accounting for one
// finished trial (completed or aborted).
func (s *supervisor) finished(tr TrialResult, wall time.Duration, wm *workerMetrics) {
	if tr.Disposition == DispositionCompleted {
		wm.record(tr, wall)
	}
	// Periodic fold regardless of hooks: the registry may be served live
	// (kvserve /metrics), so staleness must stay bounded even when the
	// supervisor has no progress or status observers of its own.
	wm.maybeFold()
	if s.cfg.Progress == nil && s.cfg.StatusSink == nil {
		return
	}
	s.progressMu.Lock()
	s.done++
	if tr.Disposition == DispositionCompleted {
		s.completed++
		s.counts[tr.Outcome]++
		s.virtSum += tr.EndedAt - tr.InjectedAt
	} else {
		s.aborted++
	}
	if s.cfg.Progress != nil {
		info := ProgressInfo{
			Done:                    s.done,
			Total:                   s.total,
			Elapsed:                 time.Since(s.start),
			MeanTrialVirtualMinutes: s.virtSum.Minutes() / float64(s.done),
			// Open-ended plan: Total is the planner's current budget
			// estimate, not a fixed size, so the ETA extrapolates to
			// the next evaluation boundary rather than the old fixed N.
			Adaptive: s.adaptive && !s.planFinal,
		}
		if info.Elapsed > 0 {
			info.TrialsPerSec = float64(s.done) / info.Elapsed.Seconds()
		}
		if rem := s.total - s.done; rem > 0 && info.TrialsPerSec > 0 {
			info.ETA = time.Duration(float64(rem) / info.TrialsPerSec * float64(time.Second))
		}
		s.cfg.Progress(info)
	}
	// Heartbeat, throttled off the hot path: at most one record per
	// statusInterval, no matter how fast trials finish. Fold this
	// worker's shard first so the metric snapshot embedded in the
	// status record is fresh (other workers' shards fold at their own
	// trial boundaries — at most foldEvery trials behind each).
	if s.cfg.StatusSink != nil && time.Since(s.lastStatus) >= s.statusInterval {
		wm.fold()
		s.emitStatusLocked(true, false)
	}
	s.progressMu.Unlock()
}

// emitStatusLocked assembles and delivers one ShardStatus under
// progressMu. The supervisor fills the campaign-engine fields; identity
// fields (ConfigHash, Campaign) are the status sink's to stamp.
func (s *supervisor) emitStatusLocked(running, interrupted bool) {
	st := ShardStatus{
		ShardCount:     1,
		TrialLo:        s.lo,
		TrialHi:        s.hi,
		Done:           s.done,
		Total:          s.total,
		Completed:      s.completed,
		Aborted:        s.aborted,
		Resumed:        s.resumed,
		Running:        running,
		Interrupted:    interrupted,
		WallUnixNanos:  time.Now().UnixNano(),
		ElapsedSeconds: time.Since(s.start).Seconds(),
	}
	if s.cfg.Shard != nil {
		st.ShardIndex, st.ShardCount = s.cfg.Shard.Index, s.cfg.Shard.Count
	}
	if s.adaptive {
		st.Adaptive = true
		st.CIHalfWidth = s.halfWidth
		st.PlannedTrials = s.planned
		st.PlanFinal = s.planFinal
		if saved := s.cfg.Trials - s.planned; s.planFinal && saved > 0 {
			st.TrialsSaved = saved
		}
	}
	if len(s.counts) > 0 {
		st.Outcomes = make(map[string]int, len(s.counts))
		for o, n := range s.counts {
			st.Outcomes[o.String()] = n
		}
	}
	if st.ElapsedSeconds > 0 {
		st.TrialsPerSec = float64(s.done) / st.ElapsedSeconds
	}
	if rem := s.total - s.done; rem > 0 && st.TrialsPerSec > 0 && running {
		st.EtaSeconds = float64(rem) / st.TrialsPerSec
	}
	if s.m != nil {
		snap := s.m.reg.Snapshot()
		st.Metrics = &snap
	}
	s.lastStatus = time.Now()
	s.cfg.StatusSink(st)
}

// trialAbort is the sentinel the in-trial watchdogs panic with; it
// unwinds through serveGuarded (which re-panics it rather than calling
// it an application crash) and is recovered in supervisor.execute.
type trialAbort struct {
	reason string
	detail string
	tt     *evtrace.TrialTracer
	vt     time.Duration
}

// finishTrace closes out the aborted trial's own event stream: the
// abort instant, then trial_end, on the tracer handle the trial was
// already emitting to — so the stream stays deterministic.
func (ab *trialAbort) finishTrace() {
	if ab.tt == nil {
		return
	}
	ab.tt.Emit(evtrace.Event{
		Kind:    evtrace.KindAbort,
		VTNanos: int64(ab.vt),
		Reason:  ab.reason,
		Detail:  ab.detail,
	})
	ab.tt.Emit(evtrace.Event{
		Kind:          evtrace.KindTrialEnd,
		VTNanos:       int64(ab.vt),
		Dropped:       ab.tt.DroppedCount(),
		WallUnixNanos: time.Now().UnixNano(),
	})
	ab.tt.Finish()
}

// opBudgetWatchdog aborts a trial that performs more simulated memory
// operations than budgeted — the deterministic complement to the
// wall-clock deadline. It panics with a *trialAbort sentinel from
// inside the access-notification path; serveGuarded re-panics it and
// supervisor.execute converts it into an aborted disposition.
type opBudgetWatchdog struct {
	remaining int64
	budget    int64
	tt        *evtrace.TrialTracer
}

var _ simmem.AccessObserver = (*opBudgetWatchdog)(nil)

// ObserveAccess implements simmem.AccessObserver.
func (w *opBudgetWatchdog) ObserveAccess(ev simmem.AccessEvent) {
	w.remaining--
	if w.remaining < 0 {
		panic(&trialAbort{
			reason: AbortReasonOpBudget,
			detail: fmt.Sprintf("trial exceeded the %d-operation budget", w.budget),
			tt:     w.tt,
			vt:     ev.Time,
		})
	}
}
