package dram

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestValidate(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatalf("Default geometry invalid: %v", err)
	}
	bad := Default()
	bad.Channels = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero channels accepted")
	}
	bad = Default()
	bad.ChipsPerDIMM = 7 // does not divide 64
	if err := bad.Validate(); err == nil {
		t.Error("non-dividing chip count accepted")
	}
}

func TestCapacity(t *testing.T) {
	g := Default()
	want := int64(3) * 2 * 8 * 64 * 16 * 64
	if got := g.Capacity(); got != want {
		t.Errorf("Capacity = %d, want %d", got, want)
	}
}

func TestMapOffsetRoundtrip(t *testing.T) {
	g := Default()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		off := rng.Int63n(g.Capacity())
		c, err := g.MapOffset(off)
		if err != nil {
			t.Fatalf("MapOffset(%d): %v", off, err)
		}
		back, err := g.OffsetOf(c)
		if err != nil {
			t.Fatalf("OffsetOf(%+v): %v", c, err)
		}
		if back != off {
			t.Fatalf("roundtrip %d -> %+v -> %d", off, c, back)
		}
		if c.Chip != c.Byte%g.ChipsPerDIMM {
			t.Fatalf("chip/byte lane inconsistent: %+v", c)
		}
	}
}

func TestMapOffsetBounds(t *testing.T) {
	g := Default()
	if _, err := g.MapOffset(-1); err == nil {
		t.Error("negative offset accepted")
	}
	if _, err := g.MapOffset(g.Capacity()); err == nil {
		t.Error("offset == capacity accepted")
	}
	if _, err := g.OffsetOf(Coord{Channel: g.Channels}); err == nil {
		t.Error("out-of-range coordinate accepted")
	}
}

func TestChannelInterleaving(t *testing.T) {
	g := Default()
	// Consecutive cache lines must land on consecutive channels.
	for l := int64(0); l < 12; l++ {
		ch, err := g.ChannelOfOffset(l * LineBytes)
		if err != nil {
			t.Fatal(err)
		}
		if ch != int(l)%g.Channels {
			t.Errorf("line %d on channel %d, want %d", l, ch, int(l)%g.Channels)
		}
	}
	// All bytes of one line are on the same channel.
	c0, _ := g.ChannelOfOffset(0)
	for b := int64(1); b < LineBytes; b++ {
		ch, _ := g.ChannelOfOffset(b)
		if ch != c0 {
			t.Fatalf("byte %d of line 0 on different channel", b)
		}
	}
}

func TestDomainSizes(t *testing.T) {
	g := Default()
	lane := int64(LineBytes / g.ChipsPerDIMM)
	tests := []struct {
		kind DomainKind
		want int64
	}{
		{DomainCell, 1},
		{DomainRow, int64(g.LinesPerRow) * lane},
		{DomainColumn, int64(g.RowsPerBank)},
		{DomainBank, int64(g.RowsPerBank) * int64(g.LinesPerRow) * lane},
		{DomainChip, int64(g.BanksPerDIMM) * int64(g.RowsPerBank) * int64(g.LinesPerRow) * lane},
		{DomainDIMM, int64(g.BanksPerDIMM) * int64(g.RowsPerBank) * int64(g.LinesPerRow) * LineBytes},
		{DomainChannel, int64(g.DIMMsPerChannel) * int64(g.BanksPerDIMM) * int64(g.RowsPerBank) * int64(g.LinesPerRow) * LineBytes},
	}
	for _, tt := range tests {
		got, err := g.DomainSize(FaultDomain{Kind: tt.kind})
		if err != nil {
			t.Fatalf("%v: %v", tt.kind, err)
		}
		if got != tt.want {
			t.Errorf("DomainSize(%v) = %d, want %d", tt.kind, got, tt.want)
		}
	}
	if _, err := g.DomainSize(FaultDomain{Kind: DomainKind(99)}); err == nil {
		t.Error("unknown kind accepted")
	}
}

// TestDomainOffsetsBelongToDomain verifies that every offset enumerated
// for a domain maps back to coordinates matching the domain's constraint.
func TestDomainOffsetsBelongToDomain(t *testing.T) {
	g := Default()
	rng := rand.New(rand.NewSource(2))
	kinds := []DomainKind{DomainCell, DomainRow, DomainColumn, DomainBank, DomainChip, DomainDIMM, DomainChannel}
	for _, kind := range kinds {
		d := g.RandomDomain(kind, rng)
		size, err := g.DomainSize(d)
		if err != nil {
			t.Fatal(err)
		}
		// Check a sample of indices, including the first and last.
		idxs := []int64{0, size - 1}
		for i := 0; i < 50; i++ {
			idxs = append(idxs, rng.Int63n(size))
		}
		seen := map[int64]bool{}
		for _, i := range idxs {
			off, err := g.OffsetAt(d, i)
			if err != nil {
				t.Fatalf("%v OffsetAt(%d): %v", kind, i, err)
			}
			c, err := g.MapOffset(off)
			if err != nil {
				t.Fatalf("%v MapOffset: %v", kind, err)
			}
			if !coordInDomain(c, d) {
				t.Fatalf("%v: offset %d -> %+v not in domain %+v", kind, off, c, d.Coord)
			}
			seen[off] = true
		}
		_ = seen
	}
}

// TestDomainOffsetsDistinct verifies OffsetAt is injective over a domain.
func TestDomainOffsetsDistinct(t *testing.T) {
	g := Default()
	rng := rand.New(rand.NewSource(3))
	d := g.RandomDomain(DomainRow, rng)
	size, err := g.DomainSize(d)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int64]bool{}
	for i := int64(0); i < size; i++ {
		off, err := g.OffsetAt(d, i)
		if err != nil {
			t.Fatal(err)
		}
		if seen[off] {
			t.Fatalf("duplicate offset %d at index %d", off, i)
		}
		seen[off] = true
	}
}

// coordInDomain reports whether c is inside d for d's granularity.
func coordInDomain(c Coord, d FaultDomain) bool {
	dc := d.Coord
	switch d.Kind {
	case DomainCell:
		return c == dc
	case DomainRow:
		return c.Channel == dc.Channel && c.DIMM == dc.DIMM && c.Chip == dc.Chip &&
			c.Bank == dc.Bank && c.Row == dc.Row
	case DomainColumn:
		return c.Channel == dc.Channel && c.DIMM == dc.DIMM && c.Chip == dc.Chip &&
			c.Bank == dc.Bank && c.Line == dc.Line && c.Byte == dc.Byte
	case DomainBank:
		return c.Channel == dc.Channel && c.DIMM == dc.DIMM && c.Chip == dc.Chip &&
			c.Bank == dc.Bank
	case DomainChip:
		return c.Channel == dc.Channel && c.DIMM == dc.DIMM && c.Chip == dc.Chip
	case DomainDIMM:
		return c.Channel == dc.Channel && c.DIMM == dc.DIMM
	case DomainChannel:
		return c.Channel == dc.Channel
	default:
		return false
	}
}

func TestOffsetAtBounds(t *testing.T) {
	g := Default()
	d := FaultDomain{Kind: DomainRow}
	size, _ := g.DomainSize(d)
	if _, err := g.OffsetAt(d, -1); err == nil {
		t.Error("negative index accepted")
	}
	if _, err := g.OffsetAt(d, size); err == nil {
		t.Error("index == size accepted")
	}
}

func TestSampleOffsets(t *testing.T) {
	g := Default()
	rng := rand.New(rand.NewSource(4))
	d := g.RandomDomain(DomainBank, rng)

	offs, err := g.SampleOffsets(d, rng, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(offs) != 100 {
		t.Fatalf("got %d offsets, want 100", len(offs))
	}
	seen := map[int64]bool{}
	for _, off := range offs {
		if seen[off] {
			t.Fatal("duplicate sampled offset")
		}
		seen[off] = true
		c, err := g.MapOffset(off)
		if err != nil {
			t.Fatal(err)
		}
		if !coordInDomain(c, d) {
			t.Fatalf("sampled offset %d outside domain", off)
		}
	}

	// Requesting more than the domain holds returns the whole domain.
	cell := g.RandomDomain(DomainCell, rng)
	offs, err = g.SampleOffsets(cell, rng, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(offs) != 1 {
		t.Fatalf("cell domain sample = %d offsets, want 1", len(offs))
	}
}

func TestRandomDomainInRange(t *testing.T) {
	g := Default()
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 200; i++ {
		d := g.RandomDomain(DomainCell, rng)
		if _, err := g.OffsetOf(d.Coord); err != nil {
			t.Fatalf("RandomDomain produced invalid coord: %v", err)
		}
	}
}

func TestDomainKindString(t *testing.T) {
	kinds := map[DomainKind]string{
		DomainCell: "cell", DomainRow: "row", DomainColumn: "column",
		DomainBank: "bank", DomainChip: "chip", DomainDIMM: "dimm",
		DomainChannel: "channel",
	}
	for k, want := range kinds {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), want)
		}
	}
}

func TestMapOffsetQuickProperty(t *testing.T) {
	g := Default()
	cap := g.Capacity()
	f := func(x uint32) bool {
		off := int64(x) % cap
		c, err := g.MapOffset(off)
		if err != nil {
			return false
		}
		back, err := g.OffsetOf(c)
		return err == nil && back == off
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
