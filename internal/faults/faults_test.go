package faults

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"time"

	"hrmsim/internal/dram"
)

func TestSpecValidate(t *testing.T) {
	for _, s := range []Spec{SingleBitSoft, SingleBitHard, DoubleBitHard} {
		if err := s.Validate(); err != nil {
			t.Errorf("%v: %v", s, err)
		}
	}
	if err := (Spec{Class: Soft, Bits: 0}).Validate(); err == nil {
		t.Error("zero bits accepted")
	}
	if err := (Spec{Class: Soft, Bits: 9}).Validate(); err == nil {
		t.Error("nine bits accepted")
	}
	if err := (Spec{Class: Class(9), Bits: 1}).Validate(); err == nil {
		t.Error("bad class accepted")
	}
}

func TestSpecString(t *testing.T) {
	tests := []struct {
		s    Spec
		want string
	}{
		{SingleBitSoft, "single-bit soft"},
		{SingleBitHard, "single-bit hard"},
		{DoubleBitHard, "2-bit hard"},
		{Spec{Class: Hard, Bits: 3}, "3-bit hard"},
		{Spec{Class: Hard, Bits: 1, Domain: &dram.FaultDomain{Kind: dram.DomainRow}},
			"single-bit hard (row)"},
	}
	for _, tt := range tests {
		if got := tt.s.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
	if Soft.String() != "soft" || Hard.String() != "hard" {
		t.Error("class names wrong")
	}
}

func TestRateModelValidate(t *testing.T) {
	if err := DefaultRates().Validate(); err != nil {
		t.Fatalf("default rates invalid: %v", err)
	}
	bad := []RateModel{
		{ErrorsPerMonth: -1, SoftFraction: 0.5, LessTestedMultiplier: 1},
		{ErrorsPerMonth: 1, SoftFraction: 1.5, LessTestedMultiplier: 1},
		{ErrorsPerMonth: 1, SoftFraction: 0.5, MultiBitFraction: -0.1, LessTestedMultiplier: 1},
		{ErrorsPerMonth: 1, SoftFraction: 0.5, LessTestedMultiplier: 0},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("bad model %d accepted", i)
		}
	}
}

func TestDefaultRatesMatchPaper(t *testing.T) {
	m := DefaultRates()
	if m.ErrorsPerMonth != 2000 {
		t.Errorf("ErrorsPerMonth = %g, want 2000 (Table 6)", m.ErrorsPerMonth)
	}
	if m.EffectiveRate() != 2000 {
		t.Errorf("EffectiveRate = %g, want 2000", m.EffectiveRate())
	}
}

func TestLessTestedMultiplier(t *testing.T) {
	m := DefaultRates()
	m.LessTestedMultiplier = 5
	if m.EffectiveRate() != 10000 {
		t.Errorf("EffectiveRate = %g, want 10000", m.EffectiveRate())
	}
}

func TestArrivalsPoissonCount(t *testing.T) {
	m := DefaultRates()
	rng := rand.New(rand.NewSource(1))
	arr, err := m.Arrivals(rng, Month)
	if err != nil {
		t.Fatal(err)
	}
	// Expect about 2000 arrivals; Poisson sd ~ 45, allow 5 sigma.
	if n := float64(len(arr)); math.Abs(n-2000) > 225 {
		t.Errorf("arrivals over a month = %d, want about 2000", len(arr))
	}
	// Sorted, in-horizon, valid specs.
	if !sort.SliceIsSorted(arr, func(i, j int) bool { return arr[i].At < arr[j].At }) {
		t.Error("arrivals not sorted")
	}
	for _, a := range arr {
		if a.At < 0 || a.At >= Month {
			t.Fatalf("arrival at %v outside horizon", a.At)
		}
		if err := a.Spec.Validate(); err != nil {
			t.Fatalf("invalid arrival spec: %v", err)
		}
	}
}

func TestArrivalsMixFractions(t *testing.T) {
	m := RateModel{
		ErrorsPerMonth:       5000,
		SoftFraction:         0.6,
		MultiBitFraction:     0.5,
		LessTestedMultiplier: 1,
	}
	rng := rand.New(rand.NewSource(2))
	arr, err := m.Arrivals(rng, Month)
	if err != nil {
		t.Fatal(err)
	}
	var soft, hard1, hard2 int
	for _, a := range arr {
		switch {
		case a.Spec.Class == Soft:
			soft++
		case a.Spec.Bits == 1:
			hard1++
		default:
			hard2++
		}
	}
	total := float64(len(arr))
	if f := float64(soft) / total; math.Abs(f-0.6) > 0.05 {
		t.Errorf("soft fraction = %.3f, want about 0.6", f)
	}
	hardTotal := float64(hard1 + hard2)
	if f := float64(hard2) / hardTotal; math.Abs(f-0.5) > 0.08 {
		t.Errorf("multi-bit fraction of hard = %.3f, want about 0.5", f)
	}
}

func TestArrivalsZeroRate(t *testing.T) {
	m := RateModel{ErrorsPerMonth: 0, SoftFraction: 1, LessTestedMultiplier: 1}
	rng := rand.New(rand.NewSource(3))
	arr, err := m.Arrivals(rng, Month)
	if err != nil {
		t.Fatal(err)
	}
	if len(arr) != 0 {
		t.Errorf("zero rate produced %d arrivals", len(arr))
	}
}

func TestArrivalsErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	if _, err := DefaultRates().Arrivals(rng, 0); err == nil {
		t.Error("zero horizon accepted")
	}
	bad := RateModel{ErrorsPerMonth: -1, LessTestedMultiplier: 1}
	if _, err := bad.Arrivals(rng, Month); err == nil {
		t.Error("invalid model accepted")
	}
}

func TestExpectedCount(t *testing.T) {
	m := DefaultRates()
	if got := m.ExpectedCount(Month); got != 2000 {
		t.Errorf("ExpectedCount(month) = %g, want 2000", got)
	}
	if got := m.ExpectedCount(Month / 2); got != 1000 {
		t.Errorf("ExpectedCount(half month) = %g, want 1000", got)
	}
}

func TestArrivalsDeterministic(t *testing.T) {
	m := DefaultRates()
	a1, err := m.Arrivals(rand.New(rand.NewSource(7)), 24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := m.Arrivals(rand.New(rand.NewSource(7)), 24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if len(a1) != len(a2) {
		t.Fatalf("lengths differ: %d vs %d", len(a1), len(a2))
	}
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatalf("arrival %d differs", i)
		}
	}
}
