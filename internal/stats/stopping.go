// Sequential stopping on binomial confidence-interval width: the
// statistical core of the adaptive trial planner. A characterization
// campaign estimates a crash probability with a Wilson interval; once
// the interval's half-width reaches the requested target there is no
// statistical reason to keep burning trials on that cell. The rule here
// answers two questions deterministically — "is the estimate tight
// enough to stop?" and "when should it next be evaluated?" — so the
// campaign engine can consult it at reproducible batch boundaries and
// stay bit-identical across parallelism, interruption, and resume.

package stats

import (
	"fmt"
	"math"
)

// WilsonHalfWidth returns the half-width of the Wilson score interval
// for the given observation, before clamping to [0,1] — the symmetric
// uncertainty the sequential stopping rule compares against its target.
// (WilsonInterval's Lo/Hi are clamped, so their spread can understate
// the width near the extremes.)
func WilsonHalfWidth(successes, trials int, level float64) (float64, error) {
	if trials <= 0 {
		return 0, fmt.Errorf("stats: trials must be positive, got %d", trials)
	}
	if successes < 0 || successes > trials {
		return 0, fmt.Errorf("stats: successes %d out of range [0,%d]", successes, trials)
	}
	z := zForLevel(level)
	n := float64(trials)
	p := float64(successes) / n
	denom := 1 + z*z/n
	return z / denom * math.Sqrt(p*(1-p)/n+z*z/(4*n*n)), nil
}

// Boundary-schedule constants: evaluation boundaries grow geometrically
// (~25% per step) with a minimum stride, so the schedule is coarse
// enough to amortize evaluation yet never overshoots a reachable stop
// point by more than a quarter of the trials already run.
const (
	boundaryMinStep   = 8
	boundaryGrowthDiv = 4
)

// SequentialStopping is the adaptive campaign stopping rule: run trials
// in deterministic batches, and stop as soon as the Wilson interval
// half-width of the observed proportion is at most TargetHalfWidth —
// never before MinTrials, never beyond MaxTrials. The boundary schedule
// (FirstBoundary / NextBoundary) is a pure function of the rule, so
// every consumer that replays the same trial results reaches the same
// stop decision regardless of parallelism or arrival order.
type SequentialStopping struct {
	// TargetHalfWidth is the requested CI half-width (e.g. 0.02 for a
	// ±2-point interval on a probability).
	TargetHalfWidth float64
	// Level is the confidence level of the interval (the paper uses
	// 0.90).
	Level float64
	// MinTrials is the first evaluation boundary: the rule never stops
	// before this many trials have resolved, however tight the interval.
	MinTrials int
	// MaxTrials is the hard budget: the rule stops there whether or not
	// the target was reached (the Exhausted verdict).
	MaxTrials int
}

// Validate checks the rule's parameters.
func (r SequentialStopping) Validate() error {
	if !(r.TargetHalfWidth > 0 && r.TargetHalfWidth < 1) {
		return fmt.Errorf("stats: target CI half-width must be in (0,1), got %g", r.TargetHalfWidth)
	}
	if !(r.Level > 0 && r.Level < 1) {
		return fmt.Errorf("stats: confidence level must be in (0,1), got %g", r.Level)
	}
	if r.MinTrials <= 0 {
		return fmt.Errorf("stats: min trials must be positive, got %d", r.MinTrials)
	}
	if r.MaxTrials < r.MinTrials {
		return fmt.Errorf("stats: max trials %d below min trials %d", r.MaxTrials, r.MinTrials)
	}
	return nil
}

// FirstBoundary returns the first evaluation boundary.
func (r SequentialStopping) FirstBoundary() int {
	if r.MinTrials > r.MaxTrials {
		return r.MaxTrials
	}
	return r.MinTrials
}

// NextBoundary returns the evaluation boundary after k: k grown by ~25%
// with a minimum stride of 8, capped at MaxTrials.
func (r SequentialStopping) NextBoundary(k int) int {
	step := k / boundaryGrowthDiv
	if step < boundaryMinStep {
		step = boundaryMinStep
	}
	next := k + step
	if next > r.MaxTrials {
		next = r.MaxTrials
	}
	return next
}

// ShouldStop evaluates the rule over completed trials (of which
// successes had the outcome of interest) and returns the verdict and
// the interval half-width it was based on. With zero completed trials
// the half-width is 1 (total uncertainty) and the verdict is to
// continue. The MinTrials/MaxTrials guard rails are the boundary
// schedule's job, not ShouldStop's: callers evaluate only at boundaries
// returned by FirstBoundary/NextBoundary.
func (r SequentialStopping) ShouldStop(successes, completed int) (stop bool, halfWidth float64, err error) {
	if completed == 0 {
		return false, 1, nil
	}
	half, err := WilsonHalfWidth(successes, completed, r.Level)
	if err != nil {
		return false, 0, err
	}
	return half <= r.TargetHalfWidth, half, nil
}
