// Snapshot/restore: capture an address space's pristine state once and
// roll trials back to it, instead of rebuilding the application per
// trial. The campaign engine (internal/core) snapshots each worker's
// instance after build (and warmup) and restores before every injection;
// because a trial dirties only a handful of pages, Restore touches only
// the dirty set and is orders of magnitude cheaper than a rebuild.
//
// Correctness contract: a restored address space must be
// indistinguishable — bit for bit, on every subsequent Load/Store/inject
// path — from one freshly built into the captured state. That covers
// page data and check storage, stuck-at masks, per-frame corrected /
// replaced counters and taint bitmaps (taint selects between the fast
// and slow access paths, which are bit-identical, but the bitmap still
// rolls back so per-word state never drifts from the data under it), backing
// stores, allocator high-water marks, the cache model (residency changes
// error visibility, so lines are restored verbatim, never flushed), the
// virtual clock, the aggregate counters, and the observer registration
// lists.

package simmem

import (
	"fmt"
	"time"
)

// TrialResetter is implemented by observers and MC handlers that carry
// host-side per-trial state (recovery counters, seen-word sets,
// checkpoint timestamps). Snapshot.Restore invokes it on every retained
// access observer, ECC observer, and region MC handler so software
// responses start each trial as fresh as the memory under them.
type TrialResetter interface {
	// ResetTrial discards state accumulated since the snapshot was
	// taken.
	ResetTrial()
}

// pageState is the captured per-frame state beyond the data/check bytes.
type pageState struct {
	stuckSet  []byte // copy; nil when the frame had no stuck-at faults
	stuckClr  []byte
	corrected uint64
	replaced  int
	taint     []uint64 // copy; nil when no granule was tainted at capture
	anyTaint  bool
}

// regionState is one region's captured state.
type regionState struct {
	used    int
	data    []byte // page data, flattened in page order
	check   []byte // check storage, flattened (nil when unprotected)
	backing []byte // backing-store copy (nil when not backed)
	pages   []pageState
}

// Snapshot is a captured address-space state. Taking a snapshot arms
// dirty-page tracking on every mutation path; Restore rolls only the
// dirtied pages back. One snapshot is active per address space at a
// time — taking a new one supersedes the old, whose Restore then fails.
type Snapshot struct {
	as       *AddressSpace
	clock    time.Duration
	counters Counters
	nAccess  int // observer-list lengths at capture; Restore truncates
	nECC     int
	cache    *cache // deep copy (nil when the cache model is off)
	regions  []regionState
}

// Snapshot captures the address space's complete state and arms
// dirty-page tracking for a later Restore.
func (as *AddressSpace) Snapshot() *Snapshot {
	s := &Snapshot{
		as:       as,
		clock:    as.clock.now,
		counters: as.counters,
		nAccess:  len(as.accessObs),
		nECC:     len(as.eccObs),
		regions:  make([]regionState, len(as.regions)),
	}
	if as.cache != nil {
		cp := *as.cache
		cp.lines = make([]cacheLine, len(as.cache.lines))
		copy(cp.lines, as.cache.lines)
		s.cache = &cp
	}
	ps := as.pageSize
	for ri, r := range as.regions {
		rs := &s.regions[ri]
		rs.used = r.used
		rs.data = make([]byte, r.size)
		rs.pages = make([]pageState, len(r.pages))
		checkPerPage := r.checkPerPage()
		if checkPerPage > 0 {
			rs.check = make([]byte, len(r.pages)*checkPerPage)
		}
		for pi, p := range r.pages {
			copy(rs.data[pi*ps:], p.data)
			if checkPerPage > 0 {
				copy(rs.check[pi*checkPerPage:], p.check)
			}
			st := &rs.pages[pi]
			st.corrected = p.corrected
			st.replaced = p.replaced
			st.stuckSet = cloneBytes(p.stuckSet)
			st.stuckClr = cloneBytes(p.stuckClr)
			st.anyTaint = p.anyTaint
			// An all-clear bitmap captures as nil: restore only needs
			// the set bits (anyTaint false forces a clear either way).
			st.taint = nil
			if p.anyTaint {
				st.taint = append([]uint64(nil), p.taint...)
			}
		}
		rs.backing = cloneBytes(r.backing)
		// (Re)arm dirty tracking from a clean slate.
		r.dirty = make([]bool, len(r.pages))
		r.dirtyList = r.dirtyList[:0]
	}
	as.snap = s
	return s
}

// Restore rolls the address space back to the captured state, touching
// only pages dirtied since the capture (or the previous Restore). It
// returns the number of pages restored. Restoring a superseded snapshot,
// or one whose address space has since mapped new regions, is an error.
func (s *Snapshot) Restore() (int, error) {
	as := s.as
	if as.snap != s {
		return 0, fmt.Errorf("simmem: snapshot superseded by a newer capture of this address space")
	}
	if len(as.regions) != len(s.regions) {
		return 0, fmt.Errorf("simmem: %d regions mapped, snapshot captured %d", len(as.regions), len(s.regions))
	}
	ps := as.pageSize
	restored := 0
	for ri, r := range as.regions {
		rs := &s.regions[ri]
		checkPerPage := r.checkPerPage()
		for _, pi := range r.dirtyList {
			p := r.pages[pi]
			copy(p.data, rs.data[pi*ps:(pi+1)*ps])
			if checkPerPage > 0 {
				copy(p.check, rs.check[pi*checkPerPage:(pi+1)*checkPerPage])
			}
			st := &rs.pages[pi]
			p.corrected = st.corrected
			p.replaced = st.replaced
			p.stuckSet = cloneBytes(st.stuckSet)
			p.stuckClr = cloneBytes(st.stuckClr)
			// Taint transitions always dirty the page, so restoring the
			// dirty set restores the taint state exactly. The live
			// bitmap is reused in place (cleared or overwritten) so the
			// per-trial restore loop stays allocation-free once a page
			// has ever been tainted.
			p.anyTaint = st.anyTaint
			if st.taint == nil {
				if p.taint != nil {
					clear(p.taint)
				}
			} else {
				if p.taint == nil {
					p.taint = make([]uint64, len(st.taint))
				}
				copy(p.taint, st.taint)
			}
			if r.backing != nil {
				copy(r.backing[pi*ps:(pi+1)*ps], rs.backing[pi*ps:(pi+1)*ps])
			}
			r.dirty[pi] = false
			restored++
		}
		r.dirtyList = r.dirtyList[:0]
		r.used = rs.used
	}
	as.clock.now = s.clock
	as.counters = s.counters
	// Observers registered after the capture (per-trial trackers and
	// trace adapters) are dropped; retained ones get a trial reset.
	as.accessObs = as.accessObs[:s.nAccess]
	as.eccObs = as.eccObs[:s.nECC]
	if s.cache != nil && as.cache != nil {
		copy(as.cache.lines, s.cache.lines)
		as.cache.hits = s.cache.hits
		as.cache.misses = s.cache.misses
		as.cache.writeBacks = s.cache.writeBacks
	}
	for _, o := range as.accessObs {
		if tr, ok := o.(TrialResetter); ok {
			tr.ResetTrial()
		}
	}
	for _, o := range as.eccObs {
		if tr, ok := o.(TrialResetter); ok {
			tr.ResetTrial()
		}
	}
	for _, r := range as.regions {
		if tr, ok := r.mc.(TrialResetter); ok {
			tr.ResetTrial()
		}
	}
	return restored, nil
}

// DirtyPages returns the number of pages currently marked dirty (the
// work a Restore would do now).
func (s *Snapshot) DirtyPages() int {
	n := 0
	for _, r := range s.as.regions {
		n += len(r.dirtyList)
	}
	return n
}

// checkPerPage returns the region's per-page check storage size in
// bytes (zero when unprotected).
func (r *Region) checkPerPage() int {
	if r.codec == nil {
		return 0
	}
	return r.as.pageSize / r.codec.WordBytes() * r.codec.CheckBytes()
}

// markDirty records a mutation of page pi for the active snapshot. The
// nil check keeps the no-snapshot path free of tracking cost.
func (r *Region) markDirty(pi int) {
	if r.dirty == nil || r.dirty[pi] {
		return
	}
	r.dirty[pi] = true
	r.dirtyList = append(r.dirtyList, pi)
}

// cloneBytes copies a byte slice, preserving nil.
func cloneBytes(b []byte) []byte {
	if b == nil {
		return nil
	}
	return append([]byte(nil), b...)
}
