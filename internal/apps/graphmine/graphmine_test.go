package graphmine

import (
	"testing"

	"hrmsim/internal/apps"
	"hrmsim/internal/ecc"
	"hrmsim/internal/simmem"
)

func smallConfig(seed int64) Config {
	cfg := DefaultConfig(seed)
	cfg.Nodes = 512
	cfg.AvgDeg = 6
	cfg.Iterations = 3
	cfg.ChunkNodes = 128
	cfg.TopK = 20
	return cfg
}

func build(t *testing.T, cfg Config) *App {
	t.Helper()
	b, err := NewBuilder(cfg)
	if err != nil {
		t.Fatal(err)
	}
	app, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return app.(*App)
}

func golden(t *testing.T, app apps.App) []uint64 {
	t.Helper()
	out := make([]uint64, app.NumRequests())
	for i := range out {
		resp, err := app.Serve(i)
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		out[i] = resp.Digest
	}
	return out
}

func TestGoldenDeterministic(t *testing.T) {
	cfg := smallConfig(1)
	g1 := golden(t, build(t, cfg))
	g2 := golden(t, build(t, cfg))
	for i := range g1 {
		if g1[i] != g2[i] {
			t.Fatalf("request %d differs", i)
		}
	}
	// Only the final request carries output.
	final := g1[len(g1)-1]
	if final == 0 {
		t.Error("final digest is zero")
	}
	for i := 0; i < len(g1)-1; i++ {
		if g1[i] != 0 {
			t.Errorf("intermediate request %d has nonzero digest", i)
		}
	}
}

func TestNumRequests(t *testing.T) {
	cfg := smallConfig(2)
	app := build(t, cfg)
	chunks := (cfg.Nodes + cfg.ChunkNodes - 1) / cfg.ChunkNodes
	want := cfg.Iterations*chunks + 1
	if app.NumRequests() != want {
		t.Errorf("NumRequests = %d, want %d", app.NumRequests(), want)
	}
}

func TestInfluenceScoresAreSane(t *testing.T) {
	cfg := smallConfig(3)
	app := build(t, cfg)
	golden(t, app)
	// After the run, read final scores directly: all finite, positive
	// where a node has followers.
	srcOff := app.scoreAOff
	if cfg.Iterations%2 == 1 {
		srcOff = app.scoreBOff
	}
	as := app.Space()
	positives := 0
	for u := 0; u < cfg.Nodes; u++ {
		s, err := as.LoadF64(app.heap.Base() + simmem.Addr(srcOff+u*8))
		if err != nil {
			t.Fatal(err)
		}
		if s != s { // NaN
			t.Fatalf("node %d score is NaN", u)
		}
		if s < 0 {
			t.Fatalf("node %d score negative: %g", u, s)
		}
		if s > 0 {
			positives++
		}
	}
	if positives < cfg.Nodes/4 {
		t.Errorf("only %d nodes have positive influence", positives)
	}
}

func TestCorruptedOffsetsCauseCrash(t *testing.T) {
	cfg := smallConfig(4)
	app := build(t, cfg)
	as := app.Space()
	// High-order bit flips in the CSR offsets: rows walk far outside
	// the followers array.
	for u := 0; u < cfg.Nodes; u += 2 {
		if err := as.FlipBit(app.heap.Base()+simmem.Addr(app.offsetsOff+u*4+3), 7); err != nil {
			t.Fatal(err)
		}
	}
	crashed := false
	for i := 0; i < app.NumRequests(); i++ {
		if _, err := app.Serve(i); err != nil {
			if !apps.IsCrash(err) {
				t.Fatalf("non-crash error: %v", err)
			}
			crashed = true
			break
		}
	}
	if !crashed {
		t.Error("corrupted CSR offsets never crashed")
	}
}

func TestCorruptedScoreGivesIncorrectFinalOutput(t *testing.T) {
	cfg := smallConfig(5)
	ref := golden(t, build(t, cfg))

	app := build(t, cfg)
	as := app.Space()
	// Flip a high exponent bit of one node's initial score. The wrong
	// influence propagates through iterations and changes the ranking.
	if err := as.FlipBit(app.heap.Base()+simmem.Addr(app.scoreAOff+7*8+7), 5); err != nil {
		t.Fatal(err)
	}
	var last uint64
	for i := 0; i < app.NumRequests(); i++ {
		resp, err := app.Serve(i)
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		last = resp.Digest
	}
	if last == ref[len(ref)-1] {
		t.Error("exponent-bit score corruption did not change the top-K output")
	}
}

func TestScoreCorruptionAfterLastReadIsMasked(t *testing.T) {
	cfg := smallConfig(6)
	ref := golden(t, build(t, cfg))

	app := build(t, cfg)
	// Run everything but the final ranking, then corrupt the *stale*
	// score buffer (the one the final request does not read): masked.
	for i := 0; i < app.NumRequests()-1; i++ {
		if _, err := app.Serve(i); err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	staleOff := app.scoreBOff
	if cfg.Iterations%2 == 1 {
		staleOff = app.scoreAOff
	}
	as := app.Space()
	for u := 0; u < cfg.Nodes; u++ {
		if err := as.FlipBit(app.heap.Base()+simmem.Addr(staleOff+u*8+6), 6); err != nil {
			t.Fatal(err)
		}
	}
	resp, err := app.Serve(app.NumRequests() - 1)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Digest != ref[len(ref)-1] {
		t.Error("corruption of the unread buffer changed the output")
	}
}

func TestProtectedHeapMasksFlips(t *testing.T) {
	cfg := smallConfig(7)
	ref := golden(t, build(t, cfg))

	cfg.HeapCodec = ecc.NewDECTED()
	app := build(t, cfg)
	as := app.Space()
	heap := as.RegionByKind(simmem.RegionHeap)
	for off := 0; off < heap.Used(); off += 256 {
		if err := as.FlipBit(heap.Base()+simmem.Addr(off), 2); err != nil {
			t.Fatal(err)
		}
	}
	var last uint64
	for i := 0; i < app.NumRequests(); i++ {
		resp, err := app.Serve(i)
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		last = resp.Digest
	}
	if last != ref[len(ref)-1] {
		t.Error("output wrong despite DEC-TED protection")
	}
}

func TestBuilderValidation(t *testing.T) {
	bad := []Config{
		{Nodes: 1, AvgDeg: 4, Iterations: 1, ChunkNodes: 1, TopK: 1},
		{Nodes: 10, AvgDeg: 0, Iterations: 1, ChunkNodes: 1, TopK: 1},
		{Nodes: 10, AvgDeg: 2, Iterations: 0, ChunkNodes: 1, TopK: 1},
		{Nodes: 10, AvgDeg: 2, Iterations: 1, ChunkNodes: 0, TopK: 1},
		{Nodes: 10, AvgDeg: 2, Iterations: 1, ChunkNodes: 1, TopK: 11},
	}
	for i, cfg := range bad {
		if _, err := NewBuilder(cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestMetadataAndBounds(t *testing.T) {
	cfg := smallConfig(8)
	b, err := NewBuilder(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if b.AppName() != "graphmine" || b.Config().Nodes != cfg.Nodes {
		t.Error("builder metadata wrong")
	}
	app, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if app.Name() != "graphmine" || app.Space() == nil {
		t.Error("app metadata wrong")
	}
	if _, err := app.Serve(-1); err == nil {
		t.Error("negative request accepted")
	}
	if _, err := app.Serve(app.NumRequests()); err == nil {
		t.Error("out-of-range request accepted")
	}
}

func TestPageRankMatchesHostReference(t *testing.T) {
	cfg := smallConfig(50)
	cfg.Algorithm = PageRank
	cfg.Damping = 0.85
	b, err := NewBuilder(cfg)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	app := inst.(*App)
	golden(t, app)

	n := cfg.Nodes
	cur := make([]float64, n)
	next := make([]float64, n)
	for i := range cur {
		cur[i] = 1 / float64(n)
	}
	for it := 0; it < cfg.Iterations; it++ {
		for u := 0; u < n; u++ {
			var acc float64
			for _, v := range b.followers[u] {
				deg := float64(b.outdeg[v])
				if deg != 0 {
					acc += cur[v] / deg
				}
			}
			next[u] = (1-cfg.Damping)/float64(n) + cfg.Damping*acc
		}
		cur, next = next, cur
	}

	srcOff := app.scoreAOff
	if cfg.Iterations%2 == 1 {
		srcOff = app.scoreBOff
	}
	as := app.Space()
	var sum float64
	for u := 0; u < n; u++ {
		got, err := as.LoadF64(app.heap.Base() + simmem.Addr(srcOff+u*8))
		if err != nil {
			t.Fatal(err)
		}
		if diff := got - cur[u]; diff > 1e-12 || diff < -1e-12 {
			t.Fatalf("node %d rank = %g, host reference %g", u, got, cur[u])
		}
		sum += got
	}
	// PageRank mass stays near 1 (dangling nodes leak a little).
	if sum <= 0.3 || sum > 1.0001 {
		t.Errorf("total rank mass = %g", sum)
	}
}

func TestAlgorithmsProduceDifferentRankings(t *testing.T) {
	tr := smallConfig(51)
	pr := smallConfig(51)
	pr.Algorithm = PageRank
	bt, err := NewBuilder(tr)
	if err != nil {
		t.Fatal(err)
	}
	bp, err := NewBuilder(pr)
	if err != nil {
		t.Fatal(err)
	}
	at, err := bt.Build()
	if err != nil {
		t.Fatal(err)
	}
	ap, err := bp.Build()
	if err != nil {
		t.Fatal(err)
	}
	var dt, dp uint64
	for i := 0; i < at.NumRequests(); i++ {
		r1, err := at.Serve(i)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := ap.Serve(i)
		if err != nil {
			t.Fatal(err)
		}
		dt, dp = r1.Digest, r2.Digest
	}
	if dt == dp {
		t.Error("TunkRank and PageRank produced identical outputs")
	}
	if TunkRank.String() != "tunkrank" || PageRank.String() != "pagerank" {
		t.Error("algorithm names wrong")
	}
}
