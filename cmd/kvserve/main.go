// Command kvserve runs the simulated in-memory key–value store behind a
// tiny memcached-like TCP text protocol, with memory errors arriving on a
// virtual clock — a live demonstration of what a given error rate does to
// an unprotected (or protected) cache node.
//
// Protocol (one command per line):
//
//	get <key>            -> VALUE <version> <hex bytes> | MISS | SERVER_ERROR ...
//	set <key> <version>  -> STORED | SERVER_ERROR ...
//	inject <soft|hard>   -> INJECTED <region> (one random error now)
//	stats                -> counters (ops, errors injected, faults)
//	quit                 -> closes the connection
//
// Flags select the protection technique, so the same session can be run
// with -ecc secded to watch the errors disappear.
//
// With -metrics-addr, an HTTP observability sidecar serves /metrics (the
// obsv snapshot, plain text or ?format=json — see OBSERVABILITY.md for
// every metric name), /healthz, and the standard net/http/pprof handlers
// under /debug/pprof/. The process shuts down gracefully on SIGINT or
// SIGTERM: the TCP listener closes, the active connection finishes, and
// the sidecar drains.
package main

import (
	"bufio"
	"context"
	"encoding/hex"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"hrmsim/internal/apps/kvstore"
	"hrmsim/internal/ecc"
	"hrmsim/internal/faults"
	"hrmsim/internal/inject"
	"hrmsim/internal/obsv"
	"hrmsim/internal/simmem"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:11222", "listen address")
	keys := flag.Int("keys", 1024, "pre-populated key count")
	eccName := flag.String("ecc", "none", "heap protection: none|parity|secded|chipkill")
	seed := flag.Int64("seed", 1, "random seed")
	once := flag.Bool("once", false, "serve a single connection then exit (for scripted demos)")
	metricsAddr := flag.String("metrics-addr", "",
		"serve /metrics, /healthz, and /debug/pprof on this HTTP address (empty = disabled)")
	flag.Parse()

	srv, err := newServer(*keys, *eccName, *seed)
	if err != nil {
		log.Fatalf("kvserve: %v", err)
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("kvserve: %v", err)
	}
	defer func() { _ = ln.Close() }()
	log.Printf("kvserve: listening on %s (heap protection: %s, %d keys)", ln.Addr(), *eccName, *keys)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var metrics *http.Server
	if *metricsAddr != "" {
		mln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			log.Fatalf("kvserve: metrics listener: %v", err)
		}
		// The sidecar is long-lived and unauthenticated, so a slow or
		// stalled client must not be able to pin a connection (and its
		// goroutine) forever. No WriteTimeout: pprof profile captures
		// legitimately stream for tens of seconds.
		metrics = &http.Server{
			Handler:           metricsMux(srv.metrics),
			ReadHeaderTimeout: 5 * time.Second,
			ReadTimeout:       10 * time.Second,
			IdleTimeout:       120 * time.Second,
		}
		go func() {
			if err := metrics.Serve(mln); err != nil && err != http.ErrServerClosed {
				log.Printf("kvserve: metrics: %v", err)
			}
		}()
		log.Printf("kvserve: metrics on http://%s/metrics", mln.Addr())
	}

	// On SIGINT/SIGTERM (or the -once exit path calling stop), close the
	// TCP listener so Accept returns; the in-flight connection finishes
	// its handle loop before main returns.
	go func() {
		<-ctx.Done()
		_ = ln.Close()
	}()

	for {
		conn, err := ln.Accept()
		if err != nil {
			if ctx.Err() != nil {
				log.Printf("kvserve: shutting down")
				break
			}
			log.Printf("kvserve: accept: %v", err)
			break
		}
		srv.handle(conn) // single-threaded: one simulated memory, one server loop
		if *once {
			break
		}
	}
	if metrics != nil {
		sctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
		defer cancel()
		_ = metrics.Shutdown(sctx)
	}
}

// metricsMux builds the observability sidecar: the obsv snapshot, a
// liveness probe, and the standard pprof profiling handlers.
func metricsMux(reg *obsv.Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", obsv.Handler(reg))
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// server wraps one kvstore instance. The protocol loop is single-threaded,
// but every metric is atomic, so the HTTP sidecar snapshots them safely
// while requests are in flight.
type server struct {
	app *kvstore.App
	rng *rand.Rand

	metrics *obsv.Registry
	// Pre-resolved handles (names per OBSERVABILITY.md).
	ops, gets, sets, hits, misses      *obsv.Counter
	injected, faultsC, clientErrs      *obsv.Counter
	opWallUs                           *obsv.Histogram
	correctedGauge, uncorrectableGauge *obsv.Gauge
}

func newServer(keys int, eccName string, seed int64) (*server, error) {
	var codec simmem.Codec
	switch eccName {
	case "none":
	case "parity":
		codec = ecc.NewParity()
	case "secded":
		codec = ecc.NewSECDED()
	case "chipkill":
		codec = ecc.NewChipkill()
	default:
		return nil, fmt.Errorf("unknown ecc %q", eccName)
	}
	cfg := kvstore.DefaultConfig(seed)
	cfg.Keys = keys
	cfg.Ops = 1 // the recorded workload is unused; the network drives requests
	cfg.HeapCodec = codec
	cfg.RequestCost = time.Millisecond
	b, err := kvstore.NewBuilder(cfg)
	if err != nil {
		return nil, err
	}
	app, err := b.Build()
	if err != nil {
		return nil, err
	}
	reg := obsv.NewRegistry()
	s := &server{
		app:                app.(*kvstore.App),
		rng:                rand.New(rand.NewSource(seed)),
		metrics:            reg,
		ops:                reg.Counter("kvserve_ops_total"),
		gets:               reg.Counter("kvserve_gets_total"),
		sets:               reg.Counter("kvserve_sets_total"),
		hits:               reg.Counter("kvserve_hits_total"),
		misses:             reg.Counter("kvserve_misses_total"),
		injected:           reg.Counter("kvserve_injections_total"),
		faultsC:            reg.Counter("kvserve_faults_total"),
		clientErrs:         reg.Counter("kvserve_client_errors_total"),
		opWallUs:           reg.Histogram("kvserve_op_wall_us", obsv.ExpBuckets(1, 4, 10)),
		correctedGauge:     reg.Gauge("kvserve_ecc_corrected"),
		uncorrectableGauge: reg.Gauge("kvserve_ecc_uncorrectable"),
	}
	return s, nil
}

// handle serves one connection.
func (s *server) handle(conn net.Conn) {
	defer func() { _ = conn.Close() }()
	sc := bufio.NewScanner(conn)
	w := bufio.NewWriter(conn)
	defer func() { _ = w.Flush() }()
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if line == "quit" {
			return
		}
		resp := s.dispatch(line)
		fmt.Fprintln(w, resp)
		if err := w.Flush(); err != nil {
			return
		}
	}
}

// dispatch executes one protocol command.
func (s *server) dispatch(line string) string {
	start := time.Now()
	resp := s.execute(line)
	s.opWallUs.Observe(float64(time.Since(start)) / float64(time.Microsecond))
	if strings.HasPrefix(resp, "CLIENT_ERROR") {
		s.clientErrs.Inc()
	}
	c := s.app.Space().Counters()
	s.correctedGauge.Set(float64(c.Corrected))
	s.uncorrectableGauge.Set(float64(c.Uncorrectable))
	return resp
}

func (s *server) execute(line string) string {
	parts := strings.Fields(line)
	s.app.Space().Clock().Advance(time.Millisecond)
	switch parts[0] {
	case "get":
		if len(parts) != 2 {
			return "CLIENT_ERROR usage: get <key>"
		}
		key, err := strconv.ParseUint(parts[1], 10, 64)
		if err != nil {
			return "CLIENT_ERROR bad key"
		}
		s.ops.Inc()
		s.gets.Inc()
		version, val, err := s.app.Get(key)
		if err != nil {
			if simmem.IsFault(err) {
				s.faultsC.Inc()
				return "SERVER_ERROR memory fault: " + err.Error()
			}
			s.misses.Inc()
			return "MISS"
		}
		s.hits.Inc()
		return fmt.Sprintf("VALUE %d %s", version, hex.EncodeToString(val))
	case "set":
		if len(parts) != 3 {
			return "CLIENT_ERROR usage: set <key> <version>"
		}
		key, err1 := strconv.ParseUint(parts[1], 10, 64)
		version, err2 := strconv.ParseUint(parts[2], 10, 32)
		if err1 != nil || err2 != nil {
			return "CLIENT_ERROR bad arguments"
		}
		s.ops.Inc()
		s.sets.Inc()
		if err := s.app.Set(key, uint32(version)); err != nil {
			if simmem.IsFault(err) {
				s.faultsC.Inc()
			}
			return "SERVER_ERROR " + err.Error()
		}
		return "STORED"
	case "inject":
		if len(parts) != 2 {
			return "CLIENT_ERROR usage: inject <soft|hard>"
		}
		spec := faults.SingleBitSoft
		if parts[1] == "hard" {
			spec = faults.SingleBitHard
		} else if parts[1] != "soft" {
			return "CLIENT_ERROR unknown error class"
		}
		inj, err := inject.Random(s.app.Space(), s.rng, spec, nil)
		if err != nil {
			return "SERVER_ERROR " + err.Error()
		}
		s.injected.Inc()
		return fmt.Sprintf("INJECTED %s @%#x bit %d",
			inj.Region.Name(), uint64(inj.Targets[0].Addr), inj.Targets[0].Bits[0])
	case "stats":
		c := s.app.Space().Counters()
		return fmt.Sprintf("STATS ops=%d injected=%d faults=%d corrected=%d uncorrectable=%d",
			s.ops.Value(), s.injected.Value(), s.faultsC.Value(), c.Corrected, c.Uncorrectable)
	default:
		return "CLIENT_ERROR unknown command"
	}
}
