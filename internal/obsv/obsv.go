// Package obsv is the observability layer: lock-cheap counters, gauges,
// and fixed-bucket histograms that simulation hot paths can update from
// many goroutines, plus a deterministic snapshot API and text/JSON
// encoders (see OBSERVABILITY.md for the full metrics contract).
//
// The package exists so that campaigns (internal/core) and the live demo
// server (cmd/kvserve) expose *the same* metric kinds through *the same*
// encoders: a campaign dumps its instrumentation into the `hrmsim -json`
// result envelope, while kvserve serves the identical snapshot over HTTP
// at /metrics. All metric mutation is a single atomic operation — no
// locks are taken on the hot path — so instrumented campaigns remain
// bit-identical and effectively free.
//
// Naming convention: metric names are lowercase snake_case with a
// subsystem prefix (`campaign_`, `kvserve_`) and a unit suffix where the
// value has one (`_ms`, `_us`, `_minutes`, `_total` for monotonic
// counts). Every name exported by this module is tabulated in
// OBSERVABILITY.md; adding a metric means adding a row there.
package obsv

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// LabeledName renders a metric name with one label pair appended in the
// text-exposition form used throughout this module:
// name{key="value"}. Labeled metrics are ordinary registry entries whose
// name carries the label — lookup cost is the registry mutex, so they
// belong on cold paths (abort reasons, per-shard supervision events),
// not per-access hot loops. The label value is %q-quoted, so arbitrary
// strings are safe.
func LabeledName(name, key, value string) string {
	return fmt.Sprintf("%s{%s=%q}", name, key, value)
}

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative for the value to stay monotonic).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomically settable float64 value (a level, not a count).
type Gauge struct {
	bits atomic.Uint64
}

// Set stores x.
func (g *Gauge) Set(x float64) { g.bits.Store(math.Float64bits(x)) }

// Value returns the last stored value (zero before any Set).
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket histogram safe for concurrent Observe.
// Bucket i counts samples x with x <= Bounds[i] (and greater than the
// previous bound); one extra implicit +Inf bucket catches the overflow.
// Sum and Count track the exact total, so the mean is always available
// even when samples overflow the last finite bound.
type Histogram struct {
	bounds  []float64 // sorted, finite upper bounds
	counts  []atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64
}

// newHistogram copies and sorts the bounds; an empty bound set yields a
// single +Inf bucket (count/sum only).
func newHistogram(bounds []float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	return &Histogram{bounds: bs, counts: make([]atomic.Int64, len(bs)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(x float64) {
	// First bound >= x identifies the "x <= bound" bucket; if no bound
	// qualifies the sample lands in the implicit +Inf bucket.
	i := sort.SearchFloat64s(h.bounds, x)
	h.counts[i].Add(1)
	h.count.Add(1)
	h.addSum(x)
}

// addSum atomically adds x to the running sample sum.
func (h *Histogram) addSum(x float64) {
	for {
		old := h.sumBits.Load()
		upd := math.Float64bits(math.Float64frombits(old) + x)
		if h.sumBits.CompareAndSwap(old, upd) {
			return
		}
	}
}

// Count returns the number of observed samples.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the exact sum of observed samples.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// LinearBuckets returns n upper bounds start, start+width, ...
func LinearBuckets(start, width float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = start + float64(i)*width
	}
	return out
}

// ExpBuckets returns n upper bounds start, start*factor, start*factor², ...
func ExpBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	x := start
	for i := range out {
		out[i] = x
		x *= factor
	}
	return out
}

// Registry is a named collection of metrics. Metric lookup/creation takes
// a mutex; the returned metric objects are updated lock-free, so hot
// loops should hold on to the pointer rather than re-looking it up.
type Registry struct {
	mu     sync.Mutex
	counts map[string]*Counter
	gauges map[string]*Gauge
	hists  map[string]*Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counts: make(map[string]*Counter),
		gauges: make(map[string]*Gauge),
		hists:  make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counts[name]
	if !ok {
		c = &Counter{}
		r.counts[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// finite upper bounds on first use. The first registration fixes the
// bucket layout; later calls return the existing histogram unchanged.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// HistogramSnapshot is the frozen state of one histogram. Counts has
// len(Bounds)+1 entries: one per finite bound plus the trailing +Inf
// bucket; entries are per-bucket (not cumulative).
type HistogramSnapshot struct {
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
}

// Mean returns Sum/Count, or 0 for an empty histogram.
func (h HistogramSnapshot) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / float64(h.Count)
}

// Snapshot is a point-in-time copy of a registry, with deterministic
// (sorted) encoding — two snapshots of identical metric states encode to
// identical bytes.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot freezes the registry's current state. Concurrent updates keep
// running; the snapshot is internally consistent per metric (each value
// is one atomic load) but not a global barrier across metrics.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{}
	if len(r.counts) > 0 {
		s.Counters = make(map[string]int64, len(r.counts))
		for name, c := range r.counts {
			s.Counters[name] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]float64, len(r.gauges))
		for name, g := range r.gauges {
			s.Gauges[name] = g.Value()
		}
	}
	if len(r.hists) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(r.hists))
		for name, h := range r.hists {
			hs := HistogramSnapshot{
				Bounds: append([]float64(nil), h.bounds...),
				Counts: make([]int64, len(h.counts)),
				Count:  h.Count(),
				Sum:    h.Sum(),
			}
			for i := range h.counts {
				hs.Counts[i] = h.counts[i].Load()
			}
			s.Histograms[name] = hs
		}
	}
	return s
}
