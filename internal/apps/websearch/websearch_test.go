package websearch

import (
	"testing"

	"hrmsim/internal/apps"
	"hrmsim/internal/ecc"
	"hrmsim/internal/simmem"
)

// smallConfig keeps tests fast.
func smallConfig(seed int64) Config {
	cfg := DefaultConfig(seed)
	cfg.Docs = 512
	cfg.Vocab = 256
	cfg.MinTerms = 4
	cfg.MaxTerms = 16
	cfg.Queries = 60
	cfg.CacheSlots = 64
	return cfg
}

func build(t *testing.T, cfg Config) apps.App {
	t.Helper()
	b, err := NewBuilder(cfg)
	if err != nil {
		t.Fatal(err)
	}
	app, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return app
}

// golden runs the full workload and returns the digests.
func golden(t *testing.T, app apps.App) []uint64 {
	t.Helper()
	out := make([]uint64, app.NumRequests())
	for i := range out {
		resp, err := app.Serve(i)
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		out[i] = resp.Digest
	}
	return out
}

func TestGoldenRunDeterministic(t *testing.T) {
	cfg := smallConfig(11)
	g1 := golden(t, build(t, cfg))
	g2 := golden(t, build(t, cfg))
	for i := range g1 {
		if g1[i] != g2[i] {
			t.Fatalf("request %d digests differ across identical builds", i)
		}
	}
	// A different seed must give different outputs somewhere.
	g3 := golden(t, build(t, smallConfig(12)))
	same := true
	for i := range g1 {
		if g1[i] != g3[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical workload outputs")
	}
}

func TestRegionShape(t *testing.T) {
	app := build(t, smallConfig(1))
	as := app.Space()
	priv := as.RegionByKind(simmem.RegionPrivate)
	heap := as.RegionByKind(simmem.RegionHeap)
	stack := as.RegionByKind(simmem.RegionStack)
	if priv == nil || heap == nil || stack == nil {
		t.Fatal("missing region")
	}
	if !priv.ReadOnly() || !priv.Backed() {
		t.Error("private region must be a read-only backed mapping")
	}
	if priv.Used() == 0 || heap.Used() == 0 {
		t.Error("used sizes not set")
	}
	// Table 3 shape: private dominates heap; stack is small.
	if priv.Used() <= heap.Used() {
		t.Errorf("private (%d) should exceed heap (%d)", priv.Used(), heap.Used())
	}
}

func TestStackUsedGrowsWithServing(t *testing.T) {
	app := build(t, smallConfig(2))
	if _, err := app.Serve(0); err != nil {
		t.Fatal(err)
	}
	stack := app.Space().RegionByKind(simmem.RegionStack)
	if stack.Used() == 0 {
		t.Error("stack used is zero after serving")
	}
}

func TestCacheHitPathExercised(t *testing.T) {
	// Zipf-skewed queries repeat; serving the full workload twice (the
	// second pass entirely from cache for repeated queries) must agree
	// with itself.
	app := build(t, smallConfig(3))
	first := make([]uint64, app.NumRequests())
	for i := range first {
		r, err := app.Serve(i)
		if err != nil {
			t.Fatalf("pass 1 request %d: %v", i, err)
		}
		first[i] = r.Digest
	}
	for i := range first {
		r, err := app.Serve(i)
		if err != nil {
			t.Fatalf("pass 2 request %d: %v", i, err)
		}
		if r.Digest != first[i] {
			t.Fatalf("request %d changed digest on cached pass", i)
		}
	}
}

func TestCorruptedTermEntryCausesCrashOrWrongOutput(t *testing.T) {
	cfg := smallConfig(4)
	ref := golden(t, build(t, cfg))

	app := build(t, cfg)
	as := app.Space()
	priv := as.RegionByKind(simmem.RegionPrivate)
	// Blast the posting-count field of many term entries with a
	// high-order bit flip: counts become enormous, so queries touching
	// those terms either fault walking off the region or trip the
	// budget.
	for term := 0; term < 256; term++ {
		if err := as.FlipBit(priv.Base()+simmem.Addr(term*8+7), 7); err != nil {
			t.Fatal(err)
		}
	}
	crashes, wrong := 0, 0
	for i := 0; i < app.NumRequests(); i++ {
		resp, err := app.Serve(i)
		if err != nil {
			if !apps.IsCrash(err) {
				t.Fatalf("request %d: non-crash error %v", i, err)
			}
			crashes++
			continue
		}
		if resp.Digest != ref[i] {
			wrong++
		}
	}
	if crashes == 0 {
		t.Error("massive term-table corruption caused no crashes")
	}
	_ = wrong
}

func TestCorruptedSnippetCausesIncorrectOnly(t *testing.T) {
	cfg := smallConfig(5)
	ref := golden(t, build(t, cfg))

	app := build(t, cfg)
	as := app.Space()
	heap := as.RegionByKind(simmem.RegionHeap)
	// Flip one bit in every snippet: pure payload corruption.
	for d := 0; d < cfg.Docs; d++ {
		if err := as.FlipBit(heap.Base()+simmem.Addr(d*cfg.SnippetLen+3), 2); err != nil {
			t.Fatal(err)
		}
	}
	wrong := 0
	for i := 0; i < app.NumRequests(); i++ {
		resp, err := app.Serve(i)
		if err != nil {
			t.Fatalf("request %d crashed on snippet corruption: %v", i, err)
		}
		if resp.Digest != ref[i] {
			wrong++
		}
	}
	if wrong == 0 {
		t.Error("snippet corruption never surfaced in responses")
	}
	if wrong != app.NumRequests() {
		t.Logf("%d/%d responses incorrect (rest masked by logic)", wrong, app.NumRequests())
	}
}

func TestPopularityCorruptionIsOftenMasked(t *testing.T) {
	// A low-order mantissa bit of one popularity score: most queries
	// never read that document, so outputs are mostly unchanged —
	// outcome (1)/(2.1) of the taxonomy.
	cfg := smallConfig(6)
	ref := golden(t, build(t, cfg))
	app := build(t, cfg)
	as := app.Space()
	priv := as.RegionByKind(simmem.RegionPrivate)
	b, err := NewBuilder(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wsApp := app.(*App)
	docAddr := priv.Base() + simmem.Addr(wsApp.docTableOff)
	if err := as.FlipBit(docAddr, 0); err != nil {
		t.Fatal(err)
	}
	_ = b
	matched := 0
	for i := 0; i < app.NumRequests(); i++ {
		resp, err := app.Serve(i)
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if resp.Digest == ref[i] {
			matched++
		}
	}
	if matched < app.NumRequests()/2 {
		t.Errorf("only %d/%d requests unaffected by a single mantissa bit", matched, app.NumRequests())
	}
}

func TestProtectedBuildMasksFlips(t *testing.T) {
	cfg := smallConfig(7)
	ref := golden(t, build(t, cfg))

	cfg.PrivateCodec = ecc.NewSECDED()
	app := build(t, cfg)
	as := app.Space()
	priv := as.RegionByKind(simmem.RegionPrivate)
	// Single-bit flips everywhere in the term table: SEC-DED corrects
	// them all transparently.
	for term := 0; term < 128; term++ {
		if err := as.FlipBit(priv.Base()+simmem.Addr(term*8), 1); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < app.NumRequests(); i++ {
		resp, err := app.Serve(i)
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if resp.Digest != ref[i] {
			t.Fatalf("request %d incorrect despite SEC-DED", i)
		}
	}
	if as.Counters().Corrected == 0 {
		t.Error("no corrections recorded")
	}
}

func TestBuilderValidation(t *testing.T) {
	if _, err := NewBuilder(Config{}); err == nil {
		t.Error("zero config accepted")
	}
	cfg := smallConfig(8)
	cfg.Queries = 0
	if _, err := NewBuilder(cfg); err == nil {
		t.Error("zero queries accepted")
	}
}

func TestServeOutOfRange(t *testing.T) {
	app := build(t, smallConfig(9))
	if _, err := app.Serve(-1); err == nil {
		t.Error("negative request accepted")
	}
	if _, err := app.Serve(app.NumRequests()); err == nil {
		t.Error("out-of-range request accepted")
	}
}

func TestAppMetadata(t *testing.T) {
	cfg := smallConfig(10)
	b, err := NewBuilder(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if b.AppName() != "websearch" {
		t.Error("wrong builder name")
	}
	if b.Config().Docs != cfg.Docs {
		t.Error("config not retained")
	}
	app, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if app.Name() != "websearch" {
		t.Error("wrong app name")
	}
	if app.NumRequests() != cfg.Queries {
		t.Errorf("NumRequests = %d, want %d", app.NumRequests(), cfg.Queries)
	}
	if app.Space() == nil {
		t.Error("nil address space")
	}
}
