package core

import (
	"reflect"
	"strings"
	"testing"

	"hrmsim/internal/apps"
	"hrmsim/internal/apps/graphmine"
	"hrmsim/internal/apps/websearch"
	"hrmsim/internal/faults"
	"hrmsim/internal/obsv"
)

func gmBuilder(t *testing.T, seed int64) apps.Builder {
	t.Helper()
	cfg := graphmine.DefaultConfig(seed)
	cfg.Nodes = 256
	cfg.AvgDeg = 4
	cfg.Iterations = 2
	cfg.ChunkNodes = 64
	cfg.TopK = 20
	b, err := graphmine.NewBuilder(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// runLifecycle runs one campaign with the given lifecycle and
// parallelism, sharing a pre-computed golden run.
func runLifecycle(t *testing.T, b apps.Builder, spec faults.Spec, golden []uint64,
	lc Lifecycle, par, warmup int) *CampaignResult {
	t.Helper()
	res, err := Run(CampaignConfig{
		Builder:     b,
		Lifecycle:   lc,
		Spec:        spec,
		Trials:      40,
		Seed:        29,
		Warmup:      warmup,
		Parallelism: par,
		Golden:      golden,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestSnapshotLifecycleMatchesFreshBuild pins the tentpole guarantee:
// for every application, error type, warmup setting, and parallelism
// level, a snapshot-lifecycle campaign produces trial results deeply
// identical to the literal build-per-trial Fig. 2 loop — every outcome,
// region, request count, digest-mismatch count, and virtual timestamp.
func TestSnapshotLifecycleMatchesFreshBuild(t *testing.T) {
	builders := map[string]func(*testing.T, int64) apps.Builder{
		"websearch": wsBuilder,
		"kvstore":   kvBuilder,
		"graphmine": gmBuilder,
	}
	specs := map[string]faults.Spec{
		"soft": faults.SingleBitSoft,
		"hard": faults.SingleBitHard,
	}
	for appName, mk := range builders {
		for specName, spec := range specs {
			t.Run(appName+"/"+specName, func(t *testing.T) {
				t.Parallel()
				b := mk(t, 5)
				golden, err := GoldenRun(b)
				if err != nil {
					t.Fatal(err)
				}
				warmup := len(golden) / 4
				fresh := runLifecycle(t, b, spec, golden, LifecycleFresh, 1, warmup)
				for _, par := range []int{1, 4} {
					snap := runLifecycle(t, b, spec, golden, LifecycleSnapshot, par, warmup)
					if !reflect.DeepEqual(fresh.Trials, snap.Trials) {
						for i := range fresh.Trials {
							if !reflect.DeepEqual(fresh.Trials[i], snap.Trials[i]) {
								t.Fatalf("parallelism %d: trial %d diverged:\nfresh:    %+v\nsnapshot: %+v",
									par, i, fresh.Trials[i], snap.Trials[i])
							}
						}
						t.Fatalf("parallelism %d: trials diverged", par)
					}
				}
			})
		}
	}
}

// TestSnapshotLifecycleMatchesFreshWithCPUCache exercises the cache
// model across restores: residency and stats must roll back with
// memory, or error visibility (and therefore outcomes) would drift
// between the two lifecycles.
func TestSnapshotLifecycleMatchesFreshWithCPUCache(t *testing.T) {
	cfg := websearch.DefaultConfig(9)
	cfg.Docs = 256
	cfg.Vocab = 128
	cfg.MinTerms = 4
	cfg.MaxTerms = 12
	cfg.Queries = 40
	cfg.CacheSlots = 32
	cfg.CacheLines = 64
	b, err := websearch.NewBuilder(cfg)
	if err != nil {
		t.Fatal(err)
	}
	golden, err := GoldenRun(b)
	if err != nil {
		t.Fatal(err)
	}
	fresh := runLifecycle(t, b, faults.SingleBitSoft, golden, LifecycleFresh, 1, 10)
	snap := runLifecycle(t, b, faults.SingleBitSoft, golden, LifecycleSnapshot, 3, 10)
	if !reflect.DeepEqual(fresh.Trials, snap.Trials) {
		t.Fatal("cached-app snapshot campaign diverged from fresh builds")
	}
}

// freshOnlyBuilder hides a builder's snapshot capability.
type freshOnlyBuilder struct{ b apps.Builder }

func (f freshOnlyBuilder) AppName() string          { return f.b.AppName() }
func (f freshOnlyBuilder) Build() (apps.App, error) { return f.b.Build() }

func TestLifecycleSnapshotRequiresSupport(t *testing.T) {
	b := freshOnlyBuilder{b: wsBuilder(t, 3)}
	_, err := Run(CampaignConfig{
		Builder:   b,
		Lifecycle: LifecycleSnapshot,
		Spec:      faults.SingleBitSoft,
		Trials:    2,
	})
	if err == nil || !strings.Contains(err.Error(), "SnapshotBuilder") {
		t.Fatalf("err = %v, want snapshot-support error", err)
	}
}

// TestLifecycleAutoFallsBackToFresh: a builder without snapshot support
// still runs (per-trial builds) under the default lifecycle, and matches
// the same campaign run on the snapshot-capable builder it wraps.
func TestLifecycleAutoFallsBackToFresh(t *testing.T) {
	inner := wsBuilder(t, 3)
	golden, err := GoldenRun(inner)
	if err != nil {
		t.Fatal(err)
	}
	plain := runLifecycle(t, freshOnlyBuilder{b: inner}, faults.SingleBitSoft, golden, LifecycleAuto, 2, 0)
	snap := runLifecycle(t, inner, faults.SingleBitSoft, golden, LifecycleAuto, 2, 0)
	if !reflect.DeepEqual(plain.Trials, snap.Trials) {
		t.Fatal("auto lifecycle results differ between fresh-only and snapshot builders")
	}
}

func TestLifecycleString(t *testing.T) {
	for lc, want := range map[Lifecycle]string{
		LifecycleAuto:     "auto",
		LifecycleFresh:    "fresh",
		LifecycleSnapshot: "snapshot",
		Lifecycle(9):      "lifecycle(9)",
	} {
		if got := lc.String(); got != want {
			t.Errorf("Lifecycle(%d).String() = %q, want %q", int(lc), got, want)
		}
	}
}

// TestSnapshotMetricsEmitted checks the restore counter and dirty-page
// histogram reach the registry only on the snapshot path.
func TestSnapshotMetricsEmitted(t *testing.T) {
	b := wsBuilder(t, 4)
	golden, err := GoldenRun(b)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		lc           Lifecycle
		wantRestores int64
	}{
		{LifecycleSnapshot, 10},
		{LifecycleFresh, 0},
	} {
		reg := obsv.NewRegistry()
		_, err := Run(CampaignConfig{
			Builder:     b,
			Lifecycle:   tc.lc,
			Spec:        faults.SingleBitSoft,
			Trials:      10,
			Seed:        6,
			Parallelism: 1,
			Golden:      golden,
			Metrics:     reg,
		})
		if err != nil {
			t.Fatal(err)
		}
		snap := reg.Snapshot()
		if got := snap.Counters["campaign_snapshot_restores_total"]; got != tc.wantRestores {
			t.Errorf("%v: restores = %d, want %d", tc.lc, got, tc.wantRestores)
		}
		if tc.lc == LifecycleSnapshot {
			if got := snap.Histograms["campaign_snapshot_dirty_pages"].Count; got != 10 {
				t.Errorf("dirty-page histogram count = %d, want 10", got)
			}
		}
	}
}
