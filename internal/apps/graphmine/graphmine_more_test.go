package graphmine

import (
	"math"
	"testing"

	"hrmsim/internal/apps"
	"hrmsim/internal/simmem"
)

func TestInfluenceMatchesHostReference(t *testing.T) {
	// Recompute TunkRank on the host from the same generated graph and
	// compare against the simulated-memory run.
	cfg := smallConfig(40)
	b, err := NewBuilder(cfg)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	app := inst.(*App)
	golden(t, app)

	// Host reference.
	n := cfg.Nodes
	cur := make([]float64, n)
	next := make([]float64, n)
	for i := range cur {
		cur[i] = 1
	}
	for it := 0; it < cfg.Iterations; it++ {
		for u := 0; u < n; u++ {
			var acc float64
			for _, v := range b.followers[u] {
				deg := float64(b.outdeg[v])
				if deg != 0 {
					acc += (1 + cfg.Damping*cur[v]) / deg
				}
			}
			next[u] = acc
		}
		cur, next = next, cur
	}

	srcOff := app.scoreAOff
	if cfg.Iterations%2 == 1 {
		srcOff = app.scoreBOff
	}
	as := app.Space()
	for u := 0; u < n; u++ {
		got, err := as.LoadF64(app.heap.Base() + simmem.Addr(srcOff+u*8))
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-cur[u]) > 1e-9 {
			t.Fatalf("node %d influence = %g, host reference %g", u, got, cur[u])
		}
	}
}

func TestCorruptedEdgeTargetWrongOrFault(t *testing.T) {
	cfg := smallConfig(41)
	ref := golden(t, build(t, cfg))
	app := build(t, cfg)
	as := app.Space()
	// Blast high bits of many follower IDs: indexes into the score
	// array go far out of range (fault) or to wrong nodes (incorrect).
	for off := app.followersOff; off < app.outdegOff; off += 64 {
		if err := as.FlipBit(app.heap.Base()+simmem.Addr(off+3), 7); err != nil {
			t.Fatal(err)
		}
	}
	crashed, wrong := false, false
	var last uint64
	for i := 0; i < app.NumRequests(); i++ {
		resp, err := app.Serve(i)
		if err != nil {
			if !apps.IsCrash(err) {
				t.Fatalf("unexpected error: %v", err)
			}
			crashed = true
			break
		}
		last = resp.Digest
	}
	if !crashed {
		wrong = last != ref[len(ref)-1]
	}
	if !crashed && !wrong {
		t.Error("massive edge corruption had no effect")
	}
}

func TestZeroOutdegreeGuard(t *testing.T) {
	// Force a follower's out-degree to zero in memory: the update must
	// skip the contribution (no Inf/NaN), mirroring a defensive
	// division guard.
	cfg := smallConfig(42)
	app := build(t, cfg)
	as := app.Space()
	for u := 0; u < cfg.Nodes; u++ {
		if err := as.StoreU32(app.heap.Base()+simmem.Addr(app.outdegOff+u*4), 0); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < app.NumRequests(); i++ {
		if _, err := app.Serve(i); err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	srcOff := app.scoreAOff
	if cfg.Iterations%2 == 1 {
		srcOff = app.scoreBOff
	}
	for u := 0; u < cfg.Nodes; u++ {
		s, err := as.LoadF64(app.heap.Base() + simmem.Addr(srcOff+u*8))
		if err != nil {
			t.Fatal(err)
		}
		if s != 0 {
			t.Fatalf("node %d score %g, want 0 with all degrees zeroed", u, s)
		}
	}
}
