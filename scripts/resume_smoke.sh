#!/bin/sh
# End-to-end smoke test of the campaign supervisor's interrupt/resume
# path, using real signals against the real binary (what the in-process
# tests cannot cover):
#
#   1. run an uninterrupted characterize campaign as the baseline,
#   2. start the same campaign with -journal, SIGINT it mid-flight,
#   3. resume from the journal with -resume -journal,
#   4. diff the -json outcome counts and aggregates against the baseline.
#
# The resumed run must be bit-identical to the uninterrupted one. If the
# interrupt misses the window (the campaign finished before the signal),
# the comparison still holds trivially and the script passes.
#
#   scripts/resume_smoke.sh            # default: websearch small, 1000 trials
#   TRIALS=4000 scripts/resume_smoke.sh
set -eu
cd "$(dirname "$0")/.."

TRIALS="${TRIALS:-1000}"
APP="${APP:-websearch}"
SEED="${SEED:-7}"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

BIN="$TMP/hrmsim"
go build -o "$BIN" ./cmd/hrmsim

run_characterize() {
    # $1: output file; remaining args are appended to the command line.
    out="$1"; shift
    "$BIN" characterize -app "$APP" -size small -trials "$TRIALS" \
        -seed "$SEED" -parallelism 2 -json "$@" >"$out"
}

echo "resume_smoke: baseline ($APP, $TRIALS trials)" >&2
run_characterize "$TMP/baseline.json"

echo "resume_smoke: interrupting a journaled run" >&2
# Background the binary itself (not a shell function wrapping it) so the
# SIGINT reaches the hrmsim process.
"$BIN" characterize -app "$APP" -size small -trials "$TRIALS" \
    -seed "$SEED" -parallelism 2 -json -journal "$TMP/trials.jsonl" \
    >"$TMP/interrupted.json" &
PID=$!
sleep 2
kill -INT "$PID" 2>/dev/null || true
wait "$PID" || true

if [ -s "$TMP/trials.jsonl" ]; then
    records=$(($(wc -l <"$TMP/trials.jsonl") - 1))
    echo "resume_smoke: journal holds $records trial records" >&2
else
    echo "resume_smoke: WARNING: no journal written (campaign too fast?)" >&2
fi

echo "resume_smoke: resuming from the journal" >&2
run_characterize "$TMP/resumed.json" -journal "$TMP/trials.jsonl" -resume "$TMP/trials.jsonl"

echo "resume_smoke: comparing resumed run to baseline" >&2
python3 - "$TMP/baseline.json" "$TMP/resumed.json" <<'PY'
import json, sys

with open(sys.argv[1]) as f:
    base = json.load(f)["result"]
with open(sys.argv[2]) as f:
    resumed = json.load(f)["result"]

# Everything except the resume bookkeeping must match bit-for-bit.
KEYS = [
    "app", "error", "region", "trials", "outcomes",
    "crash_probability", "crash_ci_low", "crash_ci_high",
    "tolerated_probability", "incorrect_per_billion",
    "max_incorrect_per_billion", "completed_trials",
    "crash_minutes", "incorrect_minutes", "all_incorrect_minutes",
]
bad = [k for k in KEYS if base.get(k) != resumed.get(k)]
if bad:
    for k in bad:
        print(f"resume_smoke: MISMATCH {k}:", file=sys.stderr)
        print(f"  baseline: {base.get(k)}", file=sys.stderr)
        print(f"  resumed:  {resumed.get(k)}", file=sys.stderr)
    sys.exit(1)
if resumed.get("interrupted"):
    print("resume_smoke: resumed run still reports interrupted", file=sys.stderr)
    sys.exit(1)
print("resume_smoke: PASS — resumed run bit-identical to baseline "
      f"({resumed.get('resumed_trials', 0)} trials replayed from the journal)")
PY
