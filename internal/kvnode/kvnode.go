// Package kvnode implements the live key–value server node that
// cmd/kvserve runs and the chaos harness (internal/chaos, `hrmsim chaos`)
// experiments on: the simulated in-memory store of internal/apps/kvstore
// behind a memcached-like TCP text protocol, serving many concurrent
// connections while memory errors land in its address space.
//
// Protocol (one command per line, responses one line each):
//
//	get <key>            -> VALUE <version> <hex bytes> | MISS | SERVER_ERROR ...
//	set <key> <version>  -> STORED | SERVER_ERROR ...
//	inject <soft|hard>   -> INJECTED <region> (one random error now)
//	stats                -> STATS k=v ... (ops, faults, recoveries, vnow_ms, conns)
//	quit                 -> closes the connection
//
// Malformed input is answered defensively: blank commands, unknown verbs,
// bad arguments, and over-long lines all get a CLIENT_ERROR (the line
// length bound protects the scanner from unbounded buffering).
//
// Concurrency model: every connection runs in its own goroutine, but the
// simulated address space is a strictly serial device — each protocol
// command (and each fault injection) executes under the space's exclusion
// gate (simmem.Acquire/Release), so operations interleave at command
// granularity and injections always land between operations, never
// mid-access. All metrics are obsv atomics and safe to snapshot from the
// HTTP sidecar while requests are in flight.
package kvnode

import (
	"bufio"
	"context"
	"encoding/hex"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"

	"hrmsim/internal/apps/kvstore"
	"hrmsim/internal/ecc"
	"hrmsim/internal/faults"
	"hrmsim/internal/inject"
	"hrmsim/internal/obsv"
	"hrmsim/internal/recovery"
	"hrmsim/internal/simmem"
)

// Config parameterizes a server node.
type Config struct {
	// Keys is the pre-populated key count.
	Keys int
	// ECC selects the heap protection: none|parity|secded|chipkill.
	ECC string
	// Seed drives store population and random injection targeting.
	Seed int64
	// Recover installs a software response on the heap:
	//
	//	""             uncorrectable errors crash the operation
	//	parr           Par+R word restore from the backing copy
	//	parr-page      Par+R whole-page restore (clears hard faults)
	//	parr-escalate  word restore, page retirement on repeat offenders
	//	retire         corrected-error-threshold page retirement
	//
	// Any non-empty value gives the heap a persistent backing copy
	// checkpointed at build time (kvstore.Config.HeapBacked).
	Recover string
	// RetireThreshold is the corrected-error count per page that
	// triggers retirement for Recover="retire" (default 2).
	RetireThreshold uint64
	// CheckpointEvery, when positive, installs a periodic checkpointer
	// that flushes the (backed) heap to persistent storage every
	// interval of virtual time — bounding Par+R staleness.
	CheckpointEvery time.Duration
	// MaxLine bounds accepted protocol line length in bytes (default
	// 4096); longer lines are answered with CLIENT_ERROR and the
	// connection is closed.
	MaxLine int
	// DrainTimeout bounds the graceful-shutdown wait for in-flight
	// connections before they are force-closed (default 5s).
	DrainTimeout time.Duration
	// Registry receives the kvserve_* metrics (created when nil).
	Registry *obsv.Registry
}

// DefaultMaxLine is the protocol line-length bound when Config.MaxLine is
// zero: generous for every legal command (the longest is `set` with two
// uint64s) while keeping a hostile client from growing the scanner buffer
// without bound.
const DefaultMaxLine = 4096

// Server is one live kv node.
type Server struct {
	cfg Config
	app *kvstore.App

	// rng backs protocol-driven `inject` commands; guarded by the gate.
	rng *rand.Rand

	// recov is the installed recovery handler, nil without one.
	recov recovery.Reporter

	metrics *obsv.Registry
	// Pre-resolved metric handles (names per OBSERVABILITY.md).
	ops, gets, sets, hits, misses      *obsv.Counter
	injected, faultsC, clientErrs      *obsv.Counter
	connsTotal                         *obsv.Counter
	opWallUs                           *obsv.Histogram
	correctedGauge, uncorrectableGauge *obsv.Gauge
	recoveredGauge, retiredGauge       *obsv.Gauge
	connsOpen                          *obsv.Gauge

	// Connection tracking for graceful drain.
	mu    sync.Mutex
	conns map[net.Conn]struct{}
	open  int
}

// New builds a server node: the pre-populated store plus protocol state.
func New(cfg Config) (*Server, error) {
	if cfg.Keys <= 0 {
		cfg.Keys = 1024
	}
	if cfg.MaxLine <= 0 {
		cfg.MaxLine = DefaultMaxLine
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = 5 * time.Second
	}
	if cfg.RetireThreshold == 0 {
		cfg.RetireThreshold = 2
	}
	var codec simmem.Codec
	switch cfg.ECC {
	case "", "none":
		cfg.ECC = "none"
	case "parity":
		codec = ecc.NewParity()
	case "secded":
		codec = ecc.NewSECDED()
	case "chipkill":
		codec = ecc.NewChipkill()
	default:
		return nil, fmt.Errorf("kvnode: unknown ecc %q", cfg.ECC)
	}

	kcfg := kvstore.DefaultConfig(cfg.Seed)
	kcfg.Keys = cfg.Keys
	kcfg.Ops = 1 // the recorded workload is unused; the network drives requests
	kcfg.HeapCodec = codec
	kcfg.RequestCost = time.Millisecond

	var mc simmem.MCHandler
	var reporter recovery.Reporter
	var retirer *recovery.Retirer
	switch cfg.Recover {
	case "":
	case "parr":
		h := &recovery.ParR{}
		mc, reporter = h, h
	case "parr-page":
		h := &recovery.ParR{WholePage: true}
		mc, reporter = h, h
	case "parr-escalate":
		h := recovery.NewParREscalating()
		mc, reporter = h, h
	case "retire":
		retirer = &recovery.Retirer{Threshold: cfg.RetireThreshold}
		reporter = retirer
	default:
		return nil, fmt.Errorf("kvnode: unknown recovery %q", cfg.Recover)
	}
	if cfg.Recover != "" {
		kcfg.HeapBacked = true
		kcfg.HeapMC = mc
	}

	b, err := kvstore.NewBuilder(kcfg)
	if err != nil {
		return nil, err
	}
	built, err := b.Build()
	if err != nil {
		return nil, err
	}
	app := built.(*kvstore.App)
	if retirer != nil {
		app.Space().AddECCObserver(retirer)
	}
	if cfg.CheckpointEvery > 0 {
		if cfg.Recover == "" {
			return nil, fmt.Errorf("kvnode: -checkpoint needs a recovery mode (the heap is only backed with one)")
		}
		cp, err := recovery.NewCheckpointer(app.Space().RegionByName("heap"), cfg.CheckpointEvery)
		if err != nil {
			return nil, err
		}
		app.Space().AddAccessObserver(cp)
	}

	reg := cfg.Registry
	if reg == nil {
		reg = obsv.NewRegistry()
	}
	s := &Server{
		cfg:                cfg,
		app:                app,
		rng:                rand.New(rand.NewSource(cfg.Seed)),
		recov:              reporter,
		metrics:            reg,
		ops:                reg.Counter("kvserve_ops_total"),
		gets:               reg.Counter("kvserve_gets_total"),
		sets:               reg.Counter("kvserve_sets_total"),
		hits:               reg.Counter("kvserve_hits_total"),
		misses:             reg.Counter("kvserve_misses_total"),
		injected:           reg.Counter("kvserve_injections_total"),
		faultsC:            reg.Counter("kvserve_faults_total"),
		clientErrs:         reg.Counter("kvserve_client_errors_total"),
		connsTotal:         reg.Counter("kvserve_connections_total"),
		opWallUs:           reg.Histogram("kvserve_op_wall_us", obsv.ExpBuckets(1, 4, 10)),
		correctedGauge:     reg.Gauge("kvserve_ecc_corrected"),
		uncorrectableGauge: reg.Gauge("kvserve_ecc_uncorrectable"),
		recoveredGauge:     reg.Gauge("kvserve_recoveries"),
		retiredGauge:       reg.Gauge("kvserve_pages_retired"),
		connsOpen:          reg.Gauge("kvserve_conns_open"),
		conns:              make(map[net.Conn]struct{}),
	}
	return s, nil
}

// App exposes the underlying store (chaos injectors resolve hot-key value
// addresses through it; hold the gate).
func (s *Server) App() *kvstore.App { return s.app }

// Space is the server's simulated memory. Any cross-goroutine access must
// hold its exclusion gate.
func (s *Server) Space() *simmem.AddressSpace { return s.app.Space() }

// Registry returns the server's metrics registry.
func (s *Server) Registry() *obsv.Registry { return s.metrics }

// Stats is a gate-consistent snapshot of the node's protection activity,
// for probes and the `stats` protocol command.
type Stats struct {
	Ops, Injected, Faults    int64
	Corrected, Uncorrectable uint64
	Recovered                uint64 // uncorrectable events repaired by the MC handler
	Retired                  int    // page frames retired
	VNow                     time.Duration
	Conns                    int
}

// Stats takes the gate and snapshots the node.
func (s *Server) Stats() Stats {
	s.app.Space().Acquire()
	defer s.app.Space().Release()
	return s.statsLocked()
}

// statsLocked assembles a Stats; the caller holds the gate.
func (s *Server) statsLocked() Stats {
	c := s.app.Space().Counters()
	st := Stats{
		Ops:           s.ops.Value(),
		Injected:      s.injected.Value(),
		Faults:        s.faultsC.Value(),
		Corrected:     c.Corrected,
		Uncorrectable: c.Uncorrectable,
		Recovered:     c.Recovered,
		VNow:          s.app.Space().Clock().Now(),
	}
	if s.recov != nil {
		st.Retired = s.recov.RecoveryStats().Retired
	}
	s.mu.Lock()
	st.Conns = s.open
	s.mu.Unlock()
	return st
}

// Serve accepts connections until ctx is cancelled (each served on its own
// goroutine), then drains: in-flight connections get DrainTimeout to
// finish before being force-closed. The listener is closed on return.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	defer func() { _ = ln.Close() }()
	go func() {
		<-ctx.Done()
		_ = ln.Close() // unblocks Accept
	}()
	var wg sync.WaitGroup
	for {
		conn, err := ln.Accept()
		if err != nil {
			if ctx.Err() != nil || errors.Is(err, net.ErrClosed) {
				break
			}
			wg.Wait()
			return err
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.Handle(conn)
		}()
	}
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(s.cfg.DrainTimeout):
		s.mu.Lock()
		for c := range s.conns {
			_ = c.Close() // unblocks the handler's Scan
		}
		s.mu.Unlock()
		<-done
	}
	return nil
}

// Handle serves one connection to completion (quit, EOF, write error, or
// oversized line).
func (s *Server) Handle(conn net.Conn) {
	s.mu.Lock()
	s.conns[conn] = struct{}{}
	s.open++
	s.connsOpen.Set(float64(s.open))
	s.mu.Unlock()
	s.connsTotal.Inc()
	defer func() {
		_ = conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.open--
		s.connsOpen.Set(float64(s.open))
		s.mu.Unlock()
	}()

	sc := bufio.NewScanner(conn)
	// The scanner's effective cap is max(cap(buf), limit), so the initial
	// buffer must not exceed MaxLine or the bound silently loosens.
	sc.Buffer(make([]byte, 0, min(512, s.cfg.MaxLine)), s.cfg.MaxLine)
	w := bufio.NewWriter(conn)
	defer func() { _ = w.Flush() }()
	for sc.Scan() {
		line := sc.Text()
		if strings.TrimSpace(line) == "quit" {
			return
		}
		fmt.Fprintln(w, s.Dispatch(line))
		if err := w.Flush(); err != nil {
			return
		}
	}
	if errors.Is(sc.Err(), bufio.ErrTooLong) {
		// Defensive bound: report the violation instead of silently
		// dropping the connection, then close (the stream position is
		// unrecoverable mid-line).
		s.clientErrs.Inc()
		fmt.Fprintf(w, "CLIENT_ERROR line exceeds %d bytes\n", s.cfg.MaxLine)
	}
}

// Dispatch executes one protocol command under the exclusion gate and
// returns the response line.
func (s *Server) Dispatch(line string) string {
	start := time.Now()
	s.app.Space().Acquire()
	resp := s.execute(line)
	s.app.Space().Release()
	s.opWallUs.Observe(float64(time.Since(start)) / float64(time.Microsecond))
	if strings.HasPrefix(resp, "CLIENT_ERROR") {
		s.clientErrs.Inc()
	}
	return resp
}

// execute runs one command; the caller holds the gate.
func (s *Server) execute(line string) string {
	parts := strings.Fields(line)
	if len(parts) == 0 {
		return "CLIENT_ERROR empty command"
	}
	switch parts[0] {
	case "get":
		if len(parts) != 2 {
			return "CLIENT_ERROR usage: get <key>"
		}
		key, err := strconv.ParseUint(parts[1], 10, 64)
		if err != nil {
			return "CLIENT_ERROR bad key"
		}
		s.advanceClock()
		s.ops.Inc()
		s.gets.Inc()
		version, val, err := s.app.Get(key)
		if err != nil {
			if simmem.IsFault(err) {
				s.faultsC.Inc()
				s.updateGauges()
				return "SERVER_ERROR memory fault: " + err.Error()
			}
			s.misses.Inc()
			s.updateGauges()
			return "MISS"
		}
		s.hits.Inc()
		s.updateGauges()
		return fmt.Sprintf("VALUE %d %s", version, hex.EncodeToString(val))
	case "set":
		if len(parts) != 3 {
			return "CLIENT_ERROR usage: set <key> <version>"
		}
		key, err1 := strconv.ParseUint(parts[1], 10, 64)
		version, err2 := strconv.ParseUint(parts[2], 10, 32)
		if err1 != nil || err2 != nil {
			return "CLIENT_ERROR bad arguments"
		}
		s.advanceClock()
		s.ops.Inc()
		s.sets.Inc()
		if err := s.app.Set(key, uint32(version)); err != nil {
			if simmem.IsFault(err) {
				s.faultsC.Inc()
			}
			s.updateGauges()
			return "SERVER_ERROR " + err.Error()
		}
		s.updateGauges()
		return "STORED"
	case "inject":
		if len(parts) != 2 {
			return "CLIENT_ERROR usage: inject <soft|hard>"
		}
		spec := faults.SingleBitSoft
		if parts[1] == "hard" {
			spec = faults.SingleBitHard
		} else if parts[1] != "soft" {
			return "CLIENT_ERROR unknown error class"
		}
		inj, err := inject.Random(s.app.Space(), s.rng, spec, nil)
		if err != nil {
			return "SERVER_ERROR " + err.Error()
		}
		s.injected.Inc()
		return fmt.Sprintf("INJECTED %s @%#x bit %d",
			inj.Region.Name(), uint64(inj.Targets[0].Addr), inj.Targets[0].Bits[0])
	case "stats":
		st := s.statsLocked()
		return fmt.Sprintf(
			"STATS ops=%d injected=%d faults=%d corrected=%d uncorrectable=%d recovered=%d retired=%d vnow_ms=%d conns=%d",
			st.Ops, st.Injected, st.Faults, st.Corrected, st.Uncorrectable,
			st.Recovered, st.Retired, st.VNow.Milliseconds(), st.Conns)
	default:
		return "CLIENT_ERROR unknown command"
	}
}

// advanceClock moves virtual time by the per-request cost (client-facing
// ops only — stats polling and injections are instantaneous on the
// simulated clock).
func (s *Server) advanceClock() {
	s.app.Space().Clock().Advance(time.Millisecond)
}

// updateGauges refreshes the protection-state gauges; the caller holds
// the gate.
func (s *Server) updateGauges() {
	c := s.app.Space().Counters()
	s.correctedGauge.Set(float64(c.Corrected))
	s.uncorrectableGauge.Set(float64(c.Uncorrectable))
	s.recoveredGauge.Set(float64(c.Recovered))
	if s.recov != nil {
		s.retiredGauge.Set(float64(s.recov.RecoveryStats().Retired))
	}
}
