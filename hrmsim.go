package hrmsim

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"time"

	"hrmsim/internal/apps"
	"hrmsim/internal/apps/graphmine"
	"hrmsim/internal/apps/kvstore"
	"hrmsim/internal/apps/websearch"
	"hrmsim/internal/core"
	"hrmsim/internal/evtrace"
	"hrmsim/internal/faults"
	"hrmsim/internal/monitor"
	"hrmsim/internal/obsv"
	"hrmsim/internal/simmem"
	"hrmsim/internal/stats"
)

// App names a case-study application.
type App string

// The three data-intensive applications of the paper's case study.
const (
	// AppWebSearch is the interactive web search index server
	// (read-only in-memory index cache, the paper's WebSearch).
	AppWebSearch App = "websearch"
	// AppKVStore is the in-memory key–value store (the paper's
	// Memcached workload).
	AppKVStore App = "kvstore"
	// AppGraphMine is the graph-mining framework running TunkRank (the
	// paper's GraphLab workload).
	AppGraphMine App = "graphmine"
)

// Apps lists the applications in paper order.
func Apps() []App { return []App{AppWebSearch, AppKVStore, AppGraphMine} }

// ErrorType names an injected memory error type.
type ErrorType string

// Error types studied by the paper (Fig. 6).
const (
	// SoftSingleBit is a transient single-bit flip, cleared by any
	// overwrite.
	SoftSingleBit ErrorType = "soft-1bit"
	// HardSingleBit is a recurring single-bit fault (stuck-at cell).
	HardSingleBit ErrorType = "hard-1bit"
	// HardDoubleBit is a recurring two-bit fault in one byte.
	HardDoubleBit ErrorType = "hard-2bit"
)

// ErrorTypes lists the error types in paper order.
func ErrorTypes() []ErrorType {
	return []ErrorType{SoftSingleBit, HardSingleBit, HardDoubleBit}
}

// Region names an application memory region, or AnyRegion for the whole
// address space.
type Region string

// Regions (Table 2).
const (
	AnyRegion     Region = ""
	RegionPrivate Region = "private"
	RegionHeap    Region = "heap"
	RegionStack   Region = "stack"
)

// WorkloadSize selects how large the synthetic application builds are.
type WorkloadSize int

// Workload sizes.
const (
	// SizeSmall builds tiny instances for fast iteration and tests.
	SizeSmall WorkloadSize = iota
	// SizeMedium matches the scale used by the paper-reproduction
	// experiments (the default).
	SizeMedium
	// SizeLarge builds bigger instances for longer campaigns.
	SizeLarge
)

// specFor converts the public error type.
func specFor(e ErrorType) (faults.Spec, error) {
	switch e {
	case SoftSingleBit:
		return faults.SingleBitSoft, nil
	case HardSingleBit:
		return faults.SingleBitHard, nil
	case HardDoubleBit:
		return faults.DoubleBitHard, nil
	default:
		return faults.Spec{}, fmt.Errorf("hrmsim: unknown error type %q", e)
	}
}

// kindFor converts the public region name.
func kindFor(r Region) (simmem.RegionKind, error) {
	switch r {
	case AnyRegion:
		return 0, nil
	case RegionPrivate:
		return simmem.RegionPrivate, nil
	case RegionHeap:
		return simmem.RegionHeap, nil
	case RegionStack:
		return simmem.RegionStack, nil
	default:
		return 0, fmt.Errorf("hrmsim: unknown region %q", r)
	}
}

// NewBuilder constructs an application builder at a given size and seed.
// The returned builder creates fresh, identical instances — one per
// injection trial.
func NewBuilder(app App, size WorkloadSize, seed int64) (apps.Builder, error) {
	switch app {
	case AppWebSearch:
		cfg := websearch.DefaultConfig(seed)
		cfg.RequestCost = 10 * time.Second
		switch size {
		case SizeSmall:
			cfg.Docs, cfg.Vocab, cfg.MinTerms, cfg.MaxTerms = 256, 128, 4, 12
			cfg.Queries, cfg.CacheSlots = 60, 32
		case SizeMedium:
			cfg.Docs, cfg.Vocab, cfg.MinTerms, cfg.MaxTerms = 1024, 512, 6, 24
			cfg.Queries, cfg.CacheSlots = 120, 256
		case SizeLarge:
			cfg.Docs, cfg.Vocab, cfg.MinTerms, cfg.MaxTerms = 4096, 2048, 8, 56
			cfg.Queries, cfg.CacheSlots = 400, 1024
		default:
			return nil, fmt.Errorf("hrmsim: unknown workload size %d", size)
		}
		return websearch.NewBuilder(cfg)
	case AppKVStore:
		cfg := kvstore.DefaultConfig(seed)
		cfg.RequestCost = 2 * time.Second
		switch size {
		case SizeSmall:
			cfg.Keys, cfg.Ops = 128, 200
		case SizeMedium:
			cfg.Keys, cfg.Ops = 512, 600
		case SizeLarge:
			cfg.Keys, cfg.Ops = 2048, 2000
		default:
			return nil, fmt.Errorf("hrmsim: unknown workload size %d", size)
		}
		return kvstore.NewBuilder(cfg)
	case AppGraphMine:
		cfg := graphmine.DefaultConfig(seed)
		cfg.RequestCost = 90 * time.Second
		switch size {
		case SizeSmall:
			cfg.Nodes, cfg.AvgDeg, cfg.Iterations, cfg.ChunkNodes, cfg.TopK = 256, 4, 2, 64, 20
		case SizeMedium:
			cfg.Nodes, cfg.AvgDeg, cfg.Iterations, cfg.ChunkNodes, cfg.TopK = 512, 6, 3, 128, 50
		case SizeLarge:
			cfg.Nodes, cfg.AvgDeg, cfg.Iterations, cfg.ChunkNodes, cfg.TopK = 2048, 8, 4, 512, 100
		default:
			return nil, fmt.Errorf("hrmsim: unknown workload size %d", size)
		}
		return graphmine.NewBuilder(cfg)
	default:
		return nil, fmt.Errorf("hrmsim: unknown application %q", app)
	}
}

// CharacterizeConfig configures an injection campaign.
type CharacterizeConfig struct {
	// App is the application to characterize.
	App App
	// Error is the error type to inject (default SoftSingleBit).
	Error ErrorType
	// Region restricts injection (default AnyRegion: whole address
	// space, weighted by region size).
	Region Region
	// Trials is the size of the campaign's trial index space (default
	// 200). With TargetCI unset every index runs exactly once (the
	// classic fixed-N campaign); with TargetCI set, Trials is the hard
	// budget the adaptive planner may stop short of.
	Trials int
	// TargetCI, if positive, switches the campaign from the fixed plan
	// to the adaptive planner: trials run in deterministic batches
	// until the 90% Wilson confidence interval on the crash probability
	// has half-width at most TargetCI (e.g. 0.02 for ±2 points), within
	// the MinTrials/MaxTrials guard rails. Results are bit-identical
	// across Parallelism and across interrupt/resume, exactly like
	// fixed campaigns. Incompatible with ShardCount (an adaptive plan
	// needs the whole trial index space — see SHARDING.md).
	TargetCI float64
	// MinTrials, with TargetCI, is the first CI evaluation boundary:
	// the campaign never stops earlier, however tight the interval
	// (default DefaultAdaptiveMinTrials, clamped to the budget).
	MinTrials int
	// MaxTrials, with TargetCI, caps the adaptive campaign's trial
	// budget (default Trials; must not exceed Trials).
	MaxTrials int
	// Seed makes the campaign deterministic (default 1).
	Seed int64
	// Size selects the workload scale (default SizeMedium).
	Size WorkloadSize
	// Parallelism bounds concurrent trials (default GOMAXPROCS).
	Parallelism int
	// Progress, if non-nil, is called after each completed trial with
	// the campaign's live progress, including the wall-clock trial rate
	// and the projected time remaining. Calls are serialized; the hook
	// must be cheap.
	Progress func(ProgressInfo)
	// Metrics, if non-nil, receives campaign instrumentation (trial,
	// request, and outcome counters; per-trial wall-clock and
	// virtual-time histograms) under the metric names documented in
	// OBSERVABILITY.md. Instrumentation never changes results. The type
	// lives in an internal package, so this field is settable only from
	// inside this module (the cmd/ binaries); external users get the
	// same data from `hrmsim <cmd> -json`.
	Metrics *obsv.Registry
	// Tracer, if non-nil, receives the per-trial event stream (see the
	// "Event tracing" section of OBSERVABILITY.md). Observational only,
	// like Metrics, and internal for the same reason: the CLI exposes it
	// via `hrmsim characterize -trace`. The caller closes the tracer
	// after Characterize returns.
	Tracer *evtrace.Tracer
	// Context, if non-nil, allows interrupting the campaign: on
	// cancellation the engine stops dispatching trials, drains the
	// in-flight ones, and Characterize returns the partial result with
	// Interrupted set (not an error).
	Context context.Context
	// TrialTimeout, if positive, aborts any trial exceeding this
	// wall-clock deadline (recorded as aborted, reason "deadline").
	TrialTimeout time.Duration
	// TrialOpBudget, if positive, aborts any trial exceeding this many
	// simulated memory operations after injection (reason "op_budget").
	TrialOpBudget int64
	// MaxRetries bounds retries of transient trial-infrastructure
	// failures (0 = default, negative = disabled).
	MaxRetries int
	// JournalPath, if non-empty, appends one flushed JSONL record per
	// finished trial to this file so an interrupted campaign can resume.
	// The file is created with a schema-versioned header identifying the
	// campaign; re-using a file from a different campaign is an error.
	JournalPath string
	// ResumePath, if non-empty, reads a journal written by a previous
	// interrupted run of this same campaign and skips the trial indices
	// it records — typically the same file as JournalPath. The merged
	// result is bit-identical to an uninterrupted run.
	ResumePath string
	// ShardIndex / ShardCount, when ShardCount > 0, restrict the run to
	// shard ShardIndex's contiguous slice of the campaign's trial
	// indices (the CLI's `-shard i/N`). The campaign identity — Trials,
	// Seed, the journal header — stays the whole campaign's, so N shard
	// journals merge (MergeShards) into a result bit-identical to an
	// unsharded run. The full shard/merge contract is documented in
	// SHARDING.md. ShardCount == 0 means unsharded.
	ShardIndex int
	ShardCount int
	// ManifestPath, if non-empty, writes the shard manifest — campaign
	// identity, config hash, shard coordinates, trial range, and the
	// Metrics snapshot — after the run, next to the journal. Requires
	// JournalPath (a manifest describes a journal). An unsharded run
	// writes a 0/1 manifest, making a single-process journal consumable
	// by MergeShards too.
	ManifestPath string
	// StatusPath, if non-empty, periodically writes a schema-versioned
	// shard heartbeat/status record to this file (atomic replace, see
	// core.WriteStatus): shard coordinates, trials done/total,
	// dispositions, rate and ETA, outcome counts so far, and the full
	// Metrics snapshot. The coordinator's live /statusz and `hrmsim
	// status` read these records; the final one (Running=false) makes a
	// finished campaign directory render identically to a live one. The
	// heartbeat/status contract is documented in OBSERVABILITY.md.
	StatusPath string
	// StatusInterval is the minimum spacing between status writes
	// (default core.DefaultStatusInterval, 1s).
	StatusInterval time.Duration
}

// ProgressInfo reports campaign progress to the Progress hook. Elapsed,
// TrialsPerSec, and ETA are host wall-clock derived;
// MeanTrialVirtualMinutes is the mean simulated span of finished trials
// (from TrialResult.EndedAt).
type ProgressInfo struct {
	Done, Total             int
	Elapsed                 time.Duration
	TrialsPerSec            float64
	ETA                     time.Duration
	MeanTrialVirtualMinutes float64
	// Adaptive marks an open-ended campaign (TargetCI set, stopping
	// rule not yet fired): Total is the adaptive planner's current
	// trial budget — the next CI evaluation boundary — not a fixed
	// size, and may grow between calls; the ETA extrapolates to that
	// moving budget.
	Adaptive bool
}

// coreProgress adapts a public Progress hook to the engine's.
func coreProgress(hook func(ProgressInfo)) func(core.ProgressInfo) {
	if hook == nil {
		return nil
	}
	return func(p core.ProgressInfo) { hook(ProgressInfo(p)) }
}

// Adaptive-campaign defaults (see CharacterizeConfig.TargetCI).
const (
	// DefaultAdaptiveMinTrials is the first CI evaluation boundary when
	// CharacterizeConfig.MinTrials is zero: enough observations that an
	// early all-quiet or all-crash prefix cannot stop a campaign on
	// noise alone.
	DefaultAdaptiveMinTrials = 30
	// adaptiveCILevel is the confidence level of the stopping rule's
	// Wilson interval — the paper's 90%, matching the reported
	// CrashCILow/CrashCIHigh bounds.
	adaptiveCILevel = 0.90
)

// Characterization is the result of one campaign: the application's
// measured tolerance to the injected error type.
type Characterization struct {
	App    App
	Error  ErrorType
	Region Region
	Trials int
	// Parallelism is the effective number of concurrent trial workers
	// the campaign ran with (the resolved value, never zero). It does
	// not affect results — campaigns are bit-identical at any
	// parallelism — only wall-clock cost.
	Parallelism int
	// CrashProbability is P(crash | one injected error), with a 90%
	// Wilson confidence interval.
	CrashProbability        float64
	CrashCILow, CrashCIHigh float64
	// ToleratedProbability is P(error masked with no external effect).
	ToleratedProbability float64
	// IncorrectPerBillion is the mean rate of incorrect responses per
	// billion queries; MaxIncorrectPerBillion is the worst single trial
	// (the paper's error bars).
	IncorrectPerBillion    float64
	MaxIncorrectPerBillion float64
	// Outcomes counts trials by taxonomy leaf (Fig. 1), keyed by
	// outcome name.
	Outcomes map[string]int
	// CrashMinutes and IncorrectMinutes are injection-to-first-effect
	// latencies in virtual minutes.
	CrashMinutes, IncorrectMinutes []float64
	// AllIncorrectMinutes holds the time of every recorded incorrect
	// response (not just the first per trial) — corrupted data keeps
	// producing wrong answers as it is re-consumed, the paper's
	// "periodically incorrect" behaviour (Fig. 5a).
	AllIncorrectMinutes []float64
	// Interrupted reports that the campaign's context was cancelled
	// (SIGINT) before every trial ran; the aggregates above cover the
	// trials that did run.
	Interrupted bool
	// Completed, Aborted, and Resumed break down the trials that have
	// results: ran to Fig. 1 classification, given up by the watchdog or
	// retry policy (never part of the probability denominators), and
	// merged from a resume journal instead of re-run. Completed+Aborted
	// can be less than Trials when Interrupted.
	Completed int
	Aborted   int
	Resumed   int
	// TargetCI echoes CharacterizeConfig.TargetCI (zero for fixed
	// campaigns). Planned is the trial count the planner settled on —
	// Trials under the fixed plan, the adaptive stopping boundary
	// otherwise — and TrialsSaved is Trials − Planned once the adaptive
	// rule fired: the trials the requested CI made unnecessary.
	TargetCI    float64
	Planned     int
	TrialsSaved int
	// Shard, when the campaign ran as one shard of a larger campaign
	// (CharacterizeConfig.ShardCount > 0), records the shard coordinates
	// and owned trial range; the aggregates above then cover only that
	// range. Nil for unsharded runs and for merged results.
	Shard *ShardInfo
}

// ShardInfo records which slice of a sharded campaign a
// characterization covers (see SHARDING.md).
type ShardInfo struct {
	// Index / Count are the shard coordinates (the `-shard i/N` flag).
	Index, Count int
	// TrialLo / TrialHi bound the owned half-open trial index range.
	TrialLo, TrialHi int
}

// Characterize runs an error-injection campaign (the paper's Fig. 2 loop)
// and reports the application's measured tolerance.
func Characterize(cfg CharacterizeConfig) (*Characterization, error) {
	if cfg.App == "" {
		return nil, fmt.Errorf("hrmsim: CharacterizeConfig.App is required")
	}
	if cfg.Error == "" {
		cfg.Error = SoftSingleBit
	}
	if cfg.Trials == 0 {
		cfg.Trials = 200
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	adaptive := cfg.TargetCI > 0
	switch {
	case !adaptive && cfg.TargetCI != 0:
		return nil, fmt.Errorf("hrmsim: TargetCI must be positive, got %g", cfg.TargetCI)
	case !adaptive && (cfg.MinTrials != 0 || cfg.MaxTrials != 0):
		return nil, fmt.Errorf("hrmsim: MinTrials/MaxTrials are adaptive-campaign guard rails and require TargetCI")
	case adaptive && cfg.TargetCI >= 1:
		return nil, fmt.Errorf("hrmsim: TargetCI is a probability half-width and must be below 1, got %g", cfg.TargetCI)
	case adaptive && cfg.ShardCount > 0:
		return nil, fmt.Errorf("hrmsim: TargetCI cannot be combined with ShardCount — an adaptive plan needs the whole trial index space; run adaptive campaigns unsharded (see SHARDING.md)")
	}
	if adaptive {
		if cfg.MaxTrials == 0 {
			cfg.MaxTrials = cfg.Trials
		}
		if cfg.MaxTrials < 0 || cfg.MaxTrials > cfg.Trials {
			return nil, fmt.Errorf("hrmsim: MaxTrials %d outside [1,%d] (Trials is the index space)", cfg.MaxTrials, cfg.Trials)
		}
		if cfg.MinTrials == 0 {
			cfg.MinTrials = DefaultAdaptiveMinTrials
			if cfg.MinTrials > cfg.MaxTrials {
				cfg.MinTrials = cfg.MaxTrials
			}
		}
		if cfg.MinTrials < 0 || cfg.MinTrials > cfg.MaxTrials {
			return nil, fmt.Errorf("hrmsim: MinTrials %d outside [1,%d]", cfg.MinTrials, cfg.MaxTrials)
		}
	}
	spec, err := specFor(cfg.Error)
	if err != nil {
		return nil, err
	}
	kind, err := kindFor(cfg.Region)
	if err != nil {
		return nil, err
	}
	builder, err := NewBuilder(cfg.App, cfg.Size, cfg.Seed)
	if err != nil {
		return nil, err
	}
	ccfg := core.CampaignConfig{
		Builder:       builder,
		Spec:          spec,
		Trials:        cfg.Trials,
		Seed:          cfg.Seed,
		Parallelism:   cfg.Parallelism,
		Progress:      coreProgress(cfg.Progress),
		Metrics:       cfg.Metrics,
		Tracer:        cfg.Tracer,
		TrialTimeout:  cfg.TrialTimeout,
		TrialOpBudget: cfg.TrialOpBudget,
		MaxRetries:    cfg.MaxRetries,
	}
	if kind != 0 {
		ccfg.Filter = func(r *simmem.Region) bool { return r.Kind() == kind }
	}
	if adaptive {
		ccfg.Planner = core.NewAdaptivePlanner(stats.SequentialStopping{
			TargetHalfWidth: cfg.TargetCI,
			Level:           adaptiveCILevel,
			MinTrials:       cfg.MinTrials,
			MaxTrials:       cfg.MaxTrials,
		})
	}
	var shard *core.ShardSpec
	if cfg.ShardCount > 0 {
		s := core.ShardSpec{Index: cfg.ShardIndex, Count: cfg.ShardCount}
		if err := s.Validate(); err != nil {
			return nil, fmt.Errorf("hrmsim: %w", err)
		}
		shard = &s
		ccfg.Shard = shard
	} else if cfg.ShardIndex != 0 {
		return nil, fmt.Errorf("hrmsim: ShardIndex %d set without ShardCount", cfg.ShardIndex)
	}
	if cfg.ManifestPath != "" && cfg.JournalPath == "" {
		return nil, fmt.Errorf("hrmsim: ManifestPath requires JournalPath (a manifest describes a journal)")
	}

	// The journal header pins the campaign identity, so resuming against
	// a journal from a different campaign fails loudly instead of merging
	// unrelated trial results.
	meta := core.JournalMeta{
		App:    string(cfg.App),
		Error:  string(cfg.Error),
		Region: string(cfg.Region),
		Trials: cfg.Trials,
		Seed:   cfg.Seed,
		Size:   int64(cfg.Size),
	}
	if adaptive {
		// The stopping rule is part of the campaign identity: a journal
		// resumed under a different rule would replay to a different
		// stop boundary. These fields also flow into the shard
		// manifest's ConfigHash via this meta.
		meta.TargetCI = cfg.TargetCI
		meta.CILevel = adaptiveCILevel
		meta.MinTrials = cfg.MinTrials
		meta.MaxTrials = cfg.MaxTrials
	}
	if cfg.ResumePath != "" {
		f, err := os.Open(cfg.ResumePath)
		if err != nil {
			return nil, fmt.Errorf("hrmsim: opening resume journal: %w", err)
		}
		m, recs, err := core.ReadJournal(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("hrmsim: reading resume journal %s: %w", cfg.ResumePath, err)
		}
		if err := m.Matches(meta); err != nil {
			return nil, fmt.Errorf("hrmsim: resume journal %s belongs to a different campaign: %w", cfg.ResumePath, err)
		}
		ccfg.Resume = recs
	}
	var journal *core.Journal
	if cfg.JournalPath != "" {
		j, existed, err := core.OpenJournal(cfg.JournalPath, meta)
		if err != nil {
			return nil, fmt.Errorf("hrmsim: %w", err)
		}
		journal = j
		if !existed && len(ccfg.Resume) > 0 {
			// Fresh journal, foreign resume source: copy the resumed
			// records over so this journal alone describes the whole
			// campaign.
			idxs := make([]int, 0, len(ccfg.Resume))
			for i := range ccfg.Resume {
				idxs = append(idxs, i)
			}
			sort.Ints(idxs)
			for _, i := range idxs {
				if err := j.Append(ccfg.Resume[i]); err != nil {
					j.Close()
					return nil, fmt.Errorf("hrmsim: copying resumed trials into journal: %w", err)
				}
			}
		}
		ccfg.Journal = journal
	}

	if cfg.StatusPath != "" {
		// The sink stamps the identity evidence only the facade knows
		// (the supervisor fills shard coordinates and progress), then
		// persists atomically. Write failures must never perturb the
		// campaign — they are counted and the run moves on.
		hash := core.ConfigHash(meta)
		var writes, writeErrs *obsv.Counter
		if cfg.Metrics != nil {
			writes = cfg.Metrics.Counter("campaign_status_writes_total")
			writeErrs = cfg.Metrics.Counter("campaign_status_write_errors_total")
		}
		statusPath := cfg.StatusPath
		ccfg.StatusSink = func(st core.ShardStatus) {
			st.ConfigHash = hash
			st.Campaign = meta
			if err := core.WriteStatus(statusPath, st); err != nil {
				if writeErrs != nil {
					writeErrs.Inc()
				}
				return
			}
			if writes != nil {
				writes.Inc()
			}
		}
		ccfg.StatusInterval = cfg.StatusInterval
	}

	ctx := cfg.Context
	if ctx == nil {
		ctx = context.Background()
	}
	res, runErr := core.RunContext(ctx, ccfg)
	if journal != nil {
		if cerr := journal.Close(); cerr != nil && runErr == nil {
			runErr = fmt.Errorf("hrmsim: trial journal: %w", cerr)
		}
	}
	if runErr != nil {
		return nil, runErr
	}

	par := cfg.Parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	if par > cfg.Trials {
		par = cfg.Trials
	}
	out, err := newCharacterization(cfg.App, cfg.Error, cfg.Region, cfg.Trials, par, res)
	if err != nil {
		return nil, err
	}
	out.TargetCI = cfg.TargetCI
	if shard != nil {
		lo, hi := shard.Range(cfg.Trials)
		out.Shard = &ShardInfo{
			Index:   shard.Index,
			Count:   shard.Count,
			TrialLo: lo,
			TrialHi: hi,
		}
	}
	if cfg.ManifestPath != "" {
		spec := core.ShardSpec{Index: 0, Count: 1}
		if shard != nil {
			spec = *shard
		}
		jref := filepath.Base(cfg.JournalPath)
		if rel, rerr := filepath.Rel(filepath.Dir(cfg.ManifestPath), cfg.JournalPath); rerr == nil {
			jref = rel
		}
		man := core.NewShardManifest(meta, spec, jref, res)
		if cfg.Metrics != nil {
			if raw, merr := json.Marshal(cfg.Metrics.Snapshot()); merr == nil {
				man.Metrics = raw
			}
		}
		if err := core.WriteManifest(cfg.ManifestPath, man); err != nil {
			return nil, fmt.Errorf("hrmsim: writing shard manifest: %w", err)
		}
	}
	return out, nil
}

// newCharacterization aggregates a finished campaign into the public
// result shape. Shared between a live run (Characterize) and a
// cross-shard merge (MergeShards), so a merged campaign's aggregates go
// through exactly the same arithmetic as a single-process run's.
func newCharacterization(app App, errType ErrorType, region Region, trials, par int, res *core.CampaignResult) (*Characterization, error) {
	out := &Characterization{
		App:                 app,
		Error:               errType,
		Region:              region,
		Trials:              trials,
		Parallelism:         par,
		Outcomes:            make(map[string]int),
		CrashMinutes:        res.TimesToEffect(core.OutcomeCrash),
		IncorrectMinutes:    res.TimesToEffect(core.OutcomeIncorrect),
		AllIncorrectMinutes: res.AllIncorrectTimes(),
		Interrupted:         res.Interrupted,
		Completed:           res.Completed(),
		Aborted:             res.AbortedCount(),
		Resumed:             res.Resumed,
		Planned:             res.Planned,
	}
	if res.PlanFinal && res.Planned > 0 && res.Planned < res.Requested {
		out.TrialsSaved = res.Requested - res.Planned
	}
	// The probability estimates need at least one completed trial; an
	// immediately interrupted (or fully aborted) campaign reports zeros.
	if out.Completed > 0 {
		crash, err := res.CrashProbability(0.90)
		if err != nil {
			return nil, err
		}
		tol, err := res.ToleratedProbability(0.90)
		if err != nil {
			return nil, err
		}
		mean, max := res.IncorrectPerBillion()
		out.CrashProbability = crash.P
		out.CrashCILow = crash.Lo
		out.CrashCIHigh = crash.Hi
		out.ToleratedProbability = tol.P
		out.IncorrectPerBillion = mean
		out.MaxIncorrectPerBillion = max
	}
	for _, o := range []core.Outcome{
		core.OutcomeMaskedOverwrite, core.OutcomeMaskedLogic,
		core.OutcomeMaskedLatent, core.OutcomeIncorrect, core.OutcomeCrash,
	} {
		out.Outcomes[o.String()] = res.Count(o)
	}
	return out, nil
}

// AccessProfileConfig configures a safe-ratio / recoverability analysis.
type AccessProfileConfig struct {
	// App is the application to profile.
	App App
	// Watchpoints is the number of sampled addresses (default 300),
	// split across regions proportionally with a per-region floor.
	Watchpoints int
	// Seed makes sampling deterministic (default 1).
	Seed int64
	// Size selects the workload scale (default SizeMedium).
	Size WorkloadSize
}

// RegionProfile summarizes one region's access behaviour.
type RegionProfile struct {
	Region string
	// UsedBytes is the region's occupied size.
	UsedBytes int
	// Watchpoints is the number of sampled addresses with at least one
	// attributed interval.
	Watchpoints int
	// MeanSafeRatio averages the safe ratios (Section III-B): near 1
	// means writes dominate (errors masked by overwrite), near 0 means
	// reads dominate.
	MeanSafeRatio float64
	// SafeRatios are the per-address ratios (the Fig. 5b samples).
	SafeRatios []float64
	// ImplicitRecoverable and ExplicitRecoverable are the Table 5
	// fractions of used pages.
	ImplicitRecoverable, ExplicitRecoverable float64
}

// AccessProfileReport is the access-monitoring analysis of one application.
type AccessProfileReport struct {
	App App
	// WindowMinutes is the observation window in virtual minutes.
	WindowMinutes float64
	// Regions holds one profile per mapped region.
	Regions []RegionProfile
}

// AccessProfile runs the application's full workload under the
// access-monitoring framework and reports safe ratios and recoverability
// per region (the paper's Sections III-B/III-C measurements).
func AccessProfile(cfg AccessProfileConfig) (*AccessProfileReport, error) {
	if cfg.App == "" {
		return nil, fmt.Errorf("hrmsim: AccessProfileConfig.App is required")
	}
	if cfg.Watchpoints == 0 {
		cfg.Watchpoints = 300
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	builder, err := NewBuilder(cfg.App, cfg.Size, cfg.Seed)
	if err != nil {
		return nil, err
	}
	inst, err := builder.Build()
	if err != nil {
		return nil, err
	}
	as := inst.Space()
	mon := monitor.New(as)
	as.AddAccessObserver(mon)
	total := 0
	for _, r := range as.Regions() {
		mon.TrackPages(r)
		total += r.Used()
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	for _, r := range as.Regions() {
		k := r.Kind()
		n := cfg.Watchpoints * r.Used() / total
		if floor := cfg.Watchpoints / 8; n < floor {
			n = floor
		}
		mon.WatchSample(as, rng, n, func(rr *simmem.Region) bool { return rr.Kind() == k })
	}
	for i := 0; i < inst.NumRequests(); i++ {
		if _, err := inst.Serve(i); err != nil {
			return nil, fmt.Errorf("hrmsim: profiling workload request %d: %w", i, err)
		}
	}
	rep := &AccessProfileReport{App: cfg.App, WindowMinutes: mon.Window().Minutes()}
	for _, r := range as.Regions() {
		ratios := mon.SafeRatios(r.Kind())
		p := RegionProfile{
			Region:      r.Kind().String(),
			UsedBytes:   r.Used(),
			Watchpoints: len(ratios),
			SafeRatios:  ratios,
		}
		var sum float64
		for _, x := range ratios {
			sum += x
		}
		if len(ratios) > 0 {
			p.MeanSafeRatio = sum / float64(len(ratios))
		}
		rec, err := mon.RecoverabilityOf(r)
		if err != nil {
			return nil, err
		}
		p.ImplicitRecoverable = rec.Implicit
		p.ExplicitRecoverable = rec.Explicit
		rep.Regions = append(rep.Regions, p)
	}
	return rep, nil
}
