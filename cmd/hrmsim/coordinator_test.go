// Coordinator unit tests run shard workers in-process through the
// launcher seam: under `go test`, os.Executable() is the test binary, so
// the real process launcher is exercised by scripts/shard_smoke.sh
// instead.
package main

import (
	"context"
	"fmt"
	"io"
	"reflect"
	"sync"
	"testing"

	"hrmsim"
	"hrmsim/internal/obsv"
)

// chanWaiter adapts a goroutine's exit error to the waiter interface.
type chanWaiter chan error

func (c chanWaiter) Wait() error { return <-c }

// inProcessLauncher runs each shard task as a hrmsim.Characterize call
// in a goroutine. Shards listed in crashOnce fail their first attempt
// partway through (journal written, then a nonzero "exit"), exercising
// the coordinator's respawn-with-resume path.
func inProcessLauncher(t *testing.T, cfg coordinatorConfig, crashOnce map[int]bool) shardLauncher {
	t.Helper()
	var mu sync.Mutex
	crashed := make(map[int]bool)
	return func(task shardTask) (waiter, error) {
		done := make(chanWaiter, 1)
		sz, err := sizeFlag(cfg.Size)
		if err != nil {
			return nil, err
		}
		ccfg := hrmsim.CharacterizeConfig{
			App:          hrmsim.App(cfg.App),
			Error:        hrmsim.ErrorType(cfg.Error),
			Region:       hrmsim.Region(cfg.Region),
			Trials:       cfg.Trials,
			Seed:         cfg.Seed,
			Size:         sz,
			ShardIndex:   task.Index,
			ShardCount:   task.Count,
			JournalPath:  task.Journal,
			ManifestPath: task.Manifest,
		}
		if task.Status != "" {
			// Mirror the real worker: a status-writing run carries a
			// registry so heartbeats embed metrics snapshots.
			ccfg.StatusPath = task.Status
			ccfg.Metrics = obsv.NewRegistry()
		}
		if task.Resume {
			ccfg.ResumePath = task.Journal
		}
		mu.Lock()
		simulateCrash := crashOnce[task.Index] && !crashed[task.Index]
		if simulateCrash {
			crashed[task.Index] = true
		}
		mu.Unlock()
		go func() {
			if simulateCrash {
				// Die after a few journaled trials, like a worker killed
				// mid-campaign.
				ctx, cancel := context.WithCancel(context.Background())
				defer cancel()
				ccfg.Context = ctx
				ccfg.Progress = func(p hrmsim.ProgressInfo) {
					if p.Done >= 2 {
						cancel()
					}
				}
				_, _ = hrmsim.Characterize(ccfg)
				done <- fmt.Errorf("simulated worker crash")
				return
			}
			_, err := hrmsim.Characterize(ccfg)
			done <- err
		}()
		return done, nil
	}
}

func testCoordinatorConfig(t *testing.T) coordinatorConfig {
	return coordinatorConfig{
		App:         "kvstore",
		Error:       "soft-1bit",
		Size:        "small",
		Trials:      24,
		Seed:        6,
		Shards:      3,
		Dir:         t.TempDir(),
		MaxRespawns: 2,
		Metrics:     obsv.NewRegistry(),
		Log:         io.Discard,
	}
}

// TestCoordinatorMergesShards: a healthy coordinator run produces the
// single-process result (modulo parallelism bookkeeping) and counts its
// spawns.
func TestCoordinatorMergesShards(t *testing.T) {
	cfg := testCoordinatorConfig(t)
	cfg.Launch = inProcessLauncher(t, cfg, nil)
	out, err := runCoordinator(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Failed) != 0 {
		t.Fatalf("failed shards: %v", out.Failed)
	}
	if out.Info.Records != cfg.Trials || out.Info.Missing != 0 {
		t.Fatalf("merge info = %+v", out.Info)
	}

	want, err := hrmsim.Characterize(hrmsim.CharacterizeConfig{
		App: hrmsim.AppKVStore, Size: hrmsim.SizeSmall, Trials: cfg.Trials, Seed: cfg.Seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	wantCmp, gotCmp := *want, *out.Result
	gotCmp.Parallelism = wantCmp.Parallelism
	if !reflect.DeepEqual(wantCmp, gotCmp) {
		t.Errorf("coordinator result diverged:\nsingle:      %+v\ncoordinator: %+v", wantCmp, gotCmp)
	}

	snap := cfg.Metrics.Snapshot()
	if snap.Counters["campaign_shards_total"] != int64(cfg.Shards) {
		t.Errorf("campaign_shards_total = %d, want %d", snap.Counters["campaign_shards_total"], cfg.Shards)
	}
	if snap.Counters["campaign_shard_respawns_total"] != 0 {
		t.Errorf("campaign_shard_respawns_total = %d, want 0", snap.Counters["campaign_shard_respawns_total"])
	}
}

// TestCoordinatorRespawnsCrashedShard: a shard that dies mid-run is
// respawned with -resume and the campaign still merges complete and
// bit-identical.
func TestCoordinatorRespawnsCrashedShard(t *testing.T) {
	cfg := testCoordinatorConfig(t)
	cfg.Launch = inProcessLauncher(t, cfg, map[int]bool{1: true})
	out, err := runCoordinator(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Failed) != 0 {
		t.Fatalf("failed shards: %v", out.Failed)
	}
	if out.Info.Records != cfg.Trials || out.Info.Missing != 0 {
		t.Fatalf("merge info after respawn = %+v", out.Info)
	}

	snap := cfg.Metrics.Snapshot()
	if snap.Counters["campaign_shards_total"] != int64(cfg.Shards+1) {
		t.Errorf("campaign_shards_total = %d, want %d (respawn counts as a spawn)",
			snap.Counters["campaign_shards_total"], cfg.Shards+1)
	}
	if snap.Counters["campaign_shard_respawns_total"] != 1 {
		t.Errorf("campaign_shard_respawns_total = %d, want 1", snap.Counters["campaign_shard_respawns_total"])
	}
	labeled := obsv.LabeledName("campaign_shard_respawns_total", "shard", "1")
	if snap.Counters[labeled] != 1 {
		t.Errorf("%s = %d, want 1", labeled, snap.Counters[labeled])
	}

	want, err := hrmsim.Characterize(hrmsim.CharacterizeConfig{
		App: hrmsim.AppKVStore, Size: hrmsim.SizeSmall, Trials: cfg.Trials, Seed: cfg.Seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	wantCmp, gotCmp := *want, *out.Result
	gotCmp.Parallelism = wantCmp.Parallelism
	if !reflect.DeepEqual(wantCmp, gotCmp) {
		t.Errorf("post-respawn result diverged:\nsingle:      %+v\ncoordinator: %+v", wantCmp, gotCmp)
	}
}

// TestCoordinatorGivesUpAfterMaxRespawns: a shard that keeps dying is
// reported failed; the others still merge into a partial result.
func TestCoordinatorGivesUpAfterMaxRespawns(t *testing.T) {
	cfg := testCoordinatorConfig(t)
	cfg.MaxRespawns = 1
	// Always-crashing launcher for shard 2, normal for the rest.
	normal := inProcessLauncher(t, cfg, nil)
	cfg.Launch = func(task shardTask) (waiter, error) {
		if task.Index == 2 {
			done := make(chanWaiter, 1)
			done <- fmt.Errorf("simulated persistent crash")
			return done, nil
		}
		return normal(task)
	}
	out, err := runCoordinator(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Failed) != 1 || out.Failed[0] != 2 {
		t.Fatalf("failed = %v, want [2]", out.Failed)
	}
	if !out.Result.Interrupted {
		t.Error("partial merge not marked Interrupted")
	}
	lo, hi := 2*cfg.Trials/3, cfg.Trials
	if out.Info.Missing != hi-lo {
		t.Errorf("missing = %d, want %d (shard 2's range)", out.Info.Missing, hi-lo)
	}
	snap := cfg.Metrics.Snapshot()
	if snap.Counters["campaign_shard_respawns_total"] != 1 {
		t.Errorf("campaign_shard_respawns_total = %d, want 1 (MaxRespawns)",
			snap.Counters["campaign_shard_respawns_total"])
	}
}
