package hrmsim

import (
	"fmt"

	"hrmsim/internal/experiments"
)

// ComparisonRow is one paper-vs-measured data point of a regenerated
// experiment.
type ComparisonRow struct {
	Metric   string
	Paper    string
	Measured string
	Note     string
}

// ExperimentReport is one regenerated table or figure.
type ExperimentReport struct {
	// ID is the experiment identifier (see ExperimentIDs).
	ID string
	// Title describes the experiment.
	Title string
	// Text is the rendered table/figure, ready to print.
	Text string
	// Comparisons hold structured paper-vs-measured rows.
	Comparisons []ComparisonRow
}

// ExperimentIDs lists every reproducible table and figure in paper order:
// table1, table3, table4, fig3, fig4, fig5a, fig5b, fig6, table5, table6,
// fig8, fig9.
func ExperimentIDs() []string { return experiments.IDs() }

// ExtensionIDs lists the experiments beyond the paper's published
// evaluation: multi-server aggregation (§V-B), correlated
// device-structure faults (§VII future work), and scrubbing/retirement
// ablations.
func ExtensionIDs() []string { return experiments.ExtensionIDs() }

// LabConfig sizes a Lab's campaigns.
type LabConfig struct {
	// Trials is the trial index space per campaign cell (default 400).
	// With TargetCI unset every index runs exactly once; with TargetCI
	// set, Trials is each cell's hard budget and the adaptive planner
	// usually stops well short of it. For quick runs either lower
	// Trials to ~60 or set TargetCI and let cells stop themselves.
	Trials int
	// TargetCI, when positive, runs every campaign cell under the
	// adaptive planner: a cell stops as soon as the Wilson CI
	// half-width (level 0.90) of its crash probability narrows to this
	// target, and multi-cell sweeps share the worker pool
	// widest-CI-first, so `tables` gets faster at equal statistical
	// quality. 0 keeps the classic fixed-N cells.
	TargetCI float64
	// TimingTrials is the larger count for the Fig. 5a timing
	// distribution (default 3× Trials).
	TimingTrials int
	// Watchpoints for safe-ratio sampling (default 1590, the paper's
	// Fig. 5b sample size).
	Watchpoints int
	// Seed drives everything (default 1).
	Seed int64
	// Parallelism bounds concurrent trials (default GOMAXPROCS).
	Parallelism int
	// Progress, if non-nil, is called after every completed injection
	// trial of every campaign cell with that cell's live progress
	// (counts, trial rate, ETA). Calls within one cell are serialized.
	Progress func(ProgressInfo)
}

// Lab regenerates the paper's tables and figures. Campaign cells are
// cached, so regenerating several related figures shares work.
type Lab struct {
	suite *experiments.Suite
}

// NewLab creates a lab.
func NewLab(cfg LabConfig) (*Lab, error) {
	if cfg.Trials == 0 {
		cfg.Trials = 400
	}
	if cfg.TimingTrials == 0 {
		cfg.TimingTrials = 3 * cfg.Trials
	}
	if cfg.Watchpoints == 0 {
		cfg.Watchpoints = 1590
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.TargetCI < 0 || cfg.TargetCI >= 1 {
		return nil, fmt.Errorf("hrmsim: TargetCI must be in (0, 1), got %g", cfg.TargetCI)
	}
	s, err := experiments.NewSuite(experiments.Scale{
		Trials:      cfg.Trials,
		Fig5aTrials: cfg.TimingTrials,
		Watchpoints: cfg.Watchpoints,
		TargetCI:    cfg.TargetCI,
		Seed:        cfg.Seed,
		Parallelism: cfg.Parallelism,
		Progress:    coreProgress(cfg.Progress),
	})
	if err != nil {
		return nil, err
	}
	return &Lab{suite: s}, nil
}

// Run regenerates one experiment by ID.
func (l *Lab) Run(id string) (*ExperimentReport, error) {
	rep, err := l.suite.Run(id)
	if err != nil {
		return nil, err
	}
	return convertReport(rep), nil
}

// RunAll regenerates every experiment in paper order.
func (l *Lab) RunAll() ([]*ExperimentReport, error) {
	var out []*ExperimentReport
	for _, id := range experiments.IDs() {
		rep, err := l.Run(id)
		if err != nil {
			return nil, fmt.Errorf("hrmsim: experiment %s: %w", id, err)
		}
		out = append(out, rep)
	}
	return out, nil
}

// convertReport maps the internal report type.
func convertReport(rep *experiments.Report) *ExperimentReport {
	out := &ExperimentReport{ID: rep.ID, Title: rep.Title, Text: rep.Text}
	for _, c := range rep.Comparisons {
		out.Comparisons = append(out.Comparisons, ComparisonRow(c))
	}
	return out
}
