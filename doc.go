// Package hrmsim is a simulation framework reproducing "Characterizing
// Application Memory Error Vulnerability to Optimize Datacenter Cost via
// Heterogeneous-Reliability Memory" (Luo et al., DSN 2014).
//
// It provides, as a library:
//
//   - a controlled memory error injection methodology (soft and hard,
//     single- and multi-bit, and correlated device-structure faults) over
//     three data-intensive applications — an interactive web search index
//     server, a Memcached-style key–value store, and a GraphLab-style
//     graph-mining framework — rebuilt on a simulated memory subsystem so
//     that injected bit flips corrupt the real data structures the
//     applications traverse;
//
//   - the paper's outcome taxonomy (masked by overwrite, masked by logic,
//     incorrect response, crash) with campaign statistics: crash
//     probabilities with 90% confidence intervals, incorrect results per
//     billion queries, and time-to-effect distributions;
//
//   - the access-monitoring framework: safe-ratio measurement and
//     implicit/explicit data recoverability classification;
//
//   - executable ECC codecs (parity, SEC-DED(72,64), DEC-TED BCH,
//     chipkill-style and RAIM-style Reed–Solomon symbol codes, and
//     mirroring) plus software reliability responses (Par+R recovery from
//     persistent storage, page retirement, checkpointing, scrubbing);
//
//   - the heterogeneous-reliability design-space evaluator: cost,
//     availability, and reliability models reproducing the paper's
//     Table 6 and Fig. 8 analyses;
//
//   - an observability layer (internal/obsv): campaigns record trial,
//     outcome, and timing metrics into a registry of atomic counters,
//     gauges, and histograms, surfaced through the CharacterizeConfig
//     Progress hook, the hrmsim CLI's -json output (a versioned result
//     schema), and the kvserve HTTP metrics sidecar. OBSERVABILITY.md
//     documents every metric name and the JSON contract.
//
// The root package is the public API: plain-Go configuration structs and
// report types wrapping the internal machinery. Start with Characterize
// for injection campaigns, AccessProfile for safe-ratio/recoverability
// analysis, EvaluateTable6, Plan, and Tolerable for the design-space
// analytics, SimulateLifetime for continuous-operation availability
// simulation, and NewLab / Lab.Run to regenerate any of the paper's
// tables and figures (plus the extension experiments).
//
// Campaigns scale across processes: Characterize accepts shard
// coordinates (ShardIndex/ShardCount) that restrict a run to one
// deterministic slice of the trial sequence, and MergeShards folds a
// directory of shard journals back into a Characterization bit-identical
// to the single-process run. SHARDING.md documents the shard/merge
// contract and the coordinator that operates it.
package hrmsim
