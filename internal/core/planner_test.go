package core

import (
	"bytes"
	"reflect"
	"sort"
	"testing"

	"hrmsim/internal/faults"
	"hrmsim/internal/stats"
)

func testRule(target float64, min, max int) stats.SequentialStopping {
	return stats.SequentialStopping{TargetHalfWidth: target, Level: 0.90, MinTrials: min, MaxTrials: max}
}

// syntheticResult fabricates a deterministic completed trial: every
// fifth index crashes.
func syntheticResult(i int) TrialResult {
	tr := TrialResult{Index: i, Disposition: DispositionCompleted, Outcome: OutcomeMaskedOverwrite}
	if i%5 == 0 {
		tr.Outcome = OutcomeCrash
	}
	return tr
}

// drivePlanner runs a planner to completion against syntheticResult with
// the given number of in-flight slots, completing trials newest-first
// when lifo is set — the adversarial arrival order for a planner that
// must be order-independent. It returns the dispatched indices (in
// dispatch order) and the accumulated decision stream.
func drivePlanner(t *testing.T, p TrialPlanner, par int, lifo bool) ([]int, []PlannerDecision) {
	t.Helper()
	var dispatched []int
	var inflight []int
	var decisions []PlannerDecision
	decisions = append(decisions, p.TakeDecisions()...)
	for step := 0; ; step++ {
		if step > 100000 {
			t.Fatal("planner did not terminate")
		}
		state := PlanWait
		for len(inflight) < par {
			i, st := p.Next()
			state = st
			if st != PlanDispatch {
				break
			}
			dispatched = append(dispatched, i)
			inflight = append(inflight, i)
		}
		if len(inflight) == 0 {
			if state == PlanDone {
				return dispatched, decisions
			}
			if state == PlanWait {
				t.Fatal("planner waits with nothing in flight")
			}
		}
		k := 0
		if lifo {
			k = len(inflight) - 1
		}
		i := inflight[k]
		inflight = append(inflight[:k], inflight[k+1:]...)
		p.Observe(syntheticResult(i))
		decisions = append(decisions, p.TakeDecisions()...)
	}
}

func TestFixedPlannerSequence(t *testing.T) {
	p := NewFixedPlanner()
	resumed := map[int]TrialResult{3: syntheticResult(3), 5: syntheticResult(5)}
	if err := p.Start(2, 7, 10, resumed); err != nil {
		t.Fatal(err)
	}
	if total, final := p.Budget(); total != 5 || !final {
		t.Errorf("Budget = (%d, %v), want (5, true)", total, final)
	}
	var got []int
	for {
		i, st := p.Next()
		if st == PlanDone {
			break
		}
		if st != PlanDispatch {
			t.Fatalf("fixed planner returned %v", st)
		}
		got = append(got, i)
	}
	if want := []int{2, 4, 6}; !reflect.DeepEqual(got, want) {
		t.Errorf("dispatch sequence %v, want %v", got, want)
	}
	if d := p.TakeDecisions(); d != nil {
		t.Errorf("fixed planner produced decisions %v", d)
	}
}

// TestAdaptivePlannerOrderIndependent: the dispatched index set and the
// decision stream are identical at parallelism 1 (in-order completion)
// and parallelism 4 (newest-first completion).
func TestAdaptivePlannerOrderIndependent(t *testing.T) {
	run := func(par int, lifo bool) ([]int, []PlannerDecision) {
		p := NewAdaptivePlanner(testRule(0.12, 10, 300))
		if err := p.Start(0, 300, 300, nil); err != nil {
			t.Fatal(err)
		}
		return drivePlanner(t, p, par, lifo)
	}
	d1, dec1 := run(1, false)
	d4, dec4 := run(4, true)
	sort.Ints(d1)
	sort.Ints(d4)
	if !reflect.DeepEqual(d1, d4) {
		t.Errorf("dispatched sets differ: %d trials vs %d trials", len(d1), len(d4))
	}
	if !reflect.DeepEqual(dec1, dec4) {
		t.Errorf("decision streams differ:\npar 1: %+v\npar 4: %+v", dec1, dec4)
	}
	if len(dec1) == 0 || !dec1[len(dec1)-1].Stop {
		t.Fatalf("final decision is not a stop: %+v", dec1)
	}
	if len(d1) != dec1[len(dec1)-1].Boundary {
		t.Errorf("dispatched %d trials, stop boundary %d", len(d1), dec1[len(dec1)-1].Boundary)
	}
}

// TestAdaptivePlannerGuardRails: a target wider than any first verdict
// stops at MinTrials; an unreachable target exhausts MaxTrials.
func TestAdaptivePlannerGuardRails(t *testing.T) {
	loose := NewAdaptivePlanner(testRule(0.9, 20, 300))
	if err := loose.Start(0, 300, 300, nil); err != nil {
		t.Fatal(err)
	}
	dispatched, decisions := drivePlanner(t, loose, 3, false)
	if len(dispatched) != 20 {
		t.Errorf("loose target ran %d trials, want the 20-trial minimum", len(dispatched))
	}
	if len(decisions) != 1 || !decisions[0].Stop || decisions[0].Exhausted {
		t.Errorf("loose-target decisions = %+v", decisions)
	}
	if total, final := loose.Budget(); total != 20 || !final {
		t.Errorf("Budget = (%d, %v), want (20, true)", total, final)
	}

	tight := NewAdaptivePlanner(testRule(0.0001, 10, 120))
	if err := tight.Start(0, 120, 120, nil); err != nil {
		t.Fatal(err)
	}
	dispatched, decisions = drivePlanner(t, tight, 3, false)
	if len(dispatched) != 120 {
		t.Errorf("unreachable target ran %d trials, want the whole 120-trial budget", len(dispatched))
	}
	last := decisions[len(decisions)-1]
	if !last.Stop || !last.Exhausted || last.Boundary != 120 {
		t.Errorf("final decision = %+v, want an exhausted stop at 120", last)
	}
}

// TestAdaptivePlannerRejectsShards: an adaptive plan over a strict
// sub-range must fail at Start, and RunContext must reject the
// combination before doing any work.
func TestAdaptivePlannerRejectsShards(t *testing.T) {
	p := NewAdaptivePlanner(testRule(0.05, 10, 100))
	if err := p.Start(0, 50, 100, nil); err == nil {
		t.Error("Start accepted shard [0,50) of 100")
	}
	if err := p.Start(50, 100, 100, nil); err == nil {
		t.Error("Start accepted shard [50,100) of 100")
	}
	// The whole index space as a 1-shard spec is fine.
	if err := p.Start(0, 100, 100, nil); err != nil {
		t.Errorf("Start rejected the whole index space: %v", err)
	}

	_, err := Run(CampaignConfig{
		Builder: wsBuilder(t, 2),
		Spec:    faults.SingleBitSoft,
		Trials:  40,
		Seed:    7,
		Planner: NewAdaptivePlanner(testRule(0.05, 10, 40)),
		Shard:   &ShardSpec{Index: 0, Count: 2},
	})
	if err == nil {
		t.Fatal("Run accepted a sharded adaptive campaign")
	}
}

// TestAdaptivePlannerPauseResumeEquivalence: a chain of paused
// one-round plans, each resumed from the previous rounds' results, must
// land on exactly the single-shot plan's stop boundary and index set —
// the invariant the Lab's widest-CI-first scheduler is built on.
func TestAdaptivePlannerPauseResumeEquivalence(t *testing.T) {
	rule := testRule(0.1, 10, 400)
	single := NewAdaptivePlanner(rule)
	if err := single.Start(0, 400, 400, nil); err != nil {
		t.Fatal(err)
	}
	wantDispatched, wantDecisions := drivePlanner(t, single, 4, true)
	sort.Ints(wantDispatched)

	resumed := make(map[int]TrialResult)
	var rounds int
	for {
		rounds++
		if rounds > 100 {
			t.Fatal("paused chain did not converge")
		}
		p := NewAdaptivePlanner(rule)
		p.PauseAfterRounds = 1
		if err := p.Start(0, 400, 400, resumed); err != nil {
			t.Fatal(err)
		}
		fresh, _ := drivePlanner(t, p, 4, false)
		for _, i := range fresh {
			resumed[i] = syntheticResult(i)
		}
		if total, final := p.Budget(); final {
			wantTotal, _ := single.Budget()
			if total != wantTotal {
				t.Errorf("chained stop boundary %d, single-shot %d", total, wantTotal)
			}
			break
		}
	}
	if rounds < 2 {
		t.Fatalf("pause chain finished in %d round(s); the pause path was not exercised", rounds)
	}
	got := make([]int, 0, len(resumed))
	for i := range resumed {
		got = append(got, i)
	}
	sort.Ints(got)
	if !reflect.DeepEqual(got, wantDispatched) {
		t.Errorf("chained plan ran %d trials, single-shot ran %d", len(got), len(wantDispatched))
	}
	_ = wantDecisions
}

// TestAdaptiveCampaignParallelismInvariant: a real adaptive campaign
// produces bit-identical results and planner decisions at parallelism 1
// and 4, and its result bookkeeping matches the stop boundary.
func TestAdaptiveCampaignParallelismInvariant(t *testing.T) {
	base := CampaignConfig{
		Builder: wsBuilder(t, 2),
		Spec:    faults.SingleBitSoft,
		Trials:  120,
		Seed:    7,
	}
	run := func(par int) *CampaignResult {
		cfg := base
		cfg.Parallelism = par
		cfg.Planner = NewAdaptivePlanner(testRule(0.15, 10, 120))
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(1), run(4)
	if !reflect.DeepEqual(a.Trials, b.Trials) {
		t.Error("adaptive campaign results differ across parallelism")
	}
	if !a.PlanFinal || a.Planned != len(a.Trials) {
		t.Errorf("Planned = %d (final %v) with %d trials", a.Planned, a.PlanFinal, len(a.Trials))
	}
	if a.Planned >= a.Requested {
		t.Errorf("adaptive plan saved nothing: planned %d of %d", a.Planned, a.Requested)
	}
	// The same indices run under the fixed plan give identical trial
	// results: the planner changes which trials run, never their content.
	fixed, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Trials, fixed.Trials[:len(a.Trials)]) {
		t.Error("adaptive trials are not a prefix of the fixed campaign's")
	}
}

// TestAdaptiveCampaignJournalsDecisions: an adaptive campaign journals
// its decision stream; trial readers skip it, decision readers recover
// it, and a resumed run replays rather than re-runs.
func TestAdaptiveCampaignJournalsDecisions(t *testing.T) {
	meta := JournalMeta{App: "websearch", Error: "soft-1bit", Trials: 120, Seed: 7,
		TargetCI: 0.15, CILevel: 0.90, MinTrials: 10, MaxTrials: 120}
	var buf bytes.Buffer
	j, err := NewJournal(&buf, meta)
	if err != nil {
		t.Fatal(err)
	}
	cfg := CampaignConfig{
		Builder: wsBuilder(t, 2),
		Spec:    faults.SingleBitSoft,
		Trials:  120,
		Seed:    7,
		Planner: NewAdaptivePlanner(testRule(0.15, 10, 120)),
		Journal: j,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	gotMeta, trials, err := ReadJournal(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if gotMeta.TargetCI != meta.TargetCI || gotMeta.MinTrials != meta.MinTrials {
		t.Errorf("journal meta lost the adaptive identity: %+v", gotMeta)
	}
	if len(trials) != len(res.Trials) {
		t.Errorf("journal holds %d trials, campaign ran %d", len(trials), len(res.Trials))
	}
	for i := range trials {
		if i < 0 {
			t.Errorf("trial reader surfaced planner sentinel index %d", i)
		}
	}
	decisions, err := ReadJournalDecisions(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(decisions) == 0 {
		t.Fatal("no planner decisions journaled")
	}
	last := decisions[len(decisions)-1]
	if !last.Stop || last.Boundary != res.Planned {
		t.Errorf("journaled stop %+v does not match Planned %d", last, res.Planned)
	}

	// Resuming from the complete journal replays every trial and reaches
	// the same verdict without running anything new.
	cfg2 := cfg
	cfg2.Journal = nil
	cfg2.Planner = NewAdaptivePlanner(testRule(0.15, 10, 120))
	cfg2.Resume = trials
	res2, err := Run(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Resumed != len(res.Trials) {
		t.Errorf("replay resumed %d of %d trials", res2.Resumed, len(res.Trials))
	}
	if !reflect.DeepEqual(res.Trials, res2.Trials) || res2.Planned != res.Planned {
		t.Error("replayed adaptive campaign diverged")
	}
}

// TestJournalMetaAdaptiveMismatch: resuming an adaptive journal under a
// different stopping configuration is rejected by Matches.
func TestJournalMetaAdaptiveMismatch(t *testing.T) {
	a := JournalMeta{App: "websearch", Error: "soft-1bit", Trials: 100, Seed: 1,
		TargetCI: 0.05, CILevel: 0.90, MinTrials: 30, MaxTrials: 100}
	cases := []func(*JournalMeta){
		func(m *JournalMeta) { m.TargetCI = 0.02 },
		func(m *JournalMeta) { m.CILevel = 0.95 },
		func(m *JournalMeta) { m.MinTrials = 10 },
		func(m *JournalMeta) { m.MaxTrials = 80 },
	}
	for i, mutate := range cases {
		b := a
		mutate(&b)
		if err := a.Matches(b); err == nil {
			t.Errorf("case %d: mismatched adaptive meta accepted", i)
		}
	}
	if err := a.Matches(a); err != nil {
		t.Errorf("identical adaptive meta rejected: %v", err)
	}
}
