package experiments

import (
	"reflect"
	"testing"

	"hrmsim/internal/core"
	"hrmsim/internal/faults"
)

// TestAdaptiveCellMatchesSingleShot: a cell run through the suite's
// round-chained widest-CI-first scheduler is bit-identical to the same
// cell run as one uninterrupted adaptive campaign.
func TestAdaptiveCellMatchesSingleShot(t *testing.T) {
	s, err := NewSuite(Scale{Trials: 80, Fig5aTrials: 80, Watchpoints: 50, TargetCI: 0.15, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.campaign("kvstore", faults.SingleBitSoft, 0, 80)
	if err != nil {
		t.Fatal(err)
	}
	if !got.PlanFinal {
		t.Fatal("scheduler cached a non-final plan")
	}

	entry, err := s.app("kvstore")
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.Run(core.CampaignConfig{
		Builder: entry.builder,
		Spec:    faults.SingleBitSoft,
		Trials:  80,
		Seed:    1,
		Golden:  entry.golden,
		Planner: core.NewAdaptivePlanner(s.cellRule(80)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if got.Planned != want.Planned {
		t.Errorf("scheduler stopped at %d trials, single shot at %d", got.Planned, want.Planned)
	}
	if !reflect.DeepEqual(got.Trials, want.Trials) {
		t.Error("scheduler trials diverged from the single-shot campaign")
	}
}

// TestPrefetchAdaptiveSweep: a multi-cell prefetch finishes every cell
// with a final plan inside its budget, and the cached results are what
// campaign() then serves.
func TestPrefetchAdaptiveSweep(t *testing.T) {
	s, err := NewSuite(Scale{Trials: 80, Fig5aTrials: 80, Watchpoints: 50, TargetCI: 0.15, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	reqs := []cellReq{
		{app: "websearch", spec: faults.SingleBitSoft, trials: 80},
		{app: "kvstore", spec: faults.SingleBitSoft, trials: 80},
		// Duplicate entries must be coalesced, not run twice.
		{app: "kvstore", spec: faults.SingleBitSoft, trials: 80},
	}
	if err := s.prefetch(reqs); err != nil {
		t.Fatal(err)
	}
	for _, req := range reqs[:2] {
		res, err := s.campaign(req.app, req.spec, req.kind, req.trials)
		if err != nil {
			t.Fatal(err)
		}
		if !res.PlanFinal || res.Planned <= 0 || res.Planned > req.trials {
			t.Errorf("%s: Planned = %d (final %v) of budget %d", req.app, res.Planned, res.PlanFinal, req.trials)
		}
		if len(res.Trials) != res.Planned {
			t.Errorf("%s: %d trials for a %d-trial plan", req.app, len(res.Trials), res.Planned)
		}
	}
}

// TestFixedScaleKeepsFixedPlans: with TargetCI unset the suite still
// runs classic fixed-N cells.
func TestFixedScaleKeepsFixedPlans(t *testing.T) {
	s, err := NewSuite(Scale{Trials: 20, Fig5aTrials: 20, Watchpoints: 50, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.campaign("kvstore", faults.SingleBitSoft, 0, 20)
	if err != nil {
		t.Fatal(err)
	}
	if !res.PlanFinal || res.Planned != 20 || len(res.Trials) != 20 {
		t.Errorf("fixed cell: Planned = %d (final %v), %d trials", res.Planned, res.PlanFinal, len(res.Trials))
	}
}
