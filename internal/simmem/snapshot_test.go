package simmem

import (
	"bytes"
	"testing"
	"time"
)

// snapSpace builds a two-region space (one protected+backed, one plain)
// with recognizable contents.
func snapSpace(t *testing.T) (*AddressSpace, *Region, *Region) {
	t.Helper()
	as, err := New(Config{PageSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	prot, err := as.AddRegion(RegionSpec{
		Name: "prot", Kind: RegionPrivate, Size: 1024, Backed: true, Codec: replicaCodec{},
	})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := as.AddRegion(RegionSpec{Name: "plain", Kind: RegionHeap, Size: 1024})
	if err != nil {
		t.Fatal(err)
	}
	seed := make([]byte, 1024)
	for i := range seed {
		seed[i] = byte(i * 7)
	}
	if err := as.WriteRaw(prot.Base(), seed); err != nil {
		t.Fatal(err)
	}
	if err := prot.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if err := as.WriteRaw(plain.Base(), seed); err != nil {
		t.Fatal(err)
	}
	prot.SetUsed(1024)
	plain.SetUsed(1024)
	return as, prot, plain
}

// rawBytes reads a region's full stored contents.
func rawBytes(t *testing.T, as *AddressSpace, r *Region) []byte {
	t.Helper()
	buf := make([]byte, r.Size())
	if err := as.ReadRaw(r.Base(), buf); err != nil {
		t.Fatal(err)
	}
	return buf
}

func TestSnapshotRestoreRollsBackMutations(t *testing.T) {
	as, prot, plain := snapSpace(t)
	wantProt := rawBytes(t, as, prot)
	wantPlain := rawBytes(t, as, plain)
	wantCounters := as.Counters()
	as.Clock().Advance(time.Minute)
	wantClock := as.Clock().Now()

	snap := as.Snapshot()
	if n := snap.DirtyPages(); n != 0 {
		t.Fatalf("fresh snapshot has %d dirty pages", n)
	}

	// Mutate through every major path.
	if err := as.Store(plain.Base()+3, []byte{0xAA, 0xBB}); err != nil {
		t.Fatal(err)
	}
	if err := as.FlipBit(prot.Base()+100, 3); err != nil {
		t.Fatal(err)
	}
	if err := as.FlipCheckBit(prot.Base()+512, 1); err != nil {
		t.Fatal(err)
	}
	if err := as.StickBit(plain.Base()+700, 2, 1); err != nil {
		t.Fatal(err)
	}
	if err := as.WriteRaw(prot.Base()+256, []byte{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	if err := prot.FlushPage(1); err != nil {
		t.Fatal(err)
	}
	as.Clock().Advance(time.Hour)
	var scratch [8]byte
	if err := as.Load(plain.Base(), scratch[:]); err != nil {
		t.Fatal(err)
	}

	if snap.DirtyPages() == 0 {
		t.Fatal("mutations left no dirty pages")
	}
	restored, err := snap.Restore()
	if err != nil {
		t.Fatal(err)
	}
	if restored == 0 {
		t.Fatal("restore touched no pages")
	}
	if got := rawBytes(t, as, prot); !bytes.Equal(got, wantProt) {
		t.Error("protected region bytes not restored")
	}
	if got := rawBytes(t, as, plain); !bytes.Equal(got, wantPlain) {
		t.Error("plain region bytes not restored")
	}
	if got := as.Clock().Now(); got != wantClock {
		t.Errorf("clock = %v, want %v", got, wantClock)
	}
	if got := as.Counters(); got != wantCounters {
		t.Errorf("counters = %+v, want %+v", got, wantCounters)
	}
	// The backing store was restored too.
	clean, err := prot.BackingBytes(prot.Base()+256, 256)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(clean, wantProt[256:512]) {
		t.Error("backing store not restored")
	}
	// Stuck-at faults were cleared: the stuck byte reads its stored value.
	var b [1]byte
	if err := as.Load(plain.Base()+700, b[:]); err != nil {
		t.Fatal(err)
	}
	if b[0] != wantPlain[700] {
		t.Errorf("stuck bit survived restore: %#x != %#x", b[0], wantPlain[700])
	}
	// A second restore with nothing dirty is a cheap no-op.
	n, err := snap.Restore()
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("idle restore touched %d pages", n)
	}
}

func TestSnapshotRestoreLoadsMatchFreshBuild(t *testing.T) {
	// After restore, a protected load of a previously corrupted word
	// decodes cleanly with no new corrections.
	as, prot, _ := snapSpace(t)
	snap := as.Snapshot()
	if err := as.FlipBit(prot.Base()+40, 1); err != nil {
		t.Fatal(err)
	}
	var buf [8]byte
	if err := as.Load(prot.Base()+40, buf[:]); err != nil {
		t.Fatal(err)
	}
	if as.Counters().Corrected == 0 {
		t.Fatal("flip was not corrected (test setup broken)")
	}
	if _, err := snap.Restore(); err != nil {
		t.Fatal(err)
	}
	if err := as.Load(prot.Base()+40, buf[:]); err != nil {
		t.Fatal(err)
	}
	c := as.Counters()
	if c.Corrected != 0 {
		t.Errorf("restored word still corrects: %d", c.Corrected)
	}
	if c.Loads != 1 {
		t.Errorf("loads = %d after restore+1 load, want 1", c.Loads)
	}
	if got := prot.CorrectedOnPage(0); got != 0 {
		t.Errorf("page corrected counter = %d after restore", got)
	}
}

func TestSnapshotRestoresCacheState(t *testing.T) {
	as, err := New(Config{PageSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	if err := as.EnableCache(4); err != nil {
		t.Fatal(err)
	}
	r, err := as.AddRegion(RegionSpec{Name: "heap", Kind: RegionHeap, Size: 1024})
	if err != nil {
		t.Fatal(err)
	}
	r.SetUsed(1024)
	// Make a line resident and dirty, then snapshot.
	if err := as.Store(r.Base(), []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	wantHits, wantMisses, wantWB := as.CacheStats()
	snap := as.Snapshot()

	// Corrupt memory under the resident line, then touch other lines to
	// churn residency.
	if err := as.FlipBit(r.Base(), 0); err != nil {
		t.Fatal(err)
	}
	var buf [4]byte
	for off := 0; off < 1024; off += 64 {
		if err := as.Load(r.Base()+Addr(off), buf[:]); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := snap.Restore(); err != nil {
		t.Fatal(err)
	}
	h, m, wb := as.CacheStats()
	if h != wantHits || m != wantMisses || wb != wantWB {
		t.Errorf("cache stats (%d,%d,%d) != snapshot (%d,%d,%d)", h, m, wb, wantHits, wantMisses, wantWB)
	}
	// The line is resident again: this load must hit, not miss.
	if err := as.Load(r.Base(), buf[:]); err != nil {
		t.Fatal(err)
	}
	h2, m2, _ := as.CacheStats()
	if h2 != wantHits+1 || m2 != wantMisses {
		t.Errorf("restored line not resident: hits %d→%d misses %d→%d", wantHits, h2, wantMisses, m2)
	}
}

func TestSnapshotTruncatesObserversAndResetsTrialState(t *testing.T) {
	as, _, plain := snapSpace(t)
	retained := &resettingObserver{}
	as.AddAccessObserver(retained)
	snap := as.Snapshot()
	perTrial := &resettingObserver{}
	as.AddAccessObserver(perTrial)

	var buf [1]byte
	if err := as.Load(plain.Base(), buf[:]); err != nil {
		t.Fatal(err)
	}
	if retained.events != 1 || perTrial.events != 1 {
		t.Fatalf("observer events = %d/%d, want 1/1", retained.events, perTrial.events)
	}
	if _, err := snap.Restore(); err != nil {
		t.Fatal(err)
	}
	if retained.resets != 1 {
		t.Errorf("retained observer resets = %d, want 1", retained.resets)
	}
	if err := as.Load(plain.Base(), buf[:]); err != nil {
		t.Fatal(err)
	}
	if perTrial.events != 1 {
		t.Error("per-trial observer still registered after restore")
	}
	if retained.events != 2 {
		t.Errorf("retained observer events = %d, want 2", retained.events)
	}
}

type resettingObserver struct {
	events int
	resets int
}

func (o *resettingObserver) ObserveAccess(AccessEvent) { o.events++ }
func (o *resettingObserver) ResetTrial()               { o.resets++ }

func TestSnapshotSupersededRestoreFails(t *testing.T) {
	as, _, _ := snapSpace(t)
	old := as.Snapshot()
	as.Snapshot()
	if _, err := old.Restore(); err == nil {
		t.Fatal("restore of superseded snapshot succeeded")
	}
}

func TestSnapshotRejectsRegionCountChange(t *testing.T) {
	as, _, _ := snapSpace(t)
	snap := as.Snapshot()
	if _, err := as.AddRegion(RegionSpec{Name: "late", Kind: RegionOther, Size: 256}); err != nil {
		t.Fatal(err)
	}
	if _, err := snap.Restore(); err == nil {
		t.Fatal("restore succeeded after region-count change")
	}
}

func TestArenaMarkRewind(t *testing.T) {
	as, err := New(Config{PageSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	r, err := as.AddRegion(RegionSpec{Name: "heap", Kind: RegionHeap, Size: 4096})
	if err != nil {
		t.Fatal(err)
	}
	a := NewArena(r)
	first, err := a.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	mark := a.Mark()
	markUsed := r.Used()

	// Disturb the allocator: allocate, free the original, free-list churn.
	if _, err := a.Alloc(128); err != nil {
		t.Fatal(err)
	}
	if err := a.Free(first); err != nil {
		t.Fatal(err)
	}
	a.Rewind(mark)
	r.SetUsed(markUsed)

	if a.Live() != 1 {
		t.Errorf("live = %d after rewind, want 1", a.Live())
	}
	// The original block is allocated again: freeing it must work, and
	// the next alloc of its size must reuse it (free-list state rewound).
	if err := a.Free(first); err != nil {
		t.Fatalf("first block not live after rewind: %v", err)
	}
	got, err := a.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	if got != first {
		t.Errorf("alloc after rewound free = %#x, want %#x", uint64(got), uint64(first))
	}
	// Rewinding twice from the same mark works.
	a.Rewind(mark)
	if a.Live() != 1 {
		t.Errorf("live = %d after second rewind, want 1", a.Live())
	}
}

func TestStackRewind(t *testing.T) {
	as, err := New(Config{PageSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	r, err := as.AddRegion(RegionSpec{Name: "stack", Kind: RegionStack, Size: 1024})
	if err != nil {
		t.Fatal(err)
	}
	s := NewStack(r)
	if _, err := s.Push(32); err != nil {
		t.Fatal(err)
	}
	depth := s.Depth()
	if _, err := s.Push(64); err != nil {
		t.Fatal(err)
	}
	if err := s.Rewind(depth); err != nil {
		t.Fatal(err)
	}
	if s.Depth() != depth {
		t.Errorf("depth = %d, want %d", s.Depth(), depth)
	}
	if err := s.Rewind(-1); err == nil {
		t.Error("negative rewind accepted")
	}
	if err := s.Rewind(r.Size() + 1); err == nil {
		t.Error("oversized rewind accepted")
	}
}
