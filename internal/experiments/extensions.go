package experiments

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"hrmsim/internal/apps"
	"hrmsim/internal/apps/websearch"
	"hrmsim/internal/core"
	"hrmsim/internal/dram"
	"hrmsim/internal/ecc"
	"hrmsim/internal/faults"
	"hrmsim/internal/inject"
	"hrmsim/internal/lifetime"
	"hrmsim/internal/recovery"
	"hrmsim/internal/simmem"
	"hrmsim/internal/stats"
	"hrmsim/internal/textplot"
)

// ExtensionIDs lists the experiments that go beyond the paper's published
// evaluation: its §V-B aggregation discussion, its §VII future work
// (correlated faults), and ablations of the software-response machinery.
func ExtensionIDs() []string {
	return []string{"ext-aggregation", "ext-correlated", "ext-scrub", "ext-retire", "ext-cache"}
}

// runExtension dispatches extension experiments (called from Run).
func (s *Suite) runExtension(id string) (*Report, error) {
	switch id {
	case "ext-aggregation":
		return s.ExtAggregation()
	case "ext-correlated":
		return s.ExtCorrelated()
	case "ext-scrub":
		return s.ExtScrubbing()
	case "ext-retire":
		return s.ExtRetirement()
	case "ext-cache":
		return s.ExtCacheMasking()
	default:
		return nil, fmt.Errorf("experiments: unknown experiment %q (known: %v + %v)", id, IDs(), ExtensionIDs())
	}
}

// extWSConfig is a small sharded-search configuration.
func (s *Suite) extWSConfig(seed int64) websearch.Config {
	cfg := websearch.DefaultConfig(seed)
	cfg.Docs, cfg.Vocab, cfg.MinTerms, cfg.MaxTerms = 256, 128, 4, 12
	cfg.Queries, cfg.CacheSlots = 80, 32
	cfg.QuerySeed = s.scale.Seed + 7777 // shared query stream across shards
	cfg.RequestCost = 10 * time.Second
	return cfg
}

// aggEntry is one namespaced result in the aggregator.
type aggEntry struct {
	gid   uint64 // leaf<<32 | docID
	score float32
}

// aggregate merges per-leaf top-4 lists into a global top-4 digest.
func aggregate(perLeaf [][]websearch.DocScore) uint64 {
	var all []aggEntry
	for leaf, results := range perLeaf {
		for _, r := range results {
			all = append(all, aggEntry{gid: uint64(leaf)<<32 | uint64(r.ID), score: r.Score})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].score != all[j].score {
			return all[i].score > all[j].score
		}
		return all[i].gid < all[j].gid
	})
	d := apps.NewDigest()
	for k := 0; k < 4 && k < len(all); k++ {
		d.AddU64(all[k].gid)
		d.AddU32(uint32(int32(all[k].score * 1024)))
	}
	return d.Sum()
}

// ExtAggregation quantifies the paper's §V-B observation: WebSearch
// aggregates results from many index-shard servers, so an error on one
// leaf reaches the user only if that leaf's corrupted result survives
// global ranking. It measures the corrupted leaf's incorrect-response
// rate against the user-visible aggregate incorrect rate.
func (s *Suite) ExtAggregation() (*Report, error) {
	const leaves = 8
	const trials = 24
	const errorsPerTrial = 12

	// Build the healthy shard servers and record golden leaf results.
	builders := make([]*websearch.Builder, leaves)
	goldenResults := make([][][]websearch.DocScore, leaves) // [leaf][query][]
	nq := 0
	for l := 0; l < leaves; l++ {
		b, err := websearch.NewBuilder(s.extWSConfig(s.scale.Seed + int64(l)))
		if err != nil {
			return nil, err
		}
		builders[l] = b
		inst, err := b.Build()
		if err != nil {
			return nil, err
		}
		ws := inst.(*websearch.App)
		nq = ws.NumRequests()
		goldenResults[l] = make([][]websearch.DocScore, nq)
		for q := 0; q < nq; q++ {
			_, results, err := ws.ServeWithResults(q)
			if err != nil {
				return nil, fmt.Errorf("experiments: aggregation golden leaf %d: %w", l, err)
			}
			goldenResults[l][q] = results
		}
	}
	// Golden aggregates per query.
	goldenAgg := make([]uint64, nq)
	for q := 0; q < nq; q++ {
		per := make([][]websearch.DocScore, leaves)
		for l := 0; l < leaves; l++ {
			per[l] = goldenResults[l][q]
		}
		goldenAgg[q] = aggregate(per)
	}
	// Golden digests of leaf 0 (to measure leaf-level incorrectness).
	leaf0Golden := make([]uint64, nq)
	{
		inst, err := builders[0].Build()
		if err != nil {
			return nil, err
		}
		ws := inst.(*websearch.App)
		for q := 0; q < nq; q++ {
			resp, _, err := ws.ServeWithResults(q)
			if err != nil {
				return nil, err
			}
			leaf0Golden[q] = resp.Digest
		}
	}

	rng := rand.New(rand.NewSource(s.scale.Seed))
	// Queries are classified against the full taxonomy: while the
	// corrupted leaf is up, its wrong results may or may not survive
	// global ranking; once it crashes, the scale-out aggregator keeps
	// serving from the remaining shards (degraded, not incorrect — the
	// paper's §VI-C scale-out argument).
	var leafIncorrect, aggIncorrect, degradedQueries, liveQueries, totalQueries int
	for trial := 0; trial < trials; trial++ {
		inst, err := builders[0].Build()
		if err != nil {
			return nil, err
		}
		corrupted := inst.(*websearch.App)
		for e := 0; e < errorsPerTrial; e++ {
			if _, err := inject.Random(corrupted.Space(), rng, faults.SingleBitHard, nil); err != nil {
				return nil, err
			}
		}
		crashed := false
		for q := 0; q < nq; q++ {
			totalQueries++
			if crashed {
				degradedQueries++
				continue
			}
			per := make([][]websearch.DocScore, leaves)
			for l := 1; l < leaves; l++ {
				per[l] = goldenResults[l][q]
			}
			resp, results, err := corrupted.ServeWithResults(q)
			switch {
			case err != nil && apps.IsCrash(err):
				crashed = true
				degradedQueries++
				continue
			case err != nil:
				return nil, err
			}
			liveQueries++
			per[0] = results
			if resp.Digest != leaf0Golden[q] {
				leafIncorrect++
			}
			if aggregate(per) != goldenAgg[q] {
				aggIncorrect++
			}
		}
	}

	leafRate := float64(leafIncorrect) / float64(liveQueries)
	aggRate := float64(aggIncorrect) / float64(liveQueries)
	reduction := "n/a"
	if aggRate > 0 {
		reduction = fmt.Sprintf("%.1fx", leafRate/aggRate)
	}
	t := &textplot.Table{
		Title:   fmt.Sprintf("Extension: result aggregation over %d index shards (%d trials x %d hard errors on one leaf)", leaves, trials, errorsPerTrial),
		Headers: []string{"Metric", "Value"},
	}
	t.AddRow("leaf incorrect rate (leaf up)", fmt.Sprintf("%.3f%% of queries", leafRate*100))
	t.AddRow("user-visible (aggregate) incorrect rate", fmt.Sprintf("%.3f%% of queries", aggRate*100))
	t.AddRow("exposure reduction", reduction)
	t.AddRow("degraded queries (shard down, served by the rest)",
		fmt.Sprintf("%d of %d", degradedQueries, totalQueries))

	rep := &Report{ID: "ext-aggregation", Title: "Multi-server result aggregation (paper §V-B)", Text: t.Render()}
	rep.Comparisons = append(rep.Comparisons, Comparison{
		Metric:   "Aggregation lowers user-visible error exposure",
		Paper:    "\"the likelihood of the user being exposed to an error is much lower than the reported probabilities\" (§V-B, qualitative)",
		Measured: fmt.Sprintf("leaf incorrect %.3f%% vs aggregate %.3f%% (%s lower)", leafRate*100, aggRate*100, reduction),
	})
	return rep, nil
}

// ExtCorrelated injects correlated device-structure faults — whole failed
// rows, columns, banks, and chips expanded through the DRAM geometry —
// into WebSearch, the paper's §VII future work.
func (s *Suite) ExtCorrelated() (*Report, error) {
	entry, err := s.app("websearch")
	if err != nil {
		return nil, err
	}
	kinds := []dram.DomainKind{dram.DomainRow, dram.DomainColumn, dram.DomainBank, dram.DomainChip}
	trials := s.scale.Trials / 2
	if trials < 20 {
		trials = 20
	}
	rng := rand.New(rand.NewSource(s.scale.Seed))

	// Size a geometry to just cover the application's used bytes, so
	// random fault domains land on application data.
	inst0, err := entry.builder.Build()
	if err != nil {
		return nil, err
	}
	used := int64(0)
	for _, r := range inst0.Space().Regions() {
		used += int64(r.Used())
	}
	geom := dram.Geometry{Channels: 2, DIMMsPerChannel: 1, ChipsPerDIMM: 8, BanksPerDIMM: 4, LinesPerRow: 4}
	per := int64(geom.Channels) * int64(geom.DIMMsPerChannel) * int64(geom.BanksPerDIMM) * int64(geom.LinesPerRow) * dram.LineBytes
	geom.RowsPerBank = int(used/per) + 1
	if err := geom.Validate(); err != nil {
		return nil, err
	}

	var bars []textplot.Bar
	rep := &Report{ID: "ext-correlated", Title: "Correlated device-structure faults (paper §VII)"}
	singleRes, err := s.campaign("websearch", faults.SingleBitHard, 0, s.scale.Trials)
	if err != nil {
		return nil, err
	}
	singleCrash, err := singleRes.CrashProbability(0.90)
	if err != nil {
		return nil, err
	}

	for _, kind := range kinds {
		crashes, incorrect := 0, 0
		for trial := 0; trial < trials; trial++ {
			inst, err := entry.builder.Build()
			if err != nil {
				return nil, err
			}
			layout, err := inject.NewPhysLayout(inst.Space(), geom)
			if err != nil {
				return nil, err
			}
			d := geom.RandomDomain(kind, rng)
			inj, err := inject.Domain(layout, rng, d, faults.SingleBitHard, 128)
			if err != nil {
				return nil, err
			}
			if len(inj.Targets) == 0 {
				continue // the failed structure held no application data
			}
			crashed, wrong := false, false
			for q := 0; q < inst.NumRequests(); q++ {
				resp, err := inst.Serve(q)
				if err != nil {
					if !apps.IsCrash(err) {
						return nil, err
					}
					crashed = true
					break
				}
				if resp.Digest != entry.golden[q] {
					wrong = true
				}
			}
			if crashed {
				crashes++
			} else if wrong {
				incorrect++
			}
		}
		p, err := stats.WilsonInterval(crashes, trials, 0.90)
		if err != nil {
			return nil, err
		}
		bars = append(bars, textplot.Bar{
			Label: kind.String(),
			Value: p.P * 100,
			Note:  fmt.Sprintf("[%.0f%%, %.0f%%]; incorrect-only %.0f%%", p.Lo*100, p.Hi*100, float64(incorrect)/float64(trials)*100),
		})
	}
	var b strings.Builder
	b.WriteString(textplot.BarChart("Crash probability by failed structure [%]", bars, 40, false))
	fmt.Fprintf(&b, "\n(single-cell hard error baseline: %.1f%% crash)\n", singleCrash.P*100)
	rep.Text = b.String()
	rep.Comparisons = append(rep.Comparisons, Comparison{
		Metric:   "Correlated faults are more severe than single-cell faults",
		Paper:    "future work (§VII): failures correlated across banks, rows, and columns",
		Measured: fmt.Sprintf("single-cell crash %.1f%%; multi-address domain faults all higher (see chart)", singleCrash.P*100),
	})
	return rep, nil
}

// scrubCase is one scrub-interval ablation cell.
type scrubCase struct {
	label    string
	interval time.Duration // 0 = no scrubbing
}

// ExtScrubbing ablates the background scrub interval: SEC-DED-protected
// WebSearch under a soft-error storm, with crash counts per interval. It
// demonstrates why demand correction alone cannot stop error accumulation
// in read-mostly data.
func (s *Suite) ExtScrubbing() (*Report, error) {
	cfg := s.extWSConfig(s.scale.Seed)
	cfg.PrivateCodec = ecc.NewSECDED()
	cfg.HeapCodec = ecc.NewSECDED()
	cfg.StackCodec = ecc.NewSECDED()
	b, err := websearch.NewBuilder(cfg)
	if err != nil {
		return nil, err
	}
	rates := faults.RateModel{ErrorsPerMonth: 200000, SoftFraction: 1, LessTestedMultiplier: 1}
	cases := []scrubCase{
		{"no scrubbing", 0},
		{"every 60 min", 60 * time.Minute},
		{"every 10 min", 10 * time.Minute},
		{"every 1 min", time.Minute},
	}
	t := &textplot.Table{
		Title:   "Extension: scrub-interval ablation (SEC-DED WebSearch, soft-error storm, 12h)",
		Headers: []string{"Scrub interval", "Crashes", "Availability", "Corrected by scrub"},
	}
	crashesByCase := make([]int, len(cases))
	for i, c := range cases {
		// Reboots re-run Attach, so collect every instance's scrubber
		// to aggregate counters across the whole lifetime.
		var scrubbers []*recovery.PeriodicScrubber
		lcfg := lifetime.Config{
			Builder: b,
			Rates:   rates,
			Horizon: 12 * time.Hour,
			Seed:    s.scale.Seed,
		}
		if c.interval > 0 {
			interval := c.interval
			lcfg.Attach = func(app apps.App) error {
				sc, err := recovery.NewPeriodicScrubber(interval, app.Space().Regions()...)
				if err != nil {
					return err
				}
				scrubbers = append(scrubbers, sc)
				app.Space().AddAccessObserver(sc)
				return nil
			}
		}
		res, err := lifetime.Simulate(lcfg)
		if err != nil {
			return nil, err
		}
		corrected := 0
		for _, sc := range scrubbers {
			corrected += sc.Corrected
		}
		crashesByCase[i] = res.Crashes
		t.AddRow(c.label, fmt.Sprintf("%d", res.Crashes),
			fmt.Sprintf("%.3f%%", res.Availability*100), fmt.Sprintf("%d", corrected))
	}
	rep := &Report{ID: "ext-scrub", Title: "Scrubbing ablation", Text: t.Render()}
	rep.Comparisons = append(rep.Comparisons, Comparison{
		Metric:   "Scrubbing prevents single-bit accumulation from defeating SEC-DED",
		Paper:    "implied by §II-A / field studies the paper builds on",
		Measured: fmt.Sprintf("crashes over 12h: %d (none) -> %d (60m) -> %d (10m) -> %d (1m)", crashesByCase[0], crashesByCase[1], crashesByCase[2], crashesByCase[3]),
	})
	return rep, nil
}

// ExtRetirement ablates the page-retirement threshold under a hard-error
// storm: patrol scrubbing detects recurring corrections and replaces the
// offending frames, clearing stuck-at cells before they pair up into
// uncorrectable words (the paper's §II-A retirement discussion).
func (s *Suite) ExtRetirement() (*Report, error) {
	cfg := s.extWSConfig(s.scale.Seed + 1)
	cfg.PrivateCodec = ecc.NewSECDED()
	b, err := websearch.NewBuilder(cfg)
	if err != nil {
		return nil, err
	}
	rates := faults.RateModel{ErrorsPerMonth: 60000, SoftFraction: 0, LessTestedMultiplier: 1}
	thresholds := []uint64{0, 8, 2}
	t := &textplot.Table{
		Title:   "Extension: page-retirement threshold ablation (SEC-DED index, hard-error storm, 12h, 10-min patrol scrub)",
		Headers: []string{"Retire threshold", "Crashes", "Pages retired", "Availability"},
	}
	crashesByCase := make([]int, len(thresholds))
	for i, th := range thresholds {
		var scrubbers []*recovery.PeriodicScrubber
		threshold := th
		res, err := lifetime.Simulate(lifetime.Config{
			Builder: b,
			Rates:   rates,
			Horizon: 12 * time.Hour,
			Seed:    s.scale.Seed,
			Attach: func(app apps.App) error {
				priv := app.Space().RegionByName("private")
				sc, err := recovery.NewPeriodicScrubber(10*time.Minute, priv)
				if err != nil {
					return err
				}
				sc.RetireThreshold = threshold
				scrubbers = append(scrubbers, sc)
				app.Space().AddAccessObserver(sc)
				return nil
			},
		})
		if err != nil {
			return nil, err
		}
		label := fmt.Sprintf("%d corrections", th)
		if th == 0 {
			label = "off"
		}
		retired := 0
		for _, sc := range scrubbers {
			retired += sc.Retired
		}
		crashesByCase[i] = res.Crashes
		t.AddRow(label, fmt.Sprintf("%d", res.Crashes),
			fmt.Sprintf("%d", retired), fmt.Sprintf("%.3f%%", res.Availability*100))
	}
	rep := &Report{ID: "ext-retire", Title: "Page-retirement ablation", Text: t.Render()}
	rep.Comparisons = append(rep.Comparisons, Comparison{
		Metric:   "Retirement clears recurring hard faults before they accumulate",
		Paper:    "OS page retirement eliminates up to 96.8% of detected errors (§II / [15,22,38])",
		Measured: fmt.Sprintf("crashes over 12h: %d (off) -> %d (threshold 8) -> %d (threshold 2)", crashesByCase[0], crashesByCase[1], crashesByCase[2]),
	})
	return rep, nil
}

// ExtCacheMasking ablates the CPU cache model: the paper notes its
// debugger-based injection is conservative because real processor caches
// delay error visibility. With the write-back cache model enabled, errors
// under hot cached lines are served clean (and dirty write-backs
// overwrite them), so measured vulnerability drops.
func (s *Suite) ExtCacheMasking() (*Report, error) {
	trials := s.scale.Trials
	run := func(cacheLines int, spec faults.Spec, kind simmem.RegionKind) (*core.CampaignResult, error) {
		cfg := s.extWSConfig(s.scale.Seed + 2)
		cfg.CacheLines = cacheLines
		b, err := websearch.NewBuilder(cfg)
		if err != nil {
			return nil, err
		}
		ccfg := core.CampaignConfig{
			Builder: b, Spec: spec, Trials: trials, Seed: s.scale.Seed,
			Parallelism: s.scale.Parallelism,
			Progress:    s.scale.Progress,
			// Inject mid-run: caches only shield errors that arrive
			// under already-hot lines, which is the realistic case for
			// a continuously serving node.
			Warmup: b.Config().Queries / 2,
		}
		if kind != 0 {
			k := kind
			ccfg.Filter = func(r *simmem.Region) bool { return r.Kind() == k }
		}
		return core.Run(ccfg)
	}

	t := &textplot.Table{
		Title:   fmt.Sprintf("Extension: CPU-cache masking ablation (WebSearch, hard stack errors, %d trials)", trials),
		Headers: []string{"Cache model", "Crash prob", "Tolerated", "Incorrect/B"},
	}
	var crashOff, crashOn float64
	for _, cacheLines := range []int{0, 64} {
		res, err := run(cacheLines, faults.SingleBitHard, simmem.RegionStack)
		if err != nil {
			return nil, err
		}
		crash, err := res.CrashProbability(0.90)
		if err != nil {
			return nil, err
		}
		tol, err := res.ToleratedProbability(0.90)
		if err != nil {
			return nil, err
		}
		mean, _ := res.IncorrectPerBillion()
		label := "off (paper's conservative setting)"
		if cacheLines > 0 {
			label = fmt.Sprintf("%d-line write-back", cacheLines)
			crashOn = crash.P
		} else {
			crashOff = crash.P
		}
		t.AddRow(label,
			fmt.Sprintf("%.1f%%", crash.P*100),
			fmt.Sprintf("%.1f%%", tol.P*100),
			fmt.Sprintf("%.3g", mean))
	}
	rep := &Report{ID: "ext-cache", Title: "CPU-cache masking ablation", Text: t.Render()}
	rep.Comparisons = append(rep.Comparisons, Comparison{
		Metric:   "Injection without a cache model is conservative",
		Paper:    "\"our methodology provides a more conservative estimate of application memory error tolerance\" (§IV-A)",
		Measured: fmt.Sprintf("stack hard-error crash prob %.1f%% without cache vs %.1f%% with a write-back cache", crashOff*100, crashOn*100),
	})
	return rep, nil
}
