// Package chaos is the live-traffic chaos harness: it runs a kvserve node
// under a concurrent client load while injecting memory errors into the
// serving address space, probes service-level signals on a cadence, and
// renders a litmus-style steady-state verdict.
//
// The experiment lifecycle follows the chaos-engineering shape popularized
// by tools like litmus: a *steady* phase establishes the healthy baseline,
// a *chaos* phase applies the fault schedule while traffic continues, and
// a *recovery* phase watches the system (ECC correction, Par+R restores,
// page retirement) bring the service back within its objectives. Each
// declared SLO — p50/p99 latency, error rate, wrong-value rate, recovery
// activity — is evaluated per phase over the probe samples bracketing that
// phase, and the per-SLO Pass/Fail grid plus the overall verdict is
// serialized into a schema-versioned JSON envelope by `hrmsim chaos`.
//
// The harness talks to the node exclusively through the kvserve TCP
// protocol (internal/kvnode), so the same experiment runs against an
// in-process self-hosted node or an external `kvserve` process (`hrmsim
// chaos -attach`). Fault injection lands between protocol commands, never
// mid-access: a LocalInjector takes the address-space exclusion gate
// (simmem.AddressSpace.Exclusive) for each flip, and a RemoteInjector uses
// the node's own `inject` command, which is serialized by the server the
// same way.
package chaos

import (
	"fmt"
	"math"

	"hrmsim/internal/obsv"
)

// Phase names of the experiment lifecycle, in order.
const (
	PhaseSteady   = "steady"
	PhaseChaos    = "chaos"
	PhaseRecovery = "recovery"
)

// AllPhases lists the lifecycle phases in execution order.
var AllPhases = []string{PhaseSteady, PhaseChaos, PhaseRecovery}

// Signal names an SLO can be declared over. Latency percentiles come from
// the kvload_op_latency_us histogram window; rates are ratios of kvload
// counter deltas; recovery signals are server-side stat deltas.
const (
	SignalP50LatencyUs   = "p50_latency_us"
	SignalP99LatencyUs   = "p99_latency_us"
	SignalErrorRate      = "error_rate"       // errors / ops
	SignalWrongValueRate = "wrong_value_rate" // wrong values / gets
	SignalTimeoutRate    = "timeout_rate"     // timeouts / ops
	SignalRecoveries     = "recoveries"       // MC-handler repairs (delta)
	SignalRetiredPages   = "retired_pages"    // page frames retired (delta)
)

// Comparison is the direction an SLO bounds its signal.
type Comparison string

const (
	// Max passes when observed <= threshold (latency, error rates).
	Max Comparison = "max"
	// Min passes when observed >= threshold (recovery activity).
	Min Comparison = "min"
)

// SLO is one declared service-level objective: a bound on a signal,
// evaluated independently in each phase it applies to.
type SLO struct {
	// Name labels the objective in the verdict ("p99-latency").
	Name string `json:"name"`
	// Signal is one of the Signal* constants.
	Signal string `json:"signal"`
	// Comparison is Max (observed <= threshold) or Min (>=).
	Comparison Comparison `json:"comparison"`
	Threshold  float64    `json:"threshold"`
	// Phases restricts evaluation to the named phases; empty means all.
	Phases []string `json:"phases,omitempty"`
}

func (s SLO) validate() error {
	if s.Name == "" {
		return fmt.Errorf("chaos: SLO with empty name")
	}
	switch s.Signal {
	case SignalP50LatencyUs, SignalP99LatencyUs, SignalErrorRate,
		SignalWrongValueRate, SignalTimeoutRate, SignalRecoveries, SignalRetiredPages:
	default:
		return fmt.Errorf("chaos: SLO %s: unknown signal %q", s.Name, s.Signal)
	}
	if s.Comparison != Max && s.Comparison != Min {
		return fmt.Errorf("chaos: SLO %s: comparison must be max or min", s.Name)
	}
	for _, p := range s.Phases {
		if p != PhaseSteady && p != PhaseChaos && p != PhaseRecovery {
			return fmt.Errorf("chaos: SLO %s: unknown phase %q", s.Name, p)
		}
	}
	return nil
}

// appliesTo reports whether the SLO is evaluated in the named phase.
func (s SLO) appliesTo(phase string) bool {
	if len(s.Phases) == 0 {
		return true
	}
	for _, p := range s.Phases {
		if p == phase {
			return true
		}
	}
	return false
}

// DefaultSLOs is the stock objective set used by `hrmsim chaos` when no
// custom thresholds are given: the service must stay fast, must not error,
// must never serve a wrong value, and (when a recovery technique is
// configured) must show recovery activity while under chaos.
func DefaultSLOs(p50Us, p99Us float64, expectRecovery bool) []SLO {
	slos := []SLO{
		{Name: "p50-latency", Signal: SignalP50LatencyUs, Comparison: Max, Threshold: p50Us},
		{Name: "p99-latency", Signal: SignalP99LatencyUs, Comparison: Max, Threshold: p99Us},
		{Name: "error-rate", Signal: SignalErrorRate, Comparison: Max, Threshold: 0},
		{Name: "no-wrong-values", Signal: SignalWrongValueRate, Comparison: Max, Threshold: 0},
	}
	if expectRecovery {
		// Detection happens at read time, so online repairs land in the
		// chaos window (the verification read right after each
		// injection); the recovery phase then shows the repaired node
		// meeting its objectives again.
		slos = append(slos, SLO{
			Name: "recovery-active", Signal: SignalRecoveries, Comparison: Min,
			Threshold: 1, Phases: []string{PhaseChaos},
		})
	}
	return slos
}

// Percentile computes the q-quantile (0 < q <= 1) of the histogram window
// between two snapshots of the same histogram, by linear interpolation
// within the containing bucket. A zero-value start snapshot means "from
// the beginning". The second return is false when the window is empty or
// the quantile falls in the +Inf overflow bucket (beyond the histogram's
// finite bounds).
func Percentile(start, end obsv.HistogramSnapshot, q float64) (float64, bool) {
	n := end.Count - start.Count
	if n <= 0 || len(end.Bounds) == 0 ||
		(len(start.Counts) != 0 && len(start.Counts) != len(end.Counts)) {
		return 0, false
	}
	target := q * float64(n)
	if target < 1 {
		target = 1
	}
	cum, lower := 0.0, 0.0
	for i, bound := range end.Bounds {
		c := float64(end.Counts[i])
		if len(start.Counts) != 0 {
			c -= float64(start.Counts[i])
		}
		if c > 0 && cum+c >= target {
			frac := (target - cum) / c
			return lower + frac*(bound-lower), true
		}
		cum += c
		lower = bound
	}
	return math.Inf(1), false
}
