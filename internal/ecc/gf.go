// Package ecc implements executable memory error detection and correction
// codes — the hardware-technique axis of the paper's design space (Table 1
// and Table 4). Each technique is a simmem.Codec: stores encode check bits,
// loads decode and correct, and uncorrectable patterns surface as machine
// checks, so the protection actually runs against injected errors instead
// of being modelled by a formula.
//
// Implemented techniques:
//
//   - Parity: one even-parity bit per 64-bit word (detect-only).
//   - SEC-DED: extended Hamming (72,64) — corrects 1 bit, detects 2.
//   - DEC-TED: shortened binary BCH over GF(2^7) plus overall parity —
//     corrects 2 bits, detects 3, 15 check bits per 64 (23.4%).
//   - Chipkill: Reed–Solomon (18,16) over GF(2^8) — corrects any single
//     8-bit symbol (chip) per 128-bit word at 12.5% overhead.
//   - RAIM: Reed–Solomon (20,16) over GF(2^8) — corrects up to two
//     symbols, approximating module-level redundancy.
//   - Mirroring: SEC-DED plus a full mirrored copy (125% overhead).
package ecc

import "fmt"

// gf is a binary extension field GF(2^m) with exp/log tables.
type gf struct {
	m    uint   // extension degree
	n    int    // field size minus one (2^m - 1)
	poly uint16 // primitive polynomial (with the x^m term)
	exp  []byte
	log  []int
}

// newGF builds the tables for GF(2^m) using the given primitive polynomial.
func newGF(m uint, poly uint16) *gf {
	n := (1 << m) - 1
	f := &gf{m: m, n: n, poly: poly, exp: make([]byte, 2*n), log: make([]int, n+1)}
	x := 1
	for i := 0; i < n; i++ {
		f.exp[i] = byte(x)
		f.exp[i+n] = byte(x) // duplicated so mul avoids a mod
		f.log[x] = i
		x <<= 1
		if x>>(m) != 0 {
			x ^= int(poly)
		}
	}
	f.log[0] = -1
	return f
}

// gf128 is GF(2^7) with primitive polynomial x^7 + x^3 + 1, used by the
// DEC-TED BCH code.
var gf128 = newGF(7, 0x89)

// gf256 is GF(2^8) with primitive polynomial x^8 + x^4 + x^3 + x^2 + 1,
// used by the Reed–Solomon symbol codes.
var gf256 = newGF(8, 0x11d)

// mul multiplies two field elements.
func (f *gf) mul(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return f.exp[f.log[a]+f.log[b]]
}

// div divides a by b (b must be nonzero).
func (f *gf) div(a, b byte) byte {
	if b == 0 {
		panic("ecc: division by zero in GF")
	}
	if a == 0 {
		return 0
	}
	d := f.log[a] - f.log[b]
	if d < 0 {
		d += f.n
	}
	return f.exp[d]
}

// inv returns the multiplicative inverse of a (a must be nonzero).
func (f *gf) inv(a byte) byte {
	return f.div(1, a)
}

// pow returns a^k for k >= 0.
func (f *gf) pow(a byte, k int) byte {
	if a == 0 {
		if k == 0 {
			return 1
		}
		return 0
	}
	e := (f.log[a] * k) % f.n
	if e < 0 {
		e += f.n
	}
	return f.exp[e]
}

// alphaPow returns α^k where α is the primitive element, for any integer k.
func (f *gf) alphaPow(k int) byte {
	e := k % f.n
	if e < 0 {
		e += f.n
	}
	return f.exp[e]
}

// logOf returns log_α(a); a must be nonzero.
func (f *gf) logOf(a byte) int {
	if a == 0 {
		panic("ecc: log of zero in GF")
	}
	return f.log[a]
}

// polyMulGF2 multiplies two polynomials with GF(2) coefficients packed as
// bit masks (bit i = coefficient of x^i).
func polyMulGF2(a, b uint64) uint64 {
	var out uint64
	for i := 0; b != 0; i++ {
		if b&1 != 0 {
			out ^= a << i
		}
		b >>= 1
	}
	return out
}

// minimalPolyGF2 computes the minimal polynomial over GF(2) of α^k in f,
// returned as a packed bit mask. It multiplies (x − α^(k·2^i)) over the
// conjugacy class of α^k.
func minimalPolyGF2(f *gf, k int) uint64 {
	// Collect the conjugacy class exponents.
	seen := map[int]bool{}
	var class []int
	e := k % f.n
	for !seen[e] {
		seen[e] = true
		class = append(class, e)
		e = (e * 2) % f.n
	}
	// Multiply (x + α^e) terms with GF(2^m) coefficients, then verify the
	// result has GF(2) coefficients.
	coeffs := []byte{1} // constant polynomial 1
	for _, e := range class {
		root := f.alphaPow(e)
		next := make([]byte, len(coeffs)+1)
		for i, c := range coeffs {
			next[i+1] ^= c            // c * x
			next[i] ^= f.mul(c, root) // c * root
		}
		coeffs = next
	}
	var mask uint64
	for i, c := range coeffs {
		switch c {
		case 0:
		case 1:
			mask |= 1 << i
		default:
			panic(fmt.Sprintf("ecc: minimal polynomial has non-binary coefficient %d", c))
		}
	}
	return mask
}
