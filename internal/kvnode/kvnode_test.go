package kvnode

import (
	"bufio"
	"context"
	"encoding/hex"
	"fmt"
	"math/rand"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"hrmsim/internal/faults"
	"hrmsim/internal/inject"
	"hrmsim/internal/trace"
)

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.Keys == 0 {
		cfg.Keys = 64
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

func TestDispatchGetSet(t *testing.T) {
	srv := newTestServer(t, Config{})

	resp := srv.Dispatch("get 5")
	if !strings.HasPrefix(resp, "VALUE 0 ") {
		t.Fatalf("get: %q", resp)
	}
	wantVal := hex.EncodeToString(trace.ValueFor(5, 0, 64))
	if !strings.HasSuffix(resp, wantVal) {
		t.Errorf("get returned wrong bytes: %q", resp)
	}

	if resp := srv.Dispatch("set 5 3"); resp != "STORED" {
		t.Fatalf("set: %q", resp)
	}
	resp = srv.Dispatch("get 5")
	if !strings.HasPrefix(resp, "VALUE 3 ") {
		t.Errorf("get after set: %q", resp)
	}

	if resp := srv.Dispatch("get 9999"); resp != "MISS" {
		t.Errorf("missing key: %q", resp)
	}
}

func TestDispatchInjectAndStats(t *testing.T) {
	srv := newTestServer(t, Config{})
	resp := srv.Dispatch("inject soft")
	if !strings.HasPrefix(resp, "INJECTED ") {
		t.Fatalf("inject: %q", resp)
	}
	resp = srv.Dispatch("stats")
	for _, want := range []string{"injected=1", "vnow_ms=", "conns=0", "recovered=0"} {
		if !strings.Contains(resp, want) {
			t.Errorf("stats missing %q: %q", want, resp)
		}
	}
}

func TestDispatchClientErrors(t *testing.T) {
	srv := newTestServer(t, Config{})
	for _, cmd := range []string{
		"", "   ", "get", "get abc", "get -1", "set 1", "set a b",
		"set 1 99999999999999", "inject", "inject gamma", "frobnicate",
	} {
		if resp := srv.Dispatch(cmd); !strings.HasPrefix(resp, "CLIENT_ERROR") {
			t.Errorf("%q: %q", cmd, resp)
		}
	}
	if got := srv.Registry().Snapshot().Counters["kvserve_client_errors_total"]; got != 11 {
		t.Errorf("client_errors_total = %d, want 11", got)
	}
}

func TestECCServerCorrectsInjectedErrors(t *testing.T) {
	srv := newTestServer(t, Config{ECC: "secded"})
	before := srv.Dispatch("get 7")
	// Inject a burst of soft errors; SEC-DED should keep every value
	// intact.
	for i := 0; i < 50; i++ {
		if resp := srv.Dispatch("inject soft"); !strings.HasPrefix(resp, "INJECTED") {
			t.Fatalf("inject %d: %q", i, resp)
		}
	}
	after := srv.Dispatch("get 7")
	if before != after {
		t.Errorf("value changed despite SEC-DED:\n%q\n%q", before, after)
	}
	stats := srv.Dispatch("stats")
	if !strings.Contains(stats, "injected=50") {
		t.Errorf("stats: %q", stats)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{ECC: "rot13"}); err == nil {
		t.Error("unknown ecc accepted")
	}
	if _, err := New(Config{Recover: "pray"}); err == nil {
		t.Error("unknown recovery accepted")
	}
	if _, err := New(Config{CheckpointEvery: time.Minute}); err == nil {
		t.Error("checkpoint without recovery accepted")
	}
	for _, name := range []string{"none", "parity", "secded", "chipkill"} {
		if _, err := New(Config{Keys: 16, ECC: name, Seed: 1}); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	for _, name := range []string{"parr", "parr-page", "parr-escalate", "retire"} {
		if _, err := New(Config{Keys: 16, ECC: "parity", Seed: 1, Recover: name}); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

// TestParRRecoversUnderProtocol pins the online-recovery path: a parity
// server with Par+R serves the correct value after its bytes are
// corrupted — the parity detection raises an MC event and the handler
// restores the word from the backing checkpoint instead of crashing.
func TestParRRecoversUnderProtocol(t *testing.T) {
	srv := newTestServer(t, Config{ECC: "parity", Recover: "parr"})
	want := srv.Dispatch("get 3")

	addr, err := srv.App().ValueAddr(3)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Space().FlipBit(addr, 5); err != nil {
		t.Fatal(err)
	}

	if got := srv.Dispatch("get 3"); got != want {
		t.Errorf("Par+R did not restore the value:\nwant %q\ngot  %q", want, got)
	}
	st := srv.Stats()
	if st.Recovered == 0 {
		t.Errorf("stats recovered = 0 after Par+R repair: %+v", st)
	}
}

// dialTestServer starts Serve on a loopback listener and returns its
// address plus a cancel that triggers graceful drain.
func dialTestServer(t *testing.T, srv *Server) (addr string, cancel func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, stop := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ctx, ln) }()
	t.Cleanup(func() {
		stop()
		if err := <-done; err != nil {
			t.Errorf("Serve: %v", err)
		}
	})
	return ln.Addr().String(), stop
}

type protoConn struct {
	t    *testing.T
	conn net.Conn
	r    *bufio.Scanner
}

func dialProto(t *testing.T, addr string) *protoConn {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	// A protocol regression must fail the test, not hang it.
	_ = conn.SetDeadline(time.Now().Add(30 * time.Second))
	t.Cleanup(func() { _ = conn.Close() })
	return &protoConn{t: t, conn: conn, r: bufio.NewScanner(conn)}
}

// quit sends the command that closes the connection server-side; no
// response line is expected.
func (c *protoConn) quit() {
	c.t.Helper()
	if _, err := fmt.Fprintln(c.conn, "quit"); err != nil {
		c.t.Fatal(err)
	}
}

func (c *protoConn) send(cmd string) string {
	c.t.Helper()
	if _, err := fmt.Fprintf(c.conn, "%s\n", cmd); err != nil {
		c.t.Fatal(err)
	}
	if !c.r.Scan() {
		c.t.Fatalf("no response to %q: %v", cmd, c.r.Err())
	}
	return c.r.Text()
}

func TestProtocolEdgeCasesOverConnection(t *testing.T) {
	srv := newTestServer(t, Config{MaxLine: 128})
	addr, _ := dialTestServer(t, srv)
	c := dialProto(t, addr)

	if resp := c.send(""); resp != "CLIENT_ERROR empty command" {
		t.Errorf("empty line: %q", resp)
	}
	if resp := c.send("zz 1"); resp != "CLIENT_ERROR unknown command" {
		t.Errorf("unknown verb: %q", resp)
	}
	if resp := c.send("get 0x10"); resp != "CLIENT_ERROR bad key" {
		t.Errorf("bad hex key: %q", resp)
	}
	if resp := c.send("get 1"); !strings.HasPrefix(resp, "VALUE ") {
		t.Errorf("get: %q", resp)
	}

	// An oversized line must be answered and the connection closed, not
	// silently dropped.
	if resp := c.send("get " + strings.Repeat("9", 200)); !strings.HasPrefix(resp, "CLIENT_ERROR line exceeds") {
		t.Errorf("long line: %q", resp)
	}
	if c.r.Scan() {
		t.Errorf("connection still open after oversized line: %q", c.r.Text())
	}
}

// TestTornLineAtEOF half-closes the write side after a command with no
// trailing newline: the server must still serve the torn final line.
func TestTornLineAtEOF(t *testing.T) {
	srv := newTestServer(t, Config{})
	addr, _ := dialTestServer(t, srv)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = conn.Close() }()
	if _, err := conn.Write([]byte("get 2")); err != nil { // no \n
		t.Fatal(err)
	}
	if err := conn.(*net.TCPConn).CloseWrite(); err != nil {
		t.Fatal(err)
	}
	r := bufio.NewScanner(conn)
	if !r.Scan() {
		t.Fatalf("no response to torn line: %v", r.Err())
	}
	if !strings.HasPrefix(r.Text(), "VALUE ") {
		t.Errorf("torn line: %q", r.Text())
	}
}

// TestConcurrentConnectionsWithInjection is the race-detector pin for the
// chaos seam: many client goroutines hammer the server over TCP while an
// injector goroutine corrupts the shared address space under the gate.
func TestConcurrentConnectionsWithInjection(t *testing.T) {
	srv := newTestServer(t, Config{Keys: 128, ECC: "secded"})
	addr, _ := dialTestServer(t, srv)

	const clients, opsPer = 8, 60
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := dialProto(t, addr)
			rng := rand.New(rand.NewSource(int64(i)))
			for j := 0; j < opsPer; j++ {
				key := rng.Intn(128)
				var resp string
				if rng.Float64() < 0.9 {
					resp = c.send(fmt.Sprintf("get %d", key))
				} else {
					resp = c.send(fmt.Sprintf("set %d %d", key, j))
				}
				if strings.HasPrefix(resp, "CLIENT_ERROR") {
					t.Errorf("client %d: %q", i, resp)
					return
				}
			}
			c.quit()
		}(i)
	}
	// Concurrent direct injection through the gate (the chaos harness
	// path), interleaved with protocol-driven injection.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(99))
		for i := 0; i < 50; i++ {
			err := srv.Space().Exclusive(func() error {
				_, err := inject.Random(srv.Space(), rng, faults.SingleBitSoft, nil)
				return err
			})
			if err != nil {
				t.Errorf("inject %d: %v", i, err)
				return
			}
		}
	}()
	c := dialProto(t, addr)
	for i := 0; i < 20; i++ {
		if resp := c.send("inject soft"); !strings.HasPrefix(resp, "INJECTED") {
			t.Errorf("protocol inject: %q", resp)
		}
		c.send("stats")
	}
	wg.Wait()

	snap := srv.Registry().Snapshot()
	if got := snap.Counters["kvserve_ops_total"]; got != clients*opsPer {
		t.Errorf("kvserve_ops_total = %d, want %d", got, clients*opsPer)
	}
	if got := snap.Counters["kvserve_connections_total"]; got != clients+1 {
		t.Errorf("kvserve_connections_total = %d, want %d", got, clients+1)
	}
}

// TestGracefulDrain cancels Serve while connections are open and checks
// the open-connection gauge returns to zero (force-close path included).
func TestGracefulDrain(t *testing.T) {
	srv := newTestServer(t, Config{DrainTimeout: 50 * time.Millisecond})
	addr, cancel := dialTestServer(t, srv)
	c := dialProto(t, addr)
	if resp := c.send("get 1"); !strings.HasPrefix(resp, "VALUE") {
		t.Fatalf("get: %q", resp)
	}
	// Leave the connection idle (blocked in the server's Scan) and shut
	// down: the drain must force-close it after DrainTimeout.
	cancel()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if srv.Registry().Snapshot().Gauges["kvserve_conns_open"] == 0 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Error("connections not drained")
}
