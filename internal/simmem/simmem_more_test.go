package simmem

import (
	"bytes"
	"testing"
)

func TestCountersTrackAccesses(t *testing.T) {
	as := newTestAS(t)
	heap := as.RegionByName("heap")
	for i := 0; i < 5; i++ {
		if err := as.StoreU8(heap.Base()+Addr(i), byte(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		if _, err := as.LoadU8(heap.Base() + Addr(i)); err != nil {
			t.Fatal(err)
		}
	}
	c := as.Counters()
	if c.Stores != 5 || c.Loads != 3 {
		t.Errorf("counters = %+v", c)
	}
}

func TestRegionAccessors(t *testing.T) {
	as := newTestAS(t)
	r := as.RegionByName("private")
	if r.PageCount() != r.Size()/as.PageSize() {
		t.Errorf("PageCount = %d", r.PageCount())
	}
	if r.PageAddr(1) != r.Base()+Addr(as.PageSize()) {
		t.Error("PageAddr wrong")
	}
	if r.PageIndex(r.Base()+Addr(as.PageSize()+3)) != 1 {
		t.Error("PageIndex wrong")
	}
	if !r.Backed() || as.RegionByName("heap").Backed() {
		t.Error("Backed flags wrong")
	}
}

func TestScrubPageBounds(t *testing.T) {
	as := newTestAS(t)
	r := as.RegionByName("heap")
	if _, _, err := r.ScrubPage(-1, false); err == nil {
		t.Error("negative page accepted")
	}
	if _, _, err := r.ScrubPage(r.PageCount(), false); err == nil {
		t.Error("out-of-range page accepted")
	}
	// Unprotected scrub reports zeroes.
	c, u, err := r.ScrubPage(0, true)
	if err != nil || c != 0 || u != 0 {
		t.Errorf("unprotected scrub: %d/%d/%v", c, u, err)
	}
}

func TestWriteRawAcrossRegionsFails(t *testing.T) {
	as := newTestAS(t)
	priv := as.RegionByName("private")
	// A raw write running past the region end must fault, not bleed
	// into the guard gap.
	err := as.WriteRaw(priv.Base()+Addr(priv.Size()-2), []byte{1, 2, 3, 4})
	if !IsFault(err) {
		t.Errorf("err = %v, want fault", err)
	}
}

func TestLoadZeroBytes(t *testing.T) {
	as := newTestAS(t)
	heap := as.RegionByName("heap")
	if err := as.Load(heap.Base(), nil); err != nil {
		t.Errorf("zero-length load: %v", err)
	}
	if err := as.Store(heap.Base(), nil); err != nil {
		t.Errorf("zero-length store: %v", err)
	}
}

func TestBackingBytesIsACopy(t *testing.T) {
	as := newTestAS(t)
	priv := as.RegionByName("private")
	if err := as.Store(priv.Base(), []byte{1, 2, 3}); err == nil {
		// private region in newTestAS is writable; fine either way
		_ = err
	}
	if err := as.WriteRaw(priv.Base(), []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if err := priv.FlushAll(); err != nil {
		t.Fatal(err)
	}
	b, err := priv.BackingBytes(priv.Base(), 3)
	if err != nil {
		t.Fatal(err)
	}
	b[0] = 99 // mutating the copy must not corrupt the backing store
	b2, err := priv.BackingBytes(priv.Base(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b2, []byte{1, 2, 3}) {
		t.Error("BackingBytes returned a live reference")
	}
}
