package obsv

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// WriteText renders the snapshot in the expvar-style plain-text exposition
// format documented in OBSERVABILITY.md: one `name value` line per counter
// and gauge, and for each histogram a cumulative `name_bucket{le="..."}`
// series (Prometheus convention, ending at le="+Inf") followed by
// `name_sum` and `name_count`. Lines are sorted by metric name, so equal
// snapshots encode to equal bytes.
func (s Snapshot) WriteText(w io.Writer) error {
	for _, name := range sortedKeys(s.Counters) {
		if _, err := fmt.Fprintf(w, "%s %d\n", name, s.Counters[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Gauges) {
		if _, err := fmt.Fprintf(w, "%s %s\n", name, formatFloat(s.Gauges[name])); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Histograms) {
		h := s.Histograms[name]
		var cum int64
		for i, c := range h.Counts {
			cum += c
			le := "+Inf"
			if i < len(h.Bounds) {
				le = formatFloat(h.Bounds[i])
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, le, cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n",
			name, formatFloat(h.Sum), name, h.Count); err != nil {
			return err
		}
	}
	return nil
}

// MarshalJSONIndent renders the snapshot as indented JSON. Go's
// encoding/json sorts map keys, so this too is deterministic.
func (s Snapshot) MarshalJSONIndent() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// formatFloat renders a float with the shortest round-trip representation.
func formatFloat(x float64) string {
	return strconv.FormatFloat(x, 'g', -1, 64)
}

// sortedKeys returns the map's keys in sorted order.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
