package experiments

import (
	"strings"
	"testing"
)

func TestExtensionIDsDispatch(t *testing.T) {
	s := getSuite(t)
	if _, err := s.Run("ext-nope"); err == nil {
		t.Error("unknown extension accepted")
	}
	if len(ExtensionIDs()) != 5 {
		t.Errorf("got %d extension IDs", len(ExtensionIDs()))
	}
	_ = s
}

func TestExtAggregationReducesExposure(t *testing.T) {
	s := getSuite(t)
	rep, err := s.Run("ext-aggregation")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep.Text, "exposure reduction") {
		t.Errorf("missing metrics:\n%s", rep.Text)
	}
	if len(rep.Comparisons) == 0 {
		t.Fatal("no comparison recorded")
	}
}

func TestExtCorrelatedMoreSevere(t *testing.T) {
	s := getSuite(t)
	rep, err := s.Run("ext-correlated")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"row", "column", "bank", "chip"} {
		if !strings.Contains(rep.Text, want) {
			t.Errorf("missing %q domain:\n%s", want, rep.Text)
		}
	}
}

func TestExtScrubbingMonotone(t *testing.T) {
	s := getSuite(t)
	rep, err := s.Run("ext-scrub")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep.Text, "no scrubbing") || !strings.Contains(rep.Text, "every 1 min") {
		t.Errorf("missing cases:\n%s", rep.Text)
	}
}

func TestExtRetirement(t *testing.T) {
	s := getSuite(t)
	rep, err := s.Run("ext-retire")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep.Text, "Pages retired") {
		t.Errorf("missing retirement column:\n%s", rep.Text)
	}
}
