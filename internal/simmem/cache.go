package simmem

import "fmt"

// CacheLineBytes is the processor cache line size of the optional cache
// model.
const CacheLineBytes = 64

// cacheLine is one direct-mapped line.
type cacheLine struct {
	base  Addr // first address covered; valid only when set
	valid bool
	dirty bool
	data  [CacheLineBytes]byte
}

// cache is a direct-mapped write-back write-allocate cache sitting in
// front of the memory path. The paper notes its debugger-based injection
// is conservative precisely because real caches delay error visibility:
// a cached line keeps serving clean data after memory under it is
// corrupted, and dirty write-backs overwrite (mask) errors. Enabling the
// cache model reproduces that effect; the default is off, matching the
// paper's conservative methodology.
type cache struct {
	lines                    []cacheLine
	hits, misses, writeBacks uint64
}

// cacheIndex maps an address to its line slot.
func (c *cache) index(lineBase Addr) int {
	return int(uint64(lineBase) / CacheLineBytes % uint64(len(c.lines)))
}

// EnableCache activates the cache model with the given number of lines.
// It must be called before any cached accesses; the page size must be at
// least one cache line so lines never straddle a region boundary.
func (as *AddressSpace) EnableCache(lines int) error {
	if lines <= 0 {
		return fmt.Errorf("simmem: cache lines must be positive, got %d", lines)
	}
	if as.pageSize < CacheLineBytes {
		return fmt.Errorf("simmem: cache model requires page size >= %d, have %d",
			CacheLineBytes, as.pageSize)
	}
	as.cache = &cache{lines: make([]cacheLine, lines)}
	return nil
}

// CacheStats reports cache model counters (zero when disabled).
func (as *AddressSpace) CacheStats() (hits, misses, writeBacks uint64) {
	if as.cache == nil {
		return 0, 0, 0
	}
	return as.cache.hits, as.cache.misses, as.cache.writeBacks
}

// FlushCache writes back every dirty line and invalidates the cache, like
// a wbinvd. It is a no-op when the model is disabled.
func (as *AddressSpace) FlushCache() error {
	if as.cache == nil {
		return nil
	}
	for i := range as.cache.lines {
		ln := &as.cache.lines[i]
		if ln.valid && ln.dirty {
			if err := as.writeBackLine(ln); err != nil {
				return err
			}
		}
		ln.valid = false
		ln.dirty = false
	}
	return nil
}

// writeBackLine stores a dirty line's contents to memory (re-encoding
// check storage), without access events.
func (as *AddressSpace) writeBackLine(ln *cacheLine) error {
	as.cache.writeBacks++
	return as.WriteRaw(ln.base, ln.data[:])
}

// ensureLine makes the line covering addr resident and returns it. Fills
// go through the full uncached memory path, so ECC decoding (and machine
// checks, and their software responses) happen at fill time — as in real
// hardware, where the memory controller checks on cache-line fills.
func (as *AddressSpace) ensureLine(addr Addr) (*cacheLine, error) {
	base := addr / CacheLineBytes * CacheLineBytes
	ln := &as.cache.lines[as.cache.index(base)]
	if ln.valid && ln.base == base {
		as.cache.hits++
		return ln, nil
	}
	as.cache.misses++
	if ln.valid && ln.dirty {
		if err := as.writeBackLine(ln); err != nil {
			return nil, err
		}
	}
	ln.valid = false
	ln.dirty = false
	// Fill from memory. Fills resolve through their own accessor so a
	// line fill never evicts the application accessor's cached region.
	r, err := as.fillAcc.locate(base, CacheLineBytes)
	if err != nil {
		return nil, err
	}
	if r.codec == nil {
		if r.senseInto(ln.data[:], int(base-r.base)) {
			as.fastLoads++
		}
	} else if fast, err := as.loadDecoded(r, int(base-r.base), ln.data[:]); err != nil {
		return nil, err
	} else if fast {
		as.fastLoads++
	}
	ln.base = base
	ln.valid = true
	return ln, nil
}

// cachedLoad serves a load through the cache model.
func (as *AddressSpace) cachedLoad(addr Addr, buf []byte) error {
	off := 0
	for off < len(buf) {
		a := addr + Addr(off)
		ln, err := as.ensureLine(a)
		if err != nil {
			return err
		}
		inLine := int(a - ln.base)
		n := copy(buf[off:], ln.data[inLine:])
		off += n
	}
	return nil
}

// cachedStore serves a store through the cache model (write-allocate).
func (as *AddressSpace) cachedStore(addr Addr, data []byte) error {
	off := 0
	for off < len(data) {
		a := addr + Addr(off)
		ln, err := as.ensureLine(a)
		if err != nil {
			return err
		}
		inLine := int(a - ln.base)
		n := copy(ln.data[inLine:], data[off:])
		ln.dirty = true
		off += n
	}
	return nil
}
