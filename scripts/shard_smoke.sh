#!/bin/sh
# End-to-end smoke test of the sharding subsystem with real worker
# processes (what the in-process tests cannot cover — under `go test`
# the coordinator's launcher is stubbed because os.Executable() is the
# test binary):
#
#   1. run an unsharded characterize campaign as the baseline,
#   2. run the same campaign as 2 shard worker processes, each writing
#      a journal + manifest, and `hrmsim merge` the shard directory,
#   3. run it once more through `-coordinator -shards 2` (spawns real
#      worker processes, auto-merges),
#   4. diff both merged -json results against the baseline,
#   5. assert the control plane: the manual workers' `-status`
#      heartbeat records exist and `hrmsim status` reports the settled
#      fleet view (all trials done, 0 running) that matches the merge.
#
# Both merged results must be bit-identical to the single-process run,
# modulo the documented run-shape bookkeeping (`parallelism`,
# `resumed_trials` — see SHARDING.md).
#
#   scripts/shard_smoke.sh             # default: kvstore small, 600 trials
#   TRIALS=4000 scripts/shard_smoke.sh
set -eu
cd "$(dirname "$0")/.."

TRIALS="${TRIALS:-600}"
APP="${APP:-kvstore}"
SEED="${SEED:-9}"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

BIN="$TMP/hrmsim"
go build -o "$BIN" ./cmd/hrmsim

echo "shard_smoke: baseline ($APP, $TRIALS trials)" >&2
"$BIN" characterize -app "$APP" -size small -trials "$TRIALS" \
    -seed "$SEED" -json >"$TMP/baseline.json"

echo "shard_smoke: adaptive campaigns must refuse worker-shard mode" >&2
for reject in "-shard 0/2" "-coordinator -shards 2"; do
    # shellcheck disable=SC2086  # $reject is intentionally word-split
    if "$BIN" characterize -app "$APP" -size small -trials "$TRIALS" \
        -seed "$SEED" -target-ci 0.05 $reject 2>"$TMP/reject.err"; then
        echo "shard_smoke: FAIL — -target-ci with $reject was accepted" >&2
        exit 1
    fi
    grep -q 'index space' "$TMP/reject.err" || {
        echo "shard_smoke: FAIL — rejection of -target-ci with $reject does not explain the conflict:" >&2
        cat "$TMP/reject.err" >&2
        exit 1
    }
done

echo "shard_smoke: running 2 shard worker processes" >&2
mkdir "$TMP/shards"
for i in 0 1; do
    "$BIN" characterize -app "$APP" -size small -trials "$TRIALS" \
        -seed "$SEED" -shard "$i/2" \
        -journal "$TMP/shards/shard-000$i-of-0002.jsonl" \
        -status "$TMP/shards/shard-000$i-of-0002.status.json" &
done
wait

for i in 0 1; do
    if [ ! -s "$TMP/shards/shard-000$i-of-0002.manifest.json" ]; then
        echo "shard_smoke: FAIL — shard $i wrote no manifest" >&2
        exit 1
    fi
    if [ ! -s "$TMP/shards/shard-000$i-of-0002.status.json" ]; then
        echo "shard_smoke: FAIL — shard $i wrote no status record" >&2
        exit 1
    fi
done

echo "shard_smoke: merging the shard directory" >&2
"$BIN" merge -dir "$TMP/shards" -json >"$TMP/merged.json"

echo "shard_smoke: reading the final heartbeats back (hrmsim status)" >&2
"$BIN" status -json "$TMP/shards" >"$TMP/status.json"
"$BIN" status "$TMP/shards" >"$TMP/status.txt"
grep -q '(100%)' "$TMP/status.txt" || {
    echo "shard_smoke: FAIL — status view does not show 100%:" >&2
    cat "$TMP/status.txt" >&2
    exit 1
}

echo "shard_smoke: coordinator run (-coordinator -shards 2)" >&2
"$BIN" characterize -app "$APP" -size small -trials "$TRIALS" \
    -seed "$SEED" -coordinator -shards 2 -json >"$TMP/coordinated.json"

echo "shard_smoke: comparing merged results to baseline" >&2
python3 - "$TMP/baseline.json" "$TMP/merged.json" "$TMP/coordinated.json" \
    "$TMP/status.json" <<'PY'
import json, sys

docs = []
for path in sys.argv[1:]:
    with open(path) as f:
        docs.append((json.load(f), path))
(base, _), merged, coordinated, (status, status_path) = docs

# Everything except the run-shape bookkeeping must match bit-for-bit
# (SHARDING.md: a merge has no worker pool, so `parallelism` is 0).
KEYS = [
    "app", "error", "region", "trials", "outcomes",
    "crash_probability", "crash_ci_low", "crash_ci_high",
    "tolerated_probability", "incorrect_per_billion",
    "max_incorrect_per_billion", "completed_trials",
    "crash_minutes", "incorrect_minutes", "all_incorrect_minutes",
]

failed = False
for got, path in (merged, coordinated):
    res, want = got["result"], base["result"]
    bad = [k for k in KEYS if want.get(k) != res.get(k)]
    for k in bad:
        failed = True
        print(f"shard_smoke: MISMATCH {k} in {path}:", file=sys.stderr)
        print(f"  baseline: {want.get(k)}", file=sys.stderr)
        print(f"  sharded:  {res.get(k)}", file=sys.stderr)
    if res.get("interrupted"):
        failed = True
        print(f"shard_smoke: {path} reports interrupted", file=sys.stderr)
    m = got.get("merged") or {}
    if m.get("records") != want["trials"] or m.get("missing"):
        failed = True
        print(f"shard_smoke: {path} merge accounting wrong: {m}", file=sys.stderr)
    if len(m.get("shards", [])) != 2:
        failed = True
        print(f"shard_smoke: {path} merged {len(m.get('shards', []))} shards, want 2",
              file=sys.stderr)
# The settled fleet view must agree with the merged science: every
# trial accounted for, nobody still running, and the outcome taxonomy
# identical to the merged result's.
fleet = status["result"]
want = base["result"]
if fleet.get("done") != want["trials"] or fleet.get("trials") != want["trials"]:
    failed = True
    print(f"shard_smoke: status done/trials {fleet.get('done')}/{fleet.get('trials')}"
          f" != campaign trials {want['trials']}", file=sys.stderr)
if fleet.get("running") != 0:
    failed = True
    print(f"shard_smoke: status reports {fleet.get('running')} running after the run",
          file=sys.stderr)
if len(fleet.get("shards", [])) != 2:
    failed = True
    print(f"shard_smoke: status sees {len(fleet.get('shards', []))} shards, want 2",
          file=sys.stderr)
if fleet.get("outcomes") != want.get("outcomes"):
    failed = True
    print(f"shard_smoke: status outcomes {fleet.get('outcomes')}"
          f" != baseline {want.get('outcomes')}", file=sys.stderr)

if failed:
    sys.exit(1)
print("shard_smoke: PASS — manual 2-shard merge and coordinator run both "
      "bit-identical to the single-process baseline, and the status "
      "heartbeats settle to the same counts")
PY
