package inject

import (
	"math/rand"
	"testing"

	"hrmsim/internal/dram"
	"hrmsim/internal/faults"
	"hrmsim/internal/simmem"
)

func newAS(t *testing.T) *simmem.AddressSpace {
	t.Helper()
	as, err := simmem.New(simmem.Config{PageSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []simmem.RegionSpec{
		{Name: "private", Kind: simmem.RegionPrivate, Size: 4096},
		{Name: "heap", Kind: simmem.RegionHeap, Size: 4096},
	} {
		if _, err := as.AddRegion(s); err != nil {
			t.Fatal(err)
		}
	}
	as.RegionByName("private").SetUsed(4096)
	as.RegionByName("heap").SetUsed(2048)
	return as
}

func TestAtSoftFlipsExactBits(t *testing.T) {
	as := newAS(t)
	rng := rand.New(rand.NewSource(1))
	addr := as.RegionByName("heap").Base() + 17
	if err := as.StoreU8(addr, 0); err != nil {
		t.Fatal(err)
	}
	inj, err := At(as, rng, addr, faults.Spec{Class: faults.Soft, Bits: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(inj.Targets) != 1 || inj.Targets[0].Addr != addr {
		t.Fatalf("targets = %+v", inj.Targets)
	}
	if len(inj.Targets[0].Bits) != 2 || inj.Targets[0].Bits[0] == inj.Targets[0].Bits[1] {
		t.Fatalf("bits = %v, want 2 distinct", inj.Targets[0].Bits)
	}
	v, err := as.LoadU8(addr)
	if err != nil {
		t.Fatal(err)
	}
	want := byte(1<<inj.Targets[0].Bits[0] | 1<<inj.Targets[0].Bits[1])
	if v != want {
		t.Errorf("byte = %#b, want %#b", v, want)
	}
	// Soft errors are masked by overwrite.
	if err := as.StoreU8(addr, 0xAA); err != nil {
		t.Fatal(err)
	}
	if v, _ := as.LoadU8(addr); v != 0xAA {
		t.Errorf("soft error survived overwrite: %#x", v)
	}
	if inj.Region.Name() != "heap" {
		t.Errorf("region = %q, want heap", inj.Region.Name())
	}
}

func TestAtHardSticksBits(t *testing.T) {
	as := newAS(t)
	rng := rand.New(rand.NewSource(2))
	addr := as.RegionByName("heap").Base() + 5
	if err := as.StoreU8(addr, 0xFF); err != nil {
		t.Fatal(err)
	}
	inj, err := At(as, rng, addr, faults.SingleBitHard)
	if err != nil {
		t.Fatal(err)
	}
	bit := inj.Targets[0].Bits[0]
	// The cell was 1; the hard error sticks it at 0.
	v, _ := as.LoadU8(addr)
	if v != 0xFF&^(1<<bit) {
		t.Errorf("byte = %#b after stuck-at", v)
	}
	// Overwrite does not clear a hard error.
	if err := as.StoreU8(addr, 0xFF); err != nil {
		t.Fatal(err)
	}
	if v, _ := as.LoadU8(addr); v != 0xFF&^(1<<bit) {
		t.Errorf("hard error cleared by overwrite: %#b", v)
	}
}

func TestAtValidation(t *testing.T) {
	as := newAS(t)
	rng := rand.New(rand.NewSource(3))
	if _, err := At(as, rng, 0x10, faults.SingleBitSoft); err == nil {
		t.Error("unmapped address accepted")
	}
	if _, err := At(as, rng, as.RegionByName("heap").Base(), faults.Spec{Class: faults.Soft, Bits: 0}); err == nil {
		t.Error("invalid spec accepted")
	}
}

func TestRandomRespectsFilterAndUsedBytes(t *testing.T) {
	as := newAS(t)
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 300; i++ {
		inj, err := Random(as, rng, faults.SingleBitSoft, KindFilter(simmem.RegionHeap))
		if err != nil {
			t.Fatal(err)
		}
		if inj.Region.Kind() != simmem.RegionHeap {
			t.Fatalf("injected into %v", inj.Region.Kind())
		}
		off := int(inj.Targets[0].Addr - inj.Region.Base())
		if off >= inj.Region.Used() {
			t.Fatalf("injected beyond used bytes at offset %d", off)
		}
	}
	// A filter matching nothing errors out.
	if _, err := Random(as, rng, faults.SingleBitSoft, KindFilter(simmem.RegionStack)); err == nil {
		t.Error("empty filter accepted")
	}
}

func TestPhysLayoutMapping(t *testing.T) {
	as := newAS(t)
	geom := dram.Default()
	p, err := NewPhysLayout(as, geom)
	if err != nil {
		t.Fatal(err)
	}
	// Offset 0 maps to the first region's base.
	addr, ok := p.AddrForOffset(0)
	if !ok || addr != as.RegionByName("private").Base() {
		t.Errorf("offset 0 -> %#x, %v", uint64(addr), ok)
	}
	// Offset just past private's used bytes lands in heap.
	addr, ok = p.AddrForOffset(4096)
	if !ok || addr != as.RegionByName("heap").Base() {
		t.Errorf("offset 4096 -> %#x, %v", uint64(addr), ok)
	}
	// Offsets beyond all used bytes are unmapped.
	if _, ok := p.AddrForOffset(4096 + 2048); ok {
		t.Error("offset past all regions mapped")
	}
	// Geometry too small is rejected.
	tiny := dram.Geometry{Channels: 1, DIMMsPerChannel: 1, ChipsPerDIMM: 8,
		BanksPerDIMM: 1, RowsPerBank: 1, LinesPerRow: 1}
	if _, err := NewPhysLayout(as, tiny); err == nil {
		t.Error("undersized geometry accepted")
	}
}

func TestDomainInjection(t *testing.T) {
	as := newAS(t)
	geom := dram.Geometry{Channels: 1, DIMMsPerChannel: 1, ChipsPerDIMM: 8,
		BanksPerDIMM: 2, RowsPerBank: 8, LinesPerRow: 8}
	if geom.Capacity() < 4096+2048 {
		t.Fatalf("test geometry too small: %d", geom.Capacity())
	}
	p, err := NewPhysLayout(as, geom)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	d := geom.RandomDomain(dram.DomainRow, rng)
	inj, err := Domain(p, rng, d, faults.SingleBitHard, 32)
	if err != nil {
		t.Fatal(err)
	}
	if inj.Spec.Domain == nil || inj.Spec.Domain.Kind != dram.DomainRow {
		t.Error("domain not recorded on spec")
	}
	if len(inj.Targets) == 0 {
		t.Fatal("row domain corrupted no application bytes")
	}
	// Every target must show the stuck bit on load.
	for _, target := range inj.Targets {
		raw := make([]byte, 1)
		if err := as.ReadRaw(target.Addr, raw); err != nil {
			t.Fatal(err)
		}
		v, err := as.LoadU8(target.Addr)
		if err != nil {
			t.Fatal(err)
		}
		if v == raw[0] {
			// Stuck value may coincide only if the flip target equals
			// the stored bit, which corruptByte prevents.
			t.Errorf("target %#x shows no corruption", uint64(target.Addr))
		}
	}
	if _, err := Domain(p, rng, d, faults.SingleBitHard, 0); err == nil {
		t.Error("zero maxBytes accepted")
	}
	if _, err := Domain(p, rng, d, faults.Spec{Class: faults.Soft, Bits: 0}, 8); err == nil {
		t.Error("invalid spec accepted")
	}
}

func TestInjectionDeterministic(t *testing.T) {
	run := func() Injection {
		as := newAS(t)
		rng := rand.New(rand.NewSource(42))
		inj, err := Random(as, rng, faults.DoubleBitHard, nil)
		if err != nil {
			t.Fatal(err)
		}
		return inj
	}
	a, b := run(), run()
	if a.Targets[0].Addr != b.Targets[0].Addr {
		t.Error("sampled addresses differ across identical seeds")
	}
	if len(a.Targets[0].Bits) != len(b.Targets[0].Bits) {
		t.Error("bit counts differ")
	}
	for i := range a.Targets[0].Bits {
		if a.Targets[0].Bits[i] != b.Targets[0].Bits[i] {
			t.Error("bit choices differ")
		}
	}
}
