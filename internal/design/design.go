// Package design implements the heterogeneous-reliability memory (HRM)
// design space of Section VI: hardware techniques × software responses ×
// usage granularities (Table 4), the cost / availability / reliability
// models and Table 6 design-point evaluation, and the tolerable-error-rate
// analysis of Fig. 8.
//
// The evaluator takes per-region vulnerability inputs — either measured by
// the characterization engine on the simulated applications, or the
// paper's published WebSearch numbers (PaperWebSearchInputs) so the
// arithmetic can be validated against Table 6 — and produces, for each
// design point, memory/server cost savings, crashes per month, single
// server availability, and incorrect responses per million queries.
package design

import (
	"fmt"
	"time"

	"hrmsim/internal/ecc"
)

// Response is a software response to memory errors (Table 4, middle).
type Response int

// Software responses.
const (
	// RespConsume lets the application consume errors (simple, no
	// overhead, unpredictable outcomes).
	RespConsume Response = iota + 1
	// RespRestart automatically restarts the application on detected
	// failure.
	RespRestart
	// RespRetire retires memory pages that accumulate errors.
	RespRetire
	// RespConditional consumes errors only where software judges the
	// location tolerant.
	RespConditional
	// RespCorrect performs software correction: reload a clean copy
	// from persistent storage on detection (Par+R).
	RespCorrect
)

// String returns the Table 4 name.
func (r Response) String() string {
	switch r {
	case RespConsume:
		return "consume-in-app"
	case RespRestart:
		return "restart-app"
	case RespRetire:
		return "retire-pages"
	case RespConditional:
		return "conditional-consume"
	case RespCorrect:
		return "software-correction"
	default:
		return fmt.Sprintf("response(%d)", int(r))
	}
}

// Granularity is the usage granularity dimension (Table 4, bottom).
type Granularity int

// Usage granularities, coarse to fine.
const (
	GranMachine Granularity = iota + 1
	GranVM
	GranApplication
	GranRegion
	GranPage
	GranCacheLine
)

// String returns the Table 4 name.
func (g Granularity) String() string {
	switch g {
	case GranMachine:
		return "physical machine"
	case GranVM:
		return "virtual machine"
	case GranApplication:
		return "application"
	case GranRegion:
		return "memory region"
	case GranPage:
		return "memory page"
	case GranCacheLine:
		return "cache line"
	default:
		return fmt.Sprintf("granularity(%d)", int(g))
	}
}

// Granularities lists all usage granularities in Table 4 order.
func Granularities() []Granularity {
	return []Granularity{GranMachine, GranVM, GranApplication, GranRegion, GranPage, GranCacheLine}
}

// Responses lists all software responses in Table 4 order.
func Responses() []Response {
	return []Response{RespConsume, RespRestart, RespRetire, RespConditional, RespCorrect}
}

// RegionInput is the measured vulnerability of one memory region — the
// characterization outputs that feed the design-space evaluation.
type RegionInput struct {
	// Name identifies the region ("private", "heap", "stack").
	Name string
	// Share is the region's fraction of the application's memory
	// (errors land in it proportionally).
	Share float64
	// CrashProb is P(crash | one error in the region) with no
	// protection (Fig. 4a).
	CrashProb float64
	// IncorrectPerErr is the expected number of incorrect responses per
	// million queries contributed by one resident error in the region
	// with no protection (derived from Fig. 4b).
	IncorrectPerErr float64
}

// Mapping assigns one region a hardware technique, a software response,
// and a device-testing class — one arrow of the paper's Fig. 7.
type Mapping struct {
	Technique  ecc.Technique
	Response   Response
	LessTested bool
}

// DesignPoint is a named full mapping of regions to techniques (one row of
// Table 6).
type DesignPoint struct {
	Name    string
	Regions map[string]Mapping
}

// Params collects the design parameters of Table 6 (left) plus the model
// calibration constants.
type Params struct {
	// DRAMShareOfServer is DRAM's share of server hardware cost (0.30).
	DRAMShareOfServer float64
	// BaselineOverhead is the baseline protection's added capacity
	// (SEC-DED, 0.125): costs are measured against an all-ECC server.
	BaselineOverhead float64
	// LessTestedSaving is the mid-estimate memory cost saving of
	// less-tested DRAM (0.18), with ±LessTestedBand (0.12).
	LessTestedSaving float64
	LessTestedBand   float64
	// LessTestedRateFactor scales the error rate on less-tested DRAM
	// (calibrated to Table 6's 96-vs-19 crash ratio).
	LessTestedRateFactor float64
	// CrashRecovery is the time to recover a crashed server (10 min).
	CrashRecovery time.Duration
	// FlushInterval is the Par+R checkpoint period (5 min).
	FlushInterval time.Duration
	// ErrorsPerMonth is the memory error rate per server (2000).
	ErrorsPerMonth float64
	// TargetAvailability is the single-server availability goal (0.999).
	TargetAvailability float64
	// ParRCrashResidual is the fraction of would-be crashes surviving
	// Par+R (detection or recovery failures).
	ParRCrashResidual float64
	// ParRIncorrectResidual is the fraction of would-be incorrect
	// results surviving Par+R (stale checkpoint windows).
	ParRIncorrectResidual float64
	// MCEscapeLessTested is the fraction of errors on less-tested DRAM
	// that defeat a correcting code (multi-bit patterns) and crash as
	// uncorrectable machine checks. Zero on fully tested DRAM in this
	// model.
	MCEscapeLessTested float64
}

// PaperParams returns the Table 6 design parameters with calibration
// constants fitted to the paper's published rows (see EXPERIMENTS.md for
// the derivations).
func PaperParams() Params {
	return Params{
		DRAMShareOfServer:     0.30,
		BaselineOverhead:      0.125,
		LessTestedSaving:      0.18,
		LessTestedBand:        0.12,
		LessTestedRateFactor:  4.94, // 96 crashes / 19.44 expected (Table 6 rows 2 and 4)
		CrashRecovery:         10 * time.Minute,
		FlushInterval:         5 * time.Minute,
		ErrorsPerMonth:        2000,
		TargetAvailability:    0.999,
		ParRCrashResidual:     0.02,
		ParRIncorrectResidual: 0.02,
		MCEscapeLessTested:    0.0003,
	}
}

// Validate checks the parameters.
func (p Params) Validate() error {
	switch {
	case p.DRAMShareOfServer <= 0 || p.DRAMShareOfServer > 1:
		return fmt.Errorf("design: DRAM share %g outside (0,1]", p.DRAMShareOfServer)
	case p.BaselineOverhead < 0:
		return fmt.Errorf("design: negative baseline overhead %g", p.BaselineOverhead)
	case p.LessTestedSaving < 0 || p.LessTestedSaving >= 1:
		return fmt.Errorf("design: less-tested saving %g outside [0,1)", p.LessTestedSaving)
	case p.LessTestedRateFactor < 1:
		return fmt.Errorf("design: less-tested rate factor %g below 1", p.LessTestedRateFactor)
	case p.CrashRecovery <= 0:
		return fmt.Errorf("design: crash recovery must be positive")
	case p.ErrorsPerMonth < 0:
		return fmt.Errorf("design: negative error rate %g", p.ErrorsPerMonth)
	case p.TargetAvailability <= 0 || p.TargetAvailability >= 1:
		return fmt.Errorf("design: target availability %g outside (0,1)", p.TargetAvailability)
	}
	return nil
}

// PaperWebSearchInputs returns the WebSearch per-region vulnerability
// inputs derived from the paper's Figs. 4a/4b and Table 3 sizes
// (36 GB / 9 GB / 60 MB), calibrated so the Table 6 arithmetic reproduces
// the published rows.
func PaperWebSearchInputs() []RegionInput {
	const total = 36.0 + 9.0 + 0.0586 // GB
	return []RegionInput{
		{Name: "private", Share: 36.0 / total, CrashProb: 0.0104, IncorrectPerErr: 0.0150},
		{Name: "heap", Share: 9.0 / total, CrashProb: 0.0064, IncorrectPerErr: 0.0219},
		{Name: "stack", Share: 0.0586 / total, CrashProb: 0.10, IncorrectPerErr: 0.05},
	}
}

// PaperAppOverallCrashProb returns the per-app overall crash probability
// per error used by the Fig. 8 analysis (from Fig. 3a; an order of
// magnitude spread across the applications).
func PaperAppOverallCrashProb() map[string]float64 {
	return map[string]float64{
		"WebSearch": 0.0097,
		"Memcached": 0.018,
		"GraphLab":  0.12,
	}
}
