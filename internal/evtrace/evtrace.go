// Package evtrace is the per-trial event-tracing layer: a low-overhead
// recorder of typed, timestamped events covering the whole life of an
// injection trial — injection, accesses to the faulty word, ECC
// correction/detection, software responses, crashes, and the final Fig. 1
// outcome classification. It turns the causal chain behind every trial's
// classification (which internal/core otherwise collapses into one
// TrialResult) into an inspectable, machine-readable stream.
//
// Architecture: campaigns run trials on parallel workers, so events are
// buffered per trial (a TrialTracer is used by exactly one goroutine) and
// delivered to sinks one whole trial at a time, in ascending trial order
// regardless of completion order. Given a deterministic campaign, the
// delivered stream is therefore byte-identical across runs and
// parallelism levels — host wall-clock readings are segregated into
// fields named "wall_*" so consumers can strip them when diffing.
//
// Three sinks ship with the package: a JSONL writer (streaming, versioned
// schema, reloadable with ReadJSONL), a Chrome trace-event exporter whose
// output loads in ui.perfetto.dev (one track per trial, outcome-colored
// slices), and a flight recorder that retains the last events of trials
// ending in crash or incorrect-response. Tracing is observational only:
// it never influences trial scheduling, seeding, or outcomes, and the
// nil-tracer path costs nothing on the access hot path.
package evtrace

import (
	"fmt"
	"sort"
	"sync"

	"hrmsim/internal/obsv"
)

// SchemaVersion identifies the event schema. Renaming or removing a
// field, changing a field's meaning or unit, or changing an event kind's
// semantics bumps this number; additions do not (OBSERVABILITY.md).
const SchemaVersion = 1

// Stream is the stream identifier written into every JSONL header.
const Stream = "hrmsim-evtrace"

// Kind names an event type.
type Kind string

// Event kinds, in the rough order they occur within a trial.
const (
	// KindTrialStart opens a trial (carries the host wall clock).
	KindTrialStart Kind = "trial_start"
	// KindRestore is a snapshot rollback opening a build-once-lifecycle
	// trial: the instance was reset to its post-warmup capture instead
	// of rebuilt. (The rollback size is deliberately absent — it
	// depends on which trial the worker ran previously, and the
	// delivered stream must stay identical across parallelism levels;
	// sizes are observable via the campaign_snapshot_dirty_pages
	// metric instead.)
	KindRestore Kind = "restore"
	// KindInject is one corrupted byte (one event per injection target).
	KindInject Kind = "inject"
	// KindAccessFaulty is an application load/store overlapping an
	// injected byte — the consumption signal of the paper's taxonomy.
	KindAccessFaulty Kind = "access_faulty"
	// KindECCCorrected is a corrected-error decode event.
	KindECCCorrected Kind = "ecc_corrected"
	// KindECCUncorrectable is a detected-but-uncorrectable decode event
	// (before any software response runs).
	KindECCUncorrectable Kind = "ecc_uncorrectable"
	// KindSWResponse is a software response (MC handler) that repaired an
	// uncorrectable error.
	KindSWResponse Kind = "sw_response"
	// KindCrash is the crash instant, with the crash reason.
	KindCrash Kind = "crash"
	// KindAbort is a supervisor abort: the trial watchdog (wall-clock
	// deadline or virtual-operation budget) or the retry policy gave the
	// trial up before classification. Aborted trials carry a machine-
	// readable reason and have no outcome event.
	KindAbort Kind = "abort"
	// KindOutcome is the final Fig. 1 classification of the trial.
	KindOutcome Kind = "outcome"
	// KindTrialEnd closes a trial (carries the host wall clock and the
	// dropped-event count).
	KindTrialEnd Kind = "trial_end"
)

// Kinds lists every event kind in within-trial order.
func Kinds() []Kind {
	return []Kind{KindTrialStart, KindRestore, KindInject, KindAccessFaulty,
		KindECCCorrected, KindECCUncorrectable, KindSWResponse,
		KindCrash, KindAbort, KindOutcome, KindTrialEnd}
}

// bulk reports whether the kind can recur without bound within one trial
// (every access to a hot faulty word emits one event). Bulk kinds are
// subject to the per-trial event cap; structural kinds are always kept.
func (k Kind) bulk() bool {
	switch k {
	case KindAccessFaulty, KindECCCorrected, KindECCUncorrectable, KindSWResponse:
		return true
	}
	return false
}

// Event is one trace record. Virtual time (the simulated clock) drives
// every analytical field; the only host-clock readings are the fields
// prefixed "wall_", which deterministic-stream comparisons must strip.
type Event struct {
	// Trial and Seq identify the event: Seq counts recorded events
	// within the trial from zero. Both are assigned by TrialTracer.Emit.
	Trial int `json:"trial"`
	Seq   int `json:"seq"`
	// Kind is the event type.
	Kind Kind `json:"kind"`
	// VTNanos is the virtual (simulated) time in nanoseconds.
	VTNanos int64 `json:"vt_ns"`
	// Addr is the simulated address involved (injection target, accessed
	// range start, or affected codeword), when the kind has one.
	Addr uint64 `json:"addr,omitempty"`
	// Region and RegionKind name the memory region involved.
	Region     string `json:"region,omitempty"`
	RegionKind string `json:"region_kind,omitempty"`
	// Access is "load" or "store" for access_faulty events.
	Access string `json:"access,omitempty"`
	// Len is the accessed length in bytes for access_faulty events.
	Len int `json:"len,omitempty"`
	// Error labels the injected error type (inject events), e.g.
	// "single-bit soft".
	Error string `json:"error,omitempty"`
	// Bits are the flipped/stuck bit indices (inject events).
	Bits []int `json:"bits,omitempty"`
	// Outcome is the Fig. 1 classification string (outcome events).
	Outcome string `json:"outcome,omitempty"`
	// Detail carries free-form context: the crash reason, or the
	// software-response description.
	Detail string `json:"detail,omitempty"`
	// Reason is the machine-readable abort reason label (abort events):
	// "deadline", "op_budget", or "worker_error".
	Reason string `json:"reason,omitempty"`
	// Stack is the sanitized goroutine stack of a panic-induced crash
	// (crash events, when the crash came from a recovered panic). The
	// capture is reduced to the deterministic panicking call chain —
	// goroutine ids, argument values, and frame offsets stripped — so
	// streams stay byte-identical across parallelism and lifecycles.
	Stack string `json:"stack,omitempty"`
	// Dropped is the number of bulk events the per-trial cap discarded
	// (trial_end events).
	Dropped int64 `json:"dropped,omitempty"`
	// WallUnixNanos is the host wall clock in Unix nanoseconds
	// (trial_start and trial_end events only). Host time is
	// nondeterministic by nature; every such field is segregated under
	// the "wall_" JSON prefix so deterministic comparisons can strip it.
	WallUnixNanos int64 `json:"wall_unix_ns,omitempty"`
}

// Sink receives completed trials. Tracer delivers trials in ascending
// trial order, one call per trial, serialized — sinks need no locking
// against the tracer. Events within a batch are in emission order.
type Sink interface {
	// WriteTrial consumes one trial's recorded events. The slice must
	// not be retained or modified after the call returns unless the sink
	// copies it (Recorder copies; writers encode immediately).
	WriteTrial(trial int, events []Event) error
	// Close flushes and releases the sink.
	Close() error
}

// Options configures a Tracer.
type Options struct {
	// PerTrialCap bounds the bulk events (access_faulty, ecc_*,
	// sw_response) recorded per trial; further bulk events are dropped
	// and counted. Structural events (trial_start, inject, crash,
	// outcome, trial_end) are always kept. Default 1024.
	PerTrialCap int
	// Metrics, if non-nil, receives the evtrace_events_total and
	// evtrace_events_dropped_total counters (OBSERVABILITY.md).
	Metrics *obsv.Registry
}

// Tracer fans completed trials out to sinks in trial order. A nil *Tracer
// is a valid no-op: Trial returns a nil *TrialTracer whose methods all
// no-op, so call sites need no nil checks of their own.
type Tracer struct {
	perTrialCap int
	sinks       []Sink
	events      *obsv.Counter
	dropped     *obsv.Counter

	mu      sync.Mutex
	next    int
	pending map[int][]Event
	err     error
	closed  bool
}

// DefaultPerTrialCap is the default bulk-event budget per trial.
const DefaultPerTrialCap = 1024

// New creates a tracer delivering to the given sinks.
func New(opts Options, sinks ...Sink) *Tracer {
	if opts.PerTrialCap <= 0 {
		opts.PerTrialCap = DefaultPerTrialCap
	}
	t := &Tracer{
		perTrialCap: opts.PerTrialCap,
		sinks:       sinks,
		pending:     make(map[int][]Event),
	}
	if opts.Metrics != nil {
		t.events = opts.Metrics.Counter("evtrace_events_total")
		t.dropped = opts.Metrics.Counter("evtrace_events_dropped_total")
	}
	return t
}

// Trial opens the recording handle for one trial. Trial IDs must be the
// dense range 0..N-1 of the campaign (delivery to sinks waits for the
// next unseen ID; Close flushes any gaps). Returns nil on a nil tracer.
func (t *Tracer) Trial(id int) *TrialTracer {
	if t == nil {
		return nil
	}
	return &TrialTracer{t: t, trial: id}
}

// completeTrial hands a finished trial's buffer over and flushes every
// consecutive pending trial to the sinks.
func (t *Tracer) completeTrial(tt *TrialTracer) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed || tt.trial < t.next {
		// Late duplicate: a watchdog-abandoned trial goroutine finishing
		// after the supervisor already delivered an abort record for the
		// trial, or after Close. Dropping it preserves the one-delivery-
		// per-trial contract.
		return
	}
	if _, dup := t.pending[tt.trial]; dup {
		// Same duplicate, caught before delivery: the first finisher
		// (the supervisor's abort record) wins.
		return
	}
	if t.events != nil {
		t.events.Add(int64(len(tt.events)))
	}
	if tt.dropped > 0 && t.dropped != nil {
		t.dropped.Add(tt.dropped)
	}
	t.pending[tt.trial] = tt.events
	for {
		evs, ok := t.pending[t.next]
		if !ok {
			return
		}
		delete(t.pending, t.next)
		t.deliverLocked(t.next, evs)
		t.next++
	}
}

// deliverLocked writes one trial to every sink, keeping the first error.
func (t *Tracer) deliverLocked(trial int, evs []Event) {
	for _, s := range t.sinks {
		if err := s.WriteTrial(trial, evs); err != nil && t.err == nil {
			t.err = fmt.Errorf("evtrace: sink failed on trial %d: %w", trial, err)
		}
	}
}

// Err returns the first sink error observed so far.
func (t *Tracer) Err() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// Close flushes any out-of-order remainder (trials stuck behind a gap
// after an aborted campaign, delivered in ascending order) and closes
// every sink. It returns the first error from delivery or closing.
// Safe on a nil tracer; idempotent.
func (t *Tracer) Close() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return t.err
	}
	t.closed = true
	rest := make([]int, 0, len(t.pending))
	for id := range t.pending {
		rest = append(rest, id)
	}
	sort.Ints(rest)
	for _, id := range rest {
		t.deliverLocked(id, t.pending[id])
		delete(t.pending, id)
	}
	for _, s := range t.sinks {
		if err := s.Close(); err != nil && t.err == nil {
			t.err = fmt.Errorf("evtrace: closing sink: %w", err)
		}
	}
	return t.err
}

// TrialTracer records one trial's events. It is used by exactly one
// goroutine (the trial's worker) and hands its buffer to the tracer on
// Finish. All methods are no-ops on a nil receiver, so the zero-config
// path needs no branches at call sites.
type TrialTracer struct {
	t       *Tracer
	trial   int
	bulk    int
	dropped int64
	events  []Event
}

// Emit records one event, stamping Trial and Seq. Bulk kinds beyond the
// tracer's per-trial cap are dropped and counted instead.
func (tt *TrialTracer) Emit(ev Event) {
	if tt == nil {
		return
	}
	if ev.Kind.bulk() {
		if tt.bulk >= tt.t.perTrialCap {
			tt.dropped++
			return
		}
		tt.bulk++
	}
	ev.Trial = tt.trial
	ev.Seq = len(tt.events)
	tt.events = append(tt.events, ev)
}

// DroppedCount returns how many bulk events the cap has discarded so far
// (zero on a nil receiver). Trial-end emitters record it on the event.
func (tt *TrialTracer) DroppedCount() int64 {
	if tt == nil {
		return 0
	}
	return tt.dropped
}

// Finish delivers the trial's buffer to the tracer. The TrialTracer must
// not be used afterwards.
func (tt *TrialTracer) Finish() {
	if tt == nil {
		return
	}
	tt.t.completeTrial(tt)
}
