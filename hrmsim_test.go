package hrmsim

import (
	"math"
	"strings"
	"testing"
)

func TestCharacterizeDefaults(t *testing.T) {
	c, err := Characterize(CharacterizeConfig{
		App:    AppKVStore,
		Size:   SizeSmall,
		Trials: 60,
	})
	if err != nil {
		t.Fatal(err)
	}
	if c.Error != SoftSingleBit {
		t.Errorf("default error type = %q", c.Error)
	}
	if c.Trials != 60 {
		t.Errorf("trials = %d", c.Trials)
	}
	total := 0
	for _, n := range c.Outcomes {
		total += n
	}
	if total != 60 {
		t.Errorf("outcome counts sum to %d", total)
	}
	if c.CrashCILow > c.CrashProbability || c.CrashProbability > c.CrashCIHigh {
		t.Error("point estimate outside CI")
	}
	if c.CrashProbability+c.ToleratedProbability > 1.0001 {
		t.Error("crash + tolerated exceed 1")
	}
}

func TestCharacterizeValidation(t *testing.T) {
	if _, err := Characterize(CharacterizeConfig{}); err == nil {
		t.Error("missing app accepted")
	}
	if _, err := Characterize(CharacterizeConfig{App: "nope", Trials: 1}); err == nil {
		t.Error("unknown app accepted")
	}
	if _, err := Characterize(CharacterizeConfig{App: AppKVStore, Error: "weird", Trials: 1}); err == nil {
		t.Error("unknown error type accepted")
	}
	if _, err := Characterize(CharacterizeConfig{App: AppKVStore, Region: "rodata", Trials: 1}); err == nil {
		t.Error("unknown region accepted")
	}
	if _, err := Characterize(CharacterizeConfig{App: AppKVStore, Size: WorkloadSize(9), Trials: 1}); err == nil {
		t.Error("unknown size accepted")
	}
}

func TestCharacterizeRegionFilterAndHardErrors(t *testing.T) {
	c, err := Characterize(CharacterizeConfig{
		App:    AppWebSearch,
		Error:  HardSingleBit,
		Region: RegionStack,
		Size:   SizeSmall,
		Trials: 80,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Hard errors in the live stack frame crash frequently (Finding 2/4).
	if c.CrashProbability < 0.2 {
		t.Errorf("stack hard-error crash probability = %.2f, expected substantial", c.CrashProbability)
	}
	if len(c.CrashMinutes) == 0 {
		t.Error("no crash timing samples")
	}
}

func TestCharacterizeSoftStackMasked(t *testing.T) {
	c, err := Characterize(CharacterizeConfig{
		App:    AppWebSearch,
		Error:  SoftSingleBit,
		Region: RegionStack,
		Size:   SizeSmall,
		Trials: 60,
	})
	if err != nil {
		t.Fatal(err)
	}
	if c.ToleratedProbability < 0.9 {
		t.Errorf("soft stack errors tolerated %.2f, expected ~all masked by overwrite", c.ToleratedProbability)
	}
	if c.Outcomes["masked-by-overwrite"] == 0 {
		t.Error("no overwrite-masked outcomes in the stack")
	}
}

func TestAccessProfile(t *testing.T) {
	rep, err := AccessProfile(AccessProfileConfig{
		App:         AppWebSearch,
		Size:        SizeSmall,
		Watchpoints: 240,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.WindowMinutes <= 0 {
		t.Error("empty observation window")
	}
	byRegion := map[string]RegionProfile{}
	for _, r := range rep.Regions {
		byRegion[r.Region] = r
	}
	priv, ok1 := byRegion["private"]
	stack, ok2 := byRegion["stack"]
	if !ok1 || !ok2 {
		t.Fatalf("missing regions: %+v", rep.Regions)
	}
	// Finding 4: stack safe ratio high, read-only private low.
	if stack.MeanSafeRatio <= priv.MeanSafeRatio {
		t.Errorf("stack safe ratio %.2f not above private %.2f",
			stack.MeanSafeRatio, priv.MeanSafeRatio)
	}
	// Table 5 shape: the read-only backed index is implicitly
	// recoverable; the stack is not.
	if priv.ImplicitRecoverable != 1 {
		t.Errorf("private implicit = %.2f, want 1", priv.ImplicitRecoverable)
	}
	if stack.ImplicitRecoverable != 0 {
		t.Errorf("stack implicit = %.2f, want 0", stack.ImplicitRecoverable)
	}
}

func TestAccessProfileValidation(t *testing.T) {
	if _, err := AccessProfile(AccessProfileConfig{}); err == nil {
		t.Error("missing app accepted")
	}
}

func TestEvaluateTable6PaperInputs(t *testing.T) {
	rows, err := EvaluateTable6(PaperWebSearchVulnerability())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("got %d rows", len(rows))
	}
	byName := map[string]DesignRow{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	if r := byName["Consumer PC"]; math.Abs(r.CrashesPerMonth-19) > 1 {
		t.Errorf("Consumer PC crashes = %.1f, want ~19", r.CrashesPerMonth)
	}
	if r := byName["Detect&Recover"]; !r.MeetsTarget {
		t.Error("Detect&Recover should meet the target")
	}
	if r := byName["Detect&Recover/L"]; !r.MeetsTarget || r.ServerSavings < 0.04 {
		t.Errorf("Detect&Recover/L row off: %+v", r)
	}
	if _, err := EvaluateTable6(nil); err == nil {
		t.Error("empty inputs accepted")
	}
}

func TestPlan(t *testing.T) {
	res, err := Plan(PlanConfig{Vulnerabilities: PaperWebSearchVulnerability()})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Best.MeetsTarget {
		t.Error("plan returned an infeasible design")
	}
	if res.Considered == 0 || res.Feasible == 0 || res.Feasible > res.Considered {
		t.Errorf("counts off: %+v", res)
	}
	if len(res.BestMapping) != 3 {
		t.Errorf("mapping covers %d regions", len(res.BestMapping))
	}
	// The searched optimum must be at least as cheap as the published
	// Detect&Recover/L design.
	rows, err := EvaluateTable6(PaperWebSearchVulnerability())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Name == "Detect&Recover/L" && res.Best.ServerSavings+1e-9 < r.ServerSavings {
			t.Errorf("plan best %.4f worse than published %.4f", res.Best.ServerSavings, r.ServerSavings)
		}
	}
	// Tightening the target and raising the error rate can only shrink
	// the feasible set and the attainable savings (a fully protected
	// tested server always remains feasible).
	strict, err := Plan(PlanConfig{
		Vulnerabilities:    PaperWebSearchVulnerability(),
		TargetAvailability: 0.99999,
		ErrorsPerMonth:     1e6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if strict.Feasible > res.Feasible {
		t.Errorf("stricter target grew the feasible set: %d > %d", strict.Feasible, res.Feasible)
	}
	if strict.Best.ServerSavings > res.Best.ServerSavings+1e-9 {
		t.Error("stricter target increased attainable savings")
	}
	if _, err := Plan(PlanConfig{}); err == nil {
		t.Error("missing vulnerabilities accepted")
	}
}

func TestTolerable(t *testing.T) {
	probs := PaperCrashProbabilities()
	ws, err := Tolerable(probs["WebSearch"], 0.99)
	if err != nil {
		t.Fatal(err)
	}
	if ws < 2000 {
		t.Errorf("WebSearch tolerable at 99%% = %.0f, want >= 2000", ws)
	}
	gl, err := Tolerable(probs["GraphLab"], 0.99)
	if err != nil {
		t.Fatal(err)
	}
	if gl >= 2000 {
		t.Errorf("GraphLab tolerable at 99%% = %.0f, want < 2000", gl)
	}
	if _, err := Tolerable(0, 0.99); err == nil {
		t.Error("zero probability accepted")
	}
}

func TestLabRunsOneExperiment(t *testing.T) {
	lab, err := NewLab(LabConfig{Trials: 30, TimingTrials: 30, Watchpoints: 120})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := lab.Run("table1")
	if err != nil {
		t.Fatal(err)
	}
	if rep.ID != "table1" || !strings.Contains(rep.Text, "SEC-DED") {
		t.Errorf("unexpected report: %q", rep.Title)
	}
	if _, err := lab.Run("bogus"); err == nil {
		t.Error("bogus experiment accepted")
	}
	if len(ExperimentIDs()) != 12 {
		t.Errorf("got %d experiment IDs", len(ExperimentIDs()))
	}
}

func TestNewBuilderSizes(t *testing.T) {
	for _, app := range Apps() {
		for _, size := range []WorkloadSize{SizeSmall, SizeMedium} {
			b, err := NewBuilder(app, size, 7)
			if err != nil {
				t.Fatalf("%s/%d: %v", app, size, err)
			}
			if b.AppName() != string(app) {
				t.Errorf("builder name %q for app %q", b.AppName(), app)
			}
		}
	}
	if len(ErrorTypes()) != 3 {
		t.Error("wrong error type count")
	}
}
