// Package dram models DRAM device geometry: how a flat physical address
// range is interleaved across channels, DIMMs, chips, banks, rows, and
// columns. The characterization framework uses it for two things:
//
//   - expanding correlated hardware fault modes (a failed row, column,
//     bank, chip, or DIMM — the multi-bit hard errors of Sections II and
//     VII) into the set of byte addresses they corrupt, and
//
//   - reasoning about channel-granularity heterogeneous provisioning
//     (Fig. 9), where different channels carry DIMMs with different
//     protection techniques.
//
// The mapping is the common cache-line-interleaved layout: 64-byte lines
// round-robin across channels, then across the DIMMs of a channel; within
// a DIMM the line's bytes stripe across chips by byte lane (an x8 DIMM
// supplies 8 bits of every beat from each chip); lines within a DIMM walk
// banks first, then columns within a row, then rows.
package dram

import (
	"fmt"
	"math/rand"
)

// LineBytes is the memory transfer granularity (one cache line).
const LineBytes = 64

// Geometry describes a memory system's device organization.
type Geometry struct {
	// Channels is the number of memory channels.
	Channels int
	// DIMMsPerChannel is the number of DIMMs on each channel.
	DIMMsPerChannel int
	// ChipsPerDIMM is the number of data chips per DIMM (byte lanes);
	// must divide LineBytes.
	ChipsPerDIMM int
	// BanksPerDIMM is the number of banks per DIMM.
	BanksPerDIMM int
	// RowsPerBank is the number of rows per bank.
	RowsPerBank int
	// LinesPerRow is the number of cache lines stored per row per bank.
	LinesPerRow int
}

// Validate checks the geometry for consistency.
func (g Geometry) Validate() error {
	switch {
	case g.Channels <= 0, g.DIMMsPerChannel <= 0, g.ChipsPerDIMM <= 0,
		g.BanksPerDIMM <= 0, g.RowsPerBank <= 0, g.LinesPerRow <= 0:
		return fmt.Errorf("dram: all geometry fields must be positive: %+v", g)
	case LineBytes%g.ChipsPerDIMM != 0:
		return fmt.Errorf("dram: chips per DIMM (%d) must divide line size %d",
			g.ChipsPerDIMM, LineBytes)
	}
	return nil
}

// Default returns a small but fully populated geometry suitable for
// laptop-scale simulation: 3 channels x 2 DIMMs x 8 chips, 8 banks,
// 64 rows x 16 lines — 48 MiB total.
func Default() Geometry {
	return Geometry{
		Channels:        3,
		DIMMsPerChannel: 2,
		ChipsPerDIMM:    8,
		BanksPerDIMM:    8,
		RowsPerBank:     64,
		LinesPerRow:     16,
	}
}

// Capacity returns the total byte capacity of the memory system.
func (g Geometry) Capacity() int64 {
	return int64(g.Channels) * int64(g.DIMMsPerChannel) * int64(g.BanksPerDIMM) *
		int64(g.RowsPerBank) * int64(g.LinesPerRow) * LineBytes
}

// Coord locates one byte in the device hierarchy.
type Coord struct {
	Channel int
	DIMM    int // within the channel
	Chip    int // byte lane within the DIMM
	Bank    int // within the DIMM
	Row     int // within the bank
	Line    int // cache line within the row
	Byte    int // byte within the line (Chip == Byte % ChipsPerDIMM)
}

// MapOffset converts a byte offset in [0, Capacity) to its device
// coordinates.
func (g Geometry) MapOffset(off int64) (Coord, error) {
	if off < 0 || off >= g.Capacity() {
		return Coord{}, fmt.Errorf("dram: offset %d outside capacity %d", off, g.Capacity())
	}
	b := int(off % LineBytes)
	l := off / LineBytes
	ch := int(l % int64(g.Channels))
	t := l / int64(g.Channels)
	dimm := int(t % int64(g.DIMMsPerChannel))
	u := t / int64(g.DIMMsPerChannel)
	bank := int(u % int64(g.BanksPerDIMM))
	v := u / int64(g.BanksPerDIMM)
	line := int(v % int64(g.LinesPerRow))
	row := int(v / int64(g.LinesPerRow))
	return Coord{
		Channel: ch, DIMM: dimm, Chip: b % g.ChipsPerDIMM,
		Bank: bank, Row: row, Line: line, Byte: b,
	}, nil
}

// OffsetOf is the inverse of MapOffset.
func (g Geometry) OffsetOf(c Coord) (int64, error) {
	switch {
	case c.Channel < 0 || c.Channel >= g.Channels,
		c.DIMM < 0 || c.DIMM >= g.DIMMsPerChannel,
		c.Bank < 0 || c.Bank >= g.BanksPerDIMM,
		c.Row < 0 || c.Row >= g.RowsPerBank,
		c.Line < 0 || c.Line >= g.LinesPerRow,
		c.Byte < 0 || c.Byte >= LineBytes:
		return 0, fmt.Errorf("dram: coordinate out of range: %+v", c)
	}
	v := int64(c.Row)*int64(g.LinesPerRow) + int64(c.Line)
	u := v*int64(g.BanksPerDIMM) + int64(c.Bank)
	t := u*int64(g.DIMMsPerChannel) + int64(c.DIMM)
	l := t*int64(g.Channels) + int64(c.Channel)
	return l*LineBytes + int64(c.Byte), nil
}

// ChannelOfOffset returns the channel serving a byte offset — the lookup
// needed to provision protection per channel (Fig. 9).
func (g Geometry) ChannelOfOffset(off int64) (int, error) {
	c, err := g.MapOffset(off)
	if err != nil {
		return 0, err
	}
	return c.Channel, nil
}

// DomainKind classifies correlated hardware fault domains.
type DomainKind int

// Fault domain kinds, smallest to largest.
const (
	// DomainCell is a single byte-lane byte (the smallest unit we track;
	// individual bit faults choose a bit within it).
	DomainCell DomainKind = iota + 1
	// DomainRow is one row of one chip in one bank.
	DomainRow
	// DomainColumn is one (line, byte) position of one chip across all
	// rows of a bank.
	DomainColumn
	// DomainBank is one bank of one chip.
	DomainBank
	// DomainChip is one whole chip of a DIMM.
	DomainChip
	// DomainDIMM is an entire DIMM.
	DomainDIMM
	// DomainChannel is every DIMM on a channel.
	DomainChannel
)

// String returns the domain kind name.
func (k DomainKind) String() string {
	switch k {
	case DomainCell:
		return "cell"
	case DomainRow:
		return "row"
	case DomainColumn:
		return "column"
	case DomainBank:
		return "bank"
	case DomainChip:
		return "chip"
	case DomainDIMM:
		return "dimm"
	case DomainChannel:
		return "channel"
	default:
		return fmt.Sprintf("domain(%d)", int(k))
	}
}

// FaultDomain is a concrete failed structure: a Kind plus the coordinates
// that pin it down (fields beyond the kind's granularity are ignored).
type FaultDomain struct {
	Kind  DomainKind
	Coord Coord
}

// laneBytesPerLine is the number of bytes a single chip contributes to one
// cache line.
func (g Geometry) laneBytesPerLine() int { return LineBytes / g.ChipsPerDIMM }

// DomainSize returns the number of byte addresses a fault domain corrupts.
func (g Geometry) DomainSize(d FaultDomain) (int64, error) {
	lane := int64(g.laneBytesPerLine())
	switch d.Kind {
	case DomainCell:
		return 1, nil
	case DomainRow:
		return int64(g.LinesPerRow) * lane, nil
	case DomainColumn:
		return int64(g.RowsPerBank), nil
	case DomainBank:
		return int64(g.RowsPerBank) * int64(g.LinesPerRow) * lane, nil
	case DomainChip:
		return int64(g.BanksPerDIMM) * int64(g.RowsPerBank) * int64(g.LinesPerRow) * lane, nil
	case DomainDIMM:
		return int64(g.BanksPerDIMM) * int64(g.RowsPerBank) * int64(g.LinesPerRow) * LineBytes, nil
	case DomainChannel:
		return int64(g.DIMMsPerChannel) * int64(g.BanksPerDIMM) * int64(g.RowsPerBank) *
			int64(g.LinesPerRow) * LineBytes, nil
	default:
		return 0, fmt.Errorf("dram: unknown domain kind %d", int(d.Kind))
	}
}

// OffsetAt returns the i-th byte offset (in canonical order) of a fault
// domain, 0 <= i < DomainSize.
func (g Geometry) OffsetAt(d FaultDomain, i int64) (int64, error) {
	size, err := g.DomainSize(d)
	if err != nil {
		return 0, err
	}
	if i < 0 || i >= size {
		return 0, fmt.Errorf("dram: index %d outside domain of size %d", i, size)
	}
	lane := int64(g.laneBytesPerLine())
	c := d.Coord
	switch d.Kind {
	case DomainCell:
		// The coordinate itself.
	case DomainRow:
		c.Line = int(i / lane)
		c.Byte = g.laneByte(c.Chip, int(i%lane))
	case DomainColumn:
		c.Row = int(i)
	case DomainBank:
		perRow := int64(g.LinesPerRow) * lane
		c.Row = int(i / perRow)
		rest := i % perRow
		c.Line = int(rest / lane)
		c.Byte = g.laneByte(c.Chip, int(rest%lane))
	case DomainChip:
		perBank := int64(g.RowsPerBank) * int64(g.LinesPerRow) * lane
		c.Bank = int(i / perBank)
		rest := i % perBank
		perRow := int64(g.LinesPerRow) * lane
		c.Row = int(rest / perRow)
		rest %= perRow
		c.Line = int(rest / lane)
		c.Byte = g.laneByte(c.Chip, int(rest%lane))
	case DomainDIMM:
		perBank := int64(g.RowsPerBank) * int64(g.LinesPerRow) * LineBytes
		c.Bank = int(i / perBank)
		rest := i % perBank
		perRow := int64(g.LinesPerRow) * LineBytes
		c.Row = int(rest / perRow)
		rest %= perRow
		c.Line = int(rest / LineBytes)
		c.Byte = int(rest % LineBytes)
		c.Chip = c.Byte % g.ChipsPerDIMM
	case DomainChannel:
		perDIMM := int64(g.BanksPerDIMM) * int64(g.RowsPerBank) * int64(g.LinesPerRow) * LineBytes
		c.DIMM = int(i / perDIMM)
		rest := i % perDIMM
		return g.OffsetAt(FaultDomain{Kind: DomainDIMM, Coord: c}, rest)
	}
	return g.OffsetOf(c)
}

// laneByte returns the j-th byte position within a line that belongs to
// the given chip (byte lane).
func (g Geometry) laneByte(chip, j int) int {
	return j*g.ChipsPerDIMM + chip
}

// SampleOffsets draws k distinct byte offsets uniformly from a fault
// domain (all of them when the domain has at most k bytes). Injection
// campaigns use this to corrupt a representative subset of a large failed
// structure without materializing millions of addresses.
func (g Geometry) SampleOffsets(d FaultDomain, rng *rand.Rand, k int) ([]int64, error) {
	size, err := g.DomainSize(d)
	if err != nil {
		return nil, err
	}
	if int64(k) >= size {
		out := make([]int64, size)
		for i := int64(0); i < size; i++ {
			off, err := g.OffsetAt(d, i)
			if err != nil {
				return nil, err
			}
			out[i] = off
		}
		return out, nil
	}
	seen := make(map[int64]bool, k)
	out := make([]int64, 0, k)
	for len(out) < k {
		i := rng.Int63n(size)
		if seen[i] {
			continue
		}
		seen[i] = true
		off, err := g.OffsetAt(d, i)
		if err != nil {
			return nil, err
		}
		out = append(out, off)
	}
	return out, nil
}

// RandomDomain picks a uniformly random concrete fault domain of the given
// kind.
func (g Geometry) RandomDomain(kind DomainKind, rng *rand.Rand) FaultDomain {
	c := Coord{
		Channel: rng.Intn(g.Channels),
		DIMM:    rng.Intn(g.DIMMsPerChannel),
		Chip:    rng.Intn(g.ChipsPerDIMM),
		Bank:    rng.Intn(g.BanksPerDIMM),
		Row:     rng.Intn(g.RowsPerBank),
		Line:    rng.Intn(g.LinesPerRow),
	}
	c.Byte = g.laneByte(c.Chip, rng.Intn(g.laneBytesPerLine()))
	return FaultDomain{Kind: kind, Coord: c}
}
