package obsv

// Snapshot merge: deterministic aggregation of N registry snapshots into
// one. This is the single aggregation rule shared by every consumer that
// combines metrics from more than one process — the coordinator's live
// /statusz and /metrics fleet view, `hrmsim status`, and `hrmsim merge`'s
// post-hoc shard aggregation — so a live fleet readout and a post-hoc
// merge of the same shards report the same numbers.
//
// Per-kind policy (documented per metric in OBSERVABILITY.md):
//
//   - Counters sum. Every counter in this module is a monotonic event
//     count, and events on disjoint shards are disjoint, so addition is
//     the exact fleet total.
//   - Histograms merge bucket-wise when the bucket layouts are identical
//     (the common case: all shards run the same binary, and the layout is
//     fixed at first registration). Counts, Count, and Sum all add.
//   - Gauges take the maximum. A gauge is a level, not a count; summing
//     levels from different processes is meaningless, and "last writer"
//     depends on argument order. Max is order-independent — merging in
//     any order, or merging merges (associativity), yields the same
//     snapshot — which the fleet view relies on when shard heartbeats
//     arrive in arbitrary order. For the gauges this module exports
//     (high-water levels like simmem_tainted_pages) max is also the
//     operationally useful reading: the worst level seen anywhere.
//
// Degenerate case: if two snapshots carry the same histogram name with
// different bucket layouts (only possible when shards run different
// binaries — already rejected upstream by the shard config hash), the
// merge keeps the first-seen layout and folds the other snapshot's total
// Count into its implicit +Inf bucket, preserving Count and Sum exactly
// at the cost of bucket resolution. This is the only order-sensitive
// corner of the merge. (Histogram sums are float64, so associativity is
// exact only up to floating-point rounding of Sum; every integer-valued
// field merges exactly.)

// MergeSnapshots deterministically aggregates snapshots into one:
// counters sum, identical-layout histograms merge bucket-wise, gauges
// take the max. Inputs are not mutated. Merging zero snapshots yields an
// empty Snapshot; maps are only allocated for metric kinds that appear.
func MergeSnapshots(snaps ...Snapshot) Snapshot {
	var out Snapshot
	for _, s := range snaps {
		for name, v := range s.Counters {
			if out.Counters == nil {
				out.Counters = make(map[string]int64)
			}
			out.Counters[name] += v
		}
		for name, v := range s.Gauges {
			if out.Gauges == nil {
				out.Gauges = make(map[string]float64)
			}
			if cur, ok := out.Gauges[name]; !ok || v > cur {
				out.Gauges[name] = v
			}
		}
		for name, h := range s.Histograms {
			if out.Histograms == nil {
				out.Histograms = make(map[string]HistogramSnapshot)
			}
			cur, ok := out.Histograms[name]
			if !ok {
				out.Histograms[name] = cloneHistogramSnapshot(h)
				continue
			}
			out.Histograms[name] = mergeHistogramSnapshots(cur, h)
		}
	}
	return out
}

// cloneHistogramSnapshot deep-copies h so the merge never aliases (and
// can never mutate) a caller's snapshot.
func cloneHistogramSnapshot(h HistogramSnapshot) HistogramSnapshot {
	return HistogramSnapshot{
		Bounds: append([]float64(nil), h.Bounds...),
		Counts: append([]int64(nil), h.Counts...),
		Count:  h.Count,
		Sum:    h.Sum,
	}
}

// mergeHistogramSnapshots folds b into a copy of a. a is assumed to be
// an owned copy (its slices may be written); b is never mutated.
func mergeHistogramSnapshots(a, b HistogramSnapshot) HistogramSnapshot {
	a.Count += b.Count
	a.Sum += b.Sum
	if sameBounds(a.Bounds, b.Bounds) && len(a.Counts) == len(b.Counts) {
		for i, c := range b.Counts {
			a.Counts[i] += c
		}
		return a
	}
	// Layout mismatch: keep a's layout, fold b's total into +Inf.
	if len(a.Counts) > 0 {
		a.Counts[len(a.Counts)-1] += b.Count
	}
	return a
}

// sameBounds reports whether two bound slices are element-wise equal.
func sameBounds(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
