// Sharded campaigns: the contract that lets one characterization
// campaign run as N independent processes and merge back into a result
// bit-identical to a single-process run.
//
// The contract has three parts (documented for operators in SHARDING.md):
//
//  1. Partitioning. A campaign of T trials splits into N contiguous
//     index ranges; shard i owns [i*T/N, (i+1)*T/N). Because trial j's
//     generator depends only on (Seed, j), a shard needs no coordination
//     with its siblings — it just runs its indices.
//  2. The shard artifact pair. Each shard emits the ordinary trial
//     journal (journal.go) restricted to its range, plus a manifest: a
//     small JSON document naming the campaign identity (and its
//     config hash), the shard coordinates, the trial range, and a
//     metrics snapshot. The journal carries the science; the manifest
//     carries the compatibility evidence.
//  3. Merging. MergeShards validates that every manifest hashes to the
//     same campaign config, reads each journal (whose own header must
//     match the manifest), and unions the records keep-first in shard
//     order — the same dedup rule the resume reader applies within one
//     journal, extended across journals.
package core

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"hrmsim/internal/faults"
)

// ShardSpec selects one slice of a sharded campaign: shard Index of
// Count, owning the contiguous trial range Range(trials).
type ShardSpec struct {
	Index int
	Count int
}

// Validate reports whether the spec is a well-formed shard coordinate.
func (s ShardSpec) Validate() error {
	if s.Count <= 0 {
		return fmt.Errorf("core: shard count must be positive, got %d", s.Count)
	}
	if s.Index < 0 || s.Index >= s.Count {
		return fmt.Errorf("core: shard index %d outside [0,%d)", s.Index, s.Count)
	}
	return nil
}

// Range returns the half-open trial index range [lo, hi) owned by the
// shard. Ranges of the Count shards tile [0, trials) exactly, in index
// order, differing in size by at most one trial. A shard whose range is
// empty (more shards than trials) is valid and runs nothing.
func (s ShardSpec) Range(trials int) (lo, hi int) {
	return s.Index * trials / s.Count, (s.Index + 1) * trials / s.Count
}

// String renders the spec in the CLI's "i/N" form.
func (s ShardSpec) String() string { return fmt.Sprintf("%d/%d", s.Index, s.Count) }

// ParseShardSpec parses the CLI's "i/N" shard syntax.
func ParseShardSpec(text string) (ShardSpec, error) {
	var s ShardSpec
	if _, err := fmt.Sscanf(text, "%d/%d", &s.Index, &s.Count); err != nil {
		return ShardSpec{}, fmt.Errorf("core: shard spec %q is not of the form i/N", text)
	}
	if err := s.Validate(); err != nil {
		return ShardSpec{}, err
	}
	return s, nil
}

// ManifestSchemaVersion identifies the shard manifest schema, versioned
// independently of the journal and the -json envelope. The usual rule:
// renaming or reinterpreting a field bumps it, additions do not.
const ManifestSchemaVersion = 1

// ManifestStream is the stream identifier in every shard manifest.
const ManifestStream = "hrmsim-shard-manifest"

// ShardManifest is the shard's compatibility record, written next to its
// trial journal when the shard finishes (including when it finishes
// interrupted). Merging validates manifests before it reads a single
// journal record, so an operator mixing shards from two campaigns gets a
// config-hash error, not silently blended statistics.
type ShardManifest struct {
	SchemaVersion int    `json:"schema_version"`
	Stream        string `json:"stream"`
	// ConfigHash is ConfigHash(Campaign): one hex string equality check
	// for "these shards describe the same deterministic trial sequence".
	ConfigHash string `json:"config_hash"`
	// Campaign is the full campaign identity, the same header the shard's
	// journal carries.
	Campaign JournalMeta `json:"campaign"`
	// ShardIndex / ShardCount are the shard coordinates; TrialLo/TrialHi
	// is the owned half-open index range.
	ShardIndex int `json:"shard_index"`
	ShardCount int `json:"shard_count"`
	TrialLo    int `json:"trial_lo"`
	TrialHi    int `json:"trial_hi"`
	// Journal is the shard's trial journal file name, relative to the
	// manifest's own directory.
	Journal string `json:"journal"`
	// Completed / Aborted count the shard's recorded trials by
	// disposition; Interrupted reports that the shard was cancelled
	// before covering its range.
	Completed   int  `json:"completed"`
	Aborted     int  `json:"aborted,omitempty"`
	Interrupted bool `json:"interrupted,omitempty"`
	// Metrics optionally carries the shard process's campaign metrics
	// snapshot (json.RawMessage so core does not depend on obsv's types;
	// the facade fills it with an obsv.Snapshot).
	Metrics json.RawMessage `json:"metrics,omitempty"`
}

// ConfigHash returns the canonical hash of a campaign identity: sha256
// over the JSON encoding of the meta with the stream and schema version
// stamped to their current values. Two campaigns hash equal exactly when
// JournalMeta.Matches finds no difference.
func ConfigHash(meta JournalMeta) string {
	meta.SchemaVersion = JournalSchemaVersion
	meta.Stream = JournalStream
	b, err := json.Marshal(meta)
	if err != nil {
		// JournalMeta is a flat struct of strings and ints; Marshal
		// cannot fail on it.
		panic(fmt.Sprintf("core: encoding journal meta: %v", err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// ShardJournalName returns the canonical journal file name of shard i of
// n: shard-0003-of-0008.jsonl. The fixed-width form keeps directory
// listings (and merge order) aligned with shard order.
func ShardJournalName(index, count int) string {
	return fmt.Sprintf("shard-%04d-of-%04d.jsonl", index, count)
}

// ShardManifestName returns the canonical manifest file name of shard i
// of n: shard-0003-of-0008.manifest.json.
func ShardManifestName(index, count int) string {
	return fmt.Sprintf("shard-%04d-of-%04d.manifest.json", index, count)
}

// ManifestPathFor derives the canonical manifest path for a journal
// path: the .jsonl suffix (when present) replaced by .manifest.json.
func ManifestPathFor(journalPath string) string {
	return strings.TrimSuffix(journalPath, ".jsonl") + ".manifest.json"
}

// NewShardManifest assembles a manifest from a finished shard run.
func NewShardManifest(meta JournalMeta, spec ShardSpec, journalName string, res *CampaignResult) ShardManifest {
	lo, hi := spec.Range(meta.Trials)
	return ShardManifest{
		SchemaVersion: ManifestSchemaVersion,
		Stream:        ManifestStream,
		ConfigHash:    ConfigHash(meta),
		Campaign:      meta,
		ShardIndex:    spec.Index,
		ShardCount:    spec.Count,
		TrialLo:       lo,
		TrialHi:       hi,
		Journal:       journalName,
		Completed:     res.Completed(),
		Aborted:       res.AbortedCount(),
		Interrupted:   res.Interrupted,
	}
}

// WriteManifest writes the manifest to path, stamping the stream id and
// schema version. The write is atomic (temp file + rename) so a merge
// scanning the directory never reads a torn manifest.
func WriteManifest(path string, m ShardManifest) error {
	m.SchemaVersion = ManifestSchemaVersion
	m.Stream = ManifestStream
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("core: encoding shard manifest: %w", err)
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(b, '\n'), 0o644); err != nil {
		return fmt.Errorf("core: writing shard manifest: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("core: writing shard manifest: %w", err)
	}
	return nil
}

// ReadManifest reads and validates one shard manifest: stream, schema
// version, shard coordinates, and that the recorded config hash matches
// the embedded campaign identity (a hand-edited manifest cannot smuggle
// mismatched shards past the merge).
func ReadManifest(path string) (ShardManifest, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return ShardManifest{}, fmt.Errorf("core: reading shard manifest: %w", err)
	}
	var m ShardManifest
	if err := json.Unmarshal(b, &m); err != nil {
		return ShardManifest{}, fmt.Errorf("core: parsing shard manifest %s: %w", path, err)
	}
	if m.Stream != ManifestStream {
		return ShardManifest{}, fmt.Errorf("core: %s is not a shard manifest (stream %q)", path, m.Stream)
	}
	if m.SchemaVersion != ManifestSchemaVersion {
		return ShardManifest{}, fmt.Errorf("core: %s: unsupported manifest schema version %d (want %d)",
			path, m.SchemaVersion, ManifestSchemaVersion)
	}
	if err := (ShardSpec{Index: m.ShardIndex, Count: m.ShardCount}).Validate(); err != nil {
		return ShardManifest{}, fmt.Errorf("core: %s: %w", path, err)
	}
	if got := ConfigHash(m.Campaign); got != m.ConfigHash {
		return ShardManifest{}, fmt.Errorf("core: %s: config hash %s does not match its own campaign identity (%s)",
			path, m.ConfigHash, got)
	}
	return m, nil
}

// Shard is one loaded shard: its manifest plus the resolved journal
// path.
type Shard struct {
	Manifest    ShardManifest
	JournalPath string
}

// LoadShardDir discovers every *.manifest.json in dir and loads it. The
// result is sorted by shard index (ties broken by file name), the order
// MergeShards applies keep-first dedup in.
func LoadShardDir(dir string) ([]Shard, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("core: reading shard directory: %w", err)
	}
	var shards []Shard
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".manifest.json") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		m, err := ReadManifest(path)
		if err != nil {
			return nil, err
		}
		shards = append(shards, Shard{
			Manifest:    m,
			JournalPath: filepath.Join(dir, m.Journal),
		})
	}
	if len(shards) == 0 {
		return nil, fmt.Errorf("core: no shard manifests (*.manifest.json) in %s", dir)
	}
	sort.SliceStable(shards, func(i, j int) bool {
		if shards[i].Manifest.ShardIndex != shards[j].Manifest.ShardIndex {
			return shards[i].Manifest.ShardIndex < shards[j].Manifest.ShardIndex
		}
		return shards[i].JournalPath < shards[j].JournalPath
	})
	return shards, nil
}

// MergeStats summarizes one merge for operators and metrics.
type MergeStats struct {
	// Shards is the number of shard journals merged.
	Shards int
	// Records is the number of distinct trials in the merged result.
	Records int
	// Duplicates counts records dropped by keep-first dedup — the same
	// trial index recorded by more than one shard (e.g. overlapping
	// re-runs dropped into one directory).
	Duplicates int
	// Missing counts trial indices of the campaign with no record in any
	// shard (crashed or interrupted shards that were never resumed).
	Missing int
}

// MergeShards validates a shard set and merges its journals. Every
// manifest must carry the same config hash; each journal's own header
// must match its manifest's campaign identity. Records are merged
// keep-first in the order LoadShardDir returns (ascending shard index),
// so duplicate trial keys across shards keep the earliest shard's
// record — the cross-journal extension of the resume reader's
// within-journal rule. The merged map is keyed by trial index.
//
// Missing trials are not an error: merging the shards of an interrupted
// campaign yields a partial (resumable) result, exactly like reading the
// journal of an interrupted single-process run.
func MergeShards(shards []Shard) (JournalMeta, map[int]TrialResult, MergeStats, error) {
	if len(shards) == 0 {
		return JournalMeta{}, nil, MergeStats{}, fmt.Errorf("core: no shards to merge")
	}
	ref := shards[0].Manifest
	for _, s := range shards[1:] {
		if s.Manifest.ConfigHash != ref.ConfigHash {
			// Matches pinpoints the first differing identity field for
			// the error message; the hash is the authoritative check.
			detail := ref.Campaign.Matches(s.Manifest.Campaign)
			if detail == nil {
				detail = fmt.Errorf("config hashes differ (%s vs %s)", ref.ConfigHash, s.Manifest.ConfigHash)
			}
			return JournalMeta{}, nil, MergeStats{}, fmt.Errorf(
				"core: shard %d/%d (%s) belongs to a different campaign than shard %d/%d: %w",
				s.Manifest.ShardIndex, s.Manifest.ShardCount, s.JournalPath,
				ref.ShardIndex, ref.ShardCount, detail)
		}
	}

	merged := make(map[int]TrialResult)
	stats := MergeStats{Shards: len(shards)}
	for _, s := range shards {
		f, err := os.Open(s.JournalPath)
		if err != nil {
			return JournalMeta{}, nil, MergeStats{}, fmt.Errorf("core: opening shard journal: %w", err)
		}
		meta, recs, err := ReadJournal(f)
		f.Close()
		if err != nil {
			return JournalMeta{}, nil, MergeStats{}, fmt.Errorf("core: shard journal %s: %w", s.JournalPath, err)
		}
		if err := meta.Matches(s.Manifest.Campaign); err != nil {
			return JournalMeta{}, nil, MergeStats{}, fmt.Errorf(
				"core: shard journal %s does not match its manifest: %w", s.JournalPath, err)
		}
		// Deterministic keep-first: apply each journal's records in
		// ascending trial order.
		idxs := make([]int, 0, len(recs))
		for i := range recs {
			idxs = append(idxs, i)
		}
		sort.Ints(idxs)
		for _, i := range idxs {
			if _, dup := merged[i]; dup {
				stats.Duplicates++
				continue
			}
			merged[i] = recs[i]
		}
	}
	stats.Records = len(merged)
	stats.Missing = ref.Campaign.Trials - stats.Records
	return ref.Campaign, merged, stats, nil
}

// ResultFromTrials reconstructs a CampaignResult from journaled trial
// records — the merge-side twin of the supervisor's result assembly, so
// aggregates computed over a merged N-shard campaign go through exactly
// the same code as a single-process run's. Interrupted is set when the
// records do not cover every requested trial.
func ResultFromTrials(app string, spec faults.Spec, requested int, trials map[int]TrialResult) *CampaignResult {
	res := &CampaignResult{
		App:       app,
		Spec:      spec,
		Requested: requested,
		// Shard journals only exist for fixed plans (adaptive campaigns
		// are unsharded), so the merged plan is the fixed one.
		Planned:   requested,
		PlanFinal: true,
		counts:    make(map[Outcome]int),
	}
	idxs := make([]int, 0, len(trials))
	for i := range trials {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	for _, i := range idxs {
		tr := trials[i]
		tr.Index = i
		res.Trials = append(res.Trials, tr)
		if tr.Disposition == DispositionCompleted {
			res.counts[tr.Outcome]++
		}
	}
	res.Interrupted = len(res.Trials) < requested
	return res
}
