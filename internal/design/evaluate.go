package design

import (
	"fmt"
	"math"
	"sort"
	"time"

	"hrmsim/internal/ecc"
	"hrmsim/internal/faults"
)

// Evaluation is one evaluated design point — one row of Table 6 (right).
type Evaluation struct {
	Name string
	// MemorySavings is the memory cost saving vs the all-SEC-DED
	// baseline (mid estimate), with Lo/Hi spanning the less-tested
	// pricing band.
	MemorySavings, MemorySavingsLo, MemorySavingsHi float64
	// ServerSavings is the server hardware cost saving (memory savings
	// × DRAM share).
	ServerSavings, ServerSavingsLo, ServerSavingsHi float64
	// CrashesPerMonth is the expected memory-error-induced crash rate.
	CrashesPerMonth float64
	// Availability is single server availability considering only
	// memory errors.
	Availability float64
	// IncorrectPerMillion is the rate of incorrect responses per
	// million queries while operational.
	IncorrectPerMillion float64
	// MeetsTarget reports Availability >= Params.TargetAvailability.
	MeetsTarget bool
}

// techniqueCorrects reports whether a technique corrects the single-bit
// errors of the Table 6 error model.
func techniqueCorrects(t ecc.Technique) bool {
	switch t {
	case ecc.TechSECDED, ecc.TechDECTED, ecc.TechChipkill, ecc.TechRAIM, ecc.TechMirroring:
		return true
	default:
		return false
	}
}

// techniqueDetects reports whether a technique at least detects single-bit
// errors.
func techniqueDetects(t ecc.Technique) bool {
	return t != ecc.TechNone
}

// residuals returns the fraction of a region's unprotected crash and
// incorrect rates that survive a mapping, plus any additional crash
// probability from detected-but-unrecoverable machine checks.
func residuals(p Params, m Mapping) (crashFrac, incorrectFrac, mcePerErr float64, err error) {
	switch {
	case techniqueCorrects(m.Technique):
		// Correcting codes absorb single-bit errors entirely; on
		// less-tested devices a small fraction of errors are multi-bit
		// patterns that surface as fatal machine checks.
		if m.LessTested {
			return 0, 0, p.MCEscapeLessTested, nil
		}
		return 0, 0, 0, nil
	case m.Technique == ecc.TechParity:
		if m.Response == RespCorrect {
			// Par+R: detected errors are recovered from persistent
			// storage; small residuals for recovery failures and
			// stale checkpoint windows.
			return p.ParRCrashResidual, p.ParRIncorrectResidual, 0, nil
		}
		// Parity without software correction turns every consumed
		// error into a detected-uncorrectable stop: at least as many
		// crashes as no protection, but no silent wrong answers.
		return 1, 0, 0, nil
	case m.Technique == ecc.TechNone:
		if m.Response == RespCorrect {
			return 0, 0, 0, fmt.Errorf("design: software correction requires a detecting technique (got NoECC)")
		}
		return 1, 1, 0, nil
	default:
		return 0, 0, 0, fmt.Errorf("design: unsupported technique %v", m.Technique)
	}
}

// memorySaving returns the cost saving of one region's mapping relative to
// the fully tested SEC-DED baseline, at the given less-tested saving.
func memorySaving(p Params, m Mapping, ltSaving float64) (float64, error) {
	spec, err := ecc.SpecFor(m.Technique)
	if err != nil {
		return 0, err
	}
	cost := (1 + spec.AddedCapacity) / (1 + p.BaselineOverhead)
	if m.LessTested {
		cost *= 1 - ltSaving
	}
	return 1 - cost, nil
}

// Evaluate computes one Table 6 row for a design point over the given
// region inputs.
func Evaluate(p Params, inputs []RegionInput, d DesignPoint) (Evaluation, error) {
	if err := p.Validate(); err != nil {
		return Evaluation{}, err
	}
	if len(inputs) == 0 {
		return Evaluation{}, fmt.Errorf("design: no region inputs")
	}
	var shareSum float64
	for _, in := range inputs {
		shareSum += in.Share
	}
	if math.Abs(shareSum-1) > 0.01 {
		return Evaluation{}, fmt.Errorf("design: region shares sum to %g, want 1", shareSum)
	}

	ev := Evaluation{Name: d.Name}
	var crashes, incorrect float64
	for _, in := range inputs {
		m, ok := d.Regions[in.Name]
		if !ok {
			return Evaluation{}, fmt.Errorf("design: point %q has no mapping for region %q", d.Name, in.Name)
		}
		rate := p.ErrorsPerMonth
		if m.LessTested {
			rate *= p.LessTestedRateFactor
		}
		cf, inf, mce, err := residuals(p, m)
		if err != nil {
			return Evaluation{}, err
		}
		crashes += rate * in.Share * (in.CrashProb*cf + mce)
		incorrect += rate * in.Share * in.IncorrectPerErr * inf

		for i, lt := range []float64{p.LessTestedSaving, p.LessTestedSaving - p.LessTestedBand, p.LessTestedSaving + p.LessTestedBand} {
			s, err := memorySaving(p, m, lt)
			if err != nil {
				return Evaluation{}, err
			}
			switch i {
			case 0:
				ev.MemorySavings += in.Share * s
			case 1:
				ev.MemorySavingsLo += in.Share * s
			case 2:
				ev.MemorySavingsHi += in.Share * s
			}
		}
	}
	ev.ServerSavings = ev.MemorySavings * p.DRAMShareOfServer
	ev.ServerSavingsLo = ev.MemorySavingsLo * p.DRAMShareOfServer
	ev.ServerSavingsHi = ev.MemorySavingsHi * p.DRAMShareOfServer
	ev.CrashesPerMonth = crashes
	ev.Availability = AvailabilityFor(crashes, p.CrashRecovery)
	ev.IncorrectPerMillion = incorrect
	ev.MeetsTarget = ev.Availability >= p.TargetAvailability
	return ev, nil
}

// AvailabilityFor converts a crash rate into single server availability:
// each crash costs one recovery period of downtime per month.
func AvailabilityFor(crashesPerMonth float64, recovery time.Duration) float64 {
	downtime := crashesPerMonth * recovery.Minutes()
	monthMinutes := faults.Month.Minutes()
	a := 1 - downtime/monthMinutes
	if a < 0 {
		return 0
	}
	return a
}

// TolerableErrors returns the maximum memory errors per month an
// unprotected deployment of an application can sustain while meeting an
// availability target (the Fig. 8 curves): the downtime budget divided by
// the expected downtime per error.
func TolerableErrors(p Params, overallCrashProb, targetAvailability float64) (float64, error) {
	if overallCrashProb <= 0 || overallCrashProb > 1 {
		return 0, fmt.Errorf("design: crash probability %g outside (0,1]", overallCrashProb)
	}
	if targetAvailability <= 0 || targetAvailability >= 1 {
		return 0, fmt.Errorf("design: target availability %g outside (0,1)", targetAvailability)
	}
	allowedCrashes := (1 - targetAvailability) * faults.Month.Minutes() / p.CrashRecovery.Minutes()
	return allowedCrashes / overallCrashProb, nil
}

// The five Table 6 design points.

// TypicalServer protects everything with SEC-DED on tested DRAM.
func TypicalServer() DesignPoint {
	return uniformPoint("Typical Server", Mapping{Technique: ecc.TechSECDED, Response: RespRetire})
}

// ConsumerPC uses no protection anywhere.
func ConsumerPC() DesignPoint {
	return uniformPoint("Consumer PC", Mapping{Technique: ecc.TechNone, Response: RespConsume})
}

// DetectRecover protects the private region with parity + software
// recovery (Par+R) and leaves the rest unprotected.
func DetectRecover() DesignPoint {
	return DesignPoint{
		Name: "Detect&Recover",
		Regions: map[string]Mapping{
			"private": {Technique: ecc.TechParity, Response: RespCorrect},
			"heap":    {Technique: ecc.TechNone, Response: RespConsume},
			"stack":   {Technique: ecc.TechNone, Response: RespConsume},
		},
	}
}

// LessTested uses unprotected less-tested DRAM throughout.
func LessTested() DesignPoint {
	return uniformPoint("Less-Tested (L)", Mapping{Technique: ecc.TechNone, Response: RespConsume, LessTested: true})
}

// DetectRecoverL runs on less-tested DRAM with ECC on the private region,
// Par+R on the heap, and nothing on the stack.
func DetectRecoverL() DesignPoint {
	return DesignPoint{
		Name: "Detect&Recover/L",
		Regions: map[string]Mapping{
			"private": {Technique: ecc.TechSECDED, Response: RespRetire, LessTested: true},
			"heap":    {Technique: ecc.TechParity, Response: RespCorrect, LessTested: true},
			"stack":   {Technique: ecc.TechNone, Response: RespConsume, LessTested: true},
		},
	}
}

// Table6Points returns the five evaluated design points in Table 6 order.
func Table6Points() []DesignPoint {
	return []DesignPoint{
		TypicalServer(), ConsumerPC(), DetectRecover(), LessTested(), DetectRecoverL(),
	}
}

// uniformPoint maps every region identically.
func uniformPoint(name string, m Mapping) DesignPoint {
	return DesignPoint{
		Name: name,
		Regions: map[string]Mapping{
			"private": m, "heap": m, "stack": m,
		},
	}
}

// CandidateTechniques returns the per-region techniques a design-space
// search considers by default: no protection, parity with software
// recovery, and SEC-DED.
func CandidateTechniques() []ecc.Technique {
	return []ecc.Technique{ecc.TechNone, ecc.TechParity, ecc.TechSECDED}
}

// EnumeratePoints generates the full cross-product of candidate mappings
// per region over the given techniques, for design-space exploration
// beyond the five published points. Software responses are chosen
// automatically: Par+R for parity, retirement for correcting codes,
// consume otherwise. Points are returned in deterministic order.
func EnumeratePoints(regions []string, techniques []ecc.Technique, lessTested []bool) []DesignPoint {
	type option struct {
		m Mapping
	}
	var options []option
	for _, t := range techniques {
		for _, lt := range lessTested {
			m := Mapping{Technique: t, LessTested: lt}
			switch {
			case t == ecc.TechParity:
				m.Response = RespCorrect
			case techniqueCorrects(t):
				m.Response = RespRetire
			default:
				m.Response = RespConsume
			}
			options = append(options, option{m: m})
		}
	}
	var out []DesignPoint
	total := 1
	for range regions {
		total *= len(options)
	}
	for idx := 0; idx < total; idx++ {
		d := DesignPoint{Regions: make(map[string]Mapping, len(regions))}
		rem := idx
		var nameParts []string
		for _, r := range regions {
			opt := options[rem%len(options)]
			rem /= len(options)
			d.Regions[r] = opt.m
			suffix := ""
			if opt.m.LessTested {
				suffix = "/L"
			}
			nameParts = append(nameParts, fmt.Sprintf("%s=%s%s", r, opt.m.Technique, suffix))
		}
		sort.Strings(nameParts)
		d.Name = fmt.Sprintf("point-%d", idx)
		out = append(out, d)
	}
	return out
}

// Frontier filters evaluations to those meeting the availability target,
// sorted by descending server cost savings — the candidates a datacenter
// operator would pick from.
func Frontier(evals []Evaluation) []Evaluation {
	var out []Evaluation
	for _, e := range evals {
		if e.MeetsTarget {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].ServerSavings != out[j].ServerSavings {
			return out[i].ServerSavings > out[j].ServerSavings
		}
		return out[i].Name < out[j].Name
	})
	return out
}
