// Differential equivalence suite for the clean-page fast path: every
// test here drives two address spaces — one with the fast path on, one
// forced through the reference slow path — with an identical operation
// stream, and requires them to be indistinguishable: same load results,
// same errors, same counters, same ECC/access event sequences, same
// stored bytes, same taint state. This is the contract that makes the
// fast path a pure optimization.
package simmem_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"hrmsim/internal/ecc"
	"hrmsim/internal/simmem"
)

// eqCodecs enumerates the protection techniques under differential test,
// plus the unprotected baseline.
func eqCodecs() []struct {
	name  string
	codec func() simmem.Codec
} {
	return []struct {
		name  string
		codec func() simmem.Codec
	}{
		{"noecc", func() simmem.Codec { return nil }},
		{"parity", func() simmem.Codec { return ecc.NewParity() }},
		{"secded", func() simmem.Codec { return ecc.NewSECDED() }},
		{"dected", func() simmem.Codec { return ecc.NewDECTED() }},
		{"chipkill", func() simmem.Codec { return ecc.NewChipkill() }},
		{"mirror", func() simmem.Codec { return ecc.NewMirror() }},
	}
}

// eqLog records the observable event stream of one space.
type eqLog struct {
	entries []string
}

func (l *eqLog) ObserveAccess(ev simmem.AccessEvent) {
	l.entries = append(l.entries, fmt.Sprintf("access:%v:%#x+%d@%d", ev.Kind, ev.Addr, ev.Len, ev.Time))
}

func (l *eqLog) ObserveECC(ev simmem.ECCEvent) {
	l.entries = append(l.entries, fmt.Sprintf("ecc:%d:%#x@%d", ev.Kind, ev.Addr, ev.Time))
}

// eqSpace is one side of a differential pair.
type eqSpace struct {
	as   *simmem.AddressSpace
	log  *eqLog
	snap *simmem.Snapshot
}

// newEqSpace builds one side: a backed protected region, an unbacked
// protected region, and an unprotected region, matching the application
// layout (private/heap/stack).
func newEqSpace(t *testing.T, codec simmem.Codec, cacheLines int, fast bool) *eqSpace {
	t.Helper()
	as, err := simmem.New(simmem.Config{PageSize: 256, DisableFastPath: !fast})
	if err != nil {
		t.Fatal(err)
	}
	specs := []simmem.RegionSpec{
		{Name: "private", Kind: simmem.RegionPrivate, Size: 1024, Backed: true, Codec: codec},
		{Name: "heap", Kind: simmem.RegionHeap, Size: 1024, Codec: codec},
		{Name: "stack", Kind: simmem.RegionStack, Size: 512},
	}
	for _, s := range specs {
		if _, err := as.AddRegion(s); err != nil {
			t.Fatal(err)
		}
	}
	if cacheLines > 0 {
		if err := as.EnableCache(cacheLines); err != nil {
			t.Fatal(err)
		}
	}
	l := &eqLog{}
	as.AddAccessObserver(l)
	as.AddECCObserver(l)
	return &eqSpace{as: as, log: l}
}

// errString renders an error for comparison ("" for nil).
func errString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

// driveEquivalence applies nOps pseudo-random operations from seed to
// both spaces and fails on any observable divergence.
func driveEquivalence(t *testing.T, fastS, slowS *eqSpace, seed int64, nOps int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	pair := [2]*eqSpace{fastS, slowS}
	regions := fastS.as.Regions()

	pickSpan := func() (simmem.Addr, int) {
		r := regions[rng.Intn(len(regions))]
		n := 1 + rng.Intn(48)
		off := rng.Intn(r.Size() - n)
		return r.Base() + simmem.Addr(off), n
	}

	for op := 0; op < nOps; op++ {
		switch rng.Intn(20) {
		case 0, 1, 2, 3, 4, 5, 6: // Load
			addr, n := pickSpan()
			bufs := [2][]byte{make([]byte, n), make([]byte, n)}
			var errs [2]string
			for i, s := range pair {
				errs[i] = errString(s.as.Load(addr, bufs[i]))
			}
			if errs[0] != errs[1] {
				t.Fatalf("op %d: Load(%#x,%d) err fast=%q slow=%q", op, addr, n, errs[0], errs[1])
			}
			if !bytes.Equal(bufs[0], bufs[1]) {
				t.Fatalf("op %d: Load(%#x,%d) fast=%x slow=%x", op, addr, n, bufs[0], bufs[1])
			}
		case 7, 8, 9, 10, 11, 12: // Store
			addr, n := pickSpan()
			data := make([]byte, n)
			rng.Read(data)
			var errs [2]string
			for i, s := range pair {
				errs[i] = errString(s.as.Store(addr, data))
			}
			if errs[0] != errs[1] {
				t.Fatalf("op %d: Store(%#x,%d) err fast=%q slow=%q", op, addr, n, errs[0], errs[1])
			}
		case 13: // FlipBit (soft error)
			addr, _ := pickSpan()
			bit := rng.Intn(8)
			for _, s := range pair {
				if err := s.as.FlipBit(addr, bit); err != nil {
					t.Fatalf("op %d: FlipBit: %v", op, err)
				}
			}
		case 14: // FlipCheckBit (soft error in check storage)
			r := regions[rng.Intn(2)] // protected regions only
			if r.Codec() == nil {
				continue
			}
			addr := r.Base() + simmem.Addr(rng.Intn(r.Size()))
			bit := rng.Intn(r.Codec().CheckBytes() * 8)
			for _, s := range pair {
				if err := s.as.FlipCheckBit(addr, bit); err != nil {
					t.Fatalf("op %d: FlipCheckBit: %v", op, err)
				}
			}
		case 15: // StickBit (hard error)
			addr, _ := pickSpan()
			bit, val := rng.Intn(8), rng.Intn(2)
			for _, s := range pair {
				if err := s.as.StickBit(addr, bit, val); err != nil {
					t.Fatalf("op %d: StickBit: %v", op, err)
				}
			}
		case 16: // ScrubPage
			ri := rng.Intn(len(regions))
			pi := rng.Intn(regions[ri].PageCount())
			wb := rng.Intn(2) == 0
			var res [2]string
			for i, s := range pair {
				c, u, err := s.as.Regions()[ri].ScrubPage(pi, wb)
				res[i] = fmt.Sprintf("%d/%d/%s", c, u, errString(err))
			}
			if res[0] != res[1] {
				t.Fatalf("op %d: ScrubPage(%d,%d,%v) fast=%s slow=%s", op, ri, pi, wb, res[0], res[1])
			}
		case 17: // ReplaceFrame / FlushPage / RestoreWord on the backed region
			ri := 0
			r := regions[ri]
			pi := rng.Intn(r.PageCount())
			switch rng.Intn(3) {
			case 0:
				for _, s := range pair {
					if err := s.as.Regions()[ri].ReplaceFrame(pi); err != nil {
						t.Fatalf("op %d: ReplaceFrame: %v", op, err)
					}
				}
			case 1:
				for _, s := range pair {
					if err := s.as.Regions()[ri].FlushPage(pi); err != nil {
						t.Fatalf("op %d: FlushPage: %v", op, err)
					}
				}
			case 2:
				addr := r.Base() + simmem.Addr(rng.Intn(r.Size()))
				var errs [2]string
				for i, s := range pair {
					errs[i] = errString(s.as.Regions()[ri].RestoreWord(addr))
				}
				if errs[0] != errs[1] {
					t.Fatalf("op %d: RestoreWord err fast=%q slow=%q", op, errs[0], errs[1])
				}
			}
		case 18: // Snapshot
			for _, s := range pair {
				s.snap = s.as.Snapshot()
			}
		case 19: // Restore (when a snapshot is armed)
			if fastS.snap == nil {
				continue
			}
			var res [2]string
			for i, s := range pair {
				n, err := s.snap.Restore()
				res[i] = fmt.Sprintf("%d/%s", n, errString(err))
			}
			if res[0] != res[1] {
				t.Fatalf("op %d: Restore fast=%s slow=%s", op, res[0], res[1])
			}
		}
	}

	compareEqSpaces(t, fastS, slowS)
}

// compareEqSpaces checks every observable end state of the pair.
func compareEqSpaces(t *testing.T, fastS, slowS *eqSpace) {
	t.Helper()
	if f, s := fastS.as.Counters(), slowS.as.Counters(); f != s {
		t.Errorf("counters diverged: fast=%+v slow=%+v", f, s)
	}
	fh, fm, fw := fastS.as.CacheStats()
	sh, sm, sw := slowS.as.CacheStats()
	if fh != sh || fm != sm || fw != sw {
		t.Errorf("cache stats diverged: fast=%d/%d/%d slow=%d/%d/%d", fh, fm, fw, sh, sm, sw)
	}
	if f, s := fastS.as.TaintedPages(), slowS.as.TaintedPages(); f != s {
		t.Errorf("tainted pages diverged: fast=%d slow=%d", f, s)
	}
	if f, s := len(fastS.log.entries), len(slowS.log.entries); f != s {
		t.Fatalf("event counts diverged: fast=%d slow=%d", f, s)
	}
	for i := range fastS.log.entries {
		if fastS.log.entries[i] != slowS.log.entries[i] {
			t.Fatalf("event %d diverged: fast=%q slow=%q", i, fastS.log.entries[i], slowS.log.entries[i])
		}
	}
	for ri, fr := range fastS.as.Regions() {
		sr := slowS.as.Regions()[ri]
		fb := make([]byte, fr.Size())
		sb := make([]byte, sr.Size())
		if err := fastS.as.ReadRaw(fr.Base(), fb); err != nil {
			t.Fatalf("ReadRaw fast %q: %v", fr.Name(), err)
		}
		if err := slowS.as.ReadRaw(sr.Base(), sb); err != nil {
			t.Fatalf("ReadRaw slow %q: %v", sr.Name(), err)
		}
		if !bytes.Equal(fb, sb) {
			t.Errorf("stored bytes diverged in region %q", fr.Name())
		}
		for pi := 0; pi < fr.PageCount(); pi++ {
			if fr.CorrectedOnPage(pi) != sr.CorrectedOnPage(pi) || fr.Replacements(pi) != sr.Replacements(pi) {
				t.Errorf("page %d frame counters diverged in region %q", pi, fr.Name())
			}
		}
	}
	// Sanity: the fast space actually exercised the fast path, and the
	// reference space never did.
	if fastS.as.FastPathLoads() == 0 {
		t.Error("fast space never took the fast path; the differential test is vacuous")
	}
	if n := slowS.as.FastPathLoads(); n != 0 {
		t.Errorf("slow space took the fast path %d times; DisableFastPath is broken", n)
	}
}

// driveCrossPageSpan corrupts one word adjacent to a page boundary and
// streams span reads sliding across that boundary on both spaces: the
// exact shape where the single-page fast path, the multi-page bulk path,
// and the per-word walk over a partially-tainted page all meet. Bytes,
// errors, and taint state must match at every step.
func driveCrossPageSpan(t *testing.T, fastS, slowS *eqSpace, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed ^ 0x5eed))
	pair := [2]*eqSpace{fastS, slowS}
	regions := fastS.as.Regions()
	r := regions[int(seed&1)] // private (backed) or heap
	const ps = 256            // page size used by newEqSpace

	// Deterministic content across the first two pages.
	data := make([]byte, 2*ps)
	rng.Read(data)
	for _, s := range pair {
		if err := s.as.Store(r.Base(), data); err != nil {
			t.Fatalf("Store: %v", err)
		}
	}
	// Corrupt one word straddling neither page: the last word of page 0.
	addr := r.Base() + simmem.Addr(ps-8+rng.Intn(8))
	bit := rng.Intn(8)
	for _, s := range pair {
		if err := s.as.FlipBit(addr, bit); err != nil {
			t.Fatalf("FlipBit: %v", err)
		}
	}
	// Stream spans sliding across the page-0/page-1 boundary, plus spans
	// fully inside the clean page 1.
	for off := ps - 64; off <= ps+64; off += 16 {
		n := 48
		bufs := [2][]byte{make([]byte, n), make([]byte, n)}
		var errs [2]string
		for i, s := range pair {
			errs[i] = errString(s.as.Load(r.Base()+simmem.Addr(off), bufs[i]))
		}
		if errs[0] != errs[1] {
			t.Fatalf("span @%d: err fast=%q slow=%q", off, errs[0], errs[1])
		}
		if !bytes.Equal(bufs[0], bufs[1]) {
			t.Fatalf("span @%d: fast=%x slow=%x", off, bufs[0], bufs[1])
		}
	}
	fp, fw := fastS.as.TaintStats()
	sp, sw := slowS.as.TaintStats()
	if fp != sp || fw != sw {
		t.Fatalf("taint diverged after span stream: fast=%d/%d slow=%d/%d", fp, fw, sp, sw)
	}
}

// TestPartialTaintSpanAcrossPages runs the cross-page span scenario
// deterministically over the full codec matrix.
func TestPartialTaintSpanAcrossPages(t *testing.T) {
	for _, tc := range eqCodecs() {
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			for seed := int64(0); seed < 4; seed++ {
				fastS := newEqSpace(t, tc.codec(), 0, true)
				slowS := newEqSpace(t, tc.codec(), 0, false)
				driveCrossPageSpan(t, fastS, slowS, seed)
				compareEqSpaces(t, fastS, slowS)
			}
		})
	}
}

func TestAccessPathEquivalence(t *testing.T) {
	for _, tc := range eqCodecs() {
		for _, cached := range []struct {
			name  string
			lines int
		}{{"uncached", 0}, {"cached", 8}} {
			t.Run(tc.name+"/"+cached.name, func(t *testing.T) {
				t.Parallel()
				for seed := int64(1); seed <= 4; seed++ {
					fastS := newEqSpace(t, tc.codec(), cached.lines, true)
					slowS := newEqSpace(t, tc.codec(), cached.lines, false)
					driveEquivalence(t, fastS, slowS, seed, 1500)
				}
			})
		}
	}
}

// FuzzAccessPathEquivalence fuzzes the operation stream (via the rng
// seed) across the codec and cache matrix. Every execution opens with the
// cross-page span prologue — one corrupted word next to a page boundary,
// then streamed span reads across it — before the random op stream, so
// the partially-tainted-page walk is exercised on every input, not only
// when the rng happens to produce it.
func FuzzAccessPathEquivalence(f *testing.F) {
	for seed := int64(0); seed < 8; seed++ {
		f.Add(seed, uint8(seed%6), seed%2 == 0)
	}
	// Dedicated corpus seeds for the cross-page prologue over each codec,
	// with and without the cache in front.
	for c := int64(0); c < 6; c++ {
		f.Add(int64(0x9a9e)+c, uint8(c), false)
		f.Add(int64(0x9a9e)+c, uint8(c), true)
	}
	codecs := eqCodecs()
	f.Fuzz(func(t *testing.T, seed int64, codecIdx uint8, cached bool) {
		tc := codecs[int(codecIdx)%len(codecs)]
		lines := 0
		if cached {
			lines = 8
		}
		fastS := newEqSpace(t, tc.codec(), lines, true)
		slowS := newEqSpace(t, tc.codec(), lines, false)
		driveCrossPageSpan(t, fastS, slowS, seed)
		driveEquivalence(t, fastS, slowS, seed, 400)
	})
}
