package simmem

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestArenaNoOverlapProperty drives the arena with random alloc/free
// sequences and checks the fundamental invariants: live blocks never
// overlap, all stay inside the region, and freed blocks are reusable.
func TestArenaNoOverlapProperty(t *testing.T) {
	f := func(seed int64, opsRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		as, err := New(Config{PageSize: 256})
		if err != nil {
			return false
		}
		r, err := as.AddRegion(RegionSpec{Name: "h", Kind: RegionHeap, Size: 8192})
		if err != nil {
			return false
		}
		a := NewArena(r)
		type block struct {
			addr Addr
			size int
		}
		var live []block
		ops := int(opsRaw)%200 + 20
		for i := 0; i < ops; i++ {
			if len(live) > 0 && rng.Intn(3) == 0 {
				k := rng.Intn(len(live))
				if err := a.Free(live[k].addr); err != nil {
					return false
				}
				live = append(live[:k], live[k+1:]...)
				continue
			}
			size := rng.Intn(120) + 1
			addr, err := a.Alloc(size)
			if err != nil {
				continue // out of memory is legal
			}
			// Bounds.
			if addr < r.Base() || addr+Addr(size) > r.Base()+Addr(r.Size()) {
				return false
			}
			// Overlap against every live block (sizes rounded to 16).
			lo := addr
			hi := addr + Addr((size+15)/16*16)
			for _, b := range live {
				blo := b.addr
				bhi := b.addr + Addr((b.size+15)/16*16)
				if lo < bhi && blo < hi {
					return false
				}
			}
			live = append(live, block{addr: addr, size: size})
		}
		return a.Live() == len(live)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestStackLIFOProperty drives random push/pop sequences and checks LIFO
// discipline and depth accounting.
func TestStackLIFOProperty(t *testing.T) {
	f := func(seed int64, opsRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		as, err := New(Config{PageSize: 256})
		if err != nil {
			return false
		}
		r, err := as.AddRegion(RegionSpec{Name: "s", Kind: RegionStack, Size: 4096})
		if err != nil {
			return false
		}
		s := NewStack(r)
		var frames []Frame
		depth := 0
		ops := int(opsRaw)%150 + 10
		for i := 0; i < ops; i++ {
			if len(frames) > 0 && rng.Intn(2) == 0 {
				f := frames[len(frames)-1]
				if err := s.Pop(f); err != nil {
					return false
				}
				frames = frames[:len(frames)-1]
				depth -= f.Size
				continue
			}
			size := rng.Intn(100) + 1
			fr, err := s.Push(size)
			if err != nil {
				continue // overflow is legal
			}
			if int(fr.Base-r.Base()) != depth {
				return false // frames must be contiguous
			}
			frames = append(frames, fr)
			depth += fr.Size
		}
		return s.Depth() == depth
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
