package hrmsim

import (
	"fmt"
	"path/filepath"
	"reflect"
	"testing"

	"hrmsim/internal/core"
	"hrmsim/internal/obsv"
)

// TestShardMergeEquivalence pins the tentpole guarantee of the sharding
// subsystem: a campaign run as N worker shards (each journaling its
// slice and writing a manifest) and merged back with MergeShards is
// bit-identical to the single-process run, for every application, shard
// count, and per-shard parallelism — modulo the run-shape bookkeeping
// (Parallelism records the worker pool that happened to run, which a
// merge does not have; a merged result reports 0).
func TestShardMergeEquivalence(t *testing.T) {
	for _, app := range Apps() {
		base := CharacterizeConfig{
			App:    app,
			Error:  SoftSingleBit,
			Size:   SizeSmall,
			Trials: 30,
			Seed:   13,
		}
		want, err := Characterize(base)
		if err != nil {
			t.Fatal(err)
		}
		for _, shards := range []int{1, 2, 4} {
			for _, par := range []int{1, 4} {
				t.Run(fmt.Sprintf("%s/shards=%d/par=%d", app, shards, par), func(t *testing.T) {
					dir := t.TempDir()
					for i := 0; i < shards; i++ {
						cfg := base
						cfg.Parallelism = par
						cfg.ShardIndex, cfg.ShardCount = i, shards
						cfg.JournalPath = filepath.Join(dir, core.ShardJournalName(i, shards))
						cfg.ManifestPath = filepath.Join(dir, core.ShardManifestName(i, shards))
						c, err := Characterize(cfg)
						if err != nil {
							t.Fatal(err)
						}
						if c.Shard == nil || c.Shard.Index != i || c.Shard.Count != shards {
							t.Fatalf("shard %d/%d: Shard = %+v", i, shards, c.Shard)
						}
						lo, hi := (core.ShardSpec{Index: i, Count: shards}).Range(base.Trials)
						if c.Shard.TrialLo != lo || c.Shard.TrialHi != hi {
							t.Fatalf("shard %d/%d: range [%d,%d), want [%d,%d)",
								i, shards, c.Shard.TrialLo, c.Shard.TrialHi, lo, hi)
						}
						if c.Completed+c.Aborted != hi-lo {
							t.Fatalf("shard %d/%d: %d results, want %d",
								i, shards, c.Completed+c.Aborted, hi-lo)
						}
					}
					got, info, err := MergeShards(MergeConfig{Dir: dir})
					if err != nil {
						t.Fatal(err)
					}
					if info.Records != base.Trials || info.Missing != 0 || info.Duplicates != 0 {
						t.Fatalf("merge info = %+v", info)
					}
					if len(info.Shards) != shards {
						t.Fatalf("merged %d shards, want %d", len(info.Shards), shards)
					}
					// Bit-identical modulo run-shape bookkeeping.
					wantCmp, gotCmp := *want, *got
					gotCmp.Parallelism = wantCmp.Parallelism
					if !reflect.DeepEqual(wantCmp, gotCmp) {
						t.Errorf("merged result diverged from single-process run:\nsingle: %+v\nmerged: %+v",
							wantCmp, gotCmp)
					}
				})
			}
		}
	}
}

// TestShardMetricsSnapshotMergeEquivalence pins the metrics half of the
// sharding contract: merging the per-shard registry snapshots
// (obsv.MergeSnapshots) reproduces the single-process registry for the
// same equivalence campaigns TestShardMergeEquivalence runs — for every
// deterministic metric. Run-shape metrics are excluded by name:
// campaign_trial_wall_ms measures wall clocks, campaign_snapshot_dirty_pages
// depends on how trials landed on worker sessions, the
// simmem_tainted_pages / simmem_tainted_words gauges are
// last-writer-wins within a process, and campaign_metrics_folds_total
// counts per-worker shard publications (a function of the worker pool,
// not the science). Every other counter and the virtual-time histogram
// are deterministic and must merge to exactly the single-process values.
func TestShardMetricsSnapshotMergeEquivalence(t *testing.T) {
	for _, app := range Apps() {
		base := CharacterizeConfig{
			App:         app,
			Error:       SoftSingleBit,
			Size:        SizeSmall,
			Trials:      30,
			Seed:        13,
			Parallelism: 2,
		}
		singleReg := obsv.NewRegistry()
		cfg := base
		cfg.Metrics = singleReg
		if _, err := Characterize(cfg); err != nil {
			t.Fatal(err)
		}
		want := singleReg.Snapshot()
		for _, shards := range []int{2, 4} {
			t.Run(fmt.Sprintf("%s/shards=%d", app, shards), func(t *testing.T) {
				snaps := make([]obsv.Snapshot, shards)
				for i := 0; i < shards; i++ {
					reg := obsv.NewRegistry()
					cfg := base
					cfg.ShardIndex, cfg.ShardCount = i, shards
					cfg.Metrics = reg
					if _, err := Characterize(cfg); err != nil {
						t.Fatal(err)
					}
					snaps[i] = reg.Snapshot()
				}
				got := obsv.MergeSnapshots(snaps...)
				const foldsMetric = "campaign_metrics_folds_total"
				delete(got.Counters, foldsMetric)
				delete(want.Counters, foldsMetric)
				if !reflect.DeepEqual(got.Counters, want.Counters) {
					t.Errorf("merged counters diverged from single-process run:\nmerged: %v\nsingle: %v",
						got.Counters, want.Counters)
				}
				// The virtual-time histogram's bucket counts are exact;
				// Sum is a float accumulated in worker-completion order,
				// so it agrees only up to addition-reordering rounding.
				const virtHist = "campaign_trial_virtual_minutes"
				gh, wh := got.Histograms[virtHist], want.Histograms[virtHist]
				if !reflect.DeepEqual(gh.Bounds, wh.Bounds) || !reflect.DeepEqual(gh.Counts, wh.Counts) || gh.Count != wh.Count {
					t.Errorf("merged %s diverged:\nmerged: %+v\nsingle: %+v", virtHist, gh, wh)
				}
				if diff := gh.Sum - wh.Sum; diff < -1e-9 || diff > 1e-9 {
					t.Errorf("merged %s sum = %v, single-process %v", virtHist, gh.Sum, wh.Sum)
				}
				// Merge order must not matter for real campaign snapshots
				// either (beyond the obsv unit tests' synthetic ones).
				rev := make([]obsv.Snapshot, shards)
				for i := range snaps {
					rev[shards-1-i] = snaps[i]
				}
				back := obsv.MergeSnapshots(rev...)
				delete(back.Counters, foldsMetric)
				if !reflect.DeepEqual(back.Counters, got.Counters) {
					t.Errorf("counter merge is order-dependent:\nfwd: %v\nrev: %v",
						got.Counters, back.Counters)
				}
			})
		}
	}
}

// TestMergeShardsValidation covers the facade's merge error paths.
func TestMergeShardsValidation(t *testing.T) {
	if _, _, err := MergeShards(MergeConfig{}); err == nil {
		t.Error("want error for missing Dir")
	}
	if _, _, err := MergeShards(MergeConfig{Dir: t.TempDir()}); err == nil {
		t.Error("want error for empty shard directory")
	}
}

// TestCharacterizeShardValidation covers the facade's shard config
// error paths.
func TestCharacterizeShardValidation(t *testing.T) {
	base := CharacterizeConfig{App: AppKVStore, Size: SizeSmall, Trials: 10, Seed: 1}

	cfg := base
	cfg.ShardIndex, cfg.ShardCount = 2, 2
	if _, err := Characterize(cfg); err == nil {
		t.Error("want error for shard index out of range")
	}

	cfg = base
	cfg.ShardIndex = 1 // no ShardCount
	if _, err := Characterize(cfg); err == nil {
		t.Error("want error for ShardIndex without ShardCount")
	}

	cfg = base
	cfg.ManifestPath = filepath.Join(t.TempDir(), "m.json")
	if _, err := Characterize(cfg); err == nil {
		t.Error("want error for ManifestPath without JournalPath")
	}
}

// TestUnshardedManifest: a plain single-process run with a manifest
// writes a 0/1 manifest, so its journal is consumable by MergeShards
// like any shard set.
func TestUnshardedManifest(t *testing.T) {
	dir := t.TempDir()
	cfg := CharacterizeConfig{
		App:          AppKVStore,
		Size:         SizeSmall,
		Trials:       20,
		Seed:         4,
		JournalPath:  filepath.Join(dir, core.ShardJournalName(0, 1)),
		ManifestPath: filepath.Join(dir, core.ShardManifestName(0, 1)),
	}
	want, err := Characterize(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if want.Shard != nil {
		t.Fatalf("unsharded run reported Shard = %+v", want.Shard)
	}
	got, info, err := MergeShards(MergeConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if info.Shards[0].Index != 0 || info.Shards[0].Count != 1 {
		t.Fatalf("manifest coordinates = %d/%d, want 0/1", info.Shards[0].Index, info.Shards[0].Count)
	}
	wantCmp, gotCmp := *want, *got
	gotCmp.Parallelism = wantCmp.Parallelism
	if !reflect.DeepEqual(wantCmp, gotCmp) {
		t.Errorf("merge of the 0/1 manifest diverged:\nrun:    %+v\nmerged: %+v", wantCmp, gotCmp)
	}
}
