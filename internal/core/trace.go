// Event-trace emission glue: observational adapters that turn simmem
// access/ECC hooks and trial milestones into evtrace events. Everything
// here is only constructed when CampaignConfig.Tracer is non-nil, so the
// zero-config path stays branch- and allocation-free on the access hot
// path.

package core

import (
	"time"

	"hrmsim/internal/evtrace"
	"hrmsim/internal/inject"
	"hrmsim/internal/simmem"
)

// traceAccessObserver emits one access_faulty event for every
// application load/store overlapping an injected byte. Unlike
// accessTracker (which stops at the first hit, because only the first
// consumption matters for classification), it reports every consumption,
// subject to the tracer's per-trial bulk cap.
type traceAccessObserver struct {
	tt      *evtrace.TrialTracer
	targets []simmem.Addr
}

var _ simmem.AccessObserver = (*traceAccessObserver)(nil)

// ObserveAccess implements simmem.AccessObserver.
func (o *traceAccessObserver) ObserveAccess(ev simmem.AccessEvent) {
	for _, a := range o.targets {
		if a >= ev.Addr && a < ev.Addr+simmem.Addr(ev.Len) {
			o.tt.Emit(evtrace.Event{
				Kind:       evtrace.KindAccessFaulty,
				VTNanos:    int64(ev.Time),
				Addr:       uint64(ev.Addr),
				Len:        ev.Len,
				Access:     ev.Kind.String(),
				Region:     ev.Region.Name(),
				RegionKind: ev.Region.Kind().String(),
			})
			return
		}
	}
}

// traceECCObserver forwards protection-code events: corrections,
// uncorrectable detections, and successful software responses.
type traceECCObserver struct {
	tt *evtrace.TrialTracer
}

var _ simmem.ECCObserver = (*traceECCObserver)(nil)

// ObserveECC implements simmem.ECCObserver.
func (o *traceECCObserver) ObserveECC(ev simmem.ECCEvent) {
	var kind evtrace.Kind
	detail := ""
	switch ev.Kind {
	case simmem.ECCCorrected:
		kind = evtrace.KindECCCorrected
	case simmem.ECCUncorrectable:
		kind = evtrace.KindECCUncorrectable
	case simmem.ECCRecovered:
		kind = evtrace.KindSWResponse
		detail = "MC handler recovered the word"
	default:
		return
	}
	o.tt.Emit(evtrace.Event{
		Kind:       kind,
		VTNanos:    int64(ev.Time),
		Addr:       uint64(ev.Addr),
		Region:     ev.Region.Name(),
		RegionKind: ev.Region.Kind().String(),
		Detail:     detail,
	})
}

// traceInjection emits one inject event per corrupted byte and registers
// the trace observers on the trial's address space.
func traceInjection(tt *evtrace.TrialTracer, as *simmem.AddressSpace, inj inject.Injection, addrs []simmem.Addr) {
	if tt == nil {
		return
	}
	now := int64(as.Clock().Now())
	for _, tgt := range inj.Targets {
		tt.Emit(evtrace.Event{
			Kind:       evtrace.KindInject,
			VTNanos:    now,
			Addr:       uint64(tgt.Addr),
			Bits:       tgt.Bits,
			Error:      inj.Spec.String(),
			Region:     inj.Region.Name(),
			RegionKind: inj.Region.Kind().String(),
		})
	}
	as.AddAccessObserver(&traceAccessObserver{tt: tt, targets: addrs})
	as.AddECCObserver(&traceECCObserver{tt: tt})
}

// traceTrialStart emits the opening event (the only events carrying host
// wall-clock readings are trial_start and trial_end, in the segregated
// wall_unix_ns field).
func traceTrialStart(tt *evtrace.TrialTracer, as *simmem.AddressSpace) {
	traceTrialStartAt(tt, time.Duration(as.Clock().Now()))
}

// traceTrialStartAt emits the opening event at an explicit virtual time —
// snapshot-lifecycle trials stamp the post-build reading captured before
// warmup, so their trial_start matches a fresh build's.
func traceTrialStartAt(tt *evtrace.TrialTracer, vt time.Duration) {
	if tt == nil {
		return
	}
	tt.Emit(evtrace.Event{
		Kind:          evtrace.KindTrialStart,
		VTNanos:       int64(vt),
		WallUnixNanos: time.Now().UnixNano(),
	})
}

// traceRestore emits the snapshot-restore event that opens a
// snapshot-lifecycle trial: the virtual clock has been rolled back to
// the post-warmup capture. The rollback size is excluded on purpose —
// it depends on worker scheduling, and the trace stream must stay
// identical across parallelism levels (the dirty-page histogram metric
// carries sizes).
func traceRestore(tt *evtrace.TrialTracer, as *simmem.AddressSpace) {
	if tt == nil {
		return
	}
	tt.Emit(evtrace.Event{
		Kind:    evtrace.KindRestore,
		VTNanos: int64(as.Clock().Now()),
	})
}

// traceAbort records the abort of a trial whose own tracer handle is
// unusable — the watchdog abandoned the trial goroutine (deadline), or
// the trial never got far enough to open one (exhausted retries). It
// delivers a minimal single-event trial so the stream still accounts
// for the index; if the abandoned goroutine later finishes its own
// handle, the tracer drops that late duplicate.
func traceAbort(tracer *evtrace.Tracer, trial int, reason, detail string) {
	if tracer == nil {
		return
	}
	tt := tracer.Trial(trial)
	tt.Emit(evtrace.Event{
		Kind:   evtrace.KindAbort,
		Reason: reason,
		Detail: detail,
	})
	tt.Finish()
}

// traceTrialEnd emits the outcome classification and the closing event.
func traceTrialEnd(tt *evtrace.TrialTracer, tr TrialResult) {
	if tt == nil {
		return
	}
	tt.Emit(evtrace.Event{
		Kind:       evtrace.KindOutcome,
		VTNanos:    int64(tr.EndedAt),
		Outcome:    tr.Outcome.String(),
		Region:     tr.Region,
		RegionKind: tr.Kind.String(),
		Detail:     tr.CrashReason,
	})
	tt.Emit(evtrace.Event{
		Kind:          evtrace.KindTrialEnd,
		VTNanos:       int64(tr.EndedAt),
		Dropped:       tt.DroppedCount(),
		WallUnixNanos: time.Now().UnixNano(),
	})
	tt.Finish()
}
