package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWilsonIntervalBasics(t *testing.T) {
	tests := []struct {
		name      string
		successes int
		trials    int
		level     float64
	}{
		{"half", 50, 100, 0.90},
		{"none", 0, 100, 0.90},
		{"all", 100, 100, 0.90},
		{"rare", 1, 10000, 0.95},
		{"single trial", 1, 1, 0.99},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p, err := WilsonInterval(tt.successes, tt.trials, tt.level)
			if err != nil {
				t.Fatalf("WilsonInterval: %v", err)
			}
			if p.Lo < 0 || p.Hi > 1 || p.Lo > p.Hi {
				t.Errorf("interval out of order or range: [%g, %g]", p.Lo, p.Hi)
			}
			if p.P < p.Lo-1e-12 || p.P > p.Hi+1e-12 {
				t.Errorf("point estimate %g outside interval [%g, %g]", p.P, p.Lo, p.Hi)
			}
			want := float64(tt.successes) / float64(tt.trials)
			if math.Abs(p.P-want) > 1e-12 {
				t.Errorf("point estimate = %g, want %g", p.P, want)
			}
		})
	}
}

func TestWilsonIntervalErrors(t *testing.T) {
	if _, err := WilsonInterval(1, 0, 0.9); err == nil {
		t.Error("expected error for zero trials")
	}
	if _, err := WilsonInterval(-1, 10, 0.9); err == nil {
		t.Error("expected error for negative successes")
	}
	if _, err := WilsonInterval(11, 10, 0.9); err == nil {
		t.Error("expected error for successes > trials")
	}
}

func TestWilsonIntervalNarrowsWithTrials(t *testing.T) {
	small, err := WilsonInterval(5, 50, 0.90)
	if err != nil {
		t.Fatal(err)
	}
	big, err := WilsonInterval(500, 5000, 0.90)
	if err != nil {
		t.Fatal(err)
	}
	if big.Hi-big.Lo >= small.Hi-small.Lo {
		t.Errorf("interval did not narrow: small width %g, big width %g",
			small.Hi-small.Lo, big.Hi-big.Lo)
	}
}

func TestZForLevelFallback(t *testing.T) {
	// 0.80 is not tabulated; check against the known quantile 1.2816.
	z := zForLevel(0.80)
	if math.Abs(z-1.2815515655446004) > 1e-6 {
		t.Errorf("zForLevel(0.80) = %g, want about 1.28155", z)
	}
}

func TestWilsonIntervalProperty(t *testing.T) {
	f := func(a, b uint16) bool {
		trials := int(b%5000) + 1
		successes := int(a) % (trials + 1)
		p, err := WilsonInterval(successes, trials, 0.90)
		if err != nil {
			return false
		}
		return p.Lo >= 0 && p.Hi <= 1 && p.Lo <= p.P+1e-12 && p.P <= p.Hi+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSummarize(t *testing.T) {
	s, err := Summarize([]float64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 4 || s.Mean != 2.5 || s.Min != 1 || s.Max != 4 {
		t.Errorf("unexpected summary: %+v", s)
	}
	if math.Abs(s.Median-2.5) > 1e-12 {
		t.Errorf("median = %g, want 2.5", s.Median)
	}
	wantStd := math.Sqrt((2.25 + 0.25 + 0.25 + 2.25) / 3)
	if math.Abs(s.Std-wantStd) > 1e-12 {
		t.Errorf("std = %g, want %g", s.Std, wantStd)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if _, err := Summarize(nil); err != ErrNoData {
		t.Errorf("err = %v, want ErrNoData", err)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{10, 20, 30, 40, 50}
	tests := []struct {
		p    float64
		want float64
	}{
		{0, 10}, {100, 50}, {50, 30}, {25, 20}, {-5, 10}, {110, 50},
	}
	for _, tt := range tests {
		if got := Percentile(xs, tt.p); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("Percentile(%g) = %g, want %g", tt.p, got, tt.want)
		}
	}
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Error("Percentile of empty sample should be NaN")
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("input mutated: %v", xs)
	}
}

func TestHistogram(t *testing.T) {
	h, err := NewHistogram(0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{0, 1.9, 2, 5, 9.99, 10, -1} {
		h.Add(x)
	}
	if h.Total != 7 {
		t.Errorf("total = %d, want 7", h.Total)
	}
	if h.Overflow != 2 { // 10 and -1 are out of [0,10)
		t.Errorf("overflow = %d, want 2", h.Overflow)
	}
	wantCounts := []int{2, 1, 1, 0, 1}
	for i, w := range wantCounts {
		if h.Counts[i] != w {
			t.Errorf("bin %d = %d, want %d", i, h.Counts[i], w)
		}
	}
	fr := h.Fractions()
	var sum float64
	for _, f := range fr {
		sum += f
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("fractions sum to %g, want 1", sum)
	}
	if c := h.BinCenter(0); math.Abs(c-1) > 1e-12 {
		t.Errorf("BinCenter(0) = %g, want 1", c)
	}
}

func TestHistogramErrors(t *testing.T) {
	if _, err := NewHistogram(0, 10, 0); err == nil {
		t.Error("expected error for zero bins")
	}
	if _, err := NewHistogram(10, 10, 5); err == nil {
		t.Error("expected error for empty range")
	}
}

func TestHistogramTopEdgeRounding(t *testing.T) {
	h, err := NewHistogram(0, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	// A value just under the max must land in the last bin despite float
	// rounding in the bin computation.
	h.Add(math.Nextafter(1, 0))
	if h.Counts[2] != 1 {
		t.Errorf("top-edge sample not in last bin: %v", h.Counts)
	}
}

func TestECDF(t *testing.T) {
	e, err := NewECDF([]float64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		x    float64
		want float64
	}{
		{0.5, 0}, {1, 0.25}, {2.5, 0.5}, {4, 1}, {100, 1},
	}
	for _, tt := range tests {
		if got := e.At(tt.x); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("At(%g) = %g, want %g", tt.x, got, tt.want)
		}
	}
	if e.N() != 4 {
		t.Errorf("N = %d, want 4", e.N())
	}
	if q := e.Quantile(1); q != 4 {
		t.Errorf("Quantile(1) = %g, want 4", q)
	}
	if _, err := NewECDF(nil); err != ErrNoData {
		t.Errorf("err = %v, want ErrNoData", err)
	}
}

func TestECDFMonotoneProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	e, err := NewECDF(xs)
	if err != nil {
		t.Fatal(err)
	}
	prev := -1.0
	for x := -4.0; x <= 4.0; x += 0.05 {
		v := e.At(x)
		if v < prev {
			t.Fatalf("ECDF not monotone at %g: %g < %g", x, v, prev)
		}
		prev = v
	}
}

func TestFitExponentialRecoversRate(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const rate = 2.0
	xs := make([]float64, 5000)
	for i := range xs {
		xs[i] = rng.ExpFloat64() / rate
	}
	fit, err := FitExponentialMLE(xs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Rate-rate)/rate > 0.1 {
		t.Errorf("recovered rate %g, want about %g", fit.Rate, rate)
	}
	if fit.KS > 0.05 {
		t.Errorf("KS = %g for exponential data, want small", fit.KS)
	}
}

func TestPreferredFitClassifies(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const horizon = 40.0

	exp := make([]float64, 2000)
	for i := range exp {
		exp[i] = rng.ExpFloat64() * 3 // mean 3, far from uniform on [0,40]
	}
	fit, err := PreferredFit(exp, horizon)
	if err != nil {
		t.Fatal(err)
	}
	if fit.Kind != FitExponential {
		t.Errorf("exponential data classified as %v", fit.Kind)
	}

	uni := make([]float64, 2000)
	for i := range uni {
		uni[i] = rng.Float64() * horizon
	}
	fit, err = PreferredFit(uni, horizon)
	if err != nil {
		t.Fatal(err)
	}
	if fit.Kind != FitUniform {
		t.Errorf("uniform data classified as %v", fit.Kind)
	}
}

func TestFitErrorsOnEmpty(t *testing.T) {
	if _, err := FitExponentialMLE(nil); err == nil {
		t.Error("expected error for empty sample")
	}
	if _, err := FitUniformRange(nil, 1); err == nil {
		t.Error("expected error for empty sample")
	}
	if _, err := PreferredFit(nil, 1); err == nil {
		t.Error("expected error for empty sample")
	}
}

func TestFitKindString(t *testing.T) {
	if FitExponential.String() != "exponential" || FitUniform.String() != "uniform" {
		t.Error("unexpected FitKind strings")
	}
	if FitKind(0).String() != "unknown" {
		t.Error("zero FitKind should be unknown")
	}
}

func TestKDEIntegratesToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	xs := make([]float64, 300)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	k, err := NewKDE(xs, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Trapezoidal integration over a wide range should be close to 1.
	const lo, hi, n = -8.0, 8.0, 1600
	var integral float64
	step := (hi - lo) / n
	for i := 0; i <= n; i++ {
		w := step
		if i == 0 || i == n {
			w = step / 2
		}
		integral += k.At(lo+float64(i)*step) * w
	}
	if math.Abs(integral-1) > 0.02 {
		t.Errorf("KDE integral = %g, want about 1", integral)
	}
}

func TestKDEDegenerateSample(t *testing.T) {
	k, err := NewKDE([]float64{0.5, 0.5, 0.5}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if k.Bandwidth() <= 0 {
		t.Error("bandwidth must be positive for a degenerate sample")
	}
	if k.At(0.5) <= k.At(0.9) {
		t.Error("density should peak at the repeated value")
	}
}

func TestKDEProfile(t *testing.T) {
	k, err := NewKDE([]float64{0.2, 0.25, 0.3}, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	prof := k.Profile(0, 1, 21)
	if len(prof) != 21 {
		t.Fatalf("profile length = %d, want 21", len(prof))
	}
	maxV := 0.0
	for _, v := range prof {
		if v < 0 || v > 1 {
			t.Fatalf("profile value out of [0,1]: %g", v)
		}
		if v > maxV {
			maxV = v
		}
	}
	if math.Abs(maxV-1) > 1e-12 {
		t.Errorf("profile max = %g, want 1", maxV)
	}
	if k.Profile(0, 1, 0) != nil {
		t.Error("zero-point profile should be nil")
	}
}

func TestProportionString(t *testing.T) {
	p, err := WilsonInterval(1, 100, 0.90)
	if err != nil {
		t.Fatal(err)
	}
	if s := p.String(); s == "" {
		t.Error("empty String()")
	}
}
