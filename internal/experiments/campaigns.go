package experiments

import (
	"fmt"

	"hrmsim/internal/core"
	"hrmsim/internal/faults"
	"hrmsim/internal/simmem"
	"hrmsim/internal/stats"
)

// Adaptive-cell defaults, matching the facade's characterize path: the
// paper quotes crash probabilities with 90% Wilson intervals, and 30
// trials is the smallest sample the stopping rule may judge.
const (
	adaptiveCILevel   = 0.90
	adaptiveMinTrials = 30
)

// cellReq identifies one campaign cell: an application, an error type,
// an optional region restriction (kind 0 = all regions), and the cell's
// trial index space (the hard budget under an adaptive scale).
type cellReq struct {
	app    string
	spec   faults.Spec
	kind   simmem.RegionKind
	trials int
}

func (s *Suite) cellKey(r cellReq) string {
	return fmt.Sprintf("%s|%v|%d|%d|%g", r.app, r.spec, r.kind, r.trials, s.scale.TargetCI)
}

// cellState tracks one uncached cell through the adaptive scheduler's
// rounds: the results accumulated so far (fed back as Resume), the
// current CI half-width (the scheduling priority), and the final result
// once the cell's stopping rule fires.
type cellState struct {
	req    cellReq
	key    string
	entry  *appEntry
	resume map[int]core.TrialResult
	// halfWidth is the Wilson CI half-width over the trials resolved so
	// far (1 before the first round, so every cell gets scheduled).
	halfWidth float64
	res       *core.CampaignResult
	done      bool
}

// campaign runs (or returns the cached result of) one injection campaign
// cell.
func (s *Suite) campaign(app string, spec faults.Spec, kind simmem.RegionKind, trials int) (*core.CampaignResult, error) {
	req := cellReq{app: app, spec: spec, kind: kind, trials: trials}
	if err := s.prefetch([]cellReq{req}); err != nil {
		return nil, err
	}
	s.mu.Lock()
	res := s.campaigns[s.cellKey(req)]
	s.mu.Unlock()
	if res == nil {
		return nil, fmt.Errorf("experiments: campaign %s: prefetch produced no result", s.cellKey(req))
	}
	return res, nil
}

// prefetch ensures every listed cell has a cached result. Cells already
// cached (or listed twice) are skipped. Under a fixed scale the
// remaining cells run one after another — each one already saturates
// the worker pool. Under an adaptive scale (TargetCI > 0) the remaining
// cells share the pool widest-CI-first: each scheduling round, the cell
// whose crash-probability CI is currently widest gets the whole pool
// for one evaluation round of its stopping rule
// (core.AdaptivePlanner.PauseAfterRounds), so the sweep spends its
// trials where the statistics are weakest. Every cell's final result is
// bit-identical to running that cell's adaptive campaign alone: the
// planner's boundary schedule and verdicts depend only on the cell's
// own trial data, never on the interleaving.
func (s *Suite) prefetch(reqs []cellReq) error {
	var todo []*cellState
	seen := make(map[string]bool)
	for _, req := range reqs {
		key := s.cellKey(req)
		if seen[key] {
			continue
		}
		seen[key] = true
		s.mu.Lock()
		if s.campaigns == nil {
			s.campaigns = make(map[string]*core.CampaignResult)
		}
		_, ok := s.campaigns[key]
		s.mu.Unlock()
		if ok {
			continue
		}
		entry, err := s.app(req.app)
		if err != nil {
			return err
		}
		todo = append(todo, &cellState{req: req, key: key, entry: entry, halfWidth: 1})
	}
	if len(todo) == 0 {
		return nil
	}
	if s.scale.TargetCI <= 0 {
		for _, st := range todo {
			res, err := core.Run(s.cellConfig(st))
			if err != nil {
				return fmt.Errorf("experiments: campaign %s: %w", st.key, err)
			}
			s.store(st.key, res)
		}
		return nil
	}
	for {
		// Pick the open cell with the widest CI (ties: listed order).
		var next *cellState
		for _, st := range todo {
			if st.done {
				continue
			}
			if next == nil || st.halfWidth > next.halfWidth {
				next = st
			}
		}
		if next == nil {
			break
		}
		if err := s.runCellRound(next); err != nil {
			return fmt.Errorf("experiments: campaign %s: %w", next.key, err)
		}
		if next.done {
			s.store(next.key, next.res)
		}
	}
	return nil
}

// runCellRound advances one adaptive cell by a single evaluation round:
// a fresh paused planner replays the rounds already run from the
// accumulated Resume records (replay is deterministic, so it lands in
// exactly the pre-pause state), dispatches one new boundary batch, and
// pauses again — or stops for good, making the cell's result final.
func (s *Suite) runCellRound(st *cellState) error {
	planner := core.NewAdaptivePlanner(s.cellRule(st.req.trials))
	planner.PauseAfterRounds = 1
	cfg := s.cellConfig(st)
	cfg.Planner = planner
	cfg.Resume = st.resume
	res, err := core.Run(cfg)
	if err != nil {
		return err
	}
	st.res = res
	st.done = res.PlanFinal
	st.resume = make(map[int]core.TrialResult, len(res.Trials))
	crashes, completed := 0, 0
	for _, tr := range res.Trials {
		st.resume[tr.Index] = tr
		if tr.Disposition == core.DispositionCompleted {
			completed++
			if tr.Outcome == core.OutcomeCrash {
				crashes++
			}
		}
	}
	if hw, err := stats.WilsonHalfWidth(crashes, completed, adaptiveCILevel); err == nil {
		st.halfWidth = hw
	}
	return nil
}

// cellRule is the stopping rule every adaptive cell runs under.
func (s *Suite) cellRule(trials int) stats.SequentialStopping {
	min := adaptiveMinTrials
	if min > trials {
		min = trials
	}
	return stats.SequentialStopping{
		TargetHalfWidth: s.scale.TargetCI,
		Level:           adaptiveCILevel,
		MinTrials:       min,
		MaxTrials:       trials,
	}
}

// cellConfig assembles the cell's campaign configuration (fixed-plan
// unless the caller attaches a planner).
func (s *Suite) cellConfig(st *cellState) core.CampaignConfig {
	cfg := core.CampaignConfig{
		Builder:     st.entry.builder,
		Spec:        st.req.spec,
		Trials:      st.req.trials,
		Seed:        s.scale.Seed,
		Parallelism: s.scale.Parallelism,
		Golden:      st.entry.golden,
		Progress:    s.scale.Progress,
	}
	if st.req.kind != 0 {
		k := st.req.kind
		cfg.Filter = func(r *simmem.Region) bool { return r.Kind() == k }
	}
	return cfg
}

// store caches one cell's final result.
func (s *Suite) store(key string, res *core.CampaignResult) {
	s.mu.Lock()
	if s.campaigns == nil {
		s.campaigns = make(map[string]*core.CampaignResult)
	}
	s.campaigns[key] = res
	s.mu.Unlock()
}

// regionsOf lists the region kinds an application actually maps.
func (s *Suite) regionsOf(app string) ([]simmem.RegionKind, error) {
	entry, err := s.app(app)
	if err != nil {
		return nil, err
	}
	inst, err := entry.builder.Build()
	if err != nil {
		return nil, err
	}
	var kinds []simmem.RegionKind
	for _, r := range inst.Space().Regions() {
		kinds = append(kinds, r.Kind())
	}
	return kinds, nil
}
