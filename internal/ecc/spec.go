package ecc

import (
	"fmt"

	"hrmsim/internal/simmem"
)

// Technique identifies a hardware memory-protection technique from
// Table 1 of the paper.
type Technique int

// Techniques, in Table 1 order. TechNone is the "no detection/correction"
// consumer-PC configuration.
const (
	TechNone Technique = iota
	TechParity
	TechSECDED
	TechDECTED
	TechChipkill
	TechRAIM
	TechMirroring
)

// String returns the technique name as printed in the paper's tables.
func (t Technique) String() string {
	switch t {
	case TechNone:
		return "NoECC"
	case TechParity:
		return "Parity"
	case TechSECDED:
		return "SEC-DED"
	case TechDECTED:
		return "DEC-TED"
	case TechChipkill:
		return "Chipkill"
	case TechRAIM:
		return "RAIM"
	case TechMirroring:
		return "Mirroring"
	default:
		return fmt.Sprintf("technique(%d)", int(t))
	}
}

// Techniques lists all techniques in Table 1 order (including TechNone).
func Techniques() []Technique {
	return []Technique{
		TechNone, TechParity, TechSECDED, TechDECTED,
		TechChipkill, TechRAIM, TechMirroring,
	}
}

// Spec is one row of Table 1: a technique's capability and cost.
type Spec struct {
	Technique Technique
	// Detection and Correction describe capability in the paper's
	// "X/Y Z" notation.
	Detection  string
	Correction string
	// AddedCapacity is the fraction of extra memory capacity the
	// technique requires (0.125 = 12.5%); for DRAM this is proportional
	// to cost.
	AddedCapacity float64
	// HighLogic is true for techniques needing substantial extra logic.
	HighLogic bool
}

// table1 reproduces Table 1 of the paper.
var table1 = map[Technique]Spec{
	TechNone: {
		Technique: TechNone, Detection: "None", Correction: "None",
		AddedCapacity: 0, HighLogic: false,
	},
	TechParity: {
		Technique: TechParity, Detection: "2n-1/64 bits", Correction: "None",
		AddedCapacity: 0.0156, HighLogic: false,
	},
	TechSECDED: {
		Technique: TechSECDED, Detection: "2/64 bits", Correction: "1/64 bits",
		AddedCapacity: 0.125, HighLogic: false,
	},
	TechDECTED: {
		Technique: TechDECTED, Detection: "3/64 bits", Correction: "2/64 bits",
		AddedCapacity: 0.234, HighLogic: false,
	},
	TechChipkill: {
		Technique: TechChipkill, Detection: "2/8 chips", Correction: "1/8 chips",
		AddedCapacity: 0.125, HighLogic: true,
	},
	TechRAIM: {
		Technique: TechRAIM, Detection: "1/5 modules", Correction: "1/5 modules",
		AddedCapacity: 0.406, HighLogic: true,
	},
	TechMirroring: {
		Technique: TechMirroring, Detection: "2/8 chips", Correction: "1/2 modules",
		AddedCapacity: 1.25, HighLogic: false,
	},
}

// SpecFor returns the Table 1 row for a technique.
func SpecFor(t Technique) (Spec, error) {
	s, ok := table1[t]
	if !ok {
		return Spec{}, fmt.Errorf("ecc: unknown technique %d", int(t))
	}
	return s, nil
}

// CodecFor returns an executable codec for a technique, or nil for
// TechNone (no detection/correction).
func CodecFor(t Technique) (simmem.Codec, error) {
	switch t {
	case TechNone:
		return nil, nil
	case TechParity:
		return NewParity(), nil
	case TechSECDED:
		return NewSECDED(), nil
	case TechDECTED:
		return NewDECTED(), nil
	case TechChipkill:
		return NewChipkill(), nil
	case TechRAIM:
		return NewRAIM(), nil
	case TechMirroring:
		return NewMirror(), nil
	default:
		return nil, fmt.Errorf("ecc: unknown technique %d", int(t))
	}
}
