// Coordinator mode: `hrmsim characterize -coordinator -shards N` runs a
// campaign as N local worker processes, one per shard, and merges their
// journals into the single-process result. The coordinator is the
// process-level tier of the supervision hierarchy: the in-process
// supervisor (internal/core) watches trials inside one worker, the
// coordinator watches the workers themselves — straggler warnings from
// heartbeat age (journal growth as the fallback), crashed-shard respawn
// with -resume, the live fleet view tailed from the workers' status
// records — and hands the surviving journals to the merge. SHARDING.md
// documents the operator contract; OBSERVABILITY.md the status schema.
package main

import (
	"context"
	"fmt"
	"io"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"strconv"
	"sync/atomic"
	"syscall"
	"time"

	"hrmsim"
	"hrmsim/internal/core"
	"hrmsim/internal/obsv"
)

// coordinatorConfig carries the campaign flags a coordinator forwards to
// its shard workers, plus the supervision knobs.
type coordinatorConfig struct {
	App, Error, Region string
	Trials             int
	Seed               int64
	Size               string
	Parallelism        int
	TrialTimeout       time.Duration
	TrialOpBudget      int64

	// Shards is the number of worker processes (= shard count).
	Shards int
	// Dir receives the shard journal/manifest pairs; empty means a fresh
	// temporary directory, removed again after a complete merge.
	Dir string
	// StragglerAfter is the staleness threshold for straggler warnings
	// (0 = off): a shard whose heartbeat record — or, for workers
	// without one, whose journal — has not advanced for this long is
	// reported. MaxRespawns bounds per-shard crash respawns.
	StragglerAfter time.Duration
	MaxRespawns    int

	// StatusAddr, if non-empty, serves the live fleet view over HTTP
	// (/statusz, merged /metrics, /healthz, pprof); consumed by
	// runCoordinatorCmd, not runCoordinator.
	StatusAddr string
	// FleetSink, if non-nil, receives the fleet aggregate the
	// coordinator tails from the shard heartbeat records: once per
	// supervision tick while workers run (skipping ticks where no shard
	// has reported yet), and once more with the final records after the
	// last worker exits. Calls are serialized.
	FleetSink func(*hrmsim.FleetStatus)

	Metrics *obsv.Registry
	// Launch overrides how workers are started (tests run shards
	// in-process; nil = spawn this executable with `characterize -shard`).
	Launch shardLauncher
	// Log receives supervision lines (nil = stderr).
	Log io.Writer
}

// shardTask is one worker assignment.
type shardTask struct {
	Index, Count      int
	Journal, Manifest string
	// Status is the worker's heartbeat record path (see
	// core.ShardStatus); the coordinator tails these into the fleet view.
	Status string
	// Resume makes the worker skip trials its journal already records
	// (set on respawn after a crash).
	Resume bool
}

// waiter is the running worker handle the coordinator blocks on
// (*exec.Cmd in production, a goroutine wrapper in tests).
type waiter interface {
	Wait() error
}

// shardLauncher starts one shard worker.
type shardLauncher func(task shardTask) (waiter, error)

// processLauncher launches shard workers as child processes of this very
// executable: `hrmsim characterize ... -shard i/N -journal ... -manifest ...`.
func processLauncher(cfg coordinatorConfig, log io.Writer) shardLauncher {
	return func(task shardTask) (waiter, error) {
		exe, err := os.Executable()
		if err != nil {
			return nil, fmt.Errorf("locating the hrmsim executable: %w", err)
		}
		args := []string{"characterize",
			"-app", cfg.App,
			"-error", cfg.Error,
			"-region", cfg.Region,
			"-trials", strconv.Itoa(cfg.Trials),
			"-seed", strconv.FormatInt(cfg.Seed, 10),
			"-size", cfg.Size,
			"-shard", fmt.Sprintf("%d/%d", task.Index, task.Count),
			"-journal", task.Journal,
			"-manifest", task.Manifest,
		}
		if task.Status != "" {
			args = append(args, "-status", task.Status)
		}
		if cfg.Parallelism > 0 {
			args = append(args, "-parallelism", strconv.Itoa(cfg.Parallelism))
		}
		if cfg.TrialTimeout > 0 {
			args = append(args, "-trial-timeout", cfg.TrialTimeout.String())
		}
		if cfg.TrialOpBudget > 0 {
			args = append(args, "-trial-op-budget", strconv.FormatInt(cfg.TrialOpBudget, 10))
		}
		if task.Resume {
			args = append(args, "-resume", task.Journal)
		}
		cmd := exec.Command(exe, args...)
		cmd.Stdout = io.Discard // the shard's text report is noise; its journal is the output
		cmd.Stderr = log
		if err := cmd.Start(); err != nil {
			return nil, fmt.Errorf("spawning shard %d/%d: %w", task.Index, task.Count, err)
		}
		return cmd, nil
	}
}

// coordinatorOutcome is what a finished coordinator run hands back for
// rendering: the merged result plus the supervision record.
type coordinatorOutcome struct {
	Result *hrmsim.Characterization
	Info   *hrmsim.MergeInfo
	// Dir is the shard directory (kept on partial results so the
	// operator can respawn and re-merge).
	Dir string
	// Failed lists shard indices that still had no clean exit after
	// MaxRespawns respawns.
	Failed []int
}

// runCoordinator executes a sharded campaign end to end: spawn every
// shard, supervise, merge.
func runCoordinator(ctx context.Context, cfg coordinatorConfig) (*coordinatorOutcome, error) {
	logw := cfg.Log
	if logw == nil {
		logw = os.Stderr
	}
	dir := cfg.Dir
	madeTemp := false
	if dir == "" {
		d, err := os.MkdirTemp("", "hrmsim-shards-")
		if err != nil {
			return nil, fmt.Errorf("creating shard directory: %w", err)
		}
		dir = d
		madeTemp = true
	} else if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("creating shard directory: %w", err)
	}

	launch := cfg.Launch
	if launch == nil {
		launch = processLauncher(cfg, logw)
	}
	var spawns *obsv.Counter
	if cfg.Metrics != nil {
		spawns = cfg.Metrics.Counter("campaign_shards_total")
	}

	type exit struct {
		shard int
		err   error
	}
	exits := make(chan exit, cfg.Shards)
	tasks := make([]shardTask, cfg.Shards)
	start := func(i int, resume bool) error {
		tasks[i].Resume = resume
		w, err := launch(tasks[i])
		if err != nil {
			return err
		}
		if spawns != nil {
			spawns.Inc()
		}
		go func() { exits <- exit{i, w.Wait()} }()
		return nil
	}

	running := 0
	respawns := make([]int, cfg.Shards)
	lastWarn := make([]time.Time, cfg.Shards)
	alive := make([]bool, cfg.Shards)
	var failed []int
	for i := 0; i < cfg.Shards; i++ {
		tasks[i] = shardTask{
			Index:    i,
			Count:    cfg.Shards,
			Journal:  filepath.Join(dir, core.ShardJournalName(i, cfg.Shards)),
			Manifest: filepath.Join(dir, core.ShardManifestName(i, cfg.Shards)),
			Status:   filepath.Join(dir, core.ShardStatusName(i, cfg.Shards)),
		}
		if err := start(i, false); err != nil {
			return nil, err
		}
		alive[i] = true
		lastWarn[i] = time.Now()
		running++
	}
	fmt.Fprintf(logw, "coordinator: %d shards of %d trials running in %s\n", cfg.Shards, cfg.Trials, dir)

	// loadFleet tails the shard heartbeat records into the fleet
	// aggregate. Nil means "no view this tick": before the first
	// heartbeat (ErrNoStatus) or when the directory is unreadable — the
	// journal-mtime straggler fallback still covers that case.
	loadFleet := func() *hrmsim.FleetStatus {
		fs, err := hrmsim.LoadFleetStatus(dir)
		if err != nil {
			return nil
		}
		return fs
	}

	tick := time.NewTicker(time.Second)
	defer tick.Stop()
	done := 0
	for running > 0 {
		select {
		case e := <-exits:
			if e.err != nil && ctx.Err() == nil && respawns[e.shard] < cfg.MaxRespawns {
				respawns[e.shard]++
				if cfg.Metrics != nil {
					cfg.Metrics.Counter("campaign_shard_respawns_total").Inc()
					cfg.Metrics.Counter(obsv.LabeledName(
						"campaign_shard_respawns_total", "shard", strconv.Itoa(e.shard))).Inc()
				}
				// The journal the crashed worker left behind (possibly
				// torn-tailed; the reader repairs that) seeds the respawn.
				_, statErr := os.Stat(tasks[e.shard].Journal)
				fmt.Fprintf(logw, "coordinator: shard %d/%d crashed (%v); respawn %d/%d%s\n",
					e.shard, cfg.Shards, e.err, respawns[e.shard], cfg.MaxRespawns,
					map[bool]string{true: " resuming its journal", false: ""}[statErr == nil])
				if err := start(e.shard, statErr == nil); err != nil {
					fmt.Fprintf(logw, "coordinator: respawning shard %d/%d: %v\n", e.shard, cfg.Shards, err)
					failed = append(failed, e.shard)
					alive[e.shard] = false
					running--
				}
				continue
			}
			alive[e.shard] = false
			running--
			if e.err != nil {
				failed = append(failed, e.shard)
				fmt.Fprintf(logw, "coordinator: shard %d/%d failed permanently after %d respawns: %v\n",
					e.shard, cfg.Shards, respawns[e.shard], e.err)
			} else {
				done++
				fmt.Fprintf(logw, "coordinator: shard %d/%d finished (%d/%d done)\n",
					e.shard, cfg.Shards, done, cfg.Shards)
			}
		case <-tick.C:
			if cfg.FleetSink == nil && cfg.StragglerAfter <= 0 {
				continue
			}
			fleet := loadFleet()
			if fleet != nil && cfg.FleetSink != nil {
				cfg.FleetSink(fleet)
			}
			if cfg.StragglerAfter <= 0 {
				continue
			}
			now := time.Now()
			heartbeats := make(map[int]time.Time)
			if fleet != nil {
				for _, sh := range fleet.Shards {
					heartbeats[sh.Index] = sh.UpdatedAt
				}
			}
			for i := 0; i < cfg.Shards; i++ {
				if !alive[i] {
					continue
				}
				hb, ok := heartbeats[i]
				last, detail := shardLiveness(now, lastWarn[i], hb, ok, tasks[i].Journal)
				if now.Sub(last) >= cfg.StragglerAfter {
					fmt.Fprintf(logw, "coordinator: shard %d/%d is straggling — %s\n", i, cfg.Shards, detail)
					lastWarn[i] = now
				}
			}
		}
	}
	// The last worker's final record (Running=false) may land after the
	// last tick; deliver the settled fleet view once more.
	if cfg.FleetSink != nil {
		if fleet := loadFleet(); fleet != nil {
			cfg.FleetSink(fleet)
		}
	}

	c, info, err := hrmsim.MergeShards(hrmsim.MergeConfig{Dir: dir, Metrics: cfg.Metrics})
	if err != nil {
		return nil, fmt.Errorf("merging shard directory %s: %w", dir, err)
	}
	out := &coordinatorOutcome{Result: c, Info: info, Dir: dir, Failed: failed}
	if madeTemp && len(failed) == 0 && info.Missing == 0 && !c.Interrupted {
		os.RemoveAll(dir)
		out.Dir = ""
	}
	return out, nil
}

// shardLiveness derives a live shard's last-progress instant and a
// log-ready diagnosis. The heartbeat record is the primary signal (a
// healthy worker refreshes it on every throttled trial completion); a
// worker without one falls back to journal growth, and a worker with
// neither artifact has not finished a single trial yet — its own
// diagnosis, reported explicitly instead of a misleading staleness age.
// floor is the last instant the shard was known live (spawn or the
// previous warning), so warnings repeat at the straggler period rather
// than every tick.
func shardLiveness(now, floor time.Time, heartbeat time.Time, hasHeartbeat bool, journal string) (last time.Time, detail string) {
	last = floor
	if hasHeartbeat {
		if heartbeat.After(last) {
			last = heartbeat
		}
		return last, fmt.Sprintf("last heartbeat %s ago", now.Sub(heartbeat).Round(time.Second))
	}
	st, err := os.Stat(journal)
	switch {
	case err == nil:
		if st.ModTime().After(last) {
			last = st.ModTime()
		}
		return last, fmt.Sprintf("no heartbeat; journal %s unchanged for %s",
			journal, now.Sub(st.ModTime()).Round(time.Second))
	case os.IsNotExist(err):
		return last, "no heartbeat and no journal yet — the worker has not finished a single trial"
	default:
		return last, fmt.Sprintf("no heartbeat; journal %s unreadable: %v", journal, err)
	}
}

// runCoordinatorCmd is the CLI wrapper: signal handling, metrics, the
// status HTTP server, the aggregate progress line, and rendering
// around runCoordinator.
func runCoordinatorCmd(cfg coordinatorConfig, jsonOut, progress bool) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	reg := obsv.NewRegistry()
	cfg.Metrics = reg
	// Fan the tailed fleet view out to every consumer: the status
	// server's atomic snapshot and, with -progress, the aggregate
	// one-line progress renderer (runCoordinator serializes the calls).
	var fleet atomic.Pointer[hrmsim.FleetStatus]
	sinks := []func(*hrmsim.FleetStatus){func(fs *hrmsim.FleetStatus) { fleet.Store(fs) }}
	if progress {
		sinks = append(sinks, fleetProgressSink(os.Stderr))
	}
	cfg.FleetSink = func(fs *hrmsim.FleetStatus) {
		for _, sink := range sinks {
			sink(fs)
		}
	}
	if cfg.StatusAddr != "" {
		shutdown, addr, err := startStatusServer(cfg.StatusAddr, fleet.Load, reg)
		if err != nil {
			return err
		}
		defer shutdown()
		fmt.Fprintf(os.Stderr, "coordinator: status on http://%s/statusz\n", addr)
	}
	out, err := runCoordinator(ctx, cfg)
	if err != nil {
		return err
	}
	c, info := out.Result, out.Info
	if out.Dir != "" && (c.Interrupted || info.Missing > 0 || len(out.Failed) > 0) {
		fmt.Fprintf(os.Stderr, "coordinator: shard directory kept at %s — respawn the incomplete shards and `hrmsim merge -dir %s`\n",
			out.Dir, out.Dir)
	}
	if jsonOut {
		snap := reg.Snapshot()
		if err := emitJSON("characterize", c.Interrupted, toCharacterizeJSON(c), &snap, nil, withMerged(info)); err != nil {
			return err
		}
	} else {
		printCharacterization(c)
	}
	if len(out.Failed) > 0 {
		return fmt.Errorf("coordinator: %d shard(s) %v failed permanently after %d respawns; the merged result covers the others",
			len(out.Failed), out.Failed, cfg.MaxRespawns)
	}
	return nil
}
