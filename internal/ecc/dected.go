package ecc

import (
	"math/bits"

	"hrmsim/internal/simmem"
)

// DECTED is a double-error-correcting, triple-error-detecting code built
// from a binary BCH code over GF(2^7) (t=2, 14 check bits) extended with
// an overall parity bit — 15 meaningful check bits per 64 data bits, the
// 23.4% added capacity of Table 1.
//
// Codeword layout (polynomial coefficients, bit i = coeff of x^i):
// bits 0..13 are the BCH remainder, bits 14..77 are the 64 data bits. The
// two check-storage bytes hold the remainder in bits 0..13 and the overall
// parity in bit 14.
type DECTED struct{}

var _ simmem.Codec = DECTED{}

// NewDECTED returns the DEC-TED codec.
func NewDECTED() DECTED { return DECTED{} }

const (
	dectedCheckBits = 14 // BCH remainder bits
	dectedCodeBits  = 64 + dectedCheckBits
)

// dectedGen is the degree-14 generator polynomial g(x) = m1(x)·m3(x),
// packed as a bit mask; computed at init from the minimal polynomials of α
// and α^3 in GF(2^7).
var dectedGen uint64

func init() {
	m1 := minimalPolyGF2(gf128, 1)
	m3 := minimalPolyGF2(gf128, 3)
	dectedGen = polyMulGF2(m1, m3)
	if bits.Len64(dectedGen) != dectedCheckBits+1 {
		panic("ecc: DEC-TED generator has unexpected degree")
	}
}

// Name implements simmem.Codec.
func (DECTED) Name() string { return "DEC-TED" }

// WordBytes implements simmem.Codec.
func (DECTED) WordBytes() int { return 8 }

// CheckBytes implements simmem.Codec.
func (DECTED) CheckBytes() int { return 2 }

// CheckBits implements simmem.Codec.
func (DECTED) CheckBits() int { return 15 }

// cw is a 78-bit codeword in two words: lo holds bits 0..63, hi bits 64..77.
type cw struct {
	lo, hi uint64
}

func (c cw) bit(i int) byte {
	if i < 64 {
		return byte(c.lo>>i) & 1
	}
	return byte(c.hi>>(i-64)) & 1
}

func (c *cw) flip(i int) {
	if i < 64 {
		c.lo ^= 1 << i
	} else {
		c.hi ^= 1 << (i - 64)
	}
}

func (c cw) onesCount() int {
	return bits.OnesCount64(c.lo) + bits.OnesCount64(c.hi)
}

// bchRemainder computes d(x)·x^14 mod g(x) for the 64 data bits.
func bchRemainder(data []byte) uint16 {
	var c cw
	d := leU64(data)
	// d(x)·x^14: data bit k becomes coefficient 14+k.
	c.lo = d << dectedCheckBits
	c.hi = d >> (64 - dectedCheckBits)
	for i := dectedCodeBits - 1; i >= dectedCheckBits; i-- {
		if c.bit(i) == 1 {
			// XOR g shifted so its top term cancels bit i.
			s := i - dectedCheckBits
			g := dectedGen
			if s < 64 {
				c.lo ^= g << s
				if s > 0 {
					c.hi ^= g >> (64 - s)
				}
			} else {
				c.hi ^= g << (s - 64)
			}
		}
	}
	return uint16(c.lo) & (1<<dectedCheckBits - 1)
}

// leU64 reads 8 bytes little-endian.
func leU64(b []byte) uint64 {
	var v uint64
	for i := 7; i >= 0; i-- {
		v = v<<8 | uint64(b[i])
	}
	return v
}

// putLeU64 writes v little-endian into b.
func putLeU64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

// Encode implements simmem.Codec.
func (DECTED) Encode(data, check []byte) {
	rem := bchRemainder(data)
	p := byte(parity64(data)) ^ byte(bits.OnesCount16(rem)&1)
	v := rem | uint16(p)<<14
	check[0] = byte(v)
	check[1] = byte(v >> 8)
}

// received assembles the received codeword from data and check storage.
func dectedReceived(data, check []byte) cw {
	var c cw
	rem := uint64(check[0]) | uint64(check[1])<<8
	rem &= 1<<dectedCheckBits - 1
	d := leU64(data)
	c.lo = rem | d<<dectedCheckBits
	c.hi = d >> (64 - dectedCheckBits)
	return c
}

// dectedWriteBack stores the (corrected) codeword back into data/check,
// preserving the stored parity bit which the caller fixes separately.
func dectedWriteBack(c cw, data, check []byte) {
	rem := uint16(c.lo) & (1<<dectedCheckBits - 1)
	d := c.lo>>dectedCheckBits | c.hi<<(64-dectedCheckBits)
	putLeU64(data, d)
	parityBit := check[1] & 0x40 // bit 14 of the 16-bit check value
	check[0] = byte(rem)
	check[1] = byte(rem>>8)&0x3f | parityBit
}

// syndromes evaluates S1 = r(α) and S3 = r(α^3) over GF(2^7).
func dectedSyndromes(c cw) (s1, s3 byte) {
	for i := 0; i < dectedCodeBits; i++ {
		if c.bit(i) == 1 {
			s1 ^= gf128.alphaPow(i)
			s3 ^= gf128.alphaPow(3 * i)
		}
	}
	return s1, s3
}

// Decode implements simmem.Codec.
func (DECTED) Decode(data, check []byte) simmem.Verdict {
	c := dectedReceived(data, check)
	storedP := (check[1] >> 6) & 1
	calcP := byte(c.onesCount() & 1)
	parityErr := calcP != storedP
	s1, s3 := dectedSyndromes(c)

	if s1 == 0 && s3 == 0 {
		if !parityErr {
			return simmem.VerdictClean
		}
		// Only the parity bit flipped.
		check[1] ^= 0x40
		return simmem.VerdictCorrected
	}

	if parityErr {
		// Odd number of errors: correct a single error or detect three.
		if s1 != 0 && s3 == gf128.pow(s1, 3) {
			p := gf128.logOf(s1)
			if p < dectedCodeBits {
				c.flip(p)
				dectedWriteBack(c, data, check)
				return simmem.VerdictCorrected
			}
		}
		return simmem.VerdictUncorrectable
	}

	// Even number of errors (at least two): attempt double correction.
	if s1 == 0 {
		// Two errors with X1 = X2 is impossible; inconsistent syndromes.
		return simmem.VerdictUncorrectable
	}
	if s3 == gf128.pow(s1, 3) {
		// The single-error signature with even parity: one codeword
		// error plus a flipped parity bit. (A true double cannot
		// produce S3 == S1^3: that would need X1·X2·S1 = 0.)
		p := gf128.logOf(s1)
		if p < dectedCodeBits {
			c.flip(p)
			dectedWriteBack(c, data, check)
			check[1] ^= 0x40 // repair the parity bit too
			return simmem.VerdictCorrected
		}
		return simmem.VerdictUncorrectable
	}
	// Error locator: x^2 + s1·x + (s3/s1 + s1^2), roots at the locators.
	q := gf128.div(s3, s1) ^ gf128.mul(s1, s1)
	var roots []int
	for p := 0; p < dectedCodeBits; p++ {
		x := gf128.alphaPow(p)
		v := gf128.mul(x, x) ^ gf128.mul(s1, x) ^ q
		if v == 0 {
			roots = append(roots, p)
			if len(roots) > 2 {
				break
			}
		}
	}
	if len(roots) != 2 {
		return simmem.VerdictUncorrectable
	}
	c.flip(roots[0])
	c.flip(roots[1])
	// Confirm the correction zeroes the syndromes (guards against
	// miscorrecting ≥4-bit patterns that alias onto two positions).
	if v1, v3 := dectedSyndromes(c); v1 != 0 || v3 != 0 {
		return simmem.VerdictUncorrectable
	}
	dectedWriteBack(c, data, check)
	return simmem.VerdictCorrected
}
