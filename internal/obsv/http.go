package obsv

import (
	"net/http"
	"strings"
)

// Handler serves the registry's live snapshot. Plain text (WriteText) by
// default; JSON when the request has ?format=json or an Accept header
// preferring application/json. Used by the kvserve -metrics-addr sidecar;
// the same encoders back `hrmsim -json`.
func Handler(r *Registry) http.Handler {
	return SnapshotHandler(r.Snapshot)
}

// SnapshotHandler serves whatever snapshot the callback returns, through
// the same text/JSON content negotiation as Handler. The callback runs
// once per request, so it can compute derived views — the hrmsim
// coordinator uses it to serve the merged fleet snapshot (its own
// registry plus every shard heartbeat's metrics) at /metrics.
func SnapshotHandler(snap func() Snapshot) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		s := snap()
		if wantsJSON(req) {
			b, err := s.MarshalJSONIndent()
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			_, _ = w.Write(append(b, '\n'))
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_ = s.WriteText(w)
	})
}

// wantsJSON reports whether the request asked for the JSON encoding.
func wantsJSON(req *http.Request) bool {
	if req.URL.Query().Get("format") == "json" {
		return true
	}
	return strings.Contains(req.Header.Get("Accept"), "application/json")
}
