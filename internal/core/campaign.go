package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"runtime/debug"
	"strings"
	"time"

	"hrmsim/internal/apps"
	"hrmsim/internal/evtrace"
	"hrmsim/internal/faults"
	"hrmsim/internal/inject"
	"hrmsim/internal/obsv"
	"hrmsim/internal/simmem"
	"hrmsim/internal/stats"
)

// Lifecycle selects how a campaign provisions the application instance
// each trial runs on.
type Lifecycle int

const (
	// LifecycleAuto reuses one instance per worker via
	// snapshot/restore when the builder implements
	// apps.SnapshotBuilder, and falls back to a fresh build per trial
	// otherwise. This is the zero-value default.
	LifecycleAuto Lifecycle = iota
	// LifecycleFresh forces a fresh Build (and warmup) per trial —
	// the paper's literal Fig. 2 loop. Useful as the reference side of
	// equivalence tests and benchmarks.
	LifecycleFresh
	// LifecycleSnapshot requires snapshot support; Run fails if the
	// builder does not implement apps.SnapshotBuilder.
	LifecycleSnapshot
)

// String returns the lifecycle name.
func (l Lifecycle) String() string {
	switch l {
	case LifecycleAuto:
		return "auto"
	case LifecycleFresh:
		return "fresh"
	case LifecycleSnapshot:
		return "snapshot"
	default:
		return fmt.Sprintf("lifecycle(%d)", int(l))
	}
}

// CampaignConfig describes one error-injection campaign: N independent
// trials of the Fig. 2 loop (restart app → inject → run client workload →
// compare against expected output).
type CampaignConfig struct {
	// Builder constructs one fresh application instance per trial.
	Builder apps.Builder
	// Lifecycle selects fresh-build-per-trial versus
	// build-once/snapshot/restore (default LifecycleAuto). The two
	// paths produce bit-identical CampaignResults; snapshotting only
	// changes the wall-clock cost of step 1 of the loop.
	Lifecycle Lifecycle
	// Spec is the error type to inject.
	Spec faults.Spec
	// Trials is the size of the campaign's trial index space. With the
	// default fixed plan every index runs exactly once; an adaptive
	// planner may stop earlier (Trials then acts as the hard budget).
	Trials int
	// Planner decides which trial indices run and when the campaign
	// stops (see TrialPlanner). nil means NewFixedPlanner() — the
	// classic "every owned index, ascending" fixed-N campaign, which is
	// bit-identical to the pre-planner engine. AdaptivePlanner stops
	// once the Wilson CI half-width of the crash probability reaches a
	// target; it requires the whole index space, so it cannot be
	// combined with a multi-shard Shard spec.
	Planner TrialPlanner
	// Seed makes the campaign deterministic; trial i derives its own
	// generator from it, so results are independent of Parallelism.
	Seed int64
	// Filter restricts injection to matching regions (nil = any used
	// byte, weighted by region size).
	Filter func(*simmem.Region) bool
	// Warmup is the number of requests served before injection
	// (injected errors then land in a warmed-up application).
	Warmup int
	// Parallelism bounds concurrent trials (default: GOMAXPROCS).
	Parallelism int
	// Golden optionally supplies the expected digests, skipping the
	// golden run (reuse across campaigns of the same builder).
	Golden []uint64
	// Progress, if non-nil, is called after every completed trial with
	// the campaign's live progress (counts, wall-clock rate, projected
	// time remaining). Calls are serialized, so the hook needs no
	// locking of its own; it must be cheap, since it sits between
	// parallel trials.
	Progress func(ProgressInfo)
	// Metrics, if non-nil, receives campaign instrumentation: trial and
	// outcome counters plus per-trial wall-clock and virtual-time
	// histograms. The metric names are documented in OBSERVABILITY.md.
	// Instrumentation never affects results — campaigns stay
	// bit-identical with or without it.
	Metrics *obsv.Registry
	// Tracer, if non-nil, receives the per-trial event stream (trial
	// boundaries, injection, faulty-word accesses, ECC activity,
	// crashes, outcome classification — see internal/evtrace and the
	// "Event tracing" section of OBSERVABILITY.md). Like Metrics it is
	// observational only: campaign results are bit-identical with or
	// without it, and a nil tracer adds no work and no allocations on
	// the access hot path. The caller closes the tracer after Run
	// returns.
	Tracer *evtrace.Tracer
	// TrialTimeout, if positive, is the per-trial wall-clock watchdog
	// deadline: a trial still running after this long (a corrupted
	// pointer driving the application into an unbounded path) is
	// abandoned and recorded with DispositionAborted /
	// AbortReasonDeadline. Normal trials are unaffected — the watchdog
	// never perturbs the Fig. 1 taxonomy of trials that finish in time.
	TrialTimeout time.Duration
	// TrialOpBudget, if positive, bounds the simulated memory operations
	// a trial may perform after injection; exceeding it aborts the trial
	// with AbortReasonOpBudget. Unlike TrialTimeout it is measured in
	// virtual work, so it is deterministic: the same trial aborts at the
	// same operation on every run.
	TrialOpBudget int64
	// MaxRetries bounds retries of transient trial-infrastructure
	// failures (build, warmup, snapshot-restore errors) before the trial
	// is recorded as aborted with AbortReasonWorkerError. 0 means the
	// default (DefaultTrialRetries); negative disables retries.
	MaxRetries int
	// RetryBackoff is the wall-clock delay before the first retry,
	// doubling per attempt (default DefaultRetryBackoff).
	RetryBackoff time.Duration
	// Resume maps trial indices to results recorded by a previous,
	// interrupted run of the same campaign (see ReadJournal). Those
	// indices are not re-run; their results are merged in place, which
	// is bit-identical to running them because trial i's generator
	// depends only on (Seed, i).
	Resume map[int]TrialResult
	// Shard, if non-nil, restricts the run to the shard's contiguous
	// slice of trial indices (see ShardSpec.Range): the campaign keeps
	// its full identity — Trials, Seed, and the journal header are the
	// whole campaign's — but only the owned indices are dispatched.
	// Shards of one campaign are therefore independent processes whose
	// journals merge (MergeShards) into a result bit-identical to an
	// unsharded run. Resume records outside the shard's range are
	// ignored.
	Shard *ShardSpec
	// Journal, if non-nil, receives every trial result as it finishes
	// (flushed per record), so an interrupted campaign can resume.
	// Resumed trials are not re-journaled.
	Journal *Journal
	// StatusSink, if non-nil, periodically receives a ShardStatus
	// heartbeat: progress, dispositions, outcome counts so far, rate and
	// ETA, and the full Metrics snapshot. Emission is throttled to
	// StatusInterval off the trial hot path — at most one record per
	// interval, plus one initial record when the run starts and one
	// final record (Running=false) when it ends. Calls are serialized;
	// the sink typically persists the record (see WriteStatus) and must
	// not block for long, since it runs between parallel trials.
	StatusSink func(ShardStatus)
	// StatusInterval is the minimum spacing between StatusSink
	// heartbeats (default DefaultStatusInterval).
	StatusInterval time.Duration
}

// Retry policy defaults (see CampaignConfig.MaxRetries / RetryBackoff).
const (
	DefaultTrialRetries = 2
	DefaultRetryBackoff = 5 * time.Millisecond
)

// ProgressInfo is the payload of the CampaignConfig.Progress hook: how
// far the campaign has advanced and how fast it is moving. Rates and the
// ETA are derived from the host wall clock; MeanTrialVirtualMinutes is
// derived from the trials' virtual spans (TrialResult.EndedAt −
// InjectedAt).
type ProgressInfo struct {
	// Done and Total count completed trials and the campaign size.
	Done, Total int
	// Elapsed is the host wall time since the campaign started.
	Elapsed time.Duration
	// TrialsPerSec is the completed-trial throughput (Done/Elapsed).
	TrialsPerSec float64
	// ETA is the projected wall time remaining at the current rate
	// (zero when Done == Total).
	ETA time.Duration
	// MeanTrialVirtualMinutes is the mean simulated span of the
	// finished trials, in virtual minutes.
	MeanTrialVirtualMinutes float64
	// Adaptive marks an open-ended campaign: an adaptive planner is
	// still narrowing its CI, so Total is the planner's current budget
	// estimate (the next evaluation boundary), not a fixed size, and
	// may grow between calls until the stopping rule fires.
	Adaptive bool
}

// CampaignResult aggregates a campaign.
type CampaignResult struct {
	// App is the application name.
	App string
	// Spec is the injected error type.
	Spec faults.Spec
	// Trials holds every trial that has a result — ran this run,
	// resumed from a journal, or aborted — in ascending Index order.
	// When the campaign was interrupted this is a prefix-biased subset
	// of the requested trials.
	Trials []TrialResult
	// Golden holds the expected digests (reusable for further
	// campaigns over the same builder).
	Golden []uint64
	// Requested is the configured campaign size (cfg.Trials);
	// len(Trials) < Requested when the campaign was interrupted.
	Requested int
	// Planned is the trial count the campaign's planner settled on:
	// Requested under the fixed plan, the stopping boundary under an
	// adaptive one (Requested − Planned is the trials the adaptive rule
	// saved). For a worker shard it is always the whole campaign's
	// Requested.
	Planned int
	// PlanFinal reports the planner reached its final verdict — false
	// when an adaptive plan was paused (AdaptivePlanner.PauseAfterRounds)
	// and resuming it could grow Planned further.
	PlanFinal bool
	// Resumed counts trials whose results were merged from
	// CampaignConfig.Resume instead of being re-run.
	Resumed int
	// Interrupted reports that the context was cancelled before every
	// trial ran; in-flight trials were drained and are included.
	Interrupted bool

	counts map[Outcome]int
}

// Completed returns the number of trials that ran to Fig. 1
// classification. It is the denominator of every probability estimate —
// aborted trials carry no outcome and must not dilute the statistics.
func (r *CampaignResult) Completed() int {
	n := 0
	for _, tr := range r.Trials {
		if tr.Disposition == DispositionCompleted {
			n++
		}
	}
	return n
}

// AbortedCount returns the number of trials the supervisor gave up on.
func (r *CampaignResult) AbortedCount() int {
	return len(r.Trials) - r.Completed()
}

// GoldenRun executes the full workload on a fresh instance and returns the
// expected response digests. It fails if the application crashes or is
// nondeterministic under no injection.
func GoldenRun(b apps.Builder) ([]uint64, error) {
	app, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("core: building golden instance: %w", err)
	}
	out := make([]uint64, app.NumRequests())
	for i := range out {
		resp, err := app.Serve(i)
		if err != nil {
			return nil, fmt.Errorf("core: golden run crashed at request %d: %w", i, err)
		}
		out[i] = resp.Digest
	}
	return out, nil
}

// Run executes the campaign to completion (no cancellation).
func Run(cfg CampaignConfig) (*CampaignResult, error) {
	return RunContext(context.Background(), cfg)
}

// RunContext executes the campaign under a context. Cancelling the
// context stops dispatching new trials, drains the in-flight ones, and
// returns the partial result with Interrupted set — never an error —
// so a SIGINT still yields every finished trial (and, with a Journal,
// a resumable record of them).
func RunContext(ctx context.Context, cfg CampaignConfig) (*CampaignResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if cfg.Builder == nil {
		return nil, fmt.Errorf("core: campaign needs a builder")
	}
	if cfg.Trials <= 0 {
		return nil, fmt.Errorf("core: trials must be positive, got %d", cfg.Trials)
	}
	if err := cfg.Spec.Validate(); err != nil {
		return nil, err
	}
	for i := range cfg.Resume {
		if i < 0 || i >= cfg.Trials {
			return nil, fmt.Errorf("core: resume record for trial %d outside [0,%d)", i, cfg.Trials)
		}
	}
	if cfg.Shard != nil {
		if err := cfg.Shard.Validate(); err != nil {
			return nil, err
		}
		// Fail sharded adaptive campaigns before the golden run: the
		// planner's own Start check would catch it, but only after the
		// expensive build. (A 1-shard spec covers the whole index space
		// and is allowed.)
		if _, adaptive := cfg.Planner.(*AdaptivePlanner); adaptive && cfg.Shard.Count > 1 {
			return nil, fmt.Errorf("core: the adaptive planner needs the whole trial index space; shard %d/%d campaigns must use the fixed plan", cfg.Shard.Index, cfg.Shard.Count)
		}
	}
	golden := cfg.Golden
	if golden == nil {
		var err error
		golden, err = GoldenRun(cfg.Builder)
		if err != nil {
			return nil, err
		}
	}
	if cfg.Warmup < 0 || cfg.Warmup >= len(golden) {
		return nil, fmt.Errorf("core: warmup %d outside [0,%d)", cfg.Warmup, len(golden))
	}
	par := cfg.Parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	if par > cfg.Trials {
		par = cfg.Trials
	}
	sb, snapshotOK := cfg.Builder.(apps.SnapshotBuilder)
	useSnapshot := false
	switch cfg.Lifecycle {
	case LifecycleAuto:
		useSnapshot = snapshotOK
	case LifecycleFresh:
	case LifecycleSnapshot:
		if !snapshotOK {
			return nil, fmt.Errorf("core: lifecycle snapshot requires an apps.SnapshotBuilder; %s builder does not implement it",
				cfg.Builder.AppName())
		}
		useSnapshot = true
	default:
		return nil, fmt.Errorf("core: unknown lifecycle %d", int(cfg.Lifecycle))
	}

	maxRetries := cfg.MaxRetries
	switch {
	case maxRetries == 0:
		maxRetries = DefaultTrialRetries
	case maxRetries < 0:
		maxRetries = 0
	}
	backoff := cfg.RetryBackoff
	if backoff <= 0 {
		backoff = DefaultRetryBackoff
	}

	statusInterval := cfg.StatusInterval
	if statusInterval <= 0 {
		statusInterval = DefaultStatusInterval
	}
	s := &supervisor{
		cfg:            cfg,
		golden:         golden,
		par:            par,
		sb:             sb,
		useSnapshot:    useSnapshot,
		maxRetries:     maxRetries,
		backoff:        backoff,
		statusInterval: statusInterval,
		m:              newCampaignMetrics(cfg.Metrics),
	}
	return s.run(ctx)
}

// campaignMetrics holds the pre-resolved metric handles of one campaign
// (nil receiver = instrumentation off). Names per OBSERVABILITY.md.
type campaignMetrics struct {
	reg        *obsv.Registry
	trials     *obsv.Counter
	requests   *obsv.Counter
	incorrect  *obsv.Counter
	restores   *obsv.Counter
	retried    *obsv.Counter
	journal    *obsv.Counter
	resumeSkip *obsv.Counter
	fastLoads  *obsv.Counter
	fastWords  *obsv.Counter
	folds      *obsv.Counter
	tainted    *obsv.Gauge
	taintedW   *obsv.Gauge
	outcomes   map[Outcome]*obsv.Counter
	wallMs     *obsv.Histogram
	virtMin    *obsv.Histogram
	dirtyPages *obsv.Histogram
}

func newCampaignMetrics(reg *obsv.Registry) *campaignMetrics {
	if reg == nil {
		return nil
	}
	m := &campaignMetrics{
		reg:        reg,
		trials:     reg.Counter("campaign_trials_total"),
		requests:   reg.Counter("campaign_requests_total"),
		incorrect:  reg.Counter("campaign_incorrect_responses_total"),
		restores:   reg.Counter("campaign_snapshot_restores_total"),
		retried:    reg.Counter("campaign_trials_retried_total"),
		journal:    reg.Counter("campaign_journal_records_total"),
		resumeSkip: reg.Counter("campaign_resume_skipped_total"),
		fastLoads:  reg.Counter("simmem_fastpath_loads_total"),
		fastWords:  reg.Counter("simmem_fastpath_words_total"),
		folds:      reg.Counter("campaign_metrics_folds_total"),
		tainted:    reg.Gauge("simmem_tainted_pages"),
		taintedW:   reg.Gauge("simmem_tainted_words"),
		outcomes:   make(map[Outcome]*obsv.Counter, len(Outcomes())),
		// Trial wall-clock cost: 0.25 ms .. ~8 s.
		wallMs: reg.Histogram("campaign_trial_wall_ms", obsv.ExpBuckets(0.25, 2, 16)),
		// Post-injection virtual span: 1 min .. ~5.7 days.
		virtMin: reg.Histogram("campaign_trial_virtual_minutes", obsv.ExpBuckets(1, 2, 14)),
		// Pages rolled back per restore: 1 .. 32768.
		dirtyPages: reg.Histogram("campaign_snapshot_dirty_pages", obsv.ExpBuckets(1, 2, 16)),
	}
	for _, o := range Outcomes() {
		m.outcomes[o] = reg.Counter("campaign_outcome_" + o.MetricName())
	}
	return m
}

// workerMetrics is one worker's unsynchronized shard of campaignMetrics.
// At parallelism ≥ 8 even single-atomic-op updates contend on the shared
// cache lines, so the trial hot path records into plain fields and
// LocalHistograms and folds into the shared registry at trial
// boundaries. Folding follows the MergeSnapshots aggregation policy:
// counters sum, histogram buckets add bucket-wise, gauges take the last
// written value. A nil shard (instrumentation off) swallows everything.
type workerMetrics struct {
	m *campaignMetrics // shared fold target

	trials    int64
	requests  int64
	incorrect int64
	restores  int64
	fastLoads int64
	fastWords int64
	// Outcome values are small consecutive ints (1..5); an array beats a
	// map on the per-trial path.
	outcomes [8]int64

	// Last-observed gauge levels, published on fold (last-writer-wins
	// across workers, matching the previous direct-Set semantics).
	taintedPages float64
	taintedWords float64
	gaugeSeen    bool

	wallMs     *obsv.LocalHistogram
	virtMin    *obsv.LocalHistogram
	dirtyPages *obsv.LocalHistogram

	pending int  // trials recorded since the last fold
	dirty   bool // anything recorded since the last fold
}

// foldEvery bounds how stale the shared registry may run behind a
// worker's shard: at most this many trials of counts are unpublished at
// any instant (live /metrics observers see slightly-delayed, never
// wrong, totals).
const foldEvery = 16

// newWorker returns a fresh shard folding into m, or nil when
// instrumentation is off.
func (m *campaignMetrics) newWorker() *workerMetrics {
	if m == nil {
		return nil
	}
	return &workerMetrics{
		m:          m,
		wallMs:     m.wallMs.NewLocal(),
		virtMin:    m.virtMin.NewLocal(),
		dirtyPages: m.dirtyPages.NewLocal(),
	}
}

// record adds one completed trial to the shard.
func (w *workerMetrics) record(tr TrialResult, wall time.Duration) {
	if w == nil {
		return
	}
	w.trials++
	w.requests += int64(tr.Requests)
	w.incorrect += int64(tr.Incorrect)
	w.wallMs.Observe(float64(wall) / float64(time.Millisecond))
	w.virtMin.Observe((tr.EndedAt - tr.InjectedAt).Minutes())
	if o := int(tr.Outcome); o >= 0 && o < len(w.outcomes) {
		w.outcomes[o]++
	}
	w.pending++
	w.dirty = true
}

// recordSimmem adds one trial's simulated-memory fast-path statistics:
// the post-injection loads and words served by the clean-word fast path,
// and the tainted page/word counts when the trial ended (sanity-signal
// gauges — trials inject at most a handful of faults).
func (w *workerMetrics) recordSimmem(fastLoads, fastWords uint64, taintedPages, taintedWords int) {
	if w == nil {
		return
	}
	w.fastLoads += int64(fastLoads)
	w.fastWords += int64(fastWords)
	w.taintedPages = float64(taintedPages)
	w.taintedWords = float64(taintedWords)
	w.gaugeSeen = true
	w.dirty = true
}

// recordRestore adds one snapshot restore and its rollback size.
func (w *workerMetrics) recordRestore(dirtyPages int) {
	if w == nil {
		return
	}
	w.restores++
	w.dirtyPages.Observe(float64(dirtyPages))
	w.dirty = true
}

// maybeFold folds once foldEvery trials have accumulated.
func (w *workerMetrics) maybeFold() {
	if w == nil || w.pending < foldEvery {
		return
	}
	w.fold()
}

// fold publishes the shard into the shared registry and resets it.
// Folding a clean shard is free; every worker folds unconditionally on
// exit, so post-campaign registry reads are exact.
func (w *workerMetrics) fold() {
	if w == nil || !w.dirty {
		return
	}
	addCount := func(c *obsv.Counter, n *int64) {
		if *n != 0 {
			c.Add(*n)
			*n = 0
		}
	}
	addCount(w.m.trials, &w.trials)
	addCount(w.m.requests, &w.requests)
	addCount(w.m.incorrect, &w.incorrect)
	addCount(w.m.restores, &w.restores)
	addCount(w.m.fastLoads, &w.fastLoads)
	addCount(w.m.fastWords, &w.fastWords)
	for o := range w.outcomes {
		if w.outcomes[o] == 0 {
			continue
		}
		if c, ok := w.m.outcomes[Outcome(o)]; ok {
			c.Add(w.outcomes[o])
		}
		w.outcomes[o] = 0
	}
	w.wallMs.FoldInto()
	w.virtMin.FoldInto()
	w.dirtyPages.FoldInto()
	if w.gaugeSeen {
		w.m.tainted.Set(w.taintedPages)
		w.m.taintedW.Set(w.taintedWords)
		w.gaugeSeen = false
	}
	w.m.folds.Inc()
	w.pending, w.dirty = 0, false
}

// recordAbort counts one aborted trial under its reason label. Abort is
// a cold path, so resolving the labeled counter through the registry
// (a mutex) per call is fine.
func (m *campaignMetrics) recordAbort(reason string) {
	if m == nil {
		return
	}
	m.reg.Counter(obsv.LabeledName("campaign_trials_aborted_total", "reason", reason)).Inc()
}

// recordDecision meters one planner stop/continue verdict. The handles
// are resolved lazily through the registry (decisions are a cold path —
// one per evaluation boundary) so fixed campaigns, which make no
// decisions, expose no adaptive metric rows at all.
func (m *campaignMetrics) recordDecision(d PlannerDecision, requested int) {
	if m == nil {
		return
	}
	m.reg.Gauge("campaign_ci_half_width").Set(d.HalfWidth)
	if d.Replayed || !d.Stop {
		return
	}
	if !d.Exhausted {
		m.reg.Counter("campaign_adaptive_stopped_total").Inc()
	}
	if saved := requested - d.Boundary; saved > 0 {
		m.reg.Counter("campaign_trials_saved_total").Add(int64(saved))
	}
}

// recordRetry counts one retried trial attempt.
func (m *campaignMetrics) recordRetry() {
	if m == nil {
		return
	}
	m.retried.Inc()
}

// recordJournal counts one appended journal record.
func (m *campaignMetrics) recordJournal() {
	if m == nil {
		return
	}
	m.journal.Inc()
}

// recordResumeSkip counts one trial skipped because a resume journal
// already held its result.
func (m *campaignMetrics) recordResumeSkip() {
	if m == nil {
		return
	}
	m.resumeSkip.Inc()
}

// trialSeed derives a decorrelated per-trial seed (splitmix-style).
func trialSeed(seed int64, i int) int64 {
	x := uint64(seed) + uint64(i)*0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return int64(x)
}

// snapshotSession is one worker's reusable application instance for the
// build-once lifecycle: built and warmed up once, snapshotted, then
// restored before every trial. Sessions are per-worker, never shared.
type snapshotSession struct {
	app apps.SnapshotApp
	// startVT is the virtual clock reading right after build — what a
	// fresh-build trial would stamp on its trial_start event.
	startVT time.Duration
}

// newSnapshotSession builds one instance, replays (and validates) the
// warmup prefix, and captures the post-warmup state as the reset point.
func newSnapshotSession(sb apps.SnapshotBuilder, golden []uint64, warmup int) (*snapshotSession, error) {
	app, err := sb.BuildSnapshot()
	if err != nil {
		return nil, fmt.Errorf("building app: %w", err)
	}
	startVT := app.Space().Clock().Now()
	for q := 0; q < warmup; q++ {
		resp, err := app.Serve(q)
		if err != nil {
			return nil, fmt.Errorf("warmup request %d crashed: %w", q, err)
		}
		if resp.Digest != golden[q] {
			return nil, fmt.Errorf("warmup request %d mismatched golden output", q)
		}
	}
	if err := app.Snapshot(); err != nil {
		return nil, fmt.Errorf("snapshotting app: %w", err)
	}
	return &snapshotSession{app: app, startVT: startVT}, nil
}

// runTrial performs one pass of the Fig. 2 loop against the session's
// restored instance. The per-trial rng is derived exactly as in the
// fresh-build path, and restore rolls the instance back to the
// post-warmup capture, so the trial is bit-identical to a fresh build.
func (s *snapshotSession) runTrial(cfg CampaignConfig, golden []uint64, wm *workerMetrics, i int) (TrialResult, error) {
	rng := rand.New(rand.NewSource(trialSeed(cfg.Seed, i)))
	dirty, err := s.app.Reset()
	if err != nil {
		return TrialResult{}, fmt.Errorf("restoring snapshot: %w", err)
	}
	wm.recordRestore(dirty)
	tt := cfg.Tracer.Trial(i)
	traceTrialStartAt(tt, s.startVT)
	traceRestore(tt, s.app.Space())
	return injectAndServe(cfg, golden, s.app, rng, tt, wm)
}

// runTrial performs one pass of the Fig. 2 loop on a freshly built
// instance.
func runTrial(cfg CampaignConfig, golden []uint64, wm *workerMetrics, i int) (TrialResult, error) {
	rng := rand.New(rand.NewSource(trialSeed(cfg.Seed, i)))
	app, err := cfg.Builder.Build()
	if err != nil {
		return TrialResult{}, fmt.Errorf("building app: %w", err)
	}
	as := app.Space()
	tt := cfg.Tracer.Trial(i)
	traceTrialStart(tt, as)

	// Warm up (pre-injection requests must match golden exactly).
	for q := 0; q < cfg.Warmup; q++ {
		resp, err := app.Serve(q)
		if err != nil {
			return TrialResult{}, fmt.Errorf("warmup request %d crashed: %w", q, err)
		}
		if resp.Digest != golden[q] {
			return TrialResult{}, fmt.Errorf("warmup request %d mismatched golden output", q)
		}
	}
	return injectAndServe(cfg, golden, app, rng, tt, wm)
}

// injectAndServe runs steps 2–5 of the Fig. 2 loop — inject, run the
// post-warmup client workload, classify — on an already warmed-up
// instance. It is shared verbatim by the fresh-build and snapshot
// lifecycles, which is what keeps the two bit-identical.
func injectAndServe(cfg CampaignConfig, golden []uint64, app apps.App, rng *rand.Rand, tt *evtrace.TrialTracer, wm *workerMetrics) (TrialResult, error) {
	as := app.Space()
	startFast := as.FastPathLoads()
	startWords := as.FastPathWords()

	// Inject (Algorithm 1(a)).
	inj, err := inject.Random(as, rng, cfg.Spec, cfg.Filter)
	if err != nil {
		return TrialResult{}, fmt.Errorf("injecting: %w", err)
	}
	addrs := make([]simmem.Addr, len(inj.Targets))
	for k, t := range inj.Targets {
		addrs[k] = t.Addr
	}
	tracker := newAccessTracker(addrs)
	as.AddAccessObserver(tracker)
	traceInjection(tt, as, inj, addrs)
	if cfg.TrialOpBudget > 0 {
		// The budget counts post-injection operations only, and the
		// observer is attached in the same order on both lifecycles
		// (fresh observers are truncated by snapshot restore), so a
		// budget large enough never to fire leaves results bit-identical.
		as.AddAccessObserver(&opBudgetWatchdog{
			remaining: cfg.TrialOpBudget,
			budget:    cfg.TrialOpBudget,
			tt:        tt,
		})
	}

	tr := TrialResult{
		Region:     inj.Region.Name(),
		Kind:       inj.Region.Kind(),
		InjectedAt: as.Clock().Now(),
	}

	// Run the client workload (Fig. 2 steps 3–5).
	crashed := false
	for q := cfg.Warmup; q < len(golden); q++ {
		resp, serveErr := serveGuarded(app, q)
		if serveErr != nil {
			if !apps.IsCrash(serveErr) {
				return TrialResult{}, fmt.Errorf("request %d: unexpected error: %w", q, serveErr)
			}
			crashed = true
			tr.CrashReason = serveErr.Error()
			var pc *panicCrash
			if errors.As(serveErr, &pc) {
				tr.CrashStack = pc.stack
			}
			if tr.EffectAt == 0 {
				tr.EffectAt = as.Clock().Now()
			}
			if tt != nil {
				tt.Emit(evtrace.Event{
					Kind:    evtrace.KindCrash,
					VTNanos: int64(as.Clock().Now()),
					Detail:  tr.CrashReason,
					Stack:   tr.CrashStack,
				})
			}
			break
		}
		tr.Requests++
		if resp.Digest != golden[q] {
			tr.Incorrect++
			if tr.EffectAt == 0 {
				tr.EffectAt = as.Clock().Now()
			}
			if len(tr.IncorrectAt) < maxIncorrectTimes {
				tr.IncorrectAt = append(tr.IncorrectAt, as.Clock().Now())
			}
		}
	}
	tr.Outcome = classify(crashed, tr.Incorrect, tracker.first)
	// The run ends at the crash instant or after the final request —
	// either way, the virtual clock has stopped advancing.
	tr.EndedAt = as.Clock().Now()
	tp, tw := as.TaintStats()
	wm.recordSimmem(as.FastPathLoads()-startFast, as.FastPathWords()-startWords, tp, tw)
	traceTrialEnd(tt, tr)
	return tr, nil
}

// serveGuarded converts panics in application code (parsing corrupted
// bytes) into crash-worthy errors, like a segfault handler would, keeping
// the sanitized panic stack so crash outcomes are debuggable. The
// watchdog's own abort panic is not an application crash and passes
// through.
func serveGuarded(app apps.App, q int) (resp apps.Response, err error) {
	defer func() {
		if r := recover(); r != nil {
			if ab, ok := r.(*trialAbort); ok {
				panic(ab)
			}
			err = &panicCrash{
				err:   apps.Assertf("panic serving request %d: %v", q, r),
				stack: sanitizeStack(debug.Stack()),
			}
		}
	}()
	return app.Serve(q)
}

// panicCrash is a crash-worthy error (it wraps apps.ErrAssert) carrying
// the goroutine stack captured at the recovery point.
type panicCrash struct {
	err   error
	stack string
}

func (e *panicCrash) Error() string { return e.err.Error() }
func (e *panicCrash) Unwrap() error { return e.err }

// sanitizeStack reduces a debug.Stack capture to its deterministic core:
// the frames above the serveGuarded recovery point, with the goroutine
// header, argument values, and frame offsets stripped. Campaign results
// must stay bit-identical across lifecycles, parallelism, and resume; a
// raw stack is not (goroutine ids, pointer arguments, worker frames),
// but the panicking call chain inside the application is.
func sanitizeStack(stack []byte) string {
	var out []string
	for i, line := range strings.Split(string(stack), "\n") {
		if i == 0 && strings.HasPrefix(line, "goroutine ") {
			continue
		}
		if !strings.HasPrefix(line, "\t") {
			// Function line. Below the recovery point the frames depend
			// on lifecycle and worker scheduling — stop there.
			if strings.HasPrefix(line, "hrmsim/internal/core.serveGuarded(") {
				break
			}
			// Cut at the argument list — the LAST '(', since method
			// receivers put one in the frame name: pkg.(*T).M(0x...).
			if j := strings.LastIndexByte(line, '('); j >= 0 {
				line = line[:j]
			}
		} else if j := strings.LastIndex(line, " +0x"); j >= 0 {
			// Location line: strip the frame offset.
			line = line[:j]
		}
		out = append(out, line)
	}
	return strings.Join(out, "\n")
}

// Count returns the number of trials with the given outcome.
func (r *CampaignResult) Count(o Outcome) int { return r.counts[o] }

// CrashProbability estimates P(crash | one injected error) with a Wilson
// interval at the given confidence level (the paper uses 0.90). The
// denominator is the completed trials — aborted ones carry no outcome.
func (r *CampaignResult) CrashProbability(level float64) (stats.Proportion, error) {
	return stats.WilsonInterval(r.counts[OutcomeCrash], r.Completed(), level)
}

// ToleratedProbability estimates the probability that an error is masked
// (outcomes 1 and 2.1, plus latent).
func (r *CampaignResult) ToleratedProbability(level float64) (stats.Proportion, error) {
	n := r.counts[OutcomeMaskedOverwrite] + r.counts[OutcomeMaskedLogic] + r.counts[OutcomeMaskedLatent]
	return stats.WilsonInterval(n, r.Completed(), level)
}

// IncorrectPerBillion returns the mean rate of incorrect responses per
// billion requests across all trials, and the maximum single-trial rate
// (the paper's Fig. 3b/4b error bars).
func (r *CampaignResult) IncorrectPerBillion() (mean, max float64) {
	var totalIncorrect, totalRequests float64
	for _, tr := range r.Trials {
		if tr.Requests == 0 {
			continue
		}
		totalIncorrect += float64(tr.Incorrect)
		totalRequests += float64(tr.Requests)
		rate := float64(tr.Incorrect) / float64(tr.Requests) * 1e9
		if rate > max {
			max = rate
		}
	}
	if totalRequests > 0 {
		mean = totalIncorrect / totalRequests * 1e9
	}
	return mean, max
}

// maxIncorrectTimes caps the per-trial incorrect-time samples.
const maxIncorrectTimes = 256

// AllIncorrectTimes returns the injection-to-occurrence latencies (in
// minutes of virtual time) of every recorded incorrect response across
// all trials — the paper's Fig. 5a measures when outcomes *occur*, and
// incorrect results recur throughout the run as corrupted data is
// re-consumed ("periodically incorrect").
func (r *CampaignResult) AllIncorrectTimes() []float64 {
	var out []float64
	for _, tr := range r.Trials {
		for _, at := range tr.IncorrectAt {
			out = append(out, (at - tr.InjectedAt).Minutes())
		}
	}
	return out
}

// TimesToEffect returns the injection-to-effect latencies (in minutes of
// virtual time) of trials with the given outcome — the Fig. 5a samples.
func (r *CampaignResult) TimesToEffect(o Outcome) []float64 {
	var out []float64
	for _, tr := range r.Trials {
		if tr.Outcome != o {
			continue
		}
		if d, ok := tr.TimeToEffect(); ok {
			out = append(out, d.Minutes())
		}
	}
	return out
}

// OutcomeFractions returns each outcome's share of completed trials.
func (r *CampaignResult) OutcomeFractions() map[Outcome]float64 {
	completed := r.Completed()
	out := make(map[Outcome]float64, len(r.counts))
	if completed == 0 {
		return out
	}
	for o, n := range r.counts {
		out[o] = float64(n) / float64(completed)
	}
	return out
}

// MeanHorizon returns the average virtual run length after injection, used
// as the Fig. 5a observation horizon: crashed trials are observed until the
// crash, and every other trial for the span of the whole run (EndedAt −
// InjectedAt). Trials without an end timestamp (hand-built results from
// before EndedAt existed) are skipped.
func (r *CampaignResult) MeanHorizon() time.Duration {
	var sum time.Duration
	n := 0
	for _, tr := range r.Trials {
		if tr.EndedAt == 0 {
			continue
		}
		sum += tr.EndedAt - tr.InjectedAt
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / time.Duration(n)
}
