// The campaign control plane's CLI surface: the coordinator's status
// HTTP server (/statusz, merged /metrics, /healthz, pprof), the fleet
// progress line, and the `hrmsim status` subcommand that renders the
// same fleet view from any shell — against a live campaign (workers
// still heartbeating) or a dead one (final records only). The on-disk
// heartbeat contract the view is built from is documented in
// OBSERVABILITY.md; the operator workflow in SHARDING.md.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"hrmsim"
	"hrmsim/internal/obsv"
)

// startStatusServer serves the coordinator's live fleet view on addr:
// /statusz (the JSON envelope `hrmsim status -json` emits), /metrics
// (the fleet's merged obsv snapshot plus the coordinator's own
// registry, same encoders kvserve uses), /healthz, and the standard
// pprof handlers. fleet returns the latest aggregate (nil before the
// first heartbeat). The returned func shuts the server down, draining
// in-flight requests briefly.
func startStatusServer(addr string, fleet func() *hrmsim.FleetStatus, reg *obsv.Registry) (shutdown func(), boundAddr string, err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", fmt.Errorf("status listener: %w", err)
	}
	// Same posture as kvserve's metrics sidecar: long-lived and
	// unauthenticated, so a slow client must not pin a connection
	// forever; no WriteTimeout because pprof captures stream.
	srv := &http.Server{
		Handler:           statusMux(fleet, reg),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       10 * time.Second,
		IdleTimeout:       120 * time.Second,
	}
	go func() {
		if serr := srv.Serve(ln); serr != nil && serr != http.ErrServerClosed {
			fmt.Fprintf(os.Stderr, "coordinator: status server: %v\n", serr)
		}
	}()
	shutdown = func() {
		ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}
	return shutdown, ln.Addr().String(), nil
}

// statusMux builds the control-plane handler set.
func statusMux(fleet func() *hrmsim.FleetStatus, reg *obsv.Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/statusz", func(w http.ResponseWriter, _ *http.Request) {
		fs := fleet()
		if fs == nil {
			http.Error(w, "no shard status yet", http.StatusServiceUnavailable)
			return
		}
		env := envelope{
			SchemaVersion: schemaVersion,
			Tool:          "hrmsim",
			Command:       "status",
			Result:        toFleetJSON(fs, time.Now()),
			Metrics:       fs.Metrics,
		}
		b, err := json.MarshalIndent(env, "", "  ")
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_, _ = w.Write(append(b, '\n'))
	})
	// /metrics merges the shards' heartbeat snapshots with the
	// coordinator's own registry (spawn/respawn counters), so one scrape
	// covers the whole fleet with the usual text/JSON negotiation.
	mux.Handle("/metrics", obsv.SnapshotHandler(func() obsv.Snapshot {
		snaps := []obsv.Snapshot{reg.Snapshot()}
		if fs := fleet(); fs != nil && fs.Metrics != nil {
			snaps = append(snaps, *fs.Metrics)
		}
		return obsv.MergeSnapshots(snaps...)
	}))
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// fleetProgressLine renders the one-line aggregate progress of a
// sharded campaign, the coordinator-mode counterpart of progressFunc's
// per-process line.
func fleetProgressLine(fs *hrmsim.FleetStatus) string {
	pct := 0
	if fs.Trials > 0 {
		pct = 100 * fs.Done / fs.Trials
	}
	line := fmt.Sprintf("characterize: %d/%d trials (%d%%) | %d shard(s) running",
		fs.Done, fs.Trials, pct, fs.Running)
	if fs.Running > 0 && fs.TrialsPerSec > 0 {
		line += fmt.Sprintf(" | %.1f trials/s | ETA %s", fs.TrialsPerSec, fs.ETA.Round(time.Second))
	}
	return line
}

// fleetProgressSink returns a FleetSink that rewrites one stderr-style
// progress line per delivery and finishes it with a newline when the
// last shard's final record lands.
func fleetProgressSink(w *os.File) func(*hrmsim.FleetStatus) {
	finished := false
	return func(fs *hrmsim.FleetStatus) {
		if finished {
			return
		}
		fmt.Fprintf(w, "\r%s", fleetProgressLine(fs))
		if fs.Running == 0 {
			fmt.Fprintln(w)
			finished = true
		}
	}
}

// renderFleetStatus renders the full fleet view `hrmsim status` (and
// -watch) prints: campaign identity, aggregate progress, dispositions,
// the Fig. 1 outcome taxonomy so far, and one line per reporting shard
// with its heartbeat age — the liveness signal straggler detection
// keys on.
func renderFleetStatus(fs *hrmsim.FleetStatus, now time.Time) string {
	var b strings.Builder
	region := string(fs.Region)
	if region == "" {
		region = "all regions"
	}
	fmt.Fprintf(&b, "Campaign: %s, %s errors, %s, %d trials, seed %d (config %.12s…)\n",
		fs.App, fs.Error, region, fs.Trials, fs.Seed, fs.ConfigHash)
	pct := 0
	if fs.Trials > 0 {
		pct = 100 * fs.Done / fs.Trials
	}
	shardCount := 0
	if len(fs.Shards) > 0 {
		shardCount = fs.Shards[0].Count
	}
	fmt.Fprintf(&b, "  fleet: %d/%d trials (%d%%) | %d/%d shard(s) reporting, %d running",
		fs.Done, fs.Trials, pct, len(fs.Shards), shardCount, fs.Running)
	if fs.Running > 0 && fs.TrialsPerSec > 0 {
		fmt.Fprintf(&b, " | %.1f trials/s | ETA %s", fs.TrialsPerSec, fs.ETA.Round(time.Second))
	}
	if fs.Interrupted > 0 {
		fmt.Fprintf(&b, " | %d interrupted", fs.Interrupted)
	}
	fmt.Fprintf(&b, "\n  dispositions: %d completed, %d aborted, %d resumed\n",
		fs.Completed, fs.Aborted, fs.Resumed)
	if fs.Adaptive {
		fmt.Fprintf(&b, "  adaptive plan: CI half-width %.4f, %d planned trials", fs.CIHalfWidth, fs.Planned)
		if fs.TrialsSaved > 0 {
			fmt.Fprintf(&b, ", %d of the %d-trial budget saved", fs.TrialsSaved, fs.Trials)
		}
		b.WriteString("\n")
	}
	if len(fs.Outcomes) > 0 {
		var keys []string
		for k := range fs.Outcomes {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		b.WriteString("  outcomes:")
		for _, k := range keys {
			fmt.Fprintf(&b, " %s=%d", k, fs.Outcomes[k])
		}
		b.WriteString("\n")
	}
	for _, sh := range fs.Shards {
		state := "running"
		switch {
		case sh.Interrupted:
			state = "interrupted"
		case !sh.Running:
			state = "finished"
		}
		fmt.Fprintf(&b, "  shard %d/%d [%d,%d): %d/%d %s", sh.Index, sh.Count,
			sh.TrialLo, sh.TrialHi, sh.Done, sh.Total, state)
		if sh.Running && sh.TrialsPerSec > 0 {
			fmt.Fprintf(&b, " | %.1f trials/s | ETA %s", sh.TrialsPerSec, sh.ETA.Round(time.Second))
		}
		if sh.Adaptive {
			fmt.Fprintf(&b, " | CI ±%.4f", sh.CIHalfWidth)
		}
		fmt.Fprintf(&b, " | heartbeat %s ago\n", sh.Age(now).Round(time.Second))
	}
	return b.String()
}

// cmdStatus implements `hrmsim status <shard-dir>`: load the campaign
// directory's shard heartbeat records, aggregate them, and render the
// fleet view — once, or repeatedly with -watch until no shard is
// running. It works identically against a live campaign (the workers
// replace their records atomically, so every read is consistent) and a
// finished or crashed one (final records, or whatever the last
// heartbeats were).
func cmdStatus(args []string) error {
	fs := flag.NewFlagSet("status", flag.ContinueOnError)
	dir := fs.String("dir", "", "campaign shard directory holding the *.status.json heartbeat records (may also be given as the positional argument)")
	watch := fs.Bool("watch", false, "re-render every -interval until no shard is running (Ctrl-C to stop)")
	interval := fs.Duration("interval", time.Second, "refresh period with -watch")
	jsonOut := fs.Bool("json", false, "emit the fleet status as JSON (schema: OBSERVABILITY.md)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dir == "" && fs.NArg() == 1 {
		*dir = fs.Arg(0)
	}
	if *dir == "" {
		return fmt.Errorf("status: a campaign directory is required (-dir or positional)")
	}
	if *watch && *jsonOut {
		return fmt.Errorf("status: -watch renders text; poll `hrmsim status -json` for machine consumption")
	}
	if !*watch {
		fleet, err := hrmsim.LoadFleetStatus(*dir)
		if err != nil {
			return err
		}
		if *jsonOut {
			return emitJSON("status", false, toFleetJSON(fleet, time.Now()), fleet.Metrics, nil)
		}
		fmt.Print(renderFleetStatus(fleet, time.Now()))
		return nil
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	tick := time.NewTicker(*interval)
	defer tick.Stop()
	for {
		fleet, err := hrmsim.LoadFleetStatus(*dir)
		switch {
		case errors.Is(err, hrmsim.ErrNoStatus):
			fmt.Printf("status: waiting for the first shard heartbeat in %s\n", *dir)
		case err != nil:
			return err
		default:
			fmt.Print(renderFleetStatus(fleet, time.Now()))
			if fleet.Running == 0 {
				return nil
			}
			fmt.Println()
		}
		select {
		case <-ctx.Done():
			return nil
		case <-tick.C:
		}
	}
}
