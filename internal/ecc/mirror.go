package ecc

import (
	"hrmsim/internal/simmem"
)

// Mirror models memory mirroring (e.g. POWER7-style): every 64-bit word is
// stored twice, each copy protected by SEC-DED, and reads fail over to the
// mirror when the primary is uncorrectable — 125% added capacity per
// Table 1 (a full copy plus ECC on both copies).
//
// Check storage layout per 8-byte word: byte 0 is the primary's SEC-DED
// check byte, bytes 1..8 are the mirrored copy, byte 9 is the copy's
// SEC-DED check byte.
type Mirror struct {
	inner SECDED
}

var _ simmem.Codec = Mirror{}

// NewMirror returns the mirroring codec.
func NewMirror() Mirror { return Mirror{} }

// Name implements simmem.Codec.
func (Mirror) Name() string { return "Mirroring" }

// WordBytes implements simmem.Codec.
func (Mirror) WordBytes() int { return 8 }

// CheckBytes implements simmem.Codec.
func (Mirror) CheckBytes() int { return 10 }

// CheckBits implements simmem.Codec.
func (Mirror) CheckBits() int { return 80 }

// Encode implements simmem.Codec.
func (m Mirror) Encode(data, check []byte) {
	m.inner.Encode(data, check[0:1])
	copy(check[1:9], data)
	m.inner.Encode(check[1:9], check[9:10])
}

// Decode implements simmem.Codec.
func (m Mirror) Decode(data, check []byte) simmem.Verdict {
	// Decode the primary copy.
	primary := m.inner.Decode(data, check[0:1])

	// Decode the mirror into scratch so a failed mirror cannot corrupt it.
	var copyData [8]byte
	var copyCheck [1]byte
	copy(copyData[:], check[1:9])
	copyCheck[0] = check[9]
	mirror := m.inner.Decode(copyData[:], copyCheck[:])

	agree := equal8(copyData[:], data)

	switch {
	case primary == simmem.VerdictClean && mirror == simmem.VerdictClean:
		if agree {
			return simmem.VerdictClean
		}
		// Both sides look internally consistent but disagree: a
		// multi-bit error aliased one side onto a valid codeword and
		// there is no way to tell which copy is right.
		return simmem.VerdictUncorrectable
	case primary == simmem.VerdictClean:
		// Trust the clean primary; rebuild the mirror from it.
		copy(check[1:9], data)
		m.inner.Encode(check[1:9], check[9:10])
		return simmem.VerdictCorrected
	case mirror == simmem.VerdictClean:
		// Trust the clean mirror over a corrected (possibly
		// miscorrected) or failed primary; restore the primary.
		copy(data, copyData[:])
		m.inner.Encode(data, check[0:1])
		copy(check[1:9], copyData[:])
		check[9] = copyCheck[0]
		return simmem.VerdictCorrected
	case primary == simmem.VerdictCorrected:
		copy(check[1:9], data)
		m.inner.Encode(check[1:9], check[9:10])
		return simmem.VerdictCorrected
	case mirror == simmem.VerdictCorrected:
		copy(data, copyData[:])
		m.inner.Encode(data, check[0:1])
		copy(check[1:9], copyData[:])
		check[9] = copyCheck[0]
		return simmem.VerdictCorrected
	default:
		return simmem.VerdictUncorrectable
	}
}

// equal8 compares two 8-byte slices.
func equal8(a, b []byte) bool {
	for i := 0; i < 8; i++ {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
