package ecc

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"hrmsim/internal/simmem"
)

// wordCodecs returns every executable codec.
func wordCodecs() []simmem.Codec {
	return []simmem.Codec{
		NewParity(), NewSECDED(), NewDECTED(), NewChipkill(), NewRAIM(), NewMirror(),
	}
}

// encodeRandom returns a random data word and its check bytes.
func encodeRandom(c simmem.Codec, rng *rand.Rand) (data, check []byte) {
	data = make([]byte, c.WordBytes())
	check = make([]byte, c.CheckBytes())
	rng.Read(data)
	c.Encode(data, check)
	return data, check
}

func TestCleanRoundtripAllCodecs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, c := range wordCodecs() {
		t.Run(c.Name(), func(t *testing.T) {
			for i := 0; i < 200; i++ {
				data, check := encodeRandom(c, rng)
				orig := append([]byte(nil), data...)
				if v := c.Decode(data, check); v != simmem.VerdictClean {
					t.Fatalf("clean word decoded as %v", v)
				}
				if !bytes.Equal(data, orig) {
					t.Fatal("clean decode modified data")
				}
			}
		})
	}
}

func TestParityDetectsOddFlips(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	p := NewParity()
	for trial := 0; trial < 100; trial++ {
		data, check := encodeRandom(p, rng)
		nflips := 1 + 2*rng.Intn(3) // 1, 3, or 5 flips
		for i := 0; i < nflips; i++ {
			data[rng.Intn(8)] ^= 1 << rng.Intn(8)
		}
		// Odd flip counts are always detected; note that flipping the
		// same bit twice would cancel, so flip distinct bits.
		// (Simplify: flip bit positions trial-deterministically.)
		_ = nflips
		if v := p.Decode(data, check); nflips%2 == 1 && countDiff(data, check, p) && v != simmem.VerdictUncorrectable {
			// countDiff guards the rare double-flip-same-bit cancel.
			t.Fatalf("parity missed %d-bit flip", nflips)
		}
	}
}

// countDiff re-encodes and reports whether parity actually changed.
func countDiff(data, check []byte, p Parity) bool {
	var fresh [1]byte
	p.Encode(data, fresh[:])
	return fresh[0]&1 != check[0]&1
}

func TestParityExhaustiveSingleBit(t *testing.T) {
	p := NewParity()
	data := make([]byte, 8)
	check := make([]byte, 1)
	for i := range data {
		data[i] = byte(i * 31)
	}
	p.Encode(data, check)
	for bit := 0; bit < 64; bit++ {
		d := append([]byte(nil), data...)
		c := append([]byte(nil), check...)
		d[bit/8] ^= 1 << (bit % 8)
		if v := p.Decode(d, c); v != simmem.VerdictUncorrectable {
			t.Fatalf("bit %d: verdict %v, want uncorrectable (detect-only)", bit, v)
		}
	}
}

func TestSECDEDExhaustiveSingleBitCorrection(t *testing.T) {
	s := NewSECDED()
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		data, check := encodeRandom(s, rng)
		orig := append([]byte(nil), data...)
		// Every data bit.
		for bit := 0; bit < 64; bit++ {
			d := append([]byte(nil), data...)
			c := append([]byte(nil), check...)
			d[bit/8] ^= 1 << (bit % 8)
			if v := s.Decode(d, c); v != simmem.VerdictCorrected {
				t.Fatalf("data bit %d: verdict %v", bit, v)
			}
			if !bytes.Equal(d, orig) {
				t.Fatalf("data bit %d: miscorrected", bit)
			}
		}
		// Every check bit.
		for bit := 0; bit < 8; bit++ {
			d := append([]byte(nil), data...)
			c := append([]byte(nil), check...)
			c[0] ^= 1 << bit
			if v := s.Decode(d, c); v != simmem.VerdictCorrected {
				t.Fatalf("check bit %d: verdict %v", bit, v)
			}
			if !bytes.Equal(d, orig) {
				t.Fatalf("check bit %d: data damaged", bit)
			}
			if c[0] != check[0] {
				t.Fatalf("check bit %d: check storage not repaired", bit)
			}
		}
	}
}

func TestSECDEDDetectsDoubleBit(t *testing.T) {
	s := NewSECDED()
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 500; trial++ {
		data, check := encodeRandom(s, rng)
		b1 := rng.Intn(64)
		b2 := rng.Intn(64)
		for b2 == b1 {
			b2 = rng.Intn(64)
		}
		data[b1/8] ^= 1 << (b1 % 8)
		data[b2/8] ^= 1 << (b2 % 8)
		if v := s.Decode(data, check); v != simmem.VerdictUncorrectable {
			t.Fatalf("double flip (%d,%d): verdict %v", b1, b2, v)
		}
	}
	// Data bit + check bit is also a double error.
	for trial := 0; trial < 200; trial++ {
		data, check := encodeRandom(s, rng)
		data[rng.Intn(8)] ^= 1 << rng.Intn(8)
		check[0] ^= 1 << rng.Intn(8)
		if v := s.Decode(data, check); v != simmem.VerdictUncorrectable {
			t.Fatalf("data+check double flip: verdict %v", v)
		}
	}
}

func TestDECTEDSingleAndDoubleCorrection(t *testing.T) {
	d := NewDECTED()
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		data, check := encodeRandom(d, rng)
		orig := append([]byte(nil), data...)

		// Exhaustive single data-bit errors.
		for bit := 0; bit < 64; bit++ {
			dd := append([]byte(nil), data...)
			cc := append([]byte(nil), check...)
			dd[bit/8] ^= 1 << (bit % 8)
			if v := d.Decode(dd, cc); v != simmem.VerdictCorrected {
				t.Fatalf("single bit %d: verdict %v", bit, v)
			}
			if !bytes.Equal(dd, orig) {
				t.Fatalf("single bit %d: miscorrected", bit)
			}
		}
		// Random double data-bit errors.
		for k := 0; k < 30; k++ {
			b1, b2 := rng.Intn(64), rng.Intn(64)
			if b1 == b2 {
				continue
			}
			dd := append([]byte(nil), data...)
			cc := append([]byte(nil), check...)
			dd[b1/8] ^= 1 << (b1 % 8)
			dd[b2/8] ^= 1 << (b2 % 8)
			if v := d.Decode(dd, cc); v != simmem.VerdictCorrected {
				t.Fatalf("double flip (%d,%d): verdict %v", b1, b2, v)
			}
			if !bytes.Equal(dd, orig) {
				t.Fatalf("double flip (%d,%d): miscorrected", b1, b2)
			}
		}
	}
}

func TestDECTEDSingleCheckBitCorrection(t *testing.T) {
	d := NewDECTED()
	rng := rand.New(rand.NewSource(6))
	data, check := encodeRandom(d, rng)
	orig := append([]byte(nil), data...)
	for bit := 0; bit < 15; bit++ { // 14 BCH bits + parity bit
		dd := append([]byte(nil), data...)
		cc := append([]byte(nil), check...)
		cc[bit/8] ^= 1 << (bit % 8)
		if v := d.Decode(dd, cc); v != simmem.VerdictCorrected {
			t.Fatalf("check bit %d: verdict %v", bit, v)
		}
		if !bytes.Equal(dd, orig) {
			t.Fatalf("check bit %d: data damaged", bit)
		}
	}
}

func TestDECTEDDetectsTriple(t *testing.T) {
	d := NewDECTED()
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 500; trial++ {
		data, check := encodeRandom(d, rng)
		orig := append([]byte(nil), data...)
		bs := rng.Perm(64)[:3]
		for _, b := range bs {
			data[b/8] ^= 1 << (b % 8)
		}
		v := d.Decode(data, check)
		if v == simmem.VerdictClean {
			t.Fatalf("triple flip %v decoded clean", bs)
		}
		if v == simmem.VerdictCorrected && !bytes.Equal(data, orig) {
			t.Fatalf("triple flip %v miscorrected to wrong data", bs)
		}
	}
}

func TestDECTEDDoubleMixedDataCheck(t *testing.T) {
	d := NewDECTED()
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 200; trial++ {
		data, check := encodeRandom(d, rng)
		orig := append([]byte(nil), data...)
		// One data bit and one BCH check bit.
		db := rng.Intn(64)
		cb := rng.Intn(14)
		data[db/8] ^= 1 << (db % 8)
		check[cb/8] ^= 1 << (cb % 8)
		if v := d.Decode(data, check); v != simmem.VerdictCorrected {
			t.Fatalf("data+check double: verdict %v", v)
		}
		if !bytes.Equal(data, orig) {
			t.Fatal("data+check double: data not restored")
		}
	}
}

func TestChipkillCorrectsWholeSymbol(t *testing.T) {
	ck := NewChipkill()
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 300; trial++ {
		data, check := encodeRandom(ck, rng)
		orig := append([]byte(nil), data...)
		// Corrupt one whole "chip": any pattern in one data byte.
		pos := rng.Intn(16)
		pat := byte(rng.Intn(255) + 1)
		data[pos] ^= pat
		if v := ck.Decode(data, check); v != simmem.VerdictCorrected {
			t.Fatalf("symbol %d pattern %#x: verdict %v", pos, pat, v)
		}
		if !bytes.Equal(data, orig) {
			t.Fatalf("symbol %d: miscorrected", pos)
		}
	}
	// Check-symbol corruption is corrected in check storage.
	data, check := encodeRandom(ck, rng)
	orig := append([]byte(nil), data...)
	origCheck := append([]byte(nil), check...)
	check[1] ^= 0x5a
	if v := ck.Decode(data, check); v != simmem.VerdictCorrected {
		t.Fatalf("check symbol: verdict %v", v)
	}
	if !bytes.Equal(data, orig) || !bytes.Equal(check, origCheck) {
		t.Fatal("check symbol: not repaired")
	}
}

func TestRAIMCorrectsTwoSymbols(t *testing.T) {
	r := NewRAIM()
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 300; trial++ {
		data, check := encodeRandom(r, rng)
		orig := append([]byte(nil), data...)
		p1 := rng.Intn(16)
		p2 := rng.Intn(16)
		for p2 == p1 {
			p2 = rng.Intn(16)
		}
		data[p1] ^= byte(rng.Intn(255) + 1)
		data[p2] ^= byte(rng.Intn(255) + 1)
		if v := r.Decode(data, check); v != simmem.VerdictCorrected {
			t.Fatalf("two symbols (%d,%d): verdict %v", p1, p2, v)
		}
		if !bytes.Equal(data, orig) {
			t.Fatalf("two symbols (%d,%d): miscorrected", p1, p2)
		}
	}
}

func TestRAIMCorrectsSingleSymbolIncludingChecks(t *testing.T) {
	r := NewRAIM()
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		data, check := encodeRandom(r, rng)
		orig := append([]byte(nil), data...)
		pos := rng.Intn(20)
		pat := byte(rng.Intn(255) + 1)
		if pos < 4 {
			check[pos] ^= pat
		} else {
			data[pos-4] ^= pat
		}
		if v := r.Decode(data, check); v != simmem.VerdictCorrected {
			t.Fatalf("symbol %d: verdict %v", pos, v)
		}
		if !bytes.Equal(data, orig) {
			t.Fatalf("symbol %d: miscorrected", pos)
		}
	}
}

func TestMirrorFailover(t *testing.T) {
	m := NewMirror()
	rng := rand.New(rand.NewSource(12))

	// Single-bit error in primary: corrected by inner SEC-DED.
	data, check := encodeRandom(m, rng)
	orig := append([]byte(nil), data...)
	data[3] ^= 0x10
	if v := m.Decode(data, check); v != simmem.VerdictCorrected {
		t.Fatalf("primary single bit: verdict %v", v)
	}
	if !bytes.Equal(data, orig) {
		t.Fatal("primary single bit: miscorrected")
	}

	// Primary completely destroyed: fail over to the mirror.
	data, check = encodeRandom(m, rng)
	orig = append([]byte(nil), data...)
	rng.Read(data) // wipe all 8 primary bytes
	v := m.Decode(data, check)
	if !bytes.Equal(data, orig) {
		// A random wipe can occasionally alias to a valid-looking
		// primary (SEC-DED corrects into a wrong word) — but then the
		// mirror comparison repairs it; data must always be restored
		// unless the verdict says uncorrectable.
		if v != simmem.VerdictUncorrectable {
			t.Fatalf("primary wipe: data wrong but verdict %v", v)
		}
	}

	// Mirror copy destroyed, primary intact: corrected (mirror rebuilt).
	data, check = encodeRandom(m, rng)
	orig = append([]byte(nil), data...)
	rng.Read(check[1:9])
	if v := m.Decode(data, check); v != simmem.VerdictCorrected {
		t.Fatalf("mirror wipe: verdict %v", v)
	}
	if !bytes.Equal(data, orig) {
		t.Fatal("mirror wipe: data damaged")
	}
	// Mirror must have been rebuilt to match.
	if v := m.Decode(data, check); v != simmem.VerdictClean {
		t.Fatalf("mirror not rebuilt: verdict %v", v)
	}

	// Both copies badly corrupted: uncorrectable.
	data, check = encodeRandom(m, rng)
	data[0] ^= 0x03  // double-bit: primary uncorrectable
	check[1] ^= 0x03 // double-bit: mirror uncorrectable
	if v := m.Decode(data, check); v != simmem.VerdictUncorrectable {
		t.Fatalf("both copies corrupted: verdict %v", v)
	}
}

func TestMirrorWipedPrimaryRestoredWhenDetected(t *testing.T) {
	m := NewMirror()
	rng := rand.New(rand.NewSource(13))
	restored, total := 0, 200
	for trial := 0; trial < total; trial++ {
		data, check := encodeRandom(m, rng)
		orig := append([]byte(nil), data...)
		// Flip exactly 2 bits in the primary: SEC-DED detects (never
		// miscorrects) a double, so failover must always restore.
		b1 := rng.Intn(64)
		b2 := (b1 + 1 + rng.Intn(63)) % 64
		data[b1/8] ^= 1 << (b1 % 8)
		data[b2/8] ^= 1 << (b2 % 8)
		if v := m.Decode(data, check); v != simmem.VerdictCorrected {
			t.Fatalf("double-bit primary: verdict %v", v)
		}
		if !bytes.Equal(data, orig) {
			t.Fatal("double-bit primary: not restored from mirror")
		}
		restored++
	}
	if restored != total {
		t.Fatalf("restored %d/%d", restored, total)
	}
}

func TestCodecPropertyQuick(t *testing.T) {
	// Property: for every codec, encode → flip one random data bit →
	// decode yields either a correction back to the original (correcting
	// codes) or an uncorrectable verdict (detection-only), never a
	// silent wrong answer.
	for _, c := range wordCodecs() {
		c := c
		t.Run(c.Name(), func(t *testing.T) {
			f := func(seed int64, bitIdx uint16) bool {
				rng := rand.New(rand.NewSource(seed))
				data, check := encodeRandom(c, rng)
				orig := append([]byte(nil), data...)
				bit := int(bitIdx) % (c.WordBytes() * 8)
				data[bit/8] ^= 1 << (bit % 8)
				switch c.Decode(data, check) {
				case simmem.VerdictClean:
					return false // single flips must never look clean
				case simmem.VerdictCorrected:
					return bytes.Equal(data, orig)
				default:
					return true
				}
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
				t.Error(err)
			}
		})
	}
}

func TestGFArithmetic(t *testing.T) {
	for _, f := range []*gf{gf128, gf256} {
		// Multiplicative group identities.
		for a := 1; a <= f.n; a++ {
			b := byte(a)
			if f.mul(b, f.inv(b)) != 1 {
				t.Fatalf("GF(2^%d): %d * inv != 1", f.m, a)
			}
			if f.div(b, b) != 1 {
				t.Fatalf("GF(2^%d): %d / %d != 1", f.m, a, a)
			}
			if f.mul(b, 1) != b {
				t.Fatalf("GF(2^%d): %d * 1 != %d", f.m, a, a)
			}
		}
		if f.mul(0, 5) != 0 || f.mul(7, 0) != 0 || f.div(0, 3) != 0 {
			t.Fatalf("GF(2^%d): zero handling broken", f.m)
		}
		// Associativity / distributivity spot checks.
		rng := rand.New(rand.NewSource(14))
		for i := 0; i < 1000; i++ {
			a := byte(rng.Intn(f.n + 1))
			b := byte(rng.Intn(f.n + 1))
			c := byte(rng.Intn(f.n + 1))
			if f.mul(a, f.mul(b, c)) != f.mul(f.mul(a, b), c) {
				t.Fatalf("GF(2^%d): associativity broken", f.m)
			}
			if f.mul(a, b^c) != f.mul(a, b)^f.mul(a, c) {
				t.Fatalf("GF(2^%d): distributivity broken", f.m)
			}
		}
		// alphaPow periodicity, pow.
		if f.alphaPow(0) != 1 || f.alphaPow(f.n) != 1 || f.alphaPow(-1) != f.alphaPow(f.n-1) {
			t.Fatalf("GF(2^%d): alphaPow broken", f.m)
		}
		if f.pow(0, 0) != 1 || f.pow(0, 3) != 0 {
			t.Fatalf("GF(2^%d): pow of zero broken", f.m)
		}
		a := byte(3)
		if f.pow(a, 3) != f.mul(a, f.mul(a, a)) {
			t.Fatalf("GF(2^%d): pow broken", f.m)
		}
	}
}

func TestGFPanics(t *testing.T) {
	assertPanics(t, "div by zero", func() { gf256.div(1, 0) })
	assertPanics(t, "log of zero", func() { gf256.logOf(0) })
}

func assertPanics(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	f()
}

func TestSpecTable1(t *testing.T) {
	// Every technique has a spec and (except NoECC) a codec.
	for _, tech := range Techniques() {
		spec, err := SpecFor(tech)
		if err != nil {
			t.Fatalf("SpecFor(%v): %v", tech, err)
		}
		if spec.Technique != tech {
			t.Errorf("%v: spec technique mismatch", tech)
		}
		codec, err := CodecFor(tech)
		if err != nil {
			t.Fatalf("CodecFor(%v): %v", tech, err)
		}
		if tech == TechNone {
			if codec != nil {
				t.Error("TechNone should have nil codec")
			}
			continue
		}
		if codec == nil {
			t.Fatalf("%v: nil codec", tech)
		}
		// The executable codec's true redundancy must match the Table 1
		// added-capacity figure — except RAIM, whose Table 1 cost is
		// accounted at module level rather than codeword level.
		if tech == TechRAIM {
			continue
		}
		gotOverhead := float64(codec.CheckBits()) / float64(codec.WordBytes()*8)
		if diff := gotOverhead - spec.AddedCapacity; diff > 0.005 || diff < -0.005 {
			t.Errorf("%v: codec overhead %.4f vs Table 1 %.4f",
				tech, gotOverhead, spec.AddedCapacity)
		}
	}
	if _, err := SpecFor(Technique(99)); err == nil {
		t.Error("unknown technique accepted by SpecFor")
	}
	if _, err := CodecFor(Technique(99)); err == nil {
		t.Error("unknown technique accepted by CodecFor")
	}
	if TechNone.String() != "NoECC" || TechSECDED.String() != "SEC-DED" {
		t.Error("technique names wrong")
	}
	if Technique(99).String() == "" {
		t.Error("unknown technique String empty")
	}
}

func TestCodecsUsableInSimmem(t *testing.T) {
	// End-to-end: protect a region with each codec and verify a
	// single-bit flip is transparent (or faults, for parity).
	for _, tech := range []Technique{TechSECDED, TechDECTED, TechChipkill, TechRAIM, TechMirroring} {
		tech := tech
		t.Run(tech.String(), func(t *testing.T) {
			codec, err := CodecFor(tech)
			if err != nil {
				t.Fatal(err)
			}
			as, err := simmem.New(simmem.Config{PageSize: 256})
			if err != nil {
				t.Fatal(err)
			}
			r, err := as.AddRegion(simmem.RegionSpec{
				Name: "p", Kind: simmem.RegionHeap, Size: 1024, Codec: codec,
			})
			if err != nil {
				t.Fatal(err)
			}
			addr := r.Base() + 64
			if err := as.StoreU64(addr, 0xFEEDFACE); err != nil {
				t.Fatal(err)
			}
			if err := as.FlipBit(addr+2, 4); err != nil {
				t.Fatal(err)
			}
			v, err := as.LoadU64(addr)
			if err != nil {
				t.Fatalf("load: %v", err)
			}
			if v != 0xFEEDFACE {
				t.Fatalf("value = %#x, want 0xFEEDFACE", v)
			}
			if as.Counters().Corrected == 0 {
				t.Error("no corrected event recorded")
			}
		})
	}
}

func BenchmarkDecodeClean(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	for _, c := range wordCodecs() {
		c := c
		b.Run(c.Name(), func(b *testing.B) {
			data, check := encodeRandom(c, rng)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if c.Decode(data, check) != simmem.VerdictClean {
					b.Fatal("unexpected verdict")
				}
			}
		})
	}
}

func BenchmarkDecodeSingleBitError(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	for _, c := range []simmem.Codec{NewSECDED(), NewDECTED(), NewChipkill()} {
		c := c
		b.Run(c.Name(), func(b *testing.B) {
			data, check := encodeRandom(c, rng)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				data[0] ^= 1
				if c.Decode(data, check) != simmem.VerdictCorrected {
					b.Fatal("unexpected verdict")
				}
			}
		})
	}
}
