package apps

import (
	"errors"
	"testing"

	"hrmsim/internal/simmem"
)

func TestBudget(t *testing.T) {
	b := NewBudget(10)
	if err := b.Spend(5); err != nil {
		t.Fatal(err)
	}
	if b.Remaining() != 5 {
		t.Errorf("Remaining = %d, want 5", b.Remaining())
	}
	if err := b.Spend(5); err != nil {
		t.Fatal(err)
	}
	if err := b.Spend(1); !errors.Is(err, ErrBudgetExceeded) {
		t.Errorf("err = %v, want ErrBudgetExceeded", err)
	}
}

func TestDigest(t *testing.T) {
	d1 := NewDigest()
	d1.AddU64(42)
	d1.AddBytes([]byte("hello"))
	d1.AddU32(7)

	d2 := NewDigest()
	d2.AddU64(42)
	d2.AddBytes([]byte("hello"))
	d2.AddU32(7)
	if d1.Sum() != d2.Sum() {
		t.Error("digest not deterministic")
	}

	d3 := NewDigest()
	d3.AddU64(43)
	if d3.Sum() == d1.Sum() {
		t.Error("different inputs collide")
	}
	if d1.Response().Digest != d1.Sum() {
		t.Error("Response digest mismatch")
	}
	if NewDigest().Sum() != uint64(fnvOffset) {
		t.Error("empty digest should be the FNV offset basis")
	}
}

func TestDigestOrderSensitive(t *testing.T) {
	a := NewDigest()
	a.AddU32(1)
	a.AddU32(2)
	b := NewDigest()
	b.AddU32(2)
	b.AddU32(1)
	if a.Sum() == b.Sum() {
		t.Error("digest should be order sensitive")
	}
}

func TestIsCrash(t *testing.T) {
	tests := []struct {
		name string
		err  error
		want bool
	}{
		{"nil", nil, false},
		{"budget", ErrBudgetExceeded, true},
		{"wrapped budget", Assertf("x"), true},
		{"fault", &simmem.Fault{Kind: simmem.FaultUnmapped}, true},
		{"plain", errors.New("nope"), false},
	}
	for _, tt := range tests {
		if got := IsCrash(tt.err); got != tt.want {
			t.Errorf("%s: IsCrash = %v, want %v", tt.name, got, tt.want)
		}
	}
}

func TestAssertf(t *testing.T) {
	err := Assertf("bad value %d", 42)
	if !errors.Is(err, ErrAssert) {
		t.Error("Assertf result does not wrap ErrAssert")
	}
	if err.Error() == "" {
		t.Error("empty message")
	}
}
