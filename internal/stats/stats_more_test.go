package stats

import (
	"math"
	"testing"
)

func TestSummarizeSingleElement(t *testing.T) {
	s, err := Summarize([]float64{7})
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 1 || s.Mean != 7 || s.Std != 0 || s.Median != 7 {
		t.Errorf("summary = %+v", s)
	}
}

func TestKSDistanceExactValue(t *testing.T) {
	// For the two-point sample {0.25, 0.75} against Uniform(0,1), the
	// ECDF jumps give a KS distance of exactly 0.25.
	e, err := NewECDF([]float64{0.25, 0.75})
	if err != nil {
		t.Fatal(err)
	}
	cdf := func(x float64) float64 {
		switch {
		case x <= 0:
			return 0
		case x >= 1:
			return 1
		default:
			return x
		}
	}
	if d := ksDistance(e, cdf); math.Abs(d-0.25) > 1e-12 {
		t.Errorf("KS = %g, want 0.25", d)
	}
}

func TestFitUniformDefaultsHorizon(t *testing.T) {
	// hi <= 0 falls back to the sample maximum.
	f, err := FitUniformRange([]float64{1, 2, 3, 4}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if f.Hi != 4 {
		t.Errorf("Hi = %g, want 4", f.Hi)
	}
}

func TestWilsonStringFormat(t *testing.T) {
	p, err := WilsonInterval(3, 7, 0.90)
	if err != nil {
		t.Fatal(err)
	}
	if p.Level != 0.90 {
		t.Errorf("level = %g", p.Level)
	}
}
