package experiments

import (
	"fmt"
	"strings"
	"testing"
)

// testSuite is shared across tests (campaign cells are cached inside).
var testSuite *Suite

func getSuite(t *testing.T) *Suite {
	t.Helper()
	if testSuite == nil {
		s, err := NewSuite(Quick())
		if err != nil {
			t.Fatal(err)
		}
		testSuite = s
	}
	return testSuite
}

func TestNewSuiteValidation(t *testing.T) {
	if _, err := NewSuite(Scale{}); err == nil {
		t.Error("zero trials accepted")
	}
	s, err := NewSuite(Scale{Trials: 5})
	if err != nil {
		t.Fatal(err)
	}
	if s.Scale().Fig5aTrials != 5 || s.Scale().Watchpoints == 0 {
		t.Error("defaults not applied")
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	s := getSuite(t)
	if _, err := s.Run("fig99"); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestAllExperimentsProduceReports(t *testing.T) {
	s := getSuite(t)
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			rep, err := s.Run(id)
			if err != nil {
				t.Fatalf("Run(%q): %v", id, err)
			}
			if rep.ID != id {
				t.Errorf("report ID = %q", rep.ID)
			}
			if strings.TrimSpace(rep.Text) == "" {
				t.Error("empty report text")
			}
		})
	}
}

func TestTable1Content(t *testing.T) {
	rep, err := getSuite(t).Table1()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Parity", "SEC-DED", "DEC-TED", "Chipkill", "RAIM", "Mirroring", "12.50%", "125.00%"} {
		if !strings.Contains(rep.Text, want) {
			t.Errorf("Table 1 missing %q:\n%s", want, rep.Text)
		}
	}
	if !strings.Contains(rep.Text, "corrects 1-bit") || !strings.Contains(rep.Text, "detects 1-bit") {
		t.Error("codec self-tests missing")
	}
}

func TestTable3Shape(t *testing.T) {
	rep, err := getSuite(t).Table3()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"WebSearch", "Memcached", "GraphLab", "36 GB"} {
		if !strings.Contains(rep.Text, want) {
			t.Errorf("Table 3 missing %q", want)
		}
	}
	if len(rep.Comparisons) != 3 {
		t.Errorf("got %d comparisons", len(rep.Comparisons))
	}
}

func TestFigure3Findings(t *testing.T) {
	rep, err := getSuite(t).Figure3()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep.Text, "probability of crash") ||
		!strings.Contains(rep.Text, "incorrect per billion") {
		t.Error("missing panels")
	}
	if len(rep.Comparisons) == 0 {
		t.Error("no findings recorded")
	}
}

func TestFigure5bStackSafestRegion(t *testing.T) {
	// Finding 4 must reproduce qualitatively: the stack's mean safe
	// ratio exceeds both read-mostly regions'.
	rep, err := getSuite(t).Figure5b()
	if err != nil {
		t.Fatal(err)
	}
	var p, h, st float64
	found := false
	for _, c := range rep.Comparisons {
		if !strings.Contains(c.Metric, "Finding 4") {
			continue
		}
		found = true
		if _, err := fmt.Sscanf(c.Measured,
			"mean safe ratios: private %f, heap %f, stack %f", &p, &h, &st); err != nil {
			t.Fatalf("unparseable measured string %q: %v", c.Measured, err)
		}
		if st <= p || st <= h {
			t.Errorf("stack mean %.2f not above private %.2f / heap %.2f", st, p, h)
		}
		if p > 0.5 {
			t.Errorf("private (read-only index) mean safe ratio %.2f suspiciously high", p)
		}
	}
	if !found {
		t.Fatal("Finding 4 comparison missing")
	}
}

func TestFigure4StackMostVulnerable(t *testing.T) {
	rep, err := getSuite(t).Figure4()
	if err != nil {
		t.Fatal(err)
	}
	var p, h, st float64
	found := false
	for _, c := range rep.Comparisons {
		if !strings.Contains(c.Metric, "Finding 2/4") {
			continue
		}
		found = true
		if _, err := fmt.Sscanf(c.Measured,
			"WebSearch hard: private %f%%, heap %f%%, stack %f%%", &p, &h, &st); err != nil {
			t.Fatalf("unparseable measured string %q: %v", c.Measured, err)
		}
		if st <= p || st <= h {
			t.Errorf("stack crash prob %.1f%% not above private %.1f%% / heap %.1f%%", st, p, h)
		}
	}
	if !found {
		t.Fatal("Finding 2/4 comparison missing")
	}
}

func TestTable6PaperRowsPresent(t *testing.T) {
	rep, err := getSuite(t).Table6()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Typical Server", "Consumer PC", "Detect&Recover",
		"Less-Tested (L)", "Detect&Recover/L", "measured simulated-WebSearch"} {
		if !strings.Contains(rep.Text, want) {
			t.Errorf("Table 6 missing %q", want)
		}
	}
	if len(rep.Comparisons) != 5 {
		t.Errorf("got %d comparisons, want 5", len(rep.Comparisons))
	}
}

func TestFigure8OrderOfMagnitudeSpread(t *testing.T) {
	rep, err := getSuite(t).Figure8()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep.Text, "99.99%") || !strings.Contains(rep.Text, "GraphLab") {
		t.Error("figure 8 table incomplete")
	}
	if len(rep.Comparisons) != 3 {
		t.Errorf("got %d comparisons, want 3", len(rep.Comparisons))
	}
}

func TestMeasuredWebSearchInputsShareSum(t *testing.T) {
	inputs, err := getSuite(t).MeasuredWebSearchInputs()
	if err != nil {
		t.Fatal(err)
	}
	if len(inputs) != 3 {
		t.Fatalf("got %d inputs", len(inputs))
	}
	var sum float64
	for _, in := range inputs {
		sum += in.Share
		if in.CrashProb < 0 || in.CrashProb > 1 {
			t.Errorf("%s crash prob %g out of range", in.Name, in.CrashProb)
		}
	}
	if sum < 0.99 || sum > 1.01 {
		t.Errorf("shares sum to %g", sum)
	}
}
