#!/bin/sh
# End-to-end smoke test of the live-traffic chaos harness against a real
# kvserve process over real TCP (what the in-process tests cannot cover):
#
#   1. start a fresh SEC-DED kvserve,
#   2. run `hrmsim chaos -attach -strict` against it — live load, real
#      fault injection through the protocol, SLO probes — and require a
#      PASS verdict (enforced twice: -strict makes the command itself
#      exit non-zero on FAIL, and the envelope check below re-verifies),
#   3. drive the same server with the standalone kvload generator and
#      require zero wrong values in its report,
#   4. shut the server down.
#
# Ordering matters: the wrong-value oracle assumes its generator is the
# only writer since server start, so the chaos run (read-only,
# -read-fraction 1) goes first against the fresh server, and kvload's
# own fresh oracle stays valid because the chaos run wrote nothing.
#
#   scripts/chaos_smoke.sh             # default: 16 injections, ~4s of load
set -eu
cd "$(dirname "$0")/.."

SEED="${SEED:-7}"
TMP="$(mktemp -d)"
SRV_PID=""
cleanup() {
    [ -n "$SRV_PID" ] && kill "$SRV_PID" 2>/dev/null || true
    rm -rf "$TMP"
}
trap cleanup EXIT

go build -o "$TMP/kvserve" ./cmd/kvserve
go build -o "$TMP/kvload" ./cmd/kvload
go build -o "$TMP/hrmsim" ./cmd/hrmsim

echo "chaos_smoke: starting kvserve (secded)" >&2
"$TMP/kvserve" -addr 127.0.0.1:0 -ecc secded -seed "$SEED" \
    2>"$TMP/kvserve.log" &
SRV_PID=$!

# The server logs its bound address; wait for the listen line.
ADDR=""
i=0
while [ $i -lt 50 ]; do
    ADDR="$(sed -n 's/.*listening on \([0-9.]*:[0-9]*\).*/\1/p' "$TMP/kvserve.log" | head -1)"
    [ -n "$ADDR" ] && break
    kill -0 "$SRV_PID" 2>/dev/null || { cat "$TMP/kvserve.log" >&2; exit 1; }
    i=$((i + 1))
    sleep 0.1
done
if [ -z "$ADDR" ]; then
    echo "chaos_smoke: kvserve never reported its address" >&2
    cat "$TMP/kvserve.log" >&2
    exit 1
fi
echo "chaos_smoke: kvserve on $ADDR" >&2

echo "chaos_smoke: running hrmsim chaos -attach -strict" >&2
"$TMP/hrmsim" chaos -attach "$ADDR" -read-fraction 1 -conns 8 \
    -steady 1s -chaos 2s -recovery 1s -injections 16 -seed "$SEED" \
    -json -strict >"$TMP/chaos.json" || {
    echo "chaos_smoke: hrmsim chaos -strict exited non-zero" >&2
    cat "$TMP/chaos.json" >&2
    exit 1
}

python3 - "$TMP/chaos.json" <<'PY'
import json, sys

with open(sys.argv[1]) as f:
    env = json.load(f)

def die(msg):
    print(f"chaos_smoke: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)

if env.get("schema_version") != 1 or env.get("tool") != "hrmsim":
    die(f"bad envelope header: {env.get('schema_version')}/{env.get('tool')}")
if env.get("command") != "chaos":
    die(f"command = {env.get('command')}")
v = env["result"]
if v.get("schema_version") != 1:
    die(f"verdict schema_version = {v.get('schema_version')}")
phases = [p["phase"] for p in v.get("phases", [])]
if phases != ["steady", "chaos", "recovery"]:
    die(f"phases = {phases}")
if not v.get("results"):
    die("no SLO results")
if not v.get("pass"):
    for r in v["results"]:
        if not r["pass"]:
            print(f"chaos_smoke:   {r['name']}/{r['phase']}: "
                  f"{r.get('reason', 'failed')}", file=sys.stderr)
    die("SEC-DED verdict is FAIL")
chaos_phase = v["phases"][1]
if chaos_phase["injections"] <= 0:
    die("no injections recorded in the chaos phase")
counters = env.get("metrics", {}).get("counters", {})
if counters.get("chaos_injections_total", 0) <= 0:
    die("chaos_injections_total missing from the metrics snapshot")
if counters.get("kvload_ops_total", 0) <= 0:
    die("kvload_ops_total missing from the metrics snapshot")
print(f"chaos_smoke: chaos verdict PASS "
      f"({len(v['results'])} objectives, "
      f"{chaos_phase['injections']} injections, "
      f"{counters['kvload_ops_total']} ops)")
PY

echo "chaos_smoke: running kvload against the same server" >&2
"$TMP/kvload" -addr "$ADDR" -conns 16 -duration 2s -seed "$SEED" \
    -json >"$TMP/kvload.json"

python3 - "$TMP/kvload.json" <<'PY'
import json, sys

with open(sys.argv[1]) as f:
    env = json.load(f)

def die(msg):
    print(f"chaos_smoke: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)

if env.get("schema_version") != 1 or env.get("tool") != "kvload":
    die(f"bad kvload envelope: {env.get('schema_version')}/{env.get('tool')}")
r = env["result"]
if r.get("ops", 0) <= 0:
    die("kvload drove no traffic")
if r.get("wrong_values", 0) != 0:
    die(f"{r['wrong_values']} wrong values served by the SEC-DED node")
if r.get("errors", 0) != 0:
    die(f"{r['errors']} op errors against a healthy loopback server")
print(f"chaos_smoke: kvload PASS ({r['ops']} ops, 0 wrong values)")
PY

kill "$SRV_PID"
wait "$SRV_PID" 2>/dev/null || true
SRV_PID=""
echo "chaos_smoke: PASS" >&2
