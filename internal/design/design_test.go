package design

import (
	"math"
	"strings"
	"testing"
	"time"

	"hrmsim/internal/ecc"
)

// evalPoint evaluates one Table 6 point with paper inputs.
func evalPoint(t *testing.T, d DesignPoint) Evaluation {
	t.Helper()
	ev, err := Evaluate(PaperParams(), PaperWebSearchInputs(), d)
	if err != nil {
		t.Fatalf("Evaluate(%q): %v", d.Name, err)
	}
	return ev
}

// approx asserts |got-want| <= tol.
func approx(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %.4f, want %.4f (±%.4f)", name, got, want, tol)
	}
}

func TestTypicalServerRow(t *testing.T) {
	ev := evalPoint(t, TypicalServer())
	approx(t, "memory savings", ev.MemorySavings, 0, 1e-9)
	approx(t, "server savings", ev.ServerSavings, 0, 1e-9)
	approx(t, "crashes", ev.CrashesPerMonth, 0, 1e-9)
	approx(t, "availability", ev.Availability, 1.0, 1e-9)
	approx(t, "incorrect", ev.IncorrectPerMillion, 0, 1e-9)
	if !ev.MeetsTarget {
		t.Error("typical server misses the availability target")
	}
}

func TestConsumerPCRow(t *testing.T) {
	// Paper: 11.1% memory savings, 3.3% server savings, 19 crashes,
	// 99.55% availability, 33 incorrect per million.
	ev := evalPoint(t, ConsumerPC())
	approx(t, "memory savings", ev.MemorySavings, 0.111, 0.002)
	approx(t, "server savings", ev.ServerSavings, 0.033, 0.001)
	approx(t, "crashes", ev.CrashesPerMonth, 19, 1.0)
	approx(t, "availability", ev.Availability, 0.9955, 0.0003)
	approx(t, "incorrect", ev.IncorrectPerMillion, 33, 1.5)
	if ev.MeetsTarget {
		t.Error("consumer PC should miss 99.90%")
	}
}

func TestDetectRecoverRow(t *testing.T) {
	// Paper: 9.7% memory / 2.9% server savings, 3 crashes, 99.93%
	// availability, 9 incorrect per million. Our self-consistent cost
	// model yields 10.0%/3.0% (the paper reports the pure-parity
	// number); reliability matches.
	ev := evalPoint(t, DetectRecover())
	approx(t, "memory savings", ev.MemorySavings, 0.100, 0.005)
	approx(t, "server savings", ev.ServerSavings, 0.030, 0.002)
	approx(t, "crashes", ev.CrashesPerMonth, 3, 0.5)
	approx(t, "availability", ev.Availability, 0.9993, 0.0002)
	approx(t, "incorrect", ev.IncorrectPerMillion, 9, 1.0)
	if !ev.MeetsTarget {
		t.Error("Detect&Recover should meet 99.90%")
	}
}

func TestLessTestedRow(t *testing.T) {
	// Paper: 27.1% (16.4–37.8) memory savings, 8.1% (4.9–11.3) server,
	// 96 crashes, 97.78% availability, 163 incorrect per million.
	ev := evalPoint(t, LessTested())
	approx(t, "memory savings", ev.MemorySavings, 0.271, 0.003)
	approx(t, "memory savings lo", ev.MemorySavingsLo, 0.164, 0.003)
	approx(t, "memory savings hi", ev.MemorySavingsHi, 0.378, 0.003)
	approx(t, "server savings", ev.ServerSavings, 0.081, 0.002)
	approx(t, "server savings lo", ev.ServerSavingsLo, 0.049, 0.002)
	approx(t, "server savings hi", ev.ServerSavingsHi, 0.113, 0.002)
	approx(t, "crashes", ev.CrashesPerMonth, 96, 1.5)
	approx(t, "availability", ev.Availability, 0.9778, 0.0005)
	approx(t, "incorrect", ev.IncorrectPerMillion, 163, 3)
	if ev.MeetsTarget {
		t.Error("less-tested-everything should miss the target")
	}
}

func TestDetectRecoverLRow(t *testing.T) {
	// Paper: 4 crashes, 99.90% availability, meets target. (Cost
	// savings diverge from the paper's 15.5% mid — see EXPERIMENTS.md —
	// but remain within the published 3.1–27.9% band.)
	ev := evalPoint(t, DetectRecoverL())
	if ev.CrashesPerMonth > 4.5 {
		t.Errorf("crashes = %.2f, want <= 4.5", ev.CrashesPerMonth)
	}
	if !ev.MeetsTarget {
		t.Errorf("Detect&Recover/L should meet 99.90%% (availability %.4f)", ev.Availability)
	}
	if ev.MemorySavings < 0.031 || ev.MemorySavings > 0.279 {
		t.Errorf("memory savings %.3f outside the paper's published band", ev.MemorySavings)
	}
	if ev.ServerSavings <= 0 {
		t.Error("no server savings")
	}
	// The headline claim: cost savings at high availability.
	if ev.ServerSavings < 0.04 {
		t.Errorf("server savings %.3f below the paper's ~4.7%% headline region", ev.ServerSavings)
	}
}

func TestTable6Ordering(t *testing.T) {
	// Qualitative shape of Table 6: savings ordering and the
	// availability/savings trade-off.
	points := Table6Points()
	if len(points) != 5 {
		t.Fatalf("got %d points", len(points))
	}
	evs := make(map[string]Evaluation, 5)
	for _, d := range points {
		evs[d.Name] = evalPoint(t, d)
	}
	if !(evs["Less-Tested (L)"].MemorySavings > evs["Consumer PC"].MemorySavings) {
		t.Error("less-tested should save more than consumer PC")
	}
	if !(evs["Consumer PC"].MemorySavings > evs["Detect&Recover"].MemorySavings) {
		t.Error("NoECC should save slightly more than parity")
	}
	if !(evs["Less-Tested (L)"].CrashesPerMonth > evs["Consumer PC"].CrashesPerMonth) {
		t.Error("less-tested should crash more than consumer PC")
	}
	if !(evs["Detect&Recover/L"].ServerSavings > evs["Detect&Recover"].ServerSavings) {
		t.Error("Detect&Recover/L should beat Detect&Recover on savings")
	}
	// Only three points meet the 99.90% target.
	meets := 0
	for _, e := range evs {
		if e.MeetsTarget {
			meets++
		}
	}
	if meets != 3 {
		t.Errorf("%d points meet the target, want 3 (Typical, D&R, D&R/L)", meets)
	}
}

func TestAvailabilityFor(t *testing.T) {
	// 19 crashes x 10 minutes over a 43200-minute month: 99.56%.
	a := AvailabilityFor(19, 10*time.Minute)
	approx(t, "availability", a, 0.99560, 0.00001)
	if AvailabilityFor(1e9, 10*time.Minute) != 0 {
		t.Error("availability not clamped at 0")
	}
	if AvailabilityFor(0, 10*time.Minute) != 1 {
		t.Error("zero crashes should be 100% available")
	}
}

func TestTolerableErrorsFig8(t *testing.T) {
	p := PaperParams()
	probs := PaperAppOverallCrashProb()

	// At 2000 errors/month, WebSearch and Memcached achieve 99.00% but
	// GraphLab does not (the paper's first Fig. 8 observation).
	for app, want := range map[string]bool{"WebSearch": true, "Memcached": true, "GraphLab": false} {
		tol, err := TolerableErrors(p, probs[app], 0.99)
		if err != nil {
			t.Fatal(err)
		}
		if got := tol >= 2000; got != want {
			t.Errorf("%s tolerable at 99%% = %.0f errors; achieves-2000 = %v, want %v",
				app, tol, got, want)
		}
	}

	// Order-of-magnitude spread across applications.
	ws, err := TolerableErrors(p, probs["WebSearch"], 0.999)
	if err != nil {
		t.Fatal(err)
	}
	gl, err := TolerableErrors(p, probs["GraphLab"], 0.999)
	if err != nil {
		t.Fatal(err)
	}
	if ws/gl < 8 {
		t.Errorf("spread WebSearch/GraphLab = %.1f, want order of magnitude", ws/gl)
	}

	// Tolerance scales linearly with the downtime budget.
	t99, err := TolerableErrors(p, probs["WebSearch"], 0.99)
	if err != nil {
		t.Fatal(err)
	}
	t999, err := TolerableErrors(p, probs["WebSearch"], 0.999)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "budget scaling", t99/t999, 10, 0.01)

	if _, err := TolerableErrors(p, 0, 0.99); err == nil {
		t.Error("zero crash probability accepted")
	}
	if _, err := TolerableErrors(p, 0.5, 1.5); err == nil {
		t.Error("bad target accepted")
	}
}

func TestEvaluateValidation(t *testing.T) {
	p := PaperParams()
	inputs := PaperWebSearchInputs()

	if _, err := Evaluate(p, nil, TypicalServer()); err == nil {
		t.Error("empty inputs accepted")
	}
	badShares := []RegionInput{{Name: "private", Share: 0.5}}
	if _, err := Evaluate(p, badShares, TypicalServer()); err == nil {
		t.Error("non-unit shares accepted")
	}
	missing := DesignPoint{Name: "m", Regions: map[string]Mapping{"private": {Technique: ecc.TechSECDED}}}
	if _, err := Evaluate(p, inputs, missing); err == nil {
		t.Error("missing region mapping accepted")
	}
	badResp := DesignPoint{Name: "b", Regions: map[string]Mapping{
		"private": {Technique: ecc.TechNone, Response: RespCorrect},
		"heap":    {Technique: ecc.TechNone},
		"stack":   {Technique: ecc.TechNone},
	}}
	if _, err := Evaluate(p, inputs, badResp); err == nil {
		t.Error("NoECC + software correction accepted")
	}
	bad := p
	bad.DRAMShareOfServer = 0
	if _, err := Evaluate(bad, inputs, TypicalServer()); err == nil {
		t.Error("invalid params accepted")
	}
}

func TestParamsValidate(t *testing.T) {
	if err := PaperParams().Validate(); err != nil {
		t.Fatal(err)
	}
	mut := func(f func(*Params)) Params {
		p := PaperParams()
		f(&p)
		return p
	}
	bad := []Params{
		mut(func(p *Params) { p.DRAMShareOfServer = 1.5 }),
		mut(func(p *Params) { p.BaselineOverhead = -1 }),
		mut(func(p *Params) { p.LessTestedSaving = 1 }),
		mut(func(p *Params) { p.LessTestedRateFactor = 0.5 }),
		mut(func(p *Params) { p.CrashRecovery = 0 }),
		mut(func(p *Params) { p.ErrorsPerMonth = -1 }),
		mut(func(p *Params) { p.TargetAvailability = 1 }),
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad params %d accepted", i)
		}
	}
}

func TestParityDetectOnlyResiduals(t *testing.T) {
	// Parity without software correction converts wrong answers into
	// crashes: incorrect must be zero, crashes as bad as NoECC.
	p := PaperParams()
	inputs := PaperWebSearchInputs()
	parityOnly := DesignPoint{Name: "parity-consume", Regions: map[string]Mapping{
		"private": {Technique: ecc.TechParity, Response: RespConsume},
		"heap":    {Technique: ecc.TechParity, Response: RespConsume},
		"stack":   {Technique: ecc.TechParity, Response: RespConsume},
	}}
	ev, err := Evaluate(p, inputs, parityOnly)
	if err != nil {
		t.Fatal(err)
	}
	if ev.IncorrectPerMillion != 0 {
		t.Errorf("incorrect = %g, want 0 (everything detected)", ev.IncorrectPerMillion)
	}
	consumer := evalPoint(t, ConsumerPC())
	if ev.CrashesPerMonth < consumer.CrashesPerMonth-0.01 {
		t.Error("parity-only should crash at least as often as NoECC")
	}
}

func TestEnumeratePointsAndFrontier(t *testing.T) {
	p := PaperParams()
	inputs := PaperWebSearchInputs()
	points := EnumeratePoints(
		[]string{"private", "heap", "stack"},
		[]ecc.Technique{ecc.TechNone, ecc.TechParity, ecc.TechSECDED},
		[]bool{false, true},
	)
	if len(points) != 6*6*6 {
		t.Fatalf("got %d points, want 216", len(points))
	}
	var evals []Evaluation
	for _, d := range points {
		ev, err := Evaluate(p, inputs, d)
		if err != nil {
			t.Fatalf("%q: %v", d.Name, err)
		}
		evals = append(evals, ev)
	}
	frontier := Frontier(evals)
	if len(frontier) == 0 {
		t.Fatal("empty frontier")
	}
	for i := 1; i < len(frontier); i++ {
		if frontier[i].ServerSavings > frontier[i-1].ServerSavings {
			t.Fatal("frontier not sorted by savings")
		}
	}
	for _, e := range frontier {
		if !e.MeetsTarget {
			t.Fatal("frontier contains a point missing the target")
		}
	}
	// The best feasible point must save at least as much as the
	// published Detect&Recover/L mapping.
	drl := evalPoint(t, DetectRecoverL())
	if frontier[0].ServerSavings+1e-9 < drl.ServerSavings {
		t.Errorf("frontier best %.4f < Detect&Recover/L %.4f",
			frontier[0].ServerSavings, drl.ServerSavings)
	}
}

func TestEnumStrings(t *testing.T) {
	for _, r := range Responses() {
		if strings.HasPrefix(r.String(), "response(") {
			t.Errorf("missing name for response %d", int(r))
		}
	}
	for _, g := range Granularities() {
		if strings.HasPrefix(g.String(), "granularity(") {
			t.Errorf("missing name for granularity %d", int(g))
		}
	}
}

func TestPaperInputsShares(t *testing.T) {
	var sum float64
	for _, in := range PaperWebSearchInputs() {
		sum += in.Share
	}
	approx(t, "share sum", sum, 1, 1e-9)
}

func TestAssignChannels(t *testing.T) {
	// Paper-scale WebSearch on a 6-channel server running
	// Detect&Recover/L: the ECC index needs 3 channels (36 GB at 16 GB
	// per channel), the parity heap one, and the NoECC stack one of its
	// own (every channel carries a single DIMM type — Fig. 9).
	regionBytes := map[string]int64{
		"private": 36 << 30,
		"heap":    9 << 30,
		"stack":   60 << 20,
	}
	const chCap = int64(16) << 30
	out, err := AssignChannels(6, chCap, regionBytes, DetectRecoverL())
	if err != nil {
		t.Fatal(err)
	}
	counts := map[ecc.Technique]int{}
	var total int64
	for _, ca := range out {
		counts[ca.Technique]++
		total += ca.Bytes
		if ca.Bytes > chCap {
			t.Errorf("channel %d over capacity: %d", ca.Channel, ca.Bytes)
		}
		if !ca.LessTested {
			t.Errorf("channel %d not less-tested under D&R/L", ca.Channel)
		}
	}
	if counts[ecc.TechSECDED] != 3 {
		t.Errorf("SEC-DED channels = %d, want 3", counts[ecc.TechSECDED])
	}
	if counts[ecc.TechParity] != 1 {
		t.Errorf("parity channels = %d, want 1", counts[ecc.TechParity])
	}
	var want int64
	for _, b := range regionBytes {
		want += b
	}
	if total != want {
		t.Errorf("assigned %d bytes, want %d", total, want)
	}
	// Regions are listed on their class's first channel.
	seen := map[string]bool{}
	for _, ca := range out {
		for _, r := range ca.Regions {
			seen[r] = true
		}
	}
	for name := range regionBytes {
		if !seen[name] {
			t.Errorf("region %q not placed", name)
		}
	}
}

func TestAssignChannelsErrors(t *testing.T) {
	regionBytes := map[string]int64{"private": 1 << 30, "heap": 1 << 30, "stack": 1 << 20}
	if _, err := AssignChannels(0, 1<<30, regionBytes, TypicalServer()); err == nil {
		t.Error("zero channels accepted")
	}
	if _, err := AssignChannels(4, 0, regionBytes, TypicalServer()); err == nil {
		t.Error("zero capacity accepted")
	}
	// Too much demand for the channels available.
	if _, err := AssignChannels(1, 1<<28, regionBytes, DetectRecoverL()); err == nil {
		t.Error("over-subscription accepted")
	}
	// Unknown region.
	if _, err := AssignChannels(4, 1<<30, map[string]int64{"rodata": 1}, TypicalServer()); err == nil {
		t.Error("unmapped region accepted")
	}
}

func TestAssignChannelsHomogeneousUsesOneClass(t *testing.T) {
	regionBytes := map[string]int64{"private": 4 << 30, "heap": 2 << 30, "stack": 1 << 20}
	out, err := AssignChannels(3, 4<<30, regionBytes, TypicalServer())
	if err != nil {
		t.Fatal(err)
	}
	for _, ca := range out {
		if ca.Technique != ecc.TechSECDED || ca.LessTested {
			t.Errorf("unexpected class on channel %d: %v", ca.Channel, ca.Technique)
		}
	}
}

func TestCostModelMonotonicity(t *testing.T) {
	// Stronger protection never costs less; less-tested DRAM never
	// costs more, for every region mix.
	p := PaperParams()
	inputs := PaperWebSearchInputs()
	uniform := func(tech ecc.Technique, lt bool) DesignPoint {
		m := Mapping{Technique: tech, LessTested: lt, Response: RespConsume}
		if tech == ecc.TechParity {
			m.Response = RespCorrect
		}
		if tech == ecc.TechSECDED {
			m.Response = RespRetire
		}
		return DesignPoint{Name: "u", Regions: map[string]Mapping{
			"private": m, "heap": m, "stack": m,
		}}
	}
	order := []ecc.Technique{ecc.TechNone, ecc.TechParity, ecc.TechSECDED}
	for _, lt := range []bool{false, true} {
		prev := 2.0
		for _, tech := range order {
			ev, err := Evaluate(p, inputs, uniform(tech, lt))
			if err != nil {
				t.Fatalf("%v/%v: %v", tech, lt, err)
			}
			if ev.MemorySavings > prev+1e-12 {
				t.Errorf("stronger technique %v saved more than weaker (lt=%v)", tech, lt)
			}
			prev = ev.MemorySavings
		}
	}
	for _, tech := range order {
		tested, err := Evaluate(p, inputs, uniform(tech, false))
		if err != nil {
			t.Fatal(err)
		}
		lt, err := Evaluate(p, inputs, uniform(tech, true))
		if err != nil {
			t.Fatal(err)
		}
		if lt.MemorySavings < tested.MemorySavings-1e-12 {
			t.Errorf("%v: less-tested saved less than tested", tech)
		}
		if lt.CrashesPerMonth < tested.CrashesPerMonth-1e-12 {
			t.Errorf("%v: less-tested crashed less than tested", tech)
		}
	}
}

func TestEvaluateRejectsLoneRAIMRegionInput(t *testing.T) {
	// RAIM is a supported correcting technique in the model.
	p := PaperParams()
	inputs := PaperWebSearchInputs()
	m := Mapping{Technique: ecc.TechRAIM, Response: RespRetire}
	d := DesignPoint{Name: "raim", Regions: map[string]Mapping{
		"private": m, "heap": m, "stack": m,
	}}
	ev, err := Evaluate(p, inputs, d)
	if err != nil {
		t.Fatalf("RAIM point rejected: %v", err)
	}
	if ev.CrashesPerMonth != 0 {
		t.Errorf("tested RAIM should fully correct the single-bit model: %g", ev.CrashesPerMonth)
	}
	if ev.MemorySavings >= 0 {
		t.Errorf("RAIM costs more than the SEC-DED baseline, savings = %g", ev.MemorySavings)
	}
}
